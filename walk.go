package rotorring

import (
	"fmt"

	"rotorring/internal/engine"
	"rotorring/internal/randwalk"
	"rotorring/internal/stats"
	"rotorring/internal/xrand"
)

// walkMode maps the public policy to the walk engine's stepping mode:
// generic ↔ per-agent, fast ↔ counts.
func (k KernelPolicy) walkMode() randwalk.Mode {
	switch k {
	case KernelGeneric:
		return randwalk.ModeAgents
	case KernelFast:
		return randwalk.ModeCounts
	default:
		return randwalk.ModeAuto
	}
}

// WalkSim is a system of k independent synchronous random walkers — the
// randomized baseline the paper compares the rotor-router against.
type WalkSim struct {
	walk      *randwalk.Walk
	g         *Graph
	positions []int
	seed      uint64
	kernel    KernelPolicy
}

// NewWalkSim creates a random-walk simulation on g. Pointer options are
// ignored (walks have no pointers); placement, seed and kernel options
// apply — the Kernel option selects between per-agent stepping
// (KernelGeneric) and the counts-based engine (KernelFast), with KernelAuto
// choosing by walker density.
//
// Deprecated: use New(g, RandomWalk(), opts...), which returns the same
// simulator behind the Process interface. NewWalkSim remains for callers
// that want the concrete *WalkSim without a type assertion.
func NewWalkSim(g *Graph, opts ...SimOption) (*WalkSim, error) {
	cfg := simConfig{seed: 1}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	positions, _, err := cfg.resolve(g)
	if err != nil {
		return nil, err
	}
	w, err := randwalk.New(g, positions, xrand.New(cfg.seed),
		randwalk.WithMode(cfg.kernel.walkMode()))
	if err != nil {
		return nil, err
	}
	return &WalkSim{walk: w, g: g, positions: positions, seed: cfg.seed, kernel: cfg.kernel}, nil
}

// NumWalkers returns k.
func (w *WalkSim) NumWalkers() int { return w.walk.NumWalkers() }

// NumAgents returns k (the Process-interface name for NumWalkers).
func (w *WalkSim) NumAgents() int { return w.walk.NumWalkers() }

// Graph returns the topology the simulation runs on.
func (w *WalkSim) Graph() *Graph { return w.g }

// ProcessName returns the registry name of this process kind: "walk".
func (w *WalkSim) ProcessName() string { return engine.ProcWalk }

// Mode reports the stepping engine in use ("agents" or "counts").
func (w *WalkSim) Mode() string { return w.walk.Mode() }

// Round returns the number of completed rounds.
func (w *WalkSim) Round() int64 { return w.walk.Round() }

// Positions returns the current walker positions.
func (w *WalkSim) Positions() []int { return w.walk.Positions() }

// Covered returns the number of distinct nodes visited so far.
func (w *WalkSim) Covered() int { return w.walk.Covered() }

// Visits returns how many times node v has been visited (including initial
// placement).
func (w *WalkSim) Visits(v int) int64 { return w.walk.Visits(v) }

// Step moves every walker to a uniformly random neighbor.
func (w *WalkSim) Step() { w.walk.Step() }

// Run advances the given number of rounds. A negative count is an error
// and leaves the simulation untouched.
func (w *WalkSim) Run(rounds int64) error {
	if rounds < 0 {
		return errNegativeRounds(rounds)
	}
	w.walk.Run(rounds)
	return nil
}

// Reset restores the initial placement and clears all counters. The
// generator keeps its current state; combine with a fresh Seed-derived
// simulation (or Clone before running) for independent trials.
func (w *WalkSim) Reset() { w.walk.Reset() }

// Clone returns an independent deep copy, including the generator state:
// the copy and the original evolve identically from here.
func (w *WalkSim) Clone() Process {
	return &WalkSim{
		walk:      w.walk.Clone(),
		g:         w.g,
		positions: append([]int(nil), w.positions...),
		seed:      w.seed,
		kernel:    w.kernel,
	}
}

// CoverTime runs this one instance until all nodes are visited.
// maxRounds = 0 selects the automatic budget shared with the sweep engine
// (engine.AutoBudget): 4x the deterministic cover budget, the headroom
// every randomized run gets — the same rule ExpectedCoverTime and walk
// sweep jobs use, so the three can never disagree on when a trial is
// declared budget-exhausted. Exceeding the budget returns an error
// wrapping ErrNotCovered (and randwalk.ErrNotCovered).
func (w *WalkSim) CoverTime(maxRounds int64) (int64, error) {
	if maxRounds < 0 {
		return 0, errNegativeRounds(maxRounds)
	}
	if maxRounds == 0 {
		maxRounds = engine.AutoBudget(w.g, engine.ProcWalk, engine.MetricCover)
	}
	t, err := w.walk.RunUntilCovered(maxRounds)
	if err != nil {
		return t, fmt.Errorf("%w: %w", ErrNotCovered, err)
	}
	return t, nil
}

// CoverTimeSummary is the sample summary of repeated cover-time trials.
type CoverTimeSummary struct {
	// Trials is the number of independent runs.
	Trials int
	// Mean and StdErr estimate the expected cover time, the quantity the
	// paper's random-walk results are stated for.
	Mean   float64
	StdErr float64
	// Median, Min and Max describe the sample spread.
	Median float64
	Min    float64
	Max    float64
}

// ExpectedCoverTime estimates E[cover time] over independent trials with
// deterministic per-trial seeds (derived from the simulation seed). The
// trials restart from the configured initial placement; the state of this
// WalkSim is not consumed. maxRounds = 0 selects the same automatic budget
// as CoverTime (engine.AutoBudget's 4x randomized-run headroom).
func (w *WalkSim) ExpectedCoverTime(trials int, maxRounds int64) (CoverTimeSummary, error) {
	if maxRounds == 0 {
		maxRounds = engine.AutoBudget(w.g, engine.ProcWalk, engine.MetricCover)
	}
	times, err := randwalk.CoverTimes(w.g, w.positions, trials, w.seed, maxRounds,
		randwalk.WithMode(w.kernel.walkMode()))
	if err != nil {
		return CoverTimeSummary{}, err
	}
	fs := stats.Floats(times)
	sum, err := stats.Summarize(fs)
	if err != nil {
		return CoverTimeSummary{}, err
	}
	return CoverTimeSummary{
		Trials: sum.N,
		Mean:   sum.Mean,
		StdErr: sum.StdErr,
		Median: sum.Median,
		Min:    sum.Min,
		Max:    sum.Max,
	}, nil
}

// GapStats reports recurrence measurements for the walk (analogous to the
// rotor-router's return time, though the walk only has expectations — §4's
// closing remark).
type GapStats = randwalk.GapStats

// MeasureGaps runs burnIn rounds, then observes window rounds and reports
// the visit-gap statistics: MeanGap ≈ n/k on the ring.
func (w *WalkSim) MeasureGaps(burnIn, window int64) GapStats {
	return w.walk.MeasureGaps(burnIn, window)
}

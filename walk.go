package rotorring

import (
	"rotorring/internal/randwalk"
	"rotorring/internal/stats"
	"rotorring/internal/xrand"
)

// walkMode maps the public policy to the walk engine's stepping mode:
// generic ↔ per-agent, fast ↔ counts.
func (k KernelPolicy) walkMode() randwalk.Mode {
	switch k {
	case KernelGeneric:
		return randwalk.ModeAgents
	case KernelFast:
		return randwalk.ModeCounts
	default:
		return randwalk.ModeAuto
	}
}

// WalkSim is a system of k independent synchronous random walkers — the
// randomized baseline the paper compares the rotor-router against.
type WalkSim struct {
	walk      *randwalk.Walk
	g         *Graph
	positions []int
	seed      uint64
	kernel    KernelPolicy
}

// NewWalkSim creates a random-walk simulation on g. Pointer options are
// ignored (walks have no pointers); placement, seed and kernel options
// apply — the Kernel option selects between per-agent stepping
// (KernelGeneric) and the counts-based engine (KernelFast), with KernelAuto
// choosing by walker density.
func NewWalkSim(g *Graph, opts ...SimOption) (*WalkSim, error) {
	cfg := simConfig{seed: 1}
	for _, o := range opts {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	positions, _, err := cfg.resolve(g)
	if err != nil {
		return nil, err
	}
	w, err := randwalk.New(g, positions, xrand.New(cfg.seed),
		randwalk.WithMode(cfg.kernel.walkMode()))
	if err != nil {
		return nil, err
	}
	return &WalkSim{walk: w, g: g, positions: positions, seed: cfg.seed, kernel: cfg.kernel}, nil
}

// NumWalkers returns k.
func (w *WalkSim) NumWalkers() int { return w.walk.NumWalkers() }

// Mode reports the stepping engine in use ("agents" or "counts").
func (w *WalkSim) Mode() string { return w.walk.Mode() }

// Round returns the number of completed rounds.
func (w *WalkSim) Round() int64 { return w.walk.Round() }

// Positions returns the current walker positions.
func (w *WalkSim) Positions() []int { return w.walk.Positions() }

// Covered returns the number of distinct nodes visited so far.
func (w *WalkSim) Covered() int { return w.walk.Covered() }

// Visits returns how many times node v has been visited (including initial
// placement).
func (w *WalkSim) Visits(v int) int64 { return w.walk.Visits(v) }

// Step moves every walker to a uniformly random neighbor.
func (w *WalkSim) Step() { w.walk.Step() }

// Run advances the given number of rounds.
func (w *WalkSim) Run(rounds int64) { w.walk.Run(rounds) }

// CoverTime runs this one instance until all nodes are visited.
// maxRounds = 0 selects an automatic budget.
func (w *WalkSim) CoverTime(maxRounds int64) (int64, error) {
	if maxRounds == 0 {
		maxRounds = defaultCoverBudget(w.g)
	}
	return w.walk.RunUntilCovered(maxRounds)
}

// CoverTimeSummary is the sample summary of repeated cover-time trials.
type CoverTimeSummary struct {
	// Trials is the number of independent runs.
	Trials int
	// Mean and StdErr estimate the expected cover time, the quantity the
	// paper's random-walk results are stated for.
	Mean   float64
	StdErr float64
	// Median, Min and Max describe the sample spread.
	Median float64
	Min    float64
	Max    float64
}

// ExpectedCoverTime estimates E[cover time] over independent trials with
// deterministic per-trial seeds (derived from the simulation seed). The
// trials restart from the configured initial placement; the state of this
// WalkSim is not consumed. maxRounds = 0 selects an automatic budget.
func (w *WalkSim) ExpectedCoverTime(trials int, maxRounds int64) (CoverTimeSummary, error) {
	if maxRounds == 0 {
		maxRounds = 4 * defaultCoverBudget(w.g)
	}
	times, err := randwalk.CoverTimes(w.g, w.positions, trials, w.seed, maxRounds,
		randwalk.WithMode(w.kernel.walkMode()))
	if err != nil {
		return CoverTimeSummary{}, err
	}
	fs := stats.Floats(times)
	sum, err := stats.Summarize(fs)
	if err != nil {
		return CoverTimeSummary{}, err
	}
	return CoverTimeSummary{
		Trials: sum.N,
		Mean:   sum.Mean,
		StdErr: sum.StdErr,
		Median: sum.Median,
		Min:    sum.Min,
		Max:    sum.Max,
	}, nil
}

// GapStats reports recurrence measurements for the walk (analogous to the
// rotor-router's return time, though the walk only has expectations — §4's
// closing remark).
type GapStats = randwalk.GapStats

// MeasureGaps runs burnIn rounds, then observes window rounds and reports
// the visit-gap statistics: MeanGap ≈ n/k on the ring.
func (w *WalkSim) MeasureGaps(burnIn, window int64) GapStats {
	return w.walk.MeasureGaps(burnIn, window)
}

# Development targets. CI runs exactly these (see .github/workflows/ci.yml)
# so local and CI verification cannot drift.

GO ?= go

# Benchtime for bench-kernels; CI smoke uses 1x, local comparisons 1s+.
BENCHTIME ?= 1s

.PHONY: all build vet fmt fmt-check test race race-short bench-smoke bench-kernels bench-baseline bench-json examples-smoke fuzz-smoke service-smoke chaos-smoke cluster-smoke verify ci clean

all: verify

# build + test is the repo's tier-1 verification (ROADMAP.md).
verify: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short-mode race run: the process/schedule invariant conformance suite and
# the rest of the tests under the race detector, sized for a fast dedicated
# CI job.
race-short:
	$(GO) test -race -short ./...

# One iteration of every benchmark: catches bit-rot without burning CI time.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Per-kernel step throughput (rotor generic vs ring kernel, per-agent vs
# counts walks) in benchstat format. Compare a working tree against the
# committed trajectory with:
#   make -s bench-baseline > old.txt && make -s bench-kernels > new.txt
#   benchstat old.txt new.txt
bench-kernels:
	$(GO) test -run '^$$' -bench '^BenchmarkKernel$$' -benchtime $(BENCHTIME) .

# Print the committed BENCH_engine.json kernel entries in go-bench format
# (the benchstat baseline for bench-kernels).
bench-baseline:
	@$(GO) test -count=1 -v ./internal/engine -run TestPrintBenchBaseline \
		-bench-baseline $(CURDIR)/BENCH_engine.json | grep '^Benchmark' || \
		{ echo "bench-baseline: no kernel entries in BENCH_engine.json (run make bench-json)" >&2; exit 1; }

# Regenerate the engine perf trajectory at the repo root. Refuses outright
# when GOMAXPROCS==1 (a starved scheduler makes every parallel speedup
# meaningless); set FORCE=1 to record a starved baseline deliberately. Warns
# when GOMAXPROCS is below the measured worker counts.
FORCE ?=
bench-json:
	$(GO) test -count=1 ./internal/engine -run TestEmitBenchJSON -bench-json $(CURDIR)/BENCH_engine.json -v $(if $(FORCE),-bench-force)

# Execute every example with small parameters: examples are user-facing
# API documentation, so CI proves they run, not just compile.
examples-smoke:
	$(GO) run ./examples/quickstart -n 128 -k 4 -trials 4
	$(GO) run ./examples/bestworst -n 256 -k 8
	$(GO) run ./examples/patrol -n 96 -k 4
	$(GO) run ./examples/loadbalance -side 8 -tokens 32 -rounds 2000

# Native fuzzing on a short fixed budget: the kernel differential fuzz
# (rotor tiers bit-identical), the topology-spec parser fuzz and the
# schedule-spec parser fuzz (canonical forms are parse/String fixed points
# with identical compiled plans). Seed corpora also run under plain
# `go test`; this target actually mutates.
# End-to-end service smoke: build the real rotord binary, POST a
# mixed-topology sweep over HTTP, SIGKILL the server mid-sweep, restart it
# on the same spool, and prove the resumed stream — full and from the
# watermark cursor — is byte-identical to library-mode RunSweep output.
service-smoke:
	$(GO) test -count=1 -v ./cmd/rotord -run '^TestServiceSmoke$$'

# Deterministic fault-injection suite (seeded spoolFS chaos: ENOSPC, torn
# writes, panicking registry entries, corrupt cache/meta, cancellation,
# admission limits) plus the end-to-end rotord SIGKILL-during-cancel smoke:
# every injected fault must land in {failed with cause, quarantined,
# transparently recovered} with post-fault streams byte-identical to
# library output.
chaos-smoke:
	$(GO) test -count=1 ./internal/service -run '^TestChaos'
	$(GO) test -count=1 -v ./cmd/rotord -run '^TestChaosCancelKillSmoke$$'

# End-to-end cluster smoke: build the real rotord binary, run one
# coordinator plus two worker processes, SIGKILL one worker while it holds
# a lease, and prove the coordinator reassigns its unfinished jobs and the
# finished stream is byte-identical to library-mode RunSweep output.
cluster-smoke:
	$(GO) test -count=1 -v ./cmd/rotord -run '^TestClusterSmoke$$'

FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzKernelEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzKernelHeldEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz '^FuzzKernelParallelEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine -run '^$$' -fuzz '^FuzzParseTopo$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine -run '^$$' -fuzz '^FuzzParseSchedule$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/engine -run '^$$' -fuzz '^FuzzParseMission$$' -fuzztime $(FUZZTIME)

ci: build vet fmt-check race bench-smoke bench-kernels-smoke examples-smoke service-smoke chaos-smoke cluster-smoke fuzz-smoke

# CI variant of bench-kernels: single iteration, still exercises every tier.
.PHONY: bench-kernels-smoke
bench-kernels-smoke:
	$(GO) test -run '^$$' -bench '^BenchmarkKernel$$' -benchtime 1x .

clean:
	$(GO) clean ./...

# Development targets. CI runs exactly these (see .github/workflows/ci.yml)
# so local and CI verification cannot drift.

GO ?= go

.PHONY: all build vet fmt fmt-check test race bench-smoke bench-json verify ci clean

all: verify

# build + test is the repo's tier-1 verification (ROADMAP.md).
verify: build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot without burning CI time.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Regenerate the engine perf trajectory at the repo root.
bench-json:
	$(GO) test ./internal/engine -run TestEmitBenchJSON -bench-json $(CURDIR)/BENCH_engine.json -v

ci: build vet fmt-check race bench-smoke

clean:
	$(GO) clean ./...

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderFrames(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "48", "-k", "3", "-frames", "4", "-every", "24", "-warmup", "100"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "round "); got != 4 {
		t.Errorf("frames rendered = %d:\n%s", got, out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no agents rendered")
	}
}

func TestRenderWithBars(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "48", "-k", "2", "-frames", "2", "-bars", "-warmup", "200"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "█") {
		t.Error("no bars rendered")
	}
}

func TestWorstCaseInit(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "64", "-k", "4", "-place", "single",
		"-pointers", "toward", "-frames", "2", "-warmup", "50"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#") {
		t.Error("expected unexplored territory early in the worst case")
	}
}

func TestBadInputs(t *testing.T) {
	for name, args := range map[string][]string{
		"place":    {"-place", "nowhere"},
		"pointers": {"-pointers", "inward"},
		"flag":     {"-bogus"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%s: bad input accepted", name)
		}
	}
}

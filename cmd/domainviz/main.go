// Command domainviz renders the evolution of agent domains on the ring as
// ASCII strips — a live reproduction of the structures in Fig. 1 of the
// paper (lazy domains and their vertex-/edge-type borders).
//
// Usage:
//
//	domainviz -n 96 -k 3 -frames 12 -every 64
//	domainviz -n 96 -k 4 -place single -pointers toward -frames 20 -bars
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/ringdom"
	"rotorring/internal/viz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "domainviz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("domainviz", flag.ContinueOnError)
	n := fs.Int("n", 96, "ring size")
	k := fs.Int("k", 3, "number of agents")
	place := fs.String("place", "equal", "placement: single|equal")
	pointers := fs.String("pointers", "negative", "pointer init: zero|negative|toward")
	frames := fs.Int("frames", 10, "number of frames to render")
	every := fs.Int64("every", 0, "rounds between frames (0 = n/2)")
	warmup := fs.Int64("warmup", 0, "rounds before the first frame")
	bars := fs.Bool("bars", false, "also print domain-size bar charts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *every == 0 {
		*every = int64(*n / 2)
	}

	g := graph.Ring(*n)
	var starts []int
	switch *place {
	case "single":
		starts = core.AllOnNode(0, *k)
	case "equal":
		starts = core.EquallySpaced(*n, *k)
	default:
		return fmt.Errorf("unknown placement %q", *place)
	}
	var ptr []int
	var err error
	switch *pointers {
	case "zero":
		ptr = core.PointersUniform(g, 0)
	case "negative":
		ptr, err = core.PointersNegative(g, starts)
	case "toward":
		ptr, err = core.PointersTowardNode(g, 0)
	default:
		return fmt.Errorf("unknown pointer init %q", *pointers)
	}
	if err != nil {
		return err
	}

	sys, err := core.NewSystem(g,
		core.WithAgentsAt(starts...),
		core.WithPointers(ptr),
		core.WithFlowRecording())
	if err != nil {
		return err
	}
	tr, err := ringdom.NewTracker(sys)
	if err != nil {
		return err
	}
	tr.Run(*warmup)

	fmt.Fprintf(out, "ring n=%d, k=%d, placement=%s, pointers=%s\n", *n, *k, *place, *pointers)
	fmt.Fprintf(out, "legend: letters = lazy domains, * = agent, . = visited (non-lazy), # = unvisited\n")
	fmt.Fprintf(out, "borders: | vertex-type, ^^ edge-type, ~ unsettled\n\n")

	for f := 0; f < *frames; f++ {
		nodes, marks, err := viz.Strip(tr)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "round %-8d %s\n", sys.Round(), nodes)
		fmt.Fprintf(out, "               %s\n", marks)
		if *bars {
			p, err := ringdom.Domains(sys)
			if err != nil {
				return err
			}
			fmt.Fprint(out, viz.DomainBar(p, 40))
		}
		fmt.Fprintln(out)
		tr.Run(*every)
	}
	return nil
}

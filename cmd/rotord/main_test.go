package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rotorring/internal/engine"
)

// buildRotord compiles the real binary once per test run.
func buildRotord(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rotord")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// startRotord launches the binary and returns its base URL, parsed from
// the "listening on" line the server prints for exactly this purpose.
func startRotord(t *testing.T, bin, spool string, workers int) (*exec.Cmd, string) {
	t.Helper()
	return startRotordArgs(t, bin, "-addr", "127.0.0.1:0", "-spool", spool, "-workers", fmt.Sprint(workers))
}

// startRotordArgs launches the binary with explicit flags (both roles
// announce "rotord: listening on <addr> (...)" on stdout).
func startRotordArgs(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start rotord: %v", err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("rotord exited before announcing its address: %v", sc.Err())
	}
	line := sc.Text()
	addr, ok := strings.CutPrefix(line, "rotord: listening on ")
	if !ok {
		t.Fatalf("unexpected announcement line %q", line)
	}
	addr, _, _ = strings.Cut(addr, " (")
	go io.Copy(io.Discard, stdout) // keep the pipe drained
	return cmd, "http://" + addr
}

// TestServiceSmoke is the end-to-end smoke CI runs (make service-smoke):
// the real rotord binary serves a mixed-topology sweep whose streamed rows
// are byte-identical to library-mode output; SIGKILLed mid-sweep and
// restarted on the same spool, it resumes at the on-disk watermark and the
// full stream is still byte-identical.
func TestServiceSmoke(t *testing.T) {
	// Mixed topologies (grid:32x32 is self-sized at n=1024), jobs costly
	// enough that the SIGKILL lands mid-sweep at one worker.
	spec := engine.SweepSpec{
		Topologies: []engine.Topo{"ring", "grid:32x32"},
		Sizes:      []int{1024},
		Agents:     []int{2},
		Replicas:   40,
		Seed:       7,
	}
	var lib bytes.Buffer
	if _, err := engine.New(engine.Workers(4)).Run(spec, engine.NewJSONLSink(&lib)); err != nil {
		t.Fatalf("library run: %v", err)
	}
	want := lib.Bytes()
	wire, err := engine.EncodeWireSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	bin := buildRotord(t)
	spool := t.TempDir()
	cmd, base := startRotord(t, bin, spool, 1)

	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/sweeps: status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("Location")[len("/v1/sweeps/"):]

	// Wait for visible progress, then SIGKILL: no shutdown path runs, so
	// resume leans only on the spool (including partial-line truncation).
	deadline := time.Now().Add(60 * time.Second)
	for {
		if n := completedRows(t, base, id); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before kill deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, base2 := startRotord(t, bin, spool, 4)
	watermark := completedRows(t, base2, id)
	jobs := len(bytes.Split(bytes.TrimSuffix(want, []byte("\n")), []byte("\n")))
	if watermark >= jobs {
		t.Fatalf("watermark %d of %d jobs after restart: kill was not mid-sweep", watermark, jobs)
	}
	t.Logf("killed at watermark %d of %d jobs", watermark, jobs)

	got := getBody(t, base2, "/v1/sweeps/"+id+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("post-restart stream is not byte-identical to library output (%d vs %d bytes)", len(got), len(want))
	}
	// A resumed client's view: the stream from the watermark is the byte
	// tail of the library output.
	tail := getBody(t, base2, fmt.Sprintf("/v1/sweeps/%s/rows?from=%d", id, watermark))
	wantTail := want
	for i := 0; i < watermark; i++ {
		wantTail = wantTail[bytes.IndexByte(wantTail, '\n')+1:]
	}
	if !bytes.Equal(tail, wantTail) {
		t.Errorf("resumed tail differs from library tail (%d vs %d bytes)", len(tail), len(wantTail))
	}
}

func completedRows(t *testing.T, base, id string) int {
	t.Helper()
	var st struct {
		Completed int    `json:"completed"`
		Error     string `json:"error"`
	}
	b := getBody(t, base, "/v1/sweeps/"+id)
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("status decode: %v (%s)", err, b)
	}
	if st.Error != "" {
		t.Fatalf("sweep failed: %s", st.Error)
	}
	return st.Completed
}

func getBody(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b)
	}
	return b
}

// TestChaosCancelKillSmoke is the chaos half of the end-to-end smoke
// (make chaos-smoke): the real rotord binary is SIGKILLed while a DELETE
// is canceling a running sweep — racing the kill against the cancel's
// spool removal, so the spool can land in any intermediate state (intact,
// gone, or half-removed). Whatever state it lands in, a restarted server
// must boot (quarantining what it cannot trust), answer its probes, and —
// after resubmitting the same spec — stream rows byte-identical to
// library-mode RunSweep output.
func TestChaosCancelKillSmoke(t *testing.T) {
	spec := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"},
		Sizes:      []int{1024},
		Agents:     []int{2},
		Replicas:   60,
		Seed:       7,
	}
	var lib bytes.Buffer
	if _, err := engine.New(engine.Workers(4)).Run(spec, engine.NewJSONLSink(&lib)); err != nil {
		t.Fatalf("library run: %v", err)
	}
	want := lib.Bytes()
	wire, err := engine.EncodeWireSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	bin := buildRotord(t)
	spool := t.TempDir()
	cmd, base := startRotord(t, bin, spool, 1)

	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/sweeps: status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("Location")[len("/v1/sweeps/"):]

	deadline := time.Now().Add(60 * time.Second)
	for {
		if n := completedRows(t, base, id); n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before cancel deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fire the cancel and the SIGKILL concurrently: the kill can land
	// before the DELETE is processed, mid-removal, or after it finishes.
	// All three outcomes must satisfy the recovery contract below.
	go func() {
		req, _ := http.NewRequest(http.MethodDelete, base+"/v1/sweeps/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	_, base2 := startRotord(t, bin, spool, 4)
	// The restarted server is live and ready regardless of what the
	// kill-during-cancel race left in the spool.
	for _, probe := range []string{"/healthz", "/readyz"} {
		getBody(t, base2, probe)
	}

	// Re-submitting the spec must converge to byte identity whether the
	// sweep was recovered, quarantined, or fully canceled.
	resp, err = http.Post(base2+"/v1/sweeps", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("POST /v1/sweeps (resubmit): %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: status %d", resp.StatusCode)
	}
	got := getBody(t, base2, "/v1/sweeps/"+id+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("post-kill-during-cancel stream is not byte-identical to library output (%d vs %d bytes)", len(got), len(want))
	}
}

// metricValue fetches /metrics and returns the value of the first series
// whose line starts with prefix, or -1 when the series is absent.
func metricValue(t *testing.T, base, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(getBody(t, base, "/metrics")), "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(fields[len(fields)-1], "%g", &v); err == nil {
			return v
		}
	}
	return -1
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterSmoke is the cluster half of the end-to-end smoke (make
// cluster-smoke): one real coordinator binary plus two real worker
// binaries run a sweep; one worker is SIGKILLed while it holds a lease,
// forcing the coordinator to reassign its unfinished jobs; the finished
// stream must still be byte-identical to library-mode output.
func TestClusterSmoke(t *testing.T) {
	spec := engine.SweepSpec{
		Topologies: []engine.Topo{"ring", "grid:32x32"},
		Sizes:      []int{1024},
		Agents:     []int{2},
		Replicas:   40,
		Seed:       7,
	}
	var lib bytes.Buffer
	if _, err := engine.New(engine.Workers(4)).Run(spec, engine.NewJSONLSink(&lib)); err != nil {
		t.Fatalf("library run: %v", err)
	}
	want := lib.Bytes()
	jobs := len(bytes.Split(bytes.TrimSuffix(want, []byte("\n")), []byte("\n")))
	wire, err := engine.EncodeWireSpec(spec)
	if err != nil {
		t.Fatal(err)
	}

	bin := buildRotord(t)
	spool := t.TempDir()
	// A short lease TTL so the killed worker's lease reassigns quickly.
	_, base := startRotordArgs(t, bin,
		"-addr", "127.0.0.1:0", "-spool", spool, "-workers", "1", "-lease-ttl", "1s")
	w1, w1Base := startRotordArgs(t, bin,
		"-mode", "worker", "-join", base, "-name", "w1", "-workers", "2", "-addr", "127.0.0.1:0")
	startRotordArgs(t, bin,
		"-mode", "worker", "-join", base, "-name", "w2", "-workers", "2", "-addr", "127.0.0.1:0")

	// The fleet forms before submission, so every chunk dispatches remote.
	waitUntil(t, 15*time.Second, "2 workers registered", func() bool {
		var health struct {
			Workers int `json:"workers"`
		}
		if err := json.Unmarshal(getBody(t, base, "/healthz"), &health); err != nil {
			t.Fatalf("decode healthz: %v", err)
		}
		return health.Workers >= 2
	})

	// The two roles are distinguishable from their probes.
	var wh struct {
		Role string `json:"role"`
		Name string `json:"name"`
	}
	if err := json.Unmarshal(getBody(t, w1Base, "/healthz"), &wh); err != nil {
		t.Fatalf("decode worker healthz: %v", err)
	}
	if wh.Role != "worker" || wh.Name != "w1" {
		t.Errorf("worker healthz = %+v", wh)
	}

	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(wire))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/sweeps: status %d: %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("Location")[len("/v1/sweeps/"):]

	// SIGKILL w1 the moment it holds a lease: its unfinished jobs must be
	// reassigned, not lost.
	waitUntil(t, 60*time.Second, "w1 to hold a lease", func() bool {
		return metricValue(t, base, `rotord_cluster_worker_active_leases{worker="w1"`) >= 1
	})
	if err := w1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	w1.Wait()
	t.Log("killed w1 while it held a lease")

	waitUntil(t, 120*time.Second, "sweep completion after worker kill", func() bool {
		return completedRows(t, base, id) == jobs
	})
	got := getBody(t, base, "/v1/sweeps/"+id+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("cluster stream is not byte-identical to library output (%d vs %d bytes)", len(got), len(want))
	}

	if v := metricValue(t, base, "rotord_cluster_leases_reassigned_total"); v < 1 {
		t.Errorf("rotord_cluster_leases_reassigned_total = %g, want >= 1", v)
	}
	if v := metricValue(t, base, "rotord_cluster_rows_remote_total"); v < 1 {
		t.Errorf("rotord_cluster_rows_remote_total = %g, want >= 1", v)
	}
}

// Command rotord serves rotor-router sweeps over HTTP: a long-running job
// server that accepts wire-format SweepSpecs, shards their expanded job
// grids across a bounded worker pool shared by all in-flight sweeps, and
// streams rows back as JSONL in canonical grid order — byte-identical to
// library-mode rotorring.RunSweep for the same spec, across shard counts,
// server restarts and row-cache hits.
//
// Progress checkpoints and the content-addressed row cache live in the
// spool directory; killing the server and restarting it on the same spool
// resumes every unfinished sweep at its completed-row watermark, and any
// sweep directory recovery cannot trust (a crash landed mid-write) is
// moved to spool/quarantine/ instead of blocking the boot.
//
//	rotord -addr 127.0.0.1:8080 -spool /var/lib/rotord
//
// rotord also runs as a cluster of one coordinator and N worker nodes
// (see DESIGN.md §6): the coordinator (the default mode above) owns the
// spool, the cache and the client API, and leases chunks of the job grid
// to workers, which execute them with the same job model and stream
// index-free row bytes back. Because every job is a pure function of
// (spec, job index), reassigning or duplicating a lease never changes a
// result byte. With zero workers registered the coordinator runs
// everything on its local pool, so single-node behavior is unchanged.
//
//	rotord -mode worker -join http://coordhost:8080 -name w1
//
// The API (see README.md, "Service", "Operations" and "Cluster"):
//
//	POST   /v1/sweeps            submit a spec ({"v":1,"topologies":...})
//	GET    /v1/sweeps            list sweeps (?state= filters)
//	GET    /v1/sweeps/{id}       status (jobs, completed, cacheHits)
//	GET    /v1/sweeps/{id}/rows  stream JSONL rows; ?from=N resumes at row
//	                             N, ?format=csv|summary re-renders via the
//	                             sink registry
//	DELETE /v1/sweeps/{id}       cancel the sweep and remove its spool
//	GET    /v1/registries        registered names for client introspection
//	POST   /v1/cluster/*         worker wire protocol (register, heartbeat,
//	                             lease, complete)
//	GET    /v1/cluster/workers   registered workers with lease stats
//	GET    /metrics              Prometheus text metrics (both roles)
//	GET    /healthz              liveness probe: role, version, workers
//	GET    /readyz               readiness probe (recovery done, pool live)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"rotorring/internal/cluster"
	"rotorring/internal/service"
	"rotorring/internal/version"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rotord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rotord", flag.ContinueOnError)
	mode := fs.String("mode", "coordinator", "role: coordinator (serve the client API, own the spool) or worker (join a coordinator and execute leases)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	spool := fs.String("spool", "rotord-spool", "spool directory: sweep checkpoints and the content-addressed row cache (coordinator only)")
	workers := fs.Int("workers", 0, "coordinator: local pool size; worker: parallel lease executors (0 = GOMAXPROCS); never affects result bytes")
	maxBody := fs.Int64("max-body-bytes", 0, "largest accepted spec body in bytes (0 = the 1 MiB default); over-limit POSTs get 413")
	maxJobs := fs.Int("max-jobs", 0, "largest job grid one sweep may expand to (0 = unlimited); larger sweeps get 413")
	maxActive := fs.Int("max-active", 0, "most concurrently running sweeps (0 = unlimited); excess submissions get 429 + Retry-After")
	drain := fs.Duration("drain", 0, "how long shutdown waits for in-flight jobs (0 = the 30s default); the spool watermark stays exact either way")
	leaseTTL := fs.Duration("lease-ttl", 0, "coordinator: how long a worker lease may go without progress before it is reassigned (0 = the 15s default)")
	join := fs.String("join", "", "worker: coordinator base URL to join (e.g. http://host:8080)")
	name := fs.String("name", "", "worker: operator-facing worker name (default: host:pid)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *mode {
	case "coordinator":
		return runCoordinator(*addr, *spool, *workers, *maxBody, *maxJobs, *maxActive, *drain, *leaseTTL)
	case "worker":
		if *join == "" {
			return errors.New("-mode worker requires -join <coordinator URL>")
		}
		return runWorker(*addr, *join, *name, *workers)
	default:
		return fmt.Errorf("unknown -mode %q (coordinator|worker)", *mode)
	}
}

func runCoordinator(addr, spool string, workers int, maxBody int64, maxJobs, maxActive int, drain, leaseTTL time.Duration) error {
	srv, err := service.Open(spool,
		service.Workers(workers),
		service.MaxBodyBytes(maxBody),
		service.MaxExpandedJobs(maxJobs),
		service.MaxActiveSweeps(maxActive),
		service.DrainTimeout(drain),
		service.LeaseTTL(leaseTTL),
	)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout (flushed before serving) so
	// scripts using port 0 can find the server.
	fmt.Printf("rotord: listening on %s (spool %s, %d workers)\n", ln.Addr(), spool, srv.NumWorkers())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
	}
	// Graceful stop: finish in-flight responses briefly, then drain the
	// pool under the bounded deadline via srv.Close (deferred). A SIGKILL
	// skips all of this and still loses nothing but in-flight rows — the
	// spool resumes them, quarantining anything a crash left half-written.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func runWorker(addr, join, name string, parallel int) error {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := cluster.NewWorker(cluster.WorkerOptions{
		Coordinator: join,
		Name:        name,
		Parallel:    parallel,
		Version:     version.Version,
		Pid:         os.Getpid(),
		Logf:        log.Printf,
	})

	// The worker serves only its own observability endpoints (/healthz,
	// /metrics); all work arrives by pulling leases from the coordinator,
	// so nothing needs to reach the worker's listener for it to function.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("rotord: listening on %s (worker %s -> %s)\n", ln.Addr(), name, join)

	httpSrv := &http.Server{Handler: w.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- w.Run(ctx) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		cancel()
		return err
	case err := <-runErr:
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			return err
		}
		return nil
	case <-sig:
	}
	// A dying worker just stops pulling leases; anything it held past its
	// deadline is reassigned by the coordinator, byte-identically.
	cancel()
	<-runErr
	shutdownCtx, shutdownCancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer shutdownCancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

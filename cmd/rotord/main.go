// Command rotord serves rotor-router sweeps over HTTP: a long-running job
// server that accepts wire-format SweepSpecs, shards their expanded job
// grids across a bounded worker pool shared by all in-flight sweeps, and
// streams rows back as JSONL in canonical grid order — byte-identical to
// library-mode rotorring.RunSweep for the same spec, across shard counts,
// server restarts and row-cache hits.
//
// Progress checkpoints and the content-addressed row cache live in the
// spool directory; killing the server and restarting it on the same spool
// resumes every unfinished sweep at its completed-row watermark, and any
// sweep directory recovery cannot trust (a crash landed mid-write) is
// moved to spool/quarantine/ instead of blocking the boot.
//
//	rotord -addr 127.0.0.1:8080 -spool /var/lib/rotord
//
// The API (see README.md, "Service" and "Operations", for a walkthrough):
//
//	POST   /v1/sweeps            submit a spec ({"v":1,"topologies":...})
//	GET    /v1/sweeps            list sweeps
//	GET    /v1/sweeps/{id}       status (jobs, completed, cacheHits)
//	GET    /v1/sweeps/{id}/rows  stream JSONL rows; ?from=N resumes at row
//	                             N, ?format=csv|summary re-renders via the
//	                             sink registry
//	DELETE /v1/sweeps/{id}       cancel the sweep and remove its spool
//	GET    /v1/registries        registered names for client introspection
//	GET    /healthz              liveness probe
//	GET    /readyz               readiness probe (recovery done, pool live)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rotorring/internal/service"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rotord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rotord", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	spool := fs.String("spool", "rotord-spool", "spool directory: sweep checkpoints and the content-addressed row cache")
	workers := fs.Int("workers", 0, "shared worker pool size (0 = GOMAXPROCS); never affects result bytes")
	maxBody := fs.Int64("max-body-bytes", 0, "largest accepted spec body in bytes (0 = the 1 MiB default); over-limit POSTs get 413")
	maxJobs := fs.Int("max-jobs", 0, "largest job grid one sweep may expand to (0 = unlimited); larger sweeps get 413")
	maxActive := fs.Int("max-active", 0, "most concurrently running sweeps (0 = unlimited); excess submissions get 429 + Retry-After")
	drain := fs.Duration("drain", 0, "how long shutdown waits for in-flight jobs (0 = the 30s default); the spool watermark stays exact either way")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := service.Open(*spool,
		service.Workers(*workers),
		service.MaxBodyBytes(*maxBody),
		service.MaxExpandedJobs(*maxJobs),
		service.MaxActiveSweeps(*maxActive),
		service.DrainTimeout(*drain),
	)
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address goes to stdout (flushed before serving) so
	// scripts using port 0 can find the server.
	fmt.Printf("rotord: listening on %s (spool %s, %d workers)\n", ln.Addr(), *spool, srv.NumWorkers())

	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case <-sig:
	}
	// Graceful stop: finish in-flight responses briefly, then drain the
	// pool under the bounded deadline via srv.Close (deferred). A SIGKILL
	// skips all of this and still loses nothing but in-flight rows — the
	// spool resumes them, quarantining anything a crash left half-written.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"

	"rotorring/internal/engine"
)

func TestRotorRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-topology", "ring", "-n", "128", "-k", "4",
		"-place", "equal", "-pointers", "negative", "-return"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ring(128)", "cover time", "limit cycle", "return time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWalkRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-topology", "ring", "-n", "128", "-k", "4", "-walk", "-trials", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E[cover]") {
		t.Errorf("output missing expectation:\n%s", buf.String())
	}
}

func TestTopologies(t *testing.T) {
	cases := map[string][]string{
		"ring":      {"-n", "16"},
		"path":      {"-n", "16"},
		"grid":      {"-n", "5"},
		"torus":     {"-n", "4"},
		"complete":  {"-n", "8"},
		"star":      {"-n", "8"},
		"hypercube": {"-n", "3"},
		"btree":     {"-n", "3"},
	}
	for topo, extra := range cases {
		var buf bytes.Buffer
		args := append([]string{"-topology", topo, "-k", "2", "-place", "random", "-pointers", "random"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

// TestTopologySpecList: -topology takes a comma list of parameterized
// specs, sweeping a heterogeneous grid in one run with byte-identical
// output across worker counts.
func TestTopologySpecList(t *testing.T) {
	outputs := make([]string, 0, 2)
	for _, w := range []string{"1", "8"} {
		var buf bytes.Buffer
		err := run([]string{"-topology", "ring,grid:8x4,torus:8x8,rr:3", "-n", "32",
			"-k", "2", "-workers", w, "-format", "jsonl"}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	if outputs[0] != outputs[1] {
		t.Error("mixed-topology jsonl differs across -workers")
	}
	for _, want := range []string{`"topology":"ring"`, `"spec":"grid:8x4"`,
		`"spec":"torus:8x8"`, `"spec":"rr:3x32"`, `"max_degree":4`} {
		if !strings.Contains(outputs[0], want) {
			t.Errorf("output missing %s:\n%s", want, outputs[0])
		}
	}

	// A self-sized single spec renders the text header from its own size.
	var buf bytes.Buffer
	if err := run([]string{"-topology", "grid:8x4", "-k", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "grid(8x4)") {
		t.Errorf("missing self-sized topology header:\n%s", buf.String())
	}

	// A grid whose shared graph cannot exist (rr needs n*d even) degrades
	// to per-row failures in the summary table; only a single
	// configuration fails hard.
	buf.Reset()
	if err := run([]string{"-topology", "rr:3", "-n", "9", "-k", "2,4"}, &buf); err != nil {
		t.Fatalf("unbuildable grid should degrade, got: %v", err)
	}
	if got := strings.Count(buf.String(), "failed=1"); got != 2 {
		t.Errorf("want 2 failed cells in the table:\n%s", buf.String())
	}
	if err := run([]string{"-topology", "rr:3", "-n", "9", "-k", "2"}, &buf); err == nil {
		t.Error("single unbuildable configuration should fail hard")
	}
}

func TestSweepText(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "32,64", "-k", "2,4", "-place", "single,equal",
		"-pointers", "zero", "-replicas", "2"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sweep: 8 cells x 2 replicas") {
		t.Errorf("missing sweep header:\n%s", out)
	}
	if got := strings.Count(out, "ring "); got != 8 {
		t.Errorf("summary table has %d cells, want 8:\n%s", got, out)
	}
}

func TestSweepCSV(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "32", "-k", "2,4", "-format", "csv"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // header + 2 cells x 1 replica
		t.Fatalf("got %d CSV lines, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "cell,topology,n,k,") {
		t.Errorf("unexpected CSV header: %s", lines[0])
	}
}

// TestSweepWorkerIndependence: the command's structured output is
// byte-identical whatever -workers is set to.
func TestSweepWorkerIndependence(t *testing.T) {
	outputs := make([]string, 0, 3)
	for _, w := range []string{"1", "4", "8"} {
		var buf bytes.Buffer
		err := run([]string{"-n", "32,48", "-k", "2,3", "-place", "random",
			"-pointers", "random", "-replicas", "3", "-workers", w,
			"-format", "jsonl"}, &buf)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, buf.String())
	}
	for i := 1; i < len(outputs); i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("jsonl output differs between -workers settings:\n%s\nvs\n%s",
				outputs[0], outputs[i])
		}
	}
	if !strings.Contains(outputs[0], `"seed"`) {
		t.Errorf("jsonl rows missing seed field:\n%s", outputs[0])
	}
}

func TestWalkSweepReturn(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "32", "-k", "4", "-walk", "-return",
		"-trials", "2", "-format", "jsonl"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"metric":"return"`) {
		t.Errorf("walk return sweep missing metric field:\n%s", buf.String())
	}
}

// TestSingleCellReplicas: a 1-cell rotor sweep with replicas reports the
// aggregate, not just the first replica.
func TestSingleCellReplicas(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "64", "-k", "2", "-place", "random", "-replicas", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 replicas") || !strings.Contains(out, "±") {
		t.Errorf("replica aggregate missing:\n%s", out)
	}
}

// TestSweepPartialFailure: a grid where one cell exhausts its budget still
// renders the summary table, flagging the failed cell.
func TestSweepPartialFailure(t *testing.T) {
	var buf bytes.Buffer
	// Budget 40 covers ring(32) with k=2 (cover 27) but not ring(128).
	err := run([]string{"-n", "32,128", "-k", "2", "-budget", "40"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "failed=1") {
		t.Errorf("failed cell not flagged:\n%s", out)
	}
	if !strings.Contains(out, "n=32") {
		t.Errorf("successful cell missing from table:\n%s", out)
	}
}

func TestBadInputs(t *testing.T) {
	for name, args := range map[string][]string{
		"topology":      {"-topology", "moebius"},
		"topology-spec": {"-topology", "grid:0x5"},
		"topology-list": {"-topology", "ring,rr"},
		"place":         {"-place", "everywhere"},
		"pointers":      {"-pointers", "sideways"},
		"flag":          {"-bogus"},
		"n":             {"-n", "12,zebra"},
		"k":             {"-k", "0"},
		"format":        {"-format", "yaml"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%s: bad input accepted", name)
		}
	}
}

// TestScheduleFlag: -schedule takes a comma list of perturbation specs
// (whose parameters themselves contain commas), sweeps them as an
// innermost axis, and renders the schedule column in text mode.
func TestScheduleFlag(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "64", "-k", "4",
		"-schedule", "none,delay:p=0.5,edgefail:t=8,count=2,repair=20"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sched=delay:p=0.5", "sched=edgefail:t=8,count=2,repair=20"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// JSONL rows carry the canonical schedule spec.
	buf.Reset()
	if err := run([]string{"-n", "64", "-k", "4", "-schedule", "reset:t=4", "-format", "jsonl"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"schedule":"reset:t=4"`) {
		t.Errorf("JSONL row missing schedule field:\n%s", buf.String())
	}

	// The restab_time metric is reachable by name.
	buf.Reset()
	if err := run([]string{"-n", "32", "-k", "2", "-place", "random", "-pointers", "random",
		"-schedule", "edgefail:t=64,count=1", "-metric", "restab_time"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "restab_time metric") {
		t.Errorf("text output missing restab_time header:\n%s", buf.String())
	}

	// Malformed schedules fail fast.
	if err := run([]string{"-n", "32", "-k", "2", "-schedule", "delay:p=7"}, &buf); err == nil {
		t.Error("bad schedule accepted")
	}
}

// TestMissionRun: mission sweeps through the CLI — the summary line labels
// the mission column, and conflicting or malformed missions fail fast.
func TestMissionRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-n", "64", "-k", "4", "-mission", "explore,patrol:horizon=256"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"mission=explore", "mission=patrol:horizon=256", "mission metric"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	if err := run([]string{"-n", "32", "-k", "2", "-mission", "explore", "-return"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "-mission") {
		t.Errorf("-return + -mission not rejected: %v", err)
	}
	if err := run([]string{"-n", "32", "-k", "2", "-mission", "patrol:horizon=0"}, &buf); err == nil {
		t.Error("bad mission accepted")
	}
}

// TestSplitSpecs: the family-aware comma split keeps parameter fragments
// attached to their spec, for schedules and missions alike.
func TestSplitSpecs(t *testing.T) {
	got := splitSpecs("none, edgefail:t=10,count=2 ,churn:join=1@2,leave=3@4,reset:t=9", engine.LookupSchedule)
	want := []string{"none", "edgefail:t=10,count=2", "churn:join=1@2,leave=3@4", "reset:t=9"}
	if len(got) != len(want) {
		t.Fatalf("splitSpecs = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitSpecs[%d] = %q, want %q", i, got[i], want[i])
		}
	}

	got = splitSpecs("explore, patrol:horizon=64,warmup=8 ,quiesce:window=16,balance:horizon=9", engine.LookupMission)
	want = []string{"explore", "patrol:horizon=64,warmup=8", "quiesce:window=16", "balance:horizon=9"}
	if len(got) != len(want) {
		t.Fatalf("splitSpecs = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitSpecs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestUnknownRegistryNames: an unknown name on any registry-backed flag
// exits nonzero with the registered list in the error — fail-fast, before
// any grid expansion or engine work.
func TestUnknownRegistryNames(t *testing.T) {
	cases := map[string]struct {
		args []string
		want string // a registered name the error must advertise
	}{
		"process":  {[]string{"-process", "psychic"}, "rotor"},
		"metric":   {[]string{"-metric", "vibes"}, "cover"},
		"probes":   {[]string{"-probes", "telepathy:64", "-format", "jsonl"}, "coverage"},
		"format":   {[]string{"-format", "yaml"}, "jsonl"},
		"topology": {[]string{"-topology", "moebius"}, "ring"},
		"schedule": {[]string{"-schedule", "chaos:p=1"}, "delay"},
		"mission":  {[]string{"-mission", "warp"}, "patrol"},
	}
	for name, tc := range cases {
		var buf bytes.Buffer
		err := run(append([]string{"-n", "32", "-k", "2"}, tc.args...), &buf)
		if err == nil {
			t.Errorf("%s: unknown name accepted", name)
			continue
		}
		msg := err.Error()
		if !strings.Contains(msg, "registered:") || !strings.Contains(msg, tc.want) {
			t.Errorf("%s: error %q does not list registered names", name, msg)
		}
	}
}

// TestFormatViaSinkRegistry: -format resolves by name through the sink
// registry, so the summary sink (and any future registered format) works
// without command changes.
func TestFormatViaSinkRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "32,64", "-k", "2", "-format", "summary"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"n=32", "n=64"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary table missing %q:\n%s", want, out)
		}
	}
}

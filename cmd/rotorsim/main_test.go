package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRotorRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-topology", "ring", "-n", "128", "-k", "4",
		"-place", "equal", "-pointers", "negative", "-return"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ring(128)", "cover time", "limit cycle", "return time"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWalkRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-topology", "ring", "-n", "128", "-k", "4", "-walk", "-trials", "4"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "E[cover]") {
		t.Errorf("output missing expectation:\n%s", buf.String())
	}
}

func TestTopologies(t *testing.T) {
	cases := map[string][]string{
		"ring":      {"-n", "16"},
		"path":      {"-n", "16"},
		"grid":      {"-n", "5"},
		"torus":     {"-n", "4"},
		"complete":  {"-n", "8"},
		"star":      {"-n", "8"},
		"hypercube": {"-n", "3"},
		"btree":     {"-n", "3"},
	}
	for topo, extra := range cases {
		var buf bytes.Buffer
		args := append([]string{"-topology", topo, "-k", "2", "-place", "random", "-pointers", "random"}, extra...)
		if err := run(args, &buf); err != nil {
			t.Errorf("%s: %v", topo, err)
		}
	}
}

func TestBadInputs(t *testing.T) {
	for name, args := range map[string][]string{
		"topology": {"-topology", "moebius"},
		"place":    {"-place", "everywhere"},
		"pointers": {"-pointers", "sideways"},
		"flag":     {"-bogus"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%s: bad input accepted", name)
		}
	}
}

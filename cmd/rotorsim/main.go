// Command rotorsim runs multi-agent rotor-router (or parallel random-walk)
// experiments on the deterministic parallel sweep engine. Every flag that
// takes a value accepts a comma-separated list, turning a single run into a
// grid sweep; a single configuration is just a 1-cell sweep.
//
// Usage examples:
//
//	rotorsim -topology ring -n 1024 -k 8 -place equal -pointers negative
//	rotorsim -topology ring -n 1024 -k 8 -place single -pointers toward -return
//	rotorsim -topology grid -n 32 -k 4 -walk -trials 32
//	rotorsim -n 256,512,1024 -k 2,4,8 -place single,equal -format csv
//	rotorsim -n 512 -k 4,8 -replicas 16 -walk -workers 8 -format jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"rotorring/internal/engine"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotorsim:", err)
		os.Exit(1)
	}
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(flagName, s string) ([]int, error) {
	return parseList(s, func(p string) (int, error) {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("-%s: bad value %q (want positive integers)", flagName, p)
		}
		return v, nil
	})
}

// parseList parses a comma-separated list through a per-item parser.
func parseList[T any](s string, parse func(string) (T, error)) ([]T, error) {
	parts := strings.Split(s, ",")
	out := make([]T, 0, len(parts))
	for _, p := range parts {
		v, err := parse(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotorsim", flag.ContinueOnError)
	topology := fs.String("topology", "ring", "ring|path|grid|torus|complete|star|hypercube|btree")
	nFlag := fs.String("n", "1024", "size parameter list (nodes; side length for grid/torus; dimension for hypercube; levels for btree)")
	kFlag := fs.String("k", "4", "agent count list")
	place := fs.String("place", "equal", "placement list: single|equal|random")
	pointers := fs.String("pointers", "zero", "pointer init list: zero|negative|toward|random")
	seed := fs.Uint64("seed", 1, "base seed; per-job seeds are derived from it and the configuration")
	doReturn := fs.Bool("return", false, "measure the recurrence metric (rotor: limit-cycle return time; walk: mean inter-visit gap); text mode adds it after the cover time")
	walk := fs.Bool("walk", false, "simulate parallel random walks instead")
	trials := fs.Int("trials", 16, "trials for the walk expectation estimate (walk replicas)")
	replicas := fs.Int("replicas", 1, "replicas per grid cell, each with a derived seed")
	workers := fs.Int("workers", 0, "sweep engine worker pool size (0 = GOMAXPROCS); never affects results")
	kernelFlag := fs.String("kernel", "auto", "stepping tier: auto|generic|fast; rotor results are bit-identical across tiers, walk trials are resampled (statistically equivalent)")
	format := fs.String("format", "text", "output format: text|jsonl|csv")
	budget := fs.Int64("budget", 0, "round budget (0 = automatic)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	replicasSet, trialsSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "replicas":
			replicasSet = true
		case "trials":
			trialsSet = true
		}
	})
	if trialsSet && replicasSet {
		return fmt.Errorf("-trials and -replicas are aliases for walks; set only one")
	}
	if trialsSet && !*walk {
		return fmt.Errorf("-trials applies only to -walk (use -replicas for rotor sweeps)")
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas: need at least 1, got %d", *replicas)
	}
	if *trials < 1 {
		return fmt.Errorf("-trials: need at least 1, got %d", *trials)
	}

	ns, err := parseInts("n", *nFlag)
	if err != nil {
		return err
	}
	ks, err := parseInts("k", *kFlag)
	if err != nil {
		return err
	}
	places, err := parseList(*place, engine.ParsePlacement)
	if err != nil {
		return err
	}
	ptrs, err := parseList(*pointers, engine.ParsePointer)
	if err != nil {
		return err
	}
	kern, err := engine.ParseKernel(*kernelFlag)
	if err != nil {
		return err
	}

	spec := engine.SweepSpec{
		Topology:   *topology,
		Sizes:      ns,
		Agents:     ks,
		Placements: places,
		Pointers:   ptrs,
		Process:    engine.ProcRotor,
		Metric:     engine.MetricCover,
		Replicas:   *replicas,
		Seed:       *seed,
		MaxRounds:  *budget,
		Kernel:     kern,
	}
	if *walk {
		spec.Process = engine.ProcWalk
		// Walks default to -trials replicas; an explicit -replicas wins
		// (the two flags are mutually exclusive, checked above).
		if !replicasSet {
			spec.Replicas = *trials
		}
	}
	eng := engine.New(engine.Workers(*workers))

	switch *format {
	case "jsonl", "csv":
		// Structured mode runs one sweep; -return selects the metric.
		if *doReturn {
			spec.Metric = engine.MetricReturn
		}
		var sink engine.Sink
		if *format == "jsonl" {
			sink = engine.NewJSONLSink(out)
		} else {
			sink = engine.NewCSVSink(out)
		}
		_, err := eng.Run(spec, sink)
		return err
	case "text":
		return runText(eng, spec, *doReturn, *walk, out)
	default:
		return fmt.Errorf("unknown format %q (text|jsonl|csv)", *format)
	}
}

// runText renders sweeps human-readably: legacy single-line output for a
// 1-cell sweep, a summary table otherwise.
func runText(eng *engine.Engine, spec engine.SweepSpec, doReturn, walk bool, out io.Writer) error {
	cells, err := spec.Cells()
	if err != nil {
		return err
	}
	single := len(cells) == 1
	// The per-topology line describes one graph; printing it for the first
	// of several sizes would misstate the sweep.
	if len(spec.Sizes) == 1 {
		g, err := engine.BuildGraph(spec.Topology, spec.Sizes[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "topology %s: %d nodes, %d edges, diameter %d\n",
			g.Name(), g.NumNodes(), g.NumEdges(), g.Diameter())
	}

	start := time.Now()
	sum := engine.NewSummarySink()
	rows, err := eng.Run(spec, sum)
	if err != nil {
		return err
	}
	// A single configuration fails hard; a grid degrades gracefully and
	// reports per-cell failures in the summary table instead.
	if single {
		if err := firstRowErr(rows); err != nil {
			return err
		}
	}
	elapsed := time.Since(start).Round(time.Millisecond)

	switch {
	case walk && single:
		c := sum.Cells()[0]
		fmt.Fprintf(out, "random walks: k=%d, E[cover] = %.0f ± %.0f rounds (median %.0f, range [%.0f, %.0f], %d trials, %v)\n",
			c.K, c.Mean, c.StdErr, c.Median, c.Min, c.Max, c.Replicas, elapsed)
	case single && spec.Replicas == 1:
		r := rows[0]
		fmt.Fprintf(out, "rotor-router: k=%d, cover time = %.0f rounds (%v)\n", r.K, r.Value, elapsed)
	case single:
		c := sum.Cells()[0]
		fmt.Fprintf(out, "rotor-router: k=%d, cover time = %.0f ± %.0f rounds (median %.0f, range [%.0f, %.0f], %d replicas, %v)\n",
			c.K, c.Mean, c.StdErr, c.Median, c.Min, c.Max, c.Replicas, elapsed)
	default:
		fmt.Fprintf(out, "sweep: %d cells x %d replicas on %d workers, cover metric (%v)\n",
			len(cells), spec.Replicas, eng.NumWorkers(), elapsed)
		if err := sum.WriteTable(out); err != nil {
			return err
		}
	}

	if !doReturn {
		return nil
	}
	retSpec := spec
	retSpec.Metric = engine.MetricReturn
	start = time.Now()
	retSum := engine.NewSummarySink()
	retRows, err := eng.Run(retSpec, retSum)
	if err != nil {
		return err
	}
	if single {
		if err := firstRowErr(retRows); err != nil {
			return fmt.Errorf("return time: %w", err)
		}
	}
	elapsed = time.Since(start).Round(time.Millisecond)
	switch {
	case walk && single:
		// The walk has no limit cycle; its recurrence measure is the mean
		// inter-visit gap over a long window (expectation n/k on the ring).
		c := retSum.Cells()[0]
		fmt.Fprintf(out, "recurrence: mean inter-visit gap = %.1f ± %.1f rounds (%d trials, %v)\n",
			c.Mean, c.StdErr, c.Replicas, elapsed)
	case single:
		r := retRows[0]
		fmt.Fprintf(out, "limit cycle: period %d, return time %.0f (per-node visits %d..%d, %v)\n",
			r.Period, r.Value, r.MinVisits, r.MaxVisits, elapsed)
	default:
		fmt.Fprintf(out, "sweep: return-time metric (%v)\n", elapsed)
		return retSum.WriteTable(out)
	}
	return nil
}

// firstRowErr surfaces the first failed job of a sweep.
func firstRowErr(rows []engine.Row) error {
	for _, r := range rows {
		if r.Err != "" {
			return fmt.Errorf("n=%d k=%d replica=%d: %s", r.N, r.K, r.Replica, r.Err)
		}
	}
	return nil
}

// Command rotorsim runs multi-agent rotor-router (or parallel random-walk)
// experiments on the deterministic parallel sweep engine. Every flag that
// takes a value accepts a comma-separated list, turning a single run into a
// grid sweep; a single configuration is just a 1-cell sweep.
//
// The process, the metric, the perturbation schedule and the mission are
// selected by name from the engine's registries (-process rotor|walk...,
// -metric cover|return|restab_time..., -schedule
// none|delay:...|edgefail:..., -mission none|explore|patrol:...), so
// processes, metrics and scenario families registered by other packages
// are reachable without command changes; -walk and -return remain as
// deprecated aliases. The -probes flag attaches registered stride-sampled
// probes whose time series streams into the JSONL rows. Output formats
// other than text resolve through the sink registry the same way
// (-format jsonl|csv|summary), and unknown names on any of these flags
// exit nonzero listing what is registered.
//
// Usage examples:
//
//	rotorsim -topology ring -n 1024 -k 8 -place equal -pointers negative
//	rotorsim -topology ring -n 1024 -k 8 -place single -pointers toward -metric return
//	rotorsim -topology grid -n 32 -k 4 -process walk -trials 32
//	rotorsim -n 256,512,1024 -k 2,4,8 -place single,equal -format csv
//	rotorsim -n 512 -k 4,8 -replicas 16 -process walk -workers 8 -format jsonl
//	rotorsim -n 1024 -k 8 -probes coverage:256,histogram:1024 -format jsonl
//	rotorsim -n 1024 -k 8 -schedule "none,delay:p=0.25,edgefail:t=4096,count=2" -format jsonl
//	rotorsim -n 128 -k 4 -place random -pointers random -schedule "edgefail:t=131072" -metric restab_time
//	rotorsim -n 256 -k 8 -mission "explore,patrol:horizon=4096" -format jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"rotorring/internal/engine"
	"rotorring/internal/graph"
	"rotorring/probe"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotorsim:", err)
		os.Exit(1)
	}
}

// parseInts parses a comma-separated list of positive integers.
func parseInts(flagName, s string) ([]int, error) {
	return parseList(s, func(p string) (int, error) {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("-%s: bad value %q (want positive integers)", flagName, p)
		}
		return v, nil
	})
}

// parseList parses a comma-separated list through a per-item parser.
func parseList[T any](s string, parse func(string) (T, error)) ([]T, error) {
	parts := strings.Split(s, ",")
	out := make([]T, 0, len(parts))
	for _, p := range parts {
		v, err := parse(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotorsim", flag.ContinueOnError)
	topology := fs.String("topology", "ring", "comma-separated topology specs, e.g. ring,grid:64x32,torus:128x8,rr:3 (families: "+strings.Join(engine.TopologyNames(), "|")+"); self-sized specs ignore -n")
	nFlag := fs.String("n", "1024", "size parameter list for axis-sized topologies (nodes; side length for grid/torus; dimension for hypercube; levels for btree)")
	kFlag := fs.String("k", "4", "agent count list")
	place := fs.String("place", "equal", "placement list: single|equal|random")
	pointers := fs.String("pointers", "zero", "pointer init list: zero|negative|toward|random")
	seed := fs.Uint64("seed", 1, "base seed; per-job seeds are derived from it and the configuration")
	process := fs.String("process", "", "process to run: "+strings.Join(engine.ProcessNames(), "|")+" (default rotor)")
	metric := fs.String("metric", "", "metric to measure: "+strings.Join(engine.MetricNames(), "|")+" (default cover)")
	probes := fs.String("probes", "", "stride-sampled probes as name:stride pairs, e.g. coverage:256,histogram:1024 (names: "+strings.Join(probe.Names(), "|")+"); series appear in jsonl rows")
	schedule := fs.String("schedule", "none", "comma-separated perturbation schedules, e.g. none,delay:p=0.25,edgefail:t=1000,count=4 — note count/repair keys belong to the preceding spec (families: "+strings.Join(engine.ScheduleNames(), "|")+")")
	mission := fs.String("mission", "none", "comma-separated missions, e.g. none,explore,patrol:horizon=4096 — note warmup/window keys belong to the preceding spec (families: "+strings.Join(engine.MissionNames(), "|")+")")
	doReturn := fs.Bool("return", false, "deprecated alias for -metric return; in text mode, adds the recurrence metric after the cover time")
	walk := fs.Bool("walk", false, "deprecated alias for -process walk")
	trials := fs.Int("trials", 16, "trials for the walk expectation estimate (walk replicas)")
	replicas := fs.Int("replicas", 1, "replicas per grid cell, each with a derived seed")
	workers := fs.Int("workers", 0, "sweep engine worker pool size (0 = GOMAXPROCS); never affects results")
	kernelFlag := fs.String("kernel", "auto", "stepping tier: auto|generic|fast|parallel; rotor results are bit-identical across tiers, walk trials are resampled (statistically equivalent)")
	format := fs.String("format", "text", "output format: text, or a registered sink: "+strings.Join(engine.SinkNames(), "|"))
	budget := fs.Int64("budget", 0, "round budget (0 = automatic)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	replicasSet, trialsSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "replicas":
			replicasSet = true
		case "trials":
			trialsSet = true
		}
	})
	// Resolve the process name: explicit -process wins, the deprecated
	// -walk alias is honored otherwise, and conflicts are rejected.
	procName := strings.ToLower(*process)
	if *walk {
		if procName != "" && procName != engine.ProcWalk {
			return fmt.Errorf("-walk conflicts with -process %s", procName)
		}
		procName = engine.ProcWalk
	}
	if procName == "" {
		procName = engine.ProcRotor
	}
	// Registry names fail fast, before any grid expansion or engine work,
	// so a typo dies with the registered list instead of mid-sweep.
	if _, ok := engine.LookupProcess(procName); !ok {
		return fmt.Errorf("-process: unknown process %q (registered: %s)",
			procName, strings.Join(engine.ProcessNames(), "|"))
	}
	metricName := strings.ToLower(*metric)
	if *doReturn && metricName != "" && metricName != engine.MetricReturn {
		return fmt.Errorf("-return conflicts with -metric %s", metricName)
	}
	if metricName != "" {
		if _, ok := engine.LookupMetric(metricName); !ok {
			return fmt.Errorf("-metric: unknown metric %q (registered: %s)",
				metricName, strings.Join(engine.MetricNames(), "|"))
		}
	}

	if trialsSet && replicasSet {
		return fmt.Errorf("-trials and -replicas are aliases for walks; set only one")
	}
	if trialsSet && procName != engine.ProcWalk {
		return fmt.Errorf("-trials applies only to walks (use -replicas for other sweeps)")
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas: need at least 1, got %d", *replicas)
	}
	if *trials < 1 {
		return fmt.Errorf("-trials: need at least 1, got %d", *trials)
	}

	ns, err := parseInts("n", *nFlag)
	if err != nil {
		return err
	}
	topos, err := parseList(*topology, func(p string) (engine.Topo, error) {
		t, err := engine.ParseTopo(p)
		if err != nil {
			return "", fmt.Errorf("-topology: %w", err)
		}
		return t, nil
	})
	if err != nil {
		return err
	}
	ks, err := parseInts("k", *kFlag)
	if err != nil {
		return err
	}
	places, err := parseList(*place, engine.ParsePlacement)
	if err != nil {
		return err
	}
	ptrs, err := parseList(*pointers, engine.ParsePointer)
	if err != nil {
		return err
	}
	kern, err := engine.ParseKernel(*kernelFlag)
	if err != nil {
		return err
	}
	scheds := make([]engine.Schedule, 0, 1)
	for _, p := range splitSpecs(*schedule, engine.LookupSchedule) {
		sc, err := engine.ParseSchedule(p)
		if err != nil {
			return fmt.Errorf("-schedule: %w", err)
		}
		scheds = append(scheds, sc)
	}
	// Mission names fail fast like every other registry flag: a typo dies
	// here with the registered list instead of mid-sweep.
	missions := make([]engine.Mission, 0, 1)
	missioned := false
	for _, p := range splitSpecs(*mission, engine.LookupMission) {
		mi, err := engine.ParseMission(p)
		if err != nil {
			return fmt.Errorf("-mission: %w", err)
		}
		missions = append(missions, mi)
		if mi != engine.MissionNone {
			missioned = true
		}
	}
	if missioned && *doReturn {
		return fmt.Errorf("-return does not combine with -mission (missions replace the metric)")
	}
	probeSpecs, err := parseProbes(*probes)
	if err != nil {
		return err
	}
	if len(probeSpecs) > 0 && *format != "jsonl" {
		// Only the JSONL sink serializes series; computing them for text
		// or CSV output would burn the sampling cost and discard it.
		return fmt.Errorf("-probes requires -format jsonl (series are not representable in %s output)", *format)
	}

	spec := engine.SweepSpec{
		Topologies: topos,
		Sizes:      ns,
		Agents:     ks,
		Placements: places,
		Pointers:   ptrs,
		Process:    procName,
		Metric:     metricName,
		Probes:     probeSpecs,
		Replicas:   *replicas,
		Seed:       *seed,
		MaxRounds:  *budget,
		Kernel:     kern,
		Schedules:  scheds,
		Missions:   missions,
	}
	if procName == engine.ProcWalk && !replicasSet {
		// Walks default to -trials replicas; an explicit -replicas wins
		// (the two flags are mutually exclusive, checked above).
		spec.Replicas = *trials
	}
	eng := engine.New(engine.Workers(*workers))

	if *format == "text" {
		// Text mode renders the spec's metric; with the legacy -return
		// flag (and no explicit recurrence metric) the recurrence sweep
		// runs after the cover sweep, as it always has.
		addReturn := *doReturn && spec.Metric == ""
		return runText(eng, spec, addReturn, out)
	}
	// Every other format resolves by name through the sink registry — the
	// same path the rotord service's ?format= uses — so formats registered
	// by other packages work here without command changes. Structured mode
	// runs one sweep; -return selects the metric when -metric did not.
	if *doReturn && spec.Metric == "" {
		spec.Metric = engine.MetricReturn
	}
	sink, err := engine.NewSink(*format, out)
	if err != nil {
		return err
	}
	_, err = eng.Run(spec, sink)
	return err
}

// splitSpecs splits a registry-spec list flag (-schedule, -mission) into
// specs: commas separate specs, but a fragment whose head is not a
// registered family continues the previous spec's parameter list — spec
// parameters themselves contain commas ("edgefail:t=1000,count=4",
// "patrol:horizon=4096,warmup=64").
func splitSpecs[T any](s string, lookup func(string) (T, bool)) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		p := strings.TrimSpace(part)
		head := strings.ToLower(p)
		if i := strings.IndexAny(head, ":="); i >= 0 {
			head = head[:i]
		}
		if _, ok := lookup(head); ok || len(out) == 0 {
			out = append(out, p)
		} else {
			out[len(out)-1] += "," + p
		}
	}
	return out
}

// parseProbes parses the -probes flag: comma-separated name:stride pairs.
func parseProbes(s string) ([]engine.ProbeSpec, error) {
	if s == "" {
		return nil, nil
	}
	return parseList(s, func(p string) (engine.ProbeSpec, error) {
		name, strideStr, ok := strings.Cut(p, ":")
		if !ok {
			return engine.ProbeSpec{}, fmt.Errorf("-probes: %q (want name:stride)", p)
		}
		name = strings.ToLower(name) // match the -process/-metric flags
		if !probe.Known(name) {
			return engine.ProbeSpec{}, fmt.Errorf("-probes: unknown probe %q (registered: %s)",
				name, strings.Join(probe.Names(), "|"))
		}
		stride, err := strconv.ParseInt(strideStr, 10, 64)
		if err != nil || stride < 1 {
			return engine.ProbeSpec{}, fmt.Errorf("-probes: bad stride in %q (want a positive integer)", p)
		}
		return engine.ProbeSpec{Name: name, Stride: stride}, nil
	})
}

// runText renders sweeps human-readably: legacy single-line output for a
// 1-cell sweep, a summary table otherwise. With addReturn the recurrence
// sweep runs after the cover sweep (the legacy -return behavior).
func runText(eng *engine.Engine, spec engine.SweepSpec, addReturn bool, out io.Writer) error {
	cells, err := spec.Cells()
	if err != nil {
		return err
	}
	single := len(cells) == 1
	walk := spec.Process == engine.ProcWalk
	// The per-topology line describes one graph; it is printed only when
	// every cell runs on the same instance (one topology, one size) —
	// rebuilt here from the resolved spec and the sweep's graph seed, so
	// for seeded families it describes exactly the graph the jobs ran on.
	oneGraph := true
	for _, c := range cells[1:] {
		if c.Spec != cells[0].Spec {
			oneGraph = false
			break
		}
	}
	if oneGraph {
		g, err := headerGraph(spec.Seed, cells[0])
		switch {
		case err != nil && single:
			// A single configuration whose graph cannot exist fails hard,
			// as it always has (e.g. "ring" at n=2).
			return err
		case err == nil:
			fmt.Fprintf(out, "topology %s: %d nodes, %d edges, max degree %d, diameter %d\n",
				g.Name(), g.NumNodes(), g.NumEdges(), g.MaxDegree(), g.Diameter())
			// A failing grid skips the header and degrades to per-row
			// errors in the summary table, like any other per-job failure.
		}
	}

	if spec.Metric != engine.MetricReturn {
		start := time.Now()
		sum := engine.NewSummarySink()
		rows, err := eng.Run(spec, sum)
		if err != nil {
			return err
		}
		// A single configuration fails hard; a grid degrades gracefully
		// and reports per-cell failures in the summary table instead.
		if single {
			if err := firstRowErr(rows); err != nil {
				return err
			}
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		// The legacy single-line formats speak cover-time language; other
		// registry metrics (restab_time, ...) and mission sweeps render as
		// a summary table.
		coverish := spec.Metric == "" || spec.Metric == engine.MetricCover
		for _, m := range spec.Missions {
			if m != engine.MissionNone {
				coverish = false
			}
		}

		label := spec.Metric
		if label == "" || label == engine.MetricCover {
			label = "mission" // only missions force a table on the cover metric
		}
		switch {
		case !coverish:
			fmt.Fprintf(out, "sweep: %d cells x %d replicas on %d workers, %s metric (%v)\n",
				len(cells), spec.Replicas, eng.NumWorkers(), label, elapsed)
			if err := sum.WriteTable(out); err != nil {
				return err
			}
		case walk && single:
			c := sum.Cells()[0]
			fmt.Fprintf(out, "random walks: k=%d, E[cover] = %.0f ± %.0f rounds (median %.0f, range [%.0f, %.0f], %d trials, %v)\n",
				c.K, c.Mean, c.StdErr, c.Median, c.Min, c.Max, c.Replicas, elapsed)
		case single && spec.Replicas == 1:
			r := rows[0]
			fmt.Fprintf(out, "rotor-router: k=%d, cover time = %.0f rounds (%v)\n", r.K, r.Value, elapsed)
		case single:
			c := sum.Cells()[0]
			fmt.Fprintf(out, "rotor-router: k=%d, cover time = %.0f ± %.0f rounds (median %.0f, range [%.0f, %.0f], %d replicas, %v)\n",
				c.K, c.Mean, c.StdErr, c.Median, c.Min, c.Max, c.Replicas, elapsed)
		default:
			fmt.Fprintf(out, "sweep: %d cells x %d replicas on %d workers, cover metric (%v)\n",
				len(cells), spec.Replicas, eng.NumWorkers(), elapsed)
			if err := sum.WriteTable(out); err != nil {
				return err
			}
		}
		if !addReturn {
			return nil
		}
	}

	retSpec := spec
	retSpec.Metric = engine.MetricReturn
	retSpec.Probes = nil // probes require the cover metric
	start := time.Now()
	retSum := engine.NewSummarySink()
	retRows, err := eng.Run(retSpec, retSum)
	if err != nil {
		return err
	}
	if single {
		if err := firstRowErr(retRows); err != nil {
			return fmt.Errorf("return time: %w", err)
		}
	}
	elapsed := time.Since(start).Round(time.Millisecond)
	switch {
	case walk && single:
		// The walk has no limit cycle; its recurrence measure is the mean
		// inter-visit gap over a long window (expectation n/k on the ring).
		c := retSum.Cells()[0]
		fmt.Fprintf(out, "recurrence: mean inter-visit gap = %.1f ± %.1f rounds (%d trials, %v)\n",
			c.Mean, c.StdErr, c.Replicas, elapsed)
	case single:
		r := retRows[0]
		fmt.Fprintf(out, "limit cycle: period %d, return time %.0f (per-node visits %d..%d, %v)\n",
			r.Period, r.Value, r.MinVisits, r.MaxVisits, elapsed)
	default:
		fmt.Fprintf(out, "sweep: return-time metric (%v)\n", elapsed)
		return retSum.WriteTable(out)
	}
	return nil
}

// headerGraph rebuilds the one graph of a single-instance sweep from its
// resolved spec and the sweep's graph seed, so the header line describes
// exactly the graph the jobs run on (seeded families included).
func headerGraph(seed uint64, c engine.Cell) (*graph.Graph, error) {
	t := engine.Topo(c.Spec)
	gseed, err := engine.GraphSeed(seed, t, c.N)
	if err != nil {
		return nil, err
	}
	return engine.BuildTopo(t, c.N, gseed)
}

// firstRowErr surfaces the first failed job of a sweep.
func firstRowErr(rows []engine.Row) error {
	for _, r := range rows {
		if r.Err != "" {
			return fmt.Errorf("n=%d k=%d replica=%d: %s", r.N, r.K, r.Replica, r.Err)
		}
	}
	return nil
}

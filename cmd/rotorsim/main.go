// Command rotorsim runs one multi-agent rotor-router (or parallel
// random-walk) simulation and prints its headline metrics.
//
// Usage examples:
//
//	rotorsim -topology ring -n 1024 -k 8 -place equal -pointers negative
//	rotorsim -topology ring -n 1024 -k 8 -place single -pointers toward -return
//	rotorsim -topology grid -n 32 -k 4 -walk -trials 32
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rotorring"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rotorsim:", err)
		os.Exit(1)
	}
}

func buildGraph(topology string, n int) (*rotorring.Graph, error) {
	switch topology {
	case "ring":
		return rotorring.Ring(n), nil
	case "path":
		return rotorring.Path(n), nil
	case "grid":
		return rotorring.Grid2D(n, n), nil
	case "torus":
		return rotorring.Torus2D(n, n), nil
	case "complete":
		return rotorring.Complete(n), nil
	case "star":
		return rotorring.Star(n), nil
	case "hypercube":
		return rotorring.Hypercube(n), nil
	case "btree":
		return rotorring.CompleteBinaryTree(n), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topology)
	}
}

func placement(s string) (rotorring.PlacementPolicy, error) {
	switch s {
	case "single":
		return rotorring.PlaceSingleNode, nil
	case "equal":
		return rotorring.PlaceEqualSpacing, nil
	case "random":
		return rotorring.PlaceRandom, nil
	default:
		return 0, fmt.Errorf("unknown placement %q (single|equal|random)", s)
	}
}

func pointerPolicy(s string) (rotorring.PointerPolicy, error) {
	switch s {
	case "zero":
		return rotorring.PointerZero, nil
	case "negative":
		return rotorring.PointerNegative, nil
	case "toward":
		return rotorring.PointerTowardStart, nil
	case "random":
		return rotorring.PointerRandom, nil
	default:
		return 0, fmt.Errorf("unknown pointer policy %q (zero|negative|toward|random)", s)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rotorsim", flag.ContinueOnError)
	topology := fs.String("topology", "ring", "ring|path|grid|torus|complete|star|hypercube|btree")
	n := fs.Int("n", 1024, "size parameter (nodes; side length for grid/torus; dimension for hypercube; levels for btree)")
	k := fs.Int("k", 4, "number of agents")
	place := fs.String("place", "equal", "placement: single|equal|random")
	pointers := fs.String("pointers", "zero", "pointer init: zero|negative|toward|random")
	seed := fs.Uint64("seed", 1, "seed for randomized choices")
	doReturn := fs.Bool("return", false, "also measure limit-cycle return time")
	walk := fs.Bool("walk", false, "simulate parallel random walks instead")
	trials := fs.Int("trials", 16, "trials for the walk expectation estimate")
	budget := fs.Int64("budget", 0, "round budget (0 = automatic)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildGraph(*topology, *n)
	if err != nil {
		return err
	}
	pl, err := placement(*place)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "topology %s: %d nodes, %d edges, diameter %d\n",
		g.Name(), g.NumNodes(), g.NumEdges(), g.Diameter())

	if *walk {
		w, err := rotorring.NewWalkSim(g, rotorring.Agents(*k), rotorring.Place(pl), rotorring.Seed(*seed))
		if err != nil {
			return err
		}
		start := time.Now()
		sum, err := w.ExpectedCoverTime(*trials, *budget)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "random walks: k=%d, E[cover] = %.0f ± %.0f rounds (median %.0f, range [%.0f, %.0f], %d trials, %v)\n",
			*k, sum.Mean, sum.StdErr, sum.Median, sum.Min, sum.Max, sum.Trials, time.Since(start).Round(time.Millisecond))
		return nil
	}

	pp, err := pointerPolicy(*pointers)
	if err != nil {
		return err
	}
	sim, err := rotorring.NewRotorSim(g,
		rotorring.Agents(*k), rotorring.Place(pl),
		rotorring.Pointers(pp), rotorring.Seed(*seed))
	if err != nil {
		return err
	}
	start := time.Now()
	cover, err := sim.CoverTime(*budget)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "rotor-router: k=%d, cover time = %d rounds (%v)\n",
		*k, cover, time.Since(start).Round(time.Millisecond))

	if *doReturn {
		start = time.Now()
		rs, err := sim.ReturnTime(*budget)
		if err != nil {
			return fmt.Errorf("return time: %w", err)
		}
		fmt.Fprintf(out, "limit cycle: period %d, return time %d (per-node visits %d..%d, %v)\n",
			rs.Period, rs.ReturnTime, rs.MinNodeVisits, rs.MaxNodeVisits, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "X2", "-scale", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"X2", "Lemma 13", "HOLDS", "all shape checks hold"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSeveralExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "X4, X5", "-scale", "quick"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "token-game") || !strings.Contains(out, "remote") {
		t.Errorf("missing experiment output:\n%s", out)
	}
}

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "Z1"}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "gigantic"}, &buf); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestRunRejectsBadFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-bogus"}, &buf); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestRunCSVFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-only", "X2", "-format", "csv"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "k,a_1") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "===") {
		t.Error("text decorations leaked into CSV output")
	}
}

func TestRunRejectsBadFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-format", "xml"}, &buf); err == nil {
		t.Fatal("bad format accepted")
	}
}

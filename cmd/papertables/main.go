// Command papertables regenerates the paper's evaluation: every row of
// Table 1 (E1–E6), the figure reproductions (F1, F2) and the lemma-level
// measurements (X1–X7). See DESIGN.md §3 for the experiment index.
//
// Usage:
//
//	papertables [-scale quick|full] [-seed N] [-only E1,E5,X2] [-workers N]
//
// Quick scale finishes in seconds; full scale reproduces the sweeps
// recorded in EXPERIMENTS.md (minutes).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"rotorring/internal/expt"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "papertables:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("papertables", flag.ContinueOnError)
	scaleFlag := fs.String("scale", "quick", "sweep scale: quick or full")
	seed := fs.Uint64("seed", 20230601, "seed for randomized components")
	only := fs.String("only", "", "comma-separated experiment ids (default: all)")
	format := fs.String("format", "text", "output format: text or csv")
	workers := fs.Int("workers", 0, "experiment engine worker pool size (0 = GOMAXPROCS); never affects results")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want text or csv)", *format)
	}
	scale, err := expt.ParseScale(*scaleFlag)
	if err != nil {
		return err
	}
	cfg := expt.Config{Scale: scale, Seed: *seed, Workers: *workers}

	var selected []*expt.Experiment
	if *only == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := expt.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, e)
		}
	}

	if *format == "text" {
		fmt.Fprintf(out, "rotorring paper-table reproduction (scale=%s, seed=%d)\n", *scaleFlag, *seed)
		fmt.Fprintf(out, "paper: Klasing, Kosowski, Pająk, Sauerwald — The multi-agent rotor-router on the ring (PODC 2013 / DC 2017)\n\n")
	}

	failures := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, s := range res.Shapes {
			if !s.OK {
				failures++
			}
		}
		if *format == "csv" {
			for _, tab := range res.Tables {
				if err := tab.WriteCSV(out); err != nil {
					return fmt.Errorf("%s: %w", e.ID, err)
				}
				fmt.Fprintln(out)
			}
			continue
		}
		fmt.Fprintf(out, "=== %s — %s\n    claim: %s\n\n", e.ID, e.PaperRef, e.Claim)
		res.Render(out)
		fmt.Fprintf(out, "    (%s in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		return fmt.Errorf("%d shape check(s) failed", failures)
	}
	if *format == "text" {
		fmt.Fprintln(out, "all shape checks hold")
	}
	return nil
}

// Benchmarks reproducing every table and figure of the paper, one bench
// target per experiment row (the mapping lives in DESIGN.md §3). Each
// benchmark runs one fixed representative configuration per iteration and
// reports the measured quantity (rounds, etc.) via b.ReportMetric, so
// `go test -bench . -benchmem` regenerates the headline numbers.
package rotorring_test

import (
	"context"
	"testing"

	"rotorring"
	"rotorring/internal/continuum"
	"rotorring/internal/core"
	"rotorring/internal/deploy"
	"rotorring/internal/engine"
	"rotorring/internal/graph"
	"rotorring/internal/randwalk"
	"rotorring/internal/remote"
	"rotorring/internal/ringdom"
	"rotorring/internal/stats"
	"rotorring/internal/tokengame"
	"rotorring/internal/xrand"
)

// BenchmarkTable1RotorWorst — E1 (Theorems 1, 2): k agents on one node,
// pointers toward the start: cover time Θ(n²/log k).
func BenchmarkTable1RotorWorst(b *testing.B) {
	const n, k = 512, 8
	var cover int64
	for i := 0; i < b.N; i++ {
		sim, err := rotorring.NewRotorSim(rotorring.Ring(n),
			rotorring.Agents(k),
			rotorring.Place(rotorring.PlaceSingleNode),
			rotorring.Pointers(rotorring.PointerTowardStart))
		if err != nil {
			b.Fatal(err)
		}
		cover, err = sim.CoverTime(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cover), "cover-rounds")
	b.ReportMetric(float64(cover)/rotorring.PredictRotorWorstCover(n, k), "ratio-to-theta")
}

// BenchmarkTable1RotorBest — E2 (Theorems 3, 4): equally spaced agents vs
// adversarial pointers: cover time Θ(n²/k²).
func BenchmarkTable1RotorBest(b *testing.B) {
	const n, k = 512, 8
	var cover int64
	for i := 0; i < b.N; i++ {
		sim, err := rotorring.NewRotorSim(rotorring.Ring(n),
			rotorring.Agents(k),
			rotorring.Place(rotorring.PlaceEqualSpacing),
			rotorring.Pointers(rotorring.PointerNegative))
		if err != nil {
			b.Fatal(err)
		}
		cover, err = sim.CoverTime(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cover), "cover-rounds")
	b.ReportMetric(float64(cover)/rotorring.PredictRotorBestCover(n, k), "ratio-to-theta")
}

// BenchmarkTable1WalkWorst — E3 ([4]): k walks from one node,
// E[cover] = Θ(n²/log k).
func BenchmarkTable1WalkWorst(b *testing.B) {
	const n, k, trials = 512, 8, 4
	var mean float64
	for i := 0; i < b.N; i++ {
		times, err := randwalk.CoverTimes(graph.Ring(n), core.AllOnNode(0, k),
			trials, uint64(i)+1, 64*int64(n)*int64(n))
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.MeanInt64(times)
	}
	b.ReportMetric(mean, "mean-cover-rounds")
	b.ReportMetric(mean/rotorring.PredictWalkWorstCover(n, k), "ratio-to-theta")
}

// BenchmarkTable1WalkBest — E4 (Theorem 5): equally spaced walks,
// E[cover] = Θ((n/k)²·log²k).
func BenchmarkTable1WalkBest(b *testing.B) {
	const n, k, trials = 512, 8, 4
	var mean float64
	for i := 0; i < b.N; i++ {
		times, err := randwalk.CoverTimes(graph.Ring(n), core.EquallySpaced(n, k),
			trials, uint64(i)+1, 64*int64(n)*int64(n))
		if err != nil {
			b.Fatal(err)
		}
		mean = stats.MeanInt64(times)
	}
	b.ReportMetric(mean, "mean-cover-rounds")
	b.ReportMetric(mean/rotorring.PredictWalkBestCover(n, k), "ratio-to-theta")
}

// BenchmarkTable1ReturnTime — E5 (Theorem 6): limit-cycle return time
// Θ(n/k).
func BenchmarkTable1ReturnTime(b *testing.B) {
	const n, k = 512, 8
	var ret int64
	for i := 0; i < b.N; i++ {
		sim, err := rotorring.NewRotorSim(rotorring.Ring(n),
			rotorring.Agents(k),
			rotorring.Place(rotorring.PlaceEqualSpacing),
			rotorring.Pointers(rotorring.PointerNegative))
		if err != nil {
			b.Fatal(err)
		}
		rs, err := sim.ReturnTime(0)
		if err != nil {
			b.Fatal(err)
		}
		ret = rs.ReturnTime
	}
	b.ReportMetric(float64(ret), "return-rounds")
	b.ReportMetric(float64(ret)/rotorring.PredictReturnTime(n, k), "ratio-to-theta")
}

// BenchmarkSpeedupSummary — E6 (§1.1): best-case speed-up over one agent,
// which the paper puts at Θ(k²).
func BenchmarkSpeedupSummary(b *testing.B) {
	const n, k = 512, 8
	var speedup float64
	for i := 0; i < b.N; i++ {
		base, err := rotorring.NewRotorSim(rotorring.Ring(n),
			rotorring.Agents(1), rotorring.Pointers(rotorring.PointerTowardStart))
		if err != nil {
			b.Fatal(err)
		}
		c1, err := base.CoverTime(0)
		if err != nil {
			b.Fatal(err)
		}
		multi, err := rotorring.NewRotorSim(rotorring.Ring(n),
			rotorring.Agents(k),
			rotorring.Place(rotorring.PlaceEqualSpacing),
			rotorring.Pointers(rotorring.PointerNegative))
		if err != nil {
			b.Fatal(err)
		}
		ck, err := multi.CoverTime(0)
		if err != nil {
			b.Fatal(err)
		}
		speedup = float64(c1) / float64(ck)
	}
	b.ReportMetric(speedup, "best-case-speedup")
	b.ReportMetric(speedup/float64(k*k), "ratio-to-ksquared")
}

// BenchmarkFig1Borders — F1: classify lazy-domain borders on a stabilized
// ring.
func BenchmarkFig1Borders(b *testing.B) {
	const n, k = 96, 3
	g := graph.Ring(n)
	starts := core.EquallySpaced(n, k)
	ptr, err := core.PointersNegative(g, starts)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(g,
		core.WithAgentsAt(starts...),
		core.WithPointers(ptr),
		core.WithFlowRecording())
	if err != nil {
		b.Fatal(err)
	}
	tr, err := ringdom.NewTracker(sys)
	if err != nil {
		b.Fatal(err)
	}
	tr.Run(int64(10 * n))
	b.ResetTimer()
	settled := 0
	for i := 0; i < b.N; i++ {
		tr.Run(7)
		borders, err := tr.Borders()
		if err != nil {
			b.Fatal(err)
		}
		settled = 0
		for _, bd := range borders {
			if bd.Kind == ringdom.BorderVertex || bd.Kind == ringdom.BorderEdge {
				settled++
			}
		}
	}
	b.ReportMetric(float64(settled), "settled-borders")
}

// BenchmarkFig2DelayedDeployment — F2: the Theorem 1 Phase A/B deployment.
func BenchmarkFig2DelayedDeployment(b *testing.B) {
	var res *deploy.Theorem1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = deploy.Theorem1Deployment(160, 4, deploy.Theorem1Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.CoverRounds), "deployment-rounds")
	b.ReportMetric(float64(res.FullyActiveRounds), "fully-active-rounds")
}

// BenchmarkLemma12Domains — X1: maximum adjacent lazy-domain difference
// after stabilization.
func BenchmarkLemma12Domains(b *testing.B) {
	const n, k = 128, 4
	g := graph.Ring(n)
	ptr, err := core.PointersTowardNode(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	maxDiff := 0
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(g,
			core.WithAgentsAt(core.AllOnNode(0, k)...),
			core.WithPointers(ptr),
			core.WithFlowRecording())
		if err != nil {
			b.Fatal(err)
		}
		tr, err := ringdom.NewTracker(sys)
		if err != nil {
			b.Fatal(err)
		}
		tr.Run(int64(n) * int64(n))
		lp, err := tr.LazyDomains()
		if err != nil {
			b.Fatal(err)
		}
		maxDiff = lp.MaxAdjacentDiff()
	}
	b.ReportMetric(float64(maxDiff), "max-adjacent-diff")
}

// BenchmarkLemma13Profile — X2: computing the limit profile.
func BenchmarkLemma13Profile(b *testing.B) {
	var p *continuum.Profile
	for i := 0; i < b.N; i++ {
		var err error
		p, err = continuum.LimitProfile(64)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.A[1]*stats.Harmonic(64), "a1-times-Hk")
}

// BenchmarkContinuumODE — X3: integrating the §2.3 ODE.
func BenchmarkContinuumODE(b *testing.B) {
	p, err := continuum.LimitProfile(8)
	if err != nil {
		b.Fatal(err)
	}
	sizes := make([]float64, 8)
	for i := range sizes {
		sizes[i] = p.A[i+1] * 1000
	}
	var total float64
	for i := 0; i < b.N; i++ {
		m, err := continuum.NewModel(sizes, continuum.BoundaryOneFrontier)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Advance(1e6); err != nil {
			b.Fatal(err)
		}
		total = m.Total()
	}
	b.ReportMetric(total, "final-mass")
}

// BenchmarkTokenGame — X4: adversarial play against the Lemma 8 invariant.
func BenchmarkTokenGame(b *testing.B) {
	var min int
	for i := 0; i < b.N; i++ {
		g, err := tokengame.New(16, 160)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tokengame.Play(g, tokengame.CascadeAttacker{}, 100_000); err != nil {
			b.Fatal(err)
		}
		min = g.Min()
	}
	b.ReportMetric(float64(min), "min-stack")
}

// BenchmarkRemoteVertices — X5: the Lemma 15 census.
func BenchmarkRemoteVertices(b *testing.B) {
	const n, k = 4000, 40
	p, err := remote.NewPlacement(n, core.AllOnNode(0, k))
	if err != nil {
		b.Fatal(err)
	}
	count := 0
	for i := 0; i < b.N; i++ {
		count = p.CountRemote()
	}
	b.ReportMetric(float64(count)/float64(n), "remote-fraction")
}

// BenchmarkLockIn — X6: single-agent lock-in to the Eulerian circulation.
func BenchmarkLockIn(b *testing.B) {
	g := graph.Grid2D(8, 8)
	rng := xrand.New(1)
	var mu int64
	for i := 0; i < b.N; i++ {
		sys, err := core.NewSystem(g,
			core.WithAgentsAt(rng.Intn(g.NumNodes())),
			core.WithPointers(core.PointersRandom(g, rng)))
		if err != nil {
			b.Fatal(err)
		}
		lc, err := core.FindLimitCycle(sys, 1<<22, true)
		if err != nil {
			b.Fatal(err)
		}
		mu = lc.StabilizationRound
	}
	b.ReportMetric(float64(mu), "lock-in-round")
}

// BenchmarkMonotonicity — X7: the delayed-vs-undelayed dominance check.
func BenchmarkMonotonicity(b *testing.B) {
	const n, k = 96, 5
	g := graph.Ring(n)
	rng := xrand.New(3)
	starts := core.RandomPositions(n, k, rng)
	ptr := core.PointersRandom(g, rng)
	for i := 0; i < b.N; i++ {
		u, err := core.NewSystem(g, core.WithAgentsAt(starts...), core.WithPointers(ptr))
		if err != nil {
			b.Fatal(err)
		}
		d, err := core.NewSystem(g, core.WithAgentsAt(starts...), core.WithPointers(ptr))
		if err != nil {
			b.Fatal(err)
		}
		held := make([]int64, n)
		for r := 0; r < 500; r++ {
			u.Step()
			for v := range held {
				held[v] = 0
			}
			for _, v := range d.Occupied() {
				if rng.Bool() {
					held[v] = 1
				}
			}
			d.StepHeld(held)
			for v := 0; v < n; v++ {
				if d.Visits(v) > u.Visits(v) {
					b.Fatal("Lemma 1 dominance violated")
				}
			}
		}
	}
}

// BenchmarkGeneralGraphSpeedup — X8 (extension): multi-agent cover-time
// speed-up on a general graph.
func BenchmarkGeneralGraphSpeedup(b *testing.B) {
	g := graph.Torus2D(12, 12)
	rng := xrand.New(5)
	var speedup float64
	for i := 0; i < b.N; i++ {
		cover := func(k int) int64 {
			sys, err := core.NewSystem(g,
				core.WithAgentsAt(core.RandomPositions(g.NumNodes(), k, rng)...),
				core.WithPointers(core.PointersRandom(g, rng)))
			if err != nil {
				b.Fatal(err)
			}
			c, err := sys.RunUntilCovered(1 << 24)
			if err != nil {
				b.Fatal(err)
			}
			return c
		}
		speedup = float64(cover(1)) / float64(cover(8))
	}
	b.ReportMetric(speedup/8, "speedup-per-agent")
}

// BenchmarkEdgeRemoval — X9 (extension): re-stabilization after cutting a
// stabilized ring into a path.
func BenchmarkEdgeRemoval(b *testing.B) {
	const n = 64
	rng := xrand.New(9)
	var mu int64
	for i := 0; i < b.N; i++ {
		ring := graph.Ring(n)
		sys, err := core.NewSystem(ring,
			core.WithAgentsAt(core.RandomPositions(n, 4, rng)...),
			core.WithPointers(core.PointersRandom(ring, rng)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.FindLimitCycle(sys, 1<<22, false); err != nil {
			b.Fatal(err)
		}
		path := graph.Path(n)
		ptr := make([]int, n)
		counts := make([]int64, n)
		for v := 0; v < n; v++ {
			counts[v] = sys.AgentsAt(v)
			if v > 0 && v < n-1 && sys.Pointer(v) == graph.RingCW {
				ptr[v] = 1
			}
		}
		cut, err := core.NewSystem(path, core.WithAgentCounts(counts), core.WithPointers(ptr))
		if err != nil {
			b.Fatal(err)
		}
		lc, err := core.FindLimitCycle(cut, 1<<24, true)
		if err != nil {
			b.Fatal(err)
		}
		mu = lc.StabilizationRound
	}
	b.ReportMetric(float64(mu), "restabilization-rounds")
}

// BenchmarkKernel — K1: per-kernel step throughput on the fixed tier
// workloads of internal/engine.KernelBenchCases — the rotor pair (generic
// engine vs ring kernel) on Ring(2^16) and the walk pair (per-agent vs
// counts) at k = 10·n. `make bench-kernels` runs exactly these; the output
// is benchstat-comparable against `make bench-baseline`, which prints the
// committed BENCH_engine.json in the same format.
func BenchmarkKernel(b *testing.B) {
	for _, kc := range engine.KernelBenchCases() {
		b.Run(kc.Name, func(b *testing.B) {
			step, err := kc.NewStepper()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
			b.ReportMetric(float64(b.N)*float64(kc.K)/b.Elapsed().Seconds(), "steps/sec")
		})
	}
}

// BenchmarkEngineStepRing measures raw engine throughput on the ring.
func BenchmarkEngineStepRing(b *testing.B) {
	const n, k = 4096, 64
	g := graph.Ring(n)
	sys, err := core.NewSystem(g, core.WithAgentsAt(core.EquallySpaced(n, k)...))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkEngineStepComplete measures engine throughput at high degree.
func BenchmarkEngineStepComplete(b *testing.B) {
	g := graph.Complete(256)
	sys, err := core.NewSystem(g, core.WithAgentsAt(core.EquallySpaced(256, 32)...))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkWalkStep measures random-walk throughput.
func BenchmarkWalkStep(b *testing.B) {
	g := graph.Ring(4096)
	w, err := randwalk.New(g, core.EquallySpaced(4096, 64), xrand.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}

// BenchmarkProcessAPI — observer overhead guard for the unified Process
// API: stepping through the interface and the context-aware runner must
// stay within noise of raw System stepping (the kernel throughputs
// committed in BENCH_engine.json), because the unobserved path runs the
// same hot loop in large chunks — cancellation and sampling cost a branch
// per chunk, never per round. Compare the sub-benchmarks' steps/sec with
// `make bench-kernels` / `make bench-baseline`.
func BenchmarkProcessAPI(b *testing.B) {
	const n, k = 1 << 16, 1 << 15 // the kernel-bench acceptance scale
	build := func(b *testing.B) rotorring.Process {
		p, err := rotorring.New(rotorring.Ring(n), rotorring.RotorRouter(),
			rotorring.Agents(k), rotorring.Place(rotorring.PlaceEqualSpacing))
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Run(256); err != nil { // steady-state warmup
			b.Fatal(err)
		}
		return p
	}
	stepsPerSec := func(b *testing.B) {
		b.ReportMetric(float64(b.N)*float64(k)/b.Elapsed().Seconds(), "steps/sec")
	}

	b.Run("raw-step", func(b *testing.B) {
		p := build(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Step()
		}
		stepsPerSec(b)
	})
	b.Run("run-context", func(b *testing.B) {
		p := build(b)
		ctx := context.Background()
		b.ResetTimer()
		if err := rotorring.RunContext(ctx, p, int64(b.N)); err != nil {
			b.Fatal(err)
		}
		stepsPerSec(b)
	})
	b.Run("run-context-observed", func(b *testing.B) {
		p := build(b)
		cov, err := rotorring.CoverageProbe(4096)
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		b.ResetTimer()
		if err := rotorring.RunContext(ctx, p, int64(b.N), cov); err != nil {
			b.Fatal(err)
		}
		stepsPerSec(b)
	})
}

package ringdom

import (
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

func ringSystem(t *testing.T, n int, opts ...core.Option) *core.System {
	t.Helper()
	s, err := core.NewSystem(graph.Ring(n), opts...)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestDomainsRejectsNonRing(t *testing.T) {
	s, err := core.NewSystem(graph.Path(6), core.WithAgentsAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Domains(s); err == nil {
		t.Fatal("path accepted as ring")
	}
	s2, err := core.NewSystem(graph.Complete(4), core.WithAgentsAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Domains(s2); err == nil {
		t.Fatal("complete graph accepted as ring")
	}
}

func TestSingleAgentDomainCoversVisitedArc(t *testing.T) {
	const n = 16
	s := ringSystem(t, n,
		core.WithAgentsAt(0),
		core.WithPointers(core.PointersUniform(graph.Ring(n), graph.RingCW)))
	s.Run(5) // agent at node 5, nodes 0..5 visited
	p, err := Domains(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) != 1 {
		t.Fatalf("domains = %+v", p.Domains)
	}
	d := p.Domains[0]
	if d.Anchor != 5 {
		t.Fatalf("anchor = %d", d.Anchor)
	}
	if d.Size != 6 || d.Start != 0 {
		t.Fatalf("domain arc = start %d size %d, want start 0 size 6", d.Start, d.Size)
	}
	if p.Unvisited != n-6 {
		t.Fatalf("unvisited = %d", p.Unvisited)
	}
	for v := 0; v <= 5; v++ {
		if p.OwnerOf(v) != 0 {
			t.Fatalf("node %d not owned by domain 0", v)
		}
	}
	for v := 6; v < n; v++ {
		if p.OwnerOf(v) != -1 {
			t.Fatalf("unvisited node %d has owner %d", v, p.OwnerOf(v))
		}
	}
}

func TestPartitionSizesSumToVisited(t *testing.T) {
	rng := xrand.New(11)
	for trial := 0; trial < 20; trial++ {
		n := 24 + rng.Intn(60)
		k := 2 + rng.Intn(5)
		g := graph.Ring(n)
		positions := core.EquallySpaced(n, k)
		ptr, err := core.PointersNegative(g, positions)
		if err != nil {
			t.Fatal(err)
		}
		s := ringSystem(t, n, core.WithAgentsAt(positions...), core.WithPointers(ptr))
		s.Run(int64(rng.Intn(4 * n)))
		p, err := Domains(s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		total := 0
		for _, d := range p.Domains {
			total += d.Size
		}
		if total+p.Unvisited != n {
			t.Fatalf("trial %d: domains %d + unvisited %d != n %d", trial, total, p.Unvisited, n)
		}
		// Owner index consistency.
		for v := 0; v < n; v++ {
			idx := p.OwnerOf(v)
			if idx == -1 {
				if s.Visits(v) != 0 {
					t.Fatalf("trial %d: visited node %d unowned", trial, v)
				}
				continue
			}
			if !p.Domains[idx].Contains(v, n) {
				t.Fatalf("trial %d: node %d not inside its domain %+v", trial, v, p.Domains[idx])
			}
		}
	}
}

func TestDomainsWithTwoAgentsOnOneNodeSplit(t *testing.T) {
	// Build a state with two agents on the same node by construction and
	// check the split rule directly.
	const n = 12
	ptr := make([]int, n) // all clockwise
	s := ringSystem(t, n, core.WithAgentsAt(6, 6), core.WithPointers(ptr))
	p, err := Domains(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) != 2 {
		t.Fatalf("domains = %+v", p.Domains)
	}
	var sizes int
	for _, d := range p.Domains {
		if d.Anchor != 6 {
			t.Fatalf("anchor = %d", d.Anchor)
		}
		sizes += d.Size
	}
	// Only node 6 is visited at t=0: the two halves share it.
	if sizes != 1 {
		t.Fatalf("split sizes sum to %d, want 1", sizes)
	}
	// Pointer at 6 is clockwise, so half 0 (anticlockwise side) holds the
	// anchor.
	if p.Domains[0].Half != 0 || p.Domains[0].Size != 1 {
		t.Fatalf("half-0 domain = %+v", p.Domains[0])
	}
}

func TestLemma5AtMostTwoAgentsPerNodePreserved(t *testing.T) {
	// Lemma 5: if at some time every node holds at most 2 agents, this
	// stays true forever (ring only).
	rng := xrand.New(5)
	for trial := 0; trial < 10; trial++ {
		n := 16 + rng.Intn(32)
		g := graph.Ring(n)
		// Place k <= n agents with at most 2 per node.
		counts := make([]int64, n)
		k := 0
		for v := 0; v < n && k < 8; v++ {
			if rng.Intn(3) == 0 {
				c := 1 + rng.Intn(2)
				counts[v] = int64(c)
				k += c
			}
		}
		if k == 0 {
			counts[0] = 1
		}
		s := ringSystem(t, n,
			core.WithAgentCounts(counts),
			core.WithPointers(core.PointersRandom(g, rng)))
		for round := 0; round < 200; round++ {
			s.Step()
			for v := 0; v < n; v++ {
				if s.AgentsAt(v) > 2 {
					t.Fatalf("trial %d round %d: %d agents at node %d",
						trial, round+1, s.AgentsAt(v), v)
				}
			}
		}
	}
}

func TestDomainsErrorOnThreeAgentsPerNode(t *testing.T) {
	s := ringSystem(t, 8, core.WithAgentsAt(2, 2, 2))
	if _, err := Domains(s); err == nil {
		t.Fatal("three agents on one node accepted")
	}
}

func TestDomainContainsAndEnd(t *testing.T) {
	d := Domain{Anchor: 2, Start: 10, Size: 4} // nodes 10, 11, 0, 1 on a 12-ring
	n := 12
	for _, v := range []int{10, 11, 0, 1} {
		if !d.Contains(v, n) {
			t.Errorf("domain should contain %d", v)
		}
	}
	for _, v := range []int{2, 9, 5} {
		if d.Contains(v, n) {
			t.Errorf("domain should not contain %d", v)
		}
	}
	if d.End(n) != 1 {
		t.Errorf("End = %d", d.End(n))
	}
	empty := Domain{Start: 3, Size: 0}
	if empty.Contains(3, n) {
		t.Error("empty domain contains a node")
	}
}

func TestDomainsEventuallyEqualize(t *testing.T) {
	// After coverage and stabilization, the k domains approach size n/k
	// (the mechanism behind Theorem 6). Run well past coverage and check
	// every domain is within a factor 2 of n/k.
	const (
		n = 240
		k = 4
	)
	g := graph.Ring(n)
	positions := core.EquallySpaced(n, k)
	ptr, err := core.PointersNegative(g, positions)
	if err != nil {
		t.Fatal(err)
	}
	s := ringSystem(t, n, core.WithAgentsAt(positions...), core.WithPointers(ptr))
	if _, err := s.RunUntilCovered(int64(n) * int64(n)); err != nil {
		t.Fatal(err)
	}
	s.Run(int64(20 * n))
	p, err := Domains(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) != k {
		t.Fatalf("expected %d domains, got %+v", k, p.Domains)
	}
	for _, d := range p.Domains {
		if d.Size < n/k/2 || d.Size > 2*n/k {
			t.Errorf("domain %+v far from n/k = %d", d, n/k)
		}
	}
}

func TestMaxAdjacentDiffAndMinSize(t *testing.T) {
	p := &Partition{
		N: 30,
		Domains: []Domain{
			{Anchor: 0, Start: 0, Size: 10},
			{Anchor: 12, Start: 10, Size: 13},
			{Anchor: 25, Start: 23, Size: 7},
		},
	}
	if p.MinSize() != 7 {
		t.Fatalf("MinSize = %d", p.MinSize())
	}
	// Fully covered ring: adjacency wraps. |10-13|=3, |13-7|=6, |7-10|=3.
	if got := p.MaxAdjacentDiff(); got != 6 {
		t.Fatalf("MaxAdjacentDiff = %d", got)
	}
	// With unvisited territory the wrap pair is not adjacent.
	p.Unvisited = 5
	if got := p.MaxAdjacentDiff(); got != 6 {
		t.Fatalf("MaxAdjacentDiff with gap = %d", got)
	}
}

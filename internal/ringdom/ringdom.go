// Package ringdom implements the agent-domain analysis of §2.2 of the paper
// for rotor-router systems running on the ring.
//
// When multiple agents patrol a ring, the visited nodes partition into
// domains: the domain of an agent is the sub-path of nodes for which that
// agent was the last visitor. The paper derives the partition from the
// pointer directions (Lemma 4): for a visited node v without an agent,
// o(v,t) is the first node holding an agent in the direction opposite to
// v's pointer, and v belongs to the domain anchored there. Nodes holding an
// agent anchor their own domain; a node holding two agents splits the
// surrounding sub-path in two (one domain per agent). Unvisited nodes form
// the dummy domain V⊥.
//
// The lazy domain V'_a(t) (Definition 1) keeps only nodes whose last visit
// was by a single agent and was a propagation — a visit after which the
// agent continued in its direction of travel rather than bouncing back.
// Lazy domains are insensitive to the one-node oscillation of borders and
// are the object of the convergence result (Lemma 12) behind the
// return-time theorem. Tracker follows a live system round by round and
// classifies every visit as propagation or reflection from the arc flows.
package ringdom

import (
	"errors"
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/graph"
)

// Unanchored marks nodes of the dummy domain V⊥ (never visited).
const Unanchored = -1

// Domain is one agent domain: a contiguous arc of the ring.
type Domain struct {
	// Anchor is the node holding the domain's agent.
	Anchor int
	// Half distinguishes the two domains anchored at a node holding two
	// agents (0 = the domain containing the anchor per the paper's pointer
	// rule, 1 = the other side); it is always 0 for single-agent anchors.
	Half int
	// Start is the first node of the arc in clockwise order.
	Start int
	// Size is the number of nodes in the arc (>= 1 unless the domain is a
	// bare split-half, which can be empty).
	Size int
}

// End returns the last node of the arc in clockwise order.
func (d Domain) End(n int) int { return (d.Start + d.Size - 1 + n) % n }

// Contains reports whether node v lies on the domain's arc of an n-ring.
func (d Domain) Contains(v, n int) bool {
	if d.Size == 0 {
		return false
	}
	offset := (v - d.Start + n) % n
	return offset < d.Size
}

// Partition is a full decomposition of the ring at one instant.
type Partition struct {
	// N is the ring size.
	N int
	// Domains lists the agent domains in clockwise ring order starting
	// from the first anchor at or after node 0.
	Domains []Domain
	// Unvisited is the total size of the dummy domain V⊥.
	Unvisited int
	// ownerIdx[v] is the index into Domains owning v, or -1 for V⊥.
	ownerIdx []int
}

// OwnerOf returns the index (into Domains) of the domain owning v, or -1
// when v is unvisited.
func (p *Partition) OwnerOf(v int) int { return p.ownerIdx[v] }

// ringOf checks that the system runs on a ring built by graph.Ring and
// returns its size.
func ringOf(sys *core.System) (int, error) {
	g := sys.Graph()
	n := g.NumNodes()
	if g.NumEdges() != n {
		return 0, errors.New("ringdom: system is not on a ring")
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != 2 || g.Neighbor(v, graph.RingCW) != (v+1)%n {
			return 0, errors.New("ringdom: system is not on a graph.Ring topology")
		}
	}
	return n, nil
}

// Domains computes the domain partition of the current configuration
// (Lemma 4 and the split rule of §2.2). It returns an error if the
// structure predicted by the paper is violated: more than two agents on a
// node, or a non-contiguous domain.
func Domains(sys *core.System) (*Partition, error) {
	n, err := ringOf(sys)
	if err != nil {
		return nil, err
	}

	occupied := make([]bool, n)
	anyAgent := false
	for v := 0; v < n; v++ {
		c := sys.AgentsAt(v)
		if c > 2 {
			return nil, fmt.Errorf("ringdom: %d agents at node %d (domains need <= 2, Lemma 5)", c, v)
		}
		if c > 0 {
			occupied[v] = true
			anyAgent = true
		}
	}
	if !anyAgent {
		return nil, errors.New("ringdom: no agents on the ring")
	}

	// nearest occupied node strictly before v (anticlockwise scan) and
	// strictly after v (clockwise scan), cyclically.
	prevOcc := make([]int, n)
	nextOcc := make([]int, n)
	last := -1
	for v := 0; v < 2*n; v++ {
		i := v % n
		if last >= 0 {
			prevOcc[i] = last
		} else {
			prevOcc[i] = -1
		}
		if occupied[i] {
			last = i
		}
	}
	last = -1
	for v := 2*n - 1; v >= 0; v-- {
		i := v % n
		if last >= 0 {
			nextOcc[i] = last
		} else {
			nextOcc[i] = -1
		}
		if occupied[i] {
			last = i
		}
	}

	// o(v) per Lemma 4: the first agent-holding node in the direction
	// opposite to v's pointer. Pointer RingCW points to v+1, so the
	// opposite direction scans v-1, v-2, ...
	owner := make([]int, n)
	for v := 0; v < n; v++ {
		switch {
		case occupied[v]:
			owner[v] = v
		case sys.Visits(v) == 0:
			owner[v] = Unanchored
		case sys.Pointer(v) == graph.RingCW:
			owner[v] = prevOcc[v]
		default:
			owner[v] = nextOcc[v]
		}
	}

	return assemble(sys, n, owner, occupied)
}

// assemble groups nodes by owner into contiguous arcs, applying the
// two-agent split rule, and validates contiguity.
func assemble(sys *core.System, n int, owner []int, occupied []bool) (*Partition, error) {
	p := &Partition{N: n, ownerIdx: make([]int, n)}
	for v := range p.ownerIdx {
		p.ownerIdx[v] = -1
	}

	// Walk the ring clockwise starting just after an anchor, emitting one
	// domain per (anchor, half). Each anchor u owns the contiguous run of
	// nodes v with owner[v] = u; by Lemma 4 the run containing u extends
	// from some node anticlockwise of u through u to some node clockwise
	// of u. For two agents at u the run splits at u per the pointer rule.
	firstAnchor := -1
	for v := 0; v < n; v++ {
		if occupied[v] {
			firstAnchor = v
			break
		}
	}

	// Collect run boundaries: iterate nodes in clockwise order from
	// firstAnchor, accumulating runs of equal owner.
	type run struct {
		owner int
		start int
		size  int
	}
	var runs []run
	for off := 0; off < n; off++ {
		v := (firstAnchor + off) % n
		o := owner[v]
		if len(runs) > 0 && runs[len(runs)-1].owner == o {
			runs[len(runs)-1].size++
			continue
		}
		runs = append(runs, run{owner: o, start: v, size: 1})
	}
	// Merge a wrapped run (same owner at both ends of the walk). Starting
	// at an anchor makes this impossible unless there is a single owner.
	if len(runs) > 1 && runs[0].owner == runs[len(runs)-1].owner {
		lastRun := runs[len(runs)-1]
		runs[0].start = lastRun.start
		runs[0].size += lastRun.size
		runs = runs[:len(runs)-1]
	}

	seen := make(map[int]bool, len(runs))
	for _, r := range runs {
		if r.owner == Unanchored {
			p.Unvisited += r.size
			continue
		}
		if seen[r.owner] {
			return nil, fmt.Errorf("ringdom: domain of anchor %d is not contiguous (Lemma 4 violated)", r.owner)
		}
		seen[r.owner] = true
		u := r.owner
		offU := (u - r.start + n) % n // anchor's offset within the run
		if offU >= r.size {
			return nil, fmt.Errorf("ringdom: anchor %d lies outside its own domain (Lemma 4 violated)", u)
		}
		if sys.AgentsAt(u) == 2 {
			// Split at the anchor: the anticlockwise part gets the anchor
			// when the pointer at u points clockwise, and vice versa
			// (§2.2, definition of V_a and V_b).
			ccwSize := offU             // nodes strictly anticlockwise of u
			cwSize := r.size - offU - 1 // nodes strictly clockwise of u
			if sys.Pointer(u) == graph.RingCW {
				p.addDomain(Domain{Anchor: u, Half: 0, Start: r.start, Size: ccwSize + 1})
				p.addDomain(Domain{Anchor: u, Half: 1, Start: (u + 1) % n, Size: cwSize})
			} else {
				p.addDomain(Domain{Anchor: u, Half: 0, Start: r.start, Size: ccwSize})
				p.addDomain(Domain{Anchor: u, Half: 1, Start: u, Size: cwSize + 1})
			}
			continue
		}
		p.addDomain(Domain{Anchor: u, Half: 0, Start: r.start, Size: r.size})
	}
	return p, nil
}

func (p *Partition) addDomain(d Domain) {
	idx := len(p.Domains)
	p.Domains = append(p.Domains, d)
	for off := 0; off < d.Size; off++ {
		p.ownerIdx[(d.Start+off)%p.N] = idx
	}
}

// Sizes returns the domain sizes in ring order.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.Domains))
	for i, d := range p.Domains {
		out[i] = d.Size
	}
	return out
}

// MinSize returns the smallest domain size (0 if a split half is empty).
func (p *Partition) MinSize() int {
	if len(p.Domains) == 0 {
		return 0
	}
	m := p.Domains[0].Size
	for _, d := range p.Domains[1:] {
		if d.Size < m {
			m = d.Size
		}
	}
	return m
}

// MaxAdjacentDiff returns the largest absolute size difference between
// domains that are adjacent in ring order (wrapping around only when the
// whole ring is covered). With fewer than two domains it returns 0.
func (p *Partition) MaxAdjacentDiff() int {
	k := len(p.Domains)
	if k < 2 {
		return 0
	}
	maxDiff := 0
	limit := k
	if p.Unvisited > 0 {
		limit = k - 1 // the arc through V⊥ does not make domains adjacent
	}
	for i := 0; i < limit; i++ {
		a := p.Domains[i].Size
		b := p.Domains[(i+1)%k].Size
		d := a - b
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

package ringdom

import (
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

func trackedSystem(t *testing.T, n int, opts ...core.Option) *Tracker {
	t.Helper()
	opts = append(opts, core.WithFlowRecording())
	s, err := core.NewSystem(graph.Ring(n), opts...)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	tr, err := NewTracker(s)
	if err != nil {
		t.Fatalf("NewTracker: %v", err)
	}
	return tr
}

func TestTrackerRequiresFlowRecording(t *testing.T) {
	s, err := core.NewSystem(graph.Ring(8), core.WithAgentsAt(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTracker(s); err == nil {
		t.Fatal("tracker accepted system without flow recording")
	}
}

func TestTrackerRequiresRing(t *testing.T) {
	s, err := core.NewSystem(graph.Grid2D(3, 3), core.WithAgentsAt(0), core.WithFlowRecording())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTracker(s); err == nil {
		t.Fatal("tracker accepted non-ring")
	}
}

func TestVisitClassificationSingleAgentSweep(t *testing.T) {
	// All pointers clockwise, one agent at 0: the agent cruises clockwise
	// (every visit a propagation) until it returns to node 0, whose
	// pointer has flipped — that visit is a reflection.
	const n = 10
	tr := trackedSystem(t, n,
		core.WithAgentsAt(0),
		core.WithPointers(core.PointersUniform(graph.Ring(n), graph.RingCW)))
	// Rounds 1..n: agent visits 1, 2, ..., n-1, 0. Classification of the
	// visit at round r lands after round r+1.
	tr.Run(n + 2)
	for v := 1; v < n; v++ {
		if kind := tr.LastVisitKind(v); kind != VisitPropagation {
			t.Errorf("node %d: kind = %v, want propagation", v, kind)
		}
	}
	// Node 0 was revisited at round n and bounced back (pointer flipped by
	// the initial departure).
	if kind := tr.LastVisitKind(0); kind != VisitReflection {
		t.Errorf("node 0: kind = %v, want reflection", kind)
	}
}

func TestVisitKindStrings(t *testing.T) {
	cases := map[VisitKind]string{
		VisitUnknown:     "unknown",
		VisitPropagation: "propagation",
		VisitReflection:  "reflection",
		VisitMulti:       "multi",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	borders := map[BorderKind]string{
		BorderVertex:  "vertex-type",
		BorderEdge:    "edge-type",
		BorderWide:    "wide",
		BorderKind(0): "unknown",
	}
	for b, want := range borders {
		if b.String() != want {
			t.Errorf("%d.String() = %q", b, b.String())
		}
	}
}

func TestTwoAgentHeadOnVisitIsMulti(t *testing.T) {
	// Two agents approach the middle node from both sides simultaneously:
	// its visit must be classified as multi.
	const n = 8
	ptr := make([]int, n)
	// Agent at 2 moves clockwise (port 0); agent at 6 moves anticlockwise.
	ptr[2] = graph.RingCW
	ptr[6] = graph.RingCCW
	// Give both "runway" pointers so they keep heading toward node 4.
	ptr[3] = graph.RingCW
	ptr[5] = graph.RingCCW
	tr := trackedSystem(t, n, core.WithAgentsAt(2, 6), core.WithPointers(ptr))
	tr.Run(3) // both arrive at node 4 at round 2; classified after round 3
	if kind := tr.LastVisitKind(4); kind != VisitMulti {
		t.Fatalf("node 4 kind = %v, want multi", kind)
	}
}

func TestLazyDomainsApproximateFullDomains(t *testing.T) {
	// Lemma 6: each lazy domain is the full domain minus at most its
	// endpoints. The tracker classifies with one round of lag, so we allow
	// one extra node of slack.
	const (
		n = 120
		k = 3
	)
	g := graph.Ring(n)
	positions := core.EquallySpaced(n, k)
	ptr, err := core.PointersNegative(g, positions)
	if err != nil {
		t.Fatal(err)
	}
	tr := trackedSystem(t, n, core.WithAgentsAt(positions...), core.WithPointers(ptr))
	tr.Run(int64(6 * n)) // cover and settle

	for sample := 0; sample < 50; sample++ {
		tr.Run(7)
		lp, err := tr.LazyDomains()
		if err != nil {
			t.Fatalf("sample %d: %v", sample, err)
		}
		if len(lp.Domains) != k {
			t.Fatalf("sample %d: %d lazy domains", sample, len(lp.Domains))
		}
		for _, d := range lp.Domains {
			if d.Size < d.DomainSize-3 {
				t.Errorf("sample %d: lazy size %d much smaller than domain %d",
					sample, d.Size, d.DomainSize)
			}
			if d.Size > d.DomainSize {
				t.Errorf("sample %d: lazy size %d exceeds domain %d", sample, d.Size, d.DomainSize)
			}
		}
	}
}

func TestLemma12AdjacentLazyDomainsEqualize(t *testing.T) {
	// Lemma 12: once every lazy domain is large enough, adjacent lazy
	// domains eventually differ by at most 10. Start from the worst-case
	// all-on-one-node initialization and let the system stabilize.
	const (
		n = 256
		k = 4
	)
	g := graph.Ring(n)
	ptr, err := core.PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr := trackedSystem(t, n, core.WithAgentsAt(core.AllOnNode(0, k)...), core.WithPointers(ptr))
	// Stabilization is O(n²) from adversarial starts; run generously.
	tr.Run(int64(n) * int64(n))

	maxDiff := 0
	for sample := 0; sample < 40; sample++ {
		tr.Run(int64(n / 2))
		lp, err := tr.LazyDomains()
		if err != nil {
			t.Fatalf("sample %d: %v", sample, err)
		}
		if d := lp.MaxAdjacentDiff(); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 10 {
		t.Errorf("max adjacent lazy-domain difference %d exceeds Lemma 12's bound 10", maxDiff)
	}
}

func TestBordersAreVertexOrEdgeAfterStabilization(t *testing.T) {
	// Fig. 1 / §2.2: once neighboring domains are settled, every border is
	// either vertex-type or edge-type.
	const (
		n = 180
		k = 3
	)
	g := graph.Ring(n)
	positions := core.EquallySpaced(n, k)
	ptr, err := core.PointersNegative(g, positions)
	if err != nil {
		t.Fatal(err)
	}
	tr := trackedSystem(t, n, core.WithAgentsAt(positions...), core.WithPointers(ptr))
	tr.Run(int64(10 * n))

	seen := map[BorderKind]int{}
	for sample := 0; sample < 60; sample++ {
		tr.Run(11)
		borders, err := tr.Borders()
		if err != nil {
			t.Fatalf("sample %d: %v", sample, err)
		}
		for _, b := range borders {
			seen[b.Kind]++
			if b.Gap > 3 {
				t.Errorf("sample %d: border gap %d too wide after stabilization", sample, b.Gap)
			}
		}
	}
	if seen[BorderVertex]+seen[BorderEdge] == 0 {
		t.Error("no vertex- or edge-type borders observed")
	}
}

func TestTrackerStepMatchesSystemRound(t *testing.T) {
	tr := trackedSystem(t, 16, core.WithAgentsAt(0, 8))
	tr.Run(37)
	if tr.System().Round() != 37 {
		t.Fatalf("system round = %d", tr.System().Round())
	}
}

func TestLazyPartitionHelpers(t *testing.T) {
	lp := &LazyPartition{
		N: 30,
		Domains: []LazyDomain{
			{Size: 8}, {Size: 12}, {Size: 5},
		},
	}
	if lp.MinSize() != 5 {
		t.Fatalf("MinSize = %d", lp.MinSize())
	}
	// |8-12|=4, |12-5|=7, |5-8|=3
	if lp.MaxAdjacentDiff() != 7 {
		t.Fatalf("MaxAdjacentDiff = %d", lp.MaxAdjacentDiff())
	}
	sizes := lp.Sizes()
	if len(sizes) != 3 || sizes[1] != 12 {
		t.Fatalf("Sizes = %v", sizes)
	}
}

func TestRandomConfigurationsDomainStructure(t *testing.T) {
	// Structural sweep: domains must stay contiguous (no assembly errors)
	// through long runs from random initializations.
	rng := xrand.New(21)
	for trial := 0; trial < 8; trial++ {
		n := 40 + rng.Intn(80)
		g := graph.Ring(n)
		k := 2 + rng.Intn(4)
		positions := core.RandomPositions(n, k, rng)
		tr := trackedSystem(t, n,
			core.WithAgentsAt(positions...),
			core.WithPointers(core.PointersRandom(g, rng)))
		for chunk := 0; chunk < 30; chunk++ {
			tr.Run(int64(n / 2))
			if _, err := Domains(tr.System()); err != nil {
				t.Fatalf("trial %d chunk %d: %v", trial, chunk, err)
			}
		}
	}
}

package ringdom

import (
	"errors"
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/graph"
)

// VisitKind classifies a completed visit per §2.2: a propagation continues
// through the node, a reflection bounces back toward where it came from.
type VisitKind int

const (
	// VisitUnknown marks visits not yet classified (classification of the
	// visit at round t needs the departure flows of round t+1).
	VisitUnknown VisitKind = iota
	// VisitPropagation is a single-agent visit after which the agent moved
	// on to the node opposite its arrival.
	VisitPropagation
	// VisitReflection is a single-agent visit after which the agent moved
	// back to the node it arrived from.
	VisitReflection
	// VisitMulti is a visit by two agents at once (both directions); such
	// visits never qualify a node for a lazy domain.
	VisitMulti
)

// String implements fmt.Stringer.
func (k VisitKind) String() string {
	switch k {
	case VisitPropagation:
		return "propagation"
	case VisitReflection:
		return "reflection"
	case VisitMulti:
		return "multi"
	default:
		return "unknown"
	}
}

// visitRecord remembers the most recent classified visit of a node.
type visitRecord struct {
	round int64
	kind  VisitKind
}

// Tracker steps a rotor-router on the ring and classifies every visit, so
// that lazy domains (Definition 1) can be computed at any time. The wrapped
// system must have been created with core.WithFlowRecording and must run on
// graph.Ring. All stepping must go through Tracker.Step: external steps
// would lose visit classifications.
type Tracker struct {
	sys *core.System
	n   int

	// lastClassified[v] is the most recent fully classified visit of v.
	lastClassified []visitRecord
	// pending holds the nodes visited in the last completed round, whose
	// classification requires the next round's departure flows.
	pending []pendingVisit
}

type pendingVisit struct {
	node   int
	fromCW bool // arrived from the clockwise neighbor (moving CCW)
	multi  bool
	round  int64
}

// NewTracker wraps sys. The system may be mid-run; visits before tracking
// started are unclassified, so lazy domains become meaningful one full
// domain traversal after attachment.
func NewTracker(sys *core.System) (*Tracker, error) {
	n, err := ringOf(sys)
	if err != nil {
		return nil, err
	}
	probeOK := func() (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_ = sys.LastFlow(0, graph.RingCW)
		return true
	}
	if !probeOK() {
		return nil, errors.New("ringdom: tracker requires core.WithFlowRecording")
	}
	return &Tracker{
		sys:            sys,
		n:              n,
		lastClassified: make([]visitRecord, n),
	}, nil
}

// System returns the wrapped system.
func (t *Tracker) System() *core.System { return t.sys }

// Step advances the system one round and folds the new flow information
// into the visit classification.
func (t *Tracker) Step() {
	t.sys.Step()

	// 1. Classify the previous round's visits using this round's
	// departures. A node visited by a single agent at round r holds
	// exactly that agent at the start of round r+1, so exactly one of its
	// two outgoing arcs carries flow now.
	for _, pv := range t.pending {
		v := pv.node
		kind := VisitMulti
		if !pv.multi {
			outCW := t.sys.LastFlow(v, graph.RingCW) > 0
			// Arrived from the anticlockwise side moving clockwise:
			// continuing clockwise is a propagation. Arrived from the
			// clockwise side moving anticlockwise: continuing (out the
			// anticlockwise port) is a propagation.
			movedOnCW := !pv.fromCW && outCW
			movedOnCCW := pv.fromCW && !outCW
			if movedOnCW || movedOnCCW {
				kind = VisitPropagation
			} else {
				kind = VisitReflection
			}
		}
		t.lastClassified[v] = visitRecord{round: pv.round, kind: kind}
	}
	t.pending = t.pending[:0]

	// 2. Record this round's arrivals for classification next round.
	round := t.sys.Round()
	for _, v := range t.sys.LastVisited() {
		fromCCW := t.sys.LastFlow((v-1+t.n)%t.n, graph.RingCW) // arrived moving clockwise
		fromCW := t.sys.LastFlow((v+1)%t.n, graph.RingCCW)     // arrived moving anticlockwise
		t.pending = append(t.pending, pendingVisit{
			node:   v,
			fromCW: fromCW > 0 && fromCCW == 0,
			multi:  fromCW+fromCCW > 1,
			round:  round,
		})
	}
}

// Run advances the tracker the given number of rounds.
func (t *Tracker) Run(rounds int64) {
	for i := int64(0); i < rounds; i++ {
		t.Step()
	}
}

// LastVisitKind returns the classification of v's most recent classified
// visit (VisitUnknown if v has not had one since tracking began).
func (t *Tracker) LastVisitKind(v int) VisitKind { return t.lastClassified[v].kind }

// LazyDomain is the lazy domain V'_a of one agent: the subset of its domain
// whose nodes' last classified visits were single-agent propagations. By
// Lemma 6 it is a contiguous sub-arc of the domain missing at most the
// domain's endpoints.
type LazyDomain struct {
	// Anchor and Half identify the owning domain (see Domain).
	Anchor int
	Half   int
	// Start and Size delimit the lazy arc; Size may be 0 when no node of
	// the domain qualifies yet.
	Start int
	Size  int
	// DomainSize is the size of the enclosing (full) domain.
	DomainSize int
}

// LazyPartition holds the lazy domains at one instant, in ring order.
type LazyPartition struct {
	N       int
	Domains []LazyDomain
}

// Sizes returns the lazy domain sizes in ring order.
func (lp *LazyPartition) Sizes() []int {
	out := make([]int, len(lp.Domains))
	for i, d := range lp.Domains {
		out[i] = d.Size
	}
	return out
}

// MinSize returns the smallest lazy-domain size.
func (lp *LazyPartition) MinSize() int {
	if len(lp.Domains) == 0 {
		return 0
	}
	m := lp.Domains[0].Size
	for _, d := range lp.Domains[1:] {
		if d.Size < m {
			m = d.Size
		}
	}
	return m
}

// MaxAdjacentDiff returns the largest absolute size difference between
// lazy domains adjacent in ring order — the quantity Lemma 12 bounds by 10
// in the limit.
func (lp *LazyPartition) MaxAdjacentDiff() int {
	k := len(lp.Domains)
	if k < 2 {
		return 0
	}
	maxDiff := 0
	for i := 0; i < k; i++ {
		a := lp.Domains[i].Size
		b := lp.Domains[(i+1)%k].Size
		d := a - b
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// LazyDomains computes the current lazy partition: the intersection of each
// full domain with the set of nodes whose last classified visit was a
// single-agent propagation. It also verifies Lemma 6's structural claim
// that the qualifying nodes of each domain form one contiguous arc.
func (t *Tracker) LazyDomains() (*LazyPartition, error) {
	part, err := Domains(t.sys)
	if err != nil {
		return nil, err
	}
	lp := &LazyPartition{N: t.n}
	for _, d := range part.Domains {
		ld := LazyDomain{Anchor: d.Anchor, Half: d.Half, DomainSize: d.Size}
		// Scan the domain's arc for the contiguous run of propagation
		// nodes. Lemma 6: qualifying nodes form one run, possibly missing
		// the arc's endpoints.
		runStart, runLen := -1, 0
		curStart, curLen := -1, 0
		runs := 0
		for off := 0; off < d.Size; off++ {
			v := (d.Start + off) % t.n
			if t.lastClassified[v].kind == VisitPropagation {
				if curLen == 0 {
					curStart = v
					runs++
				}
				curLen++
				if curLen > runLen {
					runStart, runLen = curStart, curLen
				}
			} else {
				curLen = 0
			}
		}
		if runs > 1 {
			return nil, fmt.Errorf("ringdom: lazy domain of anchor %d splits into %d runs (Lemma 6 violated)",
				d.Anchor, runs)
		}
		if runLen > 0 {
			ld.Start, ld.Size = runStart, runLen
		}
		lp.Domains = append(lp.Domains, ld)
	}
	return lp, nil
}

// BorderKind classifies the border between two adjacent lazy domains
// (Fig. 1 of the paper).
type BorderKind int

const (
	// BorderVertex: exactly one node separates the two lazy arcs (the
	// node-type border of Fig. 1a).
	BorderVertex BorderKind = iota + 1
	// BorderEdge: the two lazy arcs are adjacent, separated only by the
	// edge between their endpoints (Fig. 1b).
	BorderEdge
	// BorderWide: more than one node separates the arcs (a border not yet
	// settled into one of the paper's two limit shapes, or bordering
	// unexplored territory).
	BorderWide
)

// String implements fmt.Stringer.
func (b BorderKind) String() string {
	switch b {
	case BorderVertex:
		return "vertex-type"
	case BorderEdge:
		return "edge-type"
	case BorderWide:
		return "wide"
	default:
		return "unknown"
	}
}

// Border describes the boundary between lazy domains i and i+1 (ring order).
type Border struct {
	Kind BorderKind
	// Gap is the number of non-lazy nodes strictly between the two arcs.
	Gap int
	// LeftEnd is the clockwise endpoint of the left (i-th) lazy arc.
	LeftEnd int
}

// Borders classifies all borders between consecutive nonempty lazy domains,
// in ring order. Empty lazy domains are skipped.
func (t *Tracker) Borders() ([]Border, error) {
	lp, err := t.LazyDomains()
	if err != nil {
		return nil, err
	}
	var arcs []LazyDomain
	for _, d := range lp.Domains {
		if d.Size > 0 {
			arcs = append(arcs, d)
		}
	}
	if len(arcs) < 2 {
		return nil, nil
	}
	borders := make([]Border, 0, len(arcs))
	for i := range arcs {
		cur := arcs[i]
		next := arcs[(i+1)%len(arcs)]
		leftEnd := (cur.Start + cur.Size - 1) % t.n
		gap := (next.Start - leftEnd - 1 + t.n) % t.n
		kind := BorderWide
		switch gap {
		case 0:
			kind = BorderEdge
		case 1:
			kind = BorderVertex
		}
		borders = append(borders, Border{Kind: kind, Gap: gap, LeftEnd: leftEnd})
	}
	return borders, nil
}

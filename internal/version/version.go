// Package version carries the build identity rotord surfaces in /healthz
// and /metrics, so operators (and the cluster smoke tests) can tell which
// build each role is running.
package version

// Version identifies this build. The default marks a source build;
// release pipelines override it with
//
//	go build -ldflags "-X rotorring/internal/version.Version=v1.2.3"
var Version = "0.8.0-dev"

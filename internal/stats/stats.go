// Package stats provides the small statistical toolkit used by the
// experiment harness: summary statistics for repeated random-walk trials,
// least-squares fits for scaling-law verification, and the ratio-spread
// measure used to decide whether a normalized quantity is "flat" across a
// parameter sweep (the Θ-shape criterion of DESIGN.md §5.7).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or NaN
// for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the sample median.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics, or NaN for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest element; NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// RatioSpread returns Max/Min of a slice of positive values: the factor by
// which a supposedly constant normalized quantity actually varies over a
// sweep. Returns NaN if the slice is empty or contains non-positive values.
func RatioSpread(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x <= 0 || math.IsNaN(x) {
			return math.NaN()
		}
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if lo <= 0 {
		return math.NaN()
	}
	return hi / lo
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N            int
	Mean, StdErr float64
	Min, Max     float64
	Median       float64
	Q25, Q75     float64
}

// Summarize computes a Summary. It returns ErrEmpty for an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdErr: StdErr(xs),
		Min:    Min(xs),
		Max:    Max(xs),
		Median: Median(xs),
		Q25:    Quantile(xs, 0.25),
		Q75:    Quantile(xs, 0.75),
	}, nil
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g median=%.4g range=[%.4g,%.4g]",
		s.N, s.Mean, s.StdErr, s.Median, s.Min, s.Max)
}

// Fit is the result of an ordinary least-squares line fit y = Slope·x +
// Intercept.
type Fit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination; 1 means a perfect fit.
	R2 float64
}

// LinearFit computes the least-squares line through (xs[i], ys[i]). It
// returns an error unless there are at least two distinct x values.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("stats: need at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: all x values identical")
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		fit.R2 = 1 // y constant and the fit reproduces it exactly
	} else {
		fit.R2 = sxy * sxy / (sxx * syy)
	}
	return fit, nil
}

// LogLogSlope fits log(y) against log(x) and returns the exponent estimate:
// the b̂ in y ≈ a·x^b. All values must be positive.
func LogLogSlope(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: mismatched lengths %d and %d", len(xs), len(ys))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: non-positive value at index %d", i)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// Harmonic returns the k-th harmonic number H_k = 1 + 1/2 + ... + 1/k.
func Harmonic(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1 / float64(i)
	}
	return h
}

// MeanInt64 is a convenience for integer-valued observations.
func MeanInt64(xs []int64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Mean(fs)
}

// Floats converts integer observations to float64s for the other helpers.
func Floats(xs []int64) []float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return fs
}

package stats

import (
	"math"
	"testing"
	"testing/quick"

	"rotorring/internal/xrand"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanVarianceKnownValues(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almostEqual(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(xs); !almostEqual(v, 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if sd := StdDev(xs); !almostEqual(sd, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stddev = %v", sd)
	}
}

func TestEmptyAndSmallSamples(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) not NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single sample not NaN")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) not NaN")
	}
	if !math.IsNaN(RatioSpread(nil)) {
		t.Error("RatioSpread(nil) not NaN")
	}
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) did not error")
	}
}

func TestMedianAndQuantiles(t *testing.T) {
	xs := []float64{3, 1, 2}
	if m := Median(xs); !almostEqual(m, 2, 1e-12) {
		t.Fatalf("median = %v", m)
	}
	xs = []float64{4, 1, 3, 2}
	if m := Median(xs); !almostEqual(m, 2.5, 1e-12) {
		t.Fatalf("median = %v", m)
	}
	if q := Quantile(xs, 0); !almostEqual(q, 1, 1e-12) {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); !almostEqual(q, 4, 1e-12) {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.25); !almostEqual(q, 1.75, 1e-12) {
		t.Fatalf("q25 = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile sorted the caller's slice")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
}

func TestRatioSpread(t *testing.T) {
	if r := RatioSpread([]float64{2, 4, 8}); !almostEqual(r, 4, 1e-12) {
		t.Fatalf("spread = %v", r)
	}
	if r := RatioSpread([]float64{5}); !almostEqual(r, 1, 1e-12) {
		t.Fatalf("single-element spread = %v", r)
	}
	if !math.IsNaN(RatioSpread([]float64{1, 0, 2})) {
		t.Error("non-positive value did not yield NaN")
	}
}

func TestLinearFitExactLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11} // y = 2x + 3
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 3, 1e-12) {
		t.Fatalf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("r2 = %v", fit.R2)
	}
}

func TestLinearFitNoisyLine(t *testing.T) {
	rng := xrand.New(3)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := float64(i) / 10
		xs = append(xs, x)
		ys = append(ys, 1.5*x-2+(rng.Float64()-0.5)*0.1)
	}
	fit, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 1.5, 0.01) || !almostEqual(fit.Intercept, -2, 0.05) {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.999 {
		t.Fatalf("r2 = %v", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLogLogSlopeRecoversExponent(t *testing.T) {
	var xs, ys []float64
	for _, x := range []float64{2, 4, 8, 16, 32} {
		xs = append(xs, x)
		ys = append(ys, 3*x*x) // y = 3 x^2
	}
	fit, err := LogLogSlope(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) {
		t.Fatalf("exponent = %v", fit.Slope)
	}
	if !almostEqual(math.Exp(fit.Intercept), 3, 1e-9) {
		t.Fatalf("prefactor = %v", math.Exp(fit.Intercept))
	}
}

func TestLogLogSlopeRejectsNonPositive(t *testing.T) {
	if _, err := LogLogSlope([]float64{1, -2}, []float64{1, 2}); err == nil {
		t.Error("negative x accepted")
	}
	if _, err := LogLogSlope([]float64{1, 2}, []float64{0, 2}); err == nil {
		t.Error("zero y accepted")
	}
}

func TestHarmonic(t *testing.T) {
	if h := Harmonic(1); !almostEqual(h, 1, 1e-12) {
		t.Fatalf("H_1 = %v", h)
	}
	if h := Harmonic(4); !almostEqual(h, 1+0.5+1.0/3+0.25, 1e-12) {
		t.Fatalf("H_4 = %v", h)
	}
	// H_k ~ ln k + γ.
	if h := Harmonic(100000); !almostEqual(h, math.Log(100000)+0.5772156649, 1e-4) {
		t.Fatalf("H_100000 = %v", h)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || !almostEqual(s.Mean, 3, 1e-12) || !almostEqual(s.Median, 3, 1e-12) {
		t.Fatalf("summary = %+v", s)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestMeanPropertyShiftInvariance(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		shifted := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			shifted[i] = xs[i] + 10
		}
		// Mean shifts by exactly 10; variance is unchanged.
		return almostEqual(Mean(shifted), Mean(xs)+10, 1e-9) &&
			almostEqual(Variance(shifted), Variance(xs), 1e-9)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFloatsAndMeanInt64(t *testing.T) {
	xs := []int64{1, 2, 3}
	fs := Floats(xs)
	if len(fs) != 3 || fs[2] != 3 {
		t.Fatalf("Floats = %v", fs)
	}
	if m := MeanInt64(xs); !almostEqual(m, 2, 1e-12) {
		t.Fatalf("MeanInt64 = %v", m)
	}
}

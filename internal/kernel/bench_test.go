package kernel

import (
	"testing"

	"rotorring/internal/xrand"
)

// benchState builds a dense random configuration on n nodes with k agents,
// the regime the flat kernels are selected for.
func benchState(n int, k int64) (State, []int64) {
	st := NewState(n)
	rng := xrand.New(1)
	for i := int64(0); i < k; i++ {
		v := rng.Intn(n)
		st.Agents[v]++
		if st.Visits[v] == 0 {
			st.Covered++
			st.CoveredAt[v] = 0
		}
		st.Visits[v]++
	}
	for v := 0; v < n; v++ {
		st.Ptr[v] = int32(rng.Intn(2))
	}
	held := make([]int64, n)
	for v := 0; v < n; v++ {
		if st.Agents[v] > 0 {
			held[v] = st.Agents[v] / 4
		}
	}
	return st, held
}

func BenchmarkRingStep(b *testing.B) {
	st, _ := benchState(1<<16, 1<<15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringStepper{}.Step(&st)
	}
}

func BenchmarkRingStepHeld(b *testing.B) {
	st, held := benchState(1<<16, 1<<15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringStepper{}.StepHeld(&st, held)
	}
}

func BenchmarkPathStepHeld(b *testing.B) {
	st, held := benchState(1<<16, 1<<15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pathStepper{}.StepHeld(&st, held)
	}
}

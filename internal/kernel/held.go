package kernel

// The held-round (delayed-deployment) kernel tier. A delay schedule holds
// held[v] of the agents at node v back each round (§2.1 of the paper);
// before this tier every held round fell off the fast path onto the generic
// engine one round at a time — the schedule tax BENCH_engine.json pins.
//
// The ring kernel below fuses the split and assemble passes of ring.go into
// a single sweep with rolling registers: when node u has been computed, node
// u-1's arrivals are fully determined (they need the clockwise share of u-2
// and the anticlockwise movers of u), so the kernel finalizes u-1 on the
// spot — one pass over the flat arrays instead of three, which is what the
// held fold (clamp, stayer add-back, eager visited list) would otherwise
// cost. The path kernel uses the same fusion without the wrap-around.
//
// Differences from the fully-active kernels, forced by held semantics:
//
//   - next[v] = held_v + arrivals_v: stayers are added back after the split
//     of the m = c - held movers. held is clamped to [0, agents[v]] exactly
//     like the generic engine, so stale entries at unoccupied nodes are
//     harmless.
//   - The per-round visited list cannot be derived lazily from occupancy
//     (held stayers are occupied but not visited), so the kernel appends to
//     LastVisited eagerly, in no particular order — the same contract the
//     generic engine's list carries. VisitStamp is still skipped: stale
//     stamps stay strictly below any future generic round stamp.
//   - FullyActiveRounds only advances when the round held no agent, which
//     the kernel detects from the clamped held sum.

// HeldStepper is the held-round extension of Stepper: a kernel that can
// advance a delayed-deployment round in which held[v] agents at node v skip
// their move and leave their node's pointer share untouched. held must have
// length N; entries are clamped to [0, agents[v]], so stale values at
// unoccupied nodes are ignored. Like Step, StepHeld must be bit-identical
// to the generic engine's StepHeld on the shared configuration state —
// core's differential suite enforces it.
type HeldStepper interface {
	Stepper
	StepHeld(st *State, held []int64)
}

func (ringStepper) StepHeld(st *State, held []int64) {
	if !st.HashOn {
		ringStepHeldFast(st, held)
		return
	}
	ringStepHeldHash(st, held)
}

// ringStepHeldFast is the hash-off held ring round — the hot path of every
// delay schedule. Beyond the fusion, it keeps the per-node work branch-lean:
// the visit fold adds zero arrivals unconditionally (the identity) instead
// of branching, and the visited list advances its length by a flag so the
// ~50% arrival branch never mispredicts.
func ringStepHeldFast(st *State, held []int64) {
	n := st.N
	next, _ := st.buffers()
	// Reslice everything to n so the compiler can drop the per-node bounds
	// checks in the sweep below.
	cur, held, next := st.Agents[:n], held[:n], next[:n]
	ptr, exits, visits := st.Ptr[:n], st.Exits[:n], st.Visits[:n]
	round := st.Round + 1
	covered := st.Covered
	if cap(st.LastVisited) < n {
		st.LastVisited = make([]int, n)
	}
	lv := st.LastVisited[:n]
	lvn := 0
	var heldSum int64

	// Prologue: compute nodes 0 and 1 (node 0 finalizes after n-1).
	c := cur[0]
	h0 := held[0]
	if h0 > c {
		h0 = c
	}
	if h0 < 0 {
		h0 = 0
	}
	m0 := c - h0
	p := int64(ptr[0])
	s0 := (m0 + 1 - p) >> 1
	ptr[0] = int32((p + m0) & 1)
	exits[0] += m0
	heldSum += h0

	c = cur[1]
	h1 := held[1]
	if h1 > c {
		h1 = c
	}
	if h1 < 0 {
		h1 = 0
	}
	m1 := c - h1
	p = int64(ptr[1])
	s1 := (m1 + 1 - p) >> 1
	ptr[1] = int32((p + m1) & 1)
	exits[1] += m1
	heldSum += h1

	// Main sweep: compute node u, finalize node v = u-1.
	sPrev2, sPrev, hPrev := s0, s1, h1
	for u := 2; u < n; u++ {
		c = cur[u]
		h := held[u]
		if h > c {
			h = c
		}
		if h < 0 {
			h = 0
		}
		m := c - h
		p = int64(ptr[u])
		s := (m + 1 - p) >> 1
		ptr[u] = int32((p + m) & 1)
		exits[u] += m
		heldSum += h

		v := u - 1
		a := sPrev2 + m - s
		next[v] = hPrev + a
		if visits[v] == 0 && a != 0 {
			st.CoveredAt[v] = round
			covered++
		}
		visits[v] += a
		lv[lvn] = v
		lvn += int((uint64(a) | uint64(-a)) >> 63)

		sPrev2, sPrev, hPrev = sPrev, s, h
	}

	// Epilogue: finalize n-1 (arrivals wrap to node 0's movers) and node 0.
	a := sPrev2 + m0 - s0
	next[n-1] = hPrev + a
	if visits[n-1] == 0 && a != 0 {
		st.CoveredAt[n-1] = round
		covered++
	}
	visits[n-1] += a
	lv[lvn] = n - 1
	lvn += int((uint64(a) | uint64(-a)) >> 63)

	a = sPrev + m1 - s1
	next[0] = h0 + a
	if visits[0] == 0 && a != 0 {
		st.CoveredAt[0] = round
		covered++
	}
	visits[0] += a
	lv[lvn] = 0
	lvn += int((uint64(a) | uint64(-a)) >> 63)

	if covered == n && st.Covered != n {
		st.CoverRound = round
	}
	st.Covered = covered
	st.LastVisited = lv[:lvn]
	st.Agents, st.Scratch = next, cur
	st.Round = round
	if heldSum == 0 {
		st.FullyActiveRounds++
	}
}

// ringStepHeldHash is the hash-maintaining held ring round (tier 2 on).
func ringStepHeldHash(st *State, held []int64) {
	n := st.N
	next, _ := st.buffers()
	cur, held, next := st.Agents[:n], held[:n], next[:n]
	ptr, exits, visits := st.Ptr[:n], st.Exits[:n], st.Visits[:n]
	hashOn := true
	round := st.Round + 1
	covered := st.Covered
	lv := st.LastVisited[:0]
	var dh uint64
	var heldSum int64

	// Prologue: compute nodes 0 and 1. Node 0 cannot be finalized until
	// node n-1 is computed (its arrivals wrap), so its held count and node
	// 0/1's splits are carried to the epilogue.
	c := cur[0]
	h0 := held[0]
	if h0 < 0 {
		h0 = 0
	} else if h0 > c {
		h0 = c
	}
	m0 := c - h0
	p := ptr[0]
	s0 := (m0 + 1 - int64(p)) >> 1
	np := int32((int64(p) + m0) & 1)
	if hashOn && np != p {
		dh += HashPtr(0, np) - HashPtr(0, p)
	}
	ptr[0] = np
	exits[0] += m0
	heldSum += h0

	c = cur[1]
	h1 := held[1]
	if h1 < 0 {
		h1 = 0
	} else if h1 > c {
		h1 = c
	}
	m1 := c - h1
	p = ptr[1]
	s1 := (m1 + 1 - int64(p)) >> 1
	np = int32((int64(p) + m1) & 1)
	if hashOn && np != p {
		dh += HashPtr(1, np) - HashPtr(1, p)
	}
	ptr[1] = np
	exits[1] += m1
	heldSum += h1

	// Main sweep: compute node u, finalize node v = u-1. Registers carry
	// the clockwise shares of u-2 and u-1 and the held count of u-1.
	sPrev2, sPrev, hPrev := s0, s1, h1
	for u := 2; u < n; u++ {
		c = cur[u]
		h := held[u]
		if h < 0 {
			h = 0
		} else if h > c {
			h = c
		}
		m := c - h
		p = ptr[u]
		s := (m + 1 - int64(p)) >> 1
		np = int32((int64(p) + m) & 1)
		if hashOn && np != p {
			dh += HashPtr(u, np) - HashPtr(u, p)
		}
		ptr[u] = np
		exits[u] += m
		heldSum += h

		// Finalize v = u-1: arrivals are the clockwise movers of v-1 plus
		// the anticlockwise movers of v+1 = u.
		v := u - 1
		a := sPrev2 + m - s
		nv := hPrev + a
		next[v] = nv
		if a != 0 {
			if visits[v] == 0 {
				st.CoveredAt[v] = round
				covered++
			}
			visits[v] += a
			lv = append(lv, v)
		}
		if hashOn && nv != cur[v] {
			dh += HashCnt(v, nv) - HashCnt(v, cur[v])
		}

		sPrev2, sPrev, hPrev = sPrev, s, h
	}

	// Epilogue: finalize n-1 (arrivals wrap to node 0's movers) and node 0.
	a := sPrev2 + m0 - s0
	nv := hPrev + a
	next[n-1] = nv
	if a != 0 {
		if visits[n-1] == 0 {
			st.CoveredAt[n-1] = round
			covered++
		}
		visits[n-1] += a
		lv = append(lv, n-1)
	}
	if hashOn && nv != cur[n-1] {
		dh += HashCnt(n-1, nv) - HashCnt(n-1, cur[n-1])
	}

	a = sPrev + m1 - s1
	nv = h0 + a
	next[0] = nv
	if a != 0 {
		if visits[0] == 0 {
			st.CoveredAt[0] = round
			covered++
		}
		visits[0] += a
		lv = append(lv, 0)
	}
	if hashOn && nv != cur[0] {
		dh += HashCnt(0, nv) - HashCnt(0, cur[0])
	}

	if covered == n && st.Covered != n {
		st.CoverRound = round
	}
	st.Covered = covered
	if hashOn {
		st.Hash += dh
	}
	st.LastVisited = lv
	st.Agents, st.Scratch = next, cur
	st.Round = round
	if heldSum == 0 {
		st.FullyActiveRounds++
	}
}

func (pathStepper) StepHeld(st *State, held []int64) {
	n := st.N
	cur := st.Agents
	next, _ := st.buffers()
	ptr, exits, visits := st.Ptr, st.Exits, st.Visits
	hashOn := st.HashOn
	round := st.Round + 1
	covered := st.Covered
	lv := st.LastVisited[:0]
	var dh uint64
	var heldSum int64

	// finalize folds node v's arrivals a and stayers h into the next-round
	// state. Small enough to inline at every call site.
	finalize := func(v int, h, a int64) {
		nv := h + a
		next[v] = nv
		if a != 0 {
			if visits[v] == 0 {
				st.CoveredAt[v] = round
				covered++
			}
			visits[v] += a
			lv = append(lv, v)
		}
		if hashOn && nv != cur[v] {
			dh += HashCnt(v, nv) - HashCnt(v, cur[v])
		}
	}

	// Prologue: node 0 sends everything right through its single port
	// (leftward share 0, pointer pinned at 0), node 1 is the first interior
	// node. Node 0 finalizes as soon as node 1 is computed.
	c := cur[0]
	h0 := held[0]
	if h0 < 0 {
		h0 = 0
	} else if h0 > c {
		h0 = c
	}
	m0 := c - h0
	exits[0] += m0
	heldSum += h0

	// n == 2: both nodes are endpoints exchanging their movers.
	if n == 2 {
		c = cur[1]
		h1 := held[1]
		if h1 < 0 {
			h1 = 0
		} else if h1 > c {
			h1 = c
		}
		m1 := c - h1
		exits[1] += m1
		heldSum += h1
		finalize(0, h0, m1)
		finalize(1, h1, m0)
	} else {
		c = cur[1]
		h1 := held[1]
		if h1 < 0 {
			h1 = 0
		} else if h1 > c {
			h1 = c
		}
		m1 := c - h1
		p := ptr[1]
		s1 := (m1 + 1 - int64(p)) >> 1
		np := int32((int64(p) + m1) & 1)
		if hashOn && np != p {
			dh += HashPtr(1, np) - HashPtr(1, p)
		}
		ptr[1] = np
		exits[1] += m1
		heldSum += h1
		finalize(0, h0, s1)

		// Main sweep: compute node u, finalize v = u-1 with the rightward
		// movers of v-1 and the leftward share of u. mPrev2/sPrev2 describe
		// node u-2; node 0's "split" is 0 by the endpoint convention.
		mPrev2, sPrev2 := m0, int64(0)
		mPrev, sPrev, hPrev := m1, s1, h1
		for u := 2; u < n-1; u++ {
			c = cur[u]
			h := held[u]
			if h < 0 {
				h = 0
			} else if h > c {
				h = c
			}
			m := c - h
			p = ptr[u]
			s := (m + 1 - int64(p)) >> 1
			np = int32((int64(p) + m) & 1)
			if hashOn && np != p {
				dh += HashPtr(u, np) - HashPtr(u, p)
			}
			ptr[u] = np
			exits[u] += m
			heldSum += h

			finalize(u-1, hPrev, mPrev2-sPrev2+s)
			mPrev2, sPrev2 = mPrev, sPrev
			mPrev, sPrev, hPrev = m, s, h
		}

		// Epilogue: node n-1 sends everything left through its single port
		// (leftward share = all movers), then the last two nodes finalize.
		c = cur[n-1]
		hLast := held[n-1]
		if hLast < 0 {
			hLast = 0
		} else if hLast > c {
			hLast = c
		}
		mLast := c - hLast
		exits[n-1] += mLast
		heldSum += hLast

		finalize(n-2, hPrev, mPrev2-sPrev2+mLast)
		finalize(n-1, hLast, mPrev-sPrev)
	}

	if covered == n && st.Covered != n {
		st.CoverRound = round
	}
	st.Covered = covered
	if hashOn {
		st.Hash += dh
	}
	st.LastVisited = lv
	st.Agents, st.Scratch = next, cur
	st.Round = round
	if heldSum == 0 {
		st.FullyActiveRounds++
	}
}

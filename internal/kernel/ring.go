package kernel

// The tier-1 rotor kernels. Both use the same gather formulation in three
// linear passes over flat []int64 arrays — no graph.Neighbor indirection,
// no per-node source/candidate bookkeeping, no occupied-list rebuild, and
// no scatter read-modify-writes:
//
//  1. split: per node, the closed-form degree-2 port split of its m
//     departing agents, pointer advance and exit counter. On the ring the
//     pass is fully branchless: with pointer p ∈ {0,1}, the pointed port
//     carries ⌈m/2⌉, so split = (m+1-p)>>1 — which is 0 when m = 0 — and
//     the new pointer (p+m) mod 2 equals p when m = 0.
//  2. assemble: arrivals at v are a pure function of the neighbors' counts
//     and splits, written sequentially into the double buffer.
//  3. finishRound (shared): fold arrivals into visit/coverage counters,
//     maintain the opt-in hash, swap buffers.
//
// Degree-2 split law (the paper's round rule specialized to d = 2): the m
// agents leaving v use ports p, p+1, …, p+m-1 (mod 2), so port p carries
// ⌈m/2⌉, the other port ⌊m/2⌋, and the pointer ends at (p+m) mod 2.

// buffers returns the zero-initialized-on-allocation next and split
// scratch arrays; contents are fully overwritten each round, so reuse
// needs no clearing.
func (st *State) buffers() (next, split []int64) {
	if len(st.Scratch) != st.N {
		st.Scratch = make([]int64, st.N)
	}
	if len(st.Split) != st.N {
		st.Split = make([]int64, st.N)
	}
	return st.Scratch, st.Split
}

// finishRound folds the arrivals assembled in next into visits and
// coverage, maintains the count half of the incremental hash when enabled,
// and swaps the buffers. cur still holds the start-of-round counts; dh is
// the pointer-hash delta accumulated by the split pass.
//
// The kernels deliberately do not maintain the per-round visited list or
// visit stamps: in a fully-active round every agent moves, so the visited
// nodes are exactly the nodes occupied after the swap, and the owner
// derives the list lazily when (rarely) asked. Stale VisitStamp entries
// from kernel rounds stay strictly below any future generic round stamp,
// so the generic engine's stamp comparisons remain correct.
func (st *State) finishRound(cur, next []int64, dh uint64) {
	round := st.Round + 1
	visits := st.Visits
	if covered := st.Covered; covered == st.N {
		// Fully covered: only the visit counters still change.
		for v, a := range next {
			if a != 0 {
				visits[v] += a
			}
		}
	} else {
		for v, a := range next {
			if a == 0 {
				continue
			}
			if visits[v] == 0 {
				st.CoveredAt[v] = round
				covered++
			}
			visits[v] += a
		}
		if covered == st.N {
			st.CoverRound = round
		}
		st.Covered = covered
	}

	if st.HashOn {
		for v, a := range next {
			if a != cur[v] {
				dh += HashCnt(v, a) - HashCnt(v, cur[v])
			}
		}
		st.Hash += dh
	}

	st.Agents, st.Scratch = next, cur
	st.Round = round
	st.FullyActiveRounds++
}

// ringStepper is the tier-1 kernel for graph.Ring topologies.
type ringStepper struct{}

func (ringStepper) Name() string { return "ring" }

func (ringStepper) Step(st *State) {
	n := st.N
	cur := st.Agents
	next, split := st.buffers()
	ptr, exits := st.Ptr, st.Exits
	var dh uint64

	// Split pass: split[v] is the clockwise (port 0) share of cur[v].
	if st.HashOn {
		for v, m := range cur {
			if m == 0 {
				split[v] = 0
				continue
			}
			p := ptr[v]
			split[v] = (m + 1 - int64(p)) >> 1
			np := int32((int64(p) + m) & 1)
			dh += HashPtr(v, np) - HashPtr(v, p)
			ptr[v] = np
			exits[v] += m
		}
	} else {
		for v, m := range cur {
			p := int64(ptr[v])
			split[v] = (m + 1 - p) >> 1
			ptr[v] = int32((p + m) & 1)
			exits[v] += m
		}
	}

	// Assemble pass: arrivals at v are the clockwise movers of v-1 plus
	// the anticlockwise movers of v+1.
	next[0] = split[n-1] + cur[1] - split[1]
	for v := 1; v < n-1; v++ {
		next[v] = split[v-1] + cur[v+1] - split[v+1]
	}
	next[n-1] = split[n-2] + cur[0] - split[0]

	st.finishRound(cur, next, dh)
}

// pathStepper is the tier-1 kernel for graph.Path topologies. Interior
// nodes have port 0 → v-1 and port 1 → v+1; the endpoints have a single
// port whose pointer never moves ((p+m) mod 1 = 0).
type pathStepper struct{}

func (pathStepper) Name() string { return "path" }

func (pathStepper) Step(st *State) {
	n := st.N
	cur := st.Agents
	next, split := st.buffers()
	ptr, exits := st.Ptr, st.Exits
	var dh uint64

	// Split pass: split[v] is the leftward (port 0) share of cur[v]. The
	// endpoints send everything through their only port: node 0 has no
	// left arc (split 0), node n-1 only the left arc (split all).
	split[0] = 0
	exits[0] += cur[0]
	split[n-1] = cur[n-1]
	exits[n-1] += cur[n-1]
	if st.HashOn {
		for v := 1; v < n-1; v++ {
			m := cur[v]
			if m == 0 {
				split[v] = 0
				continue
			}
			p := ptr[v]
			split[v] = (m + 1 - int64(p)) >> 1
			np := int32((int64(p) + m) & 1)
			dh += HashPtr(v, np) - HashPtr(v, p)
			ptr[v] = np
			exits[v] += m
		}
	} else {
		for v := 1; v < n-1; v++ {
			m := cur[v]
			p := int64(ptr[v])
			split[v] = (m + 1 - p) >> 1
			ptr[v] = int32((p + m) & 1)
			exits[v] += m
		}
	}

	// Assemble pass: arrivals at v are the rightward movers of v-1 plus
	// the leftward movers of v+1.
	next[0] = split[1]
	for v := 1; v < n-1; v++ {
		next[v] = cur[v-1] - split[v-1] + split[v+1]
	}
	next[n-1] = cur[n-2] - split[n-2]

	st.finishRound(cur, next, dh)
}

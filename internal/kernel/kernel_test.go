package kernel

import (
	"testing"

	"rotorring/internal/graph"
)

// The full behavioral contract — bit-identical equivalence with the
// generic engine — is enforced by the differential suite in internal/core
// (which owns both engines). These tests cover the package's own
// primitives: shape detection, selection policy, hashing and state
// cloning.

func TestDetectShape(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want Shape
	}{
		{graph.Ring(3), ShapeRing},
		{graph.Ring(64), ShapeRing},
		{graph.Path(2), ShapePath},
		{graph.Path(17), ShapePath},
		{graph.Torus2D(3, 3), ShapeGeneral},
		{graph.Complete(4), ShapeGeneral},
		{graph.Star(5), ShapeGeneral},
		{graph.CompleteBinaryTree(3), ShapeGeneral},
	}
	for _, tc := range cases {
		if got := DetectShape(tc.g); got != tc.want {
			t.Errorf("%s: shape %v, want %v", tc.g.Name(), got, tc.want)
		}
	}
}

func TestShapeStrings(t *testing.T) {
	if ShapeRing.String() != "ring" || ShapePath.String() != "path" || ShapeGeneral.String() != "general" {
		t.Error("shape strings wrong")
	}
}

func TestSelectPolicy(t *testing.T) {
	ring := graph.Ring(80)
	if s := Select(ring, 80/DenseFraction, false); s == nil || s.Name() != "ring" {
		t.Error("dense ring not selected at the threshold")
	}
	if s := Select(ring, 80/DenseFraction-1, false); s != nil {
		t.Error("sparse ring selected without force")
	}
	if s := Select(ring, 1, true); s == nil || s.Name() != "ring" {
		t.Error("forced sparse ring not selected")
	}
	if s := Select(graph.Path(16), 16, false); s == nil || s.Name() != "path" {
		t.Error("dense path not selected")
	}
	if s := Select(graph.Complete(8), 1000, true); s != nil {
		t.Error("general graph got a specialized kernel")
	}
}

func TestFullHashMatchesIncrements(t *testing.T) {
	ptr := []int32{0, 1, 0, 1}
	agents := []int64{3, 0, 2, 0}
	h := FullHash(ptr, agents)
	// Moving one agent from node 0 to node 1 must be expressible as the
	// sum of the per-component deltas.
	h2 := h
	h2 += HashCnt(0, 2) - HashCnt(0, 3)
	h2 += HashCnt(1, 1) - HashCnt(1, 0)
	ptr2 := []int32{0, 1, 0, 1}
	agents2 := []int64{2, 1, 2, 0}
	if FullHash(ptr2, agents2) != h2 {
		t.Error("incremental count delta disagrees with full recomputation")
	}
	// Zero counts contribute nothing, so trailing empty nodes are free.
	if HashCnt(7, 0) != 0 {
		t.Error("zero count hashes nonzero")
	}
}

func TestStateCloneIndependence(t *testing.T) {
	st := NewState(8)
	st.Agents[3] = 5
	st.Ptr[3] = 1
	st.Covered = 1
	c := st.Clone()
	ForRing().Step(&c)
	if st.Agents[3] != 5 || st.Round != 0 {
		t.Error("stepping a clone mutated the original")
	}
	if c.Round != 1 || c.Agents[3] != 0 {
		t.Error("clone did not step")
	}
	if c.Agents[2]+c.Agents[4] != 5 {
		t.Errorf("clone arrivals wrong: %v", c.Agents)
	}
}

package kernel

// The deterministic parallel-within-round stepper. One run of a
// multi-million-node ring is still bound by a single core under the serial
// kernel; this tier shards the node range across goroutines while keeping
// every output bit identical to the serial kernel — by construction, not by
// tolerance:
//
//   - Phase 1 (split): each shard owns a contiguous node range [lo, hi) and
//     computes port splits, pointer advances and exit counters for its own
//     nodes only. No cross-shard state is touched.
//   - Barrier, then phase 2 (assemble): arrivals at v read only phase-1
//     outputs (the splits and movers of v±1), which are stable after the
//     barrier; every write (next counts, visit counters, coverage stamps)
//     is again shard-owned at node granularity.
//   - Merge: the per-shard hash deltas, coverage counts and held sums fold
//     into the State serially. The incremental hash is a sum of per-node
//     deltas mod 2^64, so any grouping of the additions produces the same
//     value; the per-shard visited lists concatenate in shard order.
//
// Because nothing about the arithmetic depends on the shard boundaries, the
// result is bit-identical at every shard count — including 1, where the
// stepper delegates to the serial kernel outright. The differential fuzz in
// core compares shard counts against each other and against the generic
// engine.

import (
	"runtime"
	"sync"
)

// Parallelize wraps s in the deterministic parallel-within-round stepper
// when the shape supports one — currently the ring, whose flat layout
// shards into contiguous ranges. shards fixes the shard count; <= 0 means
// GOMAXPROCS at step time. Other steppers (and nil) are returned unchanged:
// the path kernel stays serial. Each call returns a fresh instance; unlike
// the serial kernels a parallel stepper carries merge scratch and must not
// be shared between systems stepping concurrently.
func Parallelize(s Stepper, shards int) Stepper {
	if _, ok := s.(ringStepper); ok {
		return &parallelRing{shards: shards}
	}
	return s
}

// ringShard is one shard's merge slot: state folded serially after the
// phase-2 barrier.
type ringShard struct {
	dh      uint64
	covered int
	heldSum int64
	lv      []int
}

// parallelRing is the parallel-within-round ring stepper.
type parallelRing struct {
	shards int
	res    []ringShard
}

func (pk *parallelRing) Name() string { return "ring-parallel" }

// shardCount resolves the effective shard count for an n-node round.
func (pk *parallelRing) shardCount(n int) int {
	s := pk.shards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

func (pk *parallelRing) results(s int) []ringShard {
	if cap(pk.res) < s {
		pk.res = make([]ringShard, s)
	}
	res := pk.res[:s]
	for i := range res {
		res[i].dh, res[i].covered, res[i].heldSum = 0, 0, 0
	}
	return res
}

// parallelFor runs f over S contiguous shards of [0, n) and waits for all
// of them. Shard 0 runs on the calling goroutine.
func parallelFor(n, s int, f func(shard, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(s - 1)
	for i := 1; i < s; i++ {
		go func(i int) {
			defer wg.Done()
			f(i, n*i/s, n*(i+1)/s)
		}(i)
	}
	f(0, 0, n/s)
	wg.Wait()
}

func (pk *parallelRing) Step(st *State) {
	n := st.N
	s := pk.shardCount(n)
	if s == 1 {
		ringStepper{}.Step(st)
		return
	}
	cur := st.Agents
	next, split := st.buffers()
	ptr, exits, visits := st.Ptr, st.Exits, st.Visits
	hashOn := st.HashOn
	round := st.Round + 1
	allCovered := st.Covered == n
	res := pk.results(s)

	// Phase 1: shard-owned splits, pointer advances, exits.
	parallelFor(n, s, func(i, lo, hi int) {
		var dh uint64
		if hashOn {
			for v := lo; v < hi; v++ {
				m := cur[v]
				if m == 0 {
					split[v] = 0
					continue
				}
				p := ptr[v]
				split[v] = (m + 1 - int64(p)) >> 1
				np := int32((int64(p) + m) & 1)
				dh += HashPtr(v, np) - HashPtr(v, p)
				ptr[v] = np
				exits[v] += m
			}
		} else {
			for v := lo; v < hi; v++ {
				m := cur[v]
				p := int64(ptr[v])
				split[v] = (m + 1 - p) >> 1
				ptr[v] = int32((p + m) & 1)
				exits[v] += m
			}
		}
		res[i].dh = dh
	})

	// Phase 2: assemble arrivals and fold visits/coverage, shard-owned at
	// node granularity; the cross-shard split/cur reads are stable now.
	parallelFor(n, s, func(i, lo, hi int) {
		var dh uint64
		covered := 0
		for v := lo; v < hi; v++ {
			var a int64
			switch v {
			case 0:
				a = split[n-1] + cur[1] - split[1]
			case n - 1:
				a = split[n-2] + cur[0] - split[0]
			default:
				a = split[v-1] + cur[v+1] - split[v+1]
			}
			next[v] = a
			if a != 0 {
				if !allCovered && visits[v] == 0 {
					st.CoveredAt[v] = round
					covered++
				}
				visits[v] += a
			}
			if hashOn && a != cur[v] {
				dh += HashCnt(v, a) - HashCnt(v, cur[v])
			}
		}
		res[i].dh += dh
		res[i].covered = covered
	})

	covered := st.Covered
	var dh uint64
	for i := range res {
		dh += res[i].dh
		covered += res[i].covered
	}
	if covered == n && st.Covered != n {
		st.CoverRound = round
	}
	st.Covered = covered
	if hashOn {
		st.Hash += dh
	}
	st.Agents, st.Scratch = next, cur
	st.Round = round
	st.FullyActiveRounds++
}

func (pk *parallelRing) StepHeld(st *State, held []int64) {
	n := st.N
	s := pk.shardCount(n)
	if s == 1 {
		ringStepper{}.StepHeld(st, held)
		return
	}
	cur := st.Agents
	next, split := st.buffers()
	if len(st.Active) != n {
		st.Active = make([]int64, n)
	}
	active := st.Active
	ptr, exits, visits := st.Ptr, st.Exits, st.Visits
	hashOn := st.HashOn
	round := st.Round + 1
	res := pk.results(s)

	// Phase 1: clamp the hold, split the movers, advance pointers.
	parallelFor(n, s, func(i, lo, hi int) {
		var dh uint64
		var heldSum int64
		for v := lo; v < hi; v++ {
			c := cur[v]
			h := held[v]
			if h < 0 {
				h = 0
			} else if h > c {
				h = c
			}
			m := c - h
			p := ptr[v]
			split[v] = (m + 1 - int64(p)) >> 1
			np := int32((int64(p) + m) & 1)
			if hashOn && np != p {
				dh += HashPtr(v, np) - HashPtr(v, p)
			}
			ptr[v] = np
			exits[v] += m
			active[v] = m
			heldSum += h
		}
		res[i].dh = dh
		res[i].heldSum = heldSum
	})

	// Phase 2: next[v] = stayers + arrivals; eager per-shard visited lists
	// (held rounds cannot derive the list from occupancy).
	parallelFor(n, s, func(i, lo, hi int) {
		var dh uint64
		covered := 0
		lv := res[i].lv[:0]
		for v := lo; v < hi; v++ {
			var a int64
			switch v {
			case 0:
				a = split[n-1] + active[1] - split[1]
			case n - 1:
				a = split[n-2] + active[0] - split[0]
			default:
				a = split[v-1] + active[v+1] - split[v+1]
			}
			nv := cur[v] - active[v] + a
			next[v] = nv
			if a != 0 {
				if visits[v] == 0 {
					st.CoveredAt[v] = round
					covered++
				}
				visits[v] += a
				lv = append(lv, v)
			}
			if hashOn && nv != cur[v] {
				dh += HashCnt(v, nv) - HashCnt(v, cur[v])
			}
		}
		res[i].dh += dh
		res[i].covered = covered
		res[i].lv = lv
	})

	covered := st.Covered
	var dh uint64
	var heldSum int64
	lv := st.LastVisited[:0]
	for i := range res {
		dh += res[i].dh
		covered += res[i].covered
		heldSum += res[i].heldSum
		lv = append(lv, res[i].lv...)
	}
	if covered == n && st.Covered != n {
		st.CoverRound = round
	}
	st.Covered = covered
	if hashOn {
		st.Hash += dh
	}
	st.LastVisited = lv
	st.Agents, st.Scratch = next, cur
	st.Round = round
	if heldSum == 0 {
		st.FullyActiveRounds++
	}
}

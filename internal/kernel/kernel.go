// Package kernel is the tiered stepping subsystem of the rotor-router
// engine: specialized round kernels for the topologies the paper's headline
// results live on (the ring and the path, both degree ≤ 2), selected
// automatically by core.NewSystem and falling back to the generic
// port-labeled-graph machinery everywhere else.
//
// The package owns two things:
//
//   - State: the flat configuration arrays of a running system (pointers,
//     agent counts, visit/exit counters, coverage bookkeeping). core.System
//     embeds a State so that a kernel can advance a round without any
//     indirection through the graph adjacency structure or the generic
//     engine's occupied/candidate lists.
//
//   - Stepper: the interface a specialized kernel implements. A Stepper
//     advances exactly one fully-active round (no held agents) and must be
//     bit-identical to the generic engine on the configuration state it
//     shares: pointers, agent counts, visits, exits, coverage, round
//     counters, and — when State.HashOn is set — the incremental
//     configuration hash. The differential tests in core enforce this
//     configuration-for-configuration. Kernels that also cover
//     delayed-deployment rounds implement HeldStepper (held.go), under the
//     same bit-identity contract.
//
// Tier 1 (this package) is the ring/path rotor kernel: a branch-light loop
// over the flat count arrays with direct (v±1) mod n addressing and
// closed-form port splitting, plus the fused held-round variants in
// held.go. Tier 2 is the opt-in configuration hash (State.HashOn, enabled
// by core.WithConfigHash); kernels skip all hash work when it is off.
// Tier 3 — counts-based binomial stepping for the random-walk baseline —
// lives in internal/randwalk and shares this package's shape detection.
// Orthogonally, Parallelize (parallel.go) shards a flat ring round across
// goroutines with bit-identical results at every shard count.
package kernel

import (
	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// State is the flat rotor-router configuration a Stepper advances. It is
// owned by core.System, which exposes its own accessors over these arrays;
// kernels mutate them directly. All slices have length N except LastVisited
// and Scratch, which are kernel-managed.
type State struct {
	// N is the number of nodes.
	N int
	// Ptr holds the current port pointer π_v of every node.
	Ptr []int32
	// Agents holds the number of agents currently at every node. Kernels
	// may swap this slice with Scratch; callers must re-read it after a
	// Step rather than retaining the backing array.
	Agents []int64
	// Visits holds n_v(t): initial agents at v plus arrivals in [1, t].
	Visits []int64
	// Exits holds e_v(t): departures from v in [1, t].
	Exits []int64

	// CoveredAt records the round of first visit per node (-1 uncovered).
	CoveredAt []int64
	// Covered is the number of covered nodes; CoverRound the first round
	// with Covered == N (-1 before that).
	Covered    int
	CoverRound int64
	// Round counts completed rounds; FullyActiveRounds those with no agent
	// held (the paper's τ).
	Round             int64
	FullyActiveRounds int64

	// VisitStamp marks, per node, the last round with at least one arrival;
	// LastVisited lists the nodes stamped in the last completed round.
	VisitStamp  []int64
	LastVisited []int

	// HashOn enables incremental configuration hashing (tier 2). When off —
	// the default — neither the generic engine nor the kernels spend any
	// time on hash bookkeeping. Hash is only meaningful while HashOn.
	HashOn bool
	Hash   uint64

	// Scratch is the kernels' double buffer for next-round agent counts
	// and Split their per-node departing-split scratch. Both are allocated
	// lazily on first specialized step. Active is the parallel held
	// stepper's per-node mover scratch (the serial kernels keep movers in
	// registers), allocated lazily on first parallel held round.
	Scratch []int64
	Split   []int64
	Active  []int64
}

// NewState allocates a zeroed State for n nodes (coverage fields are set by
// the owner during placement).
func NewState(n int) State {
	return State{
		N:          n,
		Ptr:        make([]int32, n),
		Agents:     make([]int64, n),
		Visits:     make([]int64, n),
		Exits:      make([]int64, n),
		CoveredAt:  make([]int64, n),
		CoverRound: -1,
		VisitStamp: make([]int64, n),
	}
}

// Clone returns a deep copy of the state. The scratch buffers are not
// carried over; the copy reallocates its own on first specialized step.
func (st *State) Clone() State {
	c := *st
	c.Ptr = append([]int32(nil), st.Ptr...)
	c.Agents = append([]int64(nil), st.Agents...)
	c.Visits = append([]int64(nil), st.Visits...)
	c.Exits = append([]int64(nil), st.Exits...)
	c.CoveredAt = append([]int64(nil), st.CoveredAt...)
	c.VisitStamp = append([]int64(nil), st.VisitStamp...)
	c.LastVisited = append([]int(nil), st.LastVisited...)
	c.Scratch = nil
	c.Split = nil
	c.Active = nil
	return c
}

// Stepper advances one synchronous, fully-active round over a State. A nil
// Stepper means "generic only". The serial implementations are stateless
// (all mutable state lives in the State), so one Stepper value may serve
// many systems; the parallel stepper returned by Parallelize carries merge
// scratch and must be per-system. A single State must not be stepped from
// two goroutines at once. Kernels that also cover delayed-deployment
// rounds additionally implement HeldStepper (held.go).
type Stepper interface {
	// Name identifies the kernel ("ring", "path") for logs and benchmarks.
	Name() string
	// Step advances one round in which every agent is active. The caller
	// guarantees the State was built for a graph this kernel supports.
	Step(st *State)
}

// Shape classifies a topology for kernel selection.
type Shape int

// Shapes.
const (
	// ShapeGeneral is any graph without a specialized kernel.
	ShapeGeneral Shape = iota
	// ShapeRing is the cycle with the canonical port layout (port 0 → v+1,
	// port 1 → v-1, both mod n) produced by graph.Ring.
	ShapeRing
	// ShapePath is the path 0–1–…–n-1 with the port layout produced by
	// graph.Path: endpoints have the single port 0, interior nodes have
	// port 0 → v-1 and port 1 → v+1.
	ShapePath
)

func (s Shape) String() string {
	switch s {
	case ShapeRing:
		return "ring"
	case ShapePath:
		return "path"
	default:
		return "general"
	}
}

// DetectShape classifies g structurally (node labels, degrees and port
// layout), not by name, so user-built graphs qualify too. O(n).
func DetectShape(g *graph.Graph) Shape {
	n := g.NumNodes()
	if isRingShape(g, n) {
		return ShapeRing
	}
	if isPathShape(g, n) {
		return ShapePath
	}
	return ShapeGeneral
}

func isRingShape(g *graph.Graph, n int) bool {
	if n < 3 || g.NumEdges() != n {
		return false
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != 2 ||
			g.Neighbor(v, graph.RingCW) != (v+1)%n ||
			g.Neighbor(v, graph.RingCCW) != (v-1+n)%n {
			return false
		}
	}
	return true
}

func isPathShape(g *graph.Graph, n int) bool {
	if n < 2 || g.NumEdges() != n-1 {
		return false
	}
	if g.Degree(0) != 1 || g.Neighbor(0, 0) != 1 ||
		g.Degree(n-1) != 1 || g.Neighbor(n-1, 0) != n-2 {
		return false
	}
	for v := 1; v < n-1; v++ {
		if g.Degree(v) != 2 || g.Neighbor(v, 0) != v-1 || g.Neighbor(v, 1) != v+1 {
			return false
		}
	}
	return true
}

// DenseFraction is the density threshold of automatic kernel selection: the
// flat kernels scan all n nodes per round, so they only pay off against the
// generic engine's occupied-list walk when agents are at least n/DenseFraction.
const DenseFraction = 8

// ForRing returns the ring kernel and ForPath the path kernel; both are
// stateless singletons.
func ForRing() Stepper { return ringStepper{} }

// ForPath returns the path kernel.
func ForPath() Stepper { return pathStepper{} }

// Select returns the specialized kernel for g, if one exists. With force
// set, density is ignored; otherwise the kernel is only selected when k ≥
// n/DenseFraction, the regime where the flat scan beats the generic
// occupied-list engine. A nil return means "use the generic engine".
func Select(g *graph.Graph, k int64, force bool) Stepper {
	shape := DetectShape(g)
	if shape == ShapeGeneral {
		return nil
	}
	if !force && k < int64(g.NumNodes()/DenseFraction) {
		return nil
	}
	switch shape {
	case ShapeRing:
		return ringStepper{}
	case ShapePath:
		return pathStepper{}
	}
	return nil
}

// HashPtr is the hash contribution of pointer state (v, p).
func HashPtr(v int, p int32) uint64 {
	return xrand.Mix64(uint64(v)<<32 | uint64(uint32(p)) | 1<<63)
}

// HashCnt is the hash contribution of agent-count state (v, c); zero counts
// contribute nothing so that untouched nodes need no bookkeeping.
func HashCnt(v int, c int64) uint64 {
	if c == 0 {
		return 0
	}
	return xrand.Mix64(uint64(v)*0x9e3779b97f4a7c15 + uint64(c))
}

// FullHash recomputes the configuration hash of (ptr, agents) from scratch.
func FullHash(ptr []int32, agents []int64) uint64 {
	var h uint64
	for v := range ptr {
		h += HashPtr(v, ptr[v])
		h += HashCnt(v, agents[v])
	}
	return h
}

package continuum

import (
	"math"
	"testing"

	"rotorring/internal/stats"
)

func TestLimitProfileRejectsSmallK(t *testing.T) {
	for _, k := range []int{0, 1, 2, 3} {
		if _, err := LimitProfile(k); err == nil {
			t.Errorf("k=%d accepted", k)
		}
	}
}

func TestLimitProfileProperties(t *testing.T) {
	// Lemma 13 properties (1)-(6) for a range of k.
	for _, k := range []int{4, 6, 10, 32, 100, 500, 2000} {
		p, err := LimitProfile(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// (1) a_0 = +∞.
		if !math.IsInf(p.A[0], 1) {
			t.Errorf("k=%d: a_0 = %v", k, p.A[0])
		}
		// (2) a_{k+1} = a_k < a_{k-1} < ... < a_1.
		if p.A[k+1] != p.A[k] {
			t.Errorf("k=%d: a_{k+1} != a_k", k)
		}
		for i := 1; i < k; i++ {
			if !(p.A[i] > p.A[i+1]) {
				t.Errorf("k=%d: a_%d=%v not > a_%d=%v", k, i, p.A[i], i+1, p.A[i+1])
			}
		}
		// (3) Σ a_i = 1.
		if sum := p.Sum(); math.Abs(sum-1) > 1e-9 {
			t.Errorf("k=%d: sum = %v", k, sum)
		}
		// (4) the recursion identity holds.
		if res := p.RecursionResidual(); res > 1e-6 {
			t.Errorf("k=%d: recursion residual %v", k, res)
		}
		// (5) 1/(4(H_k+1)) <= a_1 <= 1/H_k.
		hk := stats.Harmonic(k)
		if p.A[1] < 1/(4*(hk+1))-1e-12 || p.A[1] > 1/hk+1e-12 {
			t.Errorf("k=%d: a_1 = %v outside [%v, %v]", k, p.A[1], 1/(4*(hk+1)), 1/hk)
		}
		// (6) a_i >= 1/(4i(H_k+1)).
		for i := 1; i <= k; i++ {
			if p.A[i] < 1/(4*float64(i)*(hk+1))-1e-12 {
				t.Errorf("k=%d: a_%d = %v below bound", k, i, p.A[i])
			}
		}
		// Also: b_i <= i·c implies a_i >= a_1/i (the g(i) ~ Θ(i) shape).
		for i := 1; i <= k; i++ {
			if p.A[i] < p.A[1]/float64(i)-1e-12 {
				t.Errorf("k=%d: a_%d = %v below a_1/i = %v", k, i, p.A[i], p.A[1]/float64(i))
			}
		}
	}
}

func TestProfilePrefix(t *testing.T) {
	p, err := LimitProfile(8)
	if err != nil {
		t.Fatal(err)
	}
	pre := p.Prefix()
	// p_1 = Σ all = 1; p_{k+1} = 0; decreasing in i.
	if math.Abs(pre[1]-1) > 1e-9 {
		t.Fatalf("p_1 = %v", pre[1])
	}
	if pre[9] != 0 {
		t.Fatalf("p_{k+1} = %v", pre[9])
	}
	for i := 1; i <= 8; i++ {
		if !(pre[i] > pre[i+1]) {
			t.Fatalf("prefix not decreasing at %d: %v, %v", i, pre[i], pre[i+1])
		}
	}
}

func TestCSquaredBracket(t *testing.T) {
	// Lemma 13's proof: H_k <= c² <= 4(H_k + 1).
	for _, k := range []int{5, 20, 200} {
		p, err := LimitProfile(k)
		if err != nil {
			t.Fatal(err)
		}
		hk := stats.Harmonic(k)
		c2 := p.C * p.C
		if c2 < hk-1e-9 || c2 > 4*(hk+1)+1e-9 {
			t.Errorf("k=%d: c² = %v outside [H_k, 4(H_k+1)] = [%v, %v]", k, c2, hk, 4*(hk+1))
		}
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, BoundaryCyclic); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := NewModel([]float64{1, -2}, BoundaryCyclic); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := NewModel([]float64{1, math.NaN()}, BoundaryCyclic); err == nil {
		t.Error("NaN size accepted")
	}
}

func TestCoveredModelConservesTotalAndEqualizes(t *testing.T) {
	// Post-coverage the ODE conserves Σν (borders only shift mass) and the
	// stationary profile is uniform (§2.3: g_i constant).
	sizes := []float64{50, 10, 30, 20, 40}
	m, err := NewModel(sizes, BoundaryCyclic)
	if err != nil {
		t.Fatal(err)
	}
	total0 := m.Total()
	if err := m.Advance(1e6); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Total()-total0)/total0 > 1e-6 {
		t.Fatalf("total drifted: %v -> %v", total0, m.Total())
	}
	want := total0 / float64(len(sizes))
	for i, v := range m.Sizes() {
		if math.Abs(v-want)/want > 0.01 {
			t.Errorf("domain %d = %v, want ≈ %v", i, v, want)
		}
	}
}

func TestUncoveredModelGrowsAsSqrtT(t *testing.T) {
	// Pre-coverage, the self-similar solution is ν_i(t) = a_i·f(t) with
	// f(t) = sqrt(t/a_1 + S²): explored mass grows as √t, and since
	// Σ a_i = 1 the total explored mass is exactly f(t). Check the closed
	// form along the trajectory and the asymptotic exponent 1/2.
	p, err := LimitProfile(8)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 1000.0
	sizes := make([]float64, 8)
	for i := range sizes {
		sizes[i] = p.A[i+1] * scale
	}
	m, err := NewModel(sizes, BoundaryOneFrontier)
	if err != nil {
		t.Fatal(err)
	}

	var ts, totals []float64
	horizon := 1e5
	for step := 0; step < 8; step++ {
		if err := m.Advance(horizon); err != nil {
			t.Fatal(err)
		}
		horizon *= 2
		ts = append(ts, m.Time())
		totals = append(totals, m.Total())
		want := math.Sqrt(m.Time()/p.A[1] + scale*scale)
		if math.Abs(m.Total()-want)/want > 0.02 {
			t.Fatalf("t=%v: total = %v, closed form %v", m.Time(), m.Total(), want)
		}
	}
	// Asymptotic exponent over the last points, where t/a_1 >> S².
	fit, err := stats.LogLogSlope(ts[4:], totals[4:])
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.5) > 0.03 {
		t.Fatalf("growth exponent = %v, want ≈ 0.5", fit.Slope)
	}
}

func TestUncoveredModelPreservesProfileShape(t *testing.T) {
	// Starting from the Lemma 13 profile ν_i = a_i·S, the shape is
	// self-similar: ν_i(t)/ν_1(t) stays ≈ a_i/a_1 as the system grows.
	const k = 12
	p, err := LimitProfile(k)
	if err != nil {
		t.Fatal(err)
	}
	const scale = 5000.0
	sizes := make([]float64, k)
	for i := range sizes {
		sizes[i] = p.A[i+1] * scale
	}
	m, err := NewModel(sizes, BoundaryOneFrontier)
	if err != nil {
		t.Fatal(err)
	}
	// Grow the system by roughly 4x (t ~ total²).
	if err := m.Advance(16 * scale * scale); err != nil {
		t.Fatal(err)
	}
	if m.Total() < 2*scale {
		t.Fatalf("system did not grow: total %v", m.Total())
	}
	got := m.Sizes()
	for i := 0; i < k; i++ {
		wantRatio := p.A[i+1] / p.A[1]
		gotRatio := got[i] / got[0]
		if math.Abs(gotRatio-wantRatio)/wantRatio > 0.05 {
			t.Errorf("domain %d: ratio %v, want %v", i+1, gotRatio, wantRatio)
		}
	}
}

func TestFrontierGrowthRate(t *testing.T) {
	// With two frontiers d(Σν)/dt = 1/(2ν_1) + 1/(2ν_k): both outermost
	// domains capture new territory. With one frontier only ν_1 does.
	sizes := []float64{100, 80, 60}
	m, err := NewModel(sizes, BoundaryTwoFrontiers)
	if err != nil {
		t.Fatal(err)
	}
	before := m.Total()
	dt := 1.0
	if err := m.Advance(dt); err != nil {
		t.Fatal(err)
	}
	growth := m.Total() - before
	want := dt * (1/(2*100.0) + 1/(2*60.0))
	if math.Abs(growth-want)/want > 0.02 {
		t.Fatalf("two-frontier growth %v, want ≈ %v", growth, want)
	}

	m2, err := NewModel(sizes, BoundaryOneFrontier)
	if err != nil {
		t.Fatal(err)
	}
	before = m2.Total()
	if err := m2.Advance(dt); err != nil {
		t.Fatal(err)
	}
	growth = m2.Total() - before
	want = dt * (1 / (2 * 100.0))
	if math.Abs(growth-want)/want > 0.02 {
		t.Fatalf("one-frontier growth %v, want ≈ %v", growth, want)
	}
}

func TestTwoFrontiersSymmetrize(t *testing.T) {
	// With unexplored territory on both sides, the limiting shape is
	// symmetric: ν_i ≈ ν_{k+1-i} after enough growth.
	sizes := []float64{400, 100, 150, 220, 90, 300}
	m, err := NewModel(sizes, BoundaryTwoFrontiers)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(4e7); err != nil {
		t.Fatal(err)
	}
	got := m.Sizes()
	k := len(got)
	for i := 0; i < k/2; i++ {
		a, b := got[i], got[k-1-i]
		if math.Abs(a-b)/math.Max(a, b) > 0.05 {
			t.Errorf("asymmetry at %d: %v vs %v", i, a, b)
		}
	}
}

func TestAdvanceRejectsCollapse(t *testing.T) {
	// A tiny domain squeezed by huge neighbors collapses; Advance must
	// detect it rather than produce negative sizes.
	m, err := NewModel([]float64{1e6, 0.05, 1e6}, BoundaryCyclic)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(1e9); err == nil {
		// Not necessarily an error mathematically (1/ν_i blows up too),
		// but sizes must stay positive if no error was reported.
		for i, v := range m.Sizes() {
			if v <= 0 {
				t.Fatalf("domain %d collapsed to %v without error", i, v)
			}
		}
	}
}

func TestModelTimeAdvances(t *testing.T) {
	m, err := NewModel([]float64{10, 10}, BoundaryCyclic)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Advance(42); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Time()-42) > 1e-9 {
		t.Fatalf("time = %v", m.Time())
	}
}

// Package continuum implements the continuous-time approximation of the
// multi-agent rotor-router on the ring (paper §2.3) and the normalized
// limit profile sequence {a_i} of Lemma 13.
//
// In the continuous model the i-th agent's domain has size ν_i(t) evolving
// under
//
//	dν_i/dt = 1/ν_i − 1/(2ν_{i−1}) − 1/(2ν_{i+1}),
//
// an agent enlarging its own domain once per traversal while its neighbors
// push back. Before the ring is covered the boundary conditions are
// ν_0 = ν_{k+1} = +∞ (a frontier of negatively initialized pointers);
// after coverage the conditions are cyclic. The paper separates variables
// as ν_i(t) = f(t)/g_i, yielding f(t) ~ √t and domain sizes proportional to
// the sequence a_i of Lemma 13 (a_i ≈ Θ(1/i)) while unexplored territory
// remains, and equal sizes in the covered limit.
package continuum

import (
	"errors"
	"fmt"
	"math"

	"rotorring/internal/stats"
)

// Profile is the normalized limit profile (a_0, a_1, ..., a_k, a_{k+1}) of
// Lemma 13: a_0 = +∞, a_{k+1} = a_k, Σ_{i=1..k} a_i = 1, and the a_i are
// strictly decreasing. A[i] holds a_i; len(A) == k+2.
type Profile struct {
	K int
	// C is the constant c = b_1 of the underlying recursion; the lemma
	// shows H_k <= c² <= 4(H_k + 1).
	C float64
	// A[0] = +Inf, A[i] = a_i = 1/(c·b_i) for 1 <= i <= k, A[k+1] = A[k].
	A []float64
	// B[i] = b_i: b_0 = 0, b_1 = c, b_{i+1} = 2b_i − b_{i−1} − 1/b_i.
	B []float64
}

// evalSequence computes b_0..b_{k+1} for a given c. It reports ok=false if
// the sequence degenerates (some b_i or difference d_i becomes
// non-positive before index k+1), which means c is too small.
func evalSequence(k int, c float64) (b []float64, ok bool) {
	b = make([]float64, k+2)
	b[0], b[1] = 0, c
	for i := 1; i <= k; i++ {
		b[i+1] = 2*b[i] - b[i-1] - 1/b[i]
		if b[i+1] <= 0 {
			return b, false
		}
	}
	// Differences must stay positive up to d_k; d_{k+1} may be any sign.
	for i := 1; i <= k; i++ {
		if b[i]-b[i-1] <= 0 {
			return b, false
		}
	}
	return b, true
}

// dk1Sign returns the sign of d_{k+1}(c) = b_{k+1} − b_k, treating a
// degenerate sequence as negative (c too small).
func dk1Sign(k int, c float64) float64 {
	b, ok := evalSequence(k, c)
	if !ok {
		return -1
	}
	return b[k+1] - b[k]
}

// LimitProfile computes the Lemma 13 sequence for k > 3 by bisection on c.
func LimitProfile(k int) (*Profile, error) {
	if k <= 3 {
		return nil, fmt.Errorf("continuum: LimitProfile requires k > 3, got %d", k)
	}
	// Lemma 13 proves H_k <= c² <= 4(H_k+1); bracket a little wider.
	hk := stats.Harmonic(k)
	lo := math.Sqrt(hk) * 0.5
	hi := 2.1 * math.Sqrt(hk+1)
	if dk1Sign(k, lo) > 0 {
		return nil, fmt.Errorf("continuum: bisection bracket broken at lo for k=%d", k)
	}
	if dk1Sign(k, hi) < 0 {
		return nil, fmt.Errorf("continuum: bisection bracket broken at hi for k=%d", k)
	}
	for iter := 0; iter < 200 && hi-lo > 1e-14*hi; iter++ {
		mid := (lo + hi) / 2
		if dk1Sign(k, mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	c := (lo + hi) / 2
	b, ok := evalSequence(k, c)
	if !ok {
		return nil, fmt.Errorf("continuum: converged c=%v degenerates for k=%d", c, k)
	}

	a := make([]float64, k+2)
	a[0] = math.Inf(1)
	for i := 1; i <= k; i++ {
		a[i] = 1 / (c * b[i])
	}
	a[k+1] = a[k]
	return &Profile{K: k, C: c, A: a, B: b}, nil
}

// Sum returns Σ_{i=1..k} a_i, which Lemma 13 property (3) puts at 1.
func (p *Profile) Sum() float64 {
	s := 0.0
	for i := 1; i <= p.K; i++ {
		s += p.A[i]
	}
	return s
}

// Prefix returns p_i = Σ_{j=i..k} a_j, the normalized position of the i-th
// agent in a desirable configuration (proof of Theorem 1: agent i sits at
// position p_i·S).
func (p *Profile) Prefix() []float64 {
	pre := make([]float64, p.K+2)
	for i := p.K; i >= 1; i-- {
		pre[i] = pre[i+1] + p.A[i]
	}
	return pre
}

// RecursionResidual returns the largest violation of the identity
// 1/a_{i+1} = 2/a_i − 1/a_{i−1} − a_i/a_1 over 1 <= i <= k (with
// 1/a_0 = 0), a self-check of the computed profile.
func (p *Profile) RecursionResidual() float64 {
	maxRes := 0.0
	for i := 1; i <= p.K; i++ {
		var invPrev float64
		if i > 1 {
			invPrev = 1 / p.A[i-1]
		}
		lhs := 1 / p.A[i+1]
		rhs := 2/p.A[i] - invPrev - p.A[i]/p.A[1]
		res := math.Abs(lhs-rhs) / math.Max(1, math.Abs(lhs))
		if res > maxRes {
			maxRes = res
		}
	}
	return maxRes
}

// Boundary selects the boundary condition of the ODE system.
type Boundary int

const (
	// BoundaryCyclic is the post-coverage regime: domains 1 and k are
	// adjacent (ν_0 ≡ ν_k, ν_{k+1} ≡ ν_1).
	BoundaryCyclic Boundary = iota + 1
	// BoundaryTwoFrontiers is the pre-coverage regime on the ring with
	// unexplored territory on both sides: ν_0 = ν_{k+1} = +∞.
	BoundaryTwoFrontiers
	// BoundaryOneFrontier is the pre-coverage regime of Theorem 1's path
	// reduction: a frontier beyond domain 1 (ν_0 = +∞) and the agents'
	// common origin behind domain k, modeled by the mirror condition
	// ν_{k+1} = ν_k (the d_{k+1} = 0 condition of Lemma 13). Its
	// self-similar solution is exactly ν_i(t) ∝ a_i·√t.
	BoundaryOneFrontier
)

// Model integrates the §2.3 ODE system with classic fixed-order RK4 and
// adaptive step-size control.
type Model struct {
	nu       []float64
	boundary Boundary
	t        float64

	// scratch buffers for RK4
	k1, k2, k3, k4, tmp []float64
}

// NewModel creates a model with the given initial domain sizes (all
// positive, ordered from the frontier inward for BoundaryOneFrontier).
func NewModel(sizes []float64, boundary Boundary) (*Model, error) {
	if len(sizes) == 0 {
		return nil, errors.New("continuum: no domains")
	}
	switch boundary {
	case BoundaryCyclic, BoundaryTwoFrontiers, BoundaryOneFrontier:
	default:
		return nil, fmt.Errorf("continuum: unknown boundary %d", boundary)
	}
	for i, s := range sizes {
		if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return nil, fmt.Errorf("continuum: invalid initial size %v at index %d", s, i)
		}
	}
	n := len(sizes)
	return &Model{
		nu:       append([]float64(nil), sizes...),
		boundary: boundary,
		k1:       make([]float64, n),
		k2:       make([]float64, n),
		k3:       make([]float64, n),
		k4:       make([]float64, n),
		tmp:      make([]float64, n),
	}, nil
}

// Sizes returns a copy of the current domain sizes.
func (m *Model) Sizes() []float64 { return append([]float64(nil), m.nu...) }

// Time returns the elapsed model time.
func (m *Model) Time() float64 { return m.t }

// Total returns Σ ν_i: the number of covered nodes in the pre-coverage
// regime, constant (= n) in the covered regime.
func (m *Model) Total() float64 {
	s := 0.0
	for _, v := range m.nu {
		s += v
	}
	return s
}

// deriv writes dν/dt into out for the state nu.
func (m *Model) deriv(nu, out []float64) {
	k := len(nu)
	for i := 0; i < k; i++ {
		d := 1 / nu[i]
		if i > 0 {
			d -= 1 / (2 * nu[i-1])
		} else if m.boundary == BoundaryCyclic {
			d -= 1 / (2 * nu[k-1])
		} // frontier boundaries: ν_0 = ∞ contributes nothing
		if i < k-1 {
			d -= 1 / (2 * nu[i+1])
		} else {
			switch m.boundary {
			case BoundaryCyclic:
				d -= 1 / (2 * nu[0])
			case BoundaryOneFrontier:
				d -= 1 / (2 * nu[k-1]) // mirror: ν_{k+1} = ν_k
			}
		}
		out[i] = d
	}
}

// rk4Step advances one classic Runge-Kutta step of size dt.
func (m *Model) rk4Step(dt float64) {
	n := len(m.nu)
	m.deriv(m.nu, m.k1)
	for i := 0; i < n; i++ {
		m.tmp[i] = m.nu[i] + dt/2*m.k1[i]
	}
	m.deriv(m.tmp, m.k2)
	for i := 0; i < n; i++ {
		m.tmp[i] = m.nu[i] + dt/2*m.k2[i]
	}
	m.deriv(m.tmp, m.k3)
	for i := 0; i < n; i++ {
		m.tmp[i] = m.nu[i] + dt*m.k3[i]
	}
	m.deriv(m.tmp, m.k4)
	for i := 0; i < n; i++ {
		m.nu[i] += dt / 6 * (m.k1[i] + 2*m.k2[i] + 2*m.k3[i] + m.k4[i])
	}
	m.t += dt
}

// Advance integrates until model time reaches m.Time() + horizon, choosing
// steps so that no domain changes by more than about 1% per step. It
// returns an error if a domain size would become non-positive.
func (m *Model) Advance(horizon float64) error {
	target := m.t + horizon
	for m.t < target {
		minNu := m.nu[0]
		for _, v := range m.nu {
			if v < minNu {
				minNu = v
			}
		}
		if minNu <= 0 {
			return fmt.Errorf("continuum: domain size %v became non-positive at t=%v", minNu, m.t)
		}
		m.deriv(m.nu, m.k1)
		maxRate := 0.0
		for _, r := range m.k1 {
			if a := math.Abs(r); a > maxRate {
				maxRate = a
			}
		}
		dt := target - m.t
		if maxRate > 0 {
			if cap := 0.01 * minNu / maxRate; cap < dt {
				dt = cap
			}
		}
		if dt <= 0 {
			break
		}
		m.rk4Step(dt)
	}
	return nil
}

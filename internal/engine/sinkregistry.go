package engine

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// This file is the engine's sink registry, the fifth name-keyed registry
// next to processes/metrics (process.go), topologies (topology.go) and
// schedules (schedule.go): output formats are selected by string — a CLI
// -format value, the service's ?format= parameter — and the registry
// supplies the writer factory, so a new format plugs in with one
// RegisterSink call, with zero engine, CLI or service edits.

// SinkDef describes one registered output format.
type SinkDef struct {
	// Name is the registry key, as it appears in CLI -format flags and the
	// service's format selection.
	Name string
	// New builds a sink writing to w. Each sweep gets a fresh instance.
	New func(w io.Writer) Sink
}

var (
	sinkMu sync.RWMutex
	sinks  = map[string]*SinkDef{}
)

// RegisterSink adds an output format to the registry. Names are normalized
// to lower case (flags lowercase their input before lookup); duplicate
// names panic: format names appear in CLI flags and service URLs and must
// stay unambiguous.
func RegisterSink(d *SinkDef) {
	if d.Name == "" || d.New == nil {
		panic("engine: RegisterSink needs a name and a factory")
	}
	d.Name = strings.ToLower(d.Name)
	sinkMu.Lock()
	defer sinkMu.Unlock()
	if _, dup := sinks[d.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate sink %q", d.Name))
	}
	sinks[d.Name] = d
}

// LookupSink returns a registered format by name.
func LookupSink(name string) (*SinkDef, bool) {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	d, ok := sinks[name]
	return d, ok
}

// SinkNames lists the registered format names, sorted.
func SinkNames() []string {
	sinkMu.RLock()
	defer sinkMu.RUnlock()
	names := make([]string, 0, len(sinks))
	for n := range sinks {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewSink builds a sink for a registered format name writing to w. Unknown
// names fail with the registered list, mirroring the other registries'
// fail-fast lookups.
func NewSink(name string, w io.Writer) (Sink, error) {
	d, ok := LookupSink(strings.ToLower(name))
	if !ok {
		return nil, fmt.Errorf("engine: unknown sink %q (registered: %s)",
			name, strings.Join(SinkNames(), "|"))
	}
	return d.New(w), nil
}

// summaryTableSink folds the streaming SummarySink and its text rendering
// into one registrable format: rows aggregate per cell while streaming, the
// table writes at End.
type summaryTableSink struct {
	*SummarySink
	w io.Writer
}

func (s *summaryTableSink) End() error {
	if err := s.SummarySink.End(); err != nil {
		return err
	}
	return s.WriteTable(s.w)
}

func init() {
	RegisterSink(&SinkDef{Name: "jsonl", New: NewJSONLSink})
	RegisterSink(&SinkDef{Name: "csv", New: NewCSVSink})
	RegisterSink(&SinkDef{Name: "summary", New: func(w io.Writer) Sink {
		return &summaryTableSink{SummarySink: NewSummarySink(), w: w}
	}})
}

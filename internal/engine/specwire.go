package engine

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// This file is the wire-level codec for SweepSpec: the versioned JSON form
// specs take on disk and over the service API (see the public specjson
// package for the rotorring.SweepSpec wrappers). The wire format is a clean
// restart of the spec surface — enums travel as their flag strings, every
// list entry is canonicalized on decode, and the library's deprecated
// escape hatches (Topology / Walk / ReturnTime) are rejected outright: the
// library keeps honoring them for source compatibility, but they never
// appear on the wire in either direction.

// WireVersion is the current wire-format version. Decoding requires an
// explicit matching "v" field: specs are long-lived artifacts (spool
// directories, fixtures, client code), and an unversioned or future-version
// blob must fail loudly instead of being reinterpreted. See DESIGN.md,
// "Wire spec versioning", for the compatibility policy.
const WireVersion = 1

// wireSpec is the version-1 wire layout. Field order here is the canonical
// field order of encoded specs; EncodeWireSpec output is the canonical
// byte form (sweep ids and spec hashes are derived from it).
type wireSpec struct {
	V          int         `json:"v"`
	Topologies []string    `json:"topologies,omitempty"`
	Sizes      []int       `json:"sizes,omitempty"`
	Agents     []int       `json:"agents"`
	Placements []string    `json:"placements,omitempty"`
	Pointers   []string    `json:"pointers,omitempty"`
	Process    string      `json:"process,omitempty"`
	Metric     string      `json:"metric,omitempty"`
	Probes     []ProbeSpec `json:"probes,omitempty"`
	Replicas   int         `json:"replicas,omitempty"`
	Seed       uint64      `json:"seed,omitempty"`
	MaxRounds  int64       `json:"maxRounds,omitempty"`
	Kernel     string      `json:"kernel,omitempty"`
	Schedules  []string    `json:"schedules,omitempty"`
	Missions   []string    `json:"missions,omitempty"`
}

// wireFields is the set of accepted top-level keys; deprecatedWire maps the
// library spellings the wire format rejects to the error clients should see.
var (
	wireFields = map[string]bool{
		"v": true, "topologies": true, "sizes": true, "agents": true,
		"placements": true, "pointers": true, "process": true,
		"metric": true, "probes": true, "replicas": true, "seed": true,
		"maxRounds": true, "kernel": true, "schedules": true,
		"missions": true,
	}
	deprecatedWire = map[string]string{
		"topology":   `set "topologies": ["<spec>", ...]`,
		"walk":       `set "process": "walk"`,
		"returntime": `set "metric": "return"`,
		"return":     `set "metric": "return"`,
	}
)

// DecodeWireSpec parses a version-1 wire spec: it requires "v": 1, rejects
// unknown and deprecated fields, canonicalizes every topology and schedule
// spec through its registry parser, resolves enum strings, and fail-fast
// validates the whole grid (registry names, metric/schedule compatibility)
// so an accepted spec cannot fail for spec-level reasons at run time. The
// returned spec re-encodes to canonical bytes via EncodeWireSpec.
func DecodeWireSpec(data []byte) (SweepSpec, error) {
	// A raw key scan runs before the typed decode so unknown fields — and
	// the deprecated library spellings in particular — fail with targeted
	// messages instead of a generic struct-mismatch error.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return SweepSpec{}, fmt.Errorf("engine: wire spec: %w", err)
	}
	var unknown []string
	for k := range raw {
		if wireFields[k] {
			continue
		}
		if hint, dep := deprecatedWire[strings.ToLower(k)]; dep {
			return SweepSpec{}, fmt.Errorf(
				"engine: wire spec: field %q is not part of the wire format (deprecated library spelling); %s", k, hint)
		}
		unknown = append(unknown, k)
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return SweepSpec{}, fmt.Errorf("engine: wire spec: unknown field(s) %s",
			strings.Join(unknown, ", "))
	}
	vRaw, ok := raw["v"]
	if !ok {
		return SweepSpec{}, fmt.Errorf(`engine: wire spec: missing required version field "v" (want %d)`, WireVersion)
	}
	var v int
	if err := json.Unmarshal(vRaw, &v); err != nil || v != WireVersion {
		return SweepSpec{}, fmt.Errorf(`engine: wire spec: unsupported version %s (this codec speaks "v": %d)`, vRaw, WireVersion)
	}

	var w wireSpec
	if err := json.Unmarshal(data, &w); err != nil {
		return SweepSpec{}, fmt.Errorf("engine: wire spec: %w", err)
	}
	spec := SweepSpec{
		Sizes:     w.Sizes,
		Agents:    w.Agents,
		Process:   strings.ToLower(w.Process),
		Metric:    strings.ToLower(w.Metric),
		Probes:    w.Probes,
		Replicas:  w.Replicas,
		Seed:      w.Seed,
		MaxRounds: w.MaxRounds,
	}
	for _, t := range w.Topologies {
		topo, err := ParseTopo(t)
		if err != nil {
			return SweepSpec{}, fmt.Errorf("engine: wire spec: topologies: %w", err)
		}
		spec.Topologies = append(spec.Topologies, topo)
	}
	for _, s := range w.Schedules {
		sched, err := ParseSchedule(s)
		if err != nil {
			return SweepSpec{}, fmt.Errorf("engine: wire spec: schedules: %w", err)
		}
		spec.Schedules = append(spec.Schedules, sched)
	}
	for _, m := range w.Missions {
		mi, err := ParseMission(m)
		if err != nil {
			return SweepSpec{}, fmt.Errorf("engine: wire spec: missions: %w", err)
		}
		spec.Missions = append(spec.Missions, mi)
	}
	for _, p := range w.Placements {
		pl, err := ParsePlacement(p)
		if err != nil {
			return SweepSpec{}, fmt.Errorf("engine: wire spec: placements: %w", err)
		}
		spec.Placements = append(spec.Placements, pl)
	}
	for _, p := range w.Pointers {
		pt, err := ParsePointer(p)
		if err != nil {
			return SweepSpec{}, fmt.Errorf("engine: wire spec: pointers: %w", err)
		}
		spec.Pointers = append(spec.Pointers, pt)
	}
	kern, err := ParseKernel(w.Kernel)
	if err != nil {
		return SweepSpec{}, fmt.Errorf("engine: wire spec: %w", err)
	}
	spec.Kernel = kern
	// Full grid validation on a throwaway copy: registry lookups, probe
	// names, metric/schedule compatibility. The returned spec stays
	// default-free (what was absent on the wire stays zero-valued) so
	// decode/encode round-trips are stable.
	if _, err := spec.withDefaults(); err != nil {
		return SweepSpec{}, fmt.Errorf("engine: wire spec: %w", err)
	}
	return spec, nil
}

// EncodeWireSpec renders a spec in canonical version-1 wire form: "v": 1
// first, enums as strings, topology and schedule specs canonicalized, zero
// fields omitted. The deprecated library fields are translated to their
// clean spellings before encoding (Topology joins Topologies; Walk and the
// caller-side ReturnTime mapping are the specjson wrapper's concern), so
// deprecated spellings cannot leak onto the wire. The output is
// deterministic: equal specs encode to equal bytes, which is what sweep
// ids and spool spec hashes are derived from.
func EncodeWireSpec(spec SweepSpec) ([]byte, error) {
	// Validate (and reuse the normalization's canonicalization work) up
	// front: encoding an invalid spec would just defer the failure to the
	// first decoder.
	if _, err := spec.withDefaults(); err != nil {
		return nil, err
	}
	w := wireSpec{
		V:         WireVersion,
		Sizes:     spec.Sizes,
		Agents:    spec.Agents,
		Process:   strings.ToLower(spec.Process),
		Metric:    strings.ToLower(spec.Metric),
		Probes:    spec.Probes,
		Replicas:  spec.Replicas,
		Seed:      spec.Seed,
		MaxRounds: spec.MaxRounds,
	}
	topos := spec.Topologies
	if len(topos) == 0 && spec.Topology != "" {
		// The deprecated single-family field travels as a one-entry list.
		topos = []Topo{Topo(spec.Topology)}
	}
	for _, t := range topos {
		topo, err := ParseTopo(string(t))
		if err != nil {
			return nil, err
		}
		w.Topologies = append(w.Topologies, string(topo))
	}
	for _, s := range spec.Schedules {
		sched, err := ParseSchedule(string(s))
		if err != nil {
			return nil, err
		}
		w.Schedules = append(w.Schedules, string(sched))
	}
	for _, m := range spec.Missions {
		mi, err := ParseMission(string(m))
		if err != nil {
			return nil, err
		}
		w.Missions = append(w.Missions, string(mi))
	}
	for _, p := range spec.Placements {
		w.Placements = append(w.Placements, p.String())
	}
	for _, p := range spec.Pointers {
		w.Pointers = append(w.Pointers, p.String())
	}
	if spec.Kernel != KernelAuto {
		w.Kernel = spec.Kernel.String()
	}
	return json.Marshal(w)
}

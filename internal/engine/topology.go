package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// This file is the engine's topology registry, the third registry next to
// processes and metrics (process.go): sweeps name their graph families as
// parameterized spec strings, and the registry supplies the parser and the
// deterministic builder, so a new graph family plugs in with one
// RegisterTopology call — no engine edits, no new spec fields.
//
// Spec grammar (case-insensitive, canonicalized to lower case):
//
//	spec    = family [":" params]
//	params  = int {"x" int}          // family-specific arity
//	        | spec                    // for wrapper families (shuffled)
//
// A spec is either AXIS-SIZED — it takes its size parameter n from the
// sweep's Sizes axis ("ring", "grid", "rr:3") — or SELF-SIZED — its
// parameters fully determine the graph ("ring:1024", "grid:64x32",
// "rr:3x512"), in which case the Sizes axis does not apply to it and the
// cell's n column reports the implied size. ParseTopo canonicalizes
// ("grid:5" -> "grid:5x5") and the canonical form re-parses to itself.

// Topo is one parameterized topology spec in a sweep, e.g. "ring",
// "grid:64x32", "torus:128x8", "rr:3", "shuffled:grid:8x8". Use ParseTopo
// to validate and canonicalize one.
type Topo string

func (t Topo) String() string { return string(t) }

// TopologyDef describes one registered graph family. Parse must be cheap
// (no graph construction) — specs are validated eagerly, before any sweep
// worker starts. Build must be deterministic given (params, n, seed): the
// engine's bit-reproducibility across worker counts rests on it.
type TopologyDef struct {
	// Name is the registry key and the spec's family prefix, as it appears
	// in SweepSpec.Topologies, rows and CLI flags.
	Name string
	// Seeded reports whether Build consumes the seed (random-regular,
	// port-shuffled families). Seeded families get a per-cell graph seed
	// derived from the sweep's base seed; unseeded ones always get 0.
	Seeded bool
	// Parse validates the spec's parameter string (the part after
	// "name:", empty when absent) without constructing anything. It
	// returns the canonical parameter string and the implied size: 0 when
	// the spec consumes the sweep's size axis, the resolved size parameter
	// when the params fully determine the graph.
	Parse func(params string) (canonical string, size int, err error)
	// Resolve returns the parameter string of the self-sized instance the
	// axis-sized params build at size n, such that "name:" + Resolve(...)
	// re-parses to a self-sized spec of the same graph. It is only called
	// with canonical params whose Parse returned size 0.
	Resolve func(params string, n int) string
	// Build constructs the instance for canonical params at size n
	// (ignored when the params are self-sized) from seed (ignored unless
	// Seeded). Constructor panics are converted to errors by the engine.
	Build func(params string, n int, seed uint64) (*graph.Graph, error)
}

var (
	topologyMu sync.RWMutex
	topologies = map[string]*TopologyDef{}
)

// RegisterTopology adds a graph family to the registry. Names are
// normalized to lower case (specs lowercase their input before lookup);
// duplicate names panic: family names appear in specs, rows and derived
// file formats and must stay unambiguous.
func RegisterTopology(d *TopologyDef) {
	if d.Name == "" || d.Parse == nil || d.Build == nil {
		panic("engine: RegisterTopology needs a name, a parser and a builder")
	}
	d.Name = strings.ToLower(d.Name)
	if strings.ContainsAny(d.Name, ": \t\n") {
		panic(fmt.Sprintf("engine: topology name %q may not contain ':' or spaces", d.Name))
	}
	topologyMu.Lock()
	defer topologyMu.Unlock()
	if _, dup := topologies[d.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate topology %q", d.Name))
	}
	topologies[d.Name] = d
}

// LookupTopology returns a registered family by name.
func LookupTopology(name string) (*TopologyDef, bool) {
	topologyMu.RLock()
	defer topologyMu.RUnlock()
	d, ok := topologies[name]
	return d, ok
}

// TopologyNames lists the registered family names, sorted.
func TopologyNames() []string {
	topologyMu.RLock()
	defer topologyMu.RUnlock()
	names := make([]string, 0, len(topologies))
	for n := range topologies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// topoInstance is the parsed form of one topology spec.
type topoInstance struct {
	def       *TopologyDef
	canonical string // canonical spec string ("grid:64x32")
	params    string // canonical parameter string ("64x32", "" when none)
	size      int    // implied size for self-sized specs; 0 = axis-sized
}

// spec assembles the canonical spec string for a family and params.
func specString(name, params string) string {
	if params == "" {
		return name
	}
	return name + ":" + params
}

// parseTopo parses and validates one spec string against the registry.
func parseTopo(s string) (topoInstance, error) {
	str := strings.ToLower(strings.TrimSpace(s))
	name, params, _ := strings.Cut(str, ":")
	name = strings.TrimSpace(name)
	def, ok := LookupTopology(name)
	if !ok {
		return topoInstance{}, fmt.Errorf("engine: unknown topology %q (registered: %s)",
			name, strings.Join(TopologyNames(), "|"))
	}
	canon, size, err := def.Parse(strings.TrimSpace(params))
	if err != nil {
		return topoInstance{}, fmt.Errorf("engine: topology %q: %w", str, err)
	}
	if size == 0 && def.Resolve == nil {
		// Catch the misregistration at spec validation, not as a panic in
		// expand: an axis-sized spec needs Resolve to name its instances.
		return topoInstance{}, fmt.Errorf("engine: topology %q: family %q is axis-sized but registered without a Resolve function", str, def.Name)
	}
	return topoInstance{
		def:       def,
		canonical: specString(def.Name, canon),
		params:    canon,
		size:      size,
	}, nil
}

// resolved returns the self-sized canonical spec of the instance at size n
// — the string that re-parses to exactly this graph shape. For self-sized
// specs it is the canonical spec itself.
func (ti topoInstance) resolved(n int) string {
	if ti.size != 0 {
		return ti.canonical
	}
	return specString(ti.def.Name, ti.def.Resolve(ti.params, n))
}

// ParseTopo validates a topology spec string and returns its canonical
// form. The canonical form re-parses to itself.
func ParseTopo(s string) (Topo, error) {
	inst, err := parseTopo(s)
	if err != nil {
		return "", err
	}
	return Topo(inst.canonical), nil
}

// GraphSeed derives the seed a sweep with the given base seed builds the
// graph of cell (spec, n) from. It hashes only the resolved instance spec
// (which is self-sized, so it fully identifies the graph shape): spelling
// variants of one instance ("rr:3" at n=512 and "rr:3x512") share one
// graph, and the agent count, placement, pointer and replica coordinates
// deliberately stay out, so every cell of one (topology, size) shares one
// graph too. Unseeded families ignore the seed entirely.
func GraphSeed(base uint64, t Topo, n int) (uint64, error) {
	inst, err := parseTopo(string(t))
	if err != nil {
		return 0, err
	}
	return graphSeedOf(base, inst.resolved(n)), nil
}

// graphSeedOf derives the graph seed from the base seed and a resolved
// instance spec.
func graphSeedOf(base uint64, resolvedSpec string) uint64 {
	return DeriveSeed(base, hashString("graph"), hashString(resolvedSpec))
}

// buildInstance runs a family builder, converting constructor panics
// (e.g. Ring(2)) to errors so sweeps and CLI runs fail gracefully instead
// of crashing a worker.
func buildInstance(inst topoInstance, n int, seed uint64) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("engine: %s(%d): %v", inst.canonical, n, r)
		}
	}()
	if inst.size != 0 {
		n = inst.size
	}
	return inst.def.Build(inst.params, n, seed)
}

// BuildTopo constructs a topology spec at size n (ignored for self-sized
// specs) with the given graph seed (ignored for unseeded families; sweeps
// derive theirs with GraphSeed).
func BuildTopo(t Topo, n int, seed uint64) (*graph.Graph, error) {
	inst, err := parseTopo(string(t))
	if err != nil {
		return nil, err
	}
	return buildInstance(inst, n, seed)
}

// BuildGraph constructs a named topology of size parameter n: node count
// for ring/path/complete/star, side length for grid/torus, dimension for
// hypercube, levels for btree. It predates the registry and is kept for
// single-graph callers; it is BuildTopo with graph seed 0.
func BuildGraph(topology string, n int) (*graph.Graph, error) {
	return BuildTopo(Topo(topology), n, 0)
}

// --- spec-string parsing helpers -----------------------------------------

// maxDim bounds every parsed spec parameter (and every implied size), so
// the implied-size arithmetic below (w*h, clique+tail, n*d checks) cannot
// overflow and absurd sizes fail at parse time, not at build time.
const maxDim = 1 << 30

// parseDims parses an "AxBxC" positive-integer list.
func parseDims(params string) ([]int, error) {
	parts := strings.Split(params, "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad parameter %q (want positive integers separated by 'x')", p)
		}
		if v > maxDim {
			return nil, fmt.Errorf("parameter %d exceeds the maximum %d", v, maxDim)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

// dimsString is the inverse of parseDims.
func dimsString(dims ...int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, "x")
}

// arity validates a parsed parameter count against the allowed set.
func arity(dims []int, want ...int) error {
	for _, w := range want {
		if len(dims) == w {
			return nil
		}
	}
	return fmt.Errorf("got %d parameters, want %v", len(dims), want)
}

// --- built-in families ----------------------------------------------------

// sizedFamily registers a one-parameter family: axis-sized with no params
// ("ring"), self-sized with an explicit size ("ring:1024"). min/max bound
// the explicit size at parse time; axis sizes surface builder errors as
// per-job rows instead.
func sizedFamily(name string, min, max int, build func(n int) *graph.Graph) *TopologyDef {
	return &TopologyDef{
		Name: name,
		Parse: func(params string) (string, int, error) {
			if params == "" {
				return "", 0, nil
			}
			dims, err := parseDims(params)
			if err != nil {
				return "", 0, err
			}
			if err := arity(dims, 1); err != nil {
				return "", 0, err
			}
			if n := dims[0]; n < min || n > max {
				return "", 0, fmt.Errorf("size %d out of range [%d,%d]", n, min, max)
			}
			return dimsString(dims...), dims[0], nil
		},
		Resolve: func(_ string, n int) string { return strconv.Itoa(n) },
		Build:   func(_ string, n int, _ uint64) (*graph.Graph, error) { return build(n), nil },
	}
}

// dims2Family registers a two-dimensional family: "grid" (n x n from the
// size axis), "grid:64" (64 x 64, self-sized), "grid:64x32" (self-sized).
// The implied size of a self-sized spec is its node count w*h.
func dims2Family(name string, minSide int, build func(w, h int) *graph.Graph) *TopologyDef {
	return &TopologyDef{
		Name: name,
		Parse: func(params string) (string, int, error) {
			if params == "" {
				return "", 0, nil
			}
			dims, err := parseDims(params)
			if err != nil {
				return "", 0, err
			}
			if err := arity(dims, 1, 2); err != nil {
				return "", 0, err
			}
			w := dims[0]
			h := w
			if len(dims) == 2 {
				h = dims[1]
			}
			if w < minSide || h < minSide {
				return "", 0, fmt.Errorf("side %dx%d below minimum %d", w, h, minSide)
			}
			// Widen before multiplying: w, h <= maxDim, so the int64
			// product cannot overflow even where int is 32 bits — and the
			// node count itself must stay addressable too.
			nodes := int64(w) * int64(h)
			if nodes < 2 {
				return "", 0, fmt.Errorf("%dx%d has fewer than 2 nodes", w, h)
			}
			if nodes > maxDim {
				return "", 0, fmt.Errorf("%dx%d exceeds %d nodes", w, h, maxDim)
			}
			return dimsString(w, h), int(nodes), nil
		},
		Resolve: func(_ string, n int) string { return dimsString(n, n) },
		Build: func(params string, n int, _ uint64) (*graph.Graph, error) {
			w, h := n, n
			if params != "" {
				dims, err := parseDims(params)
				if err != nil {
					return nil, err
				}
				w, h = dims[0], dims[1]
			}
			return build(w, h), nil
		},
	}
}

// rrDef is the seeded random-regular family: "rr:<d>" (degree d, n nodes
// from the size axis) or "rr:<d>x<n>" (self-sized). The graph is generated
// by the configuration model from the per-cell graph seed, so rows are
// reproducible from the sweep seed alone.
func rrDef() *TopologyDef {
	return &TopologyDef{
		Name:   "rr",
		Seeded: true,
		Parse: func(params string) (string, int, error) {
			if params == "" {
				return "", 0, fmt.Errorf("rr needs a degree (rr:<d> or rr:<d>x<n>)")
			}
			dims, err := parseDims(params)
			if err != nil {
				return "", 0, err
			}
			if err := arity(dims, 1, 2); err != nil {
				return "", 0, err
			}
			d := dims[0]
			if d < 2 {
				return "", 0, fmt.Errorf("degree %d < 2", d)
			}
			if len(dims) == 1 {
				return dimsString(d), 0, nil
			}
			n := dims[1]
			// Widened product: n*d can exceed a 32-bit int.
			if d >= n || int64(n)*int64(d)%2 != 0 {
				return "", 0, fmt.Errorf("rr:%dx%d needs d < n and n*d even", d, n)
			}
			return dimsString(d, n), n, nil
		},
		Resolve: func(params string, n int) string {
			dims, _ := parseDims(params)
			return dimsString(dims[0], n)
		},
		Build: func(params string, n int, seed uint64) (*graph.Graph, error) {
			dims, err := parseDims(params)
			if err != nil {
				return nil, err
			}
			if len(dims) == 2 {
				n = dims[1]
			}
			return graph.RandomRegular(n, dims[0], xrand.New(seed))
		},
	}
}

// lollipopDef is the lollipop family, always self-sized:
// "lollipop:<clique>x<tail>". Its implied size is the node count.
func lollipopDef() *TopologyDef {
	return &TopologyDef{
		Name: "lollipop",
		Parse: func(params string) (string, int, error) {
			if params == "" {
				return "", 0, fmt.Errorf("lollipop needs dimensions (lollipop:<clique>x<tail>)")
			}
			dims, err := parseDims(params)
			if err != nil {
				return "", 0, err
			}
			if err := arity(dims, 2); err != nil {
				return "", 0, err
			}
			if dims[0] < 2 {
				return "", 0, fmt.Errorf("clique size %d < 2", dims[0])
			}
			// Widened sum: cannot overflow 32-bit int before the cap check.
			if nodes := int64(dims[0]) + int64(dims[1]); nodes > maxDim {
				return "", 0, fmt.Errorf("%dx%d exceeds %d nodes", dims[0], dims[1], maxDim)
			}
			return dimsString(dims...), dims[0] + dims[1], nil
		},
		Build: func(params string, _ int, _ uint64) (*graph.Graph, error) {
			dims, err := parseDims(params)
			if err != nil {
				return nil, err
			}
			return graph.Lollipop(dims[0], dims[1]), nil
		},
	}
}

// shuffledDef is the seeded wrapper family "shuffled:<base-spec>": the base
// topology with every node's cyclic port order independently permuted from
// the graph seed. On degree-2 graphs all cyclic orders coincide (paper
// §1.3); on higher-degree families the shuffle explores port orderings the
// fixed constructors never produce.
func shuffledDef() *TopologyDef {
	return &TopologyDef{
		Name:   "shuffled",
		Seeded: true,
		Parse: func(params string) (string, int, error) {
			if params == "" {
				return "", 0, fmt.Errorf("shuffled needs a base spec (shuffled:<spec>)")
			}
			base, err := parseTopo(params)
			if err != nil {
				return "", 0, err
			}
			return base.canonical, base.size, nil
		},
		Resolve: func(params string, n int) string {
			base, _ := parseTopo(params) // params are canonical, re-parse cannot fail
			return base.resolved(n)
		},
		Build: func(params string, n int, seed uint64) (*graph.Graph, error) {
			base, err := parseTopo(params)
			if err != nil {
				return nil, err
			}
			// Split the seed so the base build (itself possibly seeded) and
			// the port shuffle consume decorrelated streams.
			g, err := buildInstance(base, n, DeriveSeed(seed, hashString("base")))
			if err != nil {
				return nil, err
			}
			return g.ShufflePorts(xrand.New(DeriveSeed(seed, hashString("shuffle")))), nil
		},
	}
}

func init() {
	RegisterTopology(sizedFamily("ring", 3, maxDim, graph.Ring))
	RegisterTopology(sizedFamily("path", 2, maxDim, graph.Path))
	// Complete graphs get a tighter cap: their edge count is quadratic.
	RegisterTopology(sizedFamily("complete", 2, 1<<16, graph.Complete))
	RegisterTopology(sizedFamily("star", 2, maxDim, graph.Star))
	RegisterTopology(sizedFamily("hypercube", 1, 20, graph.Hypercube))
	RegisterTopology(sizedFamily("btree", 2, 30, graph.CompleteBinaryTree))
	RegisterTopology(dims2Family("grid", 1, graph.Grid2D))
	RegisterTopology(dims2Family("torus", 3, graph.Torus2D))
	RegisterTopology(rrDef())
	RegisterTopology(lollipopDef())
	RegisterTopology(shuffledDef())
}

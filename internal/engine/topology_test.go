package engine

import (
	"bytes"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"rotorring/internal/graph"
)

func init() {
	// Registered once at package-test init: proves a graph family plugs in
	// without any engine edits (the registry counterpart of the "beacon"
	// process in registry_test.go).
	RegisterTopology(&TopologyDef{
		Name: "wheel",
		Parse: func(params string) (string, int, error) {
			if params == "" {
				return "", 0, nil
			}
			n, err := strconv.Atoi(params)
			if err != nil || n < 4 {
				return "", 0, fmt.Errorf("wheel needs a size >= 4")
			}
			return params, n, nil
		},
		Resolve: func(_ string, n int) string { return strconv.Itoa(n) },
		Build: func(params string, n int, _ uint64) (*graph.Graph, error) {
			if params != "" {
				n, _ = strconv.Atoi(params)
			}
			// Hub 0 plus an (n-1)-cycle of rim nodes.
			b := graph.NewBuilder(n, fmt.Sprintf("wheel(%d)", n))
			for v := 1; v < n; v++ {
				if err := b.AddEdge(0, v); err != nil {
					return nil, err
				}
				next := v + 1
				if next == n {
					next = 1
				}
				if err := b.AddEdge(v, next); err != nil {
					return nil, err
				}
			}
			return b.Build()
		},
	})
	RegisterTopology(countedDef)
	// A misregistered axis-capable family without Resolve: sweeps over it
	// must fail spec validation, not panic in expand.
	RegisterTopology(&TopologyDef{
		Name:  "noresolve",
		Parse: func(string) (string, int, error) { return "", 0, nil },
		Build: func(_ string, n int, _ uint64) (*graph.Graph, error) { return graph.Ring(n), nil },
	})
}

// countedDef counts graph builds, for the cache's build-once guarantee.
var (
	countedBuilds atomic.Int64
	countedDef    = &TopologyDef{
		Name:   "counted",
		Seeded: true, // exercise the seeded cache path too
		Parse: func(params string) (string, int, error) {
			if params != "" {
				return "", 0, fmt.Errorf("counted takes no parameters")
			}
			return "", 0, nil
		},
		Resolve: func(_ string, n int) string { return strconv.Itoa(n) },
		Build: func(_ string, n int, _ uint64) (*graph.Graph, error) {
			countedBuilds.Add(1)
			return graph.Ring(n), nil
		},
	}
)

// TestParseTopoRoundTrip: the table of spec spellings, their canonical
// forms and implied sizes; canonical forms re-parse to themselves.
func TestParseTopoRoundTrip(t *testing.T) {
	cases := []struct {
		in        string
		canonical string
		size      int // implied size; 0 = axis-sized
	}{
		{"ring", "ring", 0},
		{" RING ", "ring", 0},
		{"ring:1024", "ring:1024", 1024},
		{"path:16", "path:16", 16},
		{"grid", "grid", 0},
		{"grid:5", "grid:5x5", 25},
		{"Grid:64x32", "grid:64x32", 2048},
		{"torus:128x8", "torus:128x8", 1024},
		{"complete:8", "complete:8", 8},
		{"star:9", "star:9", 9},
		{"hypercube:4", "hypercube:4", 4},
		{"btree:3", "btree:3", 3},
		{"rr:3", "rr:3", 0},
		{"rr:3x64", "rr:3x64", 64},
		{"lollipop:8x4", "lollipop:8x4", 12},
		{"shuffled:grid:8x4", "shuffled:grid:8x4", 32},
		{"shuffled:torus", "shuffled:torus", 0},
		{"shuffled:rr:4", "shuffled:rr:4", 0},
	}
	for _, c := range cases {
		inst, err := parseTopo(c.in)
		if err != nil {
			t.Errorf("ParseTopo(%q): %v", c.in, err)
			continue
		}
		if inst.canonical != c.canonical || inst.size != c.size {
			t.Errorf("ParseTopo(%q) = (%q, %d), want (%q, %d)",
				c.in, inst.canonical, inst.size, c.canonical, c.size)
		}
		// The canonical form is a fixed point of parsing.
		again, err := ParseTopo(inst.canonical)
		if err != nil || string(again) != inst.canonical {
			t.Errorf("canonical %q does not round-trip: (%q, %v)", inst.canonical, again, err)
		}
	}

	bad := []string{
		"", "moebius", "ring:2", "ring:0", "ring:axb", "ring:3x3",
		"grid:0x5", "grid:1x1", "torus:2x8", "grid:2x", "hypercube:25",
		"rr", "rr:1", "rr:3x3", "rr:3x9", "lollipop", "lollipop:1x4",
		"shuffled", "shuffled:", "shuffled:moebius", "shuffled:rr:1",
		// Implied-size arithmetic must not overflow past fail-fast
		// validation: out-of-range parameters are parse errors.
		"grid:8589934592x2147483649", "grid:65536x65536",
		"lollipop:9223372036854775807x9223372036854775807",
		"ring:9223372036854775807",
	}
	for _, s := range bad {
		if _, err := ParseTopo(s); err == nil {
			t.Errorf("ParseTopo(%q): bad spec accepted", s)
		}
	}
}

// TestResolvedSpecRoundTrip: the resolved instance spec of any axis-sized
// cell re-parses to a self-sized spec of the same instance.
func TestResolvedSpecRoundTrip(t *testing.T) {
	for _, c := range []struct {
		spec string
		n    int
	}{
		{"ring", 64}, {"path", 16}, {"grid", 8}, {"torus", 5},
		{"complete", 8}, {"star", 9}, {"hypercube", 4}, {"btree", 3},
		{"rr:3", 64}, {"shuffled:grid", 8}, {"shuffled:rr:3", 64},
		{"wheel", 12},
	} {
		inst, err := parseTopo(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		resolved := inst.resolved(c.n)
		rInst, err := parseTopo(resolved)
		if err != nil {
			t.Errorf("%s at n=%d: resolved %q does not parse: %v", c.spec, c.n, resolved, err)
			continue
		}
		if rInst.size == 0 {
			t.Errorf("%s at n=%d: resolved %q is not self-sized", c.spec, c.n, resolved)
		}
		if rInst.resolved(0) != resolved {
			t.Errorf("resolved %q is not a fixed point (got %q)", resolved, rInst.resolved(0))
		}
		// Both spellings build the same graph shape (and, for seeded
		// families, the identical graph: GraphSeed hashes the resolved
		// spec).
		s1, err := GraphSeed(7, Topo(c.spec), c.n)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := GraphSeed(7, Topo(resolved), 0)
		if err != nil {
			t.Fatal(err)
		}
		if s1 != s2 {
			t.Errorf("%s: GraphSeed differs between spellings", c.spec)
		}
		g1, err := BuildTopo(Topo(c.spec), c.n, s1)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		g2, err := BuildTopo(Topo(resolved), 0, s2)
		if err != nil {
			t.Fatalf("%s: %v", resolved, err)
		}
		if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() ||
			g1.MaxDegree() != g2.MaxDegree() {
			t.Errorf("%s vs %s: different graphs (%d/%d nodes, %d/%d edges)",
				c.spec, resolved, g1.NumNodes(), g2.NumNodes(), g1.NumEdges(), g2.NumEdges())
		}
	}
}

// FuzzParseTopo: whatever the input, a successful parse returns a
// canonical form that re-parses to itself with the same implied size, and
// parsing never panics.
func FuzzParseTopo(f *testing.F) {
	for _, s := range []string{
		"ring", "ring:1024", "grid:64x32", "torus:128x8", "rr:3",
		"shuffled:grid:8x4", "lollipop:8x4", "  Grid : 5 ", "rr:3x64",
		"moebius", "ring:-1", "grid:999999999999x2", ":::", "shuffled:shuffled:ring",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		inst, err := parseTopo(s)
		if err != nil {
			return
		}
		again, err := parseTopo(inst.canonical)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", inst.canonical, s, err)
		}
		if again.canonical != inst.canonical || again.size != inst.size {
			t.Fatalf("canonical %q is not a fixed point: (%q, %d) vs (%q, %d)",
				inst.canonical, again.canonical, again.size, inst.canonical, inst.size)
		}
	})
}

// TestRegistryCustomTopology: a sweep runs a graph family the engine has
// never heard of, by spec string, with correct per-row graph metadata.
func TestRegistryCustomTopology(t *testing.T) {
	rows, err := New(Workers(2)).Run(SweepSpec{
		Topologies: []Topo{"wheel", "wheel:8"},
		Sizes:      []int{6},
		Agents:     []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for i, want := range []struct{ n, edges, maxDeg int }{
		{6, 10, 5}, // wheel(6): hub degree 5, 2(n-1) edges
		{8, 14, 7},
	} {
		r := rows[i]
		if r.Err != "" {
			t.Fatalf("row %d failed: %s", i, r.Err)
		}
		if r.N != want.n || r.Edges != want.edges || r.MaxDegree != want.maxDeg {
			t.Errorf("row %d: n=%d edges=%d maxDeg=%d, want %+v", i, r.N, r.Edges, r.MaxDegree, want)
		}
		if r.Value <= 0 {
			t.Errorf("row %d: no cover time measured", i)
		}
	}
	if rows[0].Spec != "wheel:6" || rows[1].Spec != "wheel:8" {
		t.Errorf("resolved specs: %q, %q", rows[0].Spec, rows[1].Spec)
	}
}

// TestGraphCacheBuildsOnce: under 8 workers, a sweep builds each
// (topology, size, seed) instance exactly once, however many cells and
// replicas share it.
func TestGraphCacheBuildsOnce(t *testing.T) {
	countedBuilds.Store(0)
	rows, err := New(Workers(8)).Run(SweepSpec{
		Topologies: []Topo{"counted"},
		Sizes:      []int{16, 24},
		Agents:     []int{1, 2, 4},
		Placements: []Placement{PlaceSingle, PlaceEqual},
		Replicas:   4,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 4; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("row failed: %s", r.Err)
		}
	}
	if got := countedBuilds.Load(); got != 2 { // one per size
		t.Errorf("graph built %d times, want 2 (once per (topology, size, seed))", got)
	}
}

// mixedSpec is the acceptance sweep: a heterogeneous topology grid
// including a seeded family, streamed as one sweep.
func mixedSpec() SweepSpec {
	return SweepSpec{
		Topologies: []Topo{"ring", "grid:64x32", "torus:128x8", "rr:3"},
		Sizes:      []int{64},
		Agents:     []int{2, 4},
		Placements: []Placement{PlaceEqual, PlaceRandom},
		Replicas:   2,
		Seed:       11,
	}
}

// TestMixedTopologySweepDeterministic: the acceptance criterion — one
// sweep over ring, grid:64x32, torus:128x8 and rr:3 streams byte-identical
// JSONL at 1 and 8 workers, and the seeded rr:3 rows are reproducible from
// the sweep seed alone.
func TestMixedTopologySweepDeterministic(t *testing.T) {
	spec := mixedSpec()
	var a, b, c bytes.Buffer
	if _, err := New(Workers(1)).Run(spec, NewJSONLSink(&a)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Workers(8)).Run(spec, NewJSONLSink(&b)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("mixed-topology JSONL differs between 1 and 8 workers")
	}
	// A fresh engine reproduces the rr:3 rows from the seed: nothing about
	// the random-regular graph leaks in from prior runs or worker caches.
	if _, err := New(Workers(3)).Run(spec, NewJSONLSink(&c)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("mixed-topology JSONL not reproducible across engines")
	}

	rows, err := New(Workers(4)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 3 axis-sized-or-self-sized topologies x 1 size each + ring x 1 size,
	// times 2 agents x 2 placements x 2 replicas.
	if want := 4 * 2 * 2 * 2; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	bySpec := map[string]int{}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("row %s n=%d failed: %s", r.Topology, r.N, r.Err)
		}
		if r.Edges == 0 || r.MaxDegree == 0 {
			t.Errorf("row %s missing graph metadata: %+v", r.Topology, r.Cell)
		}
		bySpec[r.Spec]++
	}
	for _, want := range []string{"ring:64", "grid:64x32", "torus:128x8", "rr:3x64"} {
		if bySpec[want] != 8 {
			t.Errorf("resolved spec %q on %d rows, want 8 (have: %v)", want, bySpec[want], bySpec)
		}
	}

	// Changing the sweep seed resamples the rr graph (different cover
	// times somewhere), proving the graph really derives from the seed.
	reseeded := spec
	reseeded.Seed = 12
	rows2, err := New(Workers(4)).Run(reseeded)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range rows {
		if rows[i].Spec == "rr:3x64" && rows[i].Value != rows2[i].Value {
			same = false
		}
	}
	if same {
		t.Error("rr:3 rows identical under a different sweep seed; graph seed unused")
	}
}

// TestDeprecatedTopologySizesCompat: the deprecated Topology+Sizes
// spelling produces exactly the rows (seeds, values) of the Topologies
// spelling — and seeds are unchanged from the pre-registry derivation, so
// pre-PR-4 outputs remain reproducible.
func TestDeprecatedTopologySizesCompat(t *testing.T) {
	oldStyle := SweepSpec{
		Topology:   "grid",
		Sizes:      []int{6, 8},
		Agents:     []int{2},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		Replicas:   2,
		Seed:       5,
	}
	newStyle := oldStyle
	newStyle.Topology = ""
	newStyle.Topologies = []Topo{"grid"}

	oldRows, err := New(Workers(2)).Run(oldStyle)
	if err != nil {
		t.Fatal(err)
	}
	newRows, err := New(Workers(2)).Run(newStyle)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oldRows, newRows) {
		t.Error("deprecated Topology+Sizes spelling diverges from Topologies")
	}
	for _, r := range oldRows {
		// The job seed must still be the PR 3 derivation: base + the
		// family string ("grid", not the resolved spec) + configuration.
		want := DeriveSeed(5, hashString("grid"), uint64(r.N), uint64(r.K),
			uint64(r.Cell.Placement), uint64(r.Cell.Pointer), uint64(r.Replica))
		if r.Seed != want {
			t.Errorf("cell n=%d replica %d: seed %d, want pre-registry %d", r.N, r.Replica, r.Seed, want)
		}
	}
}

// TestSelfSizedOnlySweep: a sweep whose topologies are all self-sized
// needs no Sizes at all.
func TestSelfSizedOnlySweep(t *testing.T) {
	rows, err := New(Workers(2)).Run(SweepSpec{
		Topologies: []Topo{"grid:8x4", "lollipop:6x5"},
		Agents:     []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if rows[0].N != 32 || rows[1].N != 11 {
		t.Errorf("implied sizes (%d, %d), want (32, 11)", rows[0].N, rows[1].N)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("row failed: %s", r.Err)
		}
	}
	// Axis-sized topologies without sizes still fail up front.
	if _, err := New().Run(SweepSpec{
		Topologies: []Topo{"grid:8x4", "ring"},
		Agents:     []int{2},
	}); err == nil || !strings.Contains(err.Error(), "size") {
		t.Errorf("axis-sized topology without sizes accepted: %v", err)
	}
}

// TestShuffledTopologySweep: the shuffled wrapper family runs end to end
// and actually permutes ports (a shuffled star's hub still has max degree
// n-1, but a shuffled torus cell covers like a torus — here we just pin
// determinism and metadata).
func TestShuffledTopologySweep(t *testing.T) {
	spec := SweepSpec{
		Topologies: []Topo{"shuffled:torus:8x8", "torus:8x8"},
		Agents:     []int{4},
		Replicas:   1,
		Seed:       9,
	}
	rows, err := New(Workers(2)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("%s failed: %s", r.Topology, r.Err)
		}
		if r.Edges != 128 || r.MaxDegree != 4 {
			t.Errorf("%s: edges=%d maxDeg=%d, want 128/4", r.Topology, r.Edges, r.MaxDegree)
		}
	}
	rows2, err := New(Workers(7)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, rows2) {
		t.Error("shuffled sweep not deterministic across worker counts")
	}
}

// TestBadTopologySpecsFailFast: malformed specs fail spec validation
// before any worker starts — never as per-job error rows.
func TestBadTopologySpecsFailFast(t *testing.T) {
	for _, topos := range [][]Topo{
		{"moebius"},
		{"ring", "grid:0x5"},
		{"rr"},
		{"rr:1"},
		{"ring:2"},
		{"shuffled:moebius"},
		{"noresolve"}, // axis-sized family registered without Resolve
	} {
		_, err := New().Run(SweepSpec{Topologies: topos, Sizes: []int{8}, Agents: []int{1}})
		if err == nil {
			t.Errorf("Topologies %v accepted", topos)
		}
	}
}

package engine

import "rotorring/internal/xrand"

// DeriveSeed maps a base seed and a list of coordinates to a job seed by
// folding each coordinate through the SplitMix64 finalizer. The derivation
// is position-sensitive (swapping two coordinates changes the result) and
// depends only on the values, never on worker identity, scheduling order or
// grid shape — the property the engine's bit-reproducibility rests on.
func DeriveSeed(base uint64, coords ...uint64) uint64 {
	// Offset the base so that base 0 with empty coordinates does not map
	// to the all-zero state, and mix once so related bases decorrelate.
	h := xrand.Mix64(base ^ 0x9e3779b97f4a7c15)
	for i, c := range coords {
		// Fold the position in before the value so permuted coordinate
		// lists derive unrelated seeds.
		h = xrand.Mix64(h ^ xrand.Mix64(uint64(i+1)*0xbf58476d1ce4e5b9+c))
	}
	if h == 0 {
		h = 0x9e3779b97f4a7c15 // keep downstream xoshiro seeding away from 0
	}
	return h
}

// jobSeed derives the seed of one replica of a cell from the cell's
// configuration values — never from its grid index — so reshaping the grid
// (adding a size, reordering the agent list) never changes the seed of an
// existing configuration.
func jobSeed(base uint64, c Cell, replica int) uint64 {
	return DeriveSeed(base,
		hashString(c.Topology),
		uint64(c.N), uint64(c.K),
		uint64(c.Placement), uint64(c.Pointer),
		uint64(replica))
}

// hashString is a 64-bit FNV-1a, inlined to keep the derivation
// self-contained and stable across Go releases.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

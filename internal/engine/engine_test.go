package engine

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/stats"
)

// randomizedSpec is a sweep exercising every seed-dependent code path:
// random placement, random pointers, and walk-style replicas.
func randomizedSpec() SweepSpec {
	return SweepSpec{
		Topology:   "ring",
		Sizes:      []int{32, 48},
		Agents:     []int{2, 4},
		Placements: []Placement{PlaceEqual, PlaceRandom},
		Pointers:   []Pointer{PtrZero, PtrRandom},
		Replicas:   3,
		Seed:       42,
	}
}

// runToBytes executes a sweep and returns rows plus serialized JSONL and
// CSV sink output.
func runToBytes(t *testing.T, e *Engine, spec SweepSpec) ([]Row, []byte, []byte) {
	t.Helper()
	var jsonl, csvBuf bytes.Buffer
	rows, err := e.Run(spec, NewJSONLSink(&jsonl), NewCSVSink(&csvBuf))
	if err != nil {
		t.Fatal(err)
	}
	return rows, jsonl.Bytes(), csvBuf.Bytes()
}

// TestDeterminismAcrossWorkers is the engine's core contract: the same
// sweep at Workers(1) and Workers(8) produces byte-identical sink output
// and identical row sequences — no seed may depend on scheduling, and no
// map-iteration order may leak into the stream.
func TestDeterminismAcrossWorkers(t *testing.T) {
	for _, proc := range []string{ProcRotor, ProcWalk} {
		for _, metric := range []string{MetricCover, MetricReturn} {
			t.Run(fmt.Sprintf("%s_%s", proc, metric), func(t *testing.T) {
				spec := randomizedSpec()
				spec.Process = proc
				spec.Metric = metric
				if metric == MetricReturn {
					// Long-window gap measurement: keep the grid small.
					spec.Sizes = []int{24}
					spec.Replicas = 2
				}
				rows1, jsonl1, csv1 := runToBytes(t, New(Workers(1)), spec)
				rows8, jsonl8, csv8 := runToBytes(t, New(Workers(8)), spec)

				if !reflect.DeepEqual(rows1, rows8) {
					t.Fatalf("rows differ between 1 and 8 workers:\n%v\nvs\n%v", rows1, rows8)
				}
				if !bytes.Equal(jsonl1, jsonl8) {
					t.Errorf("JSONL output differs between 1 and 8 workers")
				}
				if !bytes.Equal(csv1, csv8) {
					t.Errorf("CSV output differs between 1 and 8 workers")
				}
				for _, r := range rows1 {
					if r.Err != "" {
						t.Errorf("job cell=%d replica=%d failed: %s", r.Index, r.Replica, r.Err)
					}
				}
			})
		}
	}
}

// TestRepeatedRunsIdentical: running the same spec twice on the same engine
// gives identical results (worker caches are invisible).
func TestRepeatedRunsIdentical(t *testing.T) {
	e := New(Workers(4))
	rows1, jsonl1, _ := runToBytes(t, e, randomizedSpec())
	rows2, jsonl2, _ := runToBytes(t, e, randomizedSpec())
	if !reflect.DeepEqual(rows1, rows2) {
		t.Fatal("repeated runs differ")
	}
	if !bytes.Equal(jsonl1, jsonl2) {
		t.Fatal("repeated JSONL output differs")
	}
}

// TestRowOrderCanonical: rows arrive sorted by cell index then replica, and
// cell indices match the documented grid nesting.
func TestRowOrderCanonical(t *testing.T) {
	spec := randomizedSpec()
	rows, err := New(Workers(8)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cells)*spec.Replicas {
		t.Fatalf("got %d rows, want %d", len(rows), len(cells)*spec.Replicas)
	}
	for i, r := range rows {
		wantCell := i / spec.Replicas
		wantRep := i % spec.Replicas
		if r.Index != wantCell || r.Replica != wantRep {
			t.Fatalf("row %d: got cell=%d replica=%d, want cell=%d replica=%d",
				i, r.Index, r.Replica, wantCell, wantRep)
		}
		c := cells[wantCell]
		if r.N != c.N || r.K != c.K || r.Placement != c.Placement.String() {
			t.Fatalf("row %d does not match cell %d", i, wantCell)
		}
	}
}

// TestSeedDerivation checks the properties reproducibility rests on.
func TestSeedDerivation(t *testing.T) {
	if DeriveSeed(1, 2, 3) == DeriveSeed(1, 3, 2) {
		t.Error("DeriveSeed is not position-sensitive")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(2, 2, 3) {
		t.Error("DeriveSeed ignores the base")
	}
	if DeriveSeed(0) == 0 {
		t.Error("DeriveSeed(0) must not return 0")
	}
	c := Cell{Topology: "ring", N: 64, K: 4, Placement: PlaceRandom, Pointer: PtrRandom}
	if jobSeed(1, c, 0) == jobSeed(1, c, 1) {
		t.Error("replicas share a seed")
	}
	// Seeds depend on configuration values, not grid position: the same
	// cell in a reshaped grid keeps its seed.
	c2 := c
	c2.Index = 17
	if jobSeed(1, c, 0) != jobSeed(1, c2, 0) {
		t.Error("job seed depends on grid index")
	}
	c3 := c
	c3.Topology = "path"
	if jobSeed(1, c, 0) == jobSeed(1, c3, 0) {
		t.Error("job seed ignores topology")
	}
}

// TestSeedZeroIsDistinct: seed 0 is a valid base producing a different
// sample than seed 1 (an explicit 0 must not be remapped).
func TestSeedZeroIsDistinct(t *testing.T) {
	spec := SweepSpec{
		Topology:   "ring",
		Sizes:      []int{48},
		Agents:     []int{2},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		Replicas:   4,
	}
	spec.Seed = 0
	rows0, err := New(Workers(2)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Seed = 1
	rows1, err := New(Workers(2)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(rows0, rows1) {
		t.Error("seed 0 and seed 1 produced identical sweeps")
	}
}

// TestTopologyCaseInsensitive: flag casing must not change results (seeds
// hash the normalized topology name).
func TestTopologyCaseInsensitive(t *testing.T) {
	spec := randomizedSpec()
	lower, err := New(Workers(2)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Topology = "RING"
	upper, err := New(Workers(2)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lower, upper) {
		t.Error("topology casing changed sweep results")
	}
}

// TestEngineMatchesDirect: the engine's measurement of a deterministic cell
// equals a hand-built core run of the same configuration.
func TestEngineMatchesDirect(t *testing.T) {
	const n, k = 64, 4
	g := graph.Ring(n)
	starts := core.EquallySpaced(n, k)
	ptr, err := core.PointersNegative(g, starts)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, core.WithAgentsAt(starts...), core.WithPointers(ptr))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.RunUntilCovered(1 << 20)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := New(Workers(2)).Run(SweepSpec{
		Topology:   "ring",
		Sizes:      []int{n},
		Agents:     []int{k},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrNegative},
		Replicas:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("replica %d failed: %s", r.Replica, r.Err)
		}
		if int64(r.Value) != want {
			t.Errorf("replica %d: cover %v, want %d (System reuse via Reset must not leak state)", r.Replica, r.Value, want)
		}
	}
}

// TestReturnMetricMatchesDirect: the return-time metric agrees with a
// direct MeasureReturnTime run, across replicas reusing the prototype.
func TestReturnMetricMatchesDirect(t *testing.T) {
	const n, k = 48, 3
	g := graph.Ring(n)
	starts := core.EquallySpaced(n, k)
	ptr, err := core.PointersNegative(g, starts)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g, core.WithAgentsAt(starts...), core.WithPointers(ptr))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.MeasureReturnTime(sys, 1<<22)
	if err != nil {
		t.Fatal(err)
	}

	rows, err := New(Workers(1)).Run(SweepSpec{
		Topology:   "ring",
		Sizes:      []int{n},
		Agents:     []int{k},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrNegative},
		Metric:     MetricReturn,
		Replicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("replica %d failed: %s", r.Replica, r.Err)
		}
		if int64(r.Value) != want.ReturnTime || r.Period != want.Period {
			t.Errorf("replica %d: return=%v period=%d, want return=%d period=%d",
				r.Replica, r.Value, r.Period, want.ReturnTime, want.Period)
		}
		if r.MinVisits != want.MinNodeVisits || r.MaxVisits != want.MaxNodeVisits {
			t.Errorf("replica %d: visit extremes (%d,%d), want (%d,%d)",
				r.Replica, r.MinVisits, r.MaxVisits, want.MinNodeVisits, want.MaxNodeVisits)
		}
	}
}

// TestSummarySink: per-cell aggregation matches internal/stats on the rows.
func TestSummarySink(t *testing.T) {
	spec := randomizedSpec()
	spec.Process = ProcWalk
	sum := NewSummarySink()
	rows, err := New(Workers(4)).Run(spec, sum)
	if err != nil {
		t.Fatal(err)
	}
	cells, _ := spec.Cells()
	got := sum.Cells()
	if len(got) != len(cells) {
		t.Fatalf("got %d summaries, want %d", len(got), len(cells))
	}
	for _, cs := range got {
		var vals []float64
		for _, r := range rows {
			if r.Index == cs.Index && r.Err == "" {
				vals = append(vals, r.Value)
			}
		}
		if cs.Replicas != len(vals) {
			t.Fatalf("cell %d: %d replicas, want %d", cs.Index, cs.Replicas, len(vals))
		}
		want, err := stats.Summarize(vals)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Mean != want.Mean || cs.Median != want.Median || cs.Min != want.Min || cs.Max != want.Max {
			t.Errorf("cell %d: summary %+v disagrees with stats.Summarize %+v", cs.Index, cs, want)
		}
	}
	var table strings.Builder
	if err := sum.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(table.String(), "\n"); got != len(cells) {
		t.Errorf("summary table has %d lines, want %d", got, len(cells))
	}
}

// TestSpecValidation: invalid specs fail before any worker starts.
func TestSpecValidation(t *testing.T) {
	bad := []SweepSpec{
		{},                                  // no sizes
		{Sizes: []int{8}},                   // no agents
		{Sizes: []int{8}, Agents: []int{0}}, // k < 1
		{Sizes: []int{8}, Agents: []int{2}, Topology: "moebius"},
		{Sizes: []int{8}, Agents: []int{2}, Placements: []Placement{99}},
		{Sizes: []int{8}, Agents: []int{2}, Pointers: []Pointer{99}},
		{Sizes: []int{8}, Agents: []int{2}, Replicas: -1},
	}
	for i, spec := range bad {
		if _, err := New().Run(spec); err == nil {
			t.Errorf("spec %d: invalid spec accepted", i)
		}
	}
	// Out-of-range sizes are per-cell failures, not spec errors: the rest
	// of the grid still runs.
	rows, err := New().Run(SweepSpec{Sizes: []int{8, 2}, Agents: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Err != "" || rows[1].Err == "" {
		t.Errorf("Ring(2) cell should fail as a row while Ring(8) succeeds: %+v", rows)
	}
}

// TestJobErrorsAreRows: a failing job (budget exhausted) produces a row
// with Err set rather than aborting the sweep.
func TestJobErrorsAreRows(t *testing.T) {
	rows, err := New(Workers(2)).Run(SweepSpec{
		Topology:  "ring",
		Sizes:     []int{128},
		Agents:    []int{1},
		MaxRounds: 3, // far below the ~n^2 cover time
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Err == "" {
		t.Fatalf("want one failed row, got %+v", rows)
	}
	if !strings.Contains(rows[0].Err, "cover-time budget exhausted") {
		t.Errorf("unexpected error: %s", rows[0].Err)
	}
}

// TestWalkReplicasVary: walk replicas with distinct derived seeds give a
// genuinely random sample (not all equal), while remaining reproducible.
func TestWalkReplicasVary(t *testing.T) {
	spec := SweepSpec{
		Topology: "ring",
		Sizes:    []int{64},
		Agents:   []int{2},
		Process:  ProcWalk,
		Replicas: 8,
		Seed:     7,
	}
	rows, err := New(Workers(3)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("replica %d failed: %s", r.Replica, r.Err)
		}
		distinct[r.Value] = true
	}
	if len(distinct) < 2 {
		t.Errorf("8 walk replicas produced %d distinct cover times; seeds look shared", len(distinct))
	}
}

// TestParseRoundTrip: flag parsing and String round-trip for the enums.
func TestParseRoundTrip(t *testing.T) {
	for _, p := range []Placement{PlaceSingle, PlaceEqual, PlaceRandom} {
		got, err := ParsePlacement(p.String())
		if err != nil || got != p {
			t.Errorf("placement %v round-trip failed: %v %v", p, got, err)
		}
	}
	for _, p := range []Pointer{PtrZero, PtrNegative, PtrToward, PtrRandom} {
		got, err := ParsePointer(p.String())
		if err != nil || got != p {
			t.Errorf("pointer %v round-trip failed: %v %v", p, got, err)
		}
	}
	if _, err := ParsePlacement("nope"); err == nil {
		t.Error("bad placement accepted")
	}
	if _, err := ParsePointer("nope"); err == nil {
		t.Error("bad pointer accepted")
	}
}

// TestMap: order preservation, clamping, error propagation, parallelism.
func TestMap(t *testing.T) {
	var calls atomic.Int64
	out, err := Map(8, 100, func(i int) (int, error) {
		calls.Add(1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 {
		t.Errorf("fn called %d times, want 100", calls.Load())
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}

	boom := errors.New("boom")
	if _, err := Map(4, 10, func(i int) (int, error) {
		if i == 7 {
			return 0, boom
		}
		return i, nil
	}); !errors.Is(err, boom) {
		t.Errorf("Map error = %v, want wrapped boom", err)
	}

	if out, err := Map(4, 0, func(int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Errorf("empty Map = (%v, %v), want (nil, nil)", out, err)
	}
}

// TestBuildGraphSizes: every registered topology constructs and reports a
// sensible node count.
func TestBuildGraphSizes(t *testing.T) {
	cases := []struct {
		topo  string
		n     int
		nodes int
	}{
		{"ring", 16, 16},
		{"path", 16, 16},
		{"grid", 4, 16},
		{"torus", 4, 16},
		{"complete", 8, 8},
		{"star", 8, 8},
		{"hypercube", 4, 16},
		{"btree", 3, 7},
	}
	for _, c := range cases {
		g, err := BuildGraph(c.topo, c.n)
		if err != nil {
			t.Errorf("%s: %v", c.topo, err)
			continue
		}
		if g.NumNodes() != c.nodes {
			t.Errorf("%s(%d): %d nodes, want %d", c.topo, c.n, g.NumNodes(), c.nodes)
		}
	}
	if _, err := BuildGraph("moebius", 8); err == nil {
		t.Error("unknown topology accepted")
	}
	// Constructor panics surface as errors, not crashes.
	if _, err := BuildGraph("ring", 2); err == nil {
		t.Error("Ring(2) should fail")
	}
	if _, err := BuildGraph("hypercube", 25); err == nil {
		t.Error("Hypercube(25) should fail")
	}
}

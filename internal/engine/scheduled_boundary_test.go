package engine

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/xrand"
)

// This file pins the schedule runner's boundary semantics — what happens
// when a planned event lands exactly on the round budget or exactly on the
// cover round — and the kernel re-specialization rule across fault epochs.
// Both are chunk-boundary questions (applyDue / nextEventRound), so each
// contract is asserted white-box on a scheduledProc and, where the sweep
// surface is involved, byte-compared across worker counts.

// buildScheduledRotor constructs a rotor process under the given schedule
// with a fully deterministic configuration: rebuilding with the same
// arguments yields a bit-identical starting state, so pristine and
// scheduled runs are directly comparable.
func buildScheduledRotor(t *testing.T, n, k int, seed uint64, schedule string) *scheduledProc {
	t.Helper()
	g := mustBuildGraph(t, "ring", n)
	rng := xrand.New(seed)
	env := &JobEnv{
		Graph: g,
		Cell: Cell{Topology: "ring", N: n, K: k,
			Placement: PlaceRandom, Pointer: PtrRandom},
		Positions: core.RandomPositions(n, k, rng),
		Seed:      seed,
		RNG:       rng,
	}
	p, err := newRotorProc(env)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := parseSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := newScheduledProc(p, ProcRotor, inst, env)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// coverRoundOf measures the pristine cover round of the deterministic
// configuration buildScheduledRotor produces for (n, k, seed).
func coverRoundOf(t *testing.T, n, k int, seed uint64) int64 {
	t.Helper()
	// A far-future event never fires, so this is the pristine trajectory.
	sp := buildScheduledRotor(t, n, k, seed, "edgefail:t=1000000000")
	c, err := sp.RunUntilCovered(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestScheduleEventAtBudgetBoundary pins the budget edge of applyDue /
// nextEventRound: an event planned exactly at the round budget never fires
// — the budget is exhausted first — and a run whose cover round equals the
// budget exactly still succeeds.
func TestScheduleEventAtBudgetBoundary(t *testing.T) {
	const n, k, seed = 64, 2, 1311

	// Coverage of ring:64 with 2 agents needs far more than 40 rounds, so a
	// 40-round budget exhausts with the event at round 40 still unapplied.
	sp := buildScheduledRotor(t, n, k, seed, "edgefail:t=40,count=1")
	_, err := sp.RunUntilCovered(40)
	if !errors.Is(err, core.ErrNotCovered) {
		t.Fatalf("budget-bounded run: got err %v, want ErrNotCovered", err)
	}
	if got := sp.Round(); got != 40 {
		t.Fatalf("budget-bounded run stopped at round %d, want exactly 40", got)
	}
	if sp.next != 0 {
		t.Fatalf("event planned exactly at the budget round fired (next=%d); budget exhaustion must precede it", sp.next)
	}

	// The success side of the same edge: a budget equal to the cover round
	// is sufficient, one round less is not.
	cover := coverRoundOf(t, n, k, seed)
	if got, err := buildScheduledRotor(t, n, k, seed, "edgefail:t=1000000000").RunUntilCovered(cover); err != nil || got != cover {
		t.Fatalf("budget == cover round %d: got (%d, %v), want success at %d", cover, got, err, cover)
	}
	if _, err := buildScheduledRotor(t, n, k, seed, "edgefail:t=1000000000").RunUntilCovered(cover - 1); !errors.Is(err, core.ErrNotCovered) {
		t.Fatalf("budget == cover round - 1: got err %v, want ErrNotCovered", err)
	}
}

// TestScheduleEventAtCoverRound pins the cover-round edge: an event planned
// exactly at the round coverage completes never fires (coverage wins the
// tie), while the same event one round earlier does fire and perturbs the
// run.
func TestScheduleEventAtCoverRound(t *testing.T) {
	const n, k, seed = 64, 2, 1313
	cover := coverRoundOf(t, n, k, seed)

	at := buildScheduledRotor(t, n, k, seed, "edgefail:t="+itoa(cover)+",count=1")
	got, err := at.RunUntilCovered(64 * cover)
	if err != nil || got != cover {
		t.Fatalf("event at cover round %d: got (%d, %v), want the pristine cover round", cover, got, err)
	}
	if at.next != 0 {
		t.Fatalf("event planned exactly at the cover round fired (next=%d); coverage must win the tie", at.next)
	}

	before := buildScheduledRotor(t, n, k, seed, "edgefail:t="+itoa(cover-1)+",count=1")
	got, err = before.RunUntilCovered(64 * cover)
	if err != nil {
		t.Fatalf("event one round before coverage: %v", err)
	}
	if before.next != 1 {
		t.Fatalf("event planned one round before the cover round did not fire (next=%d)", before.next)
	}
	if got < cover-1 {
		t.Fatalf("perturbed run covered at %d, before the fault round %d", got, cover-1)
	}
}

// TestScheduleBudgetBoundaryWorkersPinned asserts the budget boundary on
// the sweep surface: with MaxRounds equal to the event round, scheduled
// rows measure exactly like unscheduled ones (the event never fires), and
// the whole sweep — budget-exhausted error rows included — is
// byte-identical at 1 versus 8 workers.
func TestScheduleBudgetBoundaryWorkersPinned(t *testing.T) {
	spec := SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{64},
		Agents:     []int{2},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		Schedules:  []Schedule{"none", "edgefail:t=40,count=1"},
		MaxRounds:  40,
		Replicas:   2,
		Seed:       417,
	}
	rows1, jsonl1, csv1 := runToBytes(t, New(Workers(1)), spec)
	rows8, jsonl8, csv8 := runToBytes(t, New(Workers(8)), spec)
	if !bytes.Equal(jsonl1, jsonl8) || !bytes.Equal(csv1, csv8) {
		t.Fatalf("budget-boundary sweep differs between 1 and 8 workers")
	}
	if !reflect.DeepEqual(rowKeys(rows1), rowKeys(rows8)) {
		t.Fatalf("budget-boundary rows differ between 1 and 8 workers")
	}
	if len(rows1) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows1))
	}
	for rep := 0; rep < 2; rep++ {
		none, sched := rows1[rep], rows1[2+rep]
		if none.Err != sched.Err || none.Rounds != sched.Rounds || !sameValue(none.Value, sched.Value) {
			t.Errorf("replica %d: event at MaxRounds changed the measurement (%q/%d/%v vs %q/%d/%v)",
				rep, none.Err, none.Rounds, none.Value, sched.Err, sched.Rounds, sched.Value)
		}
	}
}

// rowKeys projects rows onto their comparable fields (Value may be NaN on
// error rows, which reflect.DeepEqual would treat as unequal).
func rowKeys(rows []Row) []string {
	keys := make([]string, len(rows))
	for i, r := range rows {
		keys[i] = string(r.Cell.Schedule) + "|" + itoa(int64(r.Replica)) + "|" + itoa(r.Rounds) + "|" + r.Err
	}
	return keys
}

func sameValue(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestScheduledKernelRespecializesAcrossFaultEpochs is the epoch
// re-specialization contract on the scheduled runner: a rotor job on the
// ring runs the ring kernel, an edge failure degrades it to the generic
// engine (the cut ring's ports are no longer the canonical ring shape), and
// the repair — which restores the pristine topology — re-specializes back
// to the ring kernel. KernelName is asserted in every epoch.
func TestScheduledKernelRespecializesAcrossFaultEpochs(t *testing.T) {
	// 8 agents on 48 nodes is past the density threshold, so KernelAuto
	// selects the ring kernel exactly as a sweep job would.
	sp := buildScheduledRotor(t, 48, 8, 2201, "edgefail:t=50,count=1,repair=150")
	kernel := func() string { return sp.inner.(*rotorProc).sys.KernelName() }

	if got := kernel(); got != "ring" {
		t.Fatalf("pristine epoch: kernel %q, want ring", got)
	}
	sp.RunTo(60)
	if got := kernel(); got != "generic" {
		t.Fatalf("cut epoch: kernel %q, want generic", got)
	}
	if sp.next != 1 {
		t.Fatalf("after RunTo(60): %d events applied, want 1", sp.next)
	}
	sp.RunTo(200)
	if got := kernel(); got != "ring" {
		t.Fatalf("repaired epoch: kernel %q, want ring (repair must re-specialize)", got)
	}
	if sp.next != 2 {
		t.Fatalf("after RunTo(200): %d events applied, want 2", sp.next)
	}

	// Reset rewinds to the pristine epoch; the kernel must come back
	// specialized there too.
	sp.Reset()
	if got := kernel(); got != "ring" {
		t.Fatalf("after Reset: kernel %q, want ring", got)
	}
}

package engine

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"rotorring/internal/graph"
)

// beaconProc is a toy third process for registry tests: one beacon moving
// clockwise deterministically, one node per round. It implements only the
// Proc surface plus CoverRunner — no pointers, no recurrence metric.
type beaconProc struct {
	n       int
	pos     int
	visited []bool
	covered int
	round   int64
}

func newBeacon(env *JobEnv) (Proc, error) {
	n := env.Graph.NumNodes()
	b := &beaconProc{n: n, visited: make([]bool, n)}
	b.visited[0] = true
	b.covered = 1
	return b, nil
}

func (b *beaconProc) Step() {
	b.pos = (b.pos + 1) % b.n
	if !b.visited[b.pos] {
		b.visited[b.pos] = true
		b.covered++
	}
	b.round++
}

func (b *beaconProc) Round() int64 { return b.round }
func (b *beaconProc) Covered() int { return b.covered }

func (b *beaconProc) Reset() {
	b.pos, b.round, b.covered = 0, 0, 1
	for v := range b.visited {
		b.visited[v] = v == 0
	}
}

func (b *beaconProc) RunUntilCovered(maxRounds int64) (int64, error) {
	for b.covered < b.n {
		if b.round >= maxRounds {
			return b.round, fmt.Errorf("beacon: budget exhausted")
		}
		b.Step()
	}
	return b.round, nil
}

func init() {
	// Registered once at package-test init: proves a process plugs in
	// without any engine edits.
	RegisterProcess(&ProcessDef{Name: "beacon", New: newBeacon})
	RegisterProcess(&ProcessDef{Name: "noisy", Randomized: true, New: newNoisy})
}

// noisyProc is a randomized process WITHOUT a Reseeder: its behavior is
// drawn from the job RNG at construction and Reset cannot rewind it. The
// engine must not reuse such an instance across replicas, or results
// would depend on which worker ran the previous replica.
type noisyProc struct {
	n      int
	target int64
	round  int64
}

func newNoisy(env *JobEnv) (Proc, error) {
	return &noisyProc{n: env.Graph.NumNodes(), target: 1 + int64(env.RNG.Intn(1000))}, nil
}

func (p *noisyProc) Step()        { p.round++ }
func (p *noisyProc) Round() int64 { return p.round }
func (p *noisyProc) Reset()       { p.round = 0 }
func (p *noisyProc) Covered() int {
	if p.round >= p.target {
		return p.n
	}
	return 1
}

func (p *noisyProc) RunUntilCovered(maxRounds int64) (int64, error) {
	for p.Covered() < p.n {
		if p.round >= maxRounds {
			return p.round, fmt.Errorf("noisy: budget exhausted")
		}
		p.Step()
	}
	return p.round, nil
}

// TestRandomizedWithoutReseederDeterministic: a randomized registered
// process lacking Reseed must be rebuilt per replica, keeping sweep rows
// identical across worker counts (the determinism contract).
func TestRandomizedWithoutReseederDeterministic(t *testing.T) {
	spec := SweepSpec{
		Topology: "ring",
		Sizes:    []int{16, 32},
		Agents:   []int{1},
		Process:  "noisy",
		Replicas: 4,
		Seed:     11,
	}
	rows1, err := New(Workers(1)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rows8, err := New(Workers(8)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for i := range rows1 {
		if rows1[i].Err != "" {
			t.Fatalf("row %d failed: %s", i, rows1[i].Err)
		}
		if rows1[i].Value != rows8[i].Value {
			t.Errorf("row %d: value %v at 1 worker, %v at 8 workers",
				i, rows1[i].Value, rows8[i].Value)
		}
		distinct[rows1[i].Value] = true
	}
	if len(distinct) < 2 {
		t.Error("replicas of a randomized process all equal; per-replica seeds unused")
	}
}

// TestRegistryCustomProcess: a sweep runs a process the engine has never
// heard of, by name, with the pointer axis collapsed and the metric
// dispatched through capabilities.
func TestRegistryCustomProcess(t *testing.T) {
	rows, err := New(Workers(2)).Run(SweepSpec{
		Topology: "ring",
		Sizes:    []int{16, 32},
		Agents:   []int{1},
		Process:  "beacon",
		Replicas: 2,
		// Pointer policies must be ignored (collapsed) for a process
		// without pointers.
		Pointers: []Pointer{PtrZero, PtrNegative},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 sizes x 1 collapsed pointer cell x 2 replicas
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("row failed: %s", r.Err)
		}
		if r.Process != "beacon" {
			t.Errorf("row process %q", r.Process)
		}
		if r.Pointer != "" {
			t.Errorf("pointer column %q for a pointer-less process", r.Pointer)
		}
		if want := float64(r.N - 1); r.Value != want {
			t.Errorf("n=%d: beacon cover %v, want %v", r.N, r.Value, want)
		}
	}

	// The recurrence metric is a capability the beacon lacks: the job
	// fails as a row, not a crash.
	rows, err = New().Run(SweepSpec{
		Topology: "ring", Sizes: []int{16}, Agents: []int{1},
		Process: "beacon", Metric: MetricReturn,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !strings.Contains(rows[0].Err, "does not measure") {
		t.Errorf("unsupported metric row: %+v", rows)
	}
}

// TestUnknownNamesRejected: unknown process/metric/probe names fail spec
// validation before any worker starts.
func TestUnknownNamesRejected(t *testing.T) {
	base := SweepSpec{Topology: "ring", Sizes: []int{16}, Agents: []int{2}}

	spec := base
	spec.Process = "teleport"
	if _, err := New().Run(spec); err == nil || !strings.Contains(err.Error(), "unknown process") {
		t.Errorf("unknown process: %v", err)
	}

	spec = base
	spec.Metric = "entropy"
	if _, err := New().Run(spec); err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Errorf("unknown metric: %v", err)
	}

	spec = base
	spec.Probes = []ProbeSpec{{Name: "nope", Stride: 8}}
	if _, err := New().Run(spec); err == nil || !strings.Contains(err.Error(), "unknown probe") {
		t.Errorf("unknown probe: %v", err)
	}

	spec = base
	spec.Probes = []ProbeSpec{{Name: "coverage", Stride: 0}}
	if _, err := New().Run(spec); err == nil || !strings.Contains(err.Error(), "stride") {
		t.Errorf("zero stride: %v", err)
	}

	spec = base
	spec.Metric = MetricReturn
	spec.Probes = []ProbeSpec{{Name: "coverage", Stride: 8}}
	if _, err := New().Run(spec); err == nil || !strings.Contains(err.Error(), "probes require") {
		t.Errorf("probes with return metric: %v", err)
	}
}

// TestAutoBudgetRule pins the shared budget rule: 1x for deterministic
// cover runs, 4x headroom for randomized processes and recurrence metrics
// (max of the factors, not their product).
func TestAutoBudgetRule(t *testing.T) {
	g := graph.Ring(64)
	base := CoverBudget(g)
	cases := []struct {
		process, metric string
		want            int64
	}{
		{ProcRotor, MetricCover, base},
		{ProcRotor, MetricReturn, 4 * base},
		{ProcWalk, MetricCover, 4 * base},
		{ProcWalk, MetricReturn, 4 * base},
	}
	for _, c := range cases {
		if got := AutoBudget(g, c.process, c.metric); got != c.want {
			t.Errorf("AutoBudget(%s, %s) = %d, want %d", c.process, c.metric, got, c.want)
		}
	}
}

// probedSpec is a sweep with probes over both seed-dependent and
// deterministic cells.
func probedSpec() SweepSpec {
	return SweepSpec{
		Topology:   "ring",
		Sizes:      []int{32, 48},
		Agents:     []int{2, 4},
		Placements: []Placement{PlaceEqual, PlaceRandom},
		Pointers:   []Pointer{PtrZero},
		Replicas:   2,
		Seed:       9,
		Probes: []ProbeSpec{
			{Name: "coverage", Stride: 16},
			{Name: "histogram", Stride: 64},
		},
	}
}

// TestObservedSweepDeterministic: probes must not break the engine's core
// contract — the same observed sweep at 1 and 8 workers produces
// byte-identical JSONL (series included), for both processes.
func TestObservedSweepDeterministic(t *testing.T) {
	for _, proc := range []string{ProcRotor, ProcWalk} {
		t.Run(proc, func(t *testing.T) {
			spec := probedSpec()
			spec.Process = proc
			var a, b bytes.Buffer
			if _, err := New(Workers(1)).Run(spec, NewJSONLSink(&a)); err != nil {
				t.Fatal(err)
			}
			if _, err := New(Workers(8)).Run(spec, NewJSONLSink(&b)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("observed JSONL differs between 1 and 8 workers")
			}
			if !bytes.Contains(a.Bytes(), []byte(`"series"`)) {
				t.Error("observed rows carry no series")
			}
		})
	}
}

// TestObservedSweepSeries: the sampled series is correct — rounds at
// stride multiples plus the terminal round, coverage monotone up to n, and
// identical measured values to the unobserved sweep.
func TestObservedSweepSeries(t *testing.T) {
	spec := SweepSpec{
		Topology:   "ring",
		Sizes:      []int{64},
		Agents:     []int{4},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrNegative},
		Probes:     []ProbeSpec{{Name: "coverage", Stride: 32}},
	}
	rows, err := New(Workers(1)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Err != "" {
		t.Fatalf("rows: %+v", rows)
	}
	r := rows[0]
	if len(r.Series) == 0 {
		t.Fatal("no series sampled")
	}
	last := int64(-1)
	for i, pt := range r.Series {
		if pt.Probe != "coverage" || pt.Key != "covered" {
			t.Errorf("point %d: %+v", i, pt)
		}
		if pt.Round <= last {
			t.Errorf("rounds not increasing at %d: %+v", i, r.Series)
		}
		if pt.Round%32 != 0 && pt.Round != r.Rounds {
			t.Errorf("off-stride sample at round %d (cover %d)", pt.Round, r.Rounds)
		}
		last = pt.Round
	}
	first, final := r.Series[0], r.Series[len(r.Series)-1]
	if first.Round != 0 {
		t.Errorf("series starts at round %d, want 0", first.Round)
	}
	if final.Round != r.Rounds || final.Value != 64 {
		t.Errorf("series ends (%d, %v), want (%d, 64)", final.Round, final.Value, r.Rounds)
	}

	// The observed run measures exactly what the unobserved run measures.
	bare := spec
	bare.Probes = nil
	bareRows, err := New(Workers(1)).Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	if bareRows[0].Value != r.Value || bareRows[0].Rounds != r.Rounds {
		t.Errorf("observed (%v, %d) != unobserved (%v, %d)",
			r.Value, r.Rounds, bareRows[0].Value, bareRows[0].Rounds)
	}

	// CSV output keeps its fixed column set with probes attached.
	var csvBuf bytes.Buffer
	if _, err := New(Workers(1)).Run(spec, NewCSVSink(&csvBuf)); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(csvBuf.Bytes(), []byte("series")) {
		t.Error("CSV sink leaked series")
	}
}

// TestDomainsProbeInSweep: the domain-count probe samples rotor jobs on
// the ring (and yields nothing for walks, rather than failing).
func TestDomainsProbeInSweep(t *testing.T) {
	spec := SweepSpec{
		Topology:   "ring",
		Sizes:      []int{48},
		Agents:     []int{3},
		Placements: []Placement{PlaceEqual},
		Probes:     []ProbeSpec{{Name: "domains", Stride: 16}},
	}
	rows, err := New().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows[0].Series) == 0 {
		t.Error("rotor job sampled no domain counts")
	}
	for _, pt := range rows[0].Series {
		if pt.Value < 1 || pt.Value > 3 {
			t.Errorf("domain count %v out of range [1,3]", pt.Value)
		}
	}

	spec.Process = ProcWalk
	rows, err = New().Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Err != "" {
		t.Fatalf("walk job with domains probe failed: %s", rows[0].Err)
	}
	if len(rows[0].Series) != 0 {
		t.Errorf("walk job sampled domain counts: %+v", rows[0].Series)
	}
}

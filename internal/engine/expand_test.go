package engine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// expandTestSpec is a small heterogeneous grid exercising every row shape:
// mixed topologies (one seeded), a schedule, probes and replicas.
func expandTestSpec() SweepSpec {
	return SweepSpec{
		Topologies: []Topo{"ring", "grid:8x8", "rr:3"},
		Sizes:      []int{32},
		Agents:     []int{2, 4},
		Placements: []Placement{PlaceSingle, PlaceRandom},
		Replicas:   2,
		Seed:       7,
	}
}

// TestExpandMatchesRun proves the exported job model is the engine: rows
// produced job-by-job through Expand/JobRunner equal the rows Engine.Run
// streams, independent of how the job range is partitioned across runners.
func TestExpandMatchesRun(t *testing.T) {
	spec := expandTestSpec()
	want, err := New(Workers(4)).Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	exp, err := Expand(spec)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	if exp.NumJobs() != len(want) {
		t.Fatalf("NumJobs = %d, Run produced %d rows", exp.NumJobs(), len(want))
	}
	// Partition the job range across three runners round-robin — the least
	// cache-friendly sharding — and still expect identical rows.
	runners := []*JobRunner{exp.NewRunner(), exp.NewRunner(), exp.NewRunner()}
	for job := 0; job < exp.NumJobs(); job++ {
		got := runners[job%len(runners)].Run(job)
		if !reflect.DeepEqual(got, want[job]) {
			t.Errorf("job %d: runner row differs from Run row:\n got %+v\nwant %+v", job, got, want[job])
		}
		if got.Seed != exp.JobSeed(job) {
			t.Errorf("job %d: JobSeed = %d, row carries %d", job, exp.JobSeed(job), got.Seed)
		}
	}
}

// TestJobKeyIdentity pins the two halves of the content-address contract:
// jobs that must share cache entries (same configuration inside an enlarged
// grid) have equal keys, and every distinguishing input shows up in the key.
func TestJobKeyIdentity(t *testing.T) {
	small, err := Expand(SweepSpec{
		Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Expand(SweepSpec{
		Topologies: []Topo{"grid:8x8", "ring"}, Sizes: []int{32, 64}, Agents: []int{2, 4}, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Locate ring/32/k=2 in the enlarged grid and demand an identical key
	// despite the different grid shape and cell index.
	found := false
	for job := 0; job < big.NumJobs(); job++ {
		c, _ := big.Job(job)
		if c.Topology == "ring" && c.N == 32 && c.K == 2 {
			found = true
			if got, want := big.JobKey(job), small.JobKey(0); got != want {
				t.Errorf("enlarged-grid key differs:\n got %s\nwant %s", got, want)
			}
		}
	}
	if !found {
		t.Fatal("ring/32/2 cell not found in enlarged grid")
	}

	// Each of these variations must change the key: they all change row
	// bytes (seed, value, or serialized identity columns).
	base := SweepSpec{Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7}
	variants := map[string]SweepSpec{
		"seed":      {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 8},
		"process":   {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7, Process: ProcWalk},
		"metric":    {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7, Metric: MetricReturn},
		"kernel":    {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7, Kernel: KernelGeneric},
		"maxrounds": {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7, MaxRounds: 999},
		"schedule":  {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7, Schedules: []Schedule{"delay:p=0.25"}},
		"probes":    {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7, Probes: []ProbeSpec{{Name: "coverage", Stride: 16}}},
		"mission":   {Topologies: []Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Seed: 7, Missions: []Mission{"explore"}},
	}
	baseExp, err := Expand(base)
	if err != nil {
		t.Fatal(err)
	}
	baseKey := baseExp.JobKey(0)
	if !strings.HasPrefix(baseKey, "rowcache/v3|") {
		t.Errorf("key %q lacks the rowcache/v3 version prefix", baseKey)
	}
	for name, v := range variants {
		exp, err := Expand(v)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if exp.JobKey(0) == baseKey {
			t.Errorf("varying %s does not change the job key %s", name, baseKey)
		}
	}
}

// TestRowBytesRoundTrip pins the byte stability the row cache rests on:
// decode/encode of canonical row bytes reproduces them exactly, for every
// row shape the engine emits (values, errors, series, schedules), and
// re-indexing a decoded row changes only the leading cell field.
func TestRowBytesRoundTrip(t *testing.T) {
	spec := expandTestSpec()
	spec.Probes = []ProbeSpec{{Name: "coverage", Stride: 64}}
	spec.Schedules = []Schedule{"none", "delay:p=0.25"}
	rows, err := New(Workers(4)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// An error row, too: k exceeding the ring size fails placement-side.
	errRows, err := New(Workers(1)).Run(SweepSpec{
		Topologies: []Topo{"btree"}, Sizes: []int{1}, Agents: []int{1}, Seed: 1,
	})
	if err == nil {
		rows = append(rows, errRows...)
	}
	for i, r := range rows {
		b, err := RowBytes(r)
		if err != nil {
			t.Fatalf("row %d: RowBytes: %v", i, err)
		}
		dec, err := DecodeRow(b)
		if err != nil {
			t.Fatalf("row %d: DecodeRow: %v", i, err)
		}
		b2, err := RowBytes(dec)
		if err != nil {
			t.Fatalf("row %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("row %d: decode/encode not byte-stable:\n got %s\nwant %s", i, b2, b)
		}
		// The cache stores rows index-free and patches the index back in;
		// that patch must be invisible to every other byte.
		dec.Index = 0
		zeroed, err := RowBytes(dec)
		if err != nil {
			t.Fatal(err)
		}
		redec, err := DecodeRow(zeroed)
		if err != nil {
			t.Fatal(err)
		}
		redec.Index = r.Index
		b3, err := RowBytes(redec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b3) {
			t.Errorf("row %d: index patch not byte-stable:\n got %s\nwant %s", i, b3, b)
		}
	}
}

// TestSinkRegistry covers the fifth registry: the built-in formats resolve,
// unknown names fail with the registered list, and the summary format
// renders the same table the SummarySink always produced.
func TestSinkRegistry(t *testing.T) {
	names := SinkNames()
	for _, want := range []string{"csv", "jsonl", "summary"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("SinkNames() = %v, missing %q", names, want)
		}
	}
	if _, err := NewSink("nope", nil); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("NewSink(nope) error %v should list registered sinks", err)
	}

	spec := SweepSpec{Topologies: []Topo{"ring"}, Sizes: []int{64}, Agents: []int{2}, Replicas: 2, Seed: 3}
	var viaRegistry, direct bytes.Buffer
	sink, err := NewSink("summary", &viaRegistry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Workers(2)).Run(spec, sink); err != nil {
		t.Fatal(err)
	}
	sum := NewSummarySink()
	if _, err := New(Workers(2)).Run(spec, sum); err != nil {
		t.Fatal(err)
	}
	if err := sum.WriteTable(&direct); err != nil {
		t.Fatal(err)
	}
	if viaRegistry.String() != direct.String() {
		t.Errorf("registry summary differs from SummarySink table:\n got %q\nwant %q",
			viaRegistry.String(), direct.String())
	}
}

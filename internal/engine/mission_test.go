package engine

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestParseMissionRoundTrip: canonical forms, normalization, and rejected
// specs of the mission grammar.
func TestParseMissionRoundTrip(t *testing.T) {
	good := map[string]string{
		"none":                          "none",
		"  NONE ":                       "none",
		"explore":                       "explore",
		"Return":                        "return",
		"QUIESCE":                       "quiesce:window=4096",
		"quiesce:window=128":            "quiesce:window=128",
		"patrol:horizon=4096":           "patrol:horizon=4096",
		"Patrol:warmup=16,horizon=64":   "patrol:horizon=64,warmup=16",
		"patrol:horizon=64,warmup=0":    "patrol:horizon=64,warmup=0",
		"balance:horizon=20000":         "balance:horizon=20000",
		"balance:horizon=100, warmup=5": "balance:horizon=100,warmup=5",
	}
	for in, want := range good {
		got, err := ParseMission(in)
		if err != nil {
			t.Errorf("ParseMission(%q): %v", in, err)
			continue
		}
		if string(got) != want {
			t.Errorf("ParseMission(%q) = %q, want %q", in, got, want)
		}
		// The canonical form is a parse fixed point.
		again, err := ParseMission(string(got))
		if err != nil || again != got {
			t.Errorf("canonical %q is not a fixed point: %q, %v", got, again, err)
		}
	}
	bad := []string{
		"", "unknown", "none:x=1", "explore:fast=1", "return:x",
		"quiesce:window=0", "quiesce:window=-5", "quiesce:w=4",
		"quiesce:window=999999999999", "patrol", "patrol:warmup=5",
		"patrol:horizon=0", "patrol:horizon=10,warmup=10",
		"patrol:horizon=10,warmup=-1", "balance:horizon=x",
		"balance:horizon=5,horizon=5", "patrol:horizon=5,q=1",
	}
	for _, in := range bad {
		if got, err := ParseMission(in); err == nil {
			t.Errorf("ParseMission(%q) = %q, want error", in, got)
		}
	}

	// The unknown-family error names the registered families.
	_, err := ParseMission("bogus:x=1")
	if err == nil || !strings.Contains(err.Error(), "unknown mission") {
		t.Fatalf("unknown family error = %v", err)
	}
	for _, name := range []string{"explore", "return", "quiesce", "patrol", "balance", "none"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-mission error does not list %q: %v", name, err)
		}
	}
}

// FuzzParseMission: whatever the input, a successful parse returns a
// canonical form that re-parses to itself with an identical compiled plan,
// and parsing never panics.
func FuzzParseMission(f *testing.F) {
	for _, s := range []string{
		"none", "explore", "return", "quiesce", "quiesce:window=128",
		"patrol:horizon=4096", "patrol:horizon=64,warmup=0",
		"balance:horizon=20000,warmup=10000", "  Patrol : horizon = 8 ",
		"quiesce:window=0", "patrol:warmup=5", "none:x", ":::",
		"balance:horizon=99999999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		inst, err := parseMission(s)
		if err != nil {
			return
		}
		again, err := parseMission(inst.canonical)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", inst.canonical, s, err)
		}
		if again.canonical != inst.canonical {
			t.Fatalf("canonical %q is not a fixed point: %q", inst.canonical, again.canonical)
		}
		if !reflect.DeepEqual(again.plan, inst.plan) {
			t.Fatalf("canonical %q compiles differently: %+v vs %+v", inst.canonical, again.plan, inst.plan)
		}
		if inst.plan.BudgetFactor < 1 {
			t.Fatalf("%q: budget factor %d < 1", inst.canonical, inst.plan.BudgetFactor)
		}
	})
}

// mixedMissionSpec sweeps every built-in mission family next to "none" on a
// small grid, composed with a hold schedule (the only schedule kind missions
// accept).
func mixedMissionSpec(process string) SweepSpec {
	missions := []Mission{"none", "explore", "patrol:horizon=512", "balance:horizon=512,warmup=0"}
	if process == ProcRotor {
		// Configuration recurrence needs determinism (return) or hashing
		// (quiesce) — rotor capabilities.
		missions = append(missions, "return", "quiesce:window=256")
	}
	spec := SweepSpec{
		Topologies: []Topo{"ring", "grid:6x5"},
		Sizes:      []int{24},
		Agents:     []int{3},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		Process:    process,
		Missions:   missions,
		Replicas:   2,
		Seed:       314159,
	}
	if process == ProcRotor {
		spec.Schedules = []Schedule{"none", "delay:p=0.25,until=64"}
	}
	return spec
}

// TestMissionSweepDeterministic is the acceptance contract for the mission
// subsystem: mixed mission sweeps (composed with hold schedules) are
// byte-identical at 1 vs 8 workers, for both processes.
func TestMissionSweepDeterministic(t *testing.T) {
	for _, proc := range []string{ProcRotor, ProcWalk} {
		t.Run(proc, func(t *testing.T) {
			spec := mixedMissionSpec(proc)
			rows1, jsonl1, csv1 := runToBytes(t, New(Workers(1)), spec)
			rows8, jsonl8, csv8 := runToBytes(t, New(Workers(8)), spec)
			if !reflect.DeepEqual(rows1, rows8) {
				t.Fatalf("rows differ between 1 and 8 workers")
			}
			if !bytes.Equal(jsonl1, jsonl8) {
				t.Errorf("JSONL output differs between 1 and 8 workers")
			}
			if !bytes.Equal(csv1, csv8) {
				t.Errorf("CSV output differs between 1 and 8 workers")
			}
			for _, r := range rows1 {
				if r.Err != "" {
					t.Errorf("job cell=%d (mission %q, schedule %q) replica=%d failed: %s",
						r.Index, r.Cell.Mission, r.Cell.Schedule, r.Replica, r.Err)
				}
			}
		})
	}
}

// TestMissionSharesInitialConfiguration: job seeds do not depend on the
// mission, so the same randomized cell under "none" and under a mission
// starts from the same initial configuration.
func TestMissionSharesInitialConfiguration(t *testing.T) {
	rows, err := New(Workers(4)).Run(SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{48},
		Agents:     []int{4},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		Missions:   []Mission{"none", "explore"},
		Replicas:   2,
		Seed:       99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for rep := 0; rep < 2; rep++ {
		none, mis := rows[rep], rows[2+rep]
		if none.Seed != mis.Seed {
			t.Errorf("replica %d: job seed depends on the mission (%d vs %d)", rep, none.Seed, mis.Seed)
		}
		// Explore of the rotor completes exactly at cover time of the arcs;
		// it can never beat the node cover time.
		if mis.Err != "" || mis.MissionRounds < int64(none.Value) {
			t.Errorf("replica %d: explore finished at %d, before node cover %v (err %q)",
				rep, mis.MissionRounds, none.Value, mis.Err)
		}
	}
}

// TestPatrolStalenessBound is the registry-level acceptance claim: on
// Ring(n) with k equally spaced agents the rotor-router's measured worst
// idle interval stays within a small constant of the paper's Θ(n/k) service
// guarantee, while the random walk's is strictly larger.
func TestPatrolStalenessBound(t *testing.T) {
	const n, k = 64, 8
	spec := SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{n},
		Agents:     []int{k},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrZero},
		Missions:   []Mission{"patrol:horizon=2048"},
		Seed:       7,
	}
	rows, err := New(Workers(2)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rotor := rows[0]
	if rotor.Err != "" {
		t.Fatal(rotor.Err)
	}
	if bound := float64(3 * n / k); rotor.StalenessMax > bound {
		t.Errorf("rotor patrol staleness %v exceeds 3·n/k = %v", rotor.StalenessMax, bound)
	}
	if rotor.StalenessMean <= 0 || rotor.StalenessMean > rotor.StalenessMax {
		t.Errorf("rotor staleness mean %v outside (0, max=%v]", rotor.StalenessMean, rotor.StalenessMax)
	}
	if rotor.Value != rotor.StalenessMax {
		t.Errorf("patrol Value = %v, want StalenessMax %v", rotor.Value, rotor.StalenessMax)
	}

	walk := spec
	walk.Process = ProcWalk
	rows, err = New(Workers(2)).Run(walk)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Err != "" {
		t.Fatal(rows[0].Err)
	}
	if rows[0].StalenessMax <= rotor.StalenessMax {
		t.Errorf("walk patrol staleness %v not above rotor's %v",
			rows[0].StalenessMax, rotor.StalenessMax)
	}
}

// TestExploreReturnOnRing: closed-form checks of the predicate missions on
// the all-clockwise single-agent ring, where the rotor-router marches around
// once — explore and return both fire at exactly round n.
func TestExploreReturnOnRing(t *testing.T) {
	const n = 32
	for _, mission := range []Mission{"explore", "return"} {
		rows, err := New(Workers(1)).Run(SweepSpec{
			Topologies: []Topo{"ring"},
			Sizes:      []int{n},
			Agents:     []int{1},
			Placements: []Placement{PlaceSingle},
			Pointers:   []Pointer{PtrZero},
			Missions:   []Mission{mission},
			Seed:       1,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rows[0]
		if r.Err != "" {
			t.Fatalf("%s: %s", mission, r.Err)
		}
		if r.MissionTimeout {
			t.Fatalf("%s: unexpected timeout at %d rounds", mission, r.MissionRounds)
		}
		if r.MissionRounds != n {
			t.Errorf("%s on the all-clockwise ring finished at round %d, want %d",
				mission, r.MissionRounds, n)
		}
		if r.Rounds != r.MissionRounds || r.Value != float64(r.MissionRounds) {
			t.Errorf("%s: rounds=%d value=%v, want both equal to mission_rounds=%d",
				mission, r.Rounds, r.Value, r.MissionRounds)
		}
	}
}

// TestQuiesceMission: the rotor locks into a limit cycle and quiesce reports
// its entry with a positive period; the walk lacks configuration hashing and
// fails as a per-job capability row.
func TestQuiesceMission(t *testing.T) {
	rows, err := New(Workers(1)).Run(SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{24},
		Agents:     []int{3},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrZero},
		Missions:   []Mission{"quiesce:window=256"},
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	if r.MissionTimeout || r.Period <= 0 {
		t.Errorf("rotor quiesce: timeout=%v period=%d, want a limit-cycle entry", r.MissionTimeout, r.Period)
	}
	// The recurrence distance cannot exceed the detection window.
	if r.Period > 256 {
		t.Errorf("quiesce period %d exceeds its window", r.Period)
	}

	rows, err = New(Workers(1)).Run(SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{24},
		Agents:     []int{3},
		Process:    ProcWalk,
		Missions:   []Mission{"quiesce"},
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rows[0].Err, "does not run mission") ||
		!strings.Contains(rows[0].Err, "walk") {
		t.Errorf("walk+quiesce row error = %q, want capability failure", rows[0].Err)
	}
}

// TestMissionTimeoutRow: a mission that cannot fire within an explicit
// MaxRounds degrades into a mission_timeout row — an outcome, not an error.
func TestMissionTimeoutRow(t *testing.T) {
	rows, err := New(Workers(1)).Run(SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{32},
		Agents:     []int{1},
		Placements: []Placement{PlaceSingle},
		Pointers:   []Pointer{PtrZero},
		Missions:   []Mission{"explore"},
		MaxRounds:  8, // far below the n rounds explore needs
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Err != "" {
		t.Fatalf("timeout must not be an error row: %s", r.Err)
	}
	if !r.MissionTimeout {
		t.Fatal("mission_timeout not set")
	}
	if r.MissionRounds != 8 || r.Rounds != 8 {
		t.Errorf("timeout row rounds = %d/%d, want the explicit cap 8", r.MissionRounds, r.Rounds)
	}
	if r.Value != 0 {
		t.Errorf("timeout row carries a value %v", r.Value)
	}
}

// TestMissionSpecValidation: combinations the mission runner would silently
// ignore fail the sweep before any worker starts.
func TestMissionSpecValidation(t *testing.T) {
	base := SweepSpec{Sizes: []int{16}, Agents: []int{2}, Missions: []Mission{"explore"}}

	bad := base
	bad.Missions = []Mission{"bogus"}
	if _, err := New(Workers(1)).Run(bad); err == nil {
		t.Error("unknown mission family accepted")
	}

	ret := base
	ret.Metric = MetricReturn
	if _, err := New(Workers(1)).Run(ret); err == nil {
		t.Error("mission accepted a non-cover metric")
	}

	probed := base
	probed.Probes = []ProbeSpec{{Name: "coverage", Stride: 8}}
	if _, err := New(Workers(1)).Run(probed); err == nil {
		t.Error("mission accepted probes")
	}

	faulted := base
	faulted.Schedules = []Schedule{"edgefail:t=64"}
	if _, err := New(Workers(1)).Run(faulted); err == nil {
		t.Error("mission accepted a topology-changing schedule")
	}

	churned := base
	churned.Schedules = []Schedule{"churn:join=2@8"}
	if _, err := New(Workers(1)).Run(churned); err == nil {
		t.Error("mission accepted a population-changing schedule")
	}

	held := base
	held.Schedules = []Schedule{"delay:p=0.25", "reset:t=32"}
	if _, err := New(Workers(1)).Run(held); err != nil {
		t.Errorf("mission rejected a hold/reset schedule: %v", err)
	}
}

// TestMissionBudgetRule: predicate missions multiply the automatic budget by
// their plan factor, service missions floor it at their horizon, and an
// explicit MaxRounds is taken literally.
func TestMissionBudgetRule(t *testing.T) {
	g := mustBuildGraph(t, "ring", 32)
	auto := AutoBudget(g, ProcRotor, MetricCover)
	spec := SweepSpec{Process: ProcRotor, Metric: MetricCover}

	explore, err := parseMission("explore")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := budget(&spec, Cell{mis: explore}, g), auto*explore.plan.BudgetFactor; got != want {
		t.Errorf("explore budget = %d, want %d", got, want)
	}
	if explore.plan.BudgetFactor < 2 {
		t.Errorf("explore budget factor = %d, want >= 2", explore.plan.BudgetFactor)
	}

	huge, err := parseMission("patrol:horizon=99999999999")
	if err != nil {
		t.Fatal(err)
	}
	if got := budget(&spec, Cell{mis: huge}, g); got != 99999999999 {
		t.Errorf("patrol budget = %d, want the horizon floor", got)
	}

	spec.MaxRounds = 777
	if got := budget(&spec, Cell{mis: explore}, g); got != 777 {
		t.Errorf("explicit MaxRounds not taken literally: %d", got)
	}
}

// TestMissionObserverDetached: after a mission job the prototype instance is
// observer-free, so a cached process reused by a following replica or
// measurement cannot keep feeding the dead mission's state.
func TestMissionObserverDetached(t *testing.T) {
	rows, err := New(Workers(1)).Run(SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{24},
		Agents:     []int{2},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrZero},
		Missions:   []Mission{"explore"},
		Replicas:   3,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic cell: every replica must report the identical result
	// (replica 2+ run on the replica-1 prototype via Reset).
	for _, r := range rows[1:] {
		if r.Err != "" {
			t.Fatal(r.Err)
		}
		if r.MissionRounds != rows[0].MissionRounds || r.Value != rows[0].Value {
			t.Errorf("replica %d drifted from replica 0: rounds %d vs %d",
				r.Replica, r.MissionRounds, rows[0].MissionRounds)
		}
	}
}

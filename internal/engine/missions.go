package engine

import (
	"fmt"
	"strconv"
)

// Built-in mission families. Each is a plain RegisterMission call — the
// pattern for external families.
//
//	explore                      all edges traversed (either direction)
//	return                       explore, then the initial agent
//	                             configuration recurs (everyone home)
//	quiesce[:window=w]           configuration recurrence within a trailing
//	                             window: limit-cycle entry (lock-in)
//	patrol:horizon=r[,warmup=w]  run r rounds; report per-vertex idle-time
//	                             staleness after the warmup prefix
//	balance:horizon=r[,warmup=w] run r rounds; report visit-count fairness
//	                             after the warmup prefix
//
// All predicate state is incremental, fed by the ArcTraversalObserver and
// ConfigHasher capabilities: a round costs O(arcs moved) (O(1) for
// quiesce), never an O(E) or O(n) rescan. Missions draw no randomness.

func init() {
	RegisterMission(noneMissionDef())
	RegisterMission(exploreDef())
	RegisterMission(returnDef())
	RegisterMission(quiesceDef())
	RegisterMission(serviceDef("patrol"))
	RegisterMission(serviceDef("balance"))
}

// missionNeeds is the capability-dispatch error of mission factories,
// mirroring the metric error ("process %q does not measure %q").
func missionNeeds(procName, mission, capability string) error {
	return fmt.Errorf("engine: process %q does not run mission %q (no %s)", procName, mission, capability)
}

// noParams is the Parse of parameterless mission families.
func noParams(params string) (string, error) {
	if params != "" {
		return "", fmt.Errorf("takes no parameters (got %q)", params)
	}
	return "", nil
}

// --- none ------------------------------------------------------------------

func noneMissionDef() *MissionDef {
	return &MissionDef{
		Name:    MissionNone,
		Parse:   noParams,
		Compile: func(string) (*MissionPlan, error) { return (&MissionPlan{}).finalize(), nil },
		New: func(*MissionPlan, string, *JobEnv, Proc) (MissionState, error) {
			// Cells carrying "none" never reach the mission runner: the
			// job runs its metric under the round budget instead.
			return nil, fmt.Errorf("engine: mission %q has no runner", MissionNone)
		},
	}
}

// --- explore ---------------------------------------------------------------

// exploreState tracks which undirected edges have been traversed (in either
// direction) as a bitmap over canonical arc ids: an edge's representative
// is the smaller of its two directed arc ids, resolved in O(1) through
// Arc.RevPort. remaining counts untraversed edges, so Done is O(1).
type exploreState struct {
	env       *JobEnv
	seen      []bool // indexed by canonical (smaller) arc id
	remaining int
}

func newExploreState(env *JobEnv) *exploreState {
	return &exploreState{
		env:       env,
		seen:      make([]bool, env.Graph.NumArcs()),
		remaining: env.Graph.NumEdges(),
	}
}

func (st *exploreState) observe(v, port int, _ int64) {
	g := st.env.Graph
	id := g.ArcID(v, port)
	a := g.Arc(v, port)
	if rid := g.ArcID(a.To, a.RevPort); rid < id {
		id = rid
	}
	if !st.seen[id] {
		st.seen[id] = true
		st.remaining--
	}
}

func (st *exploreState) Observe(int64) {}
func (st *exploreState) Done() bool    { return st.remaining == 0 }
func (st *exploreState) Finish(*Row)   {}

func exploreDef() *MissionDef {
	return &MissionDef{
		Name:    "explore",
		Parse:   noParams,
		Compile: func(string) (*MissionPlan, error) { return (&MissionPlan{BudgetFactor: 4}).finalize(), nil },
		New: func(_ *MissionPlan, procName string, env *JobEnv, p Proc) (MissionState, error) {
			ao, ok := p.(ArcTraversalObserver)
			if !ok {
				return nil, missionNeeds(procName, "explore", "arc traversal observation")
			}
			st := newExploreState(env)
			ao.SetArcObserver(st.observe)
			return st, nil
		},
	}
}

// --- return ----------------------------------------------------------------

// returnState is explore plus a home check: the mission completes at the
// first round boundary where every edge has been traversed AND the agent
// configuration (as a multiset over nodes — agents are indistinguishable)
// equals the initial placement. mismatch counts nodes whose current count
// differs from their initial count, maintained from per-move deltas, so
// the check is O(1) per round. For the deterministic rotor-router the
// initial configuration recurs iff it lies on the limit cycle; transient
// starts (and random walks, whose configuration recurrence time is
// typically astronomical) end as mission_timeout rows instead.
type returnState struct {
	exploreState
	cur, init []int64
	mismatch  int
}

func newReturnState(env *JobEnv) *returnState {
	st := &returnState{exploreState: *newExploreState(env)}
	n := env.Graph.NumNodes()
	st.cur = make([]int64, n)
	st.init = make([]int64, n)
	for _, v := range env.Positions {
		st.cur[v]++
		st.init[v]++
	}
	return st
}

func (st *returnState) observe(v, port int, cnt int64) {
	st.exploreState.observe(v, port, cnt)
	st.shift(v, -cnt)
	st.shift(st.env.Graph.Neighbor(v, port), cnt)
}

func (st *returnState) shift(v int, d int64) {
	home := st.cur[v] == st.init[v]
	st.cur[v] += d
	if now := st.cur[v] == st.init[v]; now != home {
		if now {
			st.mismatch--
		} else {
			st.mismatch++
		}
	}
}

func (st *returnState) Done() bool { return st.remaining == 0 && st.mismatch == 0 }

func returnDef() *MissionDef {
	return &MissionDef{
		Name:    "return",
		Parse:   noParams,
		Compile: func(string) (*MissionPlan, error) { return (&MissionPlan{BudgetFactor: 8}).finalize(), nil },
		New: func(_ *MissionPlan, procName string, env *JobEnv, p Proc) (MissionState, error) {
			ao, ok := p.(ArcTraversalObserver)
			if !ok {
				return nil, missionNeeds(procName, "return", "arc traversal observation")
			}
			st := newReturnState(env)
			ao.SetArcObserver(st.observe)
			return st, nil
		},
	}
}

// --- quiesce ---------------------------------------------------------------

// defaultQuiesceWindow bounds the recurrence distance quiesce detects; the
// canonical spec always spells it out (like edgefail's count=1).
const defaultQuiesceWindow = int64(4096)

// maxQuiesceWindow caps the window: detection state is Θ(window) memory.
const maxQuiesceWindow = int64(1) << 24

// quiesceState detects limit-cycle entry: the mission completes at the
// first round whose configuration hash already occurred within the
// trailing window of window+1 rounds, reporting the recurrence distance as
// the period. Hash lookups make a round O(1); the window bounds memory.
// Equal hashes mean equal configurations up to a ~2^-64 collision chance —
// acceptable for a sweep column (the exact restab_time metric confirms
// cycles by full state comparison where certainty matters).
type quiesceState struct {
	hasher ConfigHasher
	window int64
	seen   map[uint64]int64 // hash -> round, for the trailing window
	ring   []uint64         // circular eviction buffer, len window+1
	done   bool
	period int64
}

func (st *quiesceState) record(round int64, h uint64) {
	idx := int(round % int64(len(st.ring)))
	if round >= int64(len(st.ring)) {
		delete(st.seen, st.ring[idx])
	}
	st.ring[idx] = h
	st.seen[h] = round
}

func (st *quiesceState) Observe(round int64) {
	h := st.hasher.ConfigHash()
	if prev, ok := st.seen[h]; ok {
		st.done = true
		st.period = round - prev
		return
	}
	st.record(round, h)
}

func (st *quiesceState) Done() bool { return st.done }

func (st *quiesceState) Finish(row *Row) { row.Period = st.period }

func quiesceDef() *MissionDef {
	parse := func(params string) (string, error) {
		kv, err := kvPairs(params, map[string]string{"window": "rounds"})
		if err != nil {
			return "", err
		}
		w := defaultQuiesceWindow
		if v, ok := kv["window"]; ok {
			if w, err = roundValue("window", v); err != nil {
				return "", err
			}
			if w > maxQuiesceWindow {
				return "", fmt.Errorf("window=%d exceeds the maximum %d", w, maxQuiesceWindow)
			}
		}
		return fmt.Sprintf("window=%d", w), nil
	}
	return &MissionDef{
		Name:  "quiesce",
		Parse: parse,
		Compile: func(canon string) (*MissionPlan, error) {
			kv, err := kvPairs(canon, map[string]string{"window": "rounds"})
			if err != nil {
				return nil, err
			}
			w, err := roundValue("window", kv["window"])
			if err != nil {
				return nil, err
			}
			return (&MissionPlan{Window: w, BudgetFactor: 4}).finalize(), nil
		},
		New: func(plan *MissionPlan, procName string, _ *JobEnv, p Proc) (MissionState, error) {
			h, ok := p.(ConfigHasher)
			if !ok {
				return nil, missionNeeds(procName, "quiesce", "configuration hashing")
			}
			st := &quiesceState{
				hasher: h,
				window: plan.Window,
				seen:   make(map[uint64]int64, plan.Window+1),
				ring:   make([]uint64, plan.Window+1),
			}
			st.record(0, h.ConfigHash()) // a run may start on its cycle
			return st, nil
		},
	}
}

// --- patrol / balance ------------------------------------------------------

// serviceParams parses the shared horizon=r[,warmup=w] grammar of the
// service missions. warmup defaults to horizon/2 (stabilization before
// measurement); an explicit warmup (0 allowed: measure from the start)
// must stay below the horizon.
func serviceParams(params string) (horizon, warmup int64, canon string, err error) {
	kv, err := kvPairs(params, map[string]string{"horizon": "rounds", "warmup": "rounds"})
	if err != nil {
		return 0, 0, "", err
	}
	v, ok := kv["horizon"]
	if !ok {
		return 0, 0, "", fmt.Errorf("missing horizon=<rounds>")
	}
	if horizon, err = roundValue("horizon", v); err != nil {
		return 0, 0, "", err
	}
	canon = fmt.Sprintf("horizon=%d", horizon)
	warmup = horizon / 2
	if v, ok := kv["warmup"]; ok {
		w, perr := strconv.ParseInt(v, 10, 64)
		if perr != nil || w < 0 {
			return 0, 0, "", fmt.Errorf("warmup=%s: want a non-negative round number", v)
		}
		if w >= horizon {
			return 0, 0, "", fmt.Errorf("warmup=%d must be below horizon=%d", w, horizon)
		}
		warmup = w
		canon += fmt.Sprintf(",warmup=%d", w)
	}
	return horizon, warmup, canon, nil
}

// patrolState measures per-vertex idle intervals over (warmup, horizon]:
// maxGap[v] is the longest stretch v went unvisited, the paper's service
// guarantee (Θ(n/k) on the ring for the rotor-router after stabilization).
// Every vertex is treated as visited at the warmup boundary, and Finish
// closes open gaps at the horizon, so never-visited vertices report the
// full measurement window.
type patrolState struct {
	env      *JobEnv
	horizon  int64
	warmup   int64
	round    int64 // last observed round; arrivals below happen in round+1
	lastSeen []int64
	maxGap   []int64
}

func (st *patrolState) observe(v, port int, _ int64) {
	r := st.round + 1
	if r <= st.warmup {
		return
	}
	dest := st.env.Graph.Neighbor(v, port)
	if st.lastSeen[dest] == r {
		return // already seen this round
	}
	if gap := r - st.lastSeen[dest]; gap > st.maxGap[dest] {
		st.maxGap[dest] = gap
	}
	st.lastSeen[dest] = r
}

func (st *patrolState) Observe(round int64) { st.round = round }
func (st *patrolState) Done() bool          { return st.round >= st.horizon }

func (st *patrolState) Finish(row *Row) {
	var max int64
	var sum float64
	for v := range st.lastSeen {
		g := st.maxGap[v]
		if tail := st.horizon - st.lastSeen[v]; tail > g {
			g = tail
		}
		if g > max {
			max = g
		}
		sum += float64(g)
	}
	row.StalenessMax = float64(max)
	row.StalenessMean = sum / float64(len(st.lastSeen))
	row.Value = row.StalenessMax
}

// balanceState accumulates per-vertex arrival counts over (warmup, horizon]
// and reports their spread: fairness = max/min visit counts (0 when some
// vertex was never visited), the load-balance quality of the process as a
// token-distribution service.
type balanceState struct {
	env     *JobEnv
	horizon int64
	warmup  int64
	round   int64
	visits  []int64
}

func (st *balanceState) observe(v, port int, cnt int64) {
	if st.round+1 <= st.warmup {
		return
	}
	st.visits[st.env.Graph.Neighbor(v, port)] += cnt
}

func (st *balanceState) Observe(round int64) { st.round = round }
func (st *balanceState) Done() bool          { return st.round >= st.horizon }

func (st *balanceState) Finish(row *Row) {
	min, max := st.visits[0], st.visits[0]
	for _, c := range st.visits[1:] {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	row.MinVisits, row.MaxVisits = min, max
	if min > 0 {
		row.Fairness = float64(max) / float64(min)
	}
	row.Value = row.Fairness
}

func serviceDef(name string) *MissionDef {
	return &MissionDef{
		Name: name,
		Parse: func(params string) (string, error) {
			_, _, canon, err := serviceParams(params)
			return canon, err
		},
		Compile: func(canon string) (*MissionPlan, error) {
			h, w, _, err := serviceParams(canon)
			if err != nil {
				return nil, err
			}
			return (&MissionPlan{Horizon: h, Warmup: w, BudgetFactor: 1}).finalize(), nil
		},
		New: func(plan *MissionPlan, procName string, env *JobEnv, p Proc) (MissionState, error) {
			ao, ok := p.(ArcTraversalObserver)
			if !ok {
				return nil, missionNeeds(procName, name, "arc traversal observation")
			}
			n := env.Graph.NumNodes()
			if name == "balance" {
				st := &balanceState{env: env, horizon: plan.Horizon, warmup: plan.Warmup, visits: make([]int64, n)}
				ao.SetArcObserver(st.observe)
				return st, nil
			}
			st := &patrolState{
				env:      env,
				horizon:  plan.Horizon,
				warmup:   plan.Warmup,
				lastSeen: make([]int64, n),
				maxGap:   make([]int64, n),
			}
			for v := range st.lastSeen {
				st.lastSeen[v] = plan.Warmup
			}
			ao.SetArcObserver(st.observe)
			return st, nil
		},
	}
}

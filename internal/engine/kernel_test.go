package engine

import (
	"encoding/json"
	"fmt"
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/graph"
)

// TestKernelNeverAffectsRotorResults runs the same rotor sweep on every
// kernel tier and asserts byte-identical rows: the specialized kernels are
// bit-identical to the generic engine, and the Kernel knob deliberately
// stays out of seed derivation.
func TestKernelNeverAffectsRotorResults(t *testing.T) {
	spec := SweepSpec{
		Topology:   "ring",
		Sizes:      []int{24, 48},
		Agents:     []int{1, 6, 96},
		Placements: []Placement{PlaceSingle, PlaceEqual, PlaceRandom},
		Pointers:   []Pointer{PtrNegative, PtrRandom},
		Replicas:   2,
		Seed:       11,
	}
	marshal := func(k Kernel) string {
		spec.Kernel = k
		rows, err := New(Workers(2)).Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	auto, generic, fast := marshal(KernelAuto), marshal(KernelGeneric), marshal(KernelFast)
	if auto != generic || generic != fast {
		t.Fatal("kernel selection changed sweep results")
	}
	if par := marshal(KernelParallel); par != fast {
		t.Fatal("parallel kernel changed sweep results")
	}

	// Return-time metric exercises cycle detection (hash-enabled clones).
	spec.Metric = MetricReturn
	spec.Agents = []int{3, 24}
	spec.Placements = []Placement{PlaceEqual}
	spec.Pointers = []Pointer{PtrNegative}
	if g, f := marshal(KernelGeneric), marshal(KernelFast); g != f {
		t.Fatal("kernel selection changed return-time results")
	}
}

// TestWalkReuseMatchesFreshWalks pins the trial-reuse optimization: a
// replica-heavy walk sweep must produce the same rows whether a worker
// reuses one Walk via Reseed+Reset (many replicas per worker) or builds
// each from scratch (one worker per replica cannot be forced, so compare
// 1 worker — maximal reuse — against a fresh single-replica sweep per
// replica index).
func TestWalkReuseMatchesFreshWalks(t *testing.T) {
	base := SweepSpec{
		Topology:   "ring",
		Sizes:      []int{32},
		Agents:     []int{4},
		Placements: []Placement{PlaceEqual},
		Process:    ProcWalk,
		Replicas:   6,
		Seed:       5,
	}
	reused, err := New(Workers(1)).Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(reused) != 6 {
		t.Fatalf("got %d rows", len(reused))
	}
	// Replica seeds derive from configuration values only, so a fresh
	// engine per run reproduces each row independently.
	for i, row := range reused {
		fresh, err := New(Workers(1)).Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if fresh[i].Value != row.Value || fresh[i].Seed != row.Seed {
			t.Fatalf("replica %d: reused %v (seed %d) vs fresh %v (seed %d)",
				i, row.Value, row.Seed, fresh[i].Value, fresh[i].Seed)
		}
	}
}

// TestKernelSystemsUnderMap runs specialized-kernel systems concurrently on
// the generic Map pool; under `go test -race` this verifies the kernels
// share no hidden mutable state (the Stepper singletons must be stateless).
func TestKernelSystemsUnderMap(t *testing.T) {
	g := graph.Ring(96)
	covers, err := Map(8, 32, func(i int) (int64, error) {
		k := 12 + i
		sys, err := core.NewSystem(g,
			core.WithAgentsAt(core.EquallySpaced(96, k)...),
			core.WithKernelMode(core.KernelFast))
		if err != nil {
			return 0, err
		}
		if name := sys.KernelName(); name != "ring" {
			return 0, fmt.Errorf("kernel %q, want ring", name)
		}
		return sys.RunUntilCovered(1 << 20)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Same workload sequentially must agree exactly.
	for i, want := range covers {
		k := 12 + i
		sys, err := core.NewSystem(g,
			core.WithAgentsAt(core.EquallySpaced(96, k)...),
			core.WithKernelMode(core.KernelFast))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys.RunUntilCovered(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("k=%d: parallel cover %d vs sequential %d", k, want, got)
		}
	}
}

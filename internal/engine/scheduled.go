package engine

import (
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/xrand"
	"rotorring/probe"
)

// scheduledProc is the schedule runner: it wraps a job's process instance
// and applies the cell's compiled SchedulePlan while stepping — discrete
// events (edge failure/repair, churn, pointer resets) fire at their
// planned rounds, and the delayed-deployment regime turns rounds into
// StepHeld rounds with per-agent Binomial hold draws. Between events the
// wrapper hands whole chunks to the inner process's hot path — plain
// stretches via RunUntilCovered / Run, hold-regime stretches via runHeld,
// whose rounds dispatch to the fused held kernels — so both regimes run
// specialized, bit-identically to an unscheduled run of the same
// configuration where the regimes coincide.
//
// Every seed-dependent choice is drawn from the job's schedule stream
// (scheduleSeedOf), never from worker identity; hold draws come from their
// own counter-based sub-stream (helddraw.go) keyed by (round, node), so
// neither worker counts nor chunk boundaries can shift them. Reset restores
// the pristine topology and initial configuration and rewinds the plan
// cursor and the streams, so cached prototypes stay reusable across
// replicas.
type scheduledProc struct {
	inner Proc
	plan  *SchedulePlan
	spec  string // canonical schedule spec, for error messages

	n        int // node count (constant across rewires)
	seed     uint64
	rng      *xrand.Rand
	draw     *heldDraw // hold-draw stream; nil when the plan has no hold regime
	pristine *graph.Graph
	cur      *graph.Graph
	toOld    [][]int32 // current port -> pristine port; nil when cur == pristine
	deleted  []bool    // deleted edges, by pristine arc id; nil until first failure
	next     int       // next plan event to apply
	held     []int64   // hold-draw scratch, node-indexed
}

// newScheduledProc wraps p with the schedule runner for inst. It fails —
// producing a per-job error row — when the plan needs a capability the
// process lacks.
func newScheduledProc(p Proc, procName string, inst schedInstance, env *JobEnv) (*scheduledProc, error) {
	plan := inst.plan
	need := func(ok bool, what string) error {
		if ok {
			return nil
		}
		return fmt.Errorf("engine: process %q does not support schedule %q (%s)",
			procName, inst.canonical, what)
	}
	if plan.HoldP > 0 {
		if _, ok := p.(Holder); !ok {
			return nil, need(false, "held rounds")
		}
	}
	for _, ev := range plan.Events {
		var err error
		switch ev.Kind {
		case EvEdgeFail, EvRepair:
			_, ok := p.(Rewirer)
			err = need(ok, "topology rewiring")
		case EvJoin:
			_, ok := p.(AgentJoiner)
			err = need(ok, "agent arrival")
		case EvLeave:
			_, okL := p.(AgentLeaver)
			_, okP := p.(probe.Positioner)
			err = need(okL && okP, "agent departure")
		case EvReset:
			_, ok := p.(PointerSetter)
			err = need(ok, "pointer reset")
		default:
			err = fmt.Errorf("engine: schedule %q: unknown event kind %v", inst.canonical, ev.Kind)
		}
		if err != nil {
			return nil, err
		}
	}
	seed := scheduleSeedOf(env.Seed, inst.canonical)
	sp := &scheduledProc{
		inner:    p,
		plan:     plan,
		spec:     inst.canonical,
		n:        env.Graph.NumNodes(),
		seed:     seed,
		rng:      xrand.New(seed),
		pristine: env.Graph,
		cur:      env.Graph,
	}
	if plan.HoldP > 0 {
		sp.draw = newHeldDraw(plan.HoldP, heldSeedOf(seed))
	}
	return sp, nil
}

// --- Proc surface ---------------------------------------------------------

func (sp *scheduledProc) Round() int64 { return sp.inner.Round() }
func (sp *scheduledProc) Covered() int { return sp.inner.Covered() }

// Step advances one round under the schedule: due events fire first, then
// the round runs held (hold regime) or plain.
func (sp *scheduledProc) Step() {
	sp.applyDue()
	if sp.holdActive() {
		sp.stepHeld()
		return
	}
	sp.inner.Step()
}

// Reset restores the initial configuration — pristine topology, initial
// agents and pointers (the inner Reset undoes rewires and churn) — and
// rewinds the plan cursor and the schedule stream.
func (sp *scheduledProc) Reset() {
	sp.inner.Reset()
	sp.next = 0
	sp.cur, sp.toOld = sp.pristine, nil
	for i := range sp.deleted {
		sp.deleted[i] = false
	}
	sp.rng.Reseed(sp.seed)
}

// Reseed implements Reseeder: the schedule stream follows the new job seed
// (cached prototypes are reseeded before each replica's Reset), and an
// inner randomized process is reseeded too.
func (sp *scheduledProc) Reseed(seed uint64) {
	if r, ok := sp.inner.(Reseeder); ok {
		r.Reseed(seed)
	}
	sp.seed = scheduleSeedOf(seed, sp.spec)
	sp.rng.Reseed(sp.seed)
	if sp.draw != nil {
		sp.draw.reseed(heldSeedOf(sp.seed))
	}
}

// --- capability forwarding ------------------------------------------------
// The wrapper forwards only the observation capabilities built-in probes
// dispatch on (they observe the wrapper, and observation never feeds
// measured values). Everything measurement-critical — CoverageResetter,
// RestabMeasurer, VisitCounter, AgentCounter, Cloner — is deliberately NOT
// re-implemented here: metrics and the conformance suite assert those on
// measureTarget(p), so a schedule runner can never fabricate a capability
// its inner process lacks, and missing capabilities keep failing as
// per-job rows.

// measureTarget returns the instance capability assertions should dispatch
// on: the process behind the schedule runner, or p itself.
func measureTarget(p Proc) Proc {
	if sp, ok := p.(*scheduledProc); ok {
		return sp.inner
	}
	return p
}

func (sp *scheduledProc) Positions() []int {
	if p, ok := sp.inner.(probe.Positioner); ok {
		return p.Positions()
	}
	return nil
}

func (sp *scheduledProc) NumDomains() (int, error) {
	if d, ok := sp.inner.(probe.DomainCounter); ok {
		return d.NumDomains()
	}
	return 0, fmt.Errorf("engine: process does not count domains")
}

// cloneScheduled returns an independent deep copy of the wrapper and its
// inner process (including the schedule stream). The inner process must
// implement Cloner — callers check measureTarget(p).(Cloner) first.
func (sp *scheduledProc) cloneScheduled() Proc {
	cp := *sp
	cp.inner = sp.inner.(Cloner).CloneProc()
	cp.rng = sp.rng.Clone()
	if sp.draw != nil {
		cp.draw = sp.draw.clone()
	}
	cp.deleted = append([]bool(nil), sp.deleted...)
	cp.held = nil
	return &cp
}

// cloneProc deep-copies any process whose measurement target implements
// Cloner, preserving an active schedule runner around the copy.
func cloneProc(p Proc) Proc {
	if sp, ok := p.(*scheduledProc); ok {
		return sp.cloneScheduled()
	}
	return p.(Cloner).CloneProc()
}

// --- scheduled stepping ---------------------------------------------------

// holdActive reports whether the delayed-deployment regime applies to the
// next round.
func (sp *scheduledProc) holdActive() bool {
	return sp.plan.HoldP > 0 && sp.inner.Round() < sp.plan.HoldUntil
}

// nextEventRound returns the round of the next unapplied event, or target
// when no event is due before it.
func (sp *scheduledProc) nextEventRound(target int64) int64 {
	if sp.next < len(sp.plan.Events) && sp.plan.Events[sp.next].Round < target {
		return sp.plan.Events[sp.next].Round
	}
	return target
}

// applyDue fires every event planned at or before the current round.
func (sp *scheduledProc) applyDue() {
	for sp.next < len(sp.plan.Events) && sp.plan.Events[sp.next].Round <= sp.inner.Round() {
		sp.apply(sp.plan.Events[sp.next])
		sp.next++
	}
}

// stepHeld runs one delayed-deployment round: each agent at an occupied
// node is held with probability HoldP (one Binomial draw per node, from the
// counter-based hold stream keyed by round and node), and the round executes
// on the process's held path — the fused held kernels on ring and path
// shapes.
//
// The draw pass writes every occupied node unconditionally (zero draws
// included), so entries for nodes occupied this round are always fresh;
// stale nonzero entries can only remain at nodes that emptied since their
// last draw, where every held path clamps them against a zero population.
func (sp *scheduledProc) stepHeld() {
	h := sp.inner.(Holder)
	if sp.held == nil {
		sp.held = make([]int64, sp.n)
	}
	base := sp.draw.roundBase(sp.inner.Round())
	if cv, ok := sp.inner.(CountsViewer); ok {
		// Fast path: one flat pass over the counts view, no per-node
		// dispatch. The view goes stale at every step, so it is re-fetched
		// each round. Values are identical to the fallback's, node by node.
		sp.draw.fill(sp.held, cv.AgentCountsView(), base)
	} else {
		held := sp.held
		h.ForEachOccupied(func(v int, agents int64) {
			held[v] = sp.draw.draw(base, v, agents)
		})
	}
	h.StepHeld(sp.held)
}

// runHeld is the hold-regime chunk runner: it advances held rounds until
// target, the next plan event, the regime's end, or (when stopCovered) full
// coverage — whichever comes first. The loop body is the scheduled hot
// path: one draw pass and one held round, no event scans. Callers applyDue
// first, so the chunk bound is strictly ahead and progress is guaranteed.
func (sp *scheduledProc) runHeld(target int64, stopCovered bool) {
	bound := sp.nextEventRound(target)
	if sp.plan.HoldUntil < bound {
		bound = sp.plan.HoldUntil
	}
	for sp.inner.Round() < bound {
		if stopCovered && sp.inner.Covered() == sp.n {
			return
		}
		sp.stepHeld()
	}
}

// RunUntilCovered implements CoverRunner with absolute-round semantics: the
// hot inner loop runs in chunks bounded by the next event round — plain
// stretches on the inner runner, hold-regime stretches on runHeld — and
// observers chunk further on top (the metric's probe runner calls with
// growing targets, exactly as for an unscheduled job), so probes sample
// seamlessly across fault epochs.
func (sp *scheduledProc) RunUntilCovered(maxRounds int64) (int64, error) {
	cr, ok := sp.inner.(CoverRunner)
	if !ok {
		return 0, fmt.Errorf("engine: scheduled process does not run to coverage")
	}
	for {
		sp.applyDue()
		if sp.holdActive() {
			if sp.inner.Covered() == sp.n {
				// Covered: fetch the cover round without stepping (the
				// inner runner returns it immediately on a covered system).
				return cr.RunUntilCovered(sp.inner.Round())
			}
			if sp.inner.Round() >= maxRounds {
				// Out of budget: let the inner runner build the canonical
				// ErrNotCovered error.
				return cr.RunUntilCovered(maxRounds)
			}
			sp.runHeld(maxRounds, true)
			continue
		}
		t, err := cr.RunUntilCovered(sp.nextEventRound(maxRounds))
		if err == nil {
			return t, nil
		}
		if sp.inner.Round() >= maxRounds {
			return t, err
		}
		// Stopped at an event boundary: fire it and continue.
	}
}

// RunTo advances the schedule to the given absolute round (events at that
// round included), using the inner bulk path between events.
func (sp *scheduledProc) RunTo(target int64) {
	for sp.inner.Round() < target {
		sp.applyDue()
		if sp.holdActive() {
			sp.runHeld(target, false)
			continue
		}
		rounds := sp.nextEventRound(target) - sp.inner.Round()
		if rounds <= 0 {
			// The next event is due now; loop back to fire it.
			rounds = 1
		}
		if br, ok := sp.inner.(BulkRunner); ok {
			br.Run(rounds)
		} else {
			for i := int64(0); i < rounds; i++ {
				sp.inner.Step()
			}
		}
	}
	sp.applyDue()
}

// RunToFault implements FaultRunner: advance through the plan until every
// discrete perturbation has been applied.
func (sp *scheduledProc) RunToFault() int64 {
	if sp.plan.FaultRound < 0 {
		return -1
	}
	sp.RunTo(sp.plan.FaultRound)
	return sp.plan.FaultRound
}

// --- event application ----------------------------------------------------

// apply fires one event. Application is clamped, never failing: a plan that
// asks for more failures or departures than the graph or population can
// give applies as many as exist.
func (sp *scheduledProc) apply(ev ScheduleEvent) {
	switch ev.Kind {
	case EvEdgeFail:
		sp.failEdges(ev.Count)
	case EvRepair:
		sp.repair()
	case EvJoin:
		positions := core.RandomPositions(sp.n, ev.Count, sp.rng)
		// Positions are in range by construction; the join cannot fail.
		_ = sp.inner.(AgentJoiner).AddAgents(positions...)
	case EvLeave:
		sp.leave(ev.Count)
	case EvReset:
		_ = sp.inner.(PointerSetter).SetPointers(make([]int, sp.n))
	}
}

// leave removes up to count agents, chosen uniformly without replacement
// from the current population — clamped so at least one agent survives.
func (sp *scheduledProc) leave(count int) {
	pos := sp.inner.(probe.Positioner).Positions()
	if count > len(pos)-1 {
		count = len(pos) - 1
	}
	if count <= 0 {
		return
	}
	picks := make([]int, 0, count)
	m := len(pos)
	for i := 0; i < count; i++ {
		j := sp.rng.Intn(m)
		picks = append(picks, pos[j])
		pos[j] = pos[m-1]
		m--
	}
	// Picks are currently-held positions, so the removal cannot fail.
	_ = sp.inner.(AgentLeaver).RemoveAgents(picks...)
}

// failEdges deletes up to count edges, one at a time: each pick is a
// uniformly chosen non-bridge edge of the current graph (so the graph stays
// connected), bridges recomputed after every deletion. Fewer candidates
// than count means fewer deletions.
func (sp *scheduledProc) failEdges(count int) {
	for i := 0; i < count; i++ {
		bridges := sp.cur.Bridges()
		// Candidate edges, one arc per undirected edge, in canonical
		// (node, port) order so the uniform pick is reproducible.
		type arc struct{ v, p int }
		var cands []arc
		for v := 0; v < sp.n; v++ {
			for p := 0; p < sp.cur.Degree(v); p++ {
				if sp.cur.Neighbor(v, p) > v && !bridges[sp.cur.ArcID(v, p)] {
					cands = append(cands, arc{v, p})
				}
			}
		}
		if len(cands) == 0 {
			return // tree: every remaining edge is a bridge
		}
		pick := cands[sp.rng.Intn(len(cands))]
		// Translate the current-graph port to its pristine arc id and mark
		// the edge deleted there, so repair can restore everything at once.
		if sp.deleted == nil {
			sp.deleted = make([]bool, sp.pristine.NumArcs())
		}
		sp.deleted[sp.pristine.ArcID(pick.v, sp.toOldPort(pick.v, pick.p))] = true
		sp.rewire()
	}
}

// repair restores every deleted edge: the current graph becomes the
// pristine one again.
func (sp *scheduledProc) repair() {
	for i := range sp.deleted {
		sp.deleted[i] = false
	}
	sp.rewire()
}

// toOldPort maps a current-graph port of v back to the pristine port.
func (sp *scheduledProc) toOldPort(v, p int) int {
	if sp.toOld == nil {
		return p
	}
	return int(sp.toOld[v][p])
}

// rewire rebuilds the current graph from the pristine one and the deleted
// set, transplants the pointers, and swaps the topology under the process.
func (sp *scheduledProc) rewire() {
	ng, toOld := sp.pristine, [][]int32(nil)
	if sp.anyDeleted() {
		var err error
		// Deletions are non-bridges of the graph they were picked on, so
		// the masked graph is connected by construction.
		ng, toOld, err = graph.MaskEdges(sp.pristine, sp.deleted)
		if err != nil {
			panic(fmt.Sprintf("engine: schedule %q: %v", sp.spec, err))
		}
	}
	ptrs := sp.transplant(ng, toOld)
	if err := sp.inner.(Rewirer).Rewire(ng, ptrs); err != nil {
		panic(fmt.Sprintf("engine: schedule %q: %v", sp.spec, err))
	}
	sp.cur, sp.toOld = ng, toOld
}

func (sp *scheduledProc) anyDeleted() bool {
	for _, d := range sp.deleted {
		if d {
			return true
		}
	}
	return false
}

// transplant maps the current pointer vector onto the new graph: each
// pointer follows its pristine port, and a pointer whose port disappeared
// advances to the next surviving port in cyclic order — the natural rotor
// semantics of a vanished arc. Pointer-less processes get nil.
func (sp *scheduledProc) transplant(ng *graph.Graph, newToOld [][]int32) []int {
	pv, ok := sp.inner.(PointerVector)
	if !ok {
		return nil
	}
	cur := pv.Pointers()
	ptrs := make([]int, sp.n)
	for v := 0; v < sp.n; v++ {
		q := sp.toOldPort(v, cur[v]) // pristine port of the current pointer
		if newToOld == nil {
			ptrs[v] = q // full pristine graph: ports map identically
			continue
		}
		d0 := sp.pristine.Degree(v)
		newOf := make([]int, d0)
		for i := range newOf {
			newOf[i] = -1
		}
		for np, op := range newToOld[v] {
			newOf[op] = np
		}
		ptrs[v] = 0
		for i := 0; i < d0; i++ {
			if np := newOf[(q+i)%d0]; np >= 0 {
				ptrs[v] = np
				break
			}
		}
	}
	return ptrs
}

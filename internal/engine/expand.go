package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// This file exports the engine's job model for external schedulers: a sweep
// expands to a flat list of jobs (one replica of one cell) whose seeds and
// results depend only on the spec, never on who runs them or in what order.
// Engine.Run is itself a client of this API, so a distributed scheduler (see
// internal/service) that shards the job range across machines or interleaves
// many sweeps on one pool computes exactly the rows — and, through RowBytes,
// exactly the bytes — a single-process Run would.

// ExpandedSweep is a normalized sweep with its expanded job grid and the
// sweep-scoped shared graph cache. Jobs are numbered 0..NumJobs()-1 in
// canonical order (cell index major, replica minor); any partition of that
// range across any number of JobRunners yields the same rows.
type ExpandedSweep struct {
	spec   SweepSpec
	cells  []Cell
	graphs *graphCache
}

// Expand validates and normalizes spec and expands its canonical job grid.
// It fails fast on any invalid spec — unknown registry names, malformed
// topology or schedule specs, impossible metric/schedule combinations — so
// no job of an accepted sweep can fail for spec-level reasons.
func Expand(spec SweepSpec) (*ExpandedSweep, error) {
	norm, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	return &ExpandedSweep{spec: norm, cells: norm.expand(), graphs: newGraphCache()}, nil
}

// Spec returns the normalized spec (defaults filled, names canonicalized).
func (e *ExpandedSweep) Spec() SweepSpec { return e.spec }

// NumCells returns the number of grid cells.
func (e *ExpandedSweep) NumCells() int { return len(e.cells) }

// Replicas returns the normalized replica count (>= 1).
func (e *ExpandedSweep) Replicas() int { return e.spec.Replicas }

// NumJobs returns the total job count: cells times replicas.
func (e *ExpandedSweep) NumJobs() int { return len(e.cells) * e.spec.Replicas }

// Job maps a job index to its cell and replica number.
func (e *ExpandedSweep) Job(job int) (Cell, int) {
	return e.cells[job/e.spec.Replicas], job % e.spec.Replicas
}

// JobSeed returns the derived seed of one job — a pure function of the base
// seed and the job's configuration coordinates, never of its grid index, so
// enlarging or reordering the grid preserves the seeds (and therefore the
// bytes) of every pre-existing configuration.
func (e *ExpandedSweep) JobSeed(job int) uint64 {
	c, replica := e.Job(job)
	return jobSeed(e.spec.Seed, c, replica)
}

// JobKey returns the content-address preimage of one job: a canonical
// string spelling out every input that can influence the job's row bytes
// except the cell's grid index. Two jobs — in different sweeps, different
// grid shapes, different servers — with equal JobKeys produce rows that
// differ at most in the positional "cell" field. Row caches key on (a
// digest of) this string; the "rowcache/v3" prefix versions the derivation
// so a future change to row content or seed derivation invalidates old
// entries instead of serving stale bytes.
func (e *ExpandedSweep) JobKey(job int) string {
	c, replica := e.Job(job)
	probes := make([]string, len(e.spec.Probes))
	for i, p := range e.spec.Probes {
		probes[i] = fmt.Sprintf("%s:%d", p.Name, p.Stride)
	}
	// The graph seed is derived from the base seed for seeded families
	// (rr, shuffled); folding it in keeps the key honest even under a
	// job-seed collision between two base seeds.
	var gseed uint64
	if c.inst.def.Seeded {
		gseed = graphSeedOf(e.spec.Seed, c.Spec)
	}
	return strings.Join([]string{
		// v2: the mission component joined the preimage (mission-less jobs
		// keep distinct keys from their v1 forms, which is the point of the
		// version bump — row bytes themselves are unchanged for them).
		// v3: the hold-draw stream became a pure counter-based function of
		// (schedule seed, round, node) — helddraw.go — instead of consuming
		// the sequential event stream in occupied order. Rows of schedules
		// with a hold regime (delay) changed bytes; every other row is
		// byte-identical, but the bump invalidates all cached entries rather
		// than distinguishing the two.
		"rowcache/v3",
		"topo=" + c.Topology,
		"spec=" + c.Spec,
		fmt.Sprintf("n=%d", c.N),
		fmt.Sprintf("k=%d", c.K),
		"sched=" + c.Schedule,
		"mission=" + c.Mission,
		"place=" + c.Placement.String(),
		"ptr=" + c.Pointer.String(),
		"proc=" + e.spec.Process,
		"metric=" + e.spec.Metric,
		"kernel=" + e.spec.Kernel.String(),
		fmt.Sprintf("maxrounds=%d", e.spec.MaxRounds),
		"probes=" + strings.Join(probes, ","),
		fmt.Sprintf("replica=%d", replica),
		fmt.Sprintf("seed=%d", e.JobSeed(job)),
		fmt.Sprintf("gseed=%d", gseed),
	}, "|")
}

// NewRunner returns a job runner backed by this sweep's shared graph cache.
// A runner reuses prototype process instances across consecutive jobs and
// is therefore not safe for concurrent use: create one per goroutine (they
// all share the graph cache, which is).
func (e *ExpandedSweep) NewRunner() *JobRunner {
	return &JobRunner{e: e, w: newWorker(e.graphs)}
}

// JobRunner executes jobs of one expanded sweep. Which runner executes a
// job never affects the row: seeds come from JobSeed, graphs from the
// shared deterministic cache, and prototype reuse is restricted to cells
// where a Reset instance is equivalent to a fresh build.
type JobRunner struct {
	e *ExpandedSweep
	w *worker
}

// Run executes one job and returns its row.
func (r *JobRunner) Run(job int) Row {
	c, replica := r.e.Job(job)
	return r.w.runJob(&r.e.spec, c, replica)
}

// RowBytes returns the canonical serialized form of one row: the exact
// bytes the JSONL sink emits for it, trailing newline included. Every
// byte-identity contract in this repository — across worker counts, across
// the service's shards, across cache hits and server restarts — is stated
// in terms of this encoding.
func RowBytes(r Row) ([]byte, error) {
	b, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeRow parses bytes produced by RowBytes. The round trip is
// byte-stable: RowBytes(DecodeRow(b)) == b for any b RowBytes produced
// (encoding/json renders float64 in shortest round-trip form), which is
// what lets the row cache store index-free rows and re-materialize them
// under a new grid position without risking a byte of drift.
func DecodeRow(b []byte) (Row, error) {
	var r Row
	dec := json.NewDecoder(bytes.NewReader(b))
	if err := dec.Decode(&r); err != nil {
		return Row{}, fmt.Errorf("engine: decode row: %w", err)
	}
	return r, nil
}

package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"rotorring/internal/stats"
	"rotorring/probe"
)

// Row is the result of one job (one replica of one cell). Rows reach the
// sinks in canonical order — cell index, then replica — independent of
// worker count, so serialized sink output is byte-identical across runs.
// Rows deliberately carry no wall-clock fields.
type Row struct {
	Cell
	Placement string `json:"placement"`
	Pointer   string `json:"pointer,omitempty"` // empty for walks
	Process   string `json:"process"`
	Metric    string `json:"metric"`
	Replica   int    `json:"replica"`
	Seed      uint64 `json:"seed"`

	// Edges and MaxDegree describe the job's graph, read off the cached
	// instance (absent on rows whose graph failed to build). Together with
	// the cell's resolved spec they make cross-topology output
	// self-describing. JSONL only — the CSV sink keeps its fixed column
	// set.
	Edges     int `json:"edges,omitempty"`
	MaxDegree int `json:"max_degree,omitempty"`

	// Value is the measured metric: cover time for MetricCover, return
	// time (rotor) or mean inter-visit gap (walk) for MetricReturn.
	Value float64 `json:"value"`
	// Rounds is the number of rounds the run executed.
	Rounds int64 `json:"rounds"`
	// Period is only set by MetricReturn: the limit-cycle length for
	// rotor rows, the worst observed inter-visit gap for walk rows.
	Period int64 `json:"period,omitempty"`
	// MinVisits/MaxVisits are per-node visit extremes within one period
	// (rotor MetricReturn only).
	MinVisits int64 `json:"minVisits,omitempty"`
	MaxVisits int64 `json:"maxVisits,omitempty"`
	// MissionRounds is the round count of a mission cell: the round its
	// predicate fired or its horizon elapsed (or the budget ran out, for a
	// timeout row). Mission fields are JSONL-only — the CSV sink keeps its
	// fixed column set — and all omitempty, so mission-less rows are
	// byte-identical to rows from before missions existed.
	MissionRounds int64 `json:"mission_rounds,omitempty"`
	// MissionTimeout marks a mission that exhausted its round budget
	// before completing: an outcome, not an error (a random walk asked to
	// "return" is expected to time out).
	MissionTimeout bool `json:"mission_timeout,omitempty"`
	// StalenessMax/StalenessMean are the patrol mission's per-vertex
	// idle-interval extremes after stabilization — the paper's Θ(n/k)
	// service guarantee as measured columns.
	StalenessMax  float64 `json:"staleness_max,omitempty"`
	StalenessMean float64 `json:"staleness_mean,omitempty"`
	// Fairness is the balance mission's max/min visit-count ratio (0 when
	// some vertex was never visited in the measurement window).
	Fairness float64 `json:"fairness,omitempty"`
	// Err is the measurement error, if any (e.g. budget exhausted). A
	// failed job still produces its row so sweeps degrade gracefully.
	Err string `json:"err,omitempty"`
	// Series holds the job's sampled probe points (SweepSpec.Probes), in
	// round order. Only the JSONL sink serializes it; the CSV sink keeps
	// its fixed scalar column set.
	Series []probe.Point `json:"series,omitempty"`
}

// Sink consumes ordered sweep rows. Sinks are driven from one goroutine;
// they need no locking.
type Sink interface {
	// Begin is called once before any row, with the expanded job count.
	Begin(spec SweepSpec, jobs int) error
	// Emit is called once per row, in canonical order.
	Emit(row Row) error
	// End is called once after the last row.
	End() error
}

// jsonlSink writes one JSON object per row.
type jsonlSink struct {
	w io.Writer
}

// NewJSONLSink returns a sink that streams rows as JSON lines. Each line is
// exactly RowBytes of its row, so anything that replays stored RowBytes (the
// service's row cache and spool) is byte-identical to this sink by
// construction.
func NewJSONLSink(w io.Writer) Sink {
	return &jsonlSink{w: w}
}

func (s *jsonlSink) Begin(SweepSpec, int) error { return nil }

func (s *jsonlSink) Emit(row Row) error {
	b, err := RowBytes(row)
	if err != nil {
		return err
	}
	_, err = s.w.Write(b)
	return err
}

func (s *jsonlSink) End() error { return nil }

// csvHeader is the fixed column set of the CSV sink.
var csvHeader = []string{
	"cell", "topology", "n", "k", "placement", "pointer", "process",
	"metric", "replica", "seed", "value", "rounds", "period",
	"min_visits", "max_visits", "err",
}

// csvSink writes rows as CSV with a fixed header.
type csvSink struct {
	cw *csv.Writer
}

// NewCSVSink returns a sink that streams rows as CSV.
func NewCSVSink(w io.Writer) Sink {
	return &csvSink{cw: csv.NewWriter(w)}
}

func (s *csvSink) Begin(SweepSpec, int) error { return s.cw.Write(csvHeader) }

func (s *csvSink) Emit(r Row) error {
	return s.cw.Write([]string{
		strconv.Itoa(r.Index), r.Topology,
		strconv.Itoa(r.N), strconv.Itoa(r.K),
		r.Placement, r.Pointer, r.Process, r.Metric,
		strconv.Itoa(r.Replica), strconv.FormatUint(r.Seed, 10),
		strconv.FormatFloat(r.Value, 'g', -1, 64),
		strconv.FormatInt(r.Rounds, 10),
		strconv.FormatInt(r.Period, 10),
		strconv.FormatInt(r.MinVisits, 10),
		strconv.FormatInt(r.MaxVisits, 10),
		r.Err,
	})
}

func (s *csvSink) End() error {
	s.cw.Flush()
	return s.cw.Error()
}

// CellSummary aggregates the replicas of one cell with internal/stats.
type CellSummary struct {
	Cell
	Placement string `json:"placement"`
	Pointer   string `json:"pointer,omitempty"`
	// Replicas is the number of successful rows aggregated; Failed counts
	// rows that carried an error.
	Replicas int `json:"replicas"`
	Failed   int `json:"failed,omitempty"`

	Mean   float64 `json:"mean"`
	StdErr float64 `json:"stderr"`
	Median float64 `json:"median"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// SummarySink reduces each cell's replicas to summary statistics. Rows
// arrive replica-adjacent (replicas are innermost in the canonical order),
// so aggregation is streaming: one open cell at a time.
type SummarySink struct {
	cells []CellSummary

	open    bool
	current Row
	values  []float64
	failed  int
}

// NewSummarySink returns an empty summary aggregator.
func NewSummarySink() *SummarySink { return &SummarySink{} }

// Begin implements Sink.
func (s *SummarySink) Begin(SweepSpec, int) error {
	s.cells = s.cells[:0]
	s.open = false
	return nil
}

// Emit implements Sink.
func (s *SummarySink) Emit(row Row) error {
	if s.open && row.Index != s.current.Index {
		s.flush()
	}
	if !s.open {
		s.open = true
		s.current = row
		s.values = s.values[:0]
		s.failed = 0
	}
	if row.Err != "" {
		s.failed++
		return nil
	}
	s.values = append(s.values, row.Value)
	return nil
}

// End implements Sink.
func (s *SummarySink) End() error {
	if s.open {
		s.flush()
	}
	return nil
}

func (s *SummarySink) flush() {
	cs := CellSummary{
		Cell:      s.current.Cell,
		Placement: s.current.Placement,
		Pointer:   s.current.Pointer,
		Replicas:  len(s.values),
		Failed:    s.failed,
	}
	if sum, err := stats.Summarize(s.values); err == nil {
		cs.Mean = sum.Mean
		cs.Median = sum.Median
		cs.Min = sum.Min
		cs.Max = sum.Max
		if len(s.values) > 1 {
			cs.StdErr = sum.StdErr // NaN below two samples; keep JSON-safe zero
		}
	}
	s.cells = append(s.cells, cs)
	s.open = false
}

// Cells returns the per-cell summaries in canonical cell order. Valid after
// End.
func (s *SummarySink) Cells() []CellSummary { return s.cells }

// WriteTable renders the summaries as an aligned text table.
func (s *SummarySink) WriteTable(w io.Writer) error {
	for _, c := range s.cells {
		ptr := c.Pointer
		if ptr == "" {
			ptr = "-"
		}
		stderr := "-" // undefined below two samples
		if c.Replicas > 1 {
			stderr = fmt.Sprintf("%.1f", c.StdErr)
		}
		_, err := fmt.Fprintf(w, "%-10s n=%-6d k=%-4d %-7s %-9s mean=%.1f stderr=%s median=%.1f range=[%.0f,%.0f] replicas=%d",
			c.Topology, c.N, c.K, c.Placement, ptr,
			c.Mean, stderr, c.Median, c.Min, c.Max, c.Replicas)
		if err != nil {
			return err
		}
		if c.Cell.Schedule != "" {
			if _, err := fmt.Fprintf(w, " sched=%s", c.Cell.Schedule); err != nil {
				return err
			}
		}
		if c.Cell.Mission != "" {
			if _, err := fmt.Fprintf(w, " mission=%s", c.Cell.Mission); err != nil {
				return err
			}
		}
		if c.Failed > 0 {
			if _, err := fmt.Fprintf(w, " failed=%d", c.Failed); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// Engine executes sweeps on a fixed-size worker pool.
type Engine struct {
	workers int
}

// Option configures an Engine.
type Option func(*Engine)

// Workers sets the worker-pool size; n <= 0 selects GOMAXPROCS. The result
// of a sweep does not depend on this value, only its wall-clock time.
func Workers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// New creates an Engine.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(e)
	}
	if e.workers <= 0 {
		e.workers = runtime.GOMAXPROCS(0)
	}
	return e
}

// NumWorkers returns the configured pool size.
func (e *Engine) NumWorkers() int { return e.workers }

// Run expands spec into its job grid, executes every job on the worker
// pool, and streams the rows in canonical order (cell index, then replica)
// into the sinks. The returned rows are the same sequence the sinks saw.
// Jobs whose measurement fails carry the error in Row.Err; Run itself only
// fails on invalid specs or sink errors.
func (e *Engine) Run(spec SweepSpec, sinks ...Sink) ([]Row, error) {
	// Run is a client of the exported job model (Expand / JobRunner), the
	// same one external schedulers use, so in-process sweeps and sharded
	// service sweeps cannot diverge: they execute literally the same code
	// per job.
	exp, err := Expand(spec)
	if err != nil {
		return nil, err
	}
	jobs := exp.NumJobs()
	for _, s := range sinks {
		if err := s.Begin(exp.spec, jobs); err != nil {
			return nil, fmt.Errorf("engine: sink begin: %w", err)
		}
	}

	// Work units are single jobs (one replica of one cell), so replica-
	// heavy sweeps parallelize too. Jobs are fed in canonical order, so a
	// worker usually receives a cell's replicas back to back and reuses
	// its prototype System via Reset instead of rebuilding it.
	workers := e.workers
	if workers > jobs {
		workers = jobs
	}
	type doneJob struct {
		idx int
		row Row
	}
	next := make(chan int)
	out := make(chan doneJob, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := exp.NewRunner()
			for idx := range next {
				out <- doneJob{idx: idx, row: r.Run(idx)}
			}
		}()
	}
	go func() {
		for i := 0; i < jobs; i++ {
			next <- i
		}
		close(next)
	}()
	go func() {
		wg.Wait()
		close(out)
	}()

	// Stream completed jobs into the sinks, re-sequenced into canonical
	// order: a row is emitted as soon as every earlier row has been. A
	// sink error stops emission but still drains the workers.
	rows := make([]Row, 0, jobs)
	pending := make(map[int]Row, workers)
	cursor := 0
	var sinkErr error
	for d := range out {
		pending[d.idx] = d.row
		for {
			row, ok := pending[cursor]
			if !ok {
				break
			}
			delete(pending, cursor)
			cursor++
			rows = append(rows, row)
			if sinkErr != nil {
				continue
			}
			for _, s := range sinks {
				if err := s.Emit(row); err != nil {
					sinkErr = fmt.Errorf("engine: sink emit: %w", err)
					break
				}
			}
		}
	}
	if sinkErr != nil {
		return nil, sinkErr
	}
	for _, s := range sinks {
		if err := s.End(); err != nil {
			return nil, fmt.Errorf("engine: sink end: %w", err)
		}
	}
	return rows, nil
}

package engine

import (
	"fmt"
	"runtime"
	"sync"
)

// Map evaluates fn(0..n-1) on a pool of workers goroutines and returns the
// results in index order, so output never depends on scheduling. workers <=
// 0 selects GOMAXPROCS; the pool never exceeds n. The first error (by
// index) aborts the result; all in-flight evaluations still complete.
//
// Map is the engine's generic escape hatch: sweeps whose measurement logic
// does not fit SweepSpec (the experiment harness's custom closures) still
// run on a deterministic parallel pool.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i], errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: job %d: %w", i, err)
		}
	}
	return out, nil
}

package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateDigests = flag.Bool("update-digests", false, "rewrite the row-digest golden file")

// digestFixture pins (spec, seed) -> canonical row bytes across releases:
// every job's cache key and the SHA-256 of its RowBytes. A mismatch means
// seeds, simulation order or the row encoding changed — which silently
// invalidates every deployed row cache and breaks service/library byte
// identity for old spools, so it must be an explicit, versioned decision
// (bump the rowcache/v3 key prefix), never an accident. The v3 bump itself
// was such a decision: the hold-draw stream became counter-based
// (helddraw.go), changing delay-schedule rows; this fixture was regenerated
// with it.
type digestFixture struct {
	V     int                `json:"v"`
	Specs []specDigestRecord `json:"specs"`
}

type specDigestRecord struct {
	Name string          `json:"name"`
	Spec json.RawMessage `json:"spec"`
	Jobs []jobDigest     `json:"jobs"`
}

type jobDigest struct {
	Key    string `json:"key"`
	Digest string `json:"digest"`
}

// digestSpecs are the pinned configurations: small, fast, and jointly
// covering both processes, all three kernel tiers' dispatch, seeded and
// unseeded topologies, random placement, schedules and probes.
func digestSpecs() []struct {
	name string
	spec SweepSpec
} {
	return []struct {
		name string
		spec SweepSpec
	}{
		{"rotor-mixed", SweepSpec{
			Topologies: []Topo{"ring", "grid:4x4", "rr:3"},
			Sizes:      []int{16},
			Agents:     []int{2},
			Placements: []Placement{PlaceSingle, PlaceRandom},
			Probes:     []ProbeSpec{{Name: "coverage", Stride: 64}},
			Schedules:  []Schedule{"none", "delay:p=0.5"},
			Replicas:   2,
			Seed:       11,
		}},
		{"walk-return", SweepSpec{
			Topologies: []Topo{"ring", "lollipop:6x10"},
			Sizes:      []int{16},
			Agents:     []int{2},
			Process:    ProcWalk,
			Metric:     MetricReturn,
			Replicas:   2,
			Seed:       11,
		}},
	}
}

func TestRowDigestsSeedCompat(t *testing.T) {
	path := filepath.Join("testdata", "rowdigest_v1.json")
	var fixture digestFixture
	fixture.V = 1
	for _, s := range digestSpecs() {
		wire, err := EncodeWireSpec(s.spec)
		if err != nil {
			t.Fatalf("%s: encode: %v", s.name, err)
		}
		exp, err := Expand(s.spec)
		if err != nil {
			t.Fatalf("%s: expand: %v", s.name, err)
		}
		rec := specDigestRecord{Name: s.name, Spec: wire}
		runner := exp.NewRunner()
		for job := 0; job < exp.NumJobs(); job++ {
			b, err := RowBytes(runner.Run(job))
			if err != nil {
				t.Fatalf("%s: job %d: %v", s.name, job, err)
			}
			sum := sha256.Sum256(b)
			rec.Jobs = append(rec.Jobs, jobDigest{
				Key:    exp.JobKey(job),
				Digest: hex.EncodeToString(sum[:]),
			})
		}
		fixture.Specs = append(fixture.Specs, rec)
	}

	if *updateDigests {
		out, err := json.MarshalIndent(fixture, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	goldenBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	var golden digestFixture
	if err := json.Unmarshal(goldenBytes, &golden); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if golden.V != fixture.V {
		t.Fatalf("golden fixture v=%d, want %d", golden.V, fixture.V)
	}
	if len(golden.Specs) != len(fixture.Specs) {
		t.Fatalf("golden has %d specs, want %d (run with -update after adding specs)", len(golden.Specs), len(fixture.Specs))
	}
	for i, want := range golden.Specs {
		got := fixture.Specs[i]
		if got.Name != want.Name {
			t.Errorf("spec %d: name %q, golden %q", i, got.Name, want.Name)
			continue
		}
		// MarshalIndent reflows the embedded spec; compare compacted.
		var wantSpec bytes.Buffer
		if err := json.Compact(&wantSpec, want.Spec); err != nil {
			t.Fatalf("%s: golden spec: %v", want.Name, err)
		}
		if string(got.Spec) != wantSpec.String() {
			t.Errorf("%s: canonical wire spec drifted:\n got %s\nwant %s", got.Name, got.Spec, wantSpec.String())
		}
		if len(got.Jobs) != len(want.Jobs) {
			t.Errorf("%s: %d jobs, golden %d", got.Name, len(got.Jobs), len(want.Jobs))
			continue
		}
		for j := range want.Jobs {
			if got.Jobs[j].Key != want.Jobs[j].Key {
				t.Errorf("%s job %d: cache key drifted\n got %s\nwant %s", got.Name, j, got.Jobs[j].Key, want.Jobs[j].Key)
			}
			if got.Jobs[j].Digest != want.Jobs[j].Digest {
				t.Errorf("%s job %d: row bytes drifted (digest %s, golden %s)", got.Name, j, got.Jobs[j].Digest, want.Jobs[j].Digest)
			}
		}
	}
}

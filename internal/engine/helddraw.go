package engine

import (
	"math"
	"math/bits"

	"rotorring/internal/xrand"
)

// This file is the delayed-deployment draw stream: one Binomial(agents,
// HoldP) hold count per occupied node per held round. The draws are a pure
// function of (hold seed, round, node) — counter-based, not sequential — so
// the stream is independent of chunk boundaries, worker counts, occupied-set
// iteration and every other engine internal. That is what lets the schedule
// runner hand whole hold-regime chunks to the fused held kernels: any
// decomposition of a run produces bit-identical draws.
//
// Versioning note: this replaced a sequential stream (one rng shared with
// the event draws, consumed in occupied order). Delay-schedule rows changed
// bytes with the switch — the sanctioned "rowcache/v3" break recorded in
// expand.go.
//
// The hot path inverts precomputed Binomial CDFs branchlessly: threshold
// rows are padded to a fixed width with MaxUint64 sentinels and the draw is
// the borrow-counted number of thresholds at or below the uniform word
// (bits.Sub64 compiles to flag arithmetic, no data-dependent branches).
// With dense random occupancy both the per-node occupancy test and a
// short-circuiting CDF scan mispredict on nearly every occupied node, which
// costs more than the work they skip — so fill draws every node
// unconditionally (the empty row is all sentinels, so empty nodes draw 0).

// smallHoldMax bounds the per-count inverse-CDF tables. Hold draws on the
// scheduled hot path are overwhelmingly for small per-node populations
// (k ≈ n/2 spreads a few agents per occupied node); counts above the bound
// fall back to a scratch generator reseeded from the counter.
const smallHoldMax = 16

// tinyHoldMax bounds the fixed-width fast rows: populations of at most 4
// agents cover essentially every node of the dense regimes, and a width-4
// row is 4 flag-arithmetic compares — cheap enough to run unconditionally.
const tinyHoldMax = 4

// heldMixStep is the per-coordinate stride of the counter stream (the
// golden-ratio increment of SplitMix64, reused for the same decorrelation
// purpose).
const heldMixStep = 0x9e3779b97f4a7c15

// heldDraw generates hold counts for one schedule runner. The threshold
// tables are immutable after construction; the scratch generator is
// per-instance (it is reseeded before every large-count draw, so sharing
// would not race logically, but clones step concurrently).
type heldDraw struct {
	p    float64
	seed uint64
	// tiny holds the CDF thresholds of Binomial(c, p) for c in 0..4 at a
	// fixed width of 4, padded with MaxUint64 sentinels; row c occupies
	// tiny[c*4 : c*4+4] and row 0 is all sentinels (empty nodes draw 0).
	tiny [(tinyHoldMax + 1) * tinyHoldMax]uint64
	// mid holds the same thresholds for c in 1..16 at a fixed width of 16,
	// padded identically — the predictable slow row for mid-size counts.
	mid     [(smallHoldMax + 1) * smallHoldMax]uint64
	scratch *xrand.Rand
}

// newHeldDraw builds the draw stream for hold probability p (in (0,1)) and
// the given stream seed.
func newHeldDraw(p float64, seed uint64) *heldDraw {
	hd := &heldDraw{p: p, seed: seed, scratch: xrand.New(seed)}
	for i := range hd.tiny {
		hd.tiny[i] = math.MaxUint64
	}
	for i := range hd.mid {
		hd.mid[i] = math.MaxUint64
	}
	q := 1 - p
	for c := int64(1); c <= smallHoldMax; c++ {
		f := math.Pow(q, float64(c)) // pmf(0)
		cdf := 0.0
		for j := int64(0); j < c; j++ {
			cdf += f
			t := scale64(cdf)
			hd.mid[c*smallHoldMax+j] = t
			if c <= tinyHoldMax {
				hd.tiny[c*tinyHoldMax+j] = t
			}
			f *= float64(c-j) / float64(j+1) * (p / q) // pmf(j+1)
		}
	}
	return hd
}

// scale64 maps a CDF value in [0,1] onto the uint64 grid, so a uniform
// 64-bit word inverts it exactly.
func scale64(cdf float64) uint64 {
	if cdf >= 1 {
		return math.MaxUint64
	}
	if cdf <= 0 {
		return 0
	}
	return uint64(math.Ldexp(cdf, 64))
}

// roundBase folds the round number into the stream seed; the per-node draw
// folds the node in. Two Mix64 layers keep neighboring (round, node) pairs
// decorrelated.
func (hd *heldDraw) roundBase(round int64) uint64 {
	return xrand.Mix64(hd.seed ^ (uint64(round)+1)*heldMixStep)
}

// draw returns the hold count for a node holding c agents, distributed
// Binomial(c, p): the single-node form of exactly the arithmetic fill runs,
// for Holder processes without a counts view.
func (hd *heldDraw) draw(base uint64, v int, c int64) int64 {
	u := xrand.Mix64(base + (uint64(v)+1)*heldMixStep)
	if uint64(c) <= tinyHoldMax {
		off := int(c) * tinyHoldMax
		_, b0 := bits.Sub64(u, hd.tiny[off], 0)
		_, b1 := bits.Sub64(u, hd.tiny[off+1], 0)
		_, b2 := bits.Sub64(u, hd.tiny[off+2], 0)
		_, b3 := bits.Sub64(u, hd.tiny[off+3], 0)
		return tinyHoldMax - int64(b0+b1+b2+b3)
	}
	return hd.drawBig(u, c)
}

// drawBig handles counts above the fixed-width fast rows: mid-size counts
// borrow-count a padded width-16 row, large counts reseed the scratch
// generator from the same counter word. The count-size branches here are
// rare and predictable by construction.
func (hd *heldDraw) drawBig(u uint64, c int64) int64 {
	if c <= smallHoldMax {
		off := int(c) * smallHoldMax
		var borrows uint64
		for j := 0; j < smallHoldMax; j++ {
			_, b := bits.Sub64(u, hd.mid[off+j], 0)
			borrows += b
		}
		return smallHoldMax - int64(borrows)
	}
	hd.scratch.Reseed(u)
	return hd.scratch.Binomial(c, hd.p)
}

// fill writes the hold count of every node into held, reading populations
// from counts: empty nodes draw 0 through the all-sentinel row, so the pass
// is branch-free node to node and leaves no stale entries. This is the
// scheduled hot path — one flat loop, no per-node calls; it produces
// exactly the values draw would, node by node.
func (hd *heldDraw) fill(held, counts []int64, base uint64) {
	held = held[:len(counts)]
	tiny := &hd.tiny
	ctr := base // advanced by heldMixStep per node: base + (v+1)·step, as draw computes
	for v, c := range counts {
		ctr += heldMixStep
		u := xrand.Mix64(ctr)
		if uint64(c) <= tinyHoldMax {
			off := int(c) * tinyHoldMax
			_, b0 := bits.Sub64(u, tiny[off], 0)
			_, b1 := bits.Sub64(u, tiny[off+1], 0)
			_, b2 := bits.Sub64(u, tiny[off+2], 0)
			_, b3 := bits.Sub64(u, tiny[off+3], 0)
			held[v] = tinyHoldMax - int64(b0+b1+b2+b3)
			continue
		}
		held[v] = hd.drawBig(u, c)
	}
}

// reseed re-derives the stream for a new seed (the tables depend only on p).
func (hd *heldDraw) reseed(seed uint64) { hd.seed = seed }

// clone returns an independent copy: tables copied, scratch fresh.
func (hd *heldDraw) clone() *heldDraw {
	cp := *hd
	cp.scratch = xrand.New(hd.seed)
	return &cp
}

// heldSeedOf derives the hold-draw stream seed from the job's schedule
// stream seed, decoupling hold draws from the discrete-event draws: plans
// with events but no holds (and vice versa) keep their streams byte-stable
// when the other regime's implementation changes.
func heldSeedOf(scheduleSeed uint64) uint64 {
	return DeriveSeed(scheduleSeed, hashString("helddraw"))
}

package engine

import (
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/randwalk"
	"rotorring/internal/ringdom"
	"rotorring/probe"
)

// This file registers the paper's two processes (rotor, walk) and two
// metrics (cover, return) with the registry. They are ordinary registry
// entries: a third process or metric registers the same way, from any
// package, without touching the engine.

func init() {
	RegisterProcess(&ProcessDef{
		Name:           ProcRotor,
		UsesPointers:   true,
		BudgetHeadroom: 1,
		New:            newRotorProc,
	})
	RegisterProcess(&ProcessDef{
		Name:           ProcWalk,
		Randomized:     true,
		BudgetHeadroom: 4,
		New:            newWalkProc,
	})
	RegisterMetric(&MetricDef{
		Name:           MetricCover,
		BudgetHeadroom: 1,
		Measure:        measureCover,
	})
	RegisterMetric(&MetricDef{
		Name:           MetricReturn,
		BudgetHeadroom: 4,
		Measure:        measureReturn,
	})
}

// rotorProc adapts core.System to the registry's Proc surface.
type rotorProc struct {
	sys *core.System
}

func newRotorProc(env *JobEnv) (Proc, error) {
	pointers, err := initialPointers(env.Cell, env.Graph, env.Positions, env.RNG)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(env.Graph,
		core.WithAgentsAt(env.Positions...),
		core.WithPointers(pointers),
		core.WithKernelMode(kernelMode(env.Kernel)))
	if err != nil {
		return nil, err
	}
	return &rotorProc{sys: sys}, nil
}

func (p *rotorProc) Step()            { p.sys.Step() }
func (p *rotorProc) Round() int64     { return p.sys.Round() }
func (p *rotorProc) Covered() int     { return p.sys.Covered() }
func (p *rotorProc) Reset()           { p.sys.Reset() }
func (p *rotorProc) Positions() []int { return p.sys.Positions() }

func (p *rotorProc) RunUntilCovered(maxRounds int64) (int64, error) {
	return p.sys.RunUntilCovered(maxRounds)
}

// NumDomains implements probe.DomainCounter for the domain-count probe.
func (p *rotorProc) NumDomains() (int, error) {
	part, err := ringdom.Domains(p.sys)
	if err != nil {
		return 0, err
	}
	return len(part.Domains), nil
}

// MeasureReturn implements ReturnMeasurer: locate the limit cycle and
// measure the exact return time over one period (Theorem 6). With preserve
// set the measurement runs on a clone so the worker's cached prototype
// stays reusable for the next replica.
func (p *rotorProc) MeasureReturn(budget int64, preserve bool) (ReturnOutcome, error) {
	sys := p.sys
	if preserve {
		sys = sys.Clone()
	}
	rs, err := core.MeasureReturnTime(sys, budget)
	if err != nil {
		return ReturnOutcome{Rounds: sys.Round()}, err
	}
	return ReturnOutcome{
		Value:     float64(rs.ReturnTime),
		Period:    rs.Period,
		MinVisits: rs.MinNodeVisits,
		MaxVisits: rs.MaxNodeVisits,
		Rounds:    sys.Round(),
	}, nil
}

// walkProc adapts randwalk.Walk to the registry's Proc surface.
type walkProc struct {
	w *randwalk.Walk
	n int
	k int
}

func newWalkProc(env *JobEnv) (Proc, error) {
	w, err := randwalk.New(env.Graph, env.Positions, env.RNG,
		randwalk.WithMode(walkMode(env.Kernel)))
	if err != nil {
		return nil, err
	}
	return &walkProc{w: w, n: env.Graph.NumNodes(), k: env.Cell.K}, nil
}

func (p *walkProc) Step()              { p.w.Step() }
func (p *walkProc) Round() int64       { return p.w.Round() }
func (p *walkProc) Covered() int       { return p.w.Covered() }
func (p *walkProc) Reset()             { p.w.Reset() }
func (p *walkProc) Positions() []int   { return p.w.Positions() }
func (p *walkProc) Reseed(seed uint64) { p.w.Reseed(seed) }

func (p *walkProc) RunUntilCovered(maxRounds int64) (int64, error) {
	return p.w.RunUntilCovered(maxRounds)
}

// MeasureReturn implements ReturnMeasurer: the walk has no limit cycle, so
// its recurrence measure is the mean inter-visit gap over a long window
// (expectation n/k on the ring — the paper's closing comparison), with the
// worst observed gap reported as the period analogue.
func (p *walkProc) MeasureReturn(int64, bool) (ReturnOutcome, error) {
	n := int64(p.n)
	span := n / int64(p.k)
	if span < 1 {
		span = 1
	}
	// The window must dominate the (n/k)^2 diffusive scale or nodes
	// between two walkers can stay unvisited all window.
	burnIn, window := 10*n, 50*span*span+200*n
	gs := p.w.MeasureGaps(burnIn, window)
	return ReturnOutcome{Value: gs.MeanGap, Period: gs.MaxGap, Rounds: p.w.Round()}, nil
}

// measureCover is the cover metric: run until every node is visited within
// the budget. Unobserved jobs run the hot kernel loop in one call; observed
// jobs run it in chunks bounded by the next probe sample, so stride
// sampling never adds a per-round branch.
func measureCover(p Proc, env *JobEnv, budget int64, row *Row) {
	cr, ok := p.(CoverRunner)
	if !ok {
		row.Err = fmt.Sprintf("engine: process %q does not measure %q", row.Process, MetricCover)
		return
	}
	if len(env.Probes) == 0 {
		cover, err := cr.RunUntilCovered(budget)
		row.Rounds = p.Round()
		if err != nil {
			row.Err = err.Error()
			return
		}
		row.Value = float64(cover)
		return
	}

	runner := probe.NewRunner(env.Probes...)
	emit := func(pt probe.Point) { row.Series = append(row.Series, pt) }
	runner.Observe(p, emit) // sample the initial configuration (round 0)
	for {
		next := runner.Next(p.Round())
		if next > budget {
			next = budget
		}
		cover, err := cr.RunUntilCovered(next)
		if err == nil {
			row.Rounds = p.Round()
			row.Value = float64(cover)
			runner.Flush(p, emit) // close the series at the cover round
			return
		}
		if p.Round() >= budget {
			row.Rounds = p.Round()
			row.Err = err.Error()
			runner.Flush(p, emit)
			return
		}
		runner.Observe(p, emit)
	}
}

// measureReturn is the recurrence metric, dispatched through the
// ReturnMeasurer capability.
func measureReturn(p Proc, env *JobEnv, budget int64, row *Row) {
	rm, ok := p.(ReturnMeasurer)
	if !ok {
		row.Err = fmt.Sprintf("engine: process %q does not measure %q", row.Process, MetricReturn)
		return
	}
	out, err := rm.MeasureReturn(budget, env.Preserve)
	row.Rounds = out.Rounds
	if err != nil {
		row.Err = err.Error()
		return
	}
	row.Value = out.Value
	row.Period = out.Period
	row.MinVisits = out.MinVisits
	row.MaxVisits = out.MaxVisits
}

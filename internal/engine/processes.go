package engine

import (
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/randwalk"
	"rotorring/internal/ringdom"
	"rotorring/probe"
)

// This file registers the paper's two processes (rotor, walk) and two
// metrics (cover, return) with the registry. They are ordinary registry
// entries: a third process or metric registers the same way, from any
// package, without touching the engine.

func init() {
	RegisterProcess(&ProcessDef{
		Name:           ProcRotor,
		UsesPointers:   true,
		BudgetHeadroom: 1,
		New:            newRotorProc,
	})
	RegisterProcess(&ProcessDef{
		Name:           ProcWalk,
		Randomized:     true,
		BudgetHeadroom: 4,
		New:            newWalkProc,
	})
	RegisterMetric(&MetricDef{
		Name:           MetricCover,
		BudgetHeadroom: 1,
		Measure:        measureCover,
	})
	RegisterMetric(&MetricDef{
		Name:           MetricReturn,
		BudgetHeadroom: 4,
		Measure:        measureReturn,
	})
	RegisterMetric(&MetricDef{
		Name:           MetricRestab,
		BudgetHeadroom: 4,
		Measure:        measureRestab,
	})
	RegisterMetric(&MetricDef{
		Name:           MetricCoverAfterFault,
		BudgetHeadroom: 4,
		Measure:        measureCoverAfterFault,
	})
}

// rotorProc adapts core.System to the registry's Proc surface.
type rotorProc struct {
	sys *core.System
}

func newRotorProc(env *JobEnv) (Proc, error) {
	pointers, err := initialPointers(env.Cell, env.Graph, env.Positions, env.RNG)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(env.Graph,
		core.WithAgentsAt(env.Positions...),
		core.WithPointers(pointers),
		core.WithKernelMode(kernelMode(env.Kernel)))
	if err != nil {
		return nil, err
	}
	return &rotorProc{sys: sys}, nil
}

func (p *rotorProc) Step()              { p.sys.Step() }
func (p *rotorProc) Run(rounds int64)   { p.sys.Run(rounds) }
func (p *rotorProc) Round() int64       { return p.sys.Round() }
func (p *rotorProc) Covered() int       { return p.sys.Covered() }
func (p *rotorProc) Reset()             { p.sys.Reset() }
func (p *rotorProc) Positions() []int   { return p.sys.Positions() }
func (p *rotorProc) Visits(v int) int64 { return p.sys.Visits(v) }
func (p *rotorProc) NumAgents() int64   { return p.sys.NumAgents() }
func (p *rotorProc) Pointers() []int    { return p.sys.Pointers() }
func (p *rotorProc) ResetCoverage()     { p.sys.ResetCoverage() }
func (p *rotorProc) CloneProc() Proc    { return &rotorProc{sys: p.sys.Clone()} }
func (p *rotorProc) ConfigHash() uint64 { return p.sys.ConfigHash() }

func (p *rotorProc) SetArcObserver(fn func(v, port int, agents int64)) {
	p.sys.SetArcObserver(fn)
}

// Schedule capabilities (see process.go): the rotor supports the full
// perturbation surface.
func (p *rotorProc) StepHeld(held []int64)                   { p.sys.StepHeld(held) }
func (p *rotorProc) ForEachOccupied(f func(v int, c int64))  { p.sys.ForEachOccupied(f) }
func (p *rotorProc) AgentCountsView() []int64                { return p.sys.AgentCountsView() }
func (p *rotorProc) Rewire(g *graph.Graph, ptrs []int) error { return p.sys.Rewire(g, ptrs) }
func (p *rotorProc) SetPointers(ptrs []int) error            { return p.sys.SetPointers(ptrs) }
func (p *rotorProc) AddAgents(positions ...int) error        { return p.sys.AddAgents(positions...) }
func (p *rotorProc) RemoveAgents(positions ...int) error     { return p.sys.RemoveAgents(positions...) }

func (p *rotorProc) RunUntilCovered(maxRounds int64) (int64, error) {
	return p.sys.RunUntilCovered(maxRounds)
}

// MeasureRestab implements RestabMeasurer: μ of the current configuration,
// the number of rounds until the system locks into its limit cycle —
// measured after a perturbation, this is the re-stabilization time of
// Bampas et al. (X9).
func (p *rotorProc) MeasureRestab(budget int64) (RestabOutcome, error) {
	lc, err := core.FindLimitCycle(p.sys, budget, true)
	if err != nil {
		return RestabOutcome{}, err
	}
	return RestabOutcome{Restab: lc.StabilizationRound, Period: lc.Period}, nil
}

// NumDomains implements probe.DomainCounter for the domain-count probe.
func (p *rotorProc) NumDomains() (int, error) {
	part, err := ringdom.Domains(p.sys)
	if err != nil {
		return 0, err
	}
	return len(part.Domains), nil
}

// MeasureReturn implements ReturnMeasurer: locate the limit cycle and
// measure the exact return time over one period (Theorem 6). With preserve
// set the measurement runs on a clone so the worker's cached prototype
// stays reusable for the next replica.
func (p *rotorProc) MeasureReturn(budget int64, preserve bool) (ReturnOutcome, error) {
	sys := p.sys
	if preserve {
		sys = sys.Clone()
	}
	rs, err := core.MeasureReturnTime(sys, budget)
	if err != nil {
		return ReturnOutcome{Rounds: sys.Round()}, err
	}
	return ReturnOutcome{
		Value:     float64(rs.ReturnTime),
		Period:    rs.Period,
		MinVisits: rs.MinNodeVisits,
		MaxVisits: rs.MaxNodeVisits,
		Rounds:    sys.Round(),
	}, nil
}

// walkProc adapts randwalk.Walk to the registry's Proc surface.
type walkProc struct {
	w *randwalk.Walk
	n int
	k int
}

func newWalkProc(env *JobEnv) (Proc, error) {
	w, err := randwalk.New(env.Graph, env.Positions, env.RNG,
		randwalk.WithMode(walkMode(env.Kernel)))
	if err != nil {
		return nil, err
	}
	return &walkProc{w: w, n: env.Graph.NumNodes(), k: env.Cell.K}, nil
}

func (p *walkProc) Step()              { p.w.Step() }
func (p *walkProc) Run(rounds int64)   { p.w.Run(rounds) }
func (p *walkProc) Round() int64       { return p.w.Round() }
func (p *walkProc) Covered() int       { return p.w.Covered() }
func (p *walkProc) Reset()             { p.w.Reset() }
func (p *walkProc) Positions() []int   { return p.w.Positions() }
func (p *walkProc) Reseed(seed uint64) { p.w.Reseed(seed) }
func (p *walkProc) Visits(v int) int64 { return p.w.Visits(v) }
func (p *walkProc) NumAgents() int64   { return int64(p.w.NumWalkers()) }
func (p *walkProc) ResetCoverage()     { p.w.ResetCoverage() }
func (p *walkProc) CloneProc() Proc    { return &walkProc{w: p.w.Clone(), n: p.n, k: p.k} }

func (p *walkProc) SetArcObserver(fn func(v, port int, agents int64)) {
	p.w.SetArcObserver(fn)
}

// Schedule capabilities: walkers have no pointers and no held rounds, but
// support rewiring and churn.
func (p *walkProc) Rewire(g *graph.Graph, _ []int) error { return p.w.Rewire(g) }
func (p *walkProc) AddAgents(positions ...int) error     { return p.w.AddWalkers(positions...) }
func (p *walkProc) RemoveAgents(positions ...int) error  { return p.w.RemoveWalkers(positions...) }

func (p *walkProc) RunUntilCovered(maxRounds int64) (int64, error) {
	return p.w.RunUntilCovered(maxRounds)
}

// MeasureReturn implements ReturnMeasurer: the walk has no limit cycle, so
// its recurrence measure is the mean inter-visit gap over a long window
// (expectation n/k on the ring — the paper's closing comparison), with the
// worst observed gap reported as the period analogue.
func (p *walkProc) MeasureReturn(int64, bool) (ReturnOutcome, error) {
	n := int64(p.n)
	span := n / int64(p.k)
	if span < 1 {
		span = 1
	}
	// The window must dominate the (n/k)^2 diffusive scale or nodes
	// between two walkers can stay unvisited all window.
	burnIn, window := 10*n, 50*span*span+200*n
	gs := p.w.MeasureGaps(burnIn, window)
	return ReturnOutcome{Value: gs.MeanGap, Period: gs.MaxGap, Rounds: p.w.Round()}, nil
}

// measureCover is the cover metric: run until every node is visited within
// the budget. Unobserved jobs run the hot kernel loop in one call; observed
// jobs run it in chunks bounded by the next probe sample, so stride
// sampling never adds a per-round branch.
func measureCover(p Proc, env *JobEnv, budget int64, row *Row) {
	cr, ok := p.(CoverRunner)
	if !ok {
		row.Err = fmt.Sprintf("engine: process %q does not measure %q", row.Process, MetricCover)
		return
	}
	if len(env.Probes) == 0 {
		cover, err := cr.RunUntilCovered(budget)
		row.Rounds = p.Round()
		if err != nil {
			row.Err = err.Error()
			return
		}
		row.Value = float64(cover)
		return
	}

	runner := probe.NewRunner(env.Probes...)
	emit := func(pt probe.Point) { row.Series = append(row.Series, pt) }
	runner.Observe(p, emit) // sample the initial configuration (round 0)
	for {
		next := runner.Next(p.Round())
		if next > budget {
			next = budget
		}
		cover, err := cr.RunUntilCovered(next)
		if err == nil {
			row.Rounds = p.Round()
			row.Value = float64(cover)
			runner.Flush(p, emit) // close the series at the cover round
			return
		}
		if p.Round() >= budget {
			row.Rounds = p.Round()
			row.Err = err.Error()
			runner.Flush(p, emit)
			return
		}
		runner.Observe(p, emit)
	}
}

// measureReturn is the recurrence metric, dispatched through the
// ReturnMeasurer capability.
func measureReturn(p Proc, env *JobEnv, budget int64, row *Row) {
	rm, ok := p.(ReturnMeasurer)
	if !ok {
		row.Err = fmt.Sprintf("engine: process %q does not measure %q", row.Process, MetricReturn)
		return
	}
	out, err := rm.MeasureReturn(budget, env.Preserve)
	row.Rounds = out.Rounds
	if err != nil {
		row.Err = err.Error()
		return
	}
	row.Value = out.Value
	row.Period = out.Period
	row.MinVisits = out.MinVisits
	row.MaxVisits = out.MaxVisits
}

// runToFault advances a scheduled job through its perturbations, the shared
// front half of the perturbation metrics. It fails the row when the job has
// no schedule, the schedule has no fault boundary, or the fault lies beyond
// the round budget.
func runToFault(p Proc, metric string, budget int64, row *Row) (int64, bool) {
	fr, ok := p.(FaultRunner)
	if !ok {
		row.Err = fmt.Sprintf("engine: metric %q requires a schedule with a fault event (cell has none)", metric)
		return 0, false
	}
	fault := fr.RunToFault()
	if fault < 0 {
		row.Err = fmt.Sprintf("engine: metric %q requires a schedule with a bounded fault (schedule %q has none)", metric, row.Schedule)
		return 0, false
	}
	if fault >= budget {
		row.Rounds = p.Round()
		row.Err = fmt.Sprintf("engine: fault round %d exceeds the round budget %d", fault, budget)
		return 0, false
	}
	return fault, true
}

// measureRestab is the re-stabilization metric (X9): run the schedule to
// its fault boundary, then measure how many rounds the perturbed system
// needs to lock into its limit cycle (μ of the post-fault configuration).
// Value is that re-stabilization time; Period the limit cycle reached.
func measureRestab(p Proc, env *JobEnv, budget int64, row *Row) {
	fault, ok := runToFault(p, MetricRestab, budget, row)
	if !ok {
		return
	}
	// Dispatch on the measurement target: the schedule runner never
	// fabricates capabilities its inner process lacks.
	rm, ok := measureTarget(p).(RestabMeasurer)
	if !ok {
		row.Err = fmt.Sprintf("engine: process %q does not measure %q", row.Process, MetricRestab)
		return
	}
	out, err := rm.MeasureRestab(budget - fault)
	row.Rounds = p.Round()
	if err != nil {
		row.Err = err.Error()
		return
	}
	row.Value = float64(out.Restab)
	row.Period = out.Period
}

// measureCoverAfterFault is the re-coverage metric: run the schedule to its
// fault boundary, restart the coverage epoch from the surviving positions,
// and measure the rounds until the (possibly rewired) graph is fully
// covered again. Value is cover round minus fault round.
func measureCoverAfterFault(p Proc, env *JobEnv, budget int64, row *Row) {
	fault, ok := runToFault(p, MetricCoverAfterFault, budget, row)
	if !ok {
		return
	}
	cr, ok := measureTarget(p).(CoverageResetter)
	if !ok {
		row.Err = fmt.Sprintf("engine: process %q does not measure %q", row.Process, MetricCoverAfterFault)
		return
	}
	cr.ResetCoverage()
	runner, ok := p.(CoverRunner)
	if !ok {
		row.Err = fmt.Sprintf("engine: process %q does not measure %q", row.Process, MetricCoverAfterFault)
		return
	}
	cover, err := runner.RunUntilCovered(budget)
	row.Rounds = p.Round()
	if err != nil {
		row.Err = err.Error()
		return
	}
	row.Value = float64(cover - fault)
}

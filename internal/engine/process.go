package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
	"rotorring/probe"
)

// This file is the engine's process/metric registry: sweeps name their
// process and metric as strings, and the registry supplies the factory and
// the measurement, so a new process (a lock-in rotor variant, a tree
// analogue, ...) or a new metric plugs in with one RegisterProcess /
// RegisterMetric call — no engine edits, no new spec fields.

// Proc is the engine's view of one runnable process instance inside a job:
// the minimal stepping surface every registered process provides. Probes
// observe it through rotorring/probe.State (Round/Covered), plus whatever
// capability interfaces the concrete instance implements (probe.Positioner,
// probe.DomainCounter).
//
// Metrics reach richer behavior through capability interfaces: CoverRunner
// for cover-time runs, ReturnMeasurer for recurrence measurement, Reseeder
// for randomized processes whose cached instances are reused across
// replicas.
type Proc interface {
	Step()
	Round() int64
	Covered() int
	// Reset restores the initial configuration so a cached instance can be
	// reused for the next replica without reallocation.
	Reset()
}

// CoverRunner is the capability of running until full coverage within a
// round budget, returning the cover time. maxRounds is an ABSOLUTE round
// count (stop once Round() reaches it), not a number of additional
// rounds: observed jobs call RunUntilCovered repeatedly with growing
// targets, resuming where the previous chunk stopped — the semantics of
// core.System.RunUntilCovered and randwalk.Walk.RunUntilCovered.
type CoverRunner interface {
	RunUntilCovered(maxRounds int64) (int64, error)
}

// Reseeder is the capability of rewinding a randomized process's generator
// to a fresh deterministic state. The runner calls it (when implemented)
// before reusing a cached instance for a new replica.
type Reseeder interface {
	Reseed(seed uint64)
}

// ReturnOutcome is the result of a recurrence measurement.
type ReturnOutcome struct {
	// Value is the metric value: return time (rotor), mean inter-visit gap
	// (walk).
	Value float64
	// Period is the limit-cycle length (rotor) or the worst observed
	// inter-visit gap (walk).
	Period int64
	// MinVisits and MaxVisits are per-node visit extremes within one
	// period, when the process measures them (zero otherwise).
	MinVisits, MaxVisits int64
	// Rounds is the number of rounds the measurement executed.
	Rounds int64
}

// ReturnMeasurer is the capability of measuring the recurrence metric.
// When preserve is set the measurement must not disturb the instance's
// reusable state (the rotor measures on a clone).
type ReturnMeasurer interface {
	MeasureReturn(budget int64, preserve bool) (ReturnOutcome, error)
}

// The capabilities below are the mutation surface the schedule subsystem
// (schedule.go, scheduled.go) drives. A process implements the subset it
// supports; a schedule whose plan needs a missing capability fails as a
// per-job row, not a crash — the same graceful degradation metrics use.

// Holder is the capability of running delayed-deployment rounds (§2.1):
// StepHeld advances one round in which held[v] agents at node v skip their
// move, and ForEachOccupied enumerates the current population without
// allocating (so the per-round hold draw stays cheap).
type Holder interface {
	StepHeld(held []int64)
	ForEachOccupied(f func(v int, agents int64))
}

// CountsViewer is the optional fast-path companion to Holder: a zero-copy,
// node-indexed view of the current agent counts. When present, the schedule
// runner fills its hold draws with one flat loop over the view instead of a
// per-node ForEachOccupied callback — same values, no per-node dispatch.
// The view is read-only and stale after the next step; consumers re-fetch
// it every round.
type CountsViewer interface {
	AgentCountsView() []int64
}

// Rewirer is the capability of swapping the topology mid-run (same node
// set) — the edge-failure/repair primitive. Pointer processes receive the
// transplanted pointer vector; pointer-less processes are passed nil and
// ignore it.
type Rewirer interface {
	Rewire(g *graph.Graph, pointers []int) error
}

// PointerVector is the capability of exposing the full current pointer
// vector, which the schedule runner transplants across a rewire.
type PointerVector interface {
	Pointers() []int
}

// PointerSetter is the capability of overwriting every pointer mid-run
// (the rotor-reset perturbation).
type PointerSetter interface {
	SetPointers(pointers []int) error
}

// AgentJoiner and AgentLeaver are the churn capabilities: adding agents at
// given positions, and removing one agent from each listed position.
type AgentJoiner interface {
	AddAgents(positions ...int) error
}

// AgentLeaver is the departure half of churn.
type AgentLeaver interface {
	RemoveAgents(positions ...int) error
}

// CoverageResetter is the capability of starting a fresh coverage epoch at
// the current round (visit counters restart from the current positions),
// on which the cover-after-fault metric is built.
type CoverageResetter interface {
	ResetCoverage()
}

// VisitCounter is the capability of reporting per-node visit counts; the
// invariant test suite and custom probes use it.
type VisitCounter interface {
	Visits(v int) int64
}

// AgentCounter is the capability of reporting the current population size.
type AgentCounter interface {
	NumAgents() int64
}

// BulkRunner is the capability of advancing many rounds in one call
// (the hot kernel loop); the schedule runner uses it between events and
// falls back to Step otherwise.
type BulkRunner interface {
	Run(rounds int64)
}

// RestabOutcome is the result of a re-stabilization measurement.
type RestabOutcome struct {
	// Restab is the number of rounds from the measurement start until the
	// configuration enters its limit cycle (μ of the post-fault system).
	Restab int64
	// Period is the limit-cycle length reached.
	Period int64
}

// RestabMeasurer is the capability of measuring the stabilization time
// from the current configuration (the rotor locates its limit cycle; see
// the restab_time metric). budget bounds the additional rounds spent.
type RestabMeasurer interface {
	MeasureRestab(budget int64) (RestabOutcome, error)
}

// FaultRunner is the capability the perturbation metrics dispatch on: it
// is implemented by the schedule runner, which advances the process
// through its plan until every discrete perturbation has been applied and
// returns that fault round (-1 when the plan has no fault boundary).
type FaultRunner interface {
	RunToFault() int64
}

// Cloner is the capability of deep-copying a job instance (the invariant
// test suite exercises clone independence on every registered process).
type Cloner interface {
	CloneProc() Proc
}

// ArcTraversalObserver is the capability of reporting individual arc
// traversals as they happen: after SetArcObserver(fn), every round invokes
// fn once per (source vertex, port) group of agents crossing that arc, with
// the group size. Mission predicates dispatch on it to maintain incremental
// state in O(arcs moved) per round instead of O(E) rescans. Passing nil
// removes the observer. Installing an observer must not change the
// trajectory (it may exclude specialized kernels, which are bit-identical).
type ArcTraversalObserver interface {
	SetArcObserver(fn func(v, port int, agents int64))
}

// ConfigHasher is the capability of reporting an incremental 64-bit hash of
// the full process configuration (positions + pointers for the rotor). The
// quiesce mission dispatches on it for O(1)-per-round limit-cycle
// detection.
type ConfigHasher interface {
	ConfigHash() uint64
}

// JobEnv is everything a process factory and a metric measurement may need
// about the job at hand.
type JobEnv struct {
	// Graph is the job's topology (shared, immutable).
	Graph *graph.Graph
	// Cell is the grid cell, including the placement and pointer policies.
	Cell Cell
	// Positions are the initial agent positions, already resolved from the
	// placement policy (consuming RNG draws for PlaceRandom).
	Positions []int
	// Seed is the derived per-job seed; RNG is the job generator, already
	// advanced past the placement draws.
	Seed uint64
	RNG  *xrand.Rand
	// Kernel is the sweep's stepping-tier selection.
	Kernel Kernel
	// Probes are the job's observation hooks (empty for unobserved jobs).
	Probes []probe.Probe
	// Preserve is set when the metric must leave the instance reusable for
	// the worker's next replica of the same cell.
	Preserve bool
}

// ProcessDef describes one registered process.
type ProcessDef struct {
	// Name is the registry key, as it appears in SweepSpec.Process, rows
	// and CLI flags.
	Name string
	// UsesPointers reports whether pointer policies configure the process;
	// when false the sweep grid collapses the pointer axis and rows omit
	// the pointer column.
	UsesPointers bool
	// Randomized reports whether replicas resample (the process consumes
	// the job seed).
	Randomized bool
	// BudgetHeadroom multiplies the automatic round budget (>= 1):
	// randomized processes need headroom over the deterministic cover
	// bound. See AutoBudget for the shared rule.
	BudgetHeadroom int64
	// New builds a fresh instance for one job.
	New func(env *JobEnv) (Proc, error)
}

// MetricDef describes one registered metric.
type MetricDef struct {
	// Name is the registry key, as it appears in SweepSpec.Metric and rows.
	Name string
	// BudgetHeadroom multiplies the automatic round budget (>= 1); see
	// AutoBudget.
	BudgetHeadroom int64
	// Measure runs the metric on p (fresh or Reset) and fills the row's
	// measurement fields, recording failures in row.Err.
	Measure func(p Proc, env *JobEnv, budget int64, row *Row)
}

var (
	registryMu sync.RWMutex
	processes  = map[string]*ProcessDef{}
	metrics    = map[string]*MetricDef{}
)

// RegisterProcess adds a process to the registry. Names are normalized to
// lower case (specs and CLI flags lowercase their inputs before lookup,
// so a mixed-case registration would be unreachable). Duplicate names
// panic: process names appear in specs, rows and derived file formats and
// must stay unambiguous.
func RegisterProcess(d *ProcessDef) {
	if d.Name == "" || d.New == nil {
		panic("engine: RegisterProcess needs a name and a factory")
	}
	d.Name = strings.ToLower(d.Name)
	if d.BudgetHeadroom < 1 {
		d.BudgetHeadroom = 1
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := processes[d.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate process %q", d.Name))
	}
	processes[d.Name] = d
}

// RegisterMetric adds a metric to the registry. Names are normalized to
// lower case (see RegisterProcess); duplicate names panic.
func RegisterMetric(d *MetricDef) {
	if d.Name == "" || d.Measure == nil {
		panic("engine: RegisterMetric needs a name and a measurement")
	}
	d.Name = strings.ToLower(d.Name)
	if d.BudgetHeadroom < 1 {
		d.BudgetHeadroom = 1
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := metrics[d.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate metric %q", d.Name))
	}
	metrics[d.Name] = d
}

// LookupProcess returns a registered process by name.
func LookupProcess(name string) (*ProcessDef, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	d, ok := processes[name]
	return d, ok
}

// LookupMetric returns a registered metric by name.
func LookupMetric(name string) (*MetricDef, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	d, ok := metrics[name]
	return d, ok
}

// ProcessNames lists the registered process names, sorted.
func ProcessNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(processes))
	for n := range processes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MetricNames lists the registered metric names, sorted.
func MetricNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(metrics))
	for n := range metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AutoBudget is the library's one automatic round-budget rule, shared by
// sweep jobs and the public facade so the two can never disagree on when a
// run is declared budget-exhausted: the deterministic cover bound
// (CoverBudget) times the larger of the process's and the metric's
// headroom factor. For the built-ins that is 1x for rotor cover runs and
// 4x for anything randomized (walk) or recurrence-measuring (return) —
// randomized trials and limit-cycle location need room above the
// deterministic Theta(n^2) worst case.
func AutoBudget(g *graph.Graph, process, metric string) int64 {
	b := CoverBudget(g)
	factor := int64(1)
	if d, ok := LookupProcess(process); ok && d.BudgetHeadroom > factor {
		factor = d.BudgetHeadroom
	}
	if m, ok := LookupMetric(metric); ok && m.BudgetHeadroom > factor {
		factor = m.BudgetHeadroom
	}
	return b * factor
}

package engine

import (
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/randwalk"
	"rotorring/internal/xrand"
)

// This file defines the fixed per-kernel throughput workloads shared by the
// root package's BenchmarkKernel benchmarks and the BENCH_engine.json
// trajectory (TestEmitBenchJSON): the rotor tiers (generic engine, ring
// kernel, held-round kernel, the scheduled and mission paths) on the
// acceptance configuration Ring(2^16), the serial-versus-parallel ring pair
// at 2^24 nodes, and one walk pair (per-agent versus counts-based) at
// k = 10·n. Keeping the workload in one place means `make bench-kernels`
// and the committed JSON always measure the same thing.

// KernelBenchCase is one fixed kernel-tier throughput workload.
type KernelBenchCase struct {
	// Name identifies the case ("rotor-generic", "rotor-ring",
	// "walk-agents", "walk-counts") and doubles as the sub-benchmark name.
	Name string
	// Process is "rotor" or "walk".
	Process string
	// Graph names the topology, K the agent/walker count.
	Graph string
	K     int64
	// Baseline names the generic-tier counterpart this case's speedup is
	// stated against; empty for the baselines themselves.
	Baseline string
	// Rounds overrides the measured round count for heavyweight cases
	// (0 = the shared default in measureKernels); their NewStepper also
	// runs a proportionally shorter warmup.
	Rounds int
	// NewStepper builds a fresh simulator, runs a short warmup so the
	// measurement starts in the steady state (spread-out occupancy, warm
	// caches), and returns a function advancing one synchronous round.
	NewStepper func() (func(), error)
}

// kernelBenchWarmup is the number of pre-measurement rounds NewStepper
// runs: enough for an initial placement to spread into its steady-state
// occupancy profile.
const kernelBenchWarmup = 256

// Kernel benchmark scales: the rotor pair runs the ISSUE's acceptance
// configuration (ring of 2^16 nodes, dense population), the walk pair the
// k = 10·n regime where counts-based stepping matters.
const (
	kernelBenchRotorN = 1 << 16
	kernelBenchRotorK = kernelBenchRotorN / 2
	kernelBenchWalkN  = 1 << 13
	kernelBenchWalkK  = 10 * kernelBenchWalkN
)

// The big-ring pair exercises the parallel-within-round stepper at a scale
// where sharding pays: a round touches ~1 GB of state, far past any cache.
// Rounds cost ~100 ms each, so the pair overrides its measured round count
// and warms up only a few rounds.
const (
	kernelBenchBigN      = 1 << 24
	kernelBenchBigK      = 1 << 23
	kernelBenchBigWarmup = 8
	kernelBenchBigRounds = 12
)

// KernelBenchCases returns the fixed workload set, baselines first.
func KernelBenchCases() []KernelBenchCase {
	rotor := func(mode core.KernelMode) func() (func(), error) {
		return func() (func(), error) {
			g := graph.Ring(kernelBenchRotorN)
			// Random placement and pointers give irregular occupancy — the
			// steady-state shape of dense simulations — rather than the
			// lock-step march of an equally-spaced all-clockwise start.
			rng := xrand.New(1)
			sys, err := core.NewSystem(g,
				core.WithAgentsAt(core.RandomPositions(kernelBenchRotorN, kernelBenchRotorK, rng)...),
				core.WithPointers(core.PointersRandom(g, rng)),
				core.WithKernelMode(mode))
			if err != nil {
				return nil, err
			}
			if mode == core.KernelFast && sys.KernelName() != "ring" {
				return nil, fmt.Errorf("engine: ring kernel not selected (%s)", sys.KernelName())
			}
			sys.Run(kernelBenchWarmup)
			return sys.Step, nil
		}
	}
	walk := func(mode randwalk.Mode) func() (func(), error) {
		return func() (func(), error) {
			g := graph.Ring(kernelBenchWalkN)
			w, err := randwalk.New(g,
				core.EquallySpaced(kernelBenchWalkN, kernelBenchWalkK),
				xrand.New(1), randwalk.WithMode(mode))
			if err != nil {
				return nil, err
			}
			w.Run(kernelBenchWarmup)
			return w.Step, nil
		}
	}
	// The held-kernel case isolates the fused held-round tier: the dense
	// rotor workload on the ring kernel, every round a StepHeld with a
	// quarter of each node's population held — the kernel-side cost of the
	// delay regime without the draw stream. Stated against rotor-generic,
	// the speedup is what the held tier recovers over generic rounds.
	heldKernel := func() (func(), error) {
		g := graph.Ring(kernelBenchRotorN)
		rng := xrand.New(1)
		sys, err := core.NewSystem(g,
			core.WithAgentsAt(core.RandomPositions(kernelBenchRotorN, kernelBenchRotorK, rng)...),
			core.WithPointers(core.PointersRandom(g, rng)),
			core.WithKernelMode(core.KernelFast))
		if err != nil {
			return nil, err
		}
		if sys.KernelName() != "ring" {
			return nil, fmt.Errorf("engine: ring kernel not selected (%s)", sys.KernelName())
		}
		sys.Run(kernelBenchWarmup)
		held := make([]int64, kernelBenchRotorN)
		return func() {
			// Flat fill over the counts view, as on the schedule runner's
			// fast path; stale entries at emptied nodes are clamped by the
			// kernel there exactly as here.
			for v, c := range sys.AgentCountsView() {
				if c > 0 {
					held[v] = c / 4
				}
			}
			sys.StepHeld(held)
		}, nil
	}
	// The big-ring pair: the same dense regime at 2^24 nodes, serial ring
	// kernel versus the parallel-within-round stepper (bit-identical by
	// construction; the differential suite proves it, this pair prices it).
	big := func(mode core.KernelMode, want string) func() (func(), error) {
		return func() (func(), error) {
			g := graph.Ring(kernelBenchBigN)
			rng := xrand.New(1)
			sys, err := core.NewSystem(g,
				core.WithAgentsAt(core.RandomPositions(kernelBenchBigN, kernelBenchBigK, rng)...),
				core.WithPointers(core.PointersRandom(g, rng)),
				core.WithKernelMode(mode))
			if err != nil {
				return nil, err
			}
			if sys.KernelName() != want {
				return nil, fmt.Errorf("engine: kernel %q selected, want %q", sys.KernelName(), want)
			}
			sys.Run(kernelBenchBigWarmup)
			return sys.Step, nil
		}
	}
	// The schedule-path case measures the perturbation subsystem's stepping
	// cost: the same dense rotor workload behind the schedule runner with a
	// permanent delay regime, so every round pays the counter-based hold
	// draws plus a fused held-kernel round — the steady-state cost of the
	// scheduled path. Stated against rotor-generic, the gap is the price of
	// the scenario layer, not of the wrapper (whose pass-through rounds
	// delegate straight to the inner hot loop).
	scheduled := func() (func(), error) {
		g := graph.Ring(kernelBenchRotorN)
		rng := xrand.New(1)
		env := &JobEnv{
			Graph: g,
			Cell: Cell{Topology: "ring", N: kernelBenchRotorN, K: kernelBenchRotorK,
				Placement: PlaceRandom, Pointer: PtrRandom},
			Positions: core.RandomPositions(kernelBenchRotorN, kernelBenchRotorK, rng),
			Seed:      1,
			RNG:       rng,
		}
		p, err := newRotorProc(env)
		if err != nil {
			return nil, err
		}
		inst, err := parseSchedule("delay:p=0.25")
		if err != nil {
			return nil, err
		}
		sp, err := newScheduledProc(p, ProcRotor, inst, env)
		if err != nil {
			return nil, err
		}
		for i := 0; i < kernelBenchWarmup; i++ {
			sp.Step()
		}
		return sp.Step, nil
	}
	// The mission-path case measures the mission runner's stepping cost: the
	// same dense rotor workload with a patrol mission state attached, so
	// every round pays the generic engine (the arc observer excludes the
	// ring kernel) plus the per-move staleness bookkeeping. The horizon is
	// set far beyond the measurement so Done never fires. Stated against
	// rotor-generic, the gap is the price of per-arc observation.
	mission := func() (func(), error) {
		g := graph.Ring(kernelBenchRotorN)
		rng := xrand.New(1)
		env := &JobEnv{
			Graph: g,
			Cell: Cell{Topology: "ring", N: kernelBenchRotorN, K: kernelBenchRotorK,
				Placement: PlaceRandom, Pointer: PtrRandom},
			Positions: core.RandomPositions(kernelBenchRotorN, kernelBenchRotorK, rng),
			Seed:      1,
			RNG:       rng,
		}
		p, err := newRotorProc(env)
		if err != nil {
			return nil, err
		}
		mi, err := parseMission("patrol:horizon=1099511627776,warmup=0")
		if err != nil {
			return nil, err
		}
		st, err := mi.def.New(mi.plan, ProcRotor, env, p)
		if err != nil {
			return nil, err
		}
		for i := 0; i < kernelBenchWarmup; i++ {
			p.Step()
			st.Observe(p.Round())
		}
		return func() {
			p.Step()
			st.Observe(p.Round())
		}, nil
	}
	ringName := fmt.Sprintf("ring(%d)", kernelBenchRotorN)
	walkRing := fmt.Sprintf("ring(%d)", kernelBenchWalkN)
	bigRing := fmt.Sprintf("ring(%d)", kernelBenchBigN)
	return []KernelBenchCase{
		{Name: "rotor-generic", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			NewStepper: rotor(core.KernelGeneric)},
		{Name: "rotor-ring", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			Baseline: "rotor-generic", NewStepper: rotor(core.KernelFast)},
		{Name: "rotor-sched-delay", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			Baseline: "rotor-generic", NewStepper: scheduled},
		{Name: "rotor-sched-delay-held", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			Baseline: "rotor-generic", NewStepper: heldKernel},
		{Name: "rotor-mission-patrol", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			Baseline: "rotor-generic", NewStepper: mission},
		{Name: "ring-2^24-serial", Process: "rotor", Graph: bigRing, K: kernelBenchBigK,
			Rounds: kernelBenchBigRounds, NewStepper: big(core.KernelFast, "ring")},
		{Name: "ring-2^24-parallel", Process: "rotor", Graph: bigRing, K: kernelBenchBigK,
			Baseline: "ring-2^24-serial", Rounds: kernelBenchBigRounds,
			NewStepper: big(core.KernelParallel, "ring-parallel")},
		{Name: "walk-agents", Process: "walk", Graph: walkRing, K: kernelBenchWalkK,
			NewStepper: walk(randwalk.ModeAgents)},
		{Name: "walk-counts", Process: "walk", Graph: walkRing, K: kernelBenchWalkK,
			Baseline: "walk-agents", NewStepper: walk(randwalk.ModeCounts)},
	}
}

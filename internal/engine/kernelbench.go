package engine

import (
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/randwalk"
	"rotorring/internal/xrand"
)

// This file defines the fixed per-kernel throughput workloads shared by the
// root package's BenchmarkKernel benchmarks and the BENCH_engine.json
// trajectory (TestEmitBenchJSON): one rotor pair (generic engine versus the
// ring kernel) on the acceptance configuration Ring(2^16), and one walk
// pair (per-agent versus counts-based) at k = 10·n. Keeping the workload in
// one place means `make bench-kernels` and the committed JSON always
// measure the same thing.

// KernelBenchCase is one fixed kernel-tier throughput workload.
type KernelBenchCase struct {
	// Name identifies the case ("rotor-generic", "rotor-ring",
	// "walk-agents", "walk-counts") and doubles as the sub-benchmark name.
	Name string
	// Process is "rotor" or "walk".
	Process string
	// Graph names the topology, K the agent/walker count.
	Graph string
	K     int64
	// Baseline names the generic-tier counterpart this case's speedup is
	// stated against; empty for the baselines themselves.
	Baseline string
	// NewStepper builds a fresh simulator, runs a short warmup so the
	// measurement starts in the steady state (spread-out occupancy, warm
	// caches), and returns a function advancing one synchronous round.
	NewStepper func() (func(), error)
}

// kernelBenchWarmup is the number of pre-measurement rounds NewStepper
// runs: enough for an initial placement to spread into its steady-state
// occupancy profile.
const kernelBenchWarmup = 256

// Kernel benchmark scales: the rotor pair runs the ISSUE's acceptance
// configuration (ring of 2^16 nodes, dense population), the walk pair the
// k = 10·n regime where counts-based stepping matters.
const (
	kernelBenchRotorN = 1 << 16
	kernelBenchRotorK = kernelBenchRotorN / 2
	kernelBenchWalkN  = 1 << 13
	kernelBenchWalkK  = 10 * kernelBenchWalkN
)

// KernelBenchCases returns the fixed workload set, baselines first.
func KernelBenchCases() []KernelBenchCase {
	rotor := func(mode core.KernelMode) func() (func(), error) {
		return func() (func(), error) {
			g := graph.Ring(kernelBenchRotorN)
			// Random placement and pointers give irregular occupancy — the
			// steady-state shape of dense simulations — rather than the
			// lock-step march of an equally-spaced all-clockwise start.
			rng := xrand.New(1)
			sys, err := core.NewSystem(g,
				core.WithAgentsAt(core.RandomPositions(kernelBenchRotorN, kernelBenchRotorK, rng)...),
				core.WithPointers(core.PointersRandom(g, rng)),
				core.WithKernelMode(mode))
			if err != nil {
				return nil, err
			}
			if mode == core.KernelFast && sys.KernelName() != "ring" {
				return nil, fmt.Errorf("engine: ring kernel not selected (%s)", sys.KernelName())
			}
			sys.Run(kernelBenchWarmup)
			return sys.Step, nil
		}
	}
	walk := func(mode randwalk.Mode) func() (func(), error) {
		return func() (func(), error) {
			g := graph.Ring(kernelBenchWalkN)
			w, err := randwalk.New(g,
				core.EquallySpaced(kernelBenchWalkN, kernelBenchWalkK),
				xrand.New(1), randwalk.WithMode(mode))
			if err != nil {
				return nil, err
			}
			w.Run(kernelBenchWarmup)
			return w.Step, nil
		}
	}
	// The schedule-path case measures the perturbation subsystem's stepping
	// cost: the same dense rotor workload behind the schedule runner with a
	// permanent delay regime, so every round pays the per-node Binomial
	// hold draw plus the generic held-round engine — the worst case of the
	// scheduled path. Stated against rotor-generic, the gap is the price of
	// the scenario layer, not of the wrapper (whose pass-through rounds
	// delegate straight to the inner hot loop).
	scheduled := func() (func(), error) {
		g := graph.Ring(kernelBenchRotorN)
		rng := xrand.New(1)
		env := &JobEnv{
			Graph: g,
			Cell: Cell{Topology: "ring", N: kernelBenchRotorN, K: kernelBenchRotorK,
				Placement: PlaceRandom, Pointer: PtrRandom},
			Positions: core.RandomPositions(kernelBenchRotorN, kernelBenchRotorK, rng),
			Seed:      1,
			RNG:       rng,
		}
		p, err := newRotorProc(env)
		if err != nil {
			return nil, err
		}
		inst, err := parseSchedule("delay:p=0.25")
		if err != nil {
			return nil, err
		}
		sp, err := newScheduledProc(p, ProcRotor, inst, env)
		if err != nil {
			return nil, err
		}
		for i := 0; i < kernelBenchWarmup; i++ {
			sp.Step()
		}
		return sp.Step, nil
	}
	// The mission-path case measures the mission runner's stepping cost: the
	// same dense rotor workload with a patrol mission state attached, so
	// every round pays the generic engine (the arc observer excludes the
	// ring kernel) plus the per-move staleness bookkeeping. The horizon is
	// set far beyond the measurement so Done never fires. Stated against
	// rotor-generic, the gap is the price of per-arc observation.
	mission := func() (func(), error) {
		g := graph.Ring(kernelBenchRotorN)
		rng := xrand.New(1)
		env := &JobEnv{
			Graph: g,
			Cell: Cell{Topology: "ring", N: kernelBenchRotorN, K: kernelBenchRotorK,
				Placement: PlaceRandom, Pointer: PtrRandom},
			Positions: core.RandomPositions(kernelBenchRotorN, kernelBenchRotorK, rng),
			Seed:      1,
			RNG:       rng,
		}
		p, err := newRotorProc(env)
		if err != nil {
			return nil, err
		}
		mi, err := parseMission("patrol:horizon=1099511627776,warmup=0")
		if err != nil {
			return nil, err
		}
		st, err := mi.def.New(mi.plan, ProcRotor, env, p)
		if err != nil {
			return nil, err
		}
		for i := 0; i < kernelBenchWarmup; i++ {
			p.Step()
			st.Observe(p.Round())
		}
		return func() {
			p.Step()
			st.Observe(p.Round())
		}, nil
	}
	ringName := fmt.Sprintf("ring(%d)", kernelBenchRotorN)
	walkRing := fmt.Sprintf("ring(%d)", kernelBenchWalkN)
	return []KernelBenchCase{
		{Name: "rotor-generic", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			NewStepper: rotor(core.KernelGeneric)},
		{Name: "rotor-ring", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			Baseline: "rotor-generic", NewStepper: rotor(core.KernelFast)},
		{Name: "rotor-sched-delay", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			Baseline: "rotor-generic", NewStepper: scheduled},
		{Name: "rotor-mission-patrol", Process: "rotor", Graph: ringName, K: kernelBenchRotorK,
			Baseline: "rotor-generic", NewStepper: mission},
		{Name: "walk-agents", Process: "walk", Graph: walkRing, K: kernelBenchWalkK,
			NewStepper: walk(randwalk.ModeAgents)},
		{Name: "walk-counts", Process: "walk", Graph: walkRing, K: kernelBenchWalkK,
			Baseline: "walk-agents", NewStepper: walk(randwalk.ModeCounts)},
	}
}

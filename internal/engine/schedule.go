package engine

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is the engine's schedule registry, the fourth registry next to
// processes, metrics (process.go) and topologies (topology.go): sweeps name
// their perturbation scenarios as parameterized spec strings, and the
// registry supplies the parser and the deterministic compiler, so a new
// scenario family plugs in with one RegisterSchedule call — no engine
// edits, no new spec fields.
//
// Spec grammar (case-insensitive, canonicalized to lower case):
//
//	spec   = family [":" params]
//	params = key "=" value {"," key "=" value}   // family-specific keys
//
// A schedule compiles to a deterministic plan: a sorted stream of discrete
// events (edge failure/repair, agent churn, pointer resets) plus an
// optional per-round hold regime (delayed deployments, §2.1). The plan
// depends only on the canonical spec; every seed-dependent choice (which
// edge fails, who joins where) is drawn at apply time from the job's
// schedule stream, derived from the job seed and the canonical spec — never
// from worker identity — so scheduled sweeps keep the engine's
// bit-reproducibility across worker counts. The built-in families are in
// schedules.go, the wrapper that applies a plan to a running process in
// scheduled.go.

// Schedule is one parameterized schedule spec in a sweep, e.g. "none",
// "delay:p=0.25", "edgefail:t=1000,count=4", "churn:join=8@500,leave=4@900",
// "reset:t=256". Use ParseSchedule to validate and canonicalize one.
type Schedule string

func (s Schedule) String() string { return string(s) }

// SchedNone is the canonical no-perturbation schedule: cells carrying it
// run exactly the pristine, static process.
const SchedNone = "none"

// ScheduleEventKind enumerates the discrete perturbation events a plan may
// contain.
type ScheduleEventKind int

// Event kinds.
const (
	// EvEdgeFail deletes Count non-bridge edges, chosen uniformly from the
	// schedule stream (the graph stays connected by construction).
	EvEdgeFail ScheduleEventKind = iota + 1
	// EvRepair restores every edge deleted so far.
	EvRepair
	// EvJoin adds Count agents at positions drawn from the schedule stream.
	EvJoin
	// EvLeave removes Count agents chosen uniformly from the current
	// population (always leaving at least one).
	EvLeave
	// EvReset rewinds every rotor pointer to port 0.
	EvReset
)

func (k ScheduleEventKind) String() string {
	switch k {
	case EvEdgeFail:
		return "edgefail"
	case EvRepair:
		return "repair"
	case EvJoin:
		return "join"
	case EvLeave:
		return "leave"
	case EvReset:
		return "reset"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// ScheduleEvent is one discrete perturbation: Kind applied when the run
// reaches Round (after round Round completes, before round Round+1 steps).
type ScheduleEvent struct {
	Round int64
	Kind  ScheduleEventKind
	Count int
}

// SchedulePlan is the compiled, deterministic form of one schedule: what a
// job applies to its process. Plans are immutable and shared by every job
// of a cell.
type SchedulePlan struct {
	// Events is the discrete event stream, sorted by round.
	Events []ScheduleEvent
	// HoldP is the per-agent hold probability of the delayed-deployment
	// regime (0 = no holds): every round while the regime is active, each
	// agent independently skips its move with probability HoldP.
	HoldP float64
	// HoldUntil is the first round the hold regime no longer applies to;
	// math.MaxInt64 when unbounded. Meaningless while HoldP == 0.
	HoldUntil int64
	// BudgetFactor and BudgetOffset extend the automatic round budget of
	// perturbed jobs (see AutoBudget and the runner): budget =
	// auto·Factor + Offset. Factor >= 1; Offset is typically the last event
	// round, so post-event work keeps a full budget.
	BudgetFactor int64
	BudgetOffset int64
	// FaultRound is the round after which every discrete perturbation has
	// been applied (the boundary the re-stabilization metrics measure
	// from): the last event round, or the hold regime's end when bounded.
	// -1 when the schedule has no such boundary (no perturbation at all,
	// or an unbounded hold regime).
	FaultRound int64
}

// finalize sorts the event stream and derives FaultRound and the budget
// extension defaults; family compilers call it last.
func (p *SchedulePlan) finalize() *SchedulePlan {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].Round < p.Events[j].Round })
	p.FaultRound = -1
	if len(p.Events) > 0 {
		p.FaultRound = p.Events[len(p.Events)-1].Round
	}
	if p.HoldP > 0 && p.HoldUntil < math.MaxInt64 && p.HoldUntil > p.FaultRound {
		p.FaultRound = p.HoldUntil
	}
	if p.BudgetFactor < 1 {
		p.BudgetFactor = 1
	}
	if p.FaultRound > 0 && p.BudgetOffset < p.FaultRound {
		p.BudgetOffset = p.FaultRound
	}
	return p
}

// ScheduleDef describes one registered schedule family. Parse must be cheap
// (string validation only) — specs are validated eagerly, before any sweep
// worker starts. Compile must be deterministic given the canonical params:
// the engine's bit-reproducibility across worker counts rests on it.
type ScheduleDef struct {
	// Name is the registry key and the spec's family prefix, as it appears
	// in SweepSpec.Schedules, rows and CLI flags.
	Name string
	// Parse validates the spec's parameter string (the part after "name:",
	// empty when absent) and returns its canonical form. The canonical
	// spec re-parses to itself.
	Parse func(params string) (canonical string, err error)
	// Compile turns canonical params into the immutable plan a job applies.
	Compile func(params string) (*SchedulePlan, error)
}

var (
	scheduleMu sync.RWMutex
	schedules  = map[string]*ScheduleDef{}
)

// RegisterSchedule adds a schedule family to the registry. Names are
// normalized to lower case (specs lowercase their input before lookup);
// duplicate names panic: family names appear in specs, rows and derived
// file formats and must stay unambiguous.
func RegisterSchedule(d *ScheduleDef) {
	if d.Name == "" || d.Parse == nil || d.Compile == nil {
		panic("engine: RegisterSchedule needs a name, a parser and a compiler")
	}
	d.Name = strings.ToLower(d.Name)
	if strings.ContainsAny(d.Name, ": \t\n") {
		panic(fmt.Sprintf("engine: schedule name %q may not contain ':' or spaces", d.Name))
	}
	scheduleMu.Lock()
	defer scheduleMu.Unlock()
	if _, dup := schedules[d.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate schedule %q", d.Name))
	}
	schedules[d.Name] = d
}

// LookupSchedule returns a registered family by name.
func LookupSchedule(name string) (*ScheduleDef, bool) {
	scheduleMu.RLock()
	defer scheduleMu.RUnlock()
	d, ok := schedules[name]
	return d, ok
}

// ScheduleNames lists the registered family names, sorted.
func ScheduleNames() []string {
	scheduleMu.RLock()
	defer scheduleMu.RUnlock()
	names := make([]string, 0, len(schedules))
	for n := range schedules {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// schedInstance is the parsed, compiled form of one schedule spec.
type schedInstance struct {
	def       *ScheduleDef
	canonical string        // canonical spec string ("delay:p=0.25")
	plan      *SchedulePlan // immutable, shared by every job of the cell
}

// none reports whether the instance is the no-perturbation schedule.
func (si schedInstance) none() bool { return si.canonical == SchedNone }

// cellName is the schedule string a cell carries: empty for "none", so
// unperturbed rows serialize exactly as they did before schedules existed.
func (si schedInstance) cellName() string {
	if si.none() {
		return ""
	}
	return si.canonical
}

// parseSchedule parses, validates and compiles one spec string against the
// registry.
func parseSchedule(s string) (schedInstance, error) {
	str := strings.ToLower(strings.TrimSpace(s))
	name, params, _ := strings.Cut(str, ":")
	name = strings.TrimSpace(name)
	def, ok := LookupSchedule(name)
	if !ok {
		return schedInstance{}, fmt.Errorf("engine: unknown schedule %q (registered: %s)",
			name, strings.Join(ScheduleNames(), "|"))
	}
	canon, err := def.Parse(strings.TrimSpace(params))
	if err != nil {
		return schedInstance{}, fmt.Errorf("engine: schedule %q: %w", str, err)
	}
	plan, err := def.Compile(canon)
	if err != nil {
		return schedInstance{}, fmt.Errorf("engine: schedule %q: %w", str, err)
	}
	return schedInstance{
		def:       def,
		canonical: specString(def.Name, canon),
		plan:      plan,
	}, nil
}

// ParseSchedule validates a schedule spec string and returns its canonical
// form. The canonical form re-parses to itself.
func ParseSchedule(s string) (Schedule, error) {
	inst, err := parseSchedule(s)
	if err != nil {
		return "", err
	}
	return Schedule(inst.canonical), nil
}

// scheduleSeedOf derives the schedule stream seed of one job: every
// seed-dependent choice a schedule makes (failing edges, join positions,
// leaving agents, hold draws) is drawn from it. It folds the canonical spec
// into the job seed, so the same job under different schedules shares its
// initial configuration (directly comparable rows) while the perturbation
// streams decorrelate.
func scheduleSeedOf(jobSeed uint64, canonical string) uint64 {
	return DeriveSeed(jobSeed, hashString("schedule"), hashString(canonical))
}

// --- spec-string parsing helpers ------------------------------------------

// maxRound bounds every parsed round parameter so downstream budget
// arithmetic (auto·factor + offset) cannot overflow.
const maxRound = int64(1) << 40

// kvPairs parses a "k1=v1,k2=v2" parameter string, rejecting unknown and
// duplicate keys. allowed maps each key to a short value description used
// in errors.
func kvPairs(params string, allowed map[string]string) (map[string]string, error) {
	out := make(map[string]string, len(allowed))
	if params == "" {
		return out, nil
	}
	for _, part := range strings.Split(params, ",") {
		k, v, ok := strings.Cut(part, "=")
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("bad parameter %q (want key=value)", strings.TrimSpace(part))
		}
		if _, known := allowed[k]; !known {
			keys := make([]string, 0, len(allowed))
			for a := range allowed {
				keys = append(keys, a)
			}
			sort.Strings(keys)
			return nil, fmt.Errorf("unknown key %q (want %s)", k, strings.Join(keys, "|"))
		}
		if _, dup := out[k]; dup {
			return nil, fmt.Errorf("duplicate key %q", k)
		}
		out[k] = v
	}
	return out, nil
}

// roundValue parses a round-number value (>= 1, bounded by maxRound).
func roundValue(key, v string) (int64, error) {
	t, err := strconv.ParseInt(v, 10, 64)
	if err != nil || t < 1 {
		return 0, fmt.Errorf("%s=%s: want a positive round number", key, v)
	}
	if t > maxRound {
		return 0, fmt.Errorf("%s=%d exceeds the maximum %d", key, t, maxRound)
	}
	return t, nil
}

// countValue parses a count value (>= 1, small enough to stay sane).
func countValue(key, v string) (int, error) {
	c, err := strconv.Atoi(v)
	if err != nil || c < 1 {
		return 0, fmt.Errorf("%s=%s: want a positive count", key, v)
	}
	if c > maxDim {
		return 0, fmt.Errorf("%s=%d exceeds the maximum %d", key, c, maxDim)
	}
	return c, nil
}

// countAt parses a "<count>@<round>" value.
func countAt(key, v string) (int, int64, error) {
	cs, rs, ok := strings.Cut(v, "@")
	if !ok {
		return 0, 0, fmt.Errorf("%s=%s: want <count>@<round>", key, v)
	}
	c, err := countValue(key, strings.TrimSpace(cs))
	if err != nil {
		return 0, 0, err
	}
	r, err := roundValue(key, strings.TrimSpace(rs))
	if err != nil {
		return 0, 0, err
	}
	return c, r, nil
}

// formatFloat renders a probability canonically (shortest round-trip form).
func formatFloat(p float64) string {
	return strconv.FormatFloat(p, 'g', -1, 64)
}

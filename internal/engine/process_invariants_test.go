package engine

import (
	"fmt"
	"testing"

	"rotorring/internal/xrand"
)

// This file is the property-based conformance suite for the process
// registry: every registered process, on every registered topology family,
// with and without an active schedule, must satisfy the structural
// invariants the engine and the observers rely on — per-round visit
// conservation, Covered/Visits consistency, clone independence under
// divergent stepping, and Reset returning to the initial configuration.
// A process or schedule family added to the registries is picked up
// automatically.

// invariantTopos is one small instance per registered topology family
// (self-sized, so one spec pins one graph).
var invariantTopos = []string{
	"ring:32", "path:24", "grid:5", "torus:4", "complete:8", "star:12",
	"hypercube:3", "btree:3", "rr:3x16", "lollipop:5x7", "shuffled:grid:4",
}

// invariantSchedules is the schedule matrix: the empty string means
// unwrapped (no schedule runner at all), "none" exercises the canonical
// no-op, and the rest cover every built-in event kind plus held rounds.
var invariantSchedules = []string{
	"", SchedNone,
	"delay:p=0.25,until=24",
	"edgefail:t=6,count=2,repair=18",
	"churn:join=3@5,leave=2@11",
	"reset:t=9",
}

// buildInvariantProc constructs one job instance of a registered process on
// a topology spec, optionally behind the schedule runner. ok=false means
// the process lacks a capability the schedule needs (a legal combination to
// skip, mirroring the engine's per-job error rows).
func buildInvariantProc(t *testing.T, process, topoSpec, schedSpec string, seed uint64) (Proc, int, bool) {
	t.Helper()
	def, found := LookupProcess(process)
	if !found {
		t.Fatalf("process %q not registered", process)
	}
	inst, err := parseTopo(topoSpec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := buildInstance(inst, inst.size, GraphSeedForTest(seed, topoSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Positions come from a separate stream so the job generator starts
	// pristine: Reseed(seed) on a randomized process then matches a fresh
	// build exactly (the engine guarantees the same by never caching
	// randomly-placed cells).
	env := &JobEnv{
		Graph:     g,
		Cell:      Cell{Topology: inst.canonical, N: g.NumNodes(), K: 3, Placement: PlaceEqual, Pointer: PtrZero},
		Positions: randomPositionsForTest(g.NumNodes(), 3, xrand.New(seed^0xabcd)),
		Seed:      seed,
		RNG:       xrand.New(seed),
	}
	p, err := def.New(env)
	if err != nil {
		t.Fatalf("%s on %s: %v", process, topoSpec, err)
	}
	if schedSpec == "" {
		return p, g.NumNodes(), true
	}
	sc, err := parseSchedule(schedSpec)
	if err != nil {
		t.Fatal(err)
	}
	if sc.none() {
		return p, g.NumNodes(), true
	}
	sp, err := newScheduledProc(p, process, sc, env)
	if err != nil {
		return nil, 0, false // capability mismatch: skipped, like an error row
	}
	return sp, g.NumNodes(), true
}

// snapshotProc captures the observable state the invariants compare.
type procSnapshot struct {
	round   int64
	covered int
	agents  int64
	visits  []int64
}

func snapshot(p Proc, n int) procSnapshot {
	s := procSnapshot{
		round:   p.Round(),
		covered: p.Covered(),
		visits:  make([]int64, n),
	}
	if a, ok := measureTarget(p).(AgentCounter); ok {
		s.agents = a.NumAgents()
	}
	if v, ok := measureTarget(p).(VisitCounter); ok {
		for i := 0; i < n; i++ {
			s.visits[i] = v.Visits(i)
		}
	}
	return s
}

func (a procSnapshot) equal(b procSnapshot) bool {
	if a.round != b.round || a.covered != b.covered || a.agents != b.agents {
		return false
	}
	for i := range a.visits {
		if a.visits[i] != b.visits[i] {
			return false
		}
	}
	return true
}

// TestProcessInvariants runs the conformance matrix.
func TestProcessInvariants(t *testing.T) {
	const rounds = 32
	for _, process := range ProcessNames() {
		for _, topo := range invariantTopos {
			for _, sched := range invariantSchedules {
				name := fmt.Sprintf("%s/%s/%s", process, topo, sched)
				if sched == "" {
					name = fmt.Sprintf("%s/%s/unwrapped", process, topo)
				}
				t.Run(name, func(t *testing.T) {
					checkInvariants(t, process, topo, sched, rounds)
				})
			}
		}
	}
}

func checkInvariants(t *testing.T, process, topo, sched string, rounds int64) {
	seed := DeriveSeed(12345, hashString(process), hashString(topo), hashString(sched))
	p, nodes, ok := buildInvariantProc(t, process, topo, sched, seed)
	if !ok {
		t.Skipf("%s does not support schedule %s", process, sched)
	}

	vc, hasVisits := measureTarget(p).(VisitCounter)
	ac, hasAgents := measureTarget(p).(AgentCounter)
	if !hasVisits || !hasAgents {
		// Third-party registrations (including other tests' stub processes)
		// may not expose the optional counters; the conformance matrix
		// covers what a process implements, it does not force capabilities.
		t.Skipf("%s does not expose visit/agent counters", process)
	}

	initial := snapshot(p, nodes)
	if initial.round != 0 {
		t.Fatalf("fresh instance starts at round %d", initial.round)
	}

	// --- per-round conservation and coverage consistency ----------------
	scheduled := sched != "" && sched != SchedNone
	prevVisits := int64(0)
	for v := 0; v < nodes; v++ {
		prevVisits += vc.Visits(v)
	}
	for r := int64(0); r < rounds; r++ {
		kBefore := ac.NumAgents()
		p.Step()
		kAfter := ac.NumAgents()
		var total int64
		covered := 0
		for v := 0; v < nodes; v++ {
			x := vc.Visits(v)
			if x < 0 {
				t.Fatalf("round %d: negative visit count at node %d", p.Round(), v)
			}
			if x > 0 {
				covered++
			}
			total += x
		}
		delta := total - prevVisits
		prevVisits = total
		// Visit conservation: every moving agent produces exactly one
		// arrival. Unscheduled rounds move every agent; scheduled rounds
		// may hold agents (delta < k) and churn events add join-visits, so
		// the bound is against the larger population plus joins.
		if !scheduled {
			if delta != kAfter {
				t.Fatalf("round %d: visit delta %d != agents %d", p.Round(), delta, kAfter)
			}
		} else {
			maxK := kBefore
			if kAfter > maxK {
				maxK = kAfter
			}
			if delta < 0 || delta > 2*maxK {
				t.Fatalf("round %d: scheduled visit delta %d outside [0, %d]", p.Round(), delta, 2*maxK)
			}
		}
		// Covered()/Visits() consistency.
		if got := p.Covered(); got != covered {
			t.Fatalf("round %d: Covered() = %d but %d nodes have visits", p.Round(), got, covered)
		}
		if kAfter < 1 {
			t.Fatalf("round %d: population dropped to %d", p.Round(), kAfter)
		}
	}

	// --- clone independence after divergent stepping ---------------------
	if _, ok := measureTarget(p).(Cloner); !ok {
		t.Skipf("%s does not implement Cloner", process)
	}
	clone := cloneProc(p)
	mark := snapshot(clone, nodes)
	for i := 0; i < 8; i++ {
		p.Step() // step only the original
	}
	if !snapshot(clone, nodes).equal(mark) {
		t.Fatal("stepping the original mutated the clone")
	}
	// The clone evolves exactly as the original did from the shared state
	// for deterministic processes (randomized ones clone their generator,
	// so the trajectories also coincide).
	for i := 0; i < 8; i++ {
		clone.Step()
	}
	if !snapshot(clone, nodes).equal(snapshot(p, nodes)) {
		t.Fatal("clone diverged from the original over the same rounds")
	}

	// --- Reset returns to the initial configuration ----------------------
	p.Reset()
	if !snapshot(p, nodes).equal(initial) {
		t.Fatal("Reset did not restore the initial configuration")
	}
	// A deterministic process replays the identical trajectory after
	// Reset; a randomized one does after Reseed+Reset.
	if r, ok := p.(Reseeder); ok {
		r.Reseed(seed)
		p.Reset()
	}
	replayRef, _, ok2 := buildInvariantProc(t, process, topo, sched, seed)
	if !ok2 {
		t.Fatal("rebuild failed")
	}
	for i := int64(0); i < rounds; i++ {
		p.Step()
		replayRef.Step()
	}
	if !snapshot(p, nodes).equal(snapshot(replayRef, nodes)) {
		t.Fatal("post-Reset replay differs from a fresh instance")
	}
}

// GraphSeedForTest mirrors the sweep's graph-seed derivation for directly
// built instances.
func GraphSeedForTest(base uint64, spec string) uint64 {
	return graphSeedOf(base, spec)
}

// randomPositionsForTest draws k uniform positions like the runner's
// PlaceRandom.
func randomPositionsForTest(n, k int, rng *xrand.Rand) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = rng.Intn(n)
	}
	return out
}

package engine

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"rotorring/internal/graph"
)

// TestParseScheduleRoundTrip: canonical forms, normalization, and rejected
// specs of the schedule grammar.
func TestParseScheduleRoundTrip(t *testing.T) {
	good := map[string]string{
		"none":                          "none",
		"  NONE ":                       "none",
		"delay:p=0.25":                  "delay:p=0.25",
		"Delay:until=100,p=0.5":         "delay:p=0.5,until=100",
		"edgefail:t=1000":               "edgefail:t=1000,count=1",
		"edgefail:count=4,t=1000":       "edgefail:t=1000,count=4",
		"EDGEFAIL:t=9,repair=11":        "edgefail:t=9,count=1,repair=11",
		"churn:join=8@500":              "churn:join=8@500",
		"churn:leave=4@900,join=8@500":  "churn:join=8@500,leave=4@900",
		"churn:leave=1@7":               "churn:leave=1@7",
		"reset:t=256":                   "reset:t=256",
		"edgefail:t=3,count=2,repair=8": "edgefail:t=3,count=2,repair=8",
	}
	for in, want := range good {
		got, err := ParseSchedule(in)
		if err != nil {
			t.Errorf("ParseSchedule(%q): %v", in, err)
			continue
		}
		if string(got) != want {
			t.Errorf("ParseSchedule(%q) = %q, want %q", in, got, want)
		}
		// The canonical form is a parse fixed point.
		again, err := ParseSchedule(string(got))
		if err != nil || again != got {
			t.Errorf("canonical %q is not a fixed point: %q, %v", got, again, err)
		}
	}
	bad := []string{
		"", "unknown", "none:x=1", "delay", "delay:p=0", "delay:p=1.5",
		"delay:p=0.5,p=0.5", "delay:q=1", "edgefail", "edgefail:count=2",
		"edgefail:t=5,repair=5", "edgefail:t=5,repair=4", "edgefail:t=-2",
		"churn", "churn:join=0@5", "churn:join=5", "churn:join=5@",
		"reset", "reset:t=0", "delay:p=0.25,until=0",
	}
	for _, in := range bad {
		if got, err := ParseSchedule(in); err == nil {
			t.Errorf("ParseSchedule(%q) = %q, want error", in, got)
		}
	}
}

// FuzzParseSchedule: whatever the input, a successful parse returns a
// canonical form that re-parses to itself with an identical compiled plan,
// and parsing never panics.
func FuzzParseSchedule(f *testing.F) {
	for _, s := range []string{
		"none", "delay:p=0.25", "delay:p=0.5,until=100",
		"edgefail:t=1000,count=4", "edgefail:t=9,repair=11",
		"churn:join=8@500,leave=4@900", "reset:t=256",
		"  Delay : p = 0.125 ", "delay:p=1e-3", "edgefail:t=5,count=0",
		"churn:join=1@1", "none:x", ":::", "delay:p=nan", "reset:t=99999999999",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		inst, err := parseSchedule(s)
		if err != nil {
			return
		}
		again, err := parseSchedule(inst.canonical)
		if err != nil {
			t.Fatalf("canonical %q of %q does not re-parse: %v", inst.canonical, s, err)
		}
		if again.canonical != inst.canonical {
			t.Fatalf("canonical %q is not a fixed point: %q", inst.canonical, again.canonical)
		}
		if !reflect.DeepEqual(again.plan, inst.plan) {
			t.Fatalf("canonical %q compiles differently: %+v vs %+v", inst.canonical, again.plan, inst.plan)
		}
		if inst.plan.BudgetFactor < 1 {
			t.Fatalf("%q: budget factor %d < 1", inst.canonical, inst.plan.BudgetFactor)
		}
	})
}

// mixedScheduleSpec sweeps every built-in schedule family next to "none",
// with randomized placement and pointers, on both processes' shared grid.
func mixedScheduleSpec(process string) SweepSpec {
	schedules := []Schedule{
		"none", "edgefail:t=12,count=2,repair=40", "churn:join=3@8,leave=2@16",
	}
	if process == ProcRotor {
		// Held rounds and pointer resets are rotor capabilities.
		schedules = append(schedules, "delay:p=0.5,until=64", "reset:t=10")
	}
	return SweepSpec{
		Topologies: []Topo{"ring", "grid:6x5"},
		Sizes:      []int{32},
		Agents:     []int{3},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		Process:    process,
		Schedules:  schedules,
		Replicas:   2,
		Seed:       271828,
	}
}

// TestScheduledSweepDeterministic is the acceptance contract for the
// schedule subsystem: mixed scheduled sweeps are byte-identical at 1 vs 8
// workers, for both processes.
func TestScheduledSweepDeterministic(t *testing.T) {
	for _, proc := range []string{ProcRotor, ProcWalk} {
		t.Run(proc, func(t *testing.T) {
			spec := mixedScheduleSpec(proc)
			rows1, jsonl1, csv1 := runToBytes(t, New(Workers(1)), spec)
			rows8, jsonl8, csv8 := runToBytes(t, New(Workers(8)), spec)
			if !reflect.DeepEqual(rows1, rows8) {
				t.Fatalf("rows differ between 1 and 8 workers")
			}
			if !bytes.Equal(jsonl1, jsonl8) {
				t.Errorf("JSONL output differs between 1 and 8 workers")
			}
			if !bytes.Equal(csv1, csv8) {
				t.Errorf("CSV output differs between 1 and 8 workers")
			}
			for _, r := range rows1 {
				if r.Err != "" {
					t.Errorf("job cell=%d (schedule %q) replica=%d failed: %s",
						r.Index, r.Cell.Schedule, r.Replica, r.Err)
				}
			}
		})
	}
}

// TestScheduleSharesInitialConfiguration: job seeds do not depend on the
// schedule, so the same cell under "none" and a schedule whose events never
// fire measures identically — directly comparable rows.
func TestScheduleSharesInitialConfiguration(t *testing.T) {
	spec := SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{48},
		Agents:     []int{4},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		// The fault round is far beyond the cover time, so the scheduled
		// cell runs exactly the pristine trajectory.
		Schedules: []Schedule{"none", "edgefail:t=1000000"},
		Replicas:  2,
		Seed:      99,
	}
	rows, err := New(Workers(4)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for rep := 0; rep < 2; rep++ {
		none, sched := rows[rep], rows[2+rep]
		if none.Seed != sched.Seed {
			t.Errorf("replica %d: job seed depends on the schedule (%d vs %d)", rep, none.Seed, sched.Seed)
		}
		if none.Value != sched.Value || none.Rounds != sched.Rounds {
			t.Errorf("replica %d: unfired schedule changes the measurement (%v/%d vs %v/%d)",
				rep, none.Value, none.Rounds, sched.Value, sched.Rounds)
		}
	}
}

// TestDelayOnlySlowsCoverage: Lemma 1/3 through the registry — for every
// shared initial configuration, the delayed cover time dominates the
// pristine one.
func TestDelayOnlySlowsCoverage(t *testing.T) {
	spec := SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{64},
		Agents:     []int{2, 4},
		Placements: []Placement{PlaceRandom},
		Pointers:   []Pointer{PtrRandom},
		Schedules:  []Schedule{"none", "delay:p=0.5"},
		Replicas:   3,
		Seed:       7,
	}
	rows, err := New(Workers(4)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+5 < len(rows); i += 6 { // 2 schedules x 3 replicas per (k)
		for rep := 0; rep < 3; rep++ {
			none, delayed := rows[i+rep], rows[i+3+rep]
			if none.Err != "" || delayed.Err != "" {
				t.Fatalf("unexpected error rows: %q / %q", none.Err, delayed.Err)
			}
			if delayed.Value < none.Value {
				t.Errorf("k=%d replica=%d: delayed cover %v < pristine %v",
					none.K, rep, delayed.Value, none.Value)
			}
		}
	}
}

// TestScheduleCapabilityRows: a schedule the process cannot support fails
// as a per-job row naming process and schedule, not a crash — and the rest
// of the grid still runs.
func TestScheduleCapabilityRows(t *testing.T) {
	rows, err := New(Workers(2)).Run(SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{24},
		Agents:     []int{3},
		Process:    ProcWalk,
		Schedules:  []Schedule{"delay:p=0.5", "churn:join=2@4"},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	if !strings.Contains(rows[0].Err, "does not support schedule") ||
		!strings.Contains(rows[0].Err, "walk") {
		t.Errorf("walk+delay row error = %q, want capability failure", rows[0].Err)
	}
	if rows[1].Err != "" {
		t.Errorf("walk+churn should run, got error %q", rows[1].Err)
	}
}

// TestScheduleSpecValidation: malformed schedules and unsupported
// metric/schedule combinations fail the sweep before any worker starts.
func TestScheduleSpecValidation(t *testing.T) {
	base := SweepSpec{Sizes: []int{16}, Agents: []int{2}}

	bad := base
	bad.Schedules = []Schedule{"bogus:t=1"}
	if _, err := New(Workers(1)).Run(bad); err == nil {
		t.Error("unknown schedule family accepted")
	}

	ret := base
	ret.Metric = MetricReturn
	ret.Schedules = []Schedule{"reset:t=5"}
	if _, err := New(Workers(1)).Run(ret); err == nil {
		t.Error("return metric accepted a schedule")
	}

	restab := base
	restab.Metric = MetricRestab
	if _, err := New(Workers(1)).Run(restab); err == nil {
		t.Error("restab_time accepted a sweep with no faulted schedule")
	}

	restab.Schedules = []Schedule{"delay:p=0.5"} // unbounded: no fault boundary
	if _, err := New(Workers(1)).Run(restab); err == nil {
		t.Error("restab_time accepted an unbounded delay schedule")
	}

	restab.Schedules = []Schedule{"edgefail:t=64"}
	if _, err := New(Workers(1)).Run(restab); err != nil {
		t.Errorf("restab_time rejected a faulted schedule: %v", err)
	}
}

// TestScheduledBudgetRule: the automatic budget of a perturbed cell is the
// unperturbed automatic budget times the plan's factor plus its offset, so
// a late fault cannot eat the measurement budget; an explicit MaxRounds is
// taken literally.
func TestScheduledBudgetRule(t *testing.T) {
	g := mustBuildGraph(t, "ring", 32)
	auto := AutoBudget(g, ProcRotor, MetricCover)

	inst, err := parseSchedule("edgefail:t=5000,count=1")
	if err != nil {
		t.Fatal(err)
	}
	spec := SweepSpec{Process: ProcRotor, Metric: MetricCover}
	cell := Cell{sched: inst}
	if got, want := budget(&spec, cell, g), auto*inst.plan.BudgetFactor+5000; got != want {
		t.Errorf("scheduled budget = %d, want %d", got, want)
	}
	if inst.plan.BudgetFactor < 2 {
		t.Errorf("edgefail budget factor = %d, want >= 2", inst.plan.BudgetFactor)
	}

	none, err := parseSchedule("none")
	if err != nil {
		t.Fatal(err)
	}
	if got := budget(&spec, Cell{sched: none}, g); got != auto {
		t.Errorf("unscheduled budget = %d, want %d", got, auto)
	}

	spec.MaxRounds = 777
	if got := budget(&spec, cell, g); got != 777 {
		t.Errorf("explicit MaxRounds not taken literally: %d", got)
	}

	// The delay factor scales with the expected slow-down and stays
	// bounded because p is capped.
	slow, err := parseSchedule("delay:p=0.9")
	if err != nil {
		t.Fatal(err)
	}
	if f := slow.plan.BudgetFactor; f < 10 || f > 200 {
		t.Errorf("delay:p=0.9 budget factor = %d, want a bounded multiple of 1/(1-p)", f)
	}
}

// TestRestabMetricOnCutRing: X9's acceptance shape at test scale — after a
// single edge failure on ring:n, the measured re-stabilization time stays
// within the O(D·|E|) bound of the cut graph across sizes.
func TestRestabMetricOnCutRing(t *testing.T) {
	for _, n := range []int{24, 48} {
		fault := int64(8 * n * n)
		rows, err := New(Workers(2)).Run(SweepSpec{
			Topologies: []Topo{"ring"},
			Sizes:      []int{n},
			Agents:     []int{2},
			Placements: []Placement{PlaceRandom},
			Pointers:   []Pointer{PtrRandom},
			Metric:     MetricRestab,
			Schedules:  []Schedule{Schedule("edgefail:t=" + itoa(fault) + ",count=1")},
			Seed:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rows[0]
		if r.Err != "" {
			t.Fatalf("n=%d: %s", n, r.Err)
		}
		bound := 2 * float64(n-1) * float64(n-1) // 2·D·|E| of the cut ring
		if r.Value < 0 || r.Value > bound {
			t.Errorf("n=%d: restab %v outside [0, %v]", n, r.Value, bound)
		}
		if r.Rounds <= fault {
			t.Errorf("n=%d: measurement never passed the fault round (%d <= %d)", n, r.Rounds, fault)
		}
		if r.Period <= 0 {
			t.Errorf("n=%d: no limit cycle period reported", n)
		}
	}
}

// TestCoverAfterFaultMetric: re-coverage after a fault is measured from the
// fault round and works for both processes.
func TestCoverAfterFaultMetric(t *testing.T) {
	for _, proc := range []string{ProcRotor, ProcWalk} {
		rows, err := New(Workers(2)).Run(SweepSpec{
			Topologies: []Topo{"ring"},
			Sizes:      []int{32},
			Agents:     []int{4},
			Placements: []Placement{PlaceEqual},
			Process:    proc,
			Metric:     MetricCoverAfterFault,
			Schedules:  []Schedule{"edgefail:t=200,count=1"},
			Seed:       8,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := rows[0]
		if r.Err != "" {
			t.Fatalf("%s: %s", proc, r.Err)
		}
		if r.Value <= 0 || r.Value > math.MaxInt32 {
			t.Errorf("%s: cover_after_fault = %v, want a positive round count", proc, r.Value)
		}
		if r.Rounds <= 200 {
			t.Errorf("%s: measurement never passed the fault round (%d)", proc, r.Rounds)
		}
	}
}

// TestScheduledProbesSpanFaultEpochs: probe series attached to a scheduled
// job sample on both sides of the fault round.
func TestScheduledProbesSpanFaultEpochs(t *testing.T) {
	rows, err := New(Workers(1)).Run(SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{64},
		Agents:     []int{1},
		Placements: []Placement{PlaceSingle},
		Pointers:   []Pointer{PtrToward}, // the Theta(n^2) worst case: plenty of rounds
		Schedules:  []Schedule{"edgefail:t=64,count=1"},
		Probes:     []ProbeSpec{{Name: "coverage", Stride: 16}},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.Err != "" {
		t.Fatal(r.Err)
	}
	var before, after bool
	for _, pt := range r.Series {
		if pt.Round < 64 {
			before = true
		}
		if pt.Round > 64 {
			after = true
		}
	}
	if !before || !after {
		t.Errorf("probe series does not span the fault epoch (before=%v after=%v, %d points)",
			before, after, len(r.Series))
	}
}

// itoa formats an int64 without importing strconv at every call site.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// mustBuildGraph builds a registered topology for tests.
func mustBuildGraph(t *testing.T, topo string, n int) *graph.Graph {
	t.Helper()
	g, err := BuildGraph(topo, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

package engine

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"rotorring/internal/graph"
)

// benchJSON, when set, makes TestEmitBenchJSON measure the sequential
// baseline against the engine at several worker counts — plus the
// per-kernel step throughputs — and write the trajectory to the given path
// (BENCH_engine.json at the repo root via `make bench-json`).
var benchJSON = flag.String("bench-json", "", "write engine benchmark results to this JSON file")

// benchBaseline, when set, makes TestPrintBenchBaseline print the kernel
// entries of the given BENCH_engine.json as benchstat-compatible lines
// (`make bench-baseline`), so a PR can diff its `make bench-kernels` output
// against the committed trajectory with plain benchstat.
var benchBaseline = flag.String("bench-baseline", "", "print the kernel entries of this BENCH_engine.json in go-bench format")

// benchForce overrides the GOMAXPROCS guard of TestEmitBenchJSON: a
// trajectory generated on one processor understates every parallel speedup
// (worker ladder and parallel kernel alike), so emission refuses by default
// and requires an explicit opt-in to commit a starved baseline.
var benchForce = flag.Bool("bench-force", false, "emit bench JSON even when GOMAXPROCS==1 (starved baseline)")

// benchSpec is the fixed workload benchmarks and the JSON trajectory share:
// a rotor cover-time grid whose cells are heavy enough (~(n/k)^2 rounds)
// that scheduling overhead is negligible against simulation work.
func benchSpec() SweepSpec {
	return SweepSpec{
		Topology:   "ring",
		Sizes:      []int{256, 384, 512, 640},
		Agents:     []int{2, 3, 4, 6},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrNegative},
		Replicas:   2,
		Seed:       7,
	}
}

// benchWorkerCounts is the worker-pool ladder of the sweep trajectory.
var benchWorkerCounts = []int{1, 2, 4, 8}

// runSequential is the pre-engine code path: every cell measured one after
// another on a single goroutine, no pool, no sinks. It is the baseline the
// engine's speedup is stated against.
func runSequential(spec SweepSpec) ([]Row, error) {
	norm, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	cells, err := norm.Cells()
	if err != nil {
		return nil, err
	}
	w := newWorker(newGraphCache())
	rows := make([]Row, 0, len(cells)*norm.Replicas)
	for _, c := range cells {
		for r := 0; r < norm.Replicas; r++ {
			rows = append(rows, w.runJob(&norm, c, r))
		}
	}
	return rows, nil
}

// BenchmarkSequentialSweep measures the single-goroutine baseline.
func BenchmarkSequentialSweep(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		if _, err := runSequential(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweep measures the engine at increasing worker counts; on
// a multi-core runner throughput scales near-linearly until the pool
// exceeds the cores.
func BenchmarkEngineSweep(b *testing.B) {
	spec := benchSpec()
	for _, workers := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Workers(workers))
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchResult is one measured point of the sweep trajectory.
type benchResult struct {
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobsPerSec"`
	// Speedup is throughput relative to the sequential baseline.
	Speedup float64 `json:"speedup"`
}

// kernelResult is one measured kernel-tier throughput (see
// KernelBenchCases).
type kernelResult struct {
	Name   string `json:"name"`
	Graph  string `json:"graph"`
	K      int64  `json:"k"`
	Rounds int64  `json:"rounds"`
	// Seconds is the best-of-reps wall time for Rounds rounds.
	Seconds      float64 `json:"seconds"`
	RoundsPerSec float64 `json:"roundsPerSec"`
	// StepsPerSec is agent-steps per second: RoundsPerSec × K.
	StepsPerSec float64 `json:"stepsPerSec"`
	// Speedup is relative to the case's generic-tier baseline (1.0 for the
	// baselines themselves).
	Speedup float64 `json:"speedup,omitempty"`
}

// graphResult is the measured graph-build-vs-cache entry: what one cold
// construction of a representative topology costs against a warm hit in
// the sweep-scoped shared cache (which is what every job after the first
// pays per (topology, size, seed) since PR 4 — before, each worker rebuilt
// its own copy).
type graphResult struct {
	Spec  string `json:"spec"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
	// BuildSeconds is the best-of-reps cold construction time;
	// CachedSeconds is the mean warm cache-hit time.
	BuildSeconds  float64 `json:"buildSeconds"`
	CachedSeconds float64 `json:"cachedSeconds"`
	// Speedup is BuildSeconds / CachedSeconds: the per-job saving factor
	// for every job that shares an already-built graph.
	Speedup float64 `json:"speedup"`
}

// benchFile is the schema of BENCH_engine.json.
type benchFile struct {
	Benchmark string `json:"benchmark"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is the machine's logical core count (runtime.NumCPU);
	// GoMaxProcs is how many of them the Go scheduler was allowed to use
	// when the file was generated. Speedup trajectories are only
	// meaningful when GoMaxProcs covers the worker counts measured.
	CPUs        int            `json:"cpus"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	GoVersion   string         `json:"goVersion"`
	Jobs        int            `json:"jobs"`
	SeqSeconds  float64        `json:"sequentialSeconds"`
	Results     []benchResult  `json:"results"`
	Kernels     []kernelResult `json:"kernels"`
	Graphs      []graphResult  `json:"graphs"`
	GeneratedAt string         `json:"generatedAt"`
}

// timeIt returns the best-of-reps wall time of fn.
func timeIt(t *testing.T, reps int, fn func() error) float64 {
	t.Helper()
	best := 0.0
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			t.Fatal(err)
		}
		if sec := time.Since(start).Seconds(); i == 0 || sec < best {
			best = sec
		}
	}
	return best
}

// measureKernels times every kernel workload over a fixed round count
// (per-case overrides for heavyweight configurations), best of three fresh
// builds (construction excluded from the clock).
func measureKernels(t *testing.T) []kernelResult {
	t.Helper()
	const defaultRounds = 192
	out := make([]kernelResult, 0, 4)
	baseline := make(map[string]float64) // name -> rounds/sec
	for _, kc := range KernelBenchCases() {
		rounds := kc.Rounds
		if rounds == 0 {
			rounds = defaultRounds
		}
		// Best of three fresh builds; construction stays off the clock.
		var sec float64
		for rep := 0; rep < 3; rep++ {
			step, err := kc.NewStepper()
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			for i := 0; i < rounds; i++ {
				step()
			}
			if elapsed := time.Since(start).Seconds(); rep == 0 || elapsed < sec {
				sec = elapsed
			}
		}
		kr := kernelResult{
			Name:         kc.Name,
			Graph:        kc.Graph,
			K:            kc.K,
			Rounds:       int64(rounds),
			Seconds:      sec,
			RoundsPerSec: float64(rounds) / sec,
		}
		kr.StepsPerSec = kr.RoundsPerSec * float64(kc.K)
		if kc.Baseline == "" {
			kr.Speedup = 1
			baseline[kc.Name] = kr.RoundsPerSec
		} else {
			kr.Speedup = kr.RoundsPerSec / baseline[kc.Baseline]
		}
		out = append(out, kr)
	}
	return out
}

// measureGraphCache times one representative topology build against a warm
// hit in the shared graph cache.
func measureGraphCache(t *testing.T) []graphResult {
	t.Helper()
	out := make([]graphResult, 0, 2)
	for _, spec := range []Topo{"torus:192x192", "rr:4x16384"} {
		inst, err := parseTopo(string(spec))
		if err != nil {
			t.Fatal(err)
		}
		seed := graphSeedOf(1, inst.canonical)
		var g *graph.Graph
		build := timeIt(t, 3, func() error {
			var err error
			g, err = buildInstance(inst, 0, seed)
			return err
		})
		// Warm cache: every hit after the first build is one mutex-guarded
		// map lookup; average a batch so the clock resolves it.
		cache := newGraphCache()
		key := graphKey{spec: inst.canonical, seed: seed}
		if _, err := cache.get(key, func() (*graph.Graph, error) { return g, nil }); err != nil {
			t.Fatal(err)
		}
		const hits = 1 << 16
		cached := timeIt(t, 3, func() error {
			for i := 0; i < hits; i++ {
				if _, err := cache.get(key, func() (*graph.Graph, error) { return g, nil }); err != nil {
					return err
				}
			}
			return nil
		}) / hits
		out = append(out, graphResult{
			Spec:          inst.canonical,
			Nodes:         g.NumNodes(),
			Edges:         g.NumEdges(),
			BuildSeconds:  build,
			CachedSeconds: cached,
			Speedup:       build / cached,
		})
	}
	return out
}

// TestEmitBenchJSON records the perf trajectory. It is a no-op unless
// -bench-json is set, so the regular test suite stays fast.
func TestEmitBenchJSON(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("enable with -bench-json <path>")
	}
	spec := benchSpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}

	maxWorkers := benchWorkerCounts[len(benchWorkerCounts)-1]
	if procs := runtime.GOMAXPROCS(0); procs == 1 && !*benchForce {
		// A one-processor run starves every parallel measurement (the worker
		// ladder and the parallel ring stepper both degrade to serial);
		// committing such a trajectory as the baseline misstates the
		// engine's scaling. Refuse unless explicitly overridden.
		t.Fatal("refusing to emit bench JSON with GOMAXPROCS=1: parallel speedups would be " +
			"measured starved (set GOMAXPROCS>=4, as the CI bench job does, or pass -bench-force " +
			"to record a starved baseline deliberately)")
	} else if procs < maxWorkers {
		// The worker ladder cannot scale past the scheduler's processor
		// cap; the committed trajectory should say so loudly.
		fmt.Fprintf(os.Stderr,
			"WARNING: GOMAXPROCS=%d < %d workers; speedups above %dx are unreachable on this run "+
				"(set GOMAXPROCS, as the CI bench job does)\n",
			procs, maxWorkers, procs)
	}

	// Warm up once so first-run effects (page faults, frequency ramp)
	// don't land on the baseline.
	if _, err := runSequential(spec); err != nil {
		t.Fatal(err)
	}

	out := benchFile{
		Benchmark:   "EngineSweep",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion:   runtime.Version(),
		Jobs:        len(cells) * spec.Replicas,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	out.SeqSeconds = timeIt(t, 3, func() error {
		_, err := runSequential(spec)
		return err
	})
	for _, workers := range benchWorkerCounts {
		e := New(Workers(workers))
		sec := timeIt(t, 3, func() error {
			_, err := e.Run(spec)
			return err
		})
		out.Results = append(out.Results, benchResult{
			Workers:    workers,
			Seconds:    sec,
			JobsPerSec: float64(out.Jobs) / sec,
			Speedup:    out.SeqSeconds / sec,
		})
	}
	out.Kernels = measureKernels(t)
	out.Graphs = measureGraphCache(t)

	f, err := os.Create(*benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: sequential %.3fs, %d jobs, cpus=%d gomaxprocs=%d",
		*benchJSON, out.SeqSeconds, out.Jobs, out.CPUs, out.GoMaxProcs)
	for _, r := range out.Results {
		t.Logf("  workers=%d  %.3fs  %.1f jobs/s  speedup %.2fx", r.Workers, r.Seconds, r.JobsPerSec, r.Speedup)
	}
	for _, kr := range out.Kernels {
		t.Logf("  kernel %-13s %s k=%-6d  %.3e steps/s  speedup %.2fx",
			kr.Name, kr.Graph, kr.K, kr.StepsPerSec, kr.Speedup)
	}
	for _, gr := range out.Graphs {
		t.Logf("  graph  %-13s %d nodes  build %.2e s  cached %.2e s  speedup %.0fx",
			gr.Spec, gr.Nodes, gr.BuildSeconds, gr.CachedSeconds, gr.Speedup)
	}
}

// TestPrintBenchBaseline converts the committed BENCH_engine.json kernel
// entries into go-bench formatted lines on stdout, so
// `benchstat <(make -s bench-baseline) new.txt` compares a PR's
// `make bench-kernels` run against the committed trajectory. A no-op
// unless -bench-baseline is set.
func TestPrintBenchBaseline(t *testing.T) {
	if *benchBaseline == "" {
		t.Skip("enable with -bench-baseline <path>")
	}
	data, err := os.ReadFile(*benchBaseline)
	if err != nil {
		t.Fatal(err)
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	if len(f.Kernels) == 0 {
		t.Fatalf("%s has no kernel entries; regenerate with make bench-json", *benchBaseline)
	}
	// Mirror the testing package's name suffix (-GOMAXPROCS unless 1) for
	// the environment the comparison run will use — the current one, not
	// whatever generated the JSON — so benchstat matches the names that a
	// `make bench-kernels` in the same shell produces.
	suffix := ""
	if procs := runtime.GOMAXPROCS(0); procs > 1 {
		suffix = fmt.Sprintf("-%d", procs)
	}
	for _, kr := range f.Kernels {
		nsPerRound := kr.Seconds / float64(kr.Rounds) * 1e9
		fmt.Fprintf(os.Stdout, "BenchmarkKernel/%s%s \t%8d\t%12.0f ns/op\t%14.0f steps/sec\n",
			kr.Name, suffix, kr.Rounds, nsPerRound, kr.StepsPerSec)
	}
}

package engine

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// benchJSON, when set, makes TestEmitBenchJSON measure the sequential
// baseline against the engine at several worker counts and write the
// trajectory to the given path (BENCH_engine.json at the repo root via
// `make bench-json`).
var benchJSON = flag.String("bench-json", "", "write engine benchmark results to this JSON file")

// benchSpec is the fixed workload benchmarks and the JSON trajectory share:
// a rotor cover-time grid whose cells are heavy enough (~(n/k)^2 rounds)
// that scheduling overhead is negligible against simulation work.
func benchSpec() SweepSpec {
	return SweepSpec{
		Topology:   "ring",
		Sizes:      []int{256, 384, 512, 640},
		Agents:     []int{2, 3, 4, 6},
		Placements: []Placement{PlaceEqual},
		Pointers:   []Pointer{PtrNegative},
		Replicas:   2,
		Seed:       7,
	}
}

// runSequential is the pre-engine code path: every cell measured one after
// another on a single goroutine, no pool, no sinks. It is the baseline the
// engine's speedup is stated against.
func runSequential(spec SweepSpec) ([]Row, error) {
	norm, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	cells, err := norm.Cells()
	if err != nil {
		return nil, err
	}
	w := newWorker()
	rows := make([]Row, 0, len(cells)*norm.Replicas)
	for _, c := range cells {
		for r := 0; r < norm.Replicas; r++ {
			rows = append(rows, w.runJob(&norm, c, r))
		}
	}
	return rows, nil
}

// BenchmarkSequentialSweep measures the single-goroutine baseline.
func BenchmarkSequentialSweep(b *testing.B) {
	spec := benchSpec()
	for i := 0; i < b.N; i++ {
		if _, err := runSequential(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweep measures the engine at increasing worker counts; on
// a multi-core runner throughput scales near-linearly until the pool
// exceeds the cores.
func BenchmarkEngineSweep(b *testing.B) {
	spec := benchSpec()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			e := New(Workers(workers))
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchResult is one measured point of the trajectory file.
type benchResult struct {
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobsPerSec"`
	// Speedup is throughput relative to the sequential baseline.
	Speedup float64 `json:"speedup"`
}

// benchFile is the schema of BENCH_engine.json.
type benchFile struct {
	Benchmark   string        `json:"benchmark"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	CPUs        int           `json:"cpus"`
	GoVersion   string        `json:"goVersion"`
	Jobs        int           `json:"jobs"`
	SeqSeconds  float64       `json:"sequentialSeconds"`
	Results     []benchResult `json:"results"`
	GeneratedAt string        `json:"generatedAt"`
}

// TestEmitBenchJSON records the perf trajectory. It is a no-op unless
// -bench-json is set, so the regular test suite stays fast.
func TestEmitBenchJSON(t *testing.T) {
	if *benchJSON == "" {
		t.Skip("enable with -bench-json <path>")
	}
	spec := benchSpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}

	// Warm up once so first-run effects (page faults, frequency ramp)
	// don't land on the baseline.
	if _, err := runSequential(spec); err != nil {
		t.Fatal(err)
	}

	timeIt := func(fn func() error) float64 {
		const reps = 3
		best := 0.0
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := fn(); err != nil {
				t.Fatal(err)
			}
			if sec := time.Since(start).Seconds(); i == 0 || sec < best {
				best = sec
			}
		}
		return best
	}

	out := benchFile{
		Benchmark:   "EngineSweep",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GoVersion:   runtime.Version(),
		Jobs:        len(cells) * spec.Replicas,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	out.SeqSeconds = timeIt(func() error {
		_, err := runSequential(spec)
		return err
	})
	for _, workers := range []int{1, 2, 4, 8} {
		e := New(Workers(workers))
		sec := timeIt(func() error {
			_, err := e.Run(spec)
			return err
		})
		out.Results = append(out.Results, benchResult{
			Workers:    workers,
			Seconds:    sec,
			JobsPerSec: float64(out.Jobs) / sec,
			Speedup:    out.SeqSeconds / sec,
		})
	}

	f, err := os.Create(*benchJSON)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: sequential %.3fs, %d jobs, cpus=%d", *benchJSON, out.SeqSeconds, out.Jobs, out.CPUs)
	for _, r := range out.Results {
		t.Logf("  workers=%d  %.3fs  %.1f jobs/s  speedup %.2fx", r.Workers, r.Seconds, r.JobsPerSec, r.Speedup)
	}
}

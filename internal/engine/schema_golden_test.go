package engine

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// This file pins the serialized row formats:
//
//   - The JSONL row schema (field set and ordering) for scheduled and
//     unscheduled sweeps, against committed golden files — so a field
//     rename, reorder or omitempty change is a conscious decision, not an
//     accident.
//   - Seed compatibility: sweeps with Schedules nil produce byte-identical
//     JSONL and CSV to the output committed before the schedule subsystem
//     existed (PR 4). Schedules ride on new fields and a new grid axis;
//     they may not perturb a single byte of unscheduled output.
//
// Regenerate the schema goldens (never the seedcompat ones — those are the
// compatibility contract) with: go test ./internal/engine -run
// TestJSONLRowSchema -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite the schema golden files")

// seedcompatSpecs are the exact sweeps whose output was committed at PR 4.
// Do not edit: the goldens are the contract.
func seedcompatSpecs() map[string]SweepSpec {
	return map[string]SweepSpec{
		"seedcompat_rotor": {
			Topologies: []Topo{"ring", "path:24"},
			Sizes:      []int{16, 24},
			Agents:     []int{1, 3},
			Placements: []Placement{PlaceSingle, PlaceEqual},
			Pointers:   []Pointer{PtrZero, PtrToward},
			Process:    "rotor",
			Metric:     "cover",
			Probes:     []ProbeSpec{{Name: "coverage", Stride: 64}},
			Replicas:   2,
			Seed:       42,
		},
		"seedcompat_walk": {
			Topologies: []Topo{"ring"},
			Sizes:      []int{32},
			Agents:     []int{4},
			Placements: []Placement{PlaceRandom},
			Process:    "walk",
			Metric:     "cover",
			Replicas:   3,
			Seed:       7,
		},
		"seedcompat_return": {
			Topologies: []Topo{"ring"},
			Sizes:      []int{16},
			Agents:     []int{2},
			Placements: []Placement{PlaceSingle},
			Pointers:   []Pointer{PtrToward},
			Process:    "rotor",
			Metric:     "return",
			Replicas:   1,
			Seed:       5,
		},
	}
}

// TestSeedCompatPR4 proves Schedules: nil sweeps stay byte-identical to the
// output the engine produced before the schedule subsystem landed.
func TestSeedCompatPR4(t *testing.T) {
	for name, spec := range seedcompatSpecs() {
		t.Run(name, func(t *testing.T) {
			var jsonl, csv bytes.Buffer
			if _, err := New(Workers(3)).Run(spec, NewJSONLSink(&jsonl), NewCSVSink(&csv)); err != nil {
				t.Fatal(err)
			}
			for ext, got := range map[string][]byte{"jsonl": jsonl.Bytes(), "csv": csv.Bytes()} {
				want, err := os.ReadFile(filepath.Join("testdata", name+"."+ext))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s.%s output drifted from the PR 4 golden (%d vs %d bytes)",
						name, ext, len(got), len(want))
				}
			}
		})
	}
}

// seedcompatPR8Specs are the exact sweeps whose output was committed at
// PR 8, before the mission subsystem landed. Do not edit the specs: the
// goldens are the contract. The seedcompat_pr8_sched goldens were
// regenerated once, under the sanctioned rowcache/v3 hold-draw change
// (helddraw.go): its delay rows changed bytes, its none/reset rows did not,
// and the restab and walk goldens are untouched.
func seedcompatPR8Specs() map[string]SweepSpec {
	return map[string]SweepSpec{
		"seedcompat_pr8_sched": {
			Topologies: []Topo{"ring", "grid:6x6"},
			Sizes:      []int{16},
			Agents:     []int{2, 4},
			Placements: []Placement{PlaceSingle, PlaceEqual},
			Pointers:   []Pointer{PtrZero},
			Process:    "rotor",
			Metric:     "cover",
			Schedules:  []Schedule{"none", "delay:p=0.25", "reset:t=64"},
			Replicas:   2,
			Seed:       11,
		},
		"seedcompat_pr8_restab": {
			Topologies: []Topo{"ring"},
			Sizes:      []int{24},
			Agents:     []int{3},
			Placements: []Placement{PlaceEqual},
			Pointers:   []Pointer{PtrZero},
			Process:    "rotor",
			Metric:     "restab_time",
			Schedules:  []Schedule{"edgefail:t=256"},
			Replicas:   1,
			Seed:       9,
		},
		"seedcompat_pr8_walk": {
			Topologies: []Topo{"ring"},
			Sizes:      []int{24},
			Agents:     []int{4},
			Placements: []Placement{PlaceRandom},
			Process:    "walk",
			Metric:     "cover",
			Schedules:  []Schedule{"none", "delay:p=0.5"},
			Replicas:   2,
			Seed:       3,
		},
	}
}

// TestSeedCompatPR8 proves Missions: nil sweeps — scheduled ones included —
// stay byte-identical to the output the engine produced before the mission
// subsystem landed.
func TestSeedCompatPR8(t *testing.T) {
	for name, spec := range seedcompatPR8Specs() {
		t.Run(name, func(t *testing.T) {
			var jsonl, csv bytes.Buffer
			if _, err := New(Workers(3)).Run(spec, NewJSONLSink(&jsonl), NewCSVSink(&csv)); err != nil {
				t.Fatal(err)
			}
			for ext, got := range map[string][]byte{"jsonl": jsonl.Bytes(), "csv": csv.Bytes()} {
				path := filepath.Join("testdata", name+"."+ext)
				if *updateGolden {
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("rewrote %s", path)
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s.%s output drifted from the PR 8 golden (%d vs %d bytes)",
						name, ext, len(got), len(want))
				}
			}
		})
	}
}

// rowFieldOrder extracts the top-level key sequence of the first JSONL row.
func rowFieldOrder(t *testing.T, jsonl []byte) []string {
	t.Helper()
	line, _, _ := bytes.Cut(jsonl, []byte("\n"))
	dec := json.NewDecoder(bytes.NewReader(line))
	var keys []string
	depth := 0
	expectKey := false
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch v := tok.(type) {
		case json.Delim:
			switch v {
			case '{':
				depth++
				expectKey = depth == 1
			case '}':
				depth--
				expectKey = false
			case '[', ']':
				expectKey = false
			}
		case string:
			if depth == 1 && expectKey {
				keys = append(keys, v)
				// Skip the value (may be an object/array of its own).
				var raw json.RawMessage
				if err := dec.Decode(&raw); err != nil {
					t.Fatalf("decode value of %q: %v", v, err)
				}
			}
		}
	}
	return keys
}

// TestJSONLRowSchema pins the JSONL field set and ordering for scheduled
// and unscheduled rows against the committed schema goldens.
func TestJSONLRowSchema(t *testing.T) {
	base := SweepSpec{
		Topologies: []Topo{"ring"},
		Sizes:      []int{16},
		Agents:     []int{2},
		Placements: []Placement{PlaceSingle},
		Pointers:   []Pointer{PtrToward},
		Probes:     []ProbeSpec{{Name: "coverage", Stride: 8}},
		Seed:       1,
	}
	cases := map[string]SweepSpec{"jsonl_schema_unscheduled": base}
	sched := base
	sched.Schedules = []Schedule{"reset:t=4"}
	cases["jsonl_schema_scheduled"] = sched
	// The mission case exercises every mission row field (mission_rounds via
	// any mission, staleness via patrol); missions reject probes, so the
	// schema difference to the unscheduled golden is mission fields in,
	// series out.
	mission := base
	mission.Probes = nil
	mission.Missions = []Mission{"patrol:horizon=64,warmup=8"}
	cases["jsonl_schema_mission"] = mission

	for name, spec := range cases {
		t.Run(name, func(t *testing.T) {
			var jsonl bytes.Buffer
			rows, err := New(Workers(1)).Run(spec, NewJSONLSink(&jsonl))
			if err != nil {
				t.Fatal(err)
			}
			if rows[0].Err != "" {
				t.Fatal(rows[0].Err)
			}
			got := strings.Join(rowFieldOrder(t, jsonl.Bytes()), "\n") + "\n"
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update-golden to create)", err)
			}
			if got != string(want) {
				t.Errorf("JSONL row schema drifted.\ngot:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestScheduledRowsAddOnlySchemaFields: the scheduled schema is the
// unscheduled schema plus the schedule column — schedules never remove or
// reorder existing fields.
func TestScheduledRowsAddOnlySchemaFields(t *testing.T) {
	read := func(name string) []string {
		b, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
		if err != nil {
			t.Fatalf("%v (run TestJSONLRowSchema with -update-golden first)", err)
		}
		return strings.Fields(string(b))
	}
	plain, sched := read("jsonl_schema_unscheduled"), read("jsonl_schema_scheduled")
	i := 0
	for _, f := range sched {
		if i < len(plain) && plain[i] == f {
			i++
		} else if f != "schedule" {
			t.Fatalf("scheduled schema inserts unexpected field %q", f)
		}
	}
	if i != len(plain) {
		t.Fatalf("scheduled schema drops unscheduled fields: %v vs %v", sched, plain)
	}
}

// TestMissionRowsAddOnlySchemaFields: the mission schema is the unscheduled
// schema minus the probe series (missions reject probes) plus mission
// columns — missions never remove or reorder other fields.
func TestMissionRowsAddOnlySchemaFields(t *testing.T) {
	read := func(name string) []string {
		b, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
		if err != nil {
			t.Fatalf("%v (run TestJSONLRowSchema with -update-golden first)", err)
		}
		return strings.Fields(string(b))
	}
	missionFields := map[string]bool{
		"mission": true, "mission_rounds": true, "mission_timeout": true,
		"staleness_max": true, "staleness_mean": true, "fairness": true,
	}
	plain, mission := read("jsonl_schema_unscheduled"), read("jsonl_schema_mission")
	i := 0
	for _, f := range mission {
		for i < len(plain) && plain[i] == "series" {
			i++ // the mission case carries no probes
		}
		if i < len(plain) && plain[i] == f {
			i++
		} else if !missionFields[f] {
			t.Fatalf("mission schema inserts unexpected field %q", f)
		}
	}
	for i < len(plain) && plain[i] == "series" {
		i++
	}
	if i != len(plain) {
		t.Fatalf("mission schema drops unscheduled fields: %v vs %v", mission, plain)
	}
}

// TestCSVHeaderPinned: the CSV sink's fixed column set is part of the
// compatibility contract (schedules ride in JSONL only).
func TestCSVHeaderPinned(t *testing.T) {
	want := "cell,topology,n,k,placement,pointer,process,metric,replica,seed,value,rounds,period,min_visits,max_visits,err"
	if got := strings.Join(csvHeader, ","); got != want {
		t.Errorf("CSV header changed:\ngot  %s\nwant %s", got, want)
	}
}

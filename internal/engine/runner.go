package engine

import (
	"fmt"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/randwalk"
	"rotorring/internal/xrand"
)

// graphKey identifies one constructed topology in the worker's cache.
type graphKey struct {
	topology string
	n        int
}

// worker holds the per-goroutine reusable state: a topology cache and the
// prototype System (or Walk) of the last deterministic cell it ran, which
// subsequent replicas of the same cell reuse via Reset — plus Reseed for
// walks — instead of reallocating per trial (or run on a Clone when the
// measurement must not disturb the prototype). Workers never share mutable
// state, so the hot step loops run without locks, and the simulators'
// internal scratch buffers keep them allocation-free across rounds.
type worker struct {
	graphs map[graphKey]*graph.Graph

	protoCell int // cell index the cached prototype was built for
	proto     *core.System

	protoWalkCell int // cell index the cached walk was built for
	protoWalk     *randwalk.Walk
}

func newWorker() *worker {
	return &worker{graphs: make(map[graphKey]*graph.Graph), protoCell: -1, protoWalkCell: -1}
}

// kernelMode maps the sweep-level kernel selection to the rotor engine's.
func kernelMode(k Kernel) core.KernelMode {
	switch k {
	case KernelGeneric:
		return core.KernelGeneric
	case KernelFast:
		return core.KernelFast
	default:
		return core.KernelAuto
	}
}

// walkMode maps the sweep-level kernel selection to the walk engine's.
func walkMode(k Kernel) randwalk.Mode {
	switch k {
	case KernelGeneric:
		return randwalk.ModeAgents
	case KernelFast:
		return randwalk.ModeCounts
	default:
		return randwalk.ModeAuto
	}
}

// graph returns the cached topology for a cell, constructing it on first
// use. Topology constructors are deterministic, so caching cannot affect
// results.
func (w *worker) graph(c Cell) (*graph.Graph, error) {
	key := graphKey{topology: c.Topology, n: c.N}
	if g, ok := w.graphs[key]; ok {
		return g, nil
	}
	g, err := BuildGraph(c.Topology, c.N)
	if err != nil {
		return nil, err
	}
	w.graphs[key] = g
	return g, nil
}

// CoverBudget is the library's automatic round budget for cover-time runs:
// comfortably above the worst case Theta(n^2) of any ring initialization
// (and of Theta(D*|E|) lock-in at the scales this library targets). The
// root package's simulations and the sweep engine share this one formula.
func CoverBudget(g *graph.Graph) int64 {
	b := 16 * int64(g.NumNodes()) * int64(g.NumEdges())
	if min := int64(1 << 20); b < min {
		b = min
	}
	return b
}

// budget returns the round budget for one job.
func budget(spec *SweepSpec, g *graph.Graph) int64 {
	if spec.MaxRounds > 0 {
		return spec.MaxRounds
	}
	b := CoverBudget(g)
	if spec.Metric == MetricReturn || spec.Process == ProcWalk {
		// Limit-cycle location and randomized trials need headroom over
		// the deterministic cover bound.
		b *= 4
	}
	return b
}

// baseRow fills the identity columns of one job's row.
func baseRow(spec *SweepSpec, c Cell, replica int, seed uint64) Row {
	r := Row{
		Cell:      c,
		Placement: c.Placement.String(),
		Process:   spec.Process.String(),
		Metric:    spec.Metric.String(),
		Replica:   replica,
		Seed:      seed,
	}
	if spec.Process == ProcRotor {
		r.Pointer = c.Pointer.String()
	}
	return r
}

// runJob executes one replica of one cell.
func (w *worker) runJob(spec *SweepSpec, c Cell, replica int) Row {
	seed := jobSeed(spec.Seed, c, replica)
	row := baseRow(spec, c, replica, seed)
	g, err := w.graph(c)
	if err != nil {
		row.Err = err.Error()
		return row
	}

	// A cell is deterministic when no part of its configuration depends on
	// the replica seed; its prototype System can then be reused across the
	// replicas this worker receives.
	deterministic := c.Placement != PlaceRandom && c.Pointer != PtrRandom
	rng := xrand.New(seed)

	positions, err := placePositions(c, g, rng)
	if err != nil {
		row.Err = err.Error()
		return row
	}

	if spec.Process == ProcWalk {
		w.measureWalk(spec, g, c, positions, deterministic, seed, rng, &row)
		return row
	}

	var sys *core.System
	if deterministic && w.protoCell == c.Index && w.proto != nil {
		sys = w.proto
		sys.Reset()
	} else {
		pointers, err := initialPointers(c, g, positions, rng)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		sys, err = core.NewSystem(g,
			core.WithAgentsAt(positions...),
			core.WithPointers(pointers),
			core.WithKernelMode(kernelMode(spec.Kernel)))
		if err != nil {
			row.Err = err.Error()
			return row
		}
		if deterministic {
			w.protoCell = c.Index
			w.proto = sys
		} else {
			w.protoCell = -1
			w.proto = nil
		}
	}
	measureRotor(spec, sys, deterministic && spec.Replicas > 1, &row)
	return row
}

// placePositions computes the initial agent positions of one job.
func placePositions(c Cell, g *graph.Graph, rng *xrand.Rand) ([]int, error) {
	n := g.NumNodes()
	switch c.Placement {
	case PlaceSingle:
		return core.AllOnNode(0, c.K), nil
	case PlaceEqual:
		return core.EquallySpaced(n, c.K), nil
	case PlaceRandom:
		return core.RandomPositions(n, c.K, rng), nil
	default:
		return nil, errInvalid("placement", int(c.Placement))
	}
}

// initialPointers computes the initial pointer arrangement of one job.
func initialPointers(c Cell, g *graph.Graph, positions []int, rng *xrand.Rand) ([]int, error) {
	switch c.Pointer {
	case PtrZero:
		return core.PointersUniform(g, 0), nil
	case PtrNegative:
		return core.PointersNegative(g, positions)
	case PtrToward:
		return core.PointersTowardNode(g, 0)
	case PtrRandom:
		return core.PointersRandom(g, rng), nil
	default:
		return nil, errInvalid("pointer policy", int(c.Pointer))
	}
}

// measureRotor runs the cell's metric on sys and fills the row. When
// preserve is set, a mutating metric runs on a Clone so the caller's
// prototype stays reusable for the next replica.
func measureRotor(spec *SweepSpec, sys *core.System, preserve bool, row *Row) {
	b := budget(spec, sys.Graph())
	switch spec.Metric {
	case MetricCover:
		cover, err := sys.RunUntilCovered(b)
		row.Rounds = sys.Round()
		if err != nil {
			row.Err = err.Error()
			return
		}
		row.Value = float64(cover)
	case MetricReturn:
		if preserve {
			sys = sys.Clone()
		}
		rs, err := core.MeasureReturnTime(sys, b)
		row.Rounds = sys.Round()
		if err != nil {
			row.Err = err.Error()
			return
		}
		row.Value = float64(rs.ReturnTime)
		row.Period = rs.Period
		row.MinVisits = rs.MinNodeVisits
		row.MaxVisits = rs.MaxNodeVisits
	}
}

// measureWalk runs one random-walk job: a cover-time trial for MetricCover,
// or the mean inter-visit gap over a long window for MetricReturn (the
// walk analogue of return time; expectation n/k on the ring). Deterministic
// cells reuse one cached Walk across the worker's replicas via Reseed and
// Reset, so replica-heavy expectation sweeps allocate one walk per cell.
func (w *worker) measureWalk(spec *SweepSpec, g *graph.Graph, c Cell, positions []int, deterministic bool, seed uint64, rng *xrand.Rand, row *Row) {
	var walk *randwalk.Walk
	if deterministic && w.protoWalkCell == c.Index && w.protoWalk != nil {
		walk = w.protoWalk
		walk.Reseed(seed)
		walk.Reset()
	} else {
		var err error
		walk, err = randwalk.New(g, positions, rng, randwalk.WithMode(walkMode(spec.Kernel)))
		if err != nil {
			row.Err = err.Error()
			return
		}
		if deterministic {
			w.protoWalkCell = c.Index
			w.protoWalk = walk
		} else {
			w.protoWalkCell = -1
			w.protoWalk = nil
		}
	}
	switch spec.Metric {
	case MetricCover:
		cover, err := walk.RunUntilCovered(budget(spec, g))
		row.Rounds = walk.Round()
		if err != nil {
			row.Err = err.Error()
			return
		}
		row.Value = float64(cover)
	case MetricReturn:
		n := int64(g.NumNodes())
		span := n / int64(row.K)
		if span < 1 {
			span = 1
		}
		// The window must dominate the (n/k)^2 diffusive scale or nodes
		// between two walkers can stay unvisited all window.
		burnIn, window := 10*n, 50*span*span+200*n
		gs := walk.MeasureGaps(burnIn, window)
		row.Rounds = walk.Round()
		row.Value = gs.MeanGap
		row.Period = gs.MaxGap // walk analogue: worst observed gap
	}
}

// errInvalid reports an enum value that slipped past spec validation.
func errInvalid(what string, v int) error {
	return fmt.Errorf("engine: invalid %s %d", what, v)
}

package engine

import (
	"fmt"
	"sync"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/randwalk"
	"rotorring/internal/xrand"
	"rotorring/probe"
)

// graphKey identifies one constructed graph instance in the sweep's shared
// cache: the resolved self-sized spec plus the graph seed (always 0 for
// unseeded families, so spelling variants of one instance share an entry).
type graphKey struct {
	spec string
	seed uint64
}

// graphEntry is one cache slot. The sync.Once gives the cache its
// build-exactly-once guarantee: concurrent workers requesting the same key
// block on the single build instead of duplicating it.
type graphEntry struct {
	once sync.Once
	g    *graph.Graph
	err  error
}

// graphCache is the sweep-scoped graph store shared by all workers of one
// Run. Each (topology, size, graph-seed) instance is built exactly once
// and then shared read-only: graph.Graph is immutable after construction
// (adjacency and arc-id tables are frozen before the graph escapes its
// builder), so lock-free concurrent reads from every worker are safe.
// Build errors are cached alongside, so a failing cell fails every
// replica without rebuilding.
type graphCache struct {
	mu sync.Mutex
	m  map[graphKey]*graphEntry
}

func newGraphCache() *graphCache {
	return &graphCache{m: make(map[graphKey]*graphEntry)}
}

// get returns the cached graph for key, building it on first use.
func (c *graphCache) get(key graphKey, build func() (*graph.Graph, error)) (*graph.Graph, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &graphEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g, e.err = build() })
	return e.g, e.err
}

// worker holds the per-goroutine reusable state: a handle on the sweep's
// shared graph cache and the prototype process instance of the last
// deterministic cell it ran, which subsequent replicas of the same cell
// reuse via Reset (plus Reseed for randomized processes) instead of
// reallocating per trial — or run on a clone when the measurement must not
// disturb the prototype. Beyond the cache's build synchronization, workers
// never share mutable state, so the hot step loops run without locks, and
// the simulators' internal scratch buffers keep them allocation-free
// across rounds.
type worker struct {
	graphs *graphCache

	protoCell int    // cell index the cached prototype was built for
	protoName string // process name the cached prototype runs
	proto     Proc
}

func newWorker(graphs *graphCache) *worker {
	return &worker{graphs: graphs, protoCell: -1}
}

// kernelMode maps the sweep-level kernel selection to the rotor engine's.
func kernelMode(k Kernel) core.KernelMode {
	switch k {
	case KernelGeneric:
		return core.KernelGeneric
	case KernelFast:
		return core.KernelFast
	case KernelParallel:
		return core.KernelParallel
	default:
		return core.KernelAuto
	}
}

// walkMode maps the sweep-level kernel selection to the walk engine's.
func walkMode(k Kernel) randwalk.Mode {
	switch k {
	case KernelGeneric:
		return randwalk.ModeAgents
	case KernelFast, KernelParallel:
		return randwalk.ModeCounts
	default:
		return randwalk.ModeAuto
	}
}

// graph returns the shared cached graph for a cell, constructing it on
// first use anywhere in the sweep. Builders are deterministic given
// (params, n, seed) — seeded families derive their seed from the sweep's
// base seed and the resolved spec, never from worker identity — so caching
// cannot affect results, only skip redundant construction.
func (w *worker) graph(spec *SweepSpec, c Cell) (*graph.Graph, error) {
	var seed uint64
	if c.inst.def.Seeded {
		seed = graphSeedOf(spec.Seed, c.Spec)
	}
	return w.graphs.get(graphKey{spec: c.Spec, seed: seed}, func() (*graph.Graph, error) {
		return buildInstance(c.inst, c.N, seed)
	})
}

// CoverBudget is the library's deterministic automatic round budget for
// cover-time runs: comfortably above the worst case Theta(n^2) of any ring
// initialization (and of Theta(D*|E|) lock-in at the scales this library
// targets). AutoBudget layers the per-process / per-metric headroom
// factors on top; the root package's simulations and the sweep engine
// share those two formulas and nothing else.
func CoverBudget(g *graph.Graph) int64 {
	b := 16 * int64(g.NumNodes()) * int64(g.NumEdges())
	if min := int64(1 << 20); b < min {
		b = min
	}
	return b
}

// budget returns the round budget for one job: the explicit MaxRounds
// (taken literally, schedules included — the caller asked for that exact
// cap), or the registry's automatic rule extended for perturbed cells:
// auto·Factor + Offset from the schedule's plan, so a faulted run keeps a
// full post-event budget instead of hitting the static cap and reporting
// non-coverage (see DESIGN.md, round budgets).
func budget(spec *SweepSpec, c Cell, g *graph.Graph) int64 {
	if spec.MaxRounds > 0 {
		return spec.MaxRounds
	}
	b := AutoBudget(g, spec.Process, spec.Metric)
	if plan := c.sched.plan; plan != nil && !c.sched.none() {
		b = b*plan.BudgetFactor + plan.BudgetOffset
	}
	if plan := c.mis.plan; plan != nil && !c.mis.none() {
		// Predicate missions may run well past cover time (the return
		// mission waits for a configuration recurrence); service missions
		// need at least their horizon. This is the hard cap that turns a
		// non-terminating mission into a mission_timeout row.
		b *= plan.BudgetFactor
		if plan.Horizon > 0 && b < plan.Horizon {
			b = plan.Horizon
		}
	}
	return b
}

// baseRow fills the identity columns of one job's row.
func baseRow(spec *SweepSpec, def *ProcessDef, c Cell, replica int, seed uint64) Row {
	r := Row{
		Cell:      c,
		Placement: c.Placement.String(),
		Process:   spec.Process,
		Metric:    spec.Metric,
		Replica:   replica,
		Seed:      seed,
	}
	if def.UsesPointers {
		r.Pointer = c.Pointer.String()
	}
	return r
}

// runJob executes one replica of one cell: resolve the placement, build
// (or reuse) the named process instance, and run the named metric on it.
func (w *worker) runJob(spec *SweepSpec, c Cell, replica int) Row {
	seed := jobSeed(spec.Seed, c, replica)
	// The spec was validated by withDefaults before any worker started.
	def, _ := LookupProcess(spec.Process)
	met, _ := LookupMetric(spec.Metric)
	row := baseRow(spec, def, c, replica, seed)
	g, err := w.graph(spec, c)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	// Graph metadata, read off the cached graph for free: with them plus
	// the resolved spec, cross-topology rows are self-describing.
	row.Edges = g.NumEdges()
	row.MaxDegree = g.MaxDegree()

	// A cell is deterministic when no part of its configuration depends on
	// the replica seed; its prototype instance can then be reused across
	// the replicas this worker receives.
	deterministic := c.Placement != PlaceRandom && c.Pointer != PtrRandom
	rng := xrand.New(seed)

	positions, err := placePositions(c, g, rng)
	if err != nil {
		row.Err = err.Error()
		return row
	}

	env := &JobEnv{
		Graph:     g,
		Cell:      c,
		Positions: positions,
		Seed:      seed,
		RNG:       rng,
		Kernel:    spec.Kernel,
		Preserve:  deterministic && spec.Replicas > 1,
	}
	if len(spec.Probes) > 0 {
		env.Probes, err = buildProbes(spec.Probes, g.NumNodes())
		if err != nil {
			row.Err = err.Error()
			return row
		}
	}

	var p Proc
	if deterministic && w.protoCell == c.Index && w.protoName == spec.Process && w.proto != nil {
		p = w.proto
		// Randomized processes rewind their generator to the replica's
		// deterministic state before the reuse; deterministic ones have
		// nothing to rewind. A cached schedule runner also rewinds its
		// schedule stream here (its Reseeder re-derives from the job seed)
		// and its plan cursor in Reset.
		if r, ok := p.(Reseeder); ok {
			r.Reseed(seed)
		}
		p.Reset()
	} else {
		p, err = def.New(env)
		if err != nil {
			row.Err = err.Error()
			return row
		}
		// Perturbed cells run behind the schedule runner, which applies the
		// cell's compiled plan while stepping; a schedule the process lacks
		// the capabilities for fails as this job's error row.
		if !c.sched.none() {
			sp, err := newScheduledProc(p, spec.Process, c.sched, env)
			if err != nil {
				row.Err = err.Error()
				return row
			}
			p = sp
		}
		// Cache only instances whose reuse is equivalent to a fresh build:
		// a randomized process must implement Reseeder, or the next replica
		// would continue this replica's random stream — whose content
		// depends on which worker ran it, breaking the engine's
		// worker-count determinism contract. (The schedule runner always
		// reseeds, forwarding to a randomized inner process.)
		_, reseeds := p.(Reseeder)
		if deterministic && (!def.Randomized || reseeds) {
			w.protoCell, w.protoName, w.proto = c.Index, spec.Process, p
		} else {
			w.protoCell, w.protoName, w.proto = -1, "", nil
		}
	}

	if !c.mis.none() {
		// Mission cells replace the metric measurement with the mission
		// runner: run until the predicate fires or the budget caps it.
		measureMission(p, c.mis, spec.Process, env, budget(spec, c, g), &row)
		return row
	}
	met.Measure(p, env, budget(spec, c, g), &row)
	return row
}

// buildProbes instantiates the spec's probes for one job.
func buildProbes(specs []ProbeSpec, nodes int) ([]probe.Probe, error) {
	probes := make([]probe.Probe, 0, len(specs))
	for _, ps := range specs {
		p, err := probe.New(ps.Name, probe.Env{Stride: ps.Stride, Nodes: nodes})
		if err != nil {
			return nil, err
		}
		probes = append(probes, p)
	}
	return probes, nil
}

// placePositions computes the initial agent positions of one job.
func placePositions(c Cell, g *graph.Graph, rng *xrand.Rand) ([]int, error) {
	n := g.NumNodes()
	switch c.Placement {
	case PlaceSingle:
		return core.AllOnNode(0, c.K), nil
	case PlaceEqual:
		return core.EquallySpaced(n, c.K), nil
	case PlaceRandom:
		return core.RandomPositions(n, c.K, rng), nil
	default:
		return nil, errInvalid("placement", int(c.Placement))
	}
}

// initialPointers computes the initial pointer arrangement of one job.
func initialPointers(c Cell, g *graph.Graph, positions []int, rng *xrand.Rand) ([]int, error) {
	switch c.Pointer {
	case PtrZero:
		return core.PointersUniform(g, 0), nil
	case PtrNegative:
		return core.PointersNegative(g, positions)
	case PtrToward:
		return core.PointersTowardNode(g, 0)
	case PtrRandom:
		return core.PointersRandom(g, rng), nil
	default:
		return nil, errInvalid("pointer policy", int(c.Pointer))
	}
}

// errInvalid reports an enum value that slipped past spec validation.
func errInvalid(what string, v int) error {
	return fmt.Errorf("engine: invalid %s %d", what, v)
}

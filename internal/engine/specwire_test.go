package engine

import (
	"bytes"
	"strings"
	"testing"
)

func TestWireSpecRoundTrip(t *testing.T) {
	spec := SweepSpec{
		Topologies: []Topo{"Ring", "GRID:5", "rr:3"}, // deliberately non-canonical
		Sizes:      []int{32, 64},
		Agents:     []int{2, 4},
		Placements: []Placement{PlaceSingle, PlaceEqual},
		Pointers:   []Pointer{PtrZero, PtrNegative},
		Process:    "rotor",
		Metric:     "cover",
		Probes:     []ProbeSpec{{Name: "coverage", Stride: 256}},
		Replicas:   3,
		Seed:       42,
		MaxRounds:  1 << 20,
		Kernel:     KernelFast,
		Schedules:  []Schedule{"none", "EDGEFAIL:t=9"},
	}
	b, err := EncodeWireSpec(spec)
	if err != nil {
		t.Fatalf("EncodeWireSpec: %v", err)
	}
	// Canonicalization happened on encode: the wire carries registry
	// canonical spellings, never the caller's.
	for _, want := range []string{`"grid:5x5"`, `"ring"`, `"edgefail:t=9,count=1"`, `"single"`, `"negative"`, `"v":1`} {
		if !bytes.Contains(b, []byte(want)) {
			t.Errorf("encoded spec %s missing %s", b, want)
		}
	}
	dec, err := DecodeWireSpec(b)
	if err != nil {
		t.Fatalf("DecodeWireSpec: %v", err)
	}
	b2, err := EncodeWireSpec(dec)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("wire encoding not a decode/encode fixed point:\n got %s\nwant %s", b2, b)
	}
	// The decoded spec must run to the same rows as the original.
	want, err := New(Workers(2)).Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(Workers(2)).Run(dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded spec ran %d rows, original %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seed != want[i].Seed || got[i].Value != want[i].Value {
			t.Errorf("row %d differs after wire round trip: got seed=%d value=%g, want seed=%d value=%g",
				i, got[i].Seed, got[i].Value, want[i].Seed, want[i].Value)
		}
	}
}

func TestWireSpecEncodeTranslatesDeprecatedTopology(t *testing.T) {
	b, err := EncodeWireSpec(SweepSpec{Topology: "Grid", Sizes: []int{8}, Agents: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte(`"topologies":["grid"]`)) {
		t.Errorf("deprecated Topology not translated to topologies list: %s", b)
	}
	if bytes.Contains(b, []byte(`"topology"`)) {
		t.Errorf("deprecated spelling leaked onto the wire: %s", b)
	}
}

func TestWireSpecDecodeRejections(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{"missing v", `{"agents":[2],"sizes":[32]}`, `missing required version field "v"`},
		{"wrong v", `{"v":2,"agents":[2],"sizes":[32]}`, "unsupported version"},
		{"deprecated topology", `{"v":1,"topology":"ring","agents":[2],"sizes":[32]}`, "deprecated library spelling"},
		{"deprecated walk", `{"v":1,"walk":true,"agents":[2],"sizes":[32]}`, `set "process": "walk"`},
		{"deprecated returnTime", `{"v":1,"returnTime":true,"agents":[2],"sizes":[32]}`, `set "metric": "return"`},
		{"unknown field", `{"v":1,"agents":[2],"sizes":[32],"shard":4}`, `unknown field(s) shard`},
		{"unknown process", `{"v":1,"agents":[2],"sizes":[32],"process":"teleport"}`, "unknown process"},
		{"unknown metric", `{"v":1,"agents":[2],"sizes":[32],"metric":"vibes"}`, "unknown metric"},
		{"bad topology", `{"v":1,"topologies":["klein"],"agents":[2],"sizes":[32]}`, "unknown"},
		{"bad schedule", `{"v":1,"agents":[2],"sizes":[32],"schedules":["quake"]}`, "unknown schedule"},
		{"bad placement", `{"v":1,"agents":[2],"sizes":[32],"placements":["middle"]}`, "unknown placement"},
		{"bad pointer", `{"v":1,"agents":[2],"sizes":[32],"pointers":["north"]}`, "unknown pointer"},
		{"bad kernel", `{"v":1,"agents":[2],"sizes":[32],"kernel":"turbo"}`, "unknown kernel"},
		{"no agents", `{"v":1,"sizes":[32]}`, "agent count"},
		{"schedule/metric conflict", `{"v":1,"agents":[2],"sizes":[32],"metric":"restab_time"}`, "requires at least one schedule"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := DecodeWireSpec([]byte(c.body))
			if err == nil {
				t.Fatalf("decode of %s succeeded, want error containing %q", c.body, c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("decode error %q does not contain %q", err, c.want)
			}
		})
	}
}

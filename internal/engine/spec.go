// Package engine is the deterministic parallel experiment engine: it fans a
// grid of sweep configurations (topology, size, agent count, placement,
// pointer policy, replicas) across a pool of workers, each reusing a cloned
// core.System, and streams the results in a canonical order into pluggable
// sinks. Results are bit-identical regardless of worker count or goroutine
// scheduling: every job's seed is derived from its grid coordinates (never
// from execution order), and rows are re-sequenced into job order before
// they reach a sink.
package engine

import (
	"fmt"
	"strings"

	"rotorring/internal/graph"
	"rotorring/probe"
)

// ProbeSpec selects one registered probe and its sampling stride for a
// sweep (see rotorring/probe for the registry and the built-ins:
// coverage, histogram, domains).
type ProbeSpec struct {
	// Name is the registered probe name.
	Name string `json:"name"`
	// Stride is the sampling period in rounds (>= 1).
	Stride int64 `json:"stride"`
}

// Placement selects the initial agent positions of a sweep cell. The values
// deliberately mirror the root package's PlacementPolicy constants so the
// public API can convert by casting.
type Placement int

// Placements.
const (
	// PlaceSingle puts all k agents on node 0 (the paper's worst case).
	PlaceSingle Placement = iota + 1
	// PlaceEqual spreads the agents at positions floor(i*n/k) (best case).
	PlaceEqual
	// PlaceRandom samples k independent uniform positions from the job
	// seed.
	PlaceRandom
)

// ParsePlacement converts a flag string (single|equal|random).
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(s) {
	case "single":
		return PlaceSingle, nil
	case "equal":
		return PlaceEqual, nil
	case "random":
		return PlaceRandom, nil
	default:
		return 0, fmt.Errorf("engine: unknown placement %q (single|equal|random)", s)
	}
}

func (p Placement) String() string {
	switch p {
	case PlaceSingle:
		return "single"
	case PlaceEqual:
		return "equal"
	case PlaceRandom:
		return "random"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Pointer selects the initial port-pointer arrangement of a sweep cell
// (rotor-router only). Values mirror the root package's PointerPolicy.
type Pointer int

// Pointer arrangements.
const (
	// PtrZero leaves every pointer at port 0.
	PtrZero Pointer = iota + 1
	// PtrNegative points every node toward its nearest starting agent
	// (the adversarial barrier of Theorem 4).
	PtrNegative
	// PtrToward points every node toward node 0 along shortest paths
	// (with PlaceSingle, the Theta(n^2/log k) worst case of Theorem 1).
	PtrToward
	// PtrRandom samples uniform pointers from the job seed.
	PtrRandom
)

// ParsePointer converts a flag string (zero|negative|toward|random).
func ParsePointer(s string) (Pointer, error) {
	switch strings.ToLower(s) {
	case "zero":
		return PtrZero, nil
	case "negative":
		return PtrNegative, nil
	case "toward":
		return PtrToward, nil
	case "random":
		return PtrRandom, nil
	default:
		return 0, fmt.Errorf("engine: unknown pointer policy %q (zero|negative|toward|random)", s)
	}
}

func (p Pointer) String() string {
	switch p {
	case PtrZero:
		return "zero"
	case PtrNegative:
		return "negative"
	case PtrToward:
		return "toward"
	case PtrRandom:
		return "random"
	default:
		return fmt.Sprintf("pointer(%d)", int(p))
	}
}

// Kernel selects the stepping tier jobs run on (see internal/kernel).
// Rotor jobs are bit-identical across tiers. Walk jobs are exactly the
// same process under either engine, but the engines consume the seed's
// random stream differently, so a walk job's sampled trajectory — not its
// distribution — changes with the tier. The knob deliberately does not
// enter job-seed derivation.
type Kernel int

// Kernel tiers. The zero value is the default (automatic selection).
const (
	// KernelAuto lets each job pick: specialized rotor kernels and
	// counts-based walks where dense enough, generic engines otherwise.
	KernelAuto Kernel = iota
	// KernelGeneric forces the generic rotor engine and per-agent walks.
	KernelGeneric
	// KernelFast forces the specialized rotor kernel (where the topology
	// has one) and counts-based walks.
	KernelFast
)

// ParseKernel converts a flag string (auto|generic|fast).
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return KernelAuto, nil
	case "generic":
		return KernelGeneric, nil
	case "fast":
		return KernelFast, nil
	default:
		return 0, fmt.Errorf("engine: unknown kernel %q (auto|generic|fast)", s)
	}
}

func (k Kernel) String() string {
	switch k {
	case KernelGeneric:
		return "generic"
	case KernelFast:
		return "fast"
	default:
		return "auto"
	}
}

// Process and metric names. Sweeps select both by name from the process
// registry (see process.go), so third processes and metrics plug in
// without engine edits; these constants name the built-ins.
const (
	// ProcRotor is the deterministic multi-agent rotor-router.
	ProcRotor = "rotor"
	// ProcWalk is the randomized baseline: k independent random walks.
	ProcWalk = "walk"

	// MetricCover measures the cover time (first round with every node
	// visited). For randomized processes each replica is one independent
	// trial.
	MetricCover = "cover"
	// MetricReturn measures the recurrence metric: the limit-cycle return
	// time for the rotor (Theorem 6), the mean inter-visit gap over a long
	// window for walks (the paper's closing comparison).
	MetricReturn = "return"
)

// BuildGraph constructs a named topology of size parameter n: node count
// for ring/path/complete/star, side length for grid/torus, dimension for
// hypercube, levels for btree. It is the one topology registry shared by
// the engine and the commands. Constructor panics on out-of-range sizes
// (e.g. Ring(2)) are converted to errors so sweeps and CLI runs fail
// gracefully instead of crashing a worker.
func BuildGraph(topology string, n int) (g *graph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("engine: %s(%d): %v", strings.ToLower(topology), n, r)
		}
	}()
	switch strings.ToLower(topology) {
	case "ring":
		return graph.Ring(n), nil
	case "path":
		return graph.Path(n), nil
	case "grid":
		return graph.Grid2D(n, n), nil
	case "torus":
		return graph.Torus2D(n, n), nil
	case "complete":
		return graph.Complete(n), nil
	case "star":
		return graph.Star(n), nil
	case "hypercube":
		return graph.Hypercube(n), nil
	case "btree":
		return graph.CompleteBinaryTree(n), nil
	default:
		return nil, fmt.Errorf("engine: unknown topology %q (ring|path|grid|torus|complete|star|hypercube|btree)", topology)
	}
}

// SweepSpec describes a grid of experiment configurations: the cross
// product Sizes x Agents x Placements x Pointers, each run Replicas times.
// The zero value of the optional fields selects defaults (rotor process,
// cover metric, one replica, automatic round budget).
type SweepSpec struct {
	// Topology names the graph family; see BuildGraph.
	Topology string `json:"topology"`
	// Sizes lists the size parameters n to sweep.
	Sizes []int `json:"sizes"`
	// Agents lists the agent counts k to sweep.
	Agents []int `json:"agents"`
	// Placements lists the initial placements; default PlaceSingle.
	Placements []Placement `json:"placements,omitempty"`
	// Pointers lists the pointer arrangements; default PtrZero. Ignored
	// (collapsed to one cell) for processes without pointers, e.g.
	// ProcWalk.
	Pointers []Pointer `json:"pointers,omitempty"`
	// Process names the registered process to run (ProcessNames lists
	// them); default ProcRotor.
	Process string `json:"process,omitempty"`
	// Metric names the registered quantity to measure (MetricNames lists
	// them); default MetricCover.
	Metric string `json:"metric,omitempty"`
	// Probes names the registered probes sampled during each job, each
	// with its stride in rounds. Sampled points stream into the JSONL sink
	// as each row's "series" field (the CSV sink omits them); they require
	// MetricCover. Probes never affect measured values or seeds.
	Probes []ProbeSpec `json:"probes,omitempty"`
	// Replicas is the number of runs per cell, each with its own derived
	// seed; default 1. Replicas of a deterministic configuration verify
	// reproducibility; replicas of randomized ones sample it.
	Replicas int `json:"replicas,omitempty"`
	// Seed is the base seed every job seed is derived from. Zero is a
	// valid base, distinct from every other.
	Seed uint64 `json:"seed,omitempty"`
	// MaxRounds bounds each run; 0 selects an automatic budget well above
	// the paper's worst-case Theta(n^2).
	MaxRounds int64 `json:"maxRounds,omitempty"`
	// Kernel selects the stepping tier; default KernelAuto. Rotor results
	// are bit-identical across tiers; walk trials are resampled (see
	// Kernel). Seeds never depend on it.
	Kernel Kernel `json:"kernel,omitempty"`
}

// withDefaults returns a copy with defaults filled in and the grid
// validated.
func (s SweepSpec) withDefaults() (SweepSpec, error) {
	// Normalize so seed derivation (which hashes the topology string)
	// cannot distinguish "RING" from "ring" while BuildGraph accepts both.
	s.Topology = strings.ToLower(s.Topology)
	if s.Topology == "" {
		s.Topology = "ring"
	}
	if len(s.Sizes) == 0 {
		return s, fmt.Errorf("engine: sweep needs at least one size")
	}
	if len(s.Agents) == 0 {
		return s, fmt.Errorf("engine: sweep needs at least one agent count")
	}
	for _, k := range s.Agents {
		if k < 1 {
			return s, fmt.Errorf("engine: agent count %d < 1", k)
		}
	}
	if len(s.Placements) == 0 {
		s.Placements = []Placement{PlaceSingle}
	}
	s.Process = strings.ToLower(s.Process)
	if s.Process == "" {
		s.Process = ProcRotor
	}
	proc, ok := LookupProcess(s.Process)
	if !ok {
		return s, fmt.Errorf("engine: unknown process %q (registered: %s)",
			s.Process, strings.Join(ProcessNames(), "|"))
	}
	if !proc.UsesPointers || len(s.Pointers) == 0 {
		// Processes without pointers: collapse the axis so the grid has no
		// duplicate cells.
		s.Pointers = []Pointer{PtrZero}
	}
	s.Metric = strings.ToLower(s.Metric)
	if s.Metric == "" {
		s.Metric = MetricCover
	}
	if _, ok := LookupMetric(s.Metric); !ok {
		return s, fmt.Errorf("engine: unknown metric %q (registered: %s)",
			s.Metric, strings.Join(MetricNames(), "|"))
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Replicas < 0 {
		return s, fmt.Errorf("engine: negative replica count %d", s.Replicas)
	}
	// Validate enums and the topology eagerly so Run fails before any
	// worker starts.
	for _, p := range s.Placements {
		if p < PlaceSingle || p > PlaceRandom {
			return s, fmt.Errorf("engine: invalid placement %d", int(p))
		}
	}
	for _, p := range s.Pointers {
		if p < PtrZero || p > PtrRandom {
			return s, fmt.Errorf("engine: invalid pointer policy %d", int(p))
		}
	}
	if s.Kernel < KernelAuto || s.Kernel > KernelFast {
		return s, fmt.Errorf("engine: invalid kernel %d", int(s.Kernel))
	}
	for _, p := range s.Probes {
		if !probe.Known(p.Name) {
			return s, fmt.Errorf("engine: unknown probe %q (registered: %s)",
				p.Name, strings.Join(probe.Names(), "|"))
		}
		if p.Stride < 1 {
			return s, fmt.Errorf("engine: probe %q: stride %d < 1", p.Name, p.Stride)
		}
	}
	if len(s.Probes) > 0 && s.Metric != MetricCover {
		return s, fmt.Errorf("engine: probes require the %q metric (got %q)", MetricCover, s.Metric)
	}
	// Validate the topology by name only — constructing a graph here just
	// to throw it away would build huge topologies before any worker
	// starts. Out-of-range sizes surface as per-job error rows.
	switch s.Topology {
	case "ring", "path", "grid", "torus", "complete", "star", "hypercube", "btree":
	default:
		return s, fmt.Errorf("engine: unknown topology %q (ring|path|grid|torus|complete|star|hypercube|btree)", s.Topology)
	}
	return s, nil
}

// Cell is one grid point of a sweep: a fully specified configuration, run
// Replicas times by one worker.
type Cell struct {
	// Index is the cell's position in the canonical grid order (sizes
	// outermost, then agents, placements, pointers).
	Index     int       `json:"cell"`
	Topology  string    `json:"topology"`
	N         int       `json:"n"` // size parameter passed to BuildGraph
	K         int       `json:"k"`
	Placement Placement `json:"-"`
	Pointer   Pointer   `json:"-"`
}

// Cells expands the grid in canonical order. The cell order — and therefore
// the order rows reach the sinks — depends only on the spec.
func (s SweepSpec) Cells() ([]Cell, error) {
	spec, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	return spec.expand(), nil
}

// expand builds the canonical cell grid of an already-normalized spec.
func (s SweepSpec) expand() []Cell {
	cells := make([]Cell, 0, len(s.Sizes)*len(s.Agents)*len(s.Placements)*len(s.Pointers))
	for _, n := range s.Sizes {
		for _, k := range s.Agents {
			for _, pl := range s.Placements {
				for _, pt := range s.Pointers {
					cells = append(cells, Cell{
						Index:     len(cells),
						Topology:  s.Topology,
						N:         n,
						K:         k,
						Placement: pl,
						Pointer:   pt,
					})
				}
			}
		}
	}
	return cells
}

// Package engine is the deterministic parallel experiment engine: it fans a
// grid of sweep configurations (topology, size, agent count, placement,
// pointer policy, replicas) across a pool of workers, each reusing a cloned
// core.System, and streams the results in a canonical order into pluggable
// sinks. Results are bit-identical regardless of worker count or goroutine
// scheduling: every job's seed is derived from its grid coordinates (never
// from execution order), and rows are re-sequenced into job order before
// they reach a sink.
package engine

import (
	"fmt"
	"strings"

	"rotorring/probe"
)

// ProbeSpec selects one registered probe and its sampling stride for a
// sweep (see rotorring/probe for the registry and the built-ins:
// coverage, histogram, domains).
type ProbeSpec struct {
	// Name is the registered probe name.
	Name string `json:"name"`
	// Stride is the sampling period in rounds (>= 1).
	Stride int64 `json:"stride"`
}

// Placement selects the initial agent positions of a sweep cell. The values
// deliberately mirror the root package's PlacementPolicy constants so the
// public API can convert by casting.
type Placement int

// Placements.
const (
	// PlaceSingle puts all k agents on node 0 (the paper's worst case).
	PlaceSingle Placement = iota + 1
	// PlaceEqual spreads the agents at positions floor(i*n/k) (best case).
	PlaceEqual
	// PlaceRandom samples k independent uniform positions from the job
	// seed.
	PlaceRandom
)

// ParsePlacement converts a flag string (single|equal|random).
func ParsePlacement(s string) (Placement, error) {
	switch strings.ToLower(s) {
	case "single":
		return PlaceSingle, nil
	case "equal":
		return PlaceEqual, nil
	case "random":
		return PlaceRandom, nil
	default:
		return 0, fmt.Errorf("engine: unknown placement %q (single|equal|random)", s)
	}
}

func (p Placement) String() string {
	switch p {
	case PlaceSingle:
		return "single"
	case PlaceEqual:
		return "equal"
	case PlaceRandom:
		return "random"
	default:
		return fmt.Sprintf("placement(%d)", int(p))
	}
}

// Pointer selects the initial port-pointer arrangement of a sweep cell
// (rotor-router only). Values mirror the root package's PointerPolicy.
type Pointer int

// Pointer arrangements.
const (
	// PtrZero leaves every pointer at port 0.
	PtrZero Pointer = iota + 1
	// PtrNegative points every node toward its nearest starting agent
	// (the adversarial barrier of Theorem 4).
	PtrNegative
	// PtrToward points every node toward node 0 along shortest paths
	// (with PlaceSingle, the Theta(n^2/log k) worst case of Theorem 1).
	PtrToward
	// PtrRandom samples uniform pointers from the job seed.
	PtrRandom
)

// ParsePointer converts a flag string (zero|negative|toward|random).
func ParsePointer(s string) (Pointer, error) {
	switch strings.ToLower(s) {
	case "zero":
		return PtrZero, nil
	case "negative":
		return PtrNegative, nil
	case "toward":
		return PtrToward, nil
	case "random":
		return PtrRandom, nil
	default:
		return 0, fmt.Errorf("engine: unknown pointer policy %q (zero|negative|toward|random)", s)
	}
}

func (p Pointer) String() string {
	switch p {
	case PtrZero:
		return "zero"
	case PtrNegative:
		return "negative"
	case PtrToward:
		return "toward"
	case PtrRandom:
		return "random"
	default:
		return fmt.Sprintf("pointer(%d)", int(p))
	}
}

// Kernel selects the stepping tier jobs run on (see internal/kernel).
// Rotor jobs are bit-identical across tiers. Walk jobs are exactly the
// same process under either engine, but the engines consume the seed's
// random stream differently, so a walk job's sampled trajectory — not its
// distribution — changes with the tier. The knob deliberately does not
// enter job-seed derivation.
type Kernel int

// Kernel tiers. The zero value is the default (automatic selection).
const (
	// KernelAuto lets each job pick: specialized rotor kernels and
	// counts-based walks where dense enough, generic engines otherwise.
	KernelAuto Kernel = iota
	// KernelGeneric forces the generic rotor engine and per-agent walks.
	KernelGeneric
	// KernelFast forces the specialized rotor kernel (where the topology
	// has one) and counts-based walks.
	KernelFast
	// KernelParallel is KernelFast plus within-round sharding on flat ring
	// layouts: contiguous node ranges step on separate goroutines and merge
	// at a barrier, bit-identical to the serial kernel at any shard count.
	// Shapes without a parallel stepper keep their KernelFast choice.
	KernelParallel
)

// ParseKernel converts a flag string (auto|generic|fast|parallel).
func ParseKernel(s string) (Kernel, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return KernelAuto, nil
	case "generic":
		return KernelGeneric, nil
	case "fast":
		return KernelFast, nil
	case "parallel":
		return KernelParallel, nil
	default:
		return 0, fmt.Errorf("engine: unknown kernel %q (auto|generic|fast|parallel)", s)
	}
}

func (k Kernel) String() string {
	switch k {
	case KernelGeneric:
		return "generic"
	case KernelFast:
		return "fast"
	case KernelParallel:
		return "parallel"
	default:
		return "auto"
	}
}

// Process and metric names. Sweeps select both by name from the process
// registry (see process.go), so third processes and metrics plug in
// without engine edits; these constants name the built-ins.
const (
	// ProcRotor is the deterministic multi-agent rotor-router.
	ProcRotor = "rotor"
	// ProcWalk is the randomized baseline: k independent random walks.
	ProcWalk = "walk"

	// MetricCover measures the cover time (first round with every node
	// visited). For randomized processes each replica is one independent
	// trial.
	MetricCover = "cover"
	// MetricReturn measures the recurrence metric: the limit-cycle return
	// time for the rotor (Theorem 6), the mean inter-visit gap over a long
	// window for walks (the paper's closing comparison).
	MetricReturn = "return"
	// MetricRestab measures the re-stabilization time after a perturbation
	// (X9 / Bampas et al.): the rounds the system needs, from the
	// schedule's fault boundary, to lock into its limit cycle. Requires a
	// schedule with a fault event.
	MetricRestab = "restab_time"
	// MetricCoverAfterFault measures re-coverage: the rounds from the
	// schedule's fault boundary until the (possibly rewired) graph is
	// fully covered again, counting from a fresh coverage epoch. Requires
	// a schedule with a fault event.
	MetricCoverAfterFault = "cover_after_fault"
)

// SweepSpec describes a grid of experiment configurations: the cross
// product Topologies x Sizes x Agents x Placements x Pointers, each run
// Replicas times. The zero value of the optional fields selects defaults
// (ring topology, rotor process, cover metric, one replica, automatic
// round budget).
type SweepSpec struct {
	// Topologies lists the parameterized topology specs to sweep (see the
	// topology registry in topology.go for the grammar and RegisterTopology
	// for adding families). Axis-sized specs ("ring", "grid", "rr:3") take
	// their size parameter from Sizes; self-sized specs ("grid:64x32",
	// "rr:3x512") fix the graph themselves and contribute exactly one size
	// cell each. One sweep may mix topologies freely.
	Topologies []Topo `json:"topologies,omitempty"`
	// Topology names a single graph family.
	//
	// Deprecated: set Topologies. Topology is honored only while
	// Topologies is empty.
	Topology string `json:"topology,omitempty"`
	// Sizes lists the size parameters n for the axis-sized topologies.
	// It may be empty when every entry of Topologies is self-sized.
	Sizes []int `json:"sizes,omitempty"`
	// Agents lists the agent counts k to sweep.
	Agents []int `json:"agents"`
	// Placements lists the initial placements; default PlaceSingle.
	Placements []Placement `json:"placements,omitempty"`
	// Pointers lists the pointer arrangements; default PtrZero. Ignored
	// (collapsed to one cell) for processes without pointers, e.g.
	// ProcWalk.
	Pointers []Pointer `json:"pointers,omitempty"`
	// Process names the registered process to run (ProcessNames lists
	// them); default ProcRotor.
	Process string `json:"process,omitempty"`
	// Metric names the registered quantity to measure (MetricNames lists
	// them); default MetricCover.
	Metric string `json:"metric,omitempty"`
	// Probes names the registered probes sampled during each job, each
	// with its stride in rounds. Sampled points stream into the JSONL sink
	// as each row's "series" field (the CSV sink omits them); they require
	// MetricCover. Probes never affect measured values or seeds.
	Probes []ProbeSpec `json:"probes,omitempty"`
	// Replicas is the number of runs per cell, each with its own derived
	// seed; default 1. Replicas of a deterministic configuration verify
	// reproducibility; replicas of randomized ones sample it.
	Replicas int `json:"replicas,omitempty"`
	// Seed is the base seed every job seed is derived from. Zero is a
	// valid base, distinct from every other.
	Seed uint64 `json:"seed,omitempty"`
	// MaxRounds bounds each run; 0 selects an automatic budget well above
	// the paper's worst-case Theta(n^2).
	MaxRounds int64 `json:"maxRounds,omitempty"`
	// Kernel selects the stepping tier; default KernelAuto. Rotor results
	// are bit-identical across tiers; walk trials are resampled (see
	// Kernel). Seeds never depend on it.
	Kernel Kernel `json:"kernel,omitempty"`
	// Schedules lists the perturbation schedules to sweep (see the schedule
	// registry in schedule.go for the grammar and RegisterSchedule for
	// adding families): "none", "delay:p=0.25", "edgefail:t=1000,count=4",
	// "churn:join=8@500,leave=4@900", "reset:t=256". The schedule is an
	// innermost grid axis; empty selects the single schedule "none", whose
	// cells — and rows — are exactly those of an unscheduled sweep. Job
	// seeds deliberately do not depend on the schedule, so the same cell
	// under different schedules starts from the same initial configuration
	// and rows are directly comparable; only the schedule's own event
	// stream is derived from the schedule spec.
	Schedules []Schedule `json:"schedules,omitempty"`
	// Missions lists the mission specs to sweep (see the mission registry
	// in mission.go for the grammar and RegisterMission for adding
	// families): "none", "explore", "return", "quiesce:window=4096",
	// "patrol:horizon=4096", "balance:horizon=4096,warmup=0". The mission
	// is the innermost grid axis; empty selects the single mission "none",
	// whose cells — and rows — are exactly those of a mission-less sweep.
	// Mission cells replace the metric measurement with the mission runner:
	// the process runs until the mission's predicate fires or its horizon
	// elapses (or the budget runs out: a mission_timeout row), and the row
	// carries mission_rounds plus the mission's own metrics. Job seeds
	// deliberately do not depend on the mission, so the same cell under
	// different missions starts from the same initial configuration.
	Missions []Mission `json:"missions,omitempty"`

	// topos is the parsed, validated form of Topologies, filled by
	// withDefaults; scheds the compiled form of Schedules; miss the
	// compiled form of Missions.
	topos  []topoInstance
	scheds []schedInstance
	miss   []missionInstance
}

// withDefaults returns a copy with defaults filled in and the grid
// validated.
func (s SweepSpec) withDefaults() (SweepSpec, error) {
	// Parse and validate every topology spec eagerly — cheap string work,
	// no graph construction — so malformed specs fail the sweep up front
	// instead of surfacing as per-job error rows. Parsing also
	// canonicalizes, so seed derivation (which hashes the spec string)
	// cannot distinguish "RING" from "ring".
	if len(s.Topologies) == 0 {
		// The deprecated single-family alias, honored while Topologies is
		// empty.
		t := s.Topology
		if t == "" {
			t = "ring"
		}
		s.Topologies = []Topo{Topo(t)}
	}
	s.topos = make([]topoInstance, 0, len(s.Topologies))
	canon := make([]Topo, len(s.Topologies)) // fresh slice: never mutate the caller's
	axisSized := false
	for i, t := range s.Topologies {
		inst, err := parseTopo(string(t))
		if err != nil {
			return s, err
		}
		canon[i] = Topo(inst.canonical)
		s.topos = append(s.topos, inst)
		if inst.size == 0 {
			axisSized = true
		}
	}
	s.Topologies = canon
	if axisSized && len(s.Sizes) == 0 {
		return s, fmt.Errorf("engine: sweep needs at least one size")
	}
	if len(s.Agents) == 0 {
		return s, fmt.Errorf("engine: sweep needs at least one agent count")
	}
	for _, k := range s.Agents {
		if k < 1 {
			return s, fmt.Errorf("engine: agent count %d < 1", k)
		}
	}
	if len(s.Placements) == 0 {
		s.Placements = []Placement{PlaceSingle}
	}
	s.Process = strings.ToLower(s.Process)
	if s.Process == "" {
		s.Process = ProcRotor
	}
	proc, ok := LookupProcess(s.Process)
	if !ok {
		return s, fmt.Errorf("engine: unknown process %q (registered: %s)",
			s.Process, strings.Join(ProcessNames(), "|"))
	}
	if !proc.UsesPointers || len(s.Pointers) == 0 {
		// Processes without pointers: collapse the axis so the grid has no
		// duplicate cells.
		s.Pointers = []Pointer{PtrZero}
	}
	s.Metric = strings.ToLower(s.Metric)
	if s.Metric == "" {
		s.Metric = MetricCover
	}
	if _, ok := LookupMetric(s.Metric); !ok {
		return s, fmt.Errorf("engine: unknown metric %q (registered: %s)",
			s.Metric, strings.Join(MetricNames(), "|"))
	}
	if s.Replicas == 0 {
		s.Replicas = 1
	}
	if s.Replicas < 0 {
		return s, fmt.Errorf("engine: negative replica count %d", s.Replicas)
	}
	// Validate enums and the topology eagerly so Run fails before any
	// worker starts.
	for _, p := range s.Placements {
		if p < PlaceSingle || p > PlaceRandom {
			return s, fmt.Errorf("engine: invalid placement %d", int(p))
		}
	}
	for _, p := range s.Pointers {
		if p < PtrZero || p > PtrRandom {
			return s, fmt.Errorf("engine: invalid pointer policy %d", int(p))
		}
	}
	if s.Kernel < KernelAuto || s.Kernel > KernelParallel {
		return s, fmt.Errorf("engine: invalid kernel %d", int(s.Kernel))
	}
	for _, p := range s.Probes {
		if !probe.Known(p.Name) {
			return s, fmt.Errorf("engine: unknown probe %q (registered: %s)",
				p.Name, strings.Join(probe.Names(), "|"))
		}
		if p.Stride < 1 {
			return s, fmt.Errorf("engine: probe %q: stride %d < 1", p.Name, p.Stride)
		}
	}
	if len(s.Probes) > 0 && s.Metric != MetricCover {
		return s, fmt.Errorf("engine: probes require the %q metric (got %q)", MetricCover, s.Metric)
	}
	// Parse and compile every schedule spec eagerly (cheap string work,
	// like topologies) so malformed specs fail the sweep up front. The
	// canonical forms replace the caller's spellings, mirroring Topologies.
	if len(s.Schedules) == 0 {
		s.Schedules = []Schedule{SchedNone}
	}
	s.scheds = make([]schedInstance, 0, len(s.Schedules))
	schedCanon := make([]Schedule, len(s.Schedules))
	perturbed := false
	faulted := false
	for i, sc := range s.Schedules {
		inst, err := parseSchedule(string(sc))
		if err != nil {
			return s, err
		}
		schedCanon[i] = Schedule(inst.canonical)
		s.scheds = append(s.scheds, inst)
		if !inst.none() {
			perturbed = true
		}
		if inst.plan.FaultRound >= 0 {
			faulted = true
		}
	}
	s.Schedules = schedCanon
	if perturbed && s.Metric == MetricReturn {
		// The recurrence metric measures the unperturbed limit behavior
		// from round 0; running it under a schedule would silently ignore
		// the schedule, so reject the combination up front.
		return s, fmt.Errorf("engine: the %q metric does not support schedules", MetricReturn)
	}
	if (s.Metric == MetricRestab || s.Metric == MetricCoverAfterFault) && !faulted {
		return s, fmt.Errorf("engine: the %q metric requires at least one schedule with a bounded fault (got %s)",
			s.Metric, scheduleList(s.Schedules))
	}
	// Parse and compile every mission spec eagerly, mirroring schedules.
	if len(s.Missions) == 0 {
		s.Missions = []Mission{MissionNone}
	}
	s.miss = make([]missionInstance, 0, len(s.Missions))
	missionCanon := make([]Mission, len(s.Missions))
	missioned := false
	for i, m := range s.Missions {
		inst, err := parseMission(string(m))
		if err != nil {
			return s, err
		}
		missionCanon[i] = Mission(inst.canonical)
		s.miss = append(s.miss, inst)
		if !inst.none() {
			missioned = true
		}
	}
	s.Missions = missionCanon
	if missioned {
		// Mission cells replace the metric measurement with the mission
		// runner, so combinations that would silently ignore part of the
		// spec are rejected up front.
		if s.Metric != MetricCover {
			return s, fmt.Errorf("engine: missions require the default %q metric (got %q)", MetricCover, s.Metric)
		}
		if len(s.Probes) > 0 {
			return s, fmt.Errorf("engine: missions do not support probes")
		}
		// Incremental mission predicates (the explore bitmap, the return
		// position ledger) assume a fixed graph and population; only hold
		// regimes and pointer resets compose with missions today.
		for _, si := range s.scheds {
			for _, ev := range si.plan.Events {
				switch ev.Kind {
				case EvEdgeFail, EvRepair, EvJoin, EvLeave:
					return s, fmt.Errorf("engine: missions do not support schedule %q (topology or population changes)",
						si.canonical)
				}
			}
		}
	}
	// Topology specs were parsed and validated above without constructing
	// any graph (building huge topologies just to validate would be worse
	// than late failure); out-of-range axis sizes still surface as per-job
	// error rows so the rest of the grid runs.
	return s, nil
}

// scheduleList renders a schedule list for error messages.
func scheduleList(scheds []Schedule) string {
	parts := make([]string, len(scheds))
	for i, s := range scheds {
		parts[i] = string(s)
	}
	return strings.Join(parts, ",")
}

// Cell is one grid point of a sweep: a fully specified configuration, run
// Replicas times by one worker.
type Cell struct {
	// Index is the cell's position in the canonical grid order
	// (topologies outermost, then sizes, agents, placements, pointers,
	// schedules innermost).
	Index int `json:"cell"`
	// Topology is the canonical topology spec as listed in the sweep
	// ("ring", "grid:64x32", "rr:3").
	Topology string `json:"topology"`
	// Spec is the resolved self-sized instance spec — the string that
	// re-parses to exactly this cell's graph shape ("ring:1024",
	// "grid:64x64", "rr:3x512") — so cross-topology output is
	// self-describing.
	Spec string `json:"spec,omitempty"`
	// N is the size parameter: the Sizes-axis value for axis-sized specs,
	// the implied size for self-sized ones.
	N int `json:"n"`
	K int `json:"k"`
	// Schedule is the canonical perturbation-schedule spec of the cell,
	// empty for unperturbed cells (schedule "none") — so unscheduled rows
	// serialize exactly as they did before schedules existed.
	Schedule string `json:"schedule,omitempty"`
	// Mission is the canonical mission spec of the cell, empty for
	// mission-less cells (mission "none") — so mission-less rows serialize
	// exactly as they did before missions existed.
	Mission   string    `json:"mission,omitempty"`
	Placement Placement `json:"-"`
	Pointer   Pointer   `json:"-"`

	// inst is the parsed topology, carried so workers can key the graph
	// cache and build without re-parsing; sched is the compiled schedule,
	// mis the compiled mission. Cells compared with reflect.DeepEqual stay
	// equal across runs: all point into the process-wide registry.
	inst  topoInstance
	sched schedInstance
	mis   missionInstance
}

// Cells expands the grid in canonical order. The cell order — and therefore
// the order rows reach the sinks — depends only on the spec.
func (s SweepSpec) Cells() ([]Cell, error) {
	spec, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	return spec.expand(), nil
}

// expand builds the canonical cell grid of an already-normalized spec.
// Self-sized topologies contribute one size cell (their implied size)
// instead of fanning out over the Sizes axis, which does not apply to
// them. Schedules and then missions are the innermost axes, so a
// configuration's variants (perturbed next to pristine, goal-directed next
// to budgeted) land adjacently in the stream.
func (s SweepSpec) expand() []Cell {
	cells := make([]Cell, 0, len(s.topos)*len(s.Sizes)*len(s.Agents)*len(s.Placements)*len(s.Pointers)*len(s.scheds)*len(s.miss))
	for _, inst := range s.topos {
		sizes := s.Sizes
		if inst.size != 0 {
			sizes = []int{inst.size}
		}
		for _, n := range sizes {
			for _, k := range s.Agents {
				for _, pl := range s.Placements {
					for _, pt := range s.Pointers {
						for _, sc := range s.scheds {
							for _, mi := range s.miss {
								cells = append(cells, Cell{
									Index:     len(cells),
									Topology:  inst.canonical,
									Spec:      inst.resolved(n),
									N:         n,
									K:         k,
									Schedule:  sc.cellName(),
									Mission:   mi.cellName(),
									Placement: pl,
									Pointer:   pt,
									inst:      inst,
									sched:     sc,
									mis:       mi,
								})
							}
						}
					}
				}
			}
		}
	}
	return cells
}

package engine

import (
	"fmt"
	"math"
	"strconv"
)

// This file registers the built-in schedule families. They are ordinary
// registry entries: a further scenario family registers the same way, from
// any package, without touching the engine.
//
//	none                                  pristine static run (the default)
//	delay:p=<prob>[,until=<round>]        delayed deployments (§2.1, X7)
//	edgefail:t=<r>,count=<c>[,repair=<r>] edge failure (+ repair) (X9)
//	churn:join=<c>@<r>[,leave=<c>@<r>]    agent arrival / departure
//	reset:t=<round>                       rotor-pointer reset
//
// Canonical forms are parse/String fixed points, like topology specs
// (FuzzParseSchedule pins the round trip).

func init() {
	RegisterSchedule(noneDef())
	RegisterSchedule(delayDef())
	RegisterSchedule(edgefailDef())
	RegisterSchedule(churnDef())
	RegisterSchedule(resetDef())
}

// noneDef is the no-perturbation schedule: an empty plan. Cells carrying it
// are not wrapped at all, so unscheduled sweeps run — and serialize — byte-
// identically to the pre-schedule engine.
func noneDef() *ScheduleDef {
	return &ScheduleDef{
		Name: SchedNone,
		Parse: func(params string) (string, error) {
			if params != "" {
				return "", fmt.Errorf("none takes no parameters")
			}
			return "", nil
		},
		Compile: func(string) (*SchedulePlan, error) {
			return (&SchedulePlan{}).finalize(), nil
		},
	}
}

// delayDef is the delayed-deployment regime of §2.1 (Lemmas 1 and 3):
// every round, each agent independently skips its move with probability p,
// until round `until` (unbounded when absent). Holds only slow coverage —
// experiment X7 checks the bracket. The budget factor scales with the
// expected slow-down 1/(1-p).
func delayDef() *ScheduleDef {
	const maxP = 0.95 // keeps the budget extension bounded
	return &ScheduleDef{
		Name: "delay",
		Parse: func(params string) (string, error) {
			kv, err := kvPairs(params, map[string]string{"p": "probability", "until": "round"})
			if err != nil {
				return "", err
			}
			ps, ok := kv["p"]
			if !ok {
				return "", fmt.Errorf("delay needs p (delay:p=<prob in (0,%g]>)", maxP)
			}
			p, err := strconv.ParseFloat(ps, 64)
			if err != nil || !(p > 0) || p > maxP {
				return "", fmt.Errorf("p=%s: want a probability in (0,%g]", ps, maxP)
			}
			canon := "p=" + formatFloat(p)
			if us, ok := kv["until"]; ok {
				u, err := roundValue("until", us)
				if err != nil {
					return "", err
				}
				canon += ",until=" + strconv.FormatInt(u, 10)
			}
			return canon, nil
		},
		Compile: func(params string) (*SchedulePlan, error) {
			kv, err := kvPairs(params, map[string]string{"p": "probability", "until": "round"})
			if err != nil {
				return nil, err
			}
			p, err := strconv.ParseFloat(kv["p"], 64)
			if err != nil {
				return nil, err
			}
			plan := &SchedulePlan{
				HoldP:     p,
				HoldUntil: math.MaxInt64,
				// Holding a p-fraction stretches coverage by ~1/(1-p);
				// doubled for slack, bounded because p <= maxP.
				BudgetFactor: 2 * int64(math.Ceil(1/(1-p))),
			}
			if us, ok := kv["until"]; ok {
				if plan.HoldUntil, err = roundValue("until", us); err != nil {
					return nil, err
				}
			}
			return plan.finalize(), nil
		},
	}
}

// edgefailDef deletes count non-bridge edges at round t and optionally
// restores them at round repair — the Bampas et al. robustness scenario
// (X9: re-stabilization within O(D·|E|)).
func edgefailDef() *ScheduleDef {
	keys := map[string]string{"t": "round", "count": "count", "repair": "round"}
	return &ScheduleDef{
		Name: "edgefail",
		Parse: func(params string) (string, error) {
			kv, err := kvPairs(params, keys)
			if err != nil {
				return "", err
			}
			ts, ok := kv["t"]
			if !ok {
				return "", fmt.Errorf("edgefail needs t (edgefail:t=<round>[,count=<c>][,repair=<round>])")
			}
			t, err := roundValue("t", ts)
			if err != nil {
				return "", err
			}
			count := 1
			if cs, ok := kv["count"]; ok {
				if count, err = countValue("count", cs); err != nil {
					return "", err
				}
			}
			canon := fmt.Sprintf("t=%d,count=%d", t, count)
			if rs, ok := kv["repair"]; ok {
				r, err := roundValue("repair", rs)
				if err != nil {
					return "", err
				}
				if r <= t {
					return "", fmt.Errorf("repair=%d must come after t=%d", r, t)
				}
				canon += fmt.Sprintf(",repair=%d", r)
			}
			return canon, nil
		},
		Compile: func(params string) (*SchedulePlan, error) {
			kv, err := kvPairs(params, keys)
			if err != nil {
				return nil, err
			}
			t, err := roundValue("t", kv["t"])
			if err != nil {
				return nil, err
			}
			count, err := countValue("count", kv["count"])
			if err != nil {
				return nil, err
			}
			plan := &SchedulePlan{
				Events: []ScheduleEvent{{Round: t, Kind: EvEdgeFail, Count: count}},
				// Cutting edges can reshape the cover bound (ring -> path);
				// doubled headroom absorbs it.
				BudgetFactor: 2,
			}
			if rs, ok := kv["repair"]; ok {
				r, err := roundValue("repair", rs)
				if err != nil {
					return nil, err
				}
				plan.Events = append(plan.Events, ScheduleEvent{Round: r, Kind: EvRepair})
			}
			return plan.finalize(), nil
		},
	}
}

// churnDef adds and/or removes agents mid-run: join=<count>@<round> places
// new agents at schedule-stream positions, leave=<count>@<round> removes
// uniformly chosen agents (never the last one).
func churnDef() *ScheduleDef {
	keys := map[string]string{"join": "count@round", "leave": "count@round"}
	return &ScheduleDef{
		Name: "churn",
		Parse: func(params string) (string, error) {
			kv, err := kvPairs(params, keys)
			if err != nil {
				return "", err
			}
			if len(kv) == 0 {
				return "", fmt.Errorf("churn needs join=<c>@<r> and/or leave=<c>@<r>")
			}
			canon := ""
			if js, ok := kv["join"]; ok {
				c, r, err := countAt("join", js)
				if err != nil {
					return "", err
				}
				canon = fmt.Sprintf("join=%d@%d", c, r)
			}
			if ls, ok := kv["leave"]; ok {
				c, r, err := countAt("leave", ls)
				if err != nil {
					return "", err
				}
				if canon != "" {
					canon += ","
				}
				canon += fmt.Sprintf("leave=%d@%d", c, r)
			}
			return canon, nil
		},
		Compile: func(params string) (*SchedulePlan, error) {
			kv, err := kvPairs(params, keys)
			if err != nil {
				return nil, err
			}
			plan := &SchedulePlan{BudgetFactor: 2}
			if js, ok := kv["join"]; ok {
				c, r, err := countAt("join", js)
				if err != nil {
					return nil, err
				}
				plan.Events = append(plan.Events, ScheduleEvent{Round: r, Kind: EvJoin, Count: c})
			}
			if ls, ok := kv["leave"]; ok {
				c, r, err := countAt("leave", ls)
				if err != nil {
					return nil, err
				}
				plan.Events = append(plan.Events, ScheduleEvent{Round: r, Kind: EvLeave, Count: c})
			}
			return plan.finalize(), nil
		},
	}
}

// resetDef rewinds every rotor pointer to port 0 at round t, modeling a
// coordinated state loss; the system must re-stabilize from its current
// positions.
func resetDef() *ScheduleDef {
	keys := map[string]string{"t": "round"}
	return &ScheduleDef{
		Name: "reset",
		Parse: func(params string) (string, error) {
			kv, err := kvPairs(params, keys)
			if err != nil {
				return "", err
			}
			ts, ok := kv["t"]
			if !ok {
				return "", fmt.Errorf("reset needs t (reset:t=<round>)")
			}
			t, err := roundValue("t", ts)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("t=%d", t), nil
		},
		Compile: func(params string) (*SchedulePlan, error) {
			kv, err := kvPairs(params, keys)
			if err != nil {
				return nil, err
			}
			t, err := roundValue("t", kv["t"])
			if err != nil {
				return nil, err
			}
			return (&SchedulePlan{
				Events:       []ScheduleEvent{{Round: t, Kind: EvReset}},
				BudgetFactor: 2,
			}).finalize(), nil
		},
	}
}

package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// This file is the engine's mission registry, the sixth registry next to
// processes, metrics (process.go), topologies (topology.go), schedules
// (schedule.go) and sinks (sinkregistry.go): sweeps name their termination
// predicate and mission-scoped metrics as parameterized spec strings, and
// the registry supplies the parser, the deterministic compiler and the
// per-job state factory, so a new mission family plugs in with one
// RegisterMission call — no engine edits, no new spec fields.
//
// Spec grammar (case-insensitive, canonicalized to lower case):
//
//	spec   = family [":" params]
//	params = key "=" value {"," key "=" value}   // family-specific keys
//
// A mission turns the engine's fixed round budgets into goal-directed runs:
// instead of "run B rounds, then measure", a mission row is "run until the
// predicate fires (all edges explored, agents home, configuration
// quiescent) or a service horizon elapses, then report mission metrics"
// (mission_rounds, patrol staleness, load-balance fairness). Predicates are
// evaluated at round granularity from incremental state — missions dispatch
// on the ArcTraversalObserver and ConfigHasher capabilities so a round
// costs O(arcs moved), never an O(E) rescan — and consume no randomness of
// their own, so mission rows inherit the engine's bit-reproducibility
// across worker counts unchanged. The built-in families are in missions.go.

// Mission is one parameterized mission spec in a sweep, e.g. "none",
// "explore", "return", "quiesce:window=4096", "patrol:horizon=4096",
// "balance:horizon=4096,warmup=0". Use ParseMission to validate and
// canonicalize one.
type Mission string

func (m Mission) String() string { return string(m) }

// MissionNone is the canonical no-mission spec: cells carrying it run the
// plain metric measurement under the round budget, exactly as if missions
// did not exist.
const MissionNone = "none"

// MissionPlan is the compiled, deterministic form of one mission spec.
// Plans are immutable and shared by every job of a cell.
type MissionPlan struct {
	// Horizon is the fixed round count of a service mission (patrol,
	// balance): the mission completes when the run reaches it. 0 for
	// predicate missions, which run until their predicate fires.
	Horizon int64
	// Warmup is the stabilization prefix of a service mission: rounds
	// <= Warmup are excluded from staleness/fairness accounting.
	Warmup int64
	// Window is the trailing recurrence-detection window of the quiesce
	// mission. 0 elsewhere.
	Window int64
	// BudgetFactor multiplies the automatic round budget of mission jobs
	// (after any schedule extension): predicate missions may need to run
	// well past cover time. The budget is additionally floored at Horizon.
	// An explicit SweepSpec.MaxRounds is never extended — it is the hard
	// cap that turns a non-terminating mission into a mission_timeout row.
	BudgetFactor int64
}

// finalize derives defaults; family compilers call it last.
func (p *MissionPlan) finalize() *MissionPlan {
	if p.BudgetFactor < 1 {
		p.BudgetFactor = 1
	}
	return p
}

// MissionState is the per-job incremental predicate/metric state of one
// mission. The mission runner steps the process one round at a time and
// calls Observe after each round; arc-level detail arrives between Observe
// calls through the observer the factory installed. Finish runs once at
// the end (predicate fired or horizon reached, not on timeout) and writes
// the mission's metrics into the row.
type MissionState interface {
	// Observe is called after each completed round with the process's
	// round counter.
	Observe(round int64)
	// Done reports whether the mission is complete. It is polled once per
	// round, immediately after Observe.
	Done() bool
	// Finish writes mission metrics (staleness, fairness, period) into the
	// row of a completed mission.
	Finish(row *Row)
}

// MissionDef describes one registered mission family. Parse must be cheap
// (string validation only) — specs are validated eagerly, before any sweep
// worker starts. Compile must be deterministic given the canonical params.
// New builds the per-job state, dispatching on the capabilities of the
// measurement target (ArcTraversalObserver, ConfigHasher) and returning an
// error when the process lacks one — the runner turns that into a per-job
// error row, mirroring metric capability dispatch.
type MissionDef struct {
	// Name is the registry key and the spec's family prefix, as it appears
	// in SweepSpec.Missions, rows and CLI flags.
	Name string
	// Parse validates the spec's parameter string (the part after "name:",
	// empty when absent) and returns its canonical form. The canonical
	// spec re-parses to itself.
	Parse func(params string) (canonical string, err error)
	// Compile turns canonical params into the immutable plan.
	Compile func(params string) (*MissionPlan, error)
	// New builds the job's mission state and installs any observers on p
	// (more precisely on the measurement target under any schedule
	// wrapper). procName is the process registry name, for error messages.
	New func(plan *MissionPlan, procName string, env *JobEnv, p Proc) (MissionState, error)
}

var (
	missionMu sync.RWMutex
	missions  = map[string]*MissionDef{}
)

// RegisterMission adds a mission family to the registry. Names are
// normalized to lower case (specs lowercase their input before lookup);
// duplicate names panic: family names appear in specs, rows and derived
// file formats and must stay unambiguous.
func RegisterMission(d *MissionDef) {
	if d.Name == "" || d.Parse == nil || d.Compile == nil || d.New == nil {
		panic("engine: RegisterMission needs a name, a parser, a compiler and a state factory")
	}
	d.Name = strings.ToLower(d.Name)
	if strings.ContainsAny(d.Name, ": \t\n") {
		panic(fmt.Sprintf("engine: mission name %q may not contain ':' or spaces", d.Name))
	}
	missionMu.Lock()
	defer missionMu.Unlock()
	if _, dup := missions[d.Name]; dup {
		panic(fmt.Sprintf("engine: duplicate mission %q", d.Name))
	}
	missions[d.Name] = d
}

// LookupMission returns a registered family by name.
func LookupMission(name string) (*MissionDef, bool) {
	missionMu.RLock()
	defer missionMu.RUnlock()
	d, ok := missions[name]
	return d, ok
}

// MissionNames lists the registered family names, sorted.
func MissionNames() []string {
	missionMu.RLock()
	defer missionMu.RUnlock()
	names := make([]string, 0, len(missions))
	for n := range missions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// missionInstance is the parsed, compiled form of one mission spec.
type missionInstance struct {
	def       *MissionDef
	canonical string       // canonical spec string ("patrol:horizon=4096")
	plan      *MissionPlan // immutable, shared by every job of the cell
}

// none reports whether the instance is the no-mission spec.
func (mi missionInstance) none() bool { return mi.canonical == MissionNone }

// cellName is the mission string a cell carries: empty for "none", so
// mission-less rows serialize exactly as they did before missions existed.
func (mi missionInstance) cellName() string {
	if mi.none() {
		return ""
	}
	return mi.canonical
}

// parseMission parses, validates and compiles one spec string against the
// registry.
func parseMission(s string) (missionInstance, error) {
	str := strings.ToLower(strings.TrimSpace(s))
	name, params, _ := strings.Cut(str, ":")
	name = strings.TrimSpace(name)
	def, ok := LookupMission(name)
	if !ok {
		return missionInstance{}, fmt.Errorf("engine: unknown mission %q (registered: %s)",
			name, strings.Join(MissionNames(), "|"))
	}
	canon, err := def.Parse(strings.TrimSpace(params))
	if err != nil {
		return missionInstance{}, fmt.Errorf("engine: mission %q: %w", str, err)
	}
	plan, err := def.Compile(canon)
	if err != nil {
		return missionInstance{}, fmt.Errorf("engine: mission %q: %w", str, err)
	}
	return missionInstance{
		def:       def,
		canonical: specString(def.Name, canon),
		plan:      plan.finalize(),
	}, nil
}

// ParseMission validates a mission spec string and returns its canonical
// form. The canonical form re-parses to itself.
func ParseMission(s string) (Mission, error) {
	inst, err := parseMission(s)
	if err != nil {
		return "", err
	}
	return Mission(inst.canonical), nil
}

// measureMission is the mission runner: it drives the process one round at
// a time, feeding each completed round to the mission state, until the
// mission is done or the round budget runs out. A budget exhaustion is an
// outcome, not an error: the row reports mission_timeout=true with the
// rounds spent, so unbounded missions (a random walk asked to "return", a
// too-small explicit MaxRounds) degrade into data instead of hanging a
// worker. Stepping goes through Proc.Step so holds and pointer resets from
// a composed schedule apply as usual.
func measureMission(p Proc, mi missionInstance, procName string, env *JobEnv, budget int64, row *Row) {
	target := measureTarget(p)
	st, err := mi.def.New(mi.plan, procName, env, target)
	if err != nil {
		row.Err = err.Error()
		return
	}
	// Missions observe through closures over st; remove them afterwards so
	// a cached prototype does not keep feeding a dead mission's state (and
	// regains fast-kernel eligibility for any follow-up measurement).
	defer func() {
		if ao, ok := target.(ArcTraversalObserver); ok {
			ao.SetArcObserver(nil)
		}
	}()
	for !st.Done() {
		if p.Round() >= budget {
			row.MissionTimeout = true
			row.Rounds = p.Round()
			row.MissionRounds = p.Round()
			return
		}
		p.Step()
		st.Observe(p.Round())
	}
	row.Rounds = p.Round()
	row.MissionRounds = p.Round()
	row.Value = float64(p.Round())
	st.Finish(row) // service missions override Value with their metric
}

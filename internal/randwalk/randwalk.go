// Package randwalk implements the parallel random-walk baseline that the
// paper compares the multi-agent rotor-router against: k agents performing
// independent simple random walks in synchronous rounds, with no
// coordination (§1, §3.3).
//
// The rotor-router results are deterministic while the random-walk results
// are statements about expectations, so this package also provides
// repeated-trial estimators (CoverTimes) running independent walks under
// deterministic per-trial seeds.
package randwalk

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// ErrNotCovered is returned when a cover-time budget is exhausted.
var ErrNotCovered = errors.New("randwalk: cover-time budget exhausted")

// Walk is a system of k independent synchronous random walkers.
type Walk struct {
	g   *graph.Graph
	rng *xrand.Rand

	pos     []int // position of each walker
	visited []bool
	covered int
	round   int64

	visits []int64 // arrival counts per node, plus initial placements
}

// New creates a walk system with the given starting positions. The rng is
// owned by the walk afterwards.
func New(g *graph.Graph, positions []int, rng *xrand.Rand) (*Walk, error) {
	if len(positions) == 0 {
		return nil, errors.New("randwalk: no walkers placed")
	}
	n := g.NumNodes()
	w := &Walk{
		g:       g,
		rng:     rng,
		pos:     append([]int(nil), positions...),
		visited: make([]bool, n),
		visits:  make([]int64, n),
	}
	for _, v := range w.pos {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("randwalk: position %d out of range [0,%d)", v, n)
		}
		if !w.visited[v] {
			w.visited[v] = true
			w.covered++
		}
		w.visits[v]++
	}
	return w, nil
}

// NumWalkers returns k.
func (w *Walk) NumWalkers() int { return len(w.pos) }

// Round returns the number of completed rounds.
func (w *Walk) Round() int64 { return w.round }

// Covered returns the number of distinct nodes visited so far.
func (w *Walk) Covered() int { return w.covered }

// Visits returns the number of times node v has been visited (including
// initial placement).
func (w *Walk) Visits(v int) int64 { return w.visits[v] }

// Positions returns a copy of the walker positions.
func (w *Walk) Positions() []int { return append([]int(nil), w.pos...) }

// Step moves every walker to a uniformly random neighbor.
func (w *Walk) Step() {
	for i, v := range w.pos {
		d := w.g.Degree(v)
		var dest int
		if d == 1 {
			dest = w.g.Neighbor(v, 0)
		} else {
			dest = w.g.Neighbor(v, w.rng.Intn(d))
		}
		w.pos[i] = dest
		w.visits[dest]++
		if !w.visited[dest] {
			w.visited[dest] = true
			w.covered++
		}
	}
	w.round++
}

// Run executes the given number of rounds.
func (w *Walk) Run(rounds int64) {
	for i := int64(0); i < rounds; i++ {
		w.Step()
	}
}

// RunUntilCovered steps until every node has been visited and returns the
// cover time. If maxRounds elapse first it returns ErrNotCovered.
func (w *Walk) RunUntilCovered(maxRounds int64) (int64, error) {
	n := w.g.NumNodes()
	for w.covered < n {
		if w.round >= maxRounds {
			return w.round, fmt.Errorf("%w after %d rounds (%d/%d nodes)",
				ErrNotCovered, w.round, w.covered, n)
		}
		w.Step()
	}
	return w.round, nil
}

// CoverTimes runs independent trials of the cover time of k synchronous
// random walks from the given positions, using deterministic per-trial
// seeds derived from seed. Trials run in parallel across workers (bounded
// by GOMAXPROCS). It fails if any trial exhausts maxRounds.
func CoverTimes(g *graph.Graph, positions []int, trials int, seed uint64, maxRounds int64) ([]int64, error) {
	if trials <= 0 {
		return nil, errors.New("randwalk: trials must be positive")
	}
	times := make([]int64, trials)
	errs := make([]error, trials)

	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				rng := xrand.New(seed + uint64(t)*0x9e3779b97f4a7c15)
				w, err := New(g, positions, rng)
				if err != nil {
					errs[t] = err
					continue
				}
				times[t], errs[t] = w.RunUntilCovered(maxRounds)
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", t, err)
		}
	}
	return times, nil
}

// GapStats summarizes the recurrence of visits in a long window.
type GapStats struct {
	// Window is the number of observed rounds.
	Window int64
	// MaxGap is the longest observed interval during which some node was
	// unvisited (nodes never visited in the window count as Window).
	MaxGap int64
	// MeanGap is the average over nodes of window/visits — the empirical
	// mean return time, which on the ring is n/k in expectation.
	MeanGap float64
}

// MeasureGaps runs the walk for burnIn rounds, then observes window rounds
// and reports recurrence statistics.
func (w *Walk) MeasureGaps(burnIn, window int64) GapStats {
	w.Run(burnIn)
	n := w.g.NumNodes()
	lastSeen := make([]int64, n) // 0 = window start
	maxGap := make([]int64, n)
	count := make([]int64, n)
	for t := int64(1); t <= window; t++ {
		w.Step()
		for _, v := range w.pos {
			if g := t - lastSeen[v]; g > maxGap[v] {
				maxGap[v] = g
			}
			lastSeen[v] = t
			count[v]++
		}
	}
	var stats GapStats
	stats.Window = window
	var meanSum float64
	for v := 0; v < n; v++ {
		if g := window - lastSeen[v]; g > maxGap[v] {
			maxGap[v] = g
		}
		if maxGap[v] > stats.MaxGap {
			stats.MaxGap = maxGap[v]
		}
		if count[v] > 0 {
			meanSum += float64(window) / float64(count[v])
		} else {
			meanSum += float64(window)
		}
	}
	stats.MeanGap = meanSum / float64(n)
	return stats
}

// HittingTime runs until some walker first reaches target, returning the
// number of rounds taken (0 if a walker starts there). It returns an error
// if maxRounds elapse first.
func (w *Walk) HittingTime(target int, maxRounds int64) (int64, error) {
	for _, v := range w.pos {
		if v == target {
			return 0, nil
		}
	}
	start := w.round
	for {
		if w.round-start >= maxRounds {
			return 0, fmt.Errorf("randwalk: target %d not hit within %d rounds", target, maxRounds)
		}
		w.Step()
		for _, v := range w.pos {
			if v == target {
				return w.round - start, nil
			}
		}
	}
}

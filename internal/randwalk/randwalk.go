// Package randwalk implements the parallel random-walk baseline that the
// paper compares the multi-agent rotor-router against: k agents performing
// independent simple random walks in synchronous rounds, with no
// coordination (§1, §3.3).
//
// Stepping is tiered like the rotor-router's (see internal/kernel). The
// per-agent engine moves every walker individually: O(k) generator draws
// per round. The counts-based engine (tier 3) stores walkers as per-node
// counts and scatters each occupied node's population over its ports with
// one multinomial draw — Bin(c, 1/2) clockwise movers on the ring — making
// a round O(occupied nodes) instead of O(k), the difference that matters
// in the paper's k ≫ n regimes. Both engines simulate exactly the same
// process; they consume randomness differently, so equal seeds give
// different (equally distributed) trajectories. The distribution tests in
// this package validate the two against each other.
//
// The rotor-router results are deterministic while the random-walk results
// are statements about expectations, so this package also provides
// repeated-trial estimators (CoverTimes) running independent walks under
// deterministic per-trial seeds.
package randwalk

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rotorring/internal/graph"
	"rotorring/internal/kernel"
	"rotorring/internal/xrand"
)

// ErrNotCovered is returned when a cover-time budget is exhausted.
var ErrNotCovered = errors.New("randwalk: cover-time budget exhausted")

// Mode selects the stepping engine of a Walk.
type Mode int

// Modes.
const (
	// ModeAuto picks counts-based stepping when k ≥ CountsFactor·n and
	// per-agent stepping otherwise. This is the default.
	ModeAuto Mode = iota
	// ModeAgents forces the per-agent engine.
	ModeAgents
	// ModeCounts forces the counts-based engine.
	ModeCounts
)

func (m Mode) String() string {
	switch m {
	case ModeAgents:
		return "agents"
	case ModeCounts:
		return "counts"
	default:
		return "auto"
	}
}

// CountsFactor is the density threshold of ModeAuto: counts-based rounds
// scan all n nodes, so they only pay off once there are at least a couple
// of walkers per node on average.
const CountsFactor = 2

// Walk is a system of k independent synchronous random walkers.
type Walk struct {
	g *graph.Graph
	// g0 is the construction-time topology; Rewire (perturbation
	// scenarios) swaps g, Reset restores g0.
	g0  *graph.Graph
	rng *xrand.Rand

	counts bool // counts-based stepping (tier 3)
	ring   bool // canonical ring: direct ±1 addressing, Bin(c, 1/2) split

	pos   []int   // per-agent engine: position of each walker
	cnt   []int64 // counts engine: walkers per node
	next  []int64 // counts engine: next-round double buffer
	split []int64 // counts engine, ring: per-node clockwise movers
	port  []int64 // counts engine: multinomial scratch (general graphs)

	pos0 []int // initial positions, for Reset

	k       int64
	visited []bool
	covered int
	round   int64

	visits []int64 // arrival counts per node, plus initial placements

	// Optional per-move arc observer (SetArcObserver): called for every
	// (source, port, count) batch of walkers traversing an arc. The ring
	// gather pass has no per-arc loop, so observation there goes through
	// lazily built clockwise/counter-clockwise port tables.
	arcObs func(v, port int, walkers int64)
	cwPort []int32 // ring: port at v leading to (v+1) mod n
	ccPort []int32 // ring: the other port
}

// Option configures a Walk at construction time.
type Option func(*walkConfig)

type walkConfig struct {
	mode Mode
}

// WithMode selects the stepping engine; the default is ModeAuto.
func WithMode(m Mode) Option {
	return func(c *walkConfig) { c.mode = m }
}

// New creates a walk system with the given starting positions. The rng is
// owned by the walk afterwards.
func New(g *graph.Graph, positions []int, rng *xrand.Rand, opts ...Option) (*Walk, error) {
	if len(positions) == 0 {
		return nil, errors.New("randwalk: no walkers placed")
	}
	var cfg walkConfig
	for _, o := range opts {
		o(&cfg)
	}
	n := g.NumNodes()
	w := &Walk{
		g:       g,
		g0:      g,
		rng:     rng,
		pos0:    append([]int(nil), positions...),
		k:       int64(len(positions)),
		visited: make([]bool, n),
		visits:  make([]int64, n),
	}
	for _, v := range positions {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("randwalk: position %d out of range [0,%d)", v, n)
		}
	}
	w.counts = cfg.mode == ModeCounts ||
		(cfg.mode == ModeAuto && w.k >= CountsFactor*int64(n))
	if w.counts {
		w.cnt = make([]int64, n)
		w.next = make([]int64, n)
		w.ring = kernel.DetectShape(g) == kernel.ShapeRing
		if w.ring {
			w.split = make([]int64, n)
		} else {
			maxDeg := 0
			for v := 0; v < n; v++ {
				if d := g.Degree(v); d > maxDeg {
					maxDeg = d
				}
			}
			w.port = make([]int64, maxDeg)
		}
	} else {
		w.pos = make([]int, 0, len(positions))
	}
	w.place()
	return w, nil
}

// place initializes the walker state and visit counters from pos0.
func (w *Walk) place() {
	if w.counts {
		for _, v := range w.pos0 {
			w.cnt[v]++
		}
	} else {
		w.pos = append(w.pos[:0], w.pos0...)
	}
	for _, v := range w.pos0 {
		if !w.visited[v] {
			w.visited[v] = true
			w.covered++
		}
		w.visits[v]++
	}
}

// Mode reports the stepping engine in use: "agents" or "counts".
func (w *Walk) Mode() string {
	if w.counts {
		return ModeCounts.String()
	}
	return ModeAgents.String()
}

// NumWalkers returns k.
func (w *Walk) NumWalkers() int { return int(w.k) }

// Round returns the number of completed rounds.
func (w *Walk) Round() int64 { return w.round }

// Covered returns the number of distinct nodes visited so far.
func (w *Walk) Covered() int { return w.covered }

// Visits returns the number of times node v has been visited (including
// initial placement).
func (w *Walk) Visits(v int) int64 { return w.visits[v] }

// At returns the number of walkers currently at v.
func (w *Walk) At(v int) int64 {
	if w.counts {
		return w.cnt[v]
	}
	var c int64
	for _, p := range w.pos {
		if p == v {
			c++
		}
	}
	return c
}

// Positions returns a copy of the walker positions. Walkers are
// indistinguishable under counts-based stepping, so the copy is sorted in
// that mode (and in whatever per-walker order the per-agent engine holds
// otherwise).
func (w *Walk) Positions() []int {
	if !w.counts {
		return append([]int(nil), w.pos...)
	}
	out := make([]int, 0, w.k)
	for v, c := range w.cnt {
		for i := int64(0); i < c; i++ {
			out = append(out, v)
		}
	}
	return out
}

// Step moves every walker to a uniformly random neighbor.
func (w *Walk) Step() {
	if w.counts {
		w.stepCounts()
	} else {
		w.stepAgents()
	}
	w.round++
}

// stepAgents is the per-agent engine: one draw per walker.
func (w *Walk) stepAgents() {
	for i, v := range w.pos {
		d := w.g.Degree(v)
		var dest int
		if d == 1 {
			dest = w.g.Neighbor(v, 0)
			if w.arcObs != nil {
				w.arcObs(v, 0, 1)
			}
		} else {
			p := w.rng.Intn(d)
			dest = w.g.Neighbor(v, p)
			if w.arcObs != nil {
				w.arcObs(v, p, 1)
			}
		}
		w.pos[i] = dest
		w.visits[dest]++
		if !w.visited[dest] {
			w.visited[dest] = true
			w.covered++
		}
	}
}

// stepCounts is the counts-based engine: one multinomial draw per occupied
// node. Every walker moves each round, so after the buffer swap the count
// array equals the round's arrival counts — a fact the recurrence
// measurements below rely on.
func (w *Walk) stepCounts() {
	cur, next := w.cnt, w.next
	if w.ring {
		// Gather formulation, two sequential passes: first draw every
		// node's clockwise-mover count, then assemble arrivals as
		// next[v] = cw[v-1] + ccw[v+1] — no buffer clear, no
		// read-modify-write scatter.
		n := len(cur)
		split := w.split
		rng := w.rng
		for v, c := range cur {
			if c == 0 {
				split[v] = 0
				continue
			}
			split[v] = rng.BinomialHalf(c)
		}
		next[0] = split[n-1] + cur[1] - split[1]
		for v := 1; v < n-1; v++ {
			next[v] = split[v-1] + cur[v+1] - split[v+1]
		}
		next[n-1] = split[n-2] + cur[0] - split[0]
		if w.arcObs != nil {
			// The gather pass above never touches arcs, so replay the draws
			// as per-arc batches: split[v] walkers clockwise, the rest the
			// other way. Port identities come from the lazy ring tables.
			w.ensureRingPorts()
			for v, c := range cur {
				if c == 0 {
					continue
				}
				if s := split[v]; s > 0 {
					w.arcObs(v, int(w.cwPort[v]), s)
				}
				if r := c - split[v]; r > 0 {
					w.arcObs(v, int(w.ccPort[v]), r)
				}
			}
		}
	} else {
		for i := range next {
			next[i] = 0
		}
		for v, c := range cur {
			if c == 0 {
				continue
			}
			d := w.g.Degree(v)
			if d == 1 {
				next[w.g.Neighbor(v, 0)] += c
				if w.arcObs != nil {
					w.arcObs(v, 0, c)
				}
				continue
			}
			split := w.port[:d]
			w.rng.Multinomial(c, split)
			for p, x := range split {
				if x > 0 {
					next[w.g.Neighbor(v, p)] += x
					if w.arcObs != nil {
						w.arcObs(v, p, x)
					}
				}
			}
		}
	}
	visits := w.visits
	if w.covered == len(visits) {
		// Fully covered: only the visit counters still change.
		for v, a := range next {
			if a != 0 {
				visits[v] += a
			}
		}
	} else {
		for v, a := range next {
			if a == 0 {
				continue
			}
			visits[v] += a
			if !w.visited[v] {
				w.visited[v] = true
				w.covered++
			}
		}
	}
	w.cnt, w.next = next, cur
}

// StepHeld advances one round in which held[v] walkers at node v sit out
// (clamped to the node's population; entries at empty nodes are ignored, so
// callers may reuse a buffer with stale entries). Held walkers neither move
// nor re-visit their node — visits count arrivals only, mirroring
// core.System.StepHeld — and the movers walk exactly as in Step. Only the
// counts engine supports holds: per-node hold counts have no per-walker
// identity to apply under per-agent stepping.
func (w *Walk) StepHeld(held []int64) {
	if !w.counts {
		panic("randwalk: StepHeld requires the counts engine (WithMode(ModeCounts))")
	}
	cur, next := w.cnt, w.next
	n := len(cur)
	if w.ring {
		// Pass 1: per-node mover counts into next, clockwise splits drawn.
		split := w.split
		rng := w.rng
		for v, c := range cur {
			h := held[v]
			if h > c {
				h = c
			}
			if h < 0 {
				h = 0
			}
			m := c - h
			next[v] = m
			if m == 0 {
				split[v] = 0
				continue
			}
			split[v] = rng.BinomialHalf(m)
			if w.arcObs != nil {
				w.ensureRingPorts()
				if s := split[v]; s > 0 {
					w.arcObs(v, int(w.cwPort[v]), s)
				}
				if r := m - split[v]; r > 0 {
					w.arcObs(v, int(w.ccPort[v]), r)
				}
			}
		}
		// Pass 2: next[v] = stayers + arrivals, overwriting the mover counts
		// ascending — next[v+1] is still v+1's mover count when v reads it;
		// node n-1 needs node 0's, saved before the overwrite.
		m0 := next[0]
		visits, visited := w.visits, w.visited
		for v := 0; v < n; v++ {
			m := next[v]
			var a int64
			switch v {
			case 0:
				a = split[n-1] + next[1] - split[1]
			case n - 1:
				a = split[n-2] + m0 - split[0]
			default:
				a = split[v-1] + next[v+1] - split[v+1]
			}
			next[v] = (cur[v] - m) + a
			if a != 0 {
				visits[v] += a
				if !visited[v] {
					visited[v] = true
					w.covered++
				}
			}
		}
	} else {
		for i := range next {
			next[i] = 0
		}
		// Scatter the movers; arrivals accumulate in next.
		for v, c := range cur {
			h := held[v]
			if h > c {
				h = c
			}
			if h < 0 {
				h = 0
			}
			m := c - h
			if m == 0 {
				continue
			}
			d := w.g.Degree(v)
			if d == 1 {
				next[w.g.Neighbor(v, 0)] += m
				if w.arcObs != nil {
					w.arcObs(v, 0, m)
				}
				continue
			}
			split := w.port[:d]
			w.rng.Multinomial(m, split)
			for p, x := range split {
				if x > 0 {
					next[w.g.Neighbor(v, p)] += x
					if w.arcObs != nil {
						w.arcObs(v, p, x)
					}
				}
			}
		}
		// Fold coverage from the arrivals before the stayers rejoin them.
		for v, a := range next {
			if a == 0 {
				continue
			}
			w.visits[v] += a
			if !w.visited[v] {
				w.visited[v] = true
				w.covered++
			}
		}
		for v, c := range cur {
			if c == 0 {
				continue
			}
			h := held[v]
			if h > c {
				h = c
			}
			if h > 0 {
				next[v] += h
			}
		}
	}
	w.cnt, w.next = next, cur
	w.round++
}

// ForEachOccupied calls f(v, c) for every node currently holding c >= 1
// walkers, in ascending node order (the order contract the engine's
// schedule subsystem keys its deterministic hold draws by, matching
// core.System.ForEachOccupied). f must not mutate the walk.
func (w *Walk) ForEachOccupied(f func(v int, walkers int64)) {
	if w.counts {
		for v, c := range w.cnt {
			if c > 0 {
				f(v, c)
			}
		}
		return
	}
	pos := append([]int(nil), w.pos...)
	sort.Ints(pos)
	for i := 0; i < len(pos); {
		j := i
		for j < len(pos) && pos[j] == pos[i] {
			j++
		}
		f(pos[i], int64(j-i))
		i = j
	}
}

// SetArcObserver installs fn as the per-move arc observer. During every
// subsequent round, fn is invoked for each (source vertex, port) batch of
// walkers traversing the corresponding arc, with the number of walkers in
// the batch; pass nil to remove it. Installing an observer never changes
// which random draws are made, so trajectories with and without an observer
// are identical. The observer is not copied by Clone.
func (w *Walk) SetArcObserver(fn func(v, port int, walkers int64)) {
	w.arcObs = fn
}

// ensureRingPorts builds the per-node clockwise/counter-clockwise port
// tables that translate the ring gather pass into arc observations.
func (w *Walk) ensureRingPorts() {
	if w.cwPort != nil {
		return
	}
	n := w.g.NumNodes()
	w.cwPort = make([]int32, n)
	w.ccPort = make([]int32, n)
	for v := 0; v < n; v++ {
		if w.g.Neighbor(v, 0) == (v+1)%n {
			w.cwPort[v], w.ccPort[v] = 0, 1
		} else {
			w.cwPort[v], w.ccPort[v] = 1, 0
		}
	}
}

// forEachArrival invokes f(v, c) for every node that received c ≥ 1
// walkers during the last completed round.
func (w *Walk) forEachArrival(f func(v int, c int64)) {
	if w.counts {
		for v, c := range w.cnt {
			if c > 0 {
				f(v, c)
			}
		}
		return
	}
	for _, v := range w.pos {
		f(v, 1)
	}
}

// Run executes the given number of rounds.
func (w *Walk) Run(rounds int64) {
	for i := int64(0); i < rounds; i++ {
		w.Step()
	}
}

// RunUntilCovered steps until every node has been visited and returns the
// cover time. If maxRounds elapse first it returns ErrNotCovered.
func (w *Walk) RunUntilCovered(maxRounds int64) (int64, error) {
	n := w.g.NumNodes()
	for w.covered < n {
		if w.round >= maxRounds {
			return w.round, fmt.Errorf("%w after %d rounds (%d/%d nodes)",
				ErrNotCovered, w.round, w.covered, n)
		}
		w.Step()
	}
	return w.round, nil
}

// Reset restores the initial placement (on the construction-time topology,
// undoing any Rewire) and clears all counters, allowing a fresh run without
// reallocation (mirroring core.System.Reset). The generator state is left
// as is; combine with Reseed for reproducible independent trials.
func (w *Walk) Reset() {
	if w.g != w.g0 {
		w.rewireTo(w.g0)
	}
	w.k = int64(len(w.pos0))
	w.round = 0
	w.covered = 0
	for v := range w.visited {
		w.visited[v] = false
		w.visits[v] = 0
	}
	if w.counts {
		for v := range w.cnt {
			w.cnt[v] = 0
		}
	}
	w.place()
}

// Reseed resets the generator to the deterministic state xrand.New(seed)
// would give it.
func (w *Walk) Reseed(seed uint64) { w.rng.Reseed(seed) }

// Clone returns a deep copy of the walk, including the generator state:
// the copy and the original evolve identically from here (mirroring
// core.System.Clone).
func (w *Walk) Clone() *Walk {
	c := *w
	c.rng = w.rng.Clone()
	c.pos = append([]int(nil), w.pos...)
	c.cnt = append([]int64(nil), w.cnt...)
	c.next = append([]int64(nil), w.next...)
	c.split = append([]int64(nil), w.split...)
	c.port = append([]int64(nil), w.port...)
	c.pos0 = append([]int(nil), w.pos0...)
	c.visited = append([]bool(nil), w.visited...)
	c.visits = append([]int64(nil), w.visits...)
	// The arc observer is a closure over caller state tied to the original
	// walk; the clone starts unobserved. The port tables are immutable per
	// graph and safe to share.
	c.arcObs = nil
	return &c
}

// rewireTo points the walk at a different graph over the same node set and
// refreshes the shape-dependent fast-path state of the counts engine.
func (w *Walk) rewireTo(ng *graph.Graph) {
	w.g = ng
	w.cwPort, w.ccPort = nil, nil // ring port tables are per-graph
	if !w.counts {
		return
	}
	w.ring = kernel.DetectShape(ng) == kernel.ShapeRing
	if w.ring {
		if w.split == nil {
			w.split = make([]int64, ng.NumNodes())
		}
	} else if len(w.port) < ng.MaxDegree() {
		w.port = make([]int64, ng.MaxDegree())
	}
}

// Rewire swaps the topology under the running walk — the edge-failure /
// repair primitive. ng must have the same node set; walker positions,
// visit counters and the round clock carry over (walkers have no pointers,
// so no transplant is needed). Reset returns to the construction-time
// topology.
func (w *Walk) Rewire(ng *graph.Graph) error {
	if ng.NumNodes() != w.g.NumNodes() {
		return fmt.Errorf("randwalk: Rewire changes the node count (%d -> %d)", w.g.NumNodes(), ng.NumNodes())
	}
	w.rewireTo(ng)
	return nil
}

// AddWalkers places one new walker on each listed node mid-run (the churn
// "join" primitive). Arrivals count as visits, exactly like initial
// placement. The initial configuration (Reset target) is unchanged.
func (w *Walk) AddWalkers(positions ...int) error {
	n := w.g.NumNodes()
	for _, v := range positions {
		if v < 0 || v >= n {
			return fmt.Errorf("randwalk: position %d out of range [0,%d)", v, n)
		}
	}
	for _, v := range positions {
		if w.counts {
			w.cnt[v]++
		} else {
			w.pos = append(w.pos, v)
		}
		w.k++
		if !w.visited[v] {
			w.visited[v] = true
			w.covered++
		}
		w.visits[v]++
	}
	return nil
}

// RemoveWalkers removes one walker from each listed node mid-run (the churn
// "leave" primitive). Every listed node must currently hold a walker, and
// at least one walker must remain afterwards.
func (w *Walk) RemoveWalkers(positions ...int) error {
	if int64(len(positions)) >= w.k {
		return errors.New("randwalk: RemoveWalkers would leave no walkers")
	}
	removeAt := func(v int) bool {
		if w.counts {
			if w.cnt[v] == 0 {
				return false
			}
			w.cnt[v]--
			return true
		}
		for i, p := range w.pos {
			if p == v {
				w.pos[i] = w.pos[len(w.pos)-1]
				w.pos = w.pos[:len(w.pos)-1]
				return true
			}
		}
		return false
	}
	for i, v := range positions {
		if v < 0 || v >= w.g.NumNodes() || !removeAt(v) {
			// Roll back so a failed removal leaves the walk unchanged.
			for _, u := range positions[:i] {
				if w.counts {
					w.cnt[u]++
				} else {
					w.pos = append(w.pos, u)
				}
				w.k++
			}
			return fmt.Errorf("randwalk: no walker to remove at node %d", v)
		}
		w.k--
	}
	return nil
}

// ResetCoverage starts a fresh coverage epoch at the current round: visit
// and cover bookkeeping restart as if the current walker positions were an
// initial placement, while positions and the round clock are untouched
// (mirroring core.System.ResetCoverage).
func (w *Walk) ResetCoverage() {
	w.covered = 0
	for v := range w.visited {
		w.visited[v] = false
		w.visits[v] = 0
	}
	mark := func(v int, c int64) {
		if !w.visited[v] {
			w.visited[v] = true
			w.covered++
		}
		w.visits[v] += c
	}
	if w.counts {
		for v, c := range w.cnt {
			if c > 0 {
				mark(v, c)
			}
		}
	} else {
		for _, v := range w.pos {
			mark(v, 1)
		}
	}
}

// CoverTimes runs independent trials of the cover time of k synchronous
// random walks from the given positions, using deterministic per-trial
// seeds derived from seed. Trials run in parallel across workers (bounded
// by GOMAXPROCS), each worker reusing one Walk across its trials via
// Reseed and Reset. It fails if any trial exhausts maxRounds.
func CoverTimes(g *graph.Graph, positions []int, trials int, seed uint64, maxRounds int64, opts ...Option) ([]int64, error) {
	if trials <= 0 {
		return nil, errors.New("randwalk: trials must be positive")
	}
	times := make([]int64, trials)
	errs := make([]error, trials)

	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var w *Walk
			for t := range next {
				trialSeed := seed + uint64(t)*0x9e3779b97f4a7c15
				if w == nil {
					var err error
					w, err = New(g, positions, xrand.New(trialSeed), opts...)
					if err != nil {
						errs[t] = err
						continue
					}
				} else {
					w.Reseed(trialSeed)
					w.Reset()
				}
				times[t], errs[t] = w.RunUntilCovered(maxRounds)
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()

	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", t, err)
		}
	}
	return times, nil
}

// GapStats summarizes the recurrence of visits in a long window.
type GapStats struct {
	// Window is the number of observed rounds.
	Window int64
	// MaxGap is the longest observed interval during which some node was
	// unvisited (nodes never visited in the window count as Window).
	MaxGap int64
	// MeanGap is the average over nodes of window/visits — the empirical
	// mean return time, which on the ring is n/k in expectation.
	MeanGap float64
}

// MeasureGaps runs the walk for burnIn rounds, then observes window rounds
// and reports recurrence statistics.
func (w *Walk) MeasureGaps(burnIn, window int64) GapStats {
	w.Run(burnIn)
	n := w.g.NumNodes()
	lastSeen := make([]int64, n) // 0 = window start
	maxGap := make([]int64, n)
	count := make([]int64, n)
	for t := int64(1); t <= window; t++ {
		w.Step()
		w.forEachArrival(func(v int, c int64) {
			if g := t - lastSeen[v]; g > maxGap[v] {
				maxGap[v] = g
			}
			lastSeen[v] = t
			count[v] += c
		})
	}
	var stats GapStats
	stats.Window = window
	var meanSum float64
	for v := 0; v < n; v++ {
		if g := window - lastSeen[v]; g > maxGap[v] {
			maxGap[v] = g
		}
		if maxGap[v] > stats.MaxGap {
			stats.MaxGap = maxGap[v]
		}
		if count[v] > 0 {
			meanSum += float64(window) / float64(count[v])
		} else {
			meanSum += float64(window)
		}
	}
	stats.MeanGap = meanSum / float64(n)
	return stats
}

// HittingTime runs until some walker first reaches target, returning the
// number of rounds taken (0 if a walker starts there). It returns an error
// if maxRounds elapse first.
func (w *Walk) HittingTime(target int, maxRounds int64) (int64, error) {
	if w.At(target) > 0 {
		return 0, nil
	}
	start := w.round
	for {
		if w.round-start >= maxRounds {
			return 0, fmt.Errorf("randwalk: target %d not hit within %d rounds", target, maxRounds)
		}
		w.Step()
		if w.At(target) > 0 {
			return w.round - start, nil
		}
	}
}

package randwalk

import (
	"errors"
	"math"
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/stats"
	"rotorring/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	g := graph.Ring(8)
	if _, err := New(g, nil, xrand.New(1)); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := New(g, []int{9}, xrand.New(1)); err == nil {
		t.Error("out-of-range placement accepted")
	}
}

func TestWalkerConservationAndAdjacency(t *testing.T) {
	g := graph.Grid2D(5, 5)
	w, err := New(g, []int{0, 12, 24}, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	prev := w.Positions()
	for round := 0; round < 500; round++ {
		w.Step()
		cur := w.Positions()
		if len(cur) != 3 {
			t.Fatalf("walker count changed: %v", cur)
		}
		for i := range cur {
			// Every move must follow an edge.
			if _, ok := g.PortToward(prev[i], cur[i]); !ok {
				t.Fatalf("round %d: walker %d jumped %d -> %d", round+1, i, prev[i], cur[i])
			}
		}
		prev = cur
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	g := graph.Ring(32)
	a, _ := New(g, []int{0, 16}, xrand.New(42))
	b, _ := New(g, []int{0, 16}, xrand.New(42))
	for i := 0; i < 1000; i++ {
		a.Step()
		b.Step()
	}
	pa, pb := a.Positions(), b.Positions()
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same-seed walks diverged: %v vs %v", pa, pb)
		}
	}
}

func TestRunUntilCoveredBudget(t *testing.T) {
	g := graph.Ring(1000)
	w, _ := New(g, []int{0}, xrand.New(1))
	if _, err := w.RunUntilCovered(10); !errors.Is(err, ErrNotCovered) {
		t.Fatalf("want ErrNotCovered, got %v", err)
	}
}

func TestSingleWalkCoverTimeOnRing(t *testing.T) {
	// The expected cover time of a single random walk on C_n is exactly
	// n(n-1)/2. With n=64 and 200 trials the sample mean should land
	// within ~10% of 2016.
	const n = 64
	g := graph.Ring(n)
	times, err := CoverTimes(g, []int{0}, 200, 12345, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.MeanInt64(times)
	want := float64(n*(n-1)) / 2
	if math.Abs(mean-want)/want > 0.12 {
		t.Fatalf("mean cover time %.0f, theory %.0f", mean, want)
	}
}

func TestCompleteGraphCoverIsCouponCollector(t *testing.T) {
	// On K_n a single walk covers in about (n-1)·H_{n-1} rounds (coupon
	// collector over the other n-1 nodes).
	const n = 32
	g := graph.Complete(n)
	times, err := CoverTimes(g, []int{0}, 300, 99, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	mean := stats.MeanInt64(times)
	want := float64(n-1) * stats.Harmonic(n-1)
	if math.Abs(mean-want)/want > 0.15 {
		t.Fatalf("mean cover time %.1f, coupon collector %.1f", mean, want)
	}
}

func TestMoreWalkersCoverFaster(t *testing.T) {
	const n = 256
	g := graph.Ring(n)
	mean := func(k int) float64 {
		times, err := CoverTimes(g, core.EquallySpaced(n, k), 24, 7, 1<<26)
		if err != nil {
			t.Fatal(err)
		}
		return stats.MeanInt64(times)
	}
	m1, m4, m16 := mean(1), mean(4), mean(16)
	if !(m1 > m4 && m4 > m16) {
		t.Fatalf("cover times not decreasing in k: %v, %v, %v", m1, m4, m16)
	}
	// Theorem 5: best-case speedup is Θ(k²/log²k); even a crude check
	// should see far better than 2x from k=1 to k=4.
	if m1/m4 < 3 {
		t.Errorf("k=4 speedup only %.2f", m1/m4)
	}
}

func TestCoverTimesRejectsBadTrials(t *testing.T) {
	g := graph.Ring(8)
	if _, err := CoverTimes(g, []int{0}, 0, 1, 100); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestCoverTimesDeterministicAcrossRuns(t *testing.T) {
	g := graph.Ring(64)
	a, err := CoverTimes(g, []int{0, 32}, 16, 5, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoverTimes(g, []int{0, 32}, 16, 5, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d differs across runs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestMeasureGapsMeanIsNOverK(t *testing.T) {
	// Each of the k walks has uniform stationary distribution on the ring,
	// so the expected time between successive visits to a node is n/k
	// (§4, final remarks).
	const (
		n = 64
		k = 4
	)
	g := graph.Ring(n)
	w, _ := New(g, core.EquallySpaced(n, k), xrand.New(11))
	gs := w.MeasureGaps(10*n, 200_000)
	want := float64(n) / float64(k)
	if math.Abs(gs.MeanGap-want)/want > 0.10 {
		t.Fatalf("mean gap %.2f, want about %.2f", gs.MeanGap, want)
	}
	// The max gap has high variance but must exceed the mean.
	if gs.MaxGap < int64(gs.MeanGap) {
		t.Fatalf("max gap %d below mean gap %.2f", gs.MaxGap, gs.MeanGap)
	}
}

func TestHittingTime(t *testing.T) {
	g := graph.Ring(32)
	w, _ := New(g, []int{5}, xrand.New(9))
	if ht, err := w.HittingTime(5, 10); err != nil || ht != 0 {
		t.Fatalf("hitting own start: %d, %v", ht, err)
	}
	ht, err := w.HittingTime(20, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if ht <= 0 {
		t.Fatalf("hitting time %d", ht)
	}
	w2, _ := New(g, []int{0}, xrand.New(1))
	if _, err := w2.HittingTime(16, 3); err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestVisitsCountArrivals(t *testing.T) {
	g := graph.Ring(16)
	w, _ := New(g, []int{3, 3}, xrand.New(2))
	if w.Visits(3) != 2 {
		t.Fatalf("initial visits = %d", w.Visits(3))
	}
	w.Run(100)
	var total int64
	for v := 0; v < 16; v++ {
		total += w.Visits(v)
	}
	// 2 initial placements + 2 walkers × 100 rounds.
	if total != 2+200 {
		t.Fatalf("total visits = %d", total)
	}
}

func TestDegreeOneNodesFollowOnlyEdge(t *testing.T) {
	g := graph.Star(6)
	w, _ := New(g, []int{1}, xrand.New(4))
	w.Step()
	if w.Positions()[0] != 0 {
		t.Fatal("leaf walker did not move to hub")
	}
}

// --- Tier-3 counts-based engine tests ---

func TestModeAutoSelection(t *testing.T) {
	g := graph.Ring(32)
	cases := []struct {
		k    int
		opts []Option
		want string
	}{
		{2, nil, "agents"},
		{32 * CountsFactor, nil, "counts"},
		{2, []Option{WithMode(ModeCounts)}, "counts"},
		{32 * CountsFactor, []Option{WithMode(ModeAgents)}, "agents"},
	}
	for _, tc := range cases {
		w, err := New(g, core.EquallySpaced(32, tc.k), xrand.New(1), tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if got := w.Mode(); got != tc.want {
			t.Errorf("k=%d opts=%d: mode %q, want %q", tc.k, len(tc.opts), got, tc.want)
		}
	}
}

// TestCountsConservation checks that counts-based stepping conserves
// walkers, keeps visit counters consistent, and only moves along edges, on
// both the ring fast path and the general multinomial path.
func TestCountsConservation(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Ring(24), graph.Torus2D(5, 5), graph.Star(9)} {
		const k = 120
		w, err := New(g, core.EquallySpaced(g.NumNodes(), k), xrand.New(3), WithMode(ModeCounts))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 200; round++ {
			before := append([]int64(nil), w.cnt...)
			w.Step()
			var total int64
			for v, c := range w.cnt {
				if c < 0 {
					t.Fatalf("%s: negative count at %d", g.Name(), v)
				}
				total += c
				// Arrivals at v must be explainable by neighbor occupancy.
				if c > 0 {
					var avail int64
					for p := 0; p < g.Degree(v); p++ {
						avail += before[g.Neighbor(v, p)]
					}
					if c > avail {
						t.Fatalf("%s: %d arrivals at %d but only %d walkers adjacent", g.Name(), c, v, avail)
					}
				}
			}
			if total != k {
				t.Fatalf("%s: walker total %d after round %d", g.Name(), total, round+1)
			}
		}
		var visitTotal int64
		for v := 0; v < g.NumNodes(); v++ {
			visitTotal += w.Visits(v)
		}
		if visitTotal != k+k*200 {
			t.Fatalf("%s: visit total %d, want %d", g.Name(), visitTotal, k+k*200)
		}
	}
}

// TestCountsVsAgentsCoverDistribution is the tier-3 statistical validation:
// the two engines simulate the same process, so their cover-time
// distributions on a small ring must agree. RNG consumption necessarily
// differs, so the comparison is distributional: a two-sample z-test on the
// mean over many trials, plus a quantile sanity check.
func TestCountsVsAgentsCoverDistribution(t *testing.T) {
	const (
		n      = 24
		k      = 96 // k = 4n: auto would pick counts; force both engines
		trials = 400
	)
	g := graph.Ring(n)
	positions := core.AllOnNode(0, k)

	sample := func(mode Mode, seed uint64) []int64 {
		times, err := CoverTimes(g, positions, trials, seed, 1<<24, WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		return times
	}
	agents := sample(ModeAgents, 1001)
	counts := sample(ModeCounts, 2002)

	meanVar := func(xs []int64) (float64, float64) {
		var sum, sumsq float64
		for _, x := range xs {
			sum += float64(x)
			sumsq += float64(x) * float64(x)
		}
		m := sum / float64(len(xs))
		return m, sumsq/float64(len(xs)) - m*m
	}
	ma, va := meanVar(agents)
	mc, vc := meanVar(counts)

	// Two-sample z-test on the means at ~4σ.
	se := math.Sqrt(va/trials + vc/trials)
	if z := math.Abs(ma-mc) / se; z > 4 {
		t.Errorf("cover-time means diverge: agents %.1f vs counts %.1f (z=%.1f)", ma, mc, z)
	}
	// The spreads should be comparable too (variance ratio within 2x).
	if r := va / vc; r < 0.5 || r > 2 {
		t.Errorf("cover-time variances diverge: agents %.1f vs counts %.1f", va, vc)
	}
}

// TestCountsVsAgentsGapStats cross-validates the recurrence measurements:
// the mean inter-visit gap must be ~n/k under both engines.
func TestCountsVsAgentsGapStats(t *testing.T) {
	const n, k = 32, 128
	g := graph.Ring(n)
	want := float64(n) / float64(k)
	for _, mode := range []Mode{ModeAgents, ModeCounts} {
		w, err := New(g, core.EquallySpaced(n, k), xrand.New(17), WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		gs := w.MeasureGaps(10*n, 100_000)
		if math.Abs(gs.MeanGap-want)/want > 0.10 {
			t.Errorf("%v: mean gap %.3f, want about %.3f", mode, gs.MeanGap, want)
		}
	}
}

// TestWalkResetClone pins the Reset/Clone/Reseed contracts on both engines.
func TestWalkResetClone(t *testing.T) {
	g := graph.Ring(20)
	for _, mode := range []Mode{ModeAgents, ModeCounts} {
		w, err := New(g, []int{0, 0, 5, 13}, xrand.New(77), WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		first, err := w.RunUntilCovered(1 << 20)
		if err != nil {
			t.Fatal(err)
		}

		// Reseed + Reset must reproduce the identical trajectory.
		w.Reseed(77)
		w.Reset()
		if w.Round() != 0 || w.Covered() != 3 || w.Visits(0) != 2 {
			t.Fatalf("%v: Reset state round=%d covered=%d visits0=%d", mode, w.Round(), w.Covered(), w.Visits(0))
		}
		again, err := w.RunUntilCovered(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if first != again {
			t.Fatalf("%v: cover %d then %d after Reseed+Reset", mode, first, again)
		}

		// Clone must evolve identically to the original.
		c := w.Clone()
		for i := 0; i < 50; i++ {
			w.Step()
			c.Step()
		}
		pw, pc := w.Positions(), c.Positions()
		for i := range pw {
			if pw[i] != pc[i] {
				t.Fatalf("%v: clone diverged: %v vs %v", mode, pw, pc)
			}
		}
		if w.Round() != c.Round() || w.Covered() != c.Covered() {
			t.Fatalf("%v: clone counters diverged", mode)
		}
	}
}

// TestCountsHittingAndAt covers the At accessor and hitting times under
// counts-based stepping.
func TestCountsHittingAndAt(t *testing.T) {
	g := graph.Ring(16)
	w, err := New(g, []int{3, 3, 8}, xrand.New(5), WithMode(ModeCounts))
	if err != nil {
		t.Fatal(err)
	}
	if w.At(3) != 2 || w.At(8) != 1 || w.At(0) != 0 {
		t.Fatalf("At counts wrong: %d %d %d", w.At(3), w.At(8), w.At(0))
	}
	if ht, err := w.HittingTime(8, 10); err != nil || ht != 0 {
		t.Fatalf("hitting own start: %d, %v", ht, err)
	}
	ht, err := w.HittingTime(12, 1<<20)
	if err != nil || ht <= 0 {
		t.Fatalf("hitting time %d, %v", ht, err)
	}
}

// TestStepHeldZeroHoldsMatchesStep pins the held round's degenerate case:
// with no walker held, StepHeld makes exactly the draws Step makes, so a
// clone stepping held-with-zeros stays bit-identical to the original.
func TestStepHeldZeroHoldsMatchesStep(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Ring(24), graph.Torus2D(5, 5), graph.Star(9)} {
		w, err := New(g, core.EquallySpaced(g.NumNodes(), 60), xrand.New(9), WithMode(ModeCounts))
		if err != nil {
			t.Fatal(err)
		}
		c := w.Clone()
		held := make([]int64, g.NumNodes())
		for round := 0; round < 80; round++ {
			w.Step()
			c.StepHeld(held)
			for v := 0; v < g.NumNodes(); v++ {
				if w.At(v) != c.At(v) || w.Visits(v) != c.Visits(v) {
					t.Fatalf("%s round %d: node %d: Step (%d,%d) vs StepHeld (%d,%d)",
						g.Name(), round, v, w.At(v), w.Visits(v), c.At(v), c.Visits(v))
				}
			}
			if w.Round() != c.Round() || w.Covered() != c.Covered() {
				t.Fatalf("%s round %d: counters diverged", g.Name(), round)
			}
		}
	}
}

// TestStepHeldConservationAndVisits checks the held-round invariants on ring
// and general topologies: walkers are conserved, held walkers stay put, and
// visits count arrivals only (so the visit total grows by exactly the mover
// count each round).
func TestStepHeldConservationAndVisits(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Ring(24), graph.Torus2D(5, 5), graph.Star(9)} {
		const k = 120
		n := g.NumNodes()
		w, err := New(g, core.EquallySpaced(n, k), xrand.New(3), WithMode(ModeCounts))
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(17)
		held := make([]int64, n)
		wantVisits := int64(k) // initial placements
		for round := 0; round < 120; round++ {
			var heldSum int64
			for v := range held {
				held[v] = 0
			}
			w.ForEachOccupied(func(v int, c int64) {
				h := int64(rng.Intn(int(c) + 1))
				held[v] = h
				heldSum += h
			})
			before := append([]int64(nil), w.cnt...)
			w.StepHeld(held)
			wantVisits += k - heldSum
			var total int64
			for v, c := range w.cnt {
				if c < 0 {
					t.Fatalf("%s: negative count at %d", g.Name(), v)
				}
				total += c
				if c < held[v] && before[v] >= held[v] {
					t.Fatalf("%s: node %d dropped below its held count (%d < %d)", g.Name(), v, c, held[v])
				}
			}
			if total != k {
				t.Fatalf("%s: walker total %d after round %d", g.Name(), total, round+1)
			}
			var visitTotal int64
			for v := 0; v < n; v++ {
				visitTotal += w.Visits(v)
			}
			if visitTotal != wantVisits {
				t.Fatalf("%s: visit total %d after round %d, want %d", g.Name(), visitTotal, round+1, wantVisits)
			}
		}
	}

	// All held: the configuration freezes, only the round clock moves.
	w, err := New(graph.Ring(12), core.EquallySpaced(12, 24), xrand.New(1), WithMode(ModeCounts))
	if err != nil {
		t.Fatal(err)
	}
	before := append([]int64(nil), w.cnt...)
	all := make([]int64, 12)
	for v := range all {
		all[v] = 99 // clamped to the population
	}
	w.StepHeld(all)
	for v, c := range w.cnt {
		if c != before[v] {
			t.Fatalf("all-held round moved walkers at %d: %d -> %d", v, before[v], c)
		}
	}
	if w.Round() != 1 {
		t.Fatalf("round %d after one all-held round", w.Round())
	}
}

// TestStepHeldAgentsModePanics pins the capability boundary: holds need
// per-node counts, so the per-agent engine refuses loudly rather than
// misapplying them.
func TestStepHeldAgentsModePanics(t *testing.T) {
	w, err := New(graph.Ring(8), []int{0, 4}, xrand.New(1), WithMode(ModeAgents))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("StepHeld under the per-agent engine did not panic")
		}
	}()
	w.StepHeld(make([]int64, 8))
}

// TestWalkForEachOccupiedAscending pins the enumeration order contract on
// both engines (ascending nodes, aggregated counts), matching
// core.System.ForEachOccupied.
func TestWalkForEachOccupiedAscending(t *testing.T) {
	positions := []int{13, 2, 7, 2, 13, 13, 0}
	for _, mode := range []Mode{ModeAgents, ModeCounts} {
		w, err := New(graph.Ring(16), positions, xrand.New(4), WithMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 8; round++ {
			prev := -1
			var total int64
			w.ForEachOccupied(func(v int, c int64) {
				if v <= prev {
					t.Fatalf("%v round %d: node %d enumerated after %d", mode, round, v, prev)
				}
				if c < 1 || c != w.At(v) {
					t.Fatalf("%v round %d: node %d count %d, At %d", mode, round, v, c, w.At(v))
				}
				prev = v
				total += c
			})
			if total != int64(len(positions)) {
				t.Fatalf("%v round %d: enumerated %d walkers, want %d", mode, round, total, len(positions))
			}
			w.Step()
		}
	}
}

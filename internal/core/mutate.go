package core

import (
	"errors"
	"fmt"
	"sort"

	"rotorring/internal/graph"
	"rotorring/internal/kernel"
)

// This file is the mutation surface perturbation scenarios drive (the
// engine's schedule subsystem): topology swaps after edge failure/repair,
// agent churn, pointer resets, and coverage-epoch resets. Every mutation
// happens between rounds, keeps the configuration consistent (occupied
// list, visit counters, incremental hash), and re-evaluates the
// specialized-kernel choice, so stepping stays bit-identical to the generic
// engine before and after the event.

// Pointers returns a copy of the current port pointers.
func (s *System) Pointers() []int {
	out := make([]int, s.n)
	for v := range out {
		out[v] = int(s.st.Ptr[v])
	}
	return out
}

// ForEachOccupied calls f(v, c) for every node v currently holding c >= 1
// agents, in ascending node order, without allocating. f must not mutate
// the system.
//
// The iteration order is pinned: the schedule subsystem's per-round hold
// draws key their deterministic stream by (round, node), and its tests
// assume enumeration order never depends on engine internals — a future
// map-backed occupied set must sort before iterating.
func (s *System) ForEachOccupied(f func(v int, agents int64)) {
	if !s.occValid {
		// Rebuild and enumerate in one ascending pass — held-round kernels
		// invalidate the list every round, so the fused pass matters on the
		// schedule hot path.
		s.occupied = s.occupied[:0]
		for v := 0; v < s.n; v++ {
			c := s.st.Agents[v]
			occ := c > 0
			s.inOcc[v] = occ
			if occ {
				s.occupied = append(s.occupied, v)
				f(v, c)
			}
		}
		s.occValid = true
		s.occSorted = true
		return
	}
	if !s.occSorted {
		sort.Ints(s.occupied)
		s.occSorted = true
	}
	for _, v := range s.occupied {
		f(v, s.st.Agents[v])
	}
}

// resizeArcBuffers re-allocates the arc-indexed recording buffers after a
// topology change. Recorded flows and traversal counts are indexed by arc
// id, which a different graph numbers differently, so they restart at zero.
func (s *System) resizeArcBuffers() {
	if s.recordFlows {
		s.flows = make([]int64, s.g.NumArcs())
		s.flowsTouched = s.flowsTouched[:0]
	}
	if s.recordArcs {
		s.arcCount = make([]int64, s.g.NumArcs())
	}
}

// Rewire swaps the topology under the running system — the edge-failure /
// repair primitive. ng must have the same node set; pointers is the full
// new pointer vector (the caller transplants the old pointers through the
// port mapping, e.g. graph.MaskEdges' toOld). Agents, visit counters and
// the round clock carry over; arc-indexed recording buffers restart at
// zero. The specialized kernel is re-selected for the new shape: a cut
// ring falls back to the generic engine, a repaired one re-specializes.
// Reset returns to the construction-time topology.
func (s *System) Rewire(ng *graph.Graph, pointers []int) error {
	if ng.NumNodes() != s.n {
		return fmt.Errorf("core: Rewire changes the node count (%d -> %d)", s.n, ng.NumNodes())
	}
	if len(pointers) != s.n {
		return fmt.Errorf("core: %d pointers for %d nodes", len(pointers), s.n)
	}
	for v, p := range pointers {
		if p < 0 || p >= ng.Degree(v) {
			return fmt.Errorf("core: pointer %d invalid at node %d (degree %d)", p, v, ng.Degree(v))
		}
	}
	s.g = ng
	for v, p := range pointers {
		s.st.Ptr[v] = int32(p)
	}
	s.resizeArcBuffers()
	s.reselectKernel()
	if s.st.HashOn {
		s.st.Hash = s.fullHash()
	}
	return nil
}

// AddAgents places one new agent on each listed node mid-run (the churn
// "join" primitive). Arrivals count as visits, exactly like initial
// placement, so joining agents can cover fresh nodes. The initial
// configuration (Reset target) is unchanged.
func (s *System) AddAgents(positions ...int) error {
	for _, v := range positions {
		if v < 0 || v >= s.n {
			return fmt.Errorf("core: agent position %d out of range [0,%d)", v, s.n)
		}
	}
	s.ensureOccupied()
	for _, v := range positions {
		c := s.st.Agents[v]
		if s.st.HashOn {
			s.st.Hash += kernel.HashCnt(v, c+1) - kernel.HashCnt(v, c)
		}
		s.st.Agents[v] = c + 1
		s.k++
		if c == 0 && !s.inOcc[v] {
			s.inOcc[v] = true
			s.occupied = append(s.occupied, v)
			s.occSorted = false // appended out of order
		}
		if s.st.Visits[v] == 0 {
			s.st.CoveredAt[v] = s.st.Round
			s.st.Covered++
			if s.st.Covered == s.n {
				s.st.CoverRound = s.st.Round
			}
		}
		s.st.Visits[v]++
	}
	s.reselectKernel()
	return nil
}

// RemoveAgents removes one agent from each listed node mid-run (the churn
// "leave" primitive). Every listed node must currently hold an agent, and
// at least one agent must remain in the system afterwards.
func (s *System) RemoveAgents(positions ...int) error {
	if int64(len(positions)) >= s.k {
		return errors.New("core: RemoveAgents would leave no agents")
	}
	remove := func(v int) {
		c := s.st.Agents[v]
		if s.st.HashOn {
			s.st.Hash += kernel.HashCnt(v, c-1) - kernel.HashCnt(v, c)
		}
		s.st.Agents[v] = c - 1
		s.k--
	}
	for i, v := range positions {
		if v < 0 || v >= s.n || s.st.Agents[v] == 0 {
			// Roll back the removals already applied (repeated positions are
			// legal while agents last), leaving the system unchanged.
			for _, u := range positions[:i] {
				c := s.st.Agents[u]
				if s.st.HashOn {
					s.st.Hash += kernel.HashCnt(u, c+1) - kernel.HashCnt(u, c)
				}
				s.st.Agents[u] = c + 1
				s.k++
			}
			return fmt.Errorf("core: no agent to remove at node %d", v)
		}
		remove(v)
	}
	// Emptied nodes are dropped lazily: the occupied list may briefly hold
	// nodes with zero agents, which every consumer already tolerates by
	// re-checking the count.
	s.occValid = false
	s.reselectKernel()
	return nil
}

// SetPointers overwrites every port pointer mid-run (the rotor-reset
// perturbation). The initial configuration (Reset target) is unchanged.
func (s *System) SetPointers(pointers []int) error {
	if len(pointers) != s.n {
		return fmt.Errorf("core: %d pointers for %d nodes", len(pointers), s.n)
	}
	for v, p := range pointers {
		if p < 0 || p >= s.g.Degree(v) {
			return fmt.Errorf("core: pointer %d invalid at node %d (degree %d)", p, v, s.g.Degree(v))
		}
	}
	for v, p := range pointers {
		s.st.Ptr[v] = int32(p)
	}
	if s.st.HashOn {
		s.st.Hash = s.fullHash()
	}
	return nil
}

// ResetCoverage starts a fresh coverage epoch at the current round: visit
// counters and cover bookkeeping restart as if the current agent positions
// were an initial placement, while positions, pointers and the round clock
// are untouched. Re-coverage measurements after a perturbation
// (cover-after-fault) are built on it.
func (s *System) ResetCoverage() {
	s.st.Covered = 0
	s.st.CoverRound = -1
	for v := 0; v < s.n; v++ {
		s.st.Visits[v] = 0
		s.st.CoveredAt[v] = -1
	}
	s.ensureOccupied()
	for _, v := range s.occupied {
		if s.st.Agents[v] == 0 {
			continue
		}
		s.st.Visits[v] = s.st.Agents[v]
		s.st.CoveredAt[v] = s.st.Round
		s.st.Covered++
	}
	if s.st.Covered == s.n {
		s.st.CoverRound = s.st.Round
	}
}

package core

import (
	"testing"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// cutRing masks one ring edge {a,b} and returns the new graph plus the
// pointer transplant (next surviving port in cyclic order).
func cutRing(t *testing.T, s *System, g *graph.Graph, a, b int) (*graph.Graph, []int) {
	t.Helper()
	p, ok := g.PortToward(a, b)
	if !ok {
		t.Fatalf("no edge {%d,%d}", a, b)
	}
	deleted := make([]bool, g.NumArcs())
	deleted[g.ArcID(a, p)] = true
	ng, toOld, err := graph.MaskEdges(g, deleted)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	ptrs := make([]int, n)
	for v := 0; v < n; v++ {
		q := s.Pointer(v)
		d0 := g.Degree(v)
		newOf := make([]int, d0)
		for i := range newOf {
			newOf[i] = -1
		}
		for np, op := range toOld[v] {
			newOf[op] = np
		}
		for i := 0; i < d0; i++ {
			if np := newOf[(q+i)%d0]; np >= 0 {
				ptrs[v] = np
				break
			}
		}
	}
	return ng, ptrs
}

// TestRewireKernelAndHash: a rewire away from the ring falls back to the
// generic engine, the repair re-specializes, and the incremental
// configuration hash stays consistent with a full rehash through the whole
// fault epoch.
func TestRewireKernelAndHash(t *testing.T) {
	n := 64
	g := graph.Ring(n)
	rng := xrand.New(3)
	s, err := NewSystem(g,
		WithAgentsAt(RandomPositions(n, n, rng)...), // dense: kernel selected
		WithPointers(PointersRandom(g, rng)),
		WithConfigHash())
	if err != nil {
		t.Fatal(err)
	}
	if s.KernelName() != "ring" {
		t.Fatalf("dense ring system runs on %q, want the ring kernel", s.KernelName())
	}
	s.Run(10)

	ng, ptrs := cutRing(t, s, g, 10, 11)
	if err := s.Rewire(ng, ptrs); err != nil {
		t.Fatal(err)
	}
	if s.KernelName() != "generic" {
		t.Fatalf("cut ring still reports kernel %q, want generic fallback", s.KernelName())
	}
	if s.ConfigHash() != s.fullHash() {
		t.Fatal("incremental hash out of sync after Rewire")
	}
	s.Run(25)
	if s.ConfigHash() != s.fullHash() {
		t.Fatal("incremental hash out of sync stepping the rewired graph")
	}

	// Repair: back to the pristine ring, re-specialized.
	if err := s.Rewire(g, s.Pointers()); err != nil {
		t.Fatal(err)
	}
	if s.KernelName() != "ring" {
		t.Fatalf("repaired ring reports kernel %q, want re-specialized ring", s.KernelName())
	}
	s.Run(25)
	if s.ConfigHash() != s.fullHash() {
		t.Fatal("incremental hash out of sync after repair")
	}
}

// TestChurnAndPointerMutations: joins count as visits, leaves preserve the
// floor of one agent, pointer overwrites keep the hash consistent, and
// Reset restores the construction-time population, pointers and graph.
func TestChurnAndPointerMutations(t *testing.T) {
	n := 32
	g := graph.Ring(n)
	s, err := NewSystem(g, WithAgentsAt(0, 5), WithConfigHash())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(4)

	if err := s.AddAgents(7, 7, 20); err != nil {
		t.Fatal(err)
	}
	if s.NumAgents() != 5 {
		t.Fatalf("k = %d after join, want 5", s.NumAgents())
	}
	if s.Visits(20) == 0 || s.CoveredAt(20) != s.Round() {
		t.Fatal("joined agent did not count as a visit")
	}
	if s.ConfigHash() != s.fullHash() {
		t.Fatal("hash out of sync after AddAgents")
	}

	if err := s.RemoveAgents(7, 7); err != nil {
		t.Fatal(err)
	}
	if s.NumAgents() != 3 {
		t.Fatalf("k = %d after leave, want 3", s.NumAgents())
	}
	if err := s.RemoveAgents(20, 20); err == nil {
		t.Fatal("removing a missing agent succeeded")
	}
	if s.NumAgents() != 3 {
		t.Fatal("failed removal mutated the population")
	}
	if s.ConfigHash() != s.fullHash() {
		t.Fatal("hash out of sync after RemoveAgents (including rollback)")
	}

	zeros := make([]int, n)
	if err := s.SetPointers(zeros); err != nil {
		t.Fatal(err)
	}
	if s.Pointer(13) != 0 {
		t.Fatal("SetPointers did not apply")
	}
	if s.ConfigHash() != s.fullHash() {
		t.Fatal("hash out of sync after SetPointers")
	}
	s.Run(8)

	s.Reset()
	if s.NumAgents() != 2 || s.AgentsAt(0) != 1 || s.AgentsAt(5) != 1 {
		t.Fatal("Reset did not restore the initial population")
	}
	if s.Round() != 0 || s.Covered() != 2 {
		t.Fatal("Reset did not restore the initial counters")
	}
}

// TestResetCoverageEpoch: ResetCoverage restarts visit bookkeeping from
// the current positions without touching positions, pointers or the clock.
func TestResetCoverageEpoch(t *testing.T) {
	n := 24
	g := graph.Ring(n)
	s, err := NewSystem(g, WithAgentsAt(EquallySpaced(n, 4)...))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunUntilCovered(1 << 20); err != nil {
		t.Fatal(err)
	}
	round := s.Round()
	positions := s.Positions()

	s.ResetCoverage()
	if s.Round() != round {
		t.Fatal("ResetCoverage touched the round clock")
	}
	if got := s.Positions(); len(got) != len(positions) {
		t.Fatal("ResetCoverage touched the agents")
	}
	if s.Covered() >= n {
		t.Fatalf("coverage epoch not restarted (covered %d)", s.Covered())
	}
	occ := 0
	for v := 0; v < n; v++ {
		if s.AgentsAt(v) > 0 {
			occ++
			if s.Visits(v) != s.AgentsAt(v) || s.CoveredAt(v) != round {
				t.Fatalf("occupied node %d not re-seeded as visited", v)
			}
		} else if s.Visits(v) != 0 || s.CoveredAt(v) != -1 {
			t.Fatalf("empty node %d still marked visited", v)
		}
	}
	if s.Covered() != occ {
		t.Fatalf("Covered() = %d, want %d occupied nodes", s.Covered(), occ)
	}

	cover, err := s.RunUntilCovered(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if cover <= round {
		t.Fatalf("re-cover round %d not after the epoch start %d", cover, round)
	}
}

package core

import (
	"testing"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// Ablation benchmarks for the two engine design choices called out in
// DESIGN.md §5: (1) batched per-node fan-out versus naive per-agent moves,
// and (2) incremental configuration hashing versus full rehash.

// BenchmarkAblationBatchedStep: the production engine, many agents stacked
// on few nodes (the regime the batching targets). Each iteration replays a
// fixed 32-round window from the stacked start so the regime cannot drift
// as the benchmark runs longer.
func BenchmarkAblationBatchedStep(b *testing.B) {
	g := graph.Ring(1024)
	sys, err := NewSystem(g, WithAgentsAt(AllOnNode(0, 1024)...))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Reset()
		for j := 0; j < 32; j++ {
			sys.Step()
		}
	}
}

// BenchmarkAblationNaiveStep: the reference implementation from the tests,
// same fixed 32-round window.
func BenchmarkAblationNaiveStep(b *testing.B) {
	g := graph.Ring(1024)
	ptr := make([]int, 1024)
	starts := AllOnNode(0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref := newRefSystem(g, ptr, starts)
		for j := 0; j < 32; j++ {
			ref.step()
		}
	}
}

// BenchmarkAblationIncrementalHash: hash maintenance cost is already in
// Step; this measures reading it.
func BenchmarkAblationIncrementalHash(b *testing.B) {
	g := graph.Ring(4096)
	sys, err := NewSystem(g, WithAgentsAt(EquallySpaced(4096, 32)...))
	if err != nil {
		b.Fatal(err)
	}
	var h uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
		h = sys.ConfigHash()
	}
	_ = h
}

// BenchmarkAblationFullRehash: the alternative — recompute the hash from
// scratch every round, as a cycle detector without incremental hashing
// would have to.
func BenchmarkAblationFullRehash(b *testing.B) {
	g := graph.Ring(4096)
	sys, err := NewSystem(g, WithAgentsAt(EquallySpaced(4096, 32)...))
	if err != nil {
		b.Fatal(err)
	}
	var h uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
		h = sys.fullHash()
	}
	_ = h
}

// BenchmarkStepSparseAgents: engine throughput with few, spread-out agents.
func BenchmarkStepSparseAgents(b *testing.B) {
	g := graph.Ring(1 << 16)
	sys, err := NewSystem(g, WithAgentsAt(EquallySpaced(1<<16, 8)...))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkFindLimitCycle: end-to-end cost of cycle detection.
func BenchmarkFindLimitCycle(b *testing.B) {
	g := graph.Ring(256)
	rng := xrand.New(1)
	for i := 0; i < b.N; i++ {
		sys, err := NewSystem(g,
			WithAgentsAt(RandomPositions(256, 4, rng)...),
			WithPointers(PointersRandom(g, rng)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := FindLimitCycle(sys, 1<<24, false); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"testing"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// TestRingPortOrderIrrelevance verifies the remark at the end of §1.3: on
// the ring there is only one cyclic permutation of the two neighbors of
// each node, so only the pointer arrangement (not the port labeling)
// matters. Relabeling ports and mapping the pointers accordingly must yield
// exactly the same visit dynamics.
func TestRingPortOrderIrrelevance(t *testing.T) {
	const n = 30
	rng := xrand.New(61)
	g := graph.Ring(n)
	shuffled := g.ShufflePorts(rng)

	starts := RandomPositions(n, 4, rng)
	ptr := PointersRandom(g, rng)
	// Map each pointer to the shuffled graph's port heading to the same
	// neighbor.
	ptr2 := make([]int, n)
	for v := 0; v < n; v++ {
		target := g.Neighbor(v, ptr[v])
		p2, ok := shuffled.PortToward(v, target)
		if !ok {
			t.Fatalf("no port from %d to %d in shuffled ring", v, target)
		}
		ptr2[v] = p2
	}

	a := newTestSystem(t, g, WithAgentsAt(starts...), WithPointers(ptr))
	b := newTestSystem(t, shuffled, WithAgentsAt(starts...), WithPointers(ptr2))
	for round := 0; round < 500; round++ {
		a.Step()
		b.Step()
		for v := 0; v < n; v++ {
			if a.AgentsAt(v) != b.AgentsAt(v) {
				t.Fatalf("round %d: dynamics diverged at node %d under port relabeling", round+1, v)
			}
			if a.Visits(v) != b.Visits(v) {
				t.Fatalf("round %d: visit counts diverged at node %d", round+1, v)
			}
		}
	}
}

// TestHigherDegreePortOrderMatters contrasts the ring remark: on graphs of
// degree >= 3 the cyclic port order is part of the adversary's power —
// different orders genuinely change the trajectory.
func TestHigherDegreePortOrderMatters(t *testing.T) {
	rng := xrand.New(62)
	g := graph.Complete(6)
	shuffled := g.ShufflePorts(rng)

	a := newTestSystem(t, g, WithAgentsAt(0))
	b := newTestSystem(t, shuffled, WithAgentsAt(0))
	diverged := false
	for round := 0; round < 200 && !diverged; round++ {
		a.Step()
		b.Step()
		for v := 0; v < 6; v++ {
			if a.AgentsAt(v) != b.AgentsAt(v) {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("shuffling ports on K_6 never changed the trajectory (expected divergence)")
	}
}

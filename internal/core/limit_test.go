package core

import (
	"errors"
	"testing"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

func TestSingleAgentRingLimitCycle(t *testing.T) {
	// From all-clockwise pointers the single agent's limit cycle is one
	// clockwise lap followed by one anticlockwise lap: the Eulerian cycle
	// of the symmetric ring, period 2n, entered immediately (μ = 0).
	const n = 16
	g := graph.Ring(n)
	s := newTestSystem(t, g,
		WithAgentsAt(0),
		WithPointers(PointersUniform(g, graph.RingCW)))
	lc, err := FindLimitCycle(s, 100_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Period != 2*n {
		t.Fatalf("period = %d, want %d", lc.Period, 2*n)
	}
	if lc.StabilizationRound != 0 {
		t.Fatalf("μ = %d, want 0", lc.StabilizationRound)
	}
}

func TestYanovskiLockInBound(t *testing.T) {
	// Yanovski et al. [27]: a single agent stabilizes to an Eulerian
	// circulation within Θ(D·|E|) rounds regardless of initialization;
	// Bampas et al. [6] give the 2D|E| upper bound form. We verify
	// μ <= 4·D·|E| + 2·|E| across topologies and random initializations.
	graphs := []*graph.Graph{
		graph.Ring(12),
		graph.Path(9),
		graph.Grid2D(4, 4),
		graph.Complete(6),
		graph.Star(8),
		graph.Hypercube(3),
		graph.CompleteBinaryTree(3),
		graph.Lollipop(4, 4),
	}
	rng := xrand.New(2024)
	for _, g := range graphs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			bound := int64(4*g.Diameter()*g.NumEdges() + 2*g.NumEdges())
			for trial := 0; trial < 3; trial++ {
				s := newTestSystem(t, g,
					WithAgentsAt(rng.Intn(g.NumNodes())),
					WithPointers(PointersRandom(g, rng)))
				lc, err := FindLimitCycle(s, 64*bound+1024, true)
				if err != nil {
					t.Fatal(err)
				}
				if lc.StabilizationRound > bound {
					t.Errorf("trial %d: μ = %d exceeds Θ(D|E|) bound %d",
						trial, lc.StabilizationRound, bound)
				}
			}
		})
	}
}

func TestSingleAgentEulerianCirculation(t *testing.T) {
	// In the limit, a single agent traverses every arc of Ĝ equally often
	// (the Eulerian cycle), so one period of length λ crosses each arc
	// exactly λ/(2|E|) times.
	graphs := []*graph.Graph{
		graph.Ring(10),
		graph.Grid2D(3, 3),
		graph.Complete(5),
		graph.Star(7),
		graph.CompleteBinaryTree(3),
	}
	rng := xrand.New(55)
	for _, g := range graphs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			s := newTestSystem(t, g,
				WithAgentsAt(rng.Intn(g.NumNodes())),
				WithPointers(PointersRandom(g, rng)),
				WithArcCounting())
			cs, err := MeasureCirculation(s, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !cs.Balanced {
				t.Fatalf("single-agent limit not balanced: min %d, max %d over period %d",
					cs.MinArc, cs.MaxArc, cs.Period)
			}
			if want := cs.Period / int64(g.NumArcs()); cs.MinArc != want {
				t.Fatalf("per-arc traversals = %d, want λ/2|E| = %d", cs.MinArc, want)
			}
		})
	}
}

func TestMeasureCirculationRequiresArcCounting(t *testing.T) {
	g := graph.Ring(6)
	s := newTestSystem(t, g, WithAgentsAt(0))
	if _, err := MeasureCirculation(s, 1000); err == nil {
		t.Fatal("expected error without WithArcCounting")
	}
}

func TestSingleAgentRingReturnTime(t *testing.T) {
	// Stabilized single agent on C_n: each node is visited twice per
	// period 2n (once per direction); the node adjacent to the turn-around
	// waits 2n-2 rounds between visits.
	const n = 12
	g := graph.Ring(n)
	s := newTestSystem(t, g,
		WithAgentsAt(0),
		WithPointers(PointersUniform(g, graph.RingCW)))
	rs, err := MeasureReturnTime(s, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Period != 2*n {
		t.Fatalf("period = %d, want %d", rs.Period, 2*n)
	}
	if rs.ReturnTime != 2*n-2 {
		t.Fatalf("return time = %d, want %d", rs.ReturnTime, 2*n-2)
	}
	if rs.MinNodeVisits != 2 || rs.MaxNodeVisits != 2 {
		t.Fatalf("per-period visits [%d,%d], want exactly 2",
			rs.MinNodeVisits, rs.MaxNodeVisits)
	}
}

func TestMultiAgentReturnTimeShrinks(t *testing.T) {
	// Theorem 6: return time is Θ(n/k). With k=4 on n=64 the return time
	// must be well below the single-agent 2n-2 and within a constant of
	// n/k.
	const n = 64
	g := graph.Ring(n)
	single := newTestSystem(t, g,
		WithAgentsAt(0),
		WithPointers(PointersUniform(g, graph.RingCW)))
	rsSingle, err := MeasureReturnTime(single, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}

	multi := newTestSystem(t, g,
		WithAgentsAt(EquallySpaced(n, 4)...),
		WithPointers(PointersUniform(g, graph.RingCW)))
	rsMulti, err := MeasureReturnTime(multi, 5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rsMulti.ReturnTime >= rsSingle.ReturnTime {
		t.Fatalf("k=4 return time %d not below k=1 return time %d",
			rsMulti.ReturnTime, rsSingle.ReturnTime)
	}
	// Θ(n/k) with generous constants: n/k = 16.
	if rsMulti.ReturnTime < int64(n)/4/2 || rsMulti.ReturnTime > 8*int64(n)/4 {
		t.Fatalf("k=4 return time %d far from Θ(n/k) = %d", rsMulti.ReturnTime, n/4)
	}
}

func TestFindLimitCycleBudget(t *testing.T) {
	g := graph.Ring(128)
	ptr, err := PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t, g, WithAgentsAt(0), WithPointers(ptr))
	if _, err := FindLimitCycle(s, 50, false); !errors.Is(err, ErrNoCycle) {
		t.Fatalf("want ErrNoCycle, got %v", err)
	}
}

func TestLimitCycleIsActuallyPeriodic(t *testing.T) {
	// After FindLimitCycle parks the system in-cycle, advancing by the
	// period must reproduce the configuration exactly — several times over.
	rng := xrand.New(9)
	for trial := 0; trial < 5; trial++ {
		g := graph.Ring(8 + rng.Intn(24))
		k := 1 + rng.Intn(4)
		s := newTestSystem(t, g,
			WithAgentsAt(RandomPositions(g.NumNodes(), k, rng)...),
			WithPointers(PointersRandom(g, rng)))
		lc, err := FindLimitCycle(s, 5_000_000, false)
		if err != nil {
			t.Fatal(err)
		}
		ref := s.Clone()
		for rep := 0; rep < 3; rep++ {
			s.Run(lc.Period)
			if !s.StateEqual(ref) {
				t.Fatalf("trial %d: period %d does not reproduce state at repetition %d",
					trial, lc.Period, rep+1)
			}
		}
	}
}

func TestMuIsMinimal(t *testing.T) {
	// The configuration at round μ recurs (it is in the cycle); the
	// configuration at round μ-1, if μ > 0, must not recur within one
	// period (otherwise μ would not be minimal).
	rng := xrand.New(42)
	for trial := 0; trial < 5; trial++ {
		g := graph.Ring(10 + rng.Intn(20))
		s := newTestSystem(t, g,
			WithAgentsAt(rng.Intn(g.NumNodes())),
			WithPointers(PointersRandom(g, rng)))
		pristine := s.Clone()
		lc, err := FindLimitCycle(s, 5_000_000, true)
		if err != nil {
			t.Fatal(err)
		}
		mu, lambda := lc.StabilizationRound, lc.Period

		atMu := pristine.Clone()
		atMu.Run(mu)
		probe := atMu.Clone()
		probe.Run(lambda)
		if !probe.StateEqual(atMu) {
			t.Fatalf("trial %d: state at μ=%d does not recur after λ=%d", trial, mu, lambda)
		}
		if mu > 0 {
			before := pristine.Clone()
			before.Run(mu - 1)
			probe := before.Clone()
			probe.Run(lambda)
			if probe.StateEqual(before) {
				t.Fatalf("trial %d: μ=%d is not minimal", trial, mu)
			}
		}
	}
}

package core

import (
	"fmt"
	"sort"
	"testing"

	"rotorring/internal/graph"
	"rotorring/internal/kernel"
	"rotorring/internal/xrand"
)

// This file is the kernel-equivalence differential suite: the specialized
// ring/path kernels must match the generic engine configuration-for-
// configuration — pointers, agent counts, visit and exit counters, coverage
// bookkeeping and (when enabled) the incremental hash — on randomized
// initializations, including interleavings with held rounds and accessors
// that force occupied-list rebuilds.

// diffConfig is one randomized differential scenario.
type diffConfig struct {
	ring   bool // ring vs path topology
	n      int
	k      int
	hash   bool // enable config hashing on both systems
	rounds int
}

func (c diffConfig) String() string {
	shape := "path"
	if c.ring {
		shape = "ring"
	}
	return fmt.Sprintf("%s(n=%d,k=%d,hash=%v,rounds=%d)", shape, c.n, c.k, c.hash, c.rounds)
}

// systemBuilder draws one random configuration for c and returns a factory
// that instantiates it under any kernel mode, so differential tests can run
// three and more arms (generic, serial fast, parallel at several shard
// counts) over identical initial state.
func systemBuilder(t *testing.T, c diffConfig, rng *xrand.Rand) func(mode KernelMode, extra ...Option) *System {
	t.Helper()
	var g *graph.Graph
	if c.ring {
		g = graph.Ring(c.n)
	} else {
		g = graph.Path(c.n)
	}
	positions := RandomPositions(c.n, c.k, rng)
	pointers := PointersRandom(g, rng)
	return func(mode KernelMode, extra ...Option) *System {
		opts := []Option{
			WithAgentsAt(positions...),
			WithPointers(pointers),
			WithKernelMode(mode),
		}
		if c.hash {
			opts = append(opts, WithConfigHash())
		}
		opts = append(opts, extra...)
		s, err := NewSystem(g, opts...)
		if err != nil {
			t.Fatalf("%v: NewSystem: %v", c, err)
		}
		return s
	}
}

// buildPair constructs the same random configuration twice: once forced
// onto the generic engine, once forced onto the specialized kernel.
func buildPair(t *testing.T, c diffConfig, rng *xrand.Rand) (gen, fast *System) {
	t.Helper()
	mk := systemBuilder(t, c, rng)
	gen = mk(KernelGeneric)
	fast = mk(KernelFast)
	if gen.KernelName() != "generic" {
		t.Fatalf("%v: forced generic selected %q", c, gen.KernelName())
	}
	want := "ring"
	if !c.ring {
		want = "path"
	}
	if fast.KernelName() != want {
		t.Fatalf("%v: forced fast selected %q, want %q", c, fast.KernelName(), want)
	}
	return gen, fast
}

// compareSystems asserts every observable piece of configuration state
// matches. Order-free views (Occupied, LastVisited) are compared as sets.
func compareSystems(t *testing.T, c diffConfig, round int, gen, fast *System) {
	t.Helper()
	fail := func(what string, v int, a, b any) {
		t.Fatalf("%v round %d: %s diverges at node %d: generic=%v fast=%v", c, round, what, v, a, b)
	}
	for v := 0; v < gen.n; v++ {
		if gen.Pointer(v) != fast.Pointer(v) {
			fail("pointer", v, gen.Pointer(v), fast.Pointer(v))
		}
		if gen.AgentsAt(v) != fast.AgentsAt(v) {
			fail("agents", v, gen.AgentsAt(v), fast.AgentsAt(v))
		}
		if gen.Visits(v) != fast.Visits(v) {
			fail("visits", v, gen.Visits(v), fast.Visits(v))
		}
		if gen.Exits(v) != fast.Exits(v) {
			fail("exits", v, gen.Exits(v), fast.Exits(v))
		}
		if gen.CoveredAt(v) != fast.CoveredAt(v) {
			fail("coveredAt", v, gen.CoveredAt(v), fast.CoveredAt(v))
		}
	}
	if gen.Covered() != fast.Covered() {
		t.Fatalf("%v round %d: covered %d vs %d", c, round, gen.Covered(), fast.Covered())
	}
	if gen.CoverRound() != fast.CoverRound() {
		t.Fatalf("%v round %d: coverRound %d vs %d", c, round, gen.CoverRound(), fast.CoverRound())
	}
	if gen.Round() != fast.Round() {
		t.Fatalf("%v round %d: round %d vs %d", c, round, gen.Round(), fast.Round())
	}
	if gen.FullyActiveRounds() != fast.FullyActiveRounds() {
		t.Fatalf("%v round %d: fullyActive %d vs %d", c, round, gen.FullyActiveRounds(), fast.FullyActiveRounds())
	}
	if c.hash && gen.st.Hash != fast.st.Hash {
		t.Fatalf("%v round %d: hash %#x vs %#x", c, round, gen.st.Hash, fast.st.Hash)
	}
	if !gen.StateEqual(fast) {
		t.Fatalf("%v round %d: StateEqual false after field-wise match", c, round)
	}
	if a, b := sortedCopy(gen.LastVisited()), sortedCopy(fast.LastVisited()); !equalInts(a, b) {
		t.Fatalf("%v round %d: lastVisited sets differ: %v vs %v", c, round, a, b)
	}
}

func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelDifferential is the main property test: random ring and path
// configurations stepped in lockstep on both engines, compared after every
// round. Runs a spread of sparse and dense populations with and without
// hashing.
func TestKernelDifferential(t *testing.T) {
	rng := xrand.New(0xd1ff)
	for trial := 0; trial < 120; trial++ {
		c := diffConfig{
			ring:   rng.Bool(),
			n:      3 + rng.Intn(70),
			hash:   rng.Bool(),
			rounds: 20 + rng.Intn(120),
		}
		// Sample k across sparse (k << n) and dense (k >> n) regimes.
		switch rng.Intn(3) {
		case 0:
			c.k = 1 + rng.Intn(3)
		case 1:
			c.k = 1 + rng.Intn(2*c.n)
		default:
			c.k = c.n + rng.Intn(9*c.n)
		}
		gen, fast := buildPair(t, c, rng)
		compareSystems(t, c, 0, gen, fast)
		for r := 1; r <= c.rounds; r++ {
			gen.Step()
			fast.Step()
			compareSystems(t, c, r, gen, fast)
		}
		if a, b := sortedCopy(gen.Occupied()), sortedCopy(fast.Occupied()); !equalInts(a, b) {
			t.Fatalf("%v: occupied sets differ: %v vs %v", c, a, b)
		}
	}
}

// TestKernelDifferentialHeldInterleaving checks held rounds against the
// generic engine: on ring and path shapes StepHeld dispatches to the fused
// held kernels, so this is the primary differential for that tier, and it
// also covers the occupied-bookkeeping rebuilds when holds interleave with
// plain fast rounds.
func TestKernelDifferentialHeldInterleaving(t *testing.T) {
	rng := xrand.New(0x11e1d)
	for trial := 0; trial < 40; trial++ {
		c := diffConfig{ring: rng.Bool(), n: 4 + rng.Intn(40), hash: rng.Bool(), rounds: 60}
		c.k = 1 + rng.Intn(4*c.n)
		gen, fast := buildPair(t, c, rng)
		held := make([]int64, c.n)
		for r := 1; r <= c.rounds; r++ {
			if rng.Intn(3) == 0 {
				for v := range held {
					held[v] = 0
				}
				for _, v := range gen.Occupied() {
					if rng.Bool() {
						held[v] = 1 + int64(rng.Intn(2))
					}
				}
				gen.StepHeld(held)
				fast.StepHeld(held)
			} else {
				gen.Step()
				fast.Step()
			}
			compareSystems(t, c, r, gen, fast)
		}
	}
}

// TestKernelDifferentialCoverAndCycle checks the two high-level drivers:
// cover times and limit cycles must agree between the engines.
func TestKernelDifferentialCoverAndCycle(t *testing.T) {
	rng := xrand.New(0xc0ffee)
	for trial := 0; trial < 25; trial++ {
		c := diffConfig{ring: rng.Bool(), n: 6 + rng.Intn(50)}
		c.k = 1 + rng.Intn(2*c.n)
		gen, fast := buildPair(t, c, rng)

		budget := int64(64 * c.n * c.n)
		cg, errG := gen.RunUntilCovered(budget)
		cf, errF := fast.RunUntilCovered(budget)
		if (errG == nil) != (errF == nil) {
			t.Fatalf("%v: cover errors diverge: %v vs %v", c, errG, errF)
		}
		if cg != cf {
			t.Fatalf("%v: cover time %d vs %d", c, cg, cf)
		}

		lcG, errG := FindLimitCycle(gen, 4*budget, true)
		lcF, errF := FindLimitCycle(fast, 4*budget, true)
		if errG != nil || errF != nil {
			t.Fatalf("%v: limit cycle errors: %v vs %v", c, errG, errF)
		}
		if lcG.Period != lcF.Period || lcG.StabilizationRound != lcF.StabilizationRound {
			t.Fatalf("%v: limit cycle (λ=%d, μ=%d) vs (λ=%d, μ=%d)",
				c, lcG.Period, lcG.StabilizationRound, lcF.Period, lcF.StabilizationRound)
		}
	}
}

// TestKernelDifferentialReset checks Reset and Clone keep the engines
// aligned (the specialized kernel swaps count buffers, which Reset and
// Clone must be oblivious to).
func TestKernelDifferentialReset(t *testing.T) {
	rng := xrand.New(0x5e5e7)
	c := diffConfig{ring: true, n: 33, k: 70, hash: true, rounds: 37}
	gen, fast := buildPair(t, c, rng)
	for r := 1; r <= c.rounds; r++ {
		gen.Step()
		fast.Step()
	}
	cg, cf := gen.Clone(), fast.Clone()
	cg.Step()
	cf.Step()
	compareSystems(t, c, c.rounds+1, cg, cf)

	gen.Reset()
	fast.Reset()
	compareSystems(t, c, 0, gen, fast)
	for r := 1; r <= 10; r++ {
		gen.Step()
		fast.Step()
		compareSystems(t, c, r, gen, fast)
	}
}

// TestKernelPathTwoNodes exercises the path kernel's degenerate case: two
// endpoints and no interior (the split/assemble passes run on boundary
// terms alone).
func TestKernelPathTwoNodes(t *testing.T) {
	g := graph.Path(2)
	for _, counts := range [][]int64{{3, 0}, {1, 1}, {5, 2}} {
		gen, err := NewSystem(g, WithAgentCounts(counts), WithKernelMode(KernelGeneric))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewSystem(g, WithAgentCounts(counts), WithKernelMode(KernelFast))
		if err != nil {
			t.Fatal(err)
		}
		if fast.KernelName() != "path" {
			t.Fatalf("kernel %q", fast.KernelName())
		}
		c := diffConfig{n: 2, k: int(counts[0] + counts[1])}
		for r := 1; r <= 16; r++ {
			gen.Step()
			fast.Step()
			compareSystems(t, c, r, gen, fast)
		}
	}
}

// TestKernelAutoSelection pins the density heuristic: dense ring and path
// populations select the specialized kernel, sparse ones and unsupported
// topologies fall back to the generic engine, and the recording options pin
// a system to the generic path regardless of mode.
func TestKernelAutoSelection(t *testing.T) {
	ring := graph.Ring(64)
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
		opts []Option
		want string
	}{
		{"dense ring", ring, 16, nil, "ring"},
		{"sparse ring", ring, 2, nil, "generic"},
		{"sparse ring forced", ring, 2, []Option{WithKernelMode(KernelFast)}, "ring"},
		{"dense ring forced generic", ring, 64, []Option{WithKernelMode(KernelGeneric)}, "generic"},
		{"dense path", graph.Path(32), 32, nil, "path"},
		{"torus", graph.Torus2D(4, 4), 64, nil, "generic"},
		{"torus forced fast", graph.Torus2D(4, 4), 64, []Option{WithKernelMode(KernelFast)}, "generic"},
		{"ring with flows", ring, 64, []Option{WithFlowRecording()}, "generic"},
		{"ring with arcs", ring, 64, []Option{WithArcCounting()}, "generic"},
	}
	for _, tc := range cases {
		opts := append([]Option{WithAgentsAt(EquallySpaced(tc.g.NumNodes(), tc.k)...)}, tc.opts...)
		s, err := NewSystem(tc.g, opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := s.KernelName(); got != tc.want {
			t.Errorf("%s: kernel %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestConfigHashOptIn pins the tier-2 semantics: hashing is off by
// default, WithConfigHash enables it from round zero, ConfigHash
// self-enables lazily, and a lazily enabled hash matches the
// incrementally maintained one on the same trajectory.
func TestConfigHashOptIn(t *testing.T) {
	g := graph.Ring(48)
	mk := func(opts ...Option) *System {
		s, err := NewSystem(g, append([]Option{
			WithAgentsAt(EquallySpaced(48, 12)...),
			WithPointers(PointersUniform(g, 1)),
		}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	eager := mk(WithConfigHash())
	lazy := mk()
	if !eager.HashEnabled() {
		t.Fatal("WithConfigHash did not enable hashing")
	}
	if lazy.HashEnabled() {
		t.Fatal("hashing enabled without WithConfigHash")
	}
	eager.Run(100)
	lazy.Run(100)
	if lazy.HashEnabled() {
		t.Fatal("stepping enabled hashing")
	}
	if eager.ConfigHash() != lazy.ConfigHash() {
		t.Fatal("lazy ConfigHash disagrees with incrementally maintained hash")
	}
	if !lazy.HashEnabled() {
		t.Fatal("ConfigHash did not self-enable hashing")
	}
	// From here both maintain incrementally; they must stay in lockstep
	// and agree with a from-scratch recomputation.
	eager.Run(50)
	lazy.Run(50)
	if eager.ConfigHash() != lazy.ConfigHash() || lazy.ConfigHash() != lazy.fullHash() {
		t.Fatal("incremental hash diverged after lazy enable")
	}

	// FindLimitCycle enables hashing as a side effect (documented).
	probe := mk()
	if _, err := FindLimitCycle(probe, 1<<22, false); err != nil {
		t.Fatal(err)
	}
	if !probe.HashEnabled() {
		t.Fatal("FindLimitCycle did not enable hashing")
	}
}

// TestKernelShapeDetection covers the structural shape checks directly.
func TestKernelShapeDetection(t *testing.T) {
	if got := kernel.DetectShape(graph.Ring(17)); got != kernel.ShapeRing {
		t.Errorf("Ring(17): %v", got)
	}
	if got := kernel.DetectShape(graph.Path(9)); got != kernel.ShapePath {
		t.Errorf("Path(9): %v", got)
	}
	for _, g := range []*graph.Graph{
		graph.Torus2D(3, 3), graph.Complete(5), graph.Star(6), graph.Grid2D(2, 3),
	} {
		if got := kernel.DetectShape(g); got != kernel.ShapeGeneral {
			t.Errorf("%s: %v, want general", g.Name(), got)
		}
	}
	// A shuffled ring keeps the cycle but may lose the canonical port
	// layout; detection must only accept the exact layout the kernel
	// assumes. (Shuffling can also produce the identity permutation, so
	// accept either classification consistently with Validate.)
	sh := graph.Ring(12).ShufflePorts(xrand.New(5))
	if kernel.DetectShape(sh) == kernel.ShapeRing {
		canonical := true
		for v := 0; v < 12 && canonical; v++ {
			canonical = sh.Neighbor(v, graph.RingCW) == (v+1)%12
		}
		if !canonical {
			t.Error("shuffled non-canonical ring misdetected as ring shape")
		}
	}
}

// TestKernelDifferentialParallel is the serial-identity property for the
// parallel ring stepper: at every shard count (including the GOMAXPROCS
// default, shards=0) a KernelParallel system must match the generic engine
// and the serial fast kernel round for round, across plain and held rounds.
// Bit-identity at any shard count is what lets BENCH results from parallel
// runs be compared against serial fixtures.
func TestKernelDifferentialParallel(t *testing.T) {
	rng := xrand.New(0x9a7a11e1)
	shardCounts := []int{0, 1, 2, 3, 5, 8, 16}
	for trial := 0; trial < 30; trial++ {
		c := diffConfig{ring: true, n: 4 + rng.Intn(60), hash: rng.Bool(), rounds: 48}
		c.k = 1 + rng.Intn(4*c.n)
		shards := shardCounts[trial%len(shardCounts)]
		mk := systemBuilder(t, c, rng)
		gen := mk(KernelGeneric)
		fast := mk(KernelFast)
		par := mk(KernelParallel, WithParallelShards(shards))
		if got := par.KernelName(); got != "ring-parallel" {
			t.Fatalf("%v shards=%d: parallel mode selected %q", c, shards, got)
		}
		held := make([]int64, c.n)
		for r := 1; r <= c.rounds; r++ {
			if rng.Intn(3) == 0 {
				for v := range held {
					held[v] = 0
				}
				for _, v := range gen.Occupied() {
					if rng.Bool() {
						held[v] = 1 + int64(rng.Intn(2))
					}
				}
				gen.StepHeld(held)
				fast.StepHeld(held)
				par.StepHeld(held)
			} else {
				gen.Step()
				fast.Step()
				par.Step()
			}
			compareSystems(t, c, r, gen, par)
			compareSystems(t, c, r, fast, par)
		}
	}
}

// TestKernelParallelSelection pins how KernelParallel composes with shape
// detection: only the flat ring layout gets the parallel stepper; path and
// unsupported topologies keep their serial choice.
func TestKernelParallelSelection(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want string
	}{
		{"ring", graph.Ring(64), "ring-parallel"},
		{"path", graph.Path(64), "path"},
		{"torus", graph.Torus2D(8, 8), "generic"},
	}
	for _, tc := range cases {
		s, err := NewSystem(tc.g,
			WithAgentsAt(EquallySpaced(tc.g.NumNodes(), 16)...),
			WithKernelMode(KernelParallel),
			WithParallelShards(4))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := s.KernelName(); got != tc.want {
			t.Errorf("%s: kernel %q, want %q", tc.name, got, tc.want)
		}
	}
	if _, err := NewSystem(graph.Ring(8), WithAgentsAt(0), WithParallelShards(-1)); err == nil {
		t.Error("negative shard count accepted")
	}
}

// TestKernelParallelResetClone checks that Reset and Clone keep a parallel
// system aligned with the generic engine, and that a clone steps on its own
// stepper instance (the parallel stepper carries per-shard merge scratch, so
// sharing one between systems would corrupt both).
func TestKernelParallelResetClone(t *testing.T) {
	rng := xrand.New(0xc10e4e)
	c := diffConfig{ring: true, n: 41, k: 90, hash: true, rounds: 25}
	mk := systemBuilder(t, c, rng)
	gen := mk(KernelGeneric)
	par := mk(KernelParallel, WithParallelShards(3))
	for r := 1; r <= c.rounds; r++ {
		gen.Step()
		par.Step()
	}
	cg, cp := gen.Clone(), par.Clone()
	// Interleave: advancing the clone must not disturb the original, and
	// vice versa, even though both run the parallel stepper.
	for r := 0; r < 10; r++ {
		cg.Step()
		cp.Step()
		gen.Step()
		par.Step()
	}
	compareSystems(t, c, c.rounds+10, cg, cp)
	compareSystems(t, c, c.rounds+10, gen, par)

	gen.Reset()
	par.Reset()
	compareSystems(t, c, 0, gen, par)
	for r := 1; r <= 10; r++ {
		gen.Step()
		par.Step()
		compareSystems(t, c, r, gen, par)
	}
}

// TestForEachOccupiedAscending pins the documented enumeration order: the
// schedule subsystem keys its deterministic hold draws by (round, node), so
// ForEachOccupied must visit nodes in ascending order on every code path —
// after a fresh build, after kernel rounds and held rounds (which invalidate
// the list), and after AddAgents appends out of order.
func TestForEachOccupiedAscending(t *testing.T) {
	rng := xrand.New(0xa5ce4d)
	checkAscending := func(t *testing.T, s *System, when string) {
		t.Helper()
		prev := -1
		s.ForEachOccupied(func(v int, agents int64) {
			if agents < 1 {
				t.Fatalf("%s: zero count at node %d", when, v)
			}
			if v <= prev {
				t.Fatalf("%s: node %d enumerated after %d", when, v, prev)
			}
			if got := s.AgentsAt(v); got != agents {
				t.Fatalf("%s: node %d count %d, want %d", when, v, agents, got)
			}
			prev = v
		})
	}
	for _, mode := range []KernelMode{KernelGeneric, KernelFast, KernelParallel} {
		s, err := NewSystem(graph.Ring(53),
			WithAgentsAt(RandomPositions(53, 120, rng)...),
			WithKernelMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		checkAscending(t, s, mode.String()+" fresh")
		held := make([]int64, 53)
		for r := 0; r < 12; r++ {
			s.Step()
			checkAscending(t, s, mode.String()+" after step")
			for _, v := range s.Occupied() {
				held[v] = s.AgentsAt(v) / 2
			}
			s.StepHeld(held)
			checkAscending(t, s, mode.String()+" after held")
			// Append high then low: a naive append order would enumerate
			// descending here.
			if err := s.AddAgents(52, 0); err != nil {
				t.Fatal(err)
			}
			checkAscending(t, s, mode.String()+" after add")
		}
	}
}

// FuzzKernelEquivalence is a native fuzz harness over the differential
// property; `go test` runs the seed corpus, `go test -fuzz` explores.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(12), uint16(5), true, false)
	f.Add(uint64(2), uint8(40), uint16(200), false, true)
	f.Add(uint64(3), uint8(3), uint16(1), true, true)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, kRaw uint16, ring, hash bool) {
		n := 3 + int(nRaw)%80
		k := 1 + int(kRaw)%(4*n)
		c := diffConfig{ring: ring, n: n, k: k, hash: hash, rounds: 48}
		rng := xrand.New(seed)
		gen, fast := buildPair(t, c, rng)
		for r := 1; r <= c.rounds; r++ {
			gen.Step()
			fast.Step()
			compareSystems(t, c, r, gen, fast)
		}
	})
}

// FuzzKernelHeldEquivalence fuzzes the held-round tier: random hold
// interleavings on ring and path shapes, fused held kernels vs the generic
// engine. holdSeed decouples the hold pattern from the configuration draw so
// the fuzzer can vary them independently.
func FuzzKernelHeldEquivalence(f *testing.F) {
	f.Add(uint64(1), uint64(7), uint8(12), uint16(5), true, false)
	f.Add(uint64(2), uint64(9), uint8(40), uint16(200), false, true)
	f.Add(uint64(3), uint64(11), uint8(3), uint16(1), true, true)
	f.Fuzz(func(t *testing.T, seed, holdSeed uint64, nRaw uint8, kRaw uint16, ring, hash bool) {
		n := 3 + int(nRaw)%80
		k := 1 + int(kRaw)%(4*n)
		c := diffConfig{ring: ring, n: n, k: k, hash: hash, rounds: 40}
		rng := xrand.New(seed)
		gen, fast := buildPair(t, c, rng)
		hrng := xrand.New(holdSeed)
		held := make([]int64, n)
		for r := 1; r <= c.rounds; r++ {
			for v := range held {
				held[v] = 0
			}
			for _, v := range gen.Occupied() {
				if hrng.Bool() {
					held[v] = int64(hrng.Intn(int(gen.AgentsAt(v)) + 1))
				}
			}
			gen.StepHeld(held)
			fast.StepHeld(held)
			compareSystems(t, c, r, gen, fast)
		}
	})
}

// FuzzKernelParallelEquivalence fuzzes the parallel ring stepper's
// serial-identity property across shard counts, mixing plain and held
// rounds.
func FuzzKernelParallelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(12), uint16(5), uint8(2), false)
	f.Add(uint64(2), uint8(40), uint16(200), uint8(7), true)
	f.Add(uint64(3), uint8(3), uint16(1), uint8(16), true)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, kRaw uint16, shardsRaw uint8, hash bool) {
		n := 3 + int(nRaw)%80
		k := 1 + int(kRaw)%(4*n)
		shards := int(shardsRaw) % 17 // 0 = GOMAXPROCS default
		c := diffConfig{ring: true, n: n, k: k, hash: hash, rounds: 40}
		rng := xrand.New(seed)
		mk := systemBuilder(t, c, rng)
		gen := mk(KernelGeneric)
		par := mk(KernelParallel, WithParallelShards(shards))
		held := make([]int64, n)
		for r := 1; r <= c.rounds; r++ {
			if rng.Intn(3) == 0 {
				for v := range held {
					held[v] = 0
				}
				for _, v := range gen.Occupied() {
					if rng.Bool() {
						held[v] = 1 + int64(rng.Intn(2))
					}
				}
				gen.StepHeld(held)
				par.StepHeld(held)
			} else {
				gen.Step()
				par.Step()
			}
			compareSystems(t, c, r, gen, par)
		}
	})
}

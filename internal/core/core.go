// Package core implements the multi-agent rotor-router system of Klasing,
// Kosowski, Pająk and Sauerwald (PODC 2013 / Distrib. Comput. 2017), §1.3.
//
// A configuration is a triple ((ρ_v), (π_v), {r_1..r_k}): the fixed cyclic
// port orders, the current port pointers, and the multiset of agent
// positions. In every synchronous round each agent at node v traverses the
// arc indicated by π_v and the pointer advances; a node holding c agents at
// the start of a round emits them along ports π_v, next(π_v), ...,
// next^{c-1}(π_v) and its pointer ends advanced by c. Agents are
// indistinguishable, so the engine stores agent counts per node and
// processes only occupied nodes, making a round cost O(Σ_{occupied v}
// min(deg v, agents at v)) instead of O(k).
//
// The engine also supports delayed deployments (§2.1): StepHeld freezes a
// chosen number of agents per node for one round, which is the primitive
// that the deploy package's schedules are built from.
package core

import (
	"errors"
	"fmt"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// ErrNotCovered is returned by RunUntilCovered when the round budget is
// exhausted before every node has been visited.
var ErrNotCovered = errors.New("core: cover-time budget exhausted")

// System is a running multi-agent rotor-router. It is not safe for
// concurrent use; experiments run independent Systems per goroutine.
type System struct {
	g *graph.Graph
	n int
	k int64

	ptr    []int32 // π_v as a port index
	ptr0   []int32 // initial pointers, for the arc-traversal law and Reset
	agents []int64 // agents currently at v
	ag0    []int64 // initial agent counts, for Reset

	occupied []int  // nodes with agents[v] > 0, unordered
	inOcc    []bool // membership flags for occupied

	visits     []int64 // n_v(t): initial agents at v plus arrivals in [1,t]
	exits      []int64 // e_v(t): departures from v in [1,t]
	coveredAt  []int64 // round of first visit, -1 if uncovered
	covered    int
	coverRound int64 // round at which covered == n, -1 before that
	round      int64 // completed rounds

	fullyActiveRounds int64 // rounds in which no agent was held (Lemma 3's τ)

	// Incremental configuration hash over (ptr, agents); see hash.go.
	hash uint64

	// Round-stamped change tracking for incremental hashing: the first
	// modification of agents[v] in a round records the pre-round count.
	lastTouch []int64 // round stamp of last touch, 0 = never
	oldCnt    []int64 // agents[v] before this round's first modification
	changed   []int   // nodes touched this round

	// Per-round visited-node tracking: nodes that received at least one
	// arrival during the last completed round.
	visitStamp  []int64
	lastVisited []int

	// Optional per-round flow recording (per arc of the last completed
	// round), used by the ring domain tracker.
	recordFlows  bool
	flows        []int64
	flowsTouched []int

	// Optional cumulative per-arc traversal counters.
	recordArcs bool
	arcCount   []int64

	// Scratch buffers reused across rounds.
	srcNode []int
	srcCnt  []int64
	cand    []int
}

// Option configures a System at construction time.
type Option func(*config) error

type config struct {
	positions []int
	counts    []int64
	pointers  []int
	flows     bool
	arcs      bool
}

// WithAgentsAt places one agent on each listed node (repeats allowed:
// listing a node twice places two agents there).
func WithAgentsAt(positions ...int) Option {
	return func(c *config) error {
		c.positions = append([]int(nil), positions...)
		return nil
	}
}

// WithAgentCounts places counts[v] agents on node v; len(counts) must equal
// the number of nodes.
func WithAgentCounts(counts []int64) Option {
	return func(c *config) error {
		c.counts = append([]int64(nil), counts...)
		return nil
	}
}

// WithPointers sets the initial port pointers; len(pointers) must equal the
// number of nodes and pointers[v] must be a valid port of v. Initializers
// for the paper's adversarial arrangements live in init.go.
func WithPointers(pointers []int) Option {
	return func(c *config) error {
		c.pointers = append([]int(nil), pointers...)
		return nil
	}
}

// WithFlowRecording enables per-round arc flow recording (LastFlow), needed
// by the domain tracker. It costs O(moved arcs) extra per round.
func WithFlowRecording() Option {
	return func(c *config) error {
		c.flows = true
		return nil
	}
}

// WithArcCounting enables cumulative per-arc traversal counters
// (ArcTraversals), used by the Eulerian-circulation checks.
func WithArcCounting() Option {
	return func(c *config) error {
		c.arcs = true
		return nil
	}
}

// NewSystem creates a rotor-router on g. At least one agent must be placed;
// pointers default to port 0 everywhere.
func NewSystem(g *graph.Graph, opts ...Option) (*System, error) {
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	n := g.NumNodes()

	s := &System{
		g:          g,
		n:          n,
		ptr:        make([]int32, n),
		ptr0:       make([]int32, n),
		agents:     make([]int64, n),
		ag0:        make([]int64, n),
		inOcc:      make([]bool, n),
		visits:     make([]int64, n),
		exits:      make([]int64, n),
		coveredAt:  make([]int64, n),
		coverRound: -1,
		lastTouch:  make([]int64, n),
		oldCnt:     make([]int64, n),
		visitStamp: make([]int64, n),
	}

	if c.pointers != nil {
		if len(c.pointers) != n {
			return nil, fmt.Errorf("core: %d pointers for %d nodes", len(c.pointers), n)
		}
		for v, p := range c.pointers {
			if p < 0 || p >= g.Degree(v) {
				return nil, fmt.Errorf("core: pointer %d invalid at node %d (degree %d)", p, v, g.Degree(v))
			}
			s.ptr[v] = int32(p)
		}
	}
	copy(s.ptr0, s.ptr)

	switch {
	case c.positions != nil && c.counts != nil:
		return nil, errors.New("core: WithAgentsAt and WithAgentCounts are mutually exclusive")
	case c.positions != nil:
		for _, v := range c.positions {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("core: agent position %d out of range [0,%d)", v, n)
			}
			s.agents[v]++
			s.k++
		}
	case c.counts != nil:
		if len(c.counts) != n {
			return nil, fmt.Errorf("core: %d agent counts for %d nodes", len(c.counts), n)
		}
		for v, cnt := range c.counts {
			if cnt < 0 {
				return nil, fmt.Errorf("core: negative agent count at node %d", v)
			}
			s.agents[v] = cnt
			s.k += cnt
		}
	}
	if s.k == 0 {
		return nil, errors.New("core: no agents placed")
	}
	copy(s.ag0, s.agents)

	for v := 0; v < n; v++ {
		s.coveredAt[v] = -1
		if s.agents[v] > 0 {
			s.occupied = append(s.occupied, v)
			s.inOcc[v] = true
			s.visits[v] = s.agents[v] // n_v(0)
			s.coveredAt[v] = 0
			s.covered++
		}
	}
	if s.covered == n {
		s.coverRound = 0
	}

	if c.flows {
		s.recordFlows = true
		s.flows = make([]int64, g.NumArcs())
	}
	if c.arcs {
		s.recordArcs = true
		s.arcCount = make([]int64, g.NumArcs())
	}

	s.hash = s.fullHash()
	return s, nil
}

// Graph returns the topology the system runs on.
func (s *System) Graph() *graph.Graph { return s.g }

// NumAgents returns k.
func (s *System) NumAgents() int64 { return s.k }

// Round returns the number of completed rounds.
func (s *System) Round() int64 { return s.round }

// AgentsAt returns the number of agents currently at v.
func (s *System) AgentsAt(v int) int64 { return s.agents[v] }

// Pointer returns the current port pointer of v.
func (s *System) Pointer(v int) int { return int(s.ptr[v]) }

// InitialPointer returns the pointer of v at construction time.
func (s *System) InitialPointer(v int) int { return int(s.ptr0[v]) }

// Visits returns n_v(t): the initial agent count of v plus the number of
// arrivals at v during rounds [1, t], matching the paper's counters.
func (s *System) Visits(v int) int64 { return s.visits[v] }

// Exits returns e_v(t): the number of departures from v during [1, t].
func (s *System) Exits(v int) int64 { return s.exits[v] }

// Covered returns how many nodes have been covered so far.
func (s *System) Covered() int { return s.covered }

// CoveredAt returns the round at which v was first covered (0 for nodes
// holding agents initially) and -1 if v is still uncovered.
func (s *System) CoveredAt(v int) int64 { return s.coveredAt[v] }

// CoverRound returns the first round after which every node had been
// visited, or -1 if the graph is not yet covered.
func (s *System) CoverRound() int64 { return s.coverRound }

// FullyActiveRounds returns how many completed rounds moved every agent
// (no holds) — the quantity τ in the slow-down lemma (Lemma 3).
func (s *System) FullyActiveRounds() int64 { return s.fullyActiveRounds }

// Positions returns the sorted multiset of agent positions.
func (s *System) Positions() []int {
	out := make([]int, 0, s.k)
	for v := 0; v < s.n; v++ {
		for i := int64(0); i < s.agents[v]; i++ {
			out = append(out, v)
		}
	}
	return out
}

// Occupied returns a copy of the list of nodes currently holding agents.
func (s *System) Occupied() []int {
	return append([]int(nil), s.occupied...)
}

// LastVisited returns the nodes that received at least one arrival during
// the last completed round. The slice is reused on the next Step; callers
// must not retain it.
func (s *System) LastVisited() []int { return s.lastVisited }

// LastFlow returns how many agents traversed the arc leaving v through port
// p during the last completed round. Requires WithFlowRecording.
func (s *System) LastFlow(v, p int) int64 {
	return s.flows[s.g.ArcID(v, p)]
}

// ArcTraversals returns the cumulative number of traversals of the arc
// leaving v through port p. Requires WithArcCounting.
func (s *System) ArcTraversals(v, p int) int64 {
	return s.arcCount[s.g.ArcID(v, p)]
}

// Step runs one synchronous round with every agent active.
func (s *System) Step() { s.StepHeld(nil) }

// Run executes the given number of rounds.
func (s *System) Run(rounds int64) {
	for i := int64(0); i < rounds; i++ {
		s.StepHeld(nil)
	}
}

// RunUntilCovered steps until every node has been visited, and returns the
// cover time C (the first round t with all nodes covered). If maxRounds
// elapse first it returns the rounds spent wrapped in ErrNotCovered.
func (s *System) RunUntilCovered(maxRounds int64) (int64, error) {
	for s.covered < s.n {
		if s.round >= maxRounds {
			return s.round, fmt.Errorf("%w after %d rounds (%d/%d nodes)",
				ErrNotCovered, s.round, s.covered, s.n)
		}
		s.StepHeld(nil)
	}
	return s.coverRound, nil
}

// touchAgents records the pre-round agent count of v the first time v's
// count changes in the current round, for end-of-round hash updates.
func (s *System) touchAgents(v int) {
	stamp := s.round + 1
	if s.lastTouch[v] != stamp {
		s.lastTouch[v] = stamp
		s.oldCnt[v] = s.agents[v]
		s.changed = append(s.changed, v)
	}
}

// StepHeld runs one round of a delayed deployment D (§2.1): held[v] agents
// at node v skip their move this round (clamped to the number present). A
// nil held slice means every agent is active. Held agents do not advance
// the pointer — exactly the paper's D(v,t) semantics.
func (s *System) StepHeld(held []int64) {
	// Zero last round's flow records lazily (touched arcs only).
	if s.recordFlows {
		for _, id := range s.flowsTouched {
			s.flows[id] = 0
		}
		s.flowsTouched = s.flowsTouched[:0]
	}

	// Snapshot sources: moves are based on start-of-round positions.
	s.srcNode = s.srcNode[:0]
	s.srcCnt = s.srcCnt[:0]
	s.changed = s.changed[:0]
	s.lastVisited = s.lastVisited[:0]
	anyHeld := false
	for _, v := range s.occupied {
		c := s.agents[v]
		var h int64
		if held != nil && held[v] > 0 {
			h = held[v]
			if h > c {
				h = c
			}
		}
		if h > 0 {
			anyHeld = true
		}
		s.srcNode = append(s.srcNode, v)
		s.srcCnt = append(s.srcCnt, c-h)
		s.touchAgents(v)
		s.agents[v] = h // held agents stay; arrivals accumulate below
	}

	// Candidates for the new occupied list: all old sources (which may
	// retain held agents or receive arrivals) plus all destinations.
	s.cand = s.cand[:0]
	s.cand = append(s.cand, s.srcNode...)
	for _, v := range s.srcNode {
		s.inOcc[v] = false
	}

	for i, v := range s.srcNode {
		m := s.srcCnt[i]
		if m == 0 {
			continue
		}
		d := int64(s.g.Degree(v))
		p := int64(s.ptr[v])
		// The m departing agents use ports p, p+1, ..., p+m-1 (mod d):
		// port offset j carries ceil((m-j)/d) agents.
		lim := d
		if m < d {
			lim = m
		}
		for j := int64(0); j < lim; j++ {
			cnt := (m - j + d - 1) / d
			port := int((p + j) % d)
			dest := s.g.Neighbor(v, port)
			s.touchAgents(dest)
			if s.agents[dest] == 0 {
				s.cand = append(s.cand, dest)
			}
			s.agents[dest] += cnt
			if s.visits[dest] == 0 {
				s.coveredAt[dest] = s.round + 1
				s.covered++
				if s.covered == s.n {
					s.coverRound = s.round + 1
				}
			}
			s.visits[dest] += cnt
			if s.visitStamp[dest] != s.round+1 {
				s.visitStamp[dest] = s.round + 1
				s.lastVisited = append(s.lastVisited, dest)
			}
			if s.recordFlows {
				id := s.g.ArcID(v, port)
				if s.flows[id] == 0 {
					s.flowsTouched = append(s.flowsTouched, id)
				}
				s.flows[id] += cnt
			}
			if s.recordArcs {
				s.arcCount[s.g.ArcID(v, port)] += cnt
			}
		}
		s.exits[v] += m
		newPtr := int32((p + m) % d)
		s.hash += hashPtr(v, newPtr) - hashPtr(v, s.ptr[v])
		s.ptr[v] = newPtr
	}

	// Fold agent-count changes into the incremental hash.
	for _, v := range s.changed {
		s.hash += hashCnt(v, s.agents[v]) - hashCnt(v, s.oldCnt[v])
	}

	// Rebuild the occupied list from candidates.
	s.occupied = s.occupied[:0]
	for _, v := range s.cand {
		if s.agents[v] > 0 && !s.inOcc[v] {
			s.inOcc[v] = true
			s.occupied = append(s.occupied, v)
		}
	}

	s.round++
	if !anyHeld {
		s.fullyActiveRounds++
	}
}

// hashPtr is the hash contribution of pointer state (v, p).
func hashPtr(v int, p int32) uint64 {
	return xrand.Mix64(uint64(v)<<32 | uint64(uint32(p)) | 1<<63)
}

// hashCnt is the hash contribution of agent count state (v, c); zero counts
// contribute nothing so that untouched nodes need no bookkeeping.
func hashCnt(v int, c int64) uint64 {
	if c == 0 {
		return 0
	}
	return xrand.Mix64(uint64(v)*0x9e3779b97f4a7c15 + uint64(c))
}

// fullHash recomputes the configuration hash from scratch.
func (s *System) fullHash() uint64 {
	var h uint64
	for v := 0; v < s.n; v++ {
		h += hashPtr(v, s.ptr[v])
		h += hashCnt(v, s.agents[v])
	}
	return h
}

// ConfigHash returns the incrementally maintained hash of the current
// configuration (pointers and agent positions; visit counters excluded).
// Equal configurations have equal hashes; unequal ones collide with
// probability about 2^-64, so cycle detection confirms with StateEqual.
func (s *System) ConfigHash() uint64 { return s.hash }

// StateEqual reports whether the configurations (pointers and agent
// multisets) of s and o are identical. Both systems must share a topology.
func (s *System) StateEqual(o *System) bool {
	if s.n != o.n {
		return false
	}
	for v := 0; v < s.n; v++ {
		if s.ptr[v] != o.ptr[v] || s.agents[v] != o.agents[v] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the system sharing only the immutable graph.
func (s *System) Clone() *System {
	c := &System{
		g:                 s.g,
		n:                 s.n,
		k:                 s.k,
		ptr:               append([]int32(nil), s.ptr...),
		ptr0:              append([]int32(nil), s.ptr0...),
		agents:            append([]int64(nil), s.agents...),
		ag0:               append([]int64(nil), s.ag0...),
		occupied:          append([]int(nil), s.occupied...),
		inOcc:             append([]bool(nil), s.inOcc...),
		visits:            append([]int64(nil), s.visits...),
		exits:             append([]int64(nil), s.exits...),
		coveredAt:         append([]int64(nil), s.coveredAt...),
		covered:           s.covered,
		coverRound:        s.coverRound,
		round:             s.round,
		fullyActiveRounds: s.fullyActiveRounds,
		hash:              s.hash,
		lastTouch:         make([]int64, s.n),
		oldCnt:            make([]int64, s.n),
		visitStamp:        make([]int64, s.n),
		recordFlows:       s.recordFlows,
		recordArcs:        s.recordArcs,
	}
	if s.recordFlows {
		c.flows = append([]int64(nil), s.flows...)
		c.flowsTouched = append([]int(nil), s.flowsTouched...)
	}
	if s.recordArcs {
		c.arcCount = append([]int64(nil), s.arcCount...)
	}
	return c
}

// Reset restores the initial configuration (agents, pointers) and clears all
// counters, allowing a fresh run on the same topology without reallocation.
func (s *System) Reset() {
	copy(s.ptr, s.ptr0)
	copy(s.agents, s.ag0)
	s.occupied = s.occupied[:0]
	s.covered = 0
	s.coverRound = -1
	s.round = 0
	s.fullyActiveRounds = 0
	for v := 0; v < s.n; v++ {
		s.inOcc[v] = false
		s.exits[v] = 0
		s.visits[v] = 0
		s.coveredAt[v] = -1
		s.lastTouch[v] = 0
		s.visitStamp[v] = 0
	}
	s.lastVisited = s.lastVisited[:0]
	for v := 0; v < s.n; v++ {
		if s.agents[v] > 0 {
			s.occupied = append(s.occupied, v)
			s.inOcc[v] = true
			s.visits[v] = s.agents[v]
			s.coveredAt[v] = 0
			s.covered++
		}
	}
	if s.covered == s.n {
		s.coverRound = 0
	}
	if s.recordFlows {
		for i := range s.flows {
			s.flows[i] = 0
		}
		s.flowsTouched = s.flowsTouched[:0]
	}
	if s.recordArcs {
		for i := range s.arcCount {
			s.arcCount[i] = 0
		}
	}
	s.hash = s.fullHash()
}

// Package core implements the multi-agent rotor-router system of Klasing,
// Kosowski, Pająk and Sauerwald (PODC 2013 / Distrib. Comput. 2017), §1.3.
//
// A configuration is a triple ((ρ_v), (π_v), {r_1..r_k}): the fixed cyclic
// port orders, the current port pointers, and the multiset of agent
// positions. In every synchronous round each agent at node v traverses the
// arc indicated by π_v and the pointer advances; a node holding c agents at
// the start of a round emits them along ports π_v, next(π_v), ...,
// next^{c-1}(π_v) and its pointer ends advanced by c. Agents are
// indistinguishable, so the engine stores agent counts per node and
// processes only occupied nodes, making a round cost O(Σ_{occupied v}
// min(deg v, agents at v)) instead of O(k).
//
// Stepping is tiered (see internal/kernel): on ring and path topologies
// with dense-enough agent populations, NewSystem selects a specialized flat
// kernel whose rounds are a few linear scans with direct v±1 addressing and
// closed-form degree-2 port splits — bit-identical to the generic engine,
// several times faster. WithKernelMode forces either tier; flow or arc
// recording, per-round holds, and anything off the ring/path fall back to
// the generic path automatically.
//
// The engine also supports delayed deployments (§2.1): StepHeld freezes a
// chosen number of agents per node for one round, which is the primitive
// that the deploy package's schedules are built from.
package core

import (
	"errors"
	"fmt"

	"rotorring/internal/graph"
	"rotorring/internal/kernel"
)

// ErrNotCovered is returned by RunUntilCovered when the round budget is
// exhausted before every node has been visited.
var ErrNotCovered = errors.New("core: cover-time budget exhausted")

// KernelMode selects the stepping tier of a System.
type KernelMode int

// Kernel modes.
const (
	// KernelAuto picks the specialized kernel when the topology has one and
	// the agent population is dense enough to profit (k ≥ n/8), the generic
	// engine otherwise. This is the default.
	KernelAuto KernelMode = iota
	// KernelGeneric forces the generic port-labeled-graph engine.
	KernelGeneric
	// KernelFast forces the specialized kernel whenever the topology has
	// one, regardless of density; unsupported topologies silently use the
	// generic engine (so grids mixing ring and torus cells need no
	// per-cell configuration).
	KernelFast
	// KernelParallel is KernelFast plus the deterministic parallel-within-
	// round stepper on shapes that support one (currently the ring): node
	// ranges shard across GOMAXPROCS goroutines with results bit-identical
	// to the serial kernel at every shard count. Shapes without a parallel
	// stepper run the serial kernel; unsupported topologies the generic
	// engine — the same silent degradation as KernelFast.
	KernelParallel
)

func (m KernelMode) String() string {
	switch m {
	case KernelGeneric:
		return "generic"
	case KernelFast:
		return "fast"
	case KernelParallel:
		return "parallel"
	default:
		return "auto"
	}
}

// System is a running multi-agent rotor-router. It is not safe for
// concurrent use; experiments run independent Systems per goroutine.
type System struct {
	g *graph.Graph
	// g0 is the construction-time topology. Rewire (perturbation scenarios)
	// swaps g; Reset restores g0 along with the initial configuration.
	g0 *graph.Graph
	n  int
	k  int64

	// st holds the flat configuration state shared with the stepping
	// kernels; see kernel.State.
	st kernel.State

	// fast is the specialized kernel selected for this system (nil when
	// only the generic engine applies). Fully-active rounds without flow
	// or arc recording run on it — and held rounds too, when the kernel
	// implements kernel.HeldStepper; everything else takes the generic
	// path. parShards fixes the shard count under KernelParallel (0 =
	// GOMAXPROCS at step time).
	fast      kernel.Stepper
	kmode     KernelMode
	parShards int

	ptr0 []int32 // initial pointers, for the arc-traversal law and Reset
	ag0  []int64 // initial agent counts, for Reset

	// The occupied list is generic-engine bookkeeping: specialized kernels
	// do not maintain it, so it is rebuilt lazily (occValid) when the
	// generic engine or an accessor next needs it. occSorted tracks whether
	// the list is in ascending node order — rebuilds produce it sorted, the
	// generic move loop's candidate rebuild does not — so ForEachOccupied
	// can pin its iteration order without re-sorting every round.
	occupied  []int  // nodes with agents[v] > 0
	inOcc     []bool // membership flags for occupied
	occValid  bool
	occSorted bool

	// lastVisitedFast marks that the last completed round ran on a
	// specialized kernel, which skips the per-round visited list: in a
	// fully-active round the visited nodes are exactly the occupied ones,
	// so LastVisited derives the list on demand.
	lastVisitedFast bool

	// Round-stamped change tracking for incremental hashing: the first
	// modification of agents[v] in a round records the pre-round count.
	// Only maintained while hashing is enabled (WithConfigHash).
	lastTouch []int64 // round stamp of last touch, 0 = never
	oldCnt    []int64 // agents[v] before this round's first modification
	changed   []int   // nodes touched this round

	// Optional per-round flow recording (per arc of the last completed
	// round), used by the ring domain tracker.
	recordFlows  bool
	flows        []int64
	flowsTouched []int

	// Optional cumulative per-arc traversal counters.
	recordArcs bool
	arcCount   []int64

	// Optional per-move arc observer (SetArcObserver): called from the
	// generic move loop for every (source, port, count) batch of agents
	// traversing an arc. Like flow/arc recording, an installed observer
	// excludes the specialized kernels (which do not fire it).
	arcObs func(v, port int, agents int64)

	// Scratch buffers reused across rounds.
	srcNode []int
	srcCnt  []int64
	cand    []int
}

// Option configures a System at construction time.
type Option func(*config) error

type config struct {
	positions []int
	counts    []int64
	pointers  []int
	flows     bool
	arcs      bool
	hash      bool
	kmode     KernelMode
	parShards int
}

// WithAgentsAt places one agent on each listed node (repeats allowed:
// listing a node twice places two agents there).
func WithAgentsAt(positions ...int) Option {
	return func(c *config) error {
		c.positions = append([]int(nil), positions...)
		return nil
	}
}

// WithAgentCounts places counts[v] agents on node v; len(counts) must equal
// the number of nodes.
func WithAgentCounts(counts []int64) Option {
	return func(c *config) error {
		c.counts = append([]int64(nil), counts...)
		return nil
	}
}

// WithPointers sets the initial port pointers; len(pointers) must equal the
// number of nodes and pointers[v] must be a valid port of v. Initializers
// for the paper's adversarial arrangements live in init.go.
func WithPointers(pointers []int) Option {
	return func(c *config) error {
		c.pointers = append([]int(nil), pointers...)
		return nil
	}
}

// WithFlowRecording enables per-round arc flow recording (LastFlow), needed
// by the domain tracker. It costs O(moved arcs) extra per round and pins
// the system to the generic stepping engine.
func WithFlowRecording() Option {
	return func(c *config) error {
		c.flows = true
		return nil
	}
}

// WithArcCounting enables cumulative per-arc traversal counters
// (ArcTraversals), used by the Eulerian-circulation checks. Like flow
// recording it pins the system to the generic stepping engine.
func WithArcCounting() Option {
	return func(c *config) error {
		c.arcs = true
		return nil
	}
}

// WithConfigHash enables incremental configuration hashing from round zero.
// Hashing costs two mixes per moved node per round, so it is off by
// default; FindLimitCycle and MeasureReturnTime enable it on demand (see
// EnableConfigHash), and ConfigHash self-enables on first call.
func WithConfigHash() Option {
	return func(c *config) error {
		c.hash = true
		return nil
	}
}

// WithKernelMode selects the stepping tier; the default is KernelAuto.
func WithKernelMode(m KernelMode) Option {
	return func(c *config) error {
		if m < KernelAuto || m > KernelParallel {
			return fmt.Errorf("core: invalid kernel mode %d", int(m))
		}
		c.kmode = m
		return nil
	}
}

// WithParallelShards fixes the shard count of the KernelParallel stepper
// instead of deriving it from GOMAXPROCS at step time. Results are
// bit-identical at every shard count; the knob exists for benchmarks and
// the differential tests that prove that claim. It has no effect in other
// kernel modes.
func WithParallelShards(shards int) Option {
	return func(c *config) error {
		if shards < 0 {
			return fmt.Errorf("core: negative shard count %d", shards)
		}
		c.parShards = shards
		return nil
	}
}

// NewSystem creates a rotor-router on g. At least one agent must be placed;
// pointers default to port 0 everywhere.
func NewSystem(g *graph.Graph, opts ...Option) (*System, error) {
	var c config
	for _, o := range opts {
		if err := o(&c); err != nil {
			return nil, err
		}
	}
	n := g.NumNodes()

	s := &System{
		g:         g,
		g0:        g,
		n:         n,
		st:        kernel.NewState(n),
		kmode:     c.kmode,
		parShards: c.parShards,
		ptr0:      make([]int32, n),
		ag0:       make([]int64, n),
		inOcc:     make([]bool, n),
		lastTouch: make([]int64, n),
		oldCnt:    make([]int64, n),
	}

	if c.pointers != nil {
		if len(c.pointers) != n {
			return nil, fmt.Errorf("core: %d pointers for %d nodes", len(c.pointers), n)
		}
		for v, p := range c.pointers {
			if p < 0 || p >= g.Degree(v) {
				return nil, fmt.Errorf("core: pointer %d invalid at node %d (degree %d)", p, v, g.Degree(v))
			}
			s.st.Ptr[v] = int32(p)
		}
	}
	copy(s.ptr0, s.st.Ptr)

	switch {
	case c.positions != nil && c.counts != nil:
		return nil, errors.New("core: WithAgentsAt and WithAgentCounts are mutually exclusive")
	case c.positions != nil:
		for _, v := range c.positions {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("core: agent position %d out of range [0,%d)", v, n)
			}
			s.st.Agents[v]++
			s.k++
		}
	case c.counts != nil:
		if len(c.counts) != n {
			return nil, fmt.Errorf("core: %d agent counts for %d nodes", len(c.counts), n)
		}
		for v, cnt := range c.counts {
			if cnt < 0 {
				return nil, fmt.Errorf("core: negative agent count at node %d", v)
			}
			s.st.Agents[v] = cnt
			s.k += cnt
		}
	}
	if s.k == 0 {
		return nil, errors.New("core: no agents placed")
	}
	copy(s.ag0, s.st.Agents)

	for v := 0; v < n; v++ {
		s.st.CoveredAt[v] = -1
		if s.st.Agents[v] > 0 {
			s.occupied = append(s.occupied, v)
			s.inOcc[v] = true
			s.st.Visits[v] = s.st.Agents[v] // n_v(0)
			s.st.CoveredAt[v] = 0
			s.st.Covered++
		}
	}
	s.occValid = true
	s.occSorted = true
	if s.st.Covered == n {
		s.st.CoverRound = 0
	}

	if c.flows {
		s.recordFlows = true
		s.flows = make([]int64, g.NumArcs())
	}
	if c.arcs {
		s.recordArcs = true
		s.arcCount = make([]int64, g.NumArcs())
	}

	s.reselectKernel()

	if c.hash {
		s.EnableConfigHash()
	}
	return s, nil
}

// reselectKernel re-evaluates the specialized-kernel choice for the current
// graph, agent count and mode. Flow and arc recording happen inside the
// generic move loop, so they exclude the specialized kernels. Called at
// construction and again whenever the topology or population changes
// (Rewire, AddAgents, RemoveAgents): fast paths re-specialize when the new
// shape has a kernel and fall back to the generic engine otherwise.
func (s *System) reselectKernel() {
	if s.kmode != KernelGeneric && !s.recordFlows && !s.recordArcs && s.arcObs == nil {
		force := s.kmode == KernelFast || s.kmode == KernelParallel
		s.fast = kernel.Select(s.g, s.k, force)
		if s.kmode == KernelParallel {
			// Parallelize returns a fresh stepper (it carries merge
			// scratch); shapes without a parallel tier keep the serial
			// kernel it was handed.
			s.fast = kernel.Parallelize(s.fast, s.parShards)
		}
	} else {
		s.fast = nil
	}
}

// SetArcObserver installs fn as the per-move arc observer. During every
// subsequent round, fn is invoked once per (source vertex, port) group of
// agents that traverses the corresponding arc, with the number of agents in
// the group. Observation happens inside the generic move loop, so a non-nil
// observer excludes the specialized kernels (like flow recording); pass nil
// to remove the observer and restore fast-kernel eligibility. The observer
// is not copied by Clone.
func (s *System) SetArcObserver(fn func(v, port int, agents int64)) {
	s.arcObs = fn
	s.reselectKernel()
}

// Graph returns the topology the system runs on.
func (s *System) Graph() *graph.Graph { return s.g }

// NumAgents returns k.
func (s *System) NumAgents() int64 { return s.k }

// Round returns the number of completed rounds.
func (s *System) Round() int64 { return s.st.Round }

// AgentsAt returns the number of agents currently at v.
func (s *System) AgentsAt(v int) int64 { return s.st.Agents[v] }

// AgentCountsView returns the live per-node agent-count array, indexed by
// node. It is a zero-copy view for flat read loops on hot paths (the
// schedule runner's hold-draw fill) where per-node AgentsAt calls or a
// ForEachOccupied closure would dominate. Callers must not mutate it, and
// must re-fetch it after any step: the fused kernels advance by buffer
// swap, so the slice goes stale each round.
func (s *System) AgentCountsView() []int64 { return s.st.Agents }

// Pointer returns the current port pointer of v.
func (s *System) Pointer(v int) int { return int(s.st.Ptr[v]) }

// InitialPointer returns the pointer of v at construction time.
func (s *System) InitialPointer(v int) int { return int(s.ptr0[v]) }

// KernelName reports the stepping kernel fully-active rounds run on:
// "ring", "path" or "ring-parallel" for the specialized tiers, "generic"
// otherwise.
func (s *System) KernelName() string {
	if s.fast == nil {
		return "generic"
	}
	return s.fast.Name()
}

// Visits returns n_v(t): the initial agent count of v plus the number of
// arrivals at v during rounds [1, t], matching the paper's counters.
func (s *System) Visits(v int) int64 { return s.st.Visits[v] }

// Exits returns e_v(t): the number of departures from v during [1, t].
func (s *System) Exits(v int) int64 { return s.st.Exits[v] }

// Covered returns how many nodes have been covered so far.
func (s *System) Covered() int { return s.st.Covered }

// CoveredAt returns the round at which v was first covered (0 for nodes
// holding agents initially) and -1 if v is still uncovered.
func (s *System) CoveredAt(v int) int64 { return s.st.CoveredAt[v] }

// CoverRound returns the first round after which every node had been
// visited, or -1 if the graph is not yet covered.
func (s *System) CoverRound() int64 { return s.st.CoverRound }

// FullyActiveRounds returns how many completed rounds moved every agent
// (no holds) — the quantity τ in the slow-down lemma (Lemma 3).
func (s *System) FullyActiveRounds() int64 { return s.st.FullyActiveRounds }

// Positions returns the sorted multiset of agent positions.
func (s *System) Positions() []int {
	out := make([]int, 0, s.k)
	for v := 0; v < s.n; v++ {
		for i := int64(0); i < s.st.Agents[v]; i++ {
			out = append(out, v)
		}
	}
	return out
}

// ensureOccupied rebuilds the occupied list after specialized-kernel rounds
// (which track only the flat count array).
func (s *System) ensureOccupied() {
	if s.occValid {
		return
	}
	s.occupied = s.occupied[:0]
	for v := 0; v < s.n; v++ {
		occ := s.st.Agents[v] > 0
		s.inOcc[v] = occ
		if occ {
			s.occupied = append(s.occupied, v)
		}
	}
	s.occValid = true
	s.occSorted = true
}

// Occupied returns a copy of the list of nodes currently holding agents.
func (s *System) Occupied() []int {
	s.ensureOccupied()
	return append([]int(nil), s.occupied...)
}

// LastVisited returns the nodes that received at least one arrival during
// the last completed round, in no particular order. The slice is reused on
// the next Step; callers must not retain it.
func (s *System) LastVisited() []int {
	if s.lastVisitedFast {
		// Kernel rounds are fully active: every agent moved, so the
		// arrival set of the round is exactly the occupied set after it.
		s.st.LastVisited = s.st.LastVisited[:0]
		for v, a := range s.st.Agents {
			if a > 0 {
				s.st.LastVisited = append(s.st.LastVisited, v)
			}
		}
		s.lastVisitedFast = false
	}
	return s.st.LastVisited
}

// LastFlow returns how many agents traversed the arc leaving v through port
// p during the last completed round. Requires WithFlowRecording.
func (s *System) LastFlow(v, p int) int64 {
	return s.flows[s.g.ArcID(v, p)]
}

// ArcTraversals returns the cumulative number of traversals of the arc
// leaving v through port p. Requires WithArcCounting.
func (s *System) ArcTraversals(v, p int) int64 {
	return s.arcCount[s.g.ArcID(v, p)]
}

// Step runs one synchronous round with every agent active.
func (s *System) Step() {
	if s.fast != nil {
		s.fast.Step(&s.st)
		s.occValid = false
		s.lastVisitedFast = true
		return
	}
	s.StepHeld(nil)
}

// Run executes the given number of rounds.
func (s *System) Run(rounds int64) {
	for i := int64(0); i < rounds; i++ {
		s.Step()
	}
}

// RunUntilCovered steps until every node has been visited, and returns the
// cover time C (the first round t with all nodes covered). If maxRounds
// elapse first it returns the rounds spent wrapped in ErrNotCovered.
func (s *System) RunUntilCovered(maxRounds int64) (int64, error) {
	for s.st.Covered < s.n {
		if s.st.Round >= maxRounds {
			return s.st.Round, fmt.Errorf("%w after %d rounds (%d/%d nodes)",
				ErrNotCovered, s.st.Round, s.st.Covered, s.n)
		}
		s.Step()
	}
	return s.st.CoverRound, nil
}

// touchAgents records the pre-round agent count of v the first time v's
// count changes in the current round, for end-of-round hash updates.
func (s *System) touchAgents(v int) {
	stamp := s.st.Round + 1
	if s.lastTouch[v] != stamp {
		s.lastTouch[v] = stamp
		s.oldCnt[v] = s.st.Agents[v]
		s.changed = append(s.changed, v)
	}
}

// StepHeld runs one round of a delayed deployment D (§2.1): held[v] agents
// at node v skip their move this round (clamped to the number present). A
// nil held slice means every agent is active. Held agents do not advance
// the pointer — exactly the paper's D(v,t) semantics.
//
// Held rounds run on the specialized kernel when it implements the held
// tier (ring and path do; see kernel.HeldStepper), bit-identically to the
// generic engine below, which everything else falls back to. StepHeld(nil)
// on a system with a specialized kernel is equivalent to Step but
// deliberately takes the generic path — it is the reference arm of the
// differential tests.
func (s *System) StepHeld(held []int64) {
	if held != nil && s.fast != nil {
		if hs, ok := s.fast.(kernel.HeldStepper); ok {
			hs.StepHeld(&s.st, held)
			s.occValid = false
			// The kernel maintains the round's visited list eagerly (held
			// stayers are occupied but not visited, so it cannot be derived
			// from occupancy the way fully-active rounds allow).
			s.lastVisitedFast = false
			return
		}
	}
	s.ensureOccupied()

	// Zero last round's flow records lazily (touched arcs only).
	if s.recordFlows {
		for _, id := range s.flowsTouched {
			s.flows[id] = 0
		}
		s.flowsTouched = s.flowsTouched[:0]
	}

	hashOn := s.st.HashOn

	// Snapshot sources: moves are based on start-of-round positions.
	s.srcNode = s.srcNode[:0]
	s.srcCnt = s.srcCnt[:0]
	s.changed = s.changed[:0]
	s.st.LastVisited = s.st.LastVisited[:0]
	s.lastVisitedFast = false
	anyHeld := false
	for _, v := range s.occupied {
		c := s.st.Agents[v]
		var h int64
		if held != nil && held[v] > 0 {
			h = held[v]
			if h > c {
				h = c
			}
		}
		if h > 0 {
			anyHeld = true
		}
		s.srcNode = append(s.srcNode, v)
		s.srcCnt = append(s.srcCnt, c-h)
		if hashOn {
			s.touchAgents(v)
		}
		s.st.Agents[v] = h // held agents stay; arrivals accumulate below
	}

	// Candidates for the new occupied list: all old sources (which may
	// retain held agents or receive arrivals) plus all destinations.
	s.cand = s.cand[:0]
	s.cand = append(s.cand, s.srcNode...)
	for _, v := range s.srcNode {
		s.inOcc[v] = false
	}

	for i, v := range s.srcNode {
		m := s.srcCnt[i]
		if m == 0 {
			continue
		}
		d := int64(s.g.Degree(v))
		p := int64(s.st.Ptr[v])
		// The m departing agents use ports p, p+1, ..., p+m-1 (mod d):
		// port offset j carries ceil((m-j)/d) agents.
		lim := d
		if m < d {
			lim = m
		}
		for j := int64(0); j < lim; j++ {
			cnt := (m - j + d - 1) / d
			port := int((p + j) % d)
			dest := s.g.Neighbor(v, port)
			if hashOn {
				s.touchAgents(dest)
			}
			if s.st.Agents[dest] == 0 {
				s.cand = append(s.cand, dest)
			}
			s.st.Agents[dest] += cnt
			if s.st.Visits[dest] == 0 {
				s.st.CoveredAt[dest] = s.st.Round + 1
				s.st.Covered++
				if s.st.Covered == s.n {
					s.st.CoverRound = s.st.Round + 1
				}
			}
			s.st.Visits[dest] += cnt
			if s.st.VisitStamp[dest] != s.st.Round+1 {
				s.st.VisitStamp[dest] = s.st.Round + 1
				s.st.LastVisited = append(s.st.LastVisited, dest)
			}
			if s.recordFlows {
				id := s.g.ArcID(v, port)
				if s.flows[id] == 0 {
					s.flowsTouched = append(s.flowsTouched, id)
				}
				s.flows[id] += cnt
			}
			if s.recordArcs {
				s.arcCount[s.g.ArcID(v, port)] += cnt
			}
			if s.arcObs != nil {
				s.arcObs(v, port, cnt)
			}
		}
		s.st.Exits[v] += m
		newPtr := int32((p + m) % d)
		if hashOn {
			s.st.Hash += kernel.HashPtr(v, newPtr) - kernel.HashPtr(v, s.st.Ptr[v])
		}
		s.st.Ptr[v] = newPtr
	}

	// Fold agent-count changes into the incremental hash.
	if hashOn {
		for _, v := range s.changed {
			s.st.Hash += kernel.HashCnt(v, s.st.Agents[v]) - kernel.HashCnt(v, s.oldCnt[v])
		}
	}

	// Rebuild the occupied list from candidates. Candidate order mixes
	// sources and discovery order, so the list is no longer sorted.
	s.occupied = s.occupied[:0]
	for _, v := range s.cand {
		if s.st.Agents[v] > 0 && !s.inOcc[v] {
			s.inOcc[v] = true
			s.occupied = append(s.occupied, v)
		}
	}
	s.occSorted = false

	s.st.Round++
	if !anyHeld {
		s.st.FullyActiveRounds++
	}
}

// fullHash recomputes the configuration hash from scratch.
func (s *System) fullHash() uint64 {
	return kernel.FullHash(s.st.Ptr, s.st.Agents)
}

// EnableConfigHash switches on incremental configuration hashing (one full
// O(n) hash now, two mixes per moved node per subsequent round). It is a
// no-op when hashing is already on. Cycle detection calls it before taking
// snapshots so every clone inherits the enabled hash.
func (s *System) EnableConfigHash() {
	if s.st.HashOn {
		return
	}
	s.st.HashOn = true
	s.st.Hash = s.fullHash()
}

// HashEnabled reports whether incremental configuration hashing is on.
func (s *System) HashEnabled() bool { return s.st.HashOn }

// ConfigHash returns the incrementally maintained hash of the current
// configuration (pointers and agent positions; visit counters excluded),
// enabling hash maintenance on first use (WithConfigHash enables it from
// round zero instead). Equal configurations have equal hashes; unequal
// ones collide with probability about 2^-64, so cycle detection confirms
// with StateEqual.
func (s *System) ConfigHash() uint64 {
	s.EnableConfigHash()
	return s.st.Hash
}

// StateEqual reports whether the configurations (pointers and agent
// multisets) of s and o are identical. Both systems must share a topology.
func (s *System) StateEqual(o *System) bool {
	if s.n != o.n {
		return false
	}
	for v := 0; v < s.n; v++ {
		if s.st.Ptr[v] != o.st.Ptr[v] || s.st.Agents[v] != o.st.Agents[v] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the system sharing only the immutable graph
// and the (stateless) stepping kernel.
func (s *System) Clone() *System {
	c := &System{
		g:               s.g,
		g0:              s.g0,
		n:               s.n,
		k:               s.k,
		st:              s.st.Clone(),
		fast:            s.fast,
		kmode:           s.kmode,
		parShards:       s.parShards,
		ptr0:            append([]int32(nil), s.ptr0...),
		ag0:             append([]int64(nil), s.ag0...),
		occupied:        append([]int(nil), s.occupied...),
		inOcc:           append([]bool(nil), s.inOcc...),
		occValid:        s.occValid,
		occSorted:       s.occSorted,
		lastVisitedFast: s.lastVisitedFast,
		lastTouch:       make([]int64, s.n),
		oldCnt:          make([]int64, s.n),

		recordFlows: s.recordFlows,
		recordArcs:  s.recordArcs,
	}
	if s.recordFlows {
		c.flows = append([]int64(nil), s.flows...)
		c.flowsTouched = append([]int(nil), s.flowsTouched...)
	}
	if s.recordArcs {
		c.arcCount = append([]int64(nil), s.arcCount...)
	}
	// The arc observer is not cloned: it is a closure over caller state tied
	// to the original system. Without it the clone may be fast-kernel
	// eligible again, so re-evaluate instead of inheriting s.fast == nil.
	// A parallel stepper carries per-shard merge scratch that must not be
	// shared between systems, so parallel clones also re-select to get
	// their own instance.
	if s.arcObs != nil || s.kmode == KernelParallel {
		c.reselectKernel()
	}
	return c
}

// Reset restores the initial configuration (topology, agents, pointers) and
// clears all counters, allowing a fresh run without reallocation. A system
// whose graph was swapped by Rewire returns to its construction-time
// topology, and a population changed by AddAgents/RemoveAgents returns to
// its initial size.
func (s *System) Reset() {
	if s.g != s.g0 {
		s.g = s.g0
		s.resizeArcBuffers()
	}
	s.k = 0
	for _, c := range s.ag0 {
		s.k += c
	}
	copy(s.st.Ptr, s.ptr0)
	copy(s.st.Agents, s.ag0)
	s.reselectKernel()
	s.occupied = s.occupied[:0]
	s.st.Covered = 0
	s.st.CoverRound = -1
	s.st.Round = 0
	s.st.FullyActiveRounds = 0
	for v := 0; v < s.n; v++ {
		s.inOcc[v] = false
		s.st.Exits[v] = 0
		s.st.Visits[v] = 0
		s.st.CoveredAt[v] = -1
		s.lastTouch[v] = 0
		s.st.VisitStamp[v] = 0
	}
	s.st.LastVisited = s.st.LastVisited[:0]
	s.lastVisitedFast = false
	for v := 0; v < s.n; v++ {
		if s.st.Agents[v] > 0 {
			s.occupied = append(s.occupied, v)
			s.inOcc[v] = true
			s.st.Visits[v] = s.st.Agents[v]
			s.st.CoveredAt[v] = 0
			s.st.Covered++
		}
	}
	s.occValid = true
	s.occSorted = true
	if s.st.Covered == s.n {
		s.st.CoverRound = 0
	}
	if s.recordFlows {
		for i := range s.flows {
			s.flows[i] = 0
		}
		s.flowsTouched = s.flowsTouched[:0]
	}
	if s.recordArcs {
		for i := range s.arcCount {
			s.arcCount[i] = 0
		}
	}
	if s.st.HashOn {
		s.st.Hash = s.fullHash()
	}
}

package core

import (
	"errors"
	"testing"
	"testing/quick"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// refSystem is a deliberately naive reference implementation of §1.3 used to
// cross-check the batched engine: it keeps one entry per agent and moves
// them one at a time, advancing pointers on departure.
type refSystem struct {
	g      *graph.Graph
	ptr    []int
	agents []int // one position per agent
	visits []int64
	exits  []int64
}

func newRefSystem(g *graph.Graph, ptr []int, positions []int) *refSystem {
	r := &refSystem{
		g:      g,
		ptr:    append([]int(nil), ptr...),
		agents: append([]int(nil), positions...),
		visits: make([]int64, g.NumNodes()),
		exits:  make([]int64, g.NumNodes()),
	}
	for _, v := range positions {
		r.visits[v]++
	}
	return r
}

func (r *refSystem) step() {
	// Move agents sequentially based on start-of-round positions; the
	// pointer advances at each departure, so co-located agents fan out.
	next := make([]int, len(r.agents))
	for i, v := range r.agents {
		p := r.ptr[v]
		dest := r.g.Neighbor(v, p)
		r.ptr[v] = (p + 1) % r.g.Degree(v)
		r.exits[v]++
		r.visits[dest]++
		next[i] = dest
	}
	r.agents = next
}

func (r *refSystem) counts() []int64 {
	c := make([]int64, r.g.NumNodes())
	for _, v := range r.agents {
		c[v]++
	}
	return c
}

// newTestSystem builds a System and fails the test on error.
func newTestSystem(t *testing.T, g *graph.Graph, opts ...Option) *System {
	t.Helper()
	s, err := NewSystem(g, opts...)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return s
}

func TestEngineMatchesReferenceOnRandomConfigs(t *testing.T) {
	graphs := []*graph.Graph{
		graph.Ring(9),
		graph.Path(7),
		graph.Grid2D(4, 3),
		graph.Complete(5),
		graph.Star(6),
		graph.CompleteBinaryTree(3),
	}
	rng := xrand.New(12345)
	for _, g := range graphs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			for trial := 0; trial < 10; trial++ {
				k := 1 + rng.Intn(7)
				positions := RandomPositions(g.NumNodes(), k, rng)
				ptr := PointersRandom(g, rng)
				s := newTestSystem(t, g, WithAgentsAt(positions...), WithPointers(ptr))
				ref := newRefSystem(g, ptr, positions)
				for round := 1; round <= 120; round++ {
					s.Step()
					ref.step()
					want := ref.counts()
					for v := 0; v < g.NumNodes(); v++ {
						if s.AgentsAt(v) != want[v] {
							t.Fatalf("trial %d round %d: agents at %d = %d, ref %d",
								trial, round, v, s.AgentsAt(v), want[v])
						}
						if s.Pointer(v) != ref.ptr[v] {
							t.Fatalf("trial %d round %d: pointer at %d = %d, ref %d",
								trial, round, v, s.Pointer(v), ref.ptr[v])
						}
						if s.Visits(v) != ref.visits[v] {
							t.Fatalf("trial %d round %d: visits at %d = %d, ref %d",
								trial, round, v, s.Visits(v), ref.visits[v])
						}
						if s.Exits(v) != ref.exits[v] {
							t.Fatalf("trial %d round %d: exits at %d = %d, ref %d",
								trial, round, v, s.Exits(v), ref.exits[v])
						}
					}
				}
			}
		})
	}
}

func TestConstructionErrors(t *testing.T) {
	g := graph.Ring(5)
	if _, err := NewSystem(g); err == nil {
		t.Error("no agents accepted")
	}
	if _, err := NewSystem(g, WithAgentsAt(7)); err == nil {
		t.Error("out-of-range agent accepted")
	}
	if _, err := NewSystem(g, WithAgentsAt(0), WithPointers([]int{0, 0})); err == nil {
		t.Error("short pointer slice accepted")
	}
	if _, err := NewSystem(g, WithAgentsAt(0), WithPointers([]int{0, 0, 0, 0, 5})); err == nil {
		t.Error("invalid port accepted")
	}
	if _, err := NewSystem(g, WithAgentsAt(0), WithAgentCounts(make([]int64, 5))); err == nil {
		t.Error("conflicting placement options accepted")
	}
	if _, err := NewSystem(g, WithAgentCounts([]int64{1, -1, 0, 0, 0})); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := NewSystem(g, WithAgentCounts([]int64{0, 0, 0, 0, 0})); err == nil {
		t.Error("zero agents via counts accepted")
	}
}

func TestInitialState(t *testing.T) {
	g := graph.Ring(8)
	s := newTestSystem(t, g, WithAgentsAt(2, 2, 5))
	if s.NumAgents() != 3 {
		t.Fatalf("k = %d", s.NumAgents())
	}
	if s.AgentsAt(2) != 2 || s.AgentsAt(5) != 1 {
		t.Fatalf("placement wrong: %v", s.Positions())
	}
	if s.Visits(2) != 2 || s.Visits(5) != 1 || s.Visits(0) != 0 {
		t.Fatal("initial visit counters wrong")
	}
	if s.Covered() != 2 {
		t.Fatalf("covered = %d", s.Covered())
	}
	if s.CoveredAt(2) != 0 || s.CoveredAt(0) != -1 {
		t.Fatal("coveredAt wrong")
	}
	if got := s.Positions(); len(got) != 3 || got[0] != 2 || got[1] != 2 || got[2] != 5 {
		t.Fatalf("Positions() = %v", got)
	}
}

func TestAgentConservation(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := graph.Ring(5 + rng.Intn(40))
		k := 1 + rng.Intn(10)
		s, err := NewSystem(g,
			WithAgentsAt(RandomPositions(g.NumNodes(), k, rng)...),
			WithPointers(PointersRandom(g, rng)))
		if err != nil {
			return false
		}
		s.Run(int64(100 + rng.Intn(200)))
		var total int64
		for v := 0; v < g.NumNodes(); v++ {
			total += s.AgentsAt(v)
		}
		return total == int64(k)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExitVisitBalance(t *testing.T) {
	// For the undelayed deployment, e_v(t+1) = n_v(t) (paper Eq. 2 with
	// D = 0): everything that was at v at the end of round t leaves in
	// round t+1.
	g := graph.Grid2D(4, 4)
	rng := xrand.New(5)
	s := newTestSystem(t, g,
		WithAgentsAt(RandomPositions(16, 5, rng)...),
		WithPointers(PointersRandom(g, rng)))
	for round := 0; round < 100; round++ {
		prevVisits := make([]int64, 16)
		for v := range prevVisits {
			prevVisits[v] = s.Visits(v)
		}
		s.Step()
		for v := 0; v < 16; v++ {
			if s.Exits(v) != prevVisits[v] {
				t.Fatalf("round %d: e_%d = %d, want n_%d(t-1) = %d",
					round+1, v, s.Exits(v), v, prevVisits[v])
			}
		}
	}
}

func TestArcTraversalLaw(t *testing.T) {
	// Paper §1.3: with ports labeled so that the initial pointer has label
	// 0, the number of traversals of arc (v,u) after any round equals
	// ceil((e_v - port_v(u)) / deg(v)).
	graphs := []*graph.Graph{graph.Ring(7), graph.Complete(5), graph.Grid2D(3, 3)}
	rng := xrand.New(99)
	for _, g := range graphs {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			s := newTestSystem(t, g,
				WithAgentsAt(RandomPositions(g.NumNodes(), 4, rng)...),
				WithPointers(PointersRandom(g, rng)),
				WithArcCounting())
			for _, horizon := range []int64{1, 7, 50, 200} {
				for s.Round() < horizon {
					s.Step()
				}
				for v := 0; v < g.NumNodes(); v++ {
					d := int64(g.Degree(v))
					ev := s.Exits(v)
					for p := 0; p < g.Degree(v); p++ {
						label := (int64(p) - int64(s.InitialPointer(v)) + d) % d
						var want int64
						if ev > label {
							want = (ev - label + d - 1) / d
						}
						if got := s.ArcTraversals(v, p); got != want {
							t.Fatalf("round %d node %d port %d: traversals %d, law says %d",
								horizon, v, p, got, want)
						}
					}
				}
			}
		})
	}
}

func TestSingleAgentRingCirculation(t *testing.T) {
	// All pointers clockwise: the agent laps the ring in n rounds, and the
	// pointers behind it flip, so the second lap is anticlockwise.
	const n = 10
	g := graph.Ring(n)
	s := newTestSystem(t, g,
		WithAgentsAt(0),
		WithPointers(PointersUniform(g, graph.RingCW)))
	for i := 1; i <= n; i++ {
		s.Step()
		want := i % n
		if s.AgentsAt(want) != 1 {
			t.Fatalf("round %d: agent not at %d (positions %v)", i, want, s.Positions())
		}
	}
	cov, err := s.RunUntilCovered(10 * n)
	if err != nil {
		t.Fatal(err)
	}
	if cov != n-1 {
		t.Fatalf("cover time = %d, want %d", cov, n-1)
	}
}

func TestCoverTimeWorstCaseSingleAgent(t *testing.T) {
	// Pointers toward the start reflect the agent back at every new node:
	// cover time is Θ(n²) (the paper cites C(R[1]) = Θ(n²) on the ring).
	for _, n := range []int{16, 32, 64} {
		g := graph.Ring(n)
		ptr, err := PointersTowardNode(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := newTestSystem(t, g, WithAgentsAt(0), WithPointers(ptr))
		cov, err := s.RunUntilCovered(int64(4 * n * n))
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := int64(n*n/8), int64(2*n*n)
		if cov < lo || cov > hi {
			t.Errorf("n=%d: worst-case cover time %d outside [%d,%d]", n, cov, lo, hi)
		}
	}
}

func TestRunUntilCoveredBudget(t *testing.T) {
	g := graph.Ring(64)
	ptr, err := PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t, g, WithAgentsAt(0), WithPointers(ptr))
	if _, err := s.RunUntilCovered(10); !errors.Is(err, ErrNotCovered) {
		t.Fatalf("want ErrNotCovered, got %v", err)
	}
}

func TestMonotonicityUnderDelays(t *testing.T) {
	// Lemma 1: holding more agents can never increase any visit counter.
	rng := xrand.New(31)
	g := graph.Ring(20)
	positions := RandomPositions(20, 5, rng)
	ptr := PointersRandom(g, rng)

	undelayed := newTestSystem(t, g, WithAgentsAt(positions...), WithPointers(ptr))
	delayed := newTestSystem(t, g, WithAgentsAt(positions...), WithPointers(ptr))

	held := make([]int64, 20)
	for round := 0; round < 300; round++ {
		undelayed.Step()
		for v := range held {
			held[v] = 0
		}
		// Hold a random subset of agents.
		for _, v := range delayed.Occupied() {
			if rng.Bool() {
				held[v] = int64(rng.Intn(int(delayed.AgentsAt(v)) + 1))
			}
		}
		delayed.StepHeld(held)
		for v := 0; v < 20; v++ {
			if delayed.Visits(v) > undelayed.Visits(v) {
				t.Fatalf("round %d: delayed visits at %d = %d exceed undelayed %d",
					round+1, v, delayed.Visits(v), undelayed.Visits(v))
			}
		}
	}
}

func TestMoreAgentsNeverSlower(t *testing.T) {
	// Corollary of Lemma 1 (due to [27]): with identical pointers, adding
	// an agent cannot decrease any visit counter at any time.
	rng := xrand.New(77)
	g := graph.Ring(24)
	ptr := PointersRandom(g, rng)
	base := RandomPositions(24, 4, rng)
	extra := append(append([]int(nil), base...), rng.Intn(24))

	small := newTestSystem(t, g, WithAgentsAt(base...), WithPointers(ptr))
	big := newTestSystem(t, g, WithAgentsAt(extra...), WithPointers(ptr))
	for round := 0; round < 400; round++ {
		small.Step()
		big.Step()
		for v := 0; v < 24; v++ {
			if small.Visits(v) > big.Visits(v) {
				t.Fatalf("round %d: R[k-1] visits at %d = %d exceed R[k] %d",
					round+1, v, small.Visits(v), big.Visits(v))
			}
		}
	}
}

func TestSlowdownLemmaBounds(t *testing.T) {
	// Lemma 3: τ <= C(R[k]) <= T for a delayed deployment covering at T
	// with τ fully active rounds.
	rng := xrand.New(13)
	g := graph.Ring(40)
	positions := RandomPositions(40, 4, rng)
	ptr, err := PointersNegative(g, positions)
	if err != nil {
		t.Fatal(err)
	}

	undelayed := newTestSystem(t, g, WithAgentsAt(positions...), WithPointers(ptr))
	cover, err := undelayed.RunUntilCovered(1 << 20)
	if err != nil {
		t.Fatal(err)
	}

	delayed := newTestSystem(t, g, WithAgentsAt(positions...), WithPointers(ptr))
	held := make([]int64, 40)
	for delayed.Covered() < 40 {
		for v := range held {
			held[v] = 0
		}
		// Hold everything at one random occupied node every third round.
		if delayed.Round()%3 == 0 {
			occ := delayed.Occupied()
			v := occ[rng.Intn(len(occ))]
			held[v] = delayed.AgentsAt(v)
		}
		delayed.StepHeld(held)
		if delayed.Round() > 1<<20 {
			t.Fatal("delayed deployment did not cover")
		}
	}
	tau := delayed.FullyActiveRounds()
	T := delayed.Round()
	if !(tau <= cover && cover <= T) {
		t.Fatalf("slow-down lemma violated: τ=%d, C=%d, T=%d", tau, cover, T)
	}
}

func TestStepHeldAllHeldIsNoOp(t *testing.T) {
	g := graph.Ring(10)
	s := newTestSystem(t, g, WithAgentsAt(3, 7))
	before := s.Clone()
	held := make([]int64, 10)
	held[3], held[7] = 5, 5 // over-asking is clamped
	s.StepHeld(held)
	if !s.StateEqual(before) {
		t.Fatal("holding all agents changed the configuration")
	}
	if s.Round() != 1 {
		t.Fatal("round did not advance")
	}
	if s.FullyActiveRounds() != 0 {
		t.Fatal("held round counted as fully active")
	}
}

func TestIncrementalHashMatchesFullHash(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := graph.Grid2D(3+rng.Intn(3), 3+rng.Intn(3))
		k := 1 + rng.Intn(6)
		s, err := NewSystem(g,
			WithAgentsAt(RandomPositions(g.NumNodes(), k, rng)...),
			WithPointers(PointersRandom(g, rng)))
		if err != nil {
			return false
		}
		held := make([]int64, g.NumNodes())
		for i := 0; i < 150; i++ {
			if rng.Bool() {
				s.Step()
			} else {
				for v := range held {
					held[v] = 0
				}
				for _, v := range s.Occupied() {
					held[v] = int64(rng.Intn(3))
				}
				s.StepHeld(held)
			}
			if s.ConfigHash() != s.fullHash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := graph.Ring(12)
	s := newTestSystem(t, g, WithAgentsAt(0, 6))
	s.Run(10)
	c := s.Clone()
	if !s.StateEqual(c) || s.ConfigHash() != c.ConfigHash() {
		t.Fatal("clone differs from original")
	}
	s.Run(5)
	c.Run(5)
	if !s.StateEqual(c) {
		t.Fatal("clone diverged under identical steps")
	}
	s.Run(1)
	if s.StateEqual(c) {
		t.Fatal("clone tracked the original after divergence")
	}
}

func TestResetRestoresInitialConfiguration(t *testing.T) {
	g := graph.Ring(16)
	ptr, err := PointersTowardNode(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t, g, WithAgentsAt(3, 3, 9), WithPointers(ptr))
	fresh := s.Clone()
	s.Run(123)
	s.Reset()
	if !s.StateEqual(fresh) {
		t.Fatal("Reset did not restore configuration")
	}
	if s.Round() != 0 || s.Covered() != 2 || s.Visits(3) != 2 {
		t.Fatal("Reset did not restore counters")
	}
	if s.ConfigHash() != fresh.ConfigHash() {
		t.Fatal("Reset hash mismatch")
	}
	// The reset system must evolve identically to a fresh one.
	s.Run(50)
	fresh.Run(50)
	if !s.StateEqual(fresh) {
		t.Fatal("reset system diverged from fresh system")
	}
}

func TestLastVisitedMatchesVisitDeltas(t *testing.T) {
	g := graph.Complete(6)
	rng := xrand.New(17)
	s := newTestSystem(t, g,
		WithAgentsAt(RandomPositions(6, 4, rng)...),
		WithPointers(PointersRandom(g, rng)))
	prev := make([]int64, 6)
	for round := 0; round < 100; round++ {
		for v := range prev {
			prev[v] = s.Visits(v)
		}
		s.Step()
		visited := make(map[int]bool)
		for _, v := range s.LastVisited() {
			if visited[v] {
				t.Fatalf("round %d: node %d reported twice", round+1, v)
			}
			visited[v] = true
		}
		for v := 0; v < 6; v++ {
			if (s.Visits(v) > prev[v]) != visited[v] {
				t.Fatalf("round %d: LastVisited disagrees with visit delta at node %d", round+1, v)
			}
		}
	}
}

func TestFlowRecordingBalances(t *testing.T) {
	g := graph.Ring(15)
	rng := xrand.New(4)
	s := newTestSystem(t, g,
		WithAgentsAt(RandomPositions(15, 6, rng)...),
		WithPointers(PointersRandom(g, rng)),
		WithFlowRecording())
	for round := 0; round < 200; round++ {
		exitsBefore := make([]int64, 15)
		for v := range exitsBefore {
			exitsBefore[v] = s.Exits(v)
		}
		s.Step()
		for v := 0; v < 15; v++ {
			var out int64
			for p := 0; p < g.Degree(v); p++ {
				out += s.LastFlow(v, p)
			}
			if out != s.Exits(v)-exitsBefore[v] {
				t.Fatalf("round %d: outflow of %d = %d, exits delta %d",
					round+1, v, out, s.Exits(v)-exitsBefore[v])
			}
		}
	}
}

func TestCoverRoundIsFirstCoverage(t *testing.T) {
	g := graph.Ring(30)
	s := newTestSystem(t, g,
		WithAgentsAt(0),
		WithPointers(PointersUniform(g, graph.RingCW)))
	cov, err := s.RunUntilCovered(1000)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 29 {
		t.Fatalf("cover time = %d, want 29", cov)
	}
	// Running further must not change CoverRound.
	s.Run(100)
	if s.CoverRound() != 29 {
		t.Fatalf("CoverRound drifted to %d", s.CoverRound())
	}
	// Max CoveredAt equals the cover round.
	var maxAt int64
	for v := 0; v < 30; v++ {
		if s.CoveredAt(v) > maxAt {
			maxAt = s.CoveredAt(v)
		}
	}
	if maxAt != 29 {
		t.Fatalf("max CoveredAt = %d", maxAt)
	}
}

package core

import (
	"testing"
	"testing/quick"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// TestZigzagExactFirstVisitLaw pins the exact dynamics of the Theorem 1
// worst case in its path form: a single agent starting at the end of a path
// whose pointers all reflect toward the origin first reaches node d at
// round d², exactly. (Each excursion extends the explored prefix by one
// node and is one round-trip longer than the previous: Σ odd numbers.)
func TestZigzagExactFirstVisitLaw(t *testing.T) {
	const n = 24
	g := graph.Path(n)
	ptr, err := PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t, g, WithAgentsAt(0), WithPointers(ptr))
	s.Run(int64(n * n))
	for d := 1; d < n; d++ {
		if got := s.CoveredAt(d); got != int64(d*d) {
			t.Fatalf("node %d first covered at %d, want exactly %d", d, got, d*d)
		}
	}
	if cover := s.CoverRound(); cover != int64((n-1)*(n-1)) {
		t.Fatalf("cover time %d, want (n-1)² = %d", cover, (n-1)*(n-1))
	}
}

// TestVisitMassBalance: every agent arrives somewhere each round, so the
// total visit mass obeys Σ_v n_v(t) = k·(t+1) for undelayed deployments.
func TestVisitMassBalance(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		g := graph.Ring(6 + rng.Intn(30))
		k := 1 + rng.Intn(6)
		s, err := NewSystem(g,
			WithAgentsAt(RandomPositions(g.NumNodes(), k, rng)...),
			WithPointers(PointersRandom(g, rng)))
		if err != nil {
			return false
		}
		for round := int64(0); round <= 100; round++ {
			var total int64
			for v := 0; v < g.NumNodes(); v++ {
				total += s.Visits(v)
			}
			if total != int64(k)*(round+1) {
				return false
			}
			s.Step()
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestExitMassBalance: Σ_v e_v(t) = k·t for undelayed deployments.
func TestExitMassBalance(t *testing.T) {
	g := graph.Grid2D(4, 5)
	rng := xrand.New(8)
	k := 6
	s := newTestSystem(t, g,
		WithAgentsAt(RandomPositions(20, k, rng)...),
		WithPointers(PointersRandom(g, rng)))
	for round := int64(0); round <= 200; round++ {
		var total int64
		for v := 0; v < 20; v++ {
			total += s.Exits(v)
		}
		if total != int64(k)*round {
			t.Fatalf("round %d: exit mass %d, want %d", round, total, int64(k)*round)
		}
		s.Step()
	}
}

// TestOccupiedListConsistency: the occupied list exactly matches the
// positive entries of the agent-count vector at all times, including under
// holds.
func TestOccupiedListConsistency(t *testing.T) {
	rng := xrand.New(44)
	g := graph.Star(12)
	s := newTestSystem(t, g,
		WithAgentsAt(RandomPositions(12, 7, rng)...),
		WithPointers(PointersRandom(g, rng)))
	held := make([]int64, 12)
	for round := 0; round < 300; round++ {
		if rng.Bool() {
			for v := range held {
				held[v] = int64(rng.Intn(3))
			}
			s.StepHeld(held)
		} else {
			s.Step()
		}
		inList := make(map[int]bool)
		for _, v := range s.Occupied() {
			if inList[v] {
				t.Fatalf("round %d: node %d twice in occupied list", round, v)
			}
			inList[v] = true
			if s.AgentsAt(v) <= 0 {
				t.Fatalf("round %d: occupied list contains empty node %d", round, v)
			}
		}
		for v := 0; v < 12; v++ {
			if s.AgentsAt(v) > 0 && !inList[v] {
				t.Fatalf("round %d: node %d with %d agents missing from occupied list",
					round, v, s.AgentsAt(v))
			}
		}
	}
}

// TestDeterminismAcrossEquivalentConstructions: WithAgentsAt and
// WithAgentCounts describing the same multiset produce identical systems.
func TestDeterminismAcrossEquivalentConstructions(t *testing.T) {
	g := graph.Ring(20)
	a := newTestSystem(t, g, WithAgentsAt(3, 3, 7, 15))
	counts := make([]int64, 20)
	counts[3], counts[7], counts[15] = 2, 1, 1
	b := newTestSystem(t, g, WithAgentCounts(counts))
	if !a.StateEqual(b) || a.ConfigHash() != b.ConfigHash() {
		t.Fatal("equivalent constructions differ")
	}
	a.Run(500)
	b.Run(500)
	if !a.StateEqual(b) {
		t.Fatal("equivalent constructions diverged")
	}
}

// TestSymmetryOfSymmetricInitialization: a mirror-symmetric initialization
// on the ring stays mirror-symmetric forever (the symmetry argument in the
// proof of Theorem 1).
func TestSymmetryOfSymmetricInitialization(t *testing.T) {
	// n odd; k even agents all at node 0; pointers toward node 0 are
	// mirror symmetric under v -> n-v.
	const n, k = 25, 4
	g := graph.Ring(n)
	ptr, err := PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t, g, WithAgentsAt(AllOnNode(0, k)...), WithPointers(ptr))
	mirror := func(v int) int { return (n - v) % n }
	for round := 0; round < 400; round++ {
		s.Step()
		for v := 1; v < n; v++ {
			if s.AgentsAt(v) != s.AgentsAt(mirror(v)) {
				t.Fatalf("round %d: agent symmetry broken at %d", round+1, v)
			}
			// Pointers mirror with direction flipped.
			if v != mirror(v) {
				want := 1 - s.Pointer(mirror(v))
				if s.Pointer(v) != want {
					t.Fatalf("round %d: pointer symmetry broken at %d", round+1, v)
				}
			}
		}
		// The agent count at the axis node 0 stays even.
		if s.AgentsAt(0)%2 != 0 {
			t.Fatalf("round %d: odd agent count at axis", round+1)
		}
	}
}

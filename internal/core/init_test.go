package core

import (
	"testing"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

func TestPointersTowardNodeOnRing(t *testing.T) {
	g := graph.Ring(10)
	ptr, err := PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 1..5 are closer going anticlockwise; 6..9 clockwise. Node 5 is
	// the antipode (both directions tie; either is a valid shortest path).
	for v := 1; v <= 4; v++ {
		if ptr[v] != graph.RingCCW {
			t.Errorf("ptr[%d] = %d, want anticlockwise", v, ptr[v])
		}
	}
	for v := 6; v <= 9; v++ {
		if ptr[v] != graph.RingCW {
			t.Errorf("ptr[%d] = %d, want clockwise", v, ptr[v])
		}
	}
	if d := g.BFSDist(0)[g.Neighbor(5, ptr[5])]; d != 4 {
		t.Errorf("antipode pointer does not reduce distance (neighbor dist %d)", d)
	}
}

func TestPointersTowardNodeReducesDistanceEverywhere(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Grid2D(5, 4), graph.Hypercube(4), graph.CompleteBinaryTree(4)} {
		target := g.NumNodes() / 2
		ptr, err := PointersTowardNode(g, target)
		if err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
		dist := g.BFSDist(target)
		for v := 0; v < g.NumNodes(); v++ {
			if v == target {
				continue
			}
			if dist[g.Neighbor(v, ptr[v])] != dist[v]-1 {
				t.Errorf("%s: pointer at %d not on shortest path", g.Name(), v)
			}
		}
	}
}

func TestPointersTowardNodeRejectsBadTarget(t *testing.T) {
	g := graph.Ring(5)
	if _, err := PointersTowardNode(g, 5); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := PointersTowardNode(g, -1); err == nil {
		t.Error("negative target accepted")
	}
}

func TestPointersAwayFromNodeOnRing(t *testing.T) {
	g := graph.Ring(9)
	ptr, err := PointersAwayFromNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFSDist(0)
	for v := 1; v < 9; v++ {
		if dist[g.Neighbor(v, ptr[v])] < dist[v] {
			t.Errorf("pointer at %d still heads toward target", v)
		}
	}
}

func TestPointersNegativeReflectsFirstVisitor(t *testing.T) {
	// An agent walking into never-visited territory must be bounced back
	// on its first visit to each new node.
	g := graph.Ring(12)
	ptr, err := PointersNegative(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestSystem(t, g, WithAgentsAt(0), WithPointers(ptr))
	// Pointer at node 0 is arbitrary (port 0 = CW). Round 1: agent moves
	// to node 1. Node 1's pointer points back toward 0, so round 2 returns
	// it to 0, whose pointer (already advanced) sends it to node 11 next.
	s.Step()
	if s.AgentsAt(1) != 1 {
		t.Fatalf("round 1: positions %v", s.Positions())
	}
	s.Step()
	if s.AgentsAt(0) != 1 {
		t.Fatalf("round 2: agent was not reflected, positions %v", s.Positions())
	}
	s.Step()
	if s.AgentsAt(11) != 1 {
		t.Fatalf("round 3: positions %v", s.Positions())
	}
}

func TestPointersNegativePointsTowardNearestAgent(t *testing.T) {
	g := graph.Ring(20)
	starts := []int{0, 10}
	ptr, err := PointersNegative(g, starts)
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]int, 20)
	for v := range dist {
		d0 := minInt(v, 20-v)
		d10 := minInt(abs(v-10), 20-abs(v-10))
		dist[v] = minInt(d0, d10)
	}
	for v := 0; v < 20; v++ {
		if dist[v] == 0 {
			continue
		}
		nb := g.Neighbor(v, ptr[v])
		if dist[nb] != dist[v]-1 {
			t.Errorf("node %d: pointer heads to %d (dist %d), want closer to an agent (dist %d)",
				v, nb, dist[nb], dist[v]-1)
		}
	}
}

func TestPointersNegativeErrors(t *testing.T) {
	g := graph.Ring(5)
	if _, err := PointersNegative(g, nil); err == nil {
		t.Error("empty agent list accepted")
	}
	if _, err := PointersNegative(g, []int{9}); err == nil {
		t.Error("out-of-range agent accepted")
	}
}

func TestPointersUniformClamps(t *testing.T) {
	g := graph.Path(5) // endpoints have degree 1
	ptr := PointersUniform(g, 1)
	if ptr[0] != 0 || ptr[4] != 0 {
		t.Error("degree-1 endpoints not clamped to port 0")
	}
	for v := 1; v < 4; v++ {
		if ptr[v] != 1 {
			t.Errorf("interior pointer at %d = %d", v, ptr[v])
		}
	}
}

func TestPointersRandomValid(t *testing.T) {
	g := graph.Star(9)
	ptr := PointersRandom(g, xrand.New(2))
	for v := 0; v < 9; v++ {
		if ptr[v] < 0 || ptr[v] >= g.Degree(v) {
			t.Fatalf("pointer %d invalid at node %d", ptr[v], v)
		}
	}
}

func TestEquallySpaced(t *testing.T) {
	pos := EquallySpaced(100, 4)
	want := []int{0, 25, 50, 75}
	for i, w := range want {
		if pos[i] != w {
			t.Fatalf("EquallySpaced(100,4) = %v", pos)
		}
	}
	// Non-divisible case still spreads within bounds and is sorted.
	pos = EquallySpaced(10, 3)
	prev := -1
	for _, p := range pos {
		if p < 0 || p >= 10 || p <= prev {
			t.Fatalf("EquallySpaced(10,3) = %v", pos)
		}
		prev = p
	}
}

func TestAllOnNode(t *testing.T) {
	pos := AllOnNode(7, 5)
	if len(pos) != 5 {
		t.Fatalf("len = %d", len(pos))
	}
	for _, p := range pos {
		if p != 7 {
			t.Fatalf("AllOnNode = %v", pos)
		}
	}
}

func TestRandomPositionsInRange(t *testing.T) {
	pos := RandomPositions(13, 50, xrand.New(8))
	for _, p := range pos {
		if p < 0 || p >= 13 {
			t.Fatalf("position %d out of range", p)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

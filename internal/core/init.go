package core

import (
	"fmt"

	"rotorring/internal/graph"
	"rotorring/internal/xrand"
)

// This file constructs the initial pointer arrangements that the paper's
// adversary uses. In all of the paper's statements the ports and pointers
// are set adversarially (§1.3, end); these helpers produce the named
// arrangements from the proofs:
//
//   - PointersTowardNode:  "all pointers are initialized along the shortest
//     path to v" — the worst case of Theorem 1.
//   - PointersNegative:    "negatively initialized pointers" — the pointer
//     at every node points toward the nearest starting agent so that the
//     first visit to a node reflects the visitor back (§2.2, Theorem 4).
//   - PointersAwayFromNode: the complementary accelerating arrangement.
//   - PointersUniform, PointersRandom: neutral baselines.

// PointersTowardNode returns a pointer arrangement in which every node's
// pointer lies on a shortest path toward target (BFS tie-broken by port
// order). The pointer at target itself is port 0.
func PointersTowardNode(g *graph.Graph, target int) ([]int, error) {
	n := g.NumNodes()
	if target < 0 || target >= n {
		return nil, fmt.Errorf("core: target %d out of range [0,%d)", target, n)
	}
	dist := g.BFSDist(target)
	ptr := make([]int, n)
	for v := 0; v < n; v++ {
		if v == target {
			continue // port 0
		}
		found := false
		for p := 0; p < g.Degree(v); p++ {
			if dist[g.Neighbor(v, p)] == dist[v]-1 {
				ptr[v] = p
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("core: node %d has no neighbor closer to %d", v, target)
		}
	}
	return ptr, nil
}

// PointersAwayFromNode returns an arrangement in which every node's pointer
// avoids the shortest path back to target where possible (it points to a
// neighbor that is not closer to target; leaves of trees have no choice).
func PointersAwayFromNode(g *graph.Graph, target int) ([]int, error) {
	toward, err := PointersTowardNode(g, target)
	if err != nil {
		return nil, err
	}
	dist := g.BFSDist(target)
	ptr := make([]int, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		ptr[v] = toward[v] // fallback when every neighbor is closer
		for p := 0; p < g.Degree(v); p++ {
			if dist[g.Neighbor(v, p)] >= dist[v] {
				ptr[v] = p
				break
			}
		}
	}
	return ptr, nil
}

// PointersNegative returns the paper's negative initialization with respect
// to the given starting agent positions: each node's pointer points toward
// its nearest agent (multi-source BFS), so an agent's first visit to an
// unvisited node sends it straight back where it came from. Pointers at the
// agents' own nodes are port 0 (the paper leaves them arbitrary).
func PointersNegative(g *graph.Graph, agentPositions []int) ([]int, error) {
	n := g.NumNodes()
	if len(agentPositions) == 0 {
		return nil, fmt.Errorf("core: PointersNegative needs at least one agent position")
	}
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int, 0, n)
	for _, v := range agentPositions {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("core: agent position %d out of range [0,%d)", v, n)
		}
		if dist[v] < 0 {
			dist[v] = 0
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for p := 0; p < g.Degree(v); p++ {
			u := g.Neighbor(v, p)
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	ptr := make([]int, n)
	for v := 0; v < n; v++ {
		if dist[v] == 0 {
			continue // agent start: arbitrary (port 0)
		}
		for p := 0; p < g.Degree(v); p++ {
			if dist[g.Neighbor(v, p)] == dist[v]-1 {
				ptr[v] = p
				break
			}
		}
	}
	return ptr, nil
}

// PointersUniform returns the arrangement with every pointer at port
// min(p, deg(v)-1). On the ring, PointersUniform(g, graph.RingCW) makes all
// pointers clockwise.
func PointersUniform(g *graph.Graph, p int) []int {
	ptr := make([]int, g.NumNodes())
	for v := range ptr {
		q := p
		if q >= g.Degree(v) {
			q = g.Degree(v) - 1
		}
		if q < 0 {
			q = 0
		}
		ptr[v] = q
	}
	return ptr
}

// PointersRandom returns an arrangement with every pointer chosen uniformly
// at random among the node's ports.
func PointersRandom(g *graph.Graph, rng *xrand.Rand) []int {
	ptr := make([]int, g.NumNodes())
	for v := range ptr {
		ptr[v] = rng.Intn(g.Degree(v))
	}
	return ptr
}

// EquallySpaced returns k starting positions spread evenly around a ring (or
// any node range) of n nodes: positions floor(i*n/k). This is the best-case
// placement of Theorems 3 and 5.
func EquallySpaced(n, k int) []int {
	pos := make([]int, k)
	for i := 0; i < k; i++ {
		pos[i] = i * n / k
	}
	return pos
}

// AllOnNode returns k starting positions all equal to v — the worst-case
// placement of Theorem 1.
func AllOnNode(v, k int) []int {
	pos := make([]int, k)
	for i := range pos {
		pos[i] = v
	}
	return pos
}

// RandomPositions returns k independent uniform starting positions on n
// nodes.
func RandomPositions(n, k int, rng *xrand.Rand) []int {
	pos := make([]int, k)
	for i := range pos {
		pos[i] = rng.Intn(n)
	}
	return pos
}

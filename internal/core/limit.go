package core

import (
	"errors"
	"fmt"
)

// This file analyzes the limit behavior of the rotor-router (paper §4).
// A rotor-router is a deterministic finite-state system, so from any
// initialization it eventually cycles through a finite set of
// configurations. FindLimitCycle locates that cycle with Brent's algorithm
// (hash-compare fast path, full-state confirmation), MeasureReturnTime
// computes the paper's return time — the longest interval during which some
// node stays unvisited in the limit — exactly over one period, and
// MeasureCirculation verifies the Yanovski et al. Eulerian-circulation
// property of the single-agent limit.

// ErrNoCycle is returned when the round budget expires before the limit
// cycle is confirmed.
var ErrNoCycle = errors.New("core: limit cycle not found within round budget")

// ErrStopped is returned by the *Stop measurement variants when the
// caller's stop check fires before the measurement completes.
var ErrStopped = errors.New("core: measurement stopped")

// stopStride is how many steps the *Stop variants run between stop checks:
// cancellation stays amortized so the hot stepping loop is not branched
// per round, while a pending stop is still honored promptly.
const stopStride = 4096

// stopped polls an optional stop check every stopStride steps.
func stopped(stop func() bool, steps int64) bool {
	return stop != nil && steps%stopStride == 0 && stop()
}

// LimitCycle describes the detected limit behavior.
type LimitCycle struct {
	// Period is the length λ of the limit cycle in rounds.
	Period int64
	// StabilizationRound is μ, the first round whose configuration recurs
	// forever, or -1 when its computation was not requested.
	StabilizationRound int64
	// DetectedAt is the round (of the probe system) at which the cycle was
	// confirmed; it upper-bounds μ + 2λ up to Brent's power-of-two slack.
	DetectedAt int64
}

// FindLimitCycle runs s forward until its configuration provably repeats
// and returns the cycle parameters. On return, s is parked at a
// configuration inside the limit cycle. If computeMu is true the exact
// stabilization round μ is computed with a second pass over a pristine
// copy of the initial configuration (costing about 2μ extra steps).
func FindLimitCycle(s *System, maxRounds int64, computeMu bool) (*LimitCycle, error) {
	return FindLimitCycleStop(s, maxRounds, computeMu, nil)
}

// FindLimitCycleStop is FindLimitCycle with a cooperative cancellation
// hook: stop (when non-nil) is polled every stopStride steps, and a true
// result aborts the search with an error wrapping ErrStopped. Context
// plumbing lives in the callers; core stays context-free.
func FindLimitCycleStop(s *System, maxRounds int64, computeMu bool, stop func() bool) (*LimitCycle, error) {
	// Cycle detection needs the configuration hash every round; switch it
	// on before snapshotting so every clone inherits it (tier 2: systems
	// that never detect cycles never pay for hashing).
	s.EnableConfigHash()
	var initial *System
	if computeMu {
		initial = s.Clone()
	}

	// Brent's cycle detection: tortoise snapshots at power-of-two rounds.
	power := int64(1)
	lam := int64(0)
	tortoise := s.Clone()
	start := s.st.Round
	for {
		if lam == power {
			tortoise = s.Clone()
			power *= 2
			lam = 0
		}
		if s.st.Round-start >= maxRounds {
			return nil, fmt.Errorf("%w (ran %d rounds)", ErrNoCycle, s.st.Round-start)
		}
		if stopped(stop, s.st.Round-start) {
			return nil, fmt.Errorf("%w during cycle search (after %d rounds)", ErrStopped, s.st.Round-start)
		}
		s.Step()
		lam++
		if s.st.Hash == tortoise.st.Hash && s.StateEqual(tortoise) {
			break
		}
	}

	lc := &LimitCycle{Period: lam, StabilizationRound: -1, DetectedAt: s.st.Round}
	if computeMu {
		mu, err := findMu(initial, lam, maxRounds, stop)
		if err != nil {
			return nil, err
		}
		lc.StabilizationRound = mu
	}
	return lc, nil
}

// findMu advances a pair of copies of the initial configuration, offset by
// the period, until they coincide; the number of rounds taken is μ.
func findMu(initial *System, period, maxRounds int64, stop func() bool) (int64, error) {
	lead := initial.Clone()
	lead.Run(period)
	mu := int64(0)
	for !(initial.st.Hash == lead.st.Hash && initial.StateEqual(lead)) {
		if mu > maxRounds {
			return 0, fmt.Errorf("%w (μ search exceeded %d rounds)", ErrNoCycle, maxRounds)
		}
		if stopped(stop, mu) {
			return 0, fmt.Errorf("%w during μ search (after %d rounds)", ErrStopped, mu)
		}
		initial.Step()
		lead.Step()
		mu++
	}
	return mu, nil
}

// ReturnStats summarizes visit recurrence in the limit cycle (paper §4).
type ReturnStats struct {
	// Period is the limit-cycle length λ.
	Period int64
	// ReturnTime is the paper's return time: the maximum over nodes of the
	// longest interval (in rounds) during which the node is unvisited,
	// measured exactly over one period with wraparound.
	ReturnTime int64
	// MeanGap is the average over nodes of each node's mean inter-visit
	// gap, a fairness indicator (≈ period · n / total visits).
	MeanGap float64
	// MinNodeVisits and MaxNodeVisits are the extremes of per-node visit
	// counts within one period.
	MinNodeVisits int64
	MaxNodeVisits int64
}

// MeasureReturnTime finds the limit cycle of s and measures the exact
// return time over one full period. On return s is parked inside the cycle.
func MeasureReturnTime(s *System, maxRounds int64) (*ReturnStats, error) {
	return MeasureReturnTimeStop(s, maxRounds, nil)
}

// MeasureReturnTimeStop is MeasureReturnTime with a cooperative
// cancellation hook, polled every stopStride steps of both the cycle
// search and the period measurement; a true result aborts with an error
// wrapping ErrStopped.
func MeasureReturnTimeStop(s *System, maxRounds int64, stop func() bool) (*ReturnStats, error) {
	lc, err := FindLimitCycleStop(s, maxRounds, false, stop)
	if err != nil {
		return nil, err
	}
	n := s.n
	first := make([]int64, n)
	last := make([]int64, n)
	gap := make([]int64, n)
	count := make([]int64, n)
	for v := range first {
		first[v] = -1
	}
	for t := int64(1); t <= lc.Period; t++ {
		if stopped(stop, t) {
			return nil, fmt.Errorf("%w during period measurement (round %d of %d)", ErrStopped, t, lc.Period)
		}
		s.Step()
		for _, v := range s.LastVisited() {
			if first[v] < 0 {
				first[v] = t
			} else if g := t - last[v]; g > gap[v] {
				gap[v] = g
			}
			last[v] = t
			count[v]++
		}
	}
	stats := &ReturnStats{Period: lc.Period, MinNodeVisits: -1}
	var meanSum float64
	for v := 0; v < n; v++ {
		if first[v] < 0 {
			return nil, fmt.Errorf("core: node %d is never visited in the limit cycle (period %d)", v, lc.Period)
		}
		// Close the cyclic window: the gap across the period boundary.
		if g := (lc.Period - last[v]) + first[v]; g > gap[v] {
			gap[v] = g
		}
		if gap[v] > stats.ReturnTime {
			stats.ReturnTime = gap[v]
		}
		if stats.MinNodeVisits < 0 || count[v] < stats.MinNodeVisits {
			stats.MinNodeVisits = count[v]
		}
		if count[v] > stats.MaxNodeVisits {
			stats.MaxNodeVisits = count[v]
		}
		meanSum += float64(lc.Period) / float64(count[v])
	}
	stats.MeanGap = meanSum / float64(n)
	return stats, nil
}

// CirculationStats describes per-arc traffic over one limit-cycle period.
type CirculationStats struct {
	// Period is the limit-cycle length λ.
	Period int64
	// MinArc and MaxArc are the extremes of per-arc traversal counts in
	// one period.
	MinArc int64
	MaxArc int64
	// Balanced reports MinArc == MaxArc: the system settled into a
	// circulation that uses every arc equally often — for a single agent
	// this is precisely the Eulerian cycle of Ĝ (Yanovski et al. [27]).
	Balanced bool
}

// MeasureCirculation finds the limit cycle and counts per-arc traversals
// over one period. The system must have been created WithArcCounting.
func MeasureCirculation(s *System, maxRounds int64) (*CirculationStats, error) {
	if !s.recordArcs {
		return nil, errors.New("core: MeasureCirculation requires WithArcCounting")
	}
	lc, err := FindLimitCycle(s, maxRounds, false)
	if err != nil {
		return nil, err
	}
	before := append([]int64(nil), s.arcCount...)
	s.Run(lc.Period)
	stats := &CirculationStats{Period: lc.Period, MinArc: -1}
	for i, after := range s.arcCount {
		d := after - before[i]
		if stats.MinArc < 0 || d < stats.MinArc {
			stats.MinArc = d
		}
		if d > stats.MaxArc {
			stats.MaxArc = d
		}
	}
	stats.Balanced = stats.MinArc == stats.MaxArc
	return stats, nil
}

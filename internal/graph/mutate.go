package graph

import (
	"errors"
	"fmt"
)

// This file supports perturbation scenarios (edge failure and repair): a
// Graph stays immutable, so "deleting" edges produces a fresh masked copy
// plus the port mapping a caller needs to transplant rotor pointers. The
// companion Bridges analysis identifies which edges can fail without
// disconnecting the graph (the model requires connectivity).

// ErrDisconnects is returned by MaskEdges when removing the marked edges
// would disconnect the graph.
var ErrDisconnects = errors.New("graph: edge removal disconnects the graph")

// MaskEdges returns a copy of g with the marked undirected edges removed.
// deleted is indexed by arc id; marking either direction of an edge removes
// both arcs. Every surviving arc keeps its relative position in its node's
// cyclic port order — only the deleted ports are squeezed out — so the
// masked graph perturbs the rotor-router as little as the model allows.
//
// The second result maps the new port numbering back to the original:
// toOld[v][newPort] is the port the arc had in g. It returns
// ErrDisconnects when the masked graph would not be connected.
func MaskEdges(g *Graph, deleted []bool) (*Graph, [][]int32, error) {
	if len(deleted) != g.NumArcs() {
		return nil, nil, fmt.Errorf("graph: %d deletion marks for %d arcs", len(deleted), g.NumArcs())
	}
	n := g.NumNodes()
	// Close the marks symmetrically: an undirected edge is deleted when
	// either of its arcs is marked.
	drop := make([]bool, g.NumArcs())
	for v := 0; v < n; v++ {
		for p, a := range g.adj[v] {
			if deleted[g.ArcID(v, p)] {
				drop[g.ArcID(v, p)] = true
				drop[g.ArcID(a.To, a.RevPort)] = true
			}
		}
	}

	newPort := make([][]int32, n) // old port -> new port, -1 when dropped
	toOld := make([][]int32, n)
	removed := 0
	for v := 0; v < n; v++ {
		d := len(g.adj[v])
		newPort[v] = make([]int32, d)
		kept := int32(0)
		for p := 0; p < d; p++ {
			if drop[g.ArcID(v, p)] {
				newPort[v][p] = -1
				removed++
				continue
			}
			newPort[v][p] = kept
			kept++
		}
		toOld[v] = make([]int32, 0, kept)
		for p := 0; p < d; p++ {
			if newPort[v][p] >= 0 {
				toOld[v] = append(toOld[v], int32(p))
			}
		}
	}

	ng := &Graph{
		adj:  make([][]Arc, n),
		m:    g.m - removed/2,
		name: g.name + "-cut",
	}
	for v := 0; v < n; v++ {
		ng.adj[v] = make([]Arc, len(toOld[v]))
		for np, op := range toOld[v] {
			a := g.adj[v][op]
			ng.adj[v][np] = Arc{To: a.To, RevPort: int(newPort[a.To][a.RevPort])}
		}
	}
	if !ng.Connected() {
		return nil, nil, ErrDisconnects
	}
	ng.freezeArcIDs()
	return ng, toOld, nil
}

// Bridges reports, per arc id, whether the arc's undirected edge is a
// bridge (its removal disconnects the graph). Both directions of a bridge
// are marked. Parallel edges are never bridges. Iterative Tarjan low-link,
// O(|V| + |E|), safe for graphs deeper than the goroutine stack.
func (g *Graph) Bridges() []bool {
	n := g.NumNodes()
	bridge := make([]bool, g.NumArcs())
	disc := make([]int, n) // 0 = unvisited
	low := make([]int, n)

	type frame struct {
		v    int
		pi   int // next port to explore
		skip int // arc id (v -> tree parent), -1 at a root
	}
	timer := 1
	var stack []frame
	for root := 0; root < n; root++ {
		if disc[root] != 0 {
			continue
		}
		disc[root], low[root] = timer, timer
		timer++
		stack = append(stack[:0], frame{v: root, skip: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.pi < len(g.adj[f.v]) {
				p := f.pi
				f.pi++
				id := g.ArcID(f.v, p)
				if id == f.skip {
					// The tree arc back to the parent: skipping exactly this
					// arc id (not the parent node) keeps parallel edges
					// eligible as back edges, so they are never bridges.
					continue
				}
				a := g.adj[f.v][p]
				if disc[a.To] == 0 {
					disc[a.To], low[a.To] = timer, timer
					timer++
					stack = append(stack, frame{v: a.To, skip: g.ArcID(a.To, a.RevPort)})
				} else if disc[a.To] < low[f.v] {
					low[f.v] = disc[a.To]
				}
				continue
			}
			child := *f
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			pf := &stack[len(stack)-1]
			if low[child.v] < low[pf.v] {
				low[pf.v] = low[child.v]
			}
			if low[child.v] > disc[pf.v] {
				// The tree edge into child is a bridge; mark both arcs.
				up := child.skip
				a := g.adj[child.v][up-g.base[child.v]]
				bridge[up] = true
				bridge[g.ArcID(a.To, a.RevPort)] = true
			}
		}
	}
	return bridge
}

package graph

import (
	"fmt"

	"rotorring/internal/xrand"
)

// Ring port conventions. On the ring there is only one cyclic permutation of
// the two ports, so only the pointer placement matters (paper §1.3); the
// fixed convention below lets ring-specific code (domains, visualization)
// talk about directions.
const (
	// RingCW is the port leading from v to (v+1) mod n ("clockwise").
	RingCW = 0
	// RingCCW is the port leading from v to (v-1+n) mod n ("anticlockwise").
	RingCCW = 1
)

// Ring returns the cycle C_n for n >= 3, the paper's main topology.
// Port 0 of every node is the clockwise arc and port 1 the anticlockwise
// arc (see RingCW, RingCCW).
func Ring(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Ring(%d): need n >= 3", n))
	}
	adj := make([][]Arc, n)
	for v := 0; v < n; v++ {
		cw := (v + 1) % n
		ccw := (v - 1 + n) % n
		adj[v] = []Arc{
			RingCW:  {To: cw, RevPort: RingCCW},
			RingCCW: {To: ccw, RevPort: RingCW},
		}
	}
	g := &Graph{adj: adj, m: n, name: fmt.Sprintf("ring(%d)", n)}
	g.freezeArcIDs()
	return g
}

// Path returns the path P_n on n >= 2 nodes, 0 - 1 - ... - n-1. Theorem 1's
// analysis reduces the ring with all agents on one node to a path; the
// delayed-deployment experiments run on paths directly.
func Path(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: Path(%d): need n >= 2", n))
	}
	b := NewBuilder(n, fmt.Sprintf("path(%d)", n))
	for v := 0; v+1 < n; v++ {
		if err := b.AddEdge(v, v+1); err != nil {
			panic(err)
		}
	}
	return b.mustBuild()
}

// Grid2D returns the w x h two-dimensional grid (no wraparound). Node (x,y)
// has index y*w + x. The paper's introduction contrasts rotor-router and
// random-walk cover times on this topology.
func Grid2D(w, h int) *Graph {
	if w < 1 || h < 1 || w*h < 2 {
		panic(fmt.Sprintf("graph: Grid2D(%d,%d): need at least 2 nodes", w, h))
	}
	b := NewBuilder(w*h, fmt.Sprintf("grid(%dx%d)", w, h))
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := b.AddEdge(id(x, y), id(x+1, y)); err != nil {
					panic(err)
				}
			}
			if y+1 < h {
				if err := b.AddEdge(id(x, y), id(x, y+1)); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.mustBuild()
}

// Torus2D returns the w x h grid with wraparound in both dimensions
// (requires w, h >= 3 so that no parallel edges arise).
func Torus2D(w, h int) *Graph {
	if w < 3 || h < 3 {
		panic(fmt.Sprintf("graph: Torus2D(%d,%d): need w,h >= 3", w, h))
	}
	b := NewBuilder(w*h, fmt.Sprintf("torus(%dx%d)", w, h))
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if err := b.AddEdge(id(x, y), id((x+1)%w, y)); err != nil {
				panic(err)
			}
			if err := b.AddEdge(id(x, y), id(x, (y+1)%h)); err != nil {
				panic(err)
			}
		}
	}
	return b.mustBuild()
}

// Complete returns the complete graph K_n for n >= 2.
func Complete(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: Complete(%d): need n >= 2", n))
	}
	b := NewBuilder(n, fmt.Sprintf("complete(%d)", n))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.mustBuild()
}

// Star returns the star S_n: node 0 is the hub, nodes 1..n-1 are leaves.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: Star(%d): need n >= 2", n))
	}
	b := NewBuilder(n, fmt.Sprintf("star(%d)", n))
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, v); err != nil {
			panic(err)
		}
	}
	return b.mustBuild()
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes; node ids
// are the bit patterns of their coordinates.
func Hypercube(d int) *Graph {
	if d < 1 || d > 20 {
		panic(fmt.Sprintf("graph: Hypercube(%d): need 1 <= d <= 20", d))
	}
	n := 1 << d
	b := NewBuilder(n, fmt.Sprintf("hypercube(%d)", d))
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				if err := b.AddEdge(v, u); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.mustBuild()
}

// Lollipop returns the lollipop graph: a clique on cliqueSize nodes
// (0..cliqueSize-1) with a path of pathLen extra nodes attached to node 0.
// It is a classical worst case for random-walk cover time and exercises the
// engine on strongly heterogeneous degrees.
func Lollipop(cliqueSize, pathLen int) *Graph {
	if cliqueSize < 2 || pathLen < 1 {
		panic(fmt.Sprintf("graph: Lollipop(%d,%d): need cliqueSize >= 2, pathLen >= 1", cliqueSize, pathLen))
	}
	n := cliqueSize + pathLen
	b := NewBuilder(n, fmt.Sprintf("lollipop(%d,%d)", cliqueSize, pathLen))
	for u := 0; u < cliqueSize; u++ {
		for v := u + 1; v < cliqueSize; v++ {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	prev := 0
	for v := cliqueSize; v < n; v++ {
		if err := b.AddEdge(prev, v); err != nil {
			panic(err)
		}
		prev = v
	}
	return b.mustBuild()
}

// CompleteBinaryTree returns the complete binary tree with the given number
// of levels (levels >= 1; a single level is one node, which is rejected
// because a one-node graph has no arcs to route on — use levels >= 2).
func CompleteBinaryTree(levels int) *Graph {
	if levels < 2 {
		panic(fmt.Sprintf("graph: CompleteBinaryTree(%d): need levels >= 2", levels))
	}
	n := 1<<levels - 1
	b := NewBuilder(n, fmt.Sprintf("btree(%d)", levels))
	for v := 1; v < n; v++ {
		if err := b.AddEdge((v-1)/2, v); err != nil {
			panic(err)
		}
	}
	return b.mustBuild()
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// configuration model with restarts (n*d must be even, d < n). Used as the
// expander-like workload in random-walk comparisons.
func RandomRegular(n, d int, rng *xrand.Rand) (*Graph, error) {
	if d < 2 || d >= n || (n*d)%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular(%d,%d): need 2 <= d < n and n*d even", n, d)
	}
	const maxAttempts = 200
	for attempt := 0; attempt < maxAttempts; attempt++ {
		g, ok := tryRandomRegular(n, d, rng)
		if ok && g.Connected() {
			g.name = fmt.Sprintf("random-regular(%d,%d)", n, d)
			g.freezeArcIDs()
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: RandomRegular(%d,%d): no simple connected graph after %d attempts", n, d, maxAttempts)
}

// tryRandomRegular performs one pairing attempt of the configuration model,
// rejecting self-loops and parallel edges.
func tryRandomRegular(n, d int, rng *xrand.Rand) (*Graph, bool) {
	stubs := make([]int, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	seen := make(map[[2]int]bool, n*d/2)
	adj := make([][]Arc, n)
	m := 0
	for i := 0; i < len(stubs); i += 2 {
		u, v := stubs[i], stubs[i+1]
		if u == v {
			return nil, false
		}
		key := [2]int{min(u, v), max(u, v)}
		if seen[key] {
			return nil, false
		}
		seen[key] = true
		pu, pv := len(adj[u]), len(adj[v])
		adj[u] = append(adj[u], Arc{To: v, RevPort: pv})
		adj[v] = append(adj[v], Arc{To: u, RevPort: pu})
		m++
	}
	return &Graph{adj: adj, m: m}, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

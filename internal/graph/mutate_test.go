package graph

import (
	"errors"
	"testing"
)

// TestBridges: the ring has none, the path only bridges, the lollipop's
// tail is all bridges while its clique has none, and parallel edges are
// never bridges.
func TestBridges(t *testing.T) {
	countBridgeEdges := func(g *Graph) int {
		b := g.Bridges()
		edges := 0
		for v := 0; v < g.NumNodes(); v++ {
			for p := 0; p < g.Degree(v); p++ {
				if b[g.ArcID(v, p)] && g.Neighbor(v, p) > v {
					edges++
				}
			}
		}
		return edges
	}
	if got := countBridgeEdges(Ring(16)); got != 0 {
		t.Errorf("ring(16): %d bridges, want 0", got)
	}
	if got := countBridgeEdges(Path(16)); got != 15 {
		t.Errorf("path(16): %d bridges, want 15", got)
	}
	if got := countBridgeEdges(Lollipop(5, 7)); got != 7 {
		t.Errorf("lollipop(5,7): %d bridges, want 7 (the tail)", got)
	}

	// A doubled edge (multigraph) plus a pendant: only the pendant edge is
	// a bridge.
	b := NewBuilder(3, "multi")
	for _, e := range [][2]int{{0, 1}, {0, 1}, {1, 2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := countBridgeEdges(g); got != 1 {
		t.Errorf("multigraph: %d bridges, want 1 (parallel edges are never bridges)", got)
	}
}

// TestMaskEdges: cutting one ring edge yields a connected path-like graph
// whose surviving ports keep their relative order, with a correct port map
// and valid reverse-port structure.
func TestMaskEdges(t *testing.T) {
	g := Ring(8)
	deleted := make([]bool, g.NumArcs())
	// Delete the edge {3, 4}: the arc leaving 3 through its port toward 4.
	p34, ok := g.PortToward(3, 4)
	if !ok {
		t.Fatal("no port 3->4")
	}
	deleted[g.ArcID(3, p34)] = true

	ng, toOld, err := MaskEdges(g, deleted)
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumNodes() != 8 || ng.NumEdges() != 7 {
		t.Fatalf("masked graph has %d nodes / %d edges, want 8 / 7", ng.NumNodes(), ng.NumEdges())
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	if ng.Degree(3) != 1 || ng.Degree(4) != 1 {
		t.Fatalf("cut endpoints have degrees %d/%d, want 1/1", ng.Degree(3), ng.Degree(4))
	}
	// Untouched nodes keep their full port fan in order.
	for v := 0; v < 8; v++ {
		if v == 3 || v == 4 {
			continue
		}
		if ng.Degree(v) != 2 {
			t.Fatalf("node %d degree %d after unrelated cut", v, ng.Degree(v))
		}
		for p := 0; p < 2; p++ {
			if int(toOld[v][p]) != p {
				t.Fatalf("node %d port %d remapped to %d without a deletion", v, p, toOld[v][p])
			}
			if ng.Neighbor(v, p) != g.Neighbor(v, p) {
				t.Fatalf("node %d port %d heads to %d, originally %d", v, p, ng.Neighbor(v, p), g.Neighbor(v, p))
			}
		}
	}
	// The endpoints' surviving port maps back to the original port it was.
	if orig := int(toOld[3][0]); ng.Neighbor(3, 0) != g.Neighbor(3, orig) {
		t.Fatal("endpoint port map broken at node 3")
	}

	// Cutting a second edge disconnects the path and must be refused.
	p01, _ := ng.PortToward(0, 1)
	del2 := make([]bool, ng.NumArcs())
	del2[ng.ArcID(0, p01)] = true
	if _, _, err := MaskEdges(ng, del2); !errors.Is(err, ErrDisconnects) {
		t.Fatalf("disconnecting mask returned %v, want ErrDisconnects", err)
	}
}

// TestMaskEdgesMarksBothDirections: marking either arc of an edge removes
// both directions.
func TestMaskEdgesMarksBothDirections(t *testing.T) {
	g := Complete(5)
	deleted := make([]bool, g.NumArcs())
	p, _ := g.PortToward(4, 2) // mark the "reverse" side only
	deleted[g.ArcID(4, p)] = true
	ng, _, err := MaskEdges(g, deleted)
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumEdges() != g.NumEdges()-1 {
		t.Fatalf("edges %d, want %d", ng.NumEdges(), g.NumEdges()-1)
	}
	if _, ok := ng.PortToward(2, 4); ok {
		t.Error("forward arc 2->4 survived a reverse-side deletion")
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
}

// Package graph implements the port-labeled undirected multigraphs on which
// the rotor-router and random-walk processes run.
//
// Following Section 1.3 of Klasing, Kosowski, Pająk and Sauerwald
// ("The multi-agent rotor-router on the ring", PODC 2013 / Distrib. Comput.
// 2017), a graph G = (V, E) is undirected and connected; the processes move
// on the directed symmetric version Ĝ whose arc set is
// {(u,v), (v,u) : {u,v} ∈ E}. Every node v has a fixed cyclic order ρ_v of
// its outgoing arcs, represented here by port numbers 0..deg(v)-1; the arc
// after port p in ρ_v is port (p+1) mod deg(v).
package graph

import (
	"errors"
	"fmt"

	"rotorring/internal/xrand"
)

// Arc is one directed arc of the symmetric version Ĝ, identified by its tail
// node and the port it leaves through.
type Arc struct {
	// To is the head of the arc.
	To int
	// RevPort is the port at To through which the reverse arc (To -> tail)
	// leaves. It allows O(1) answers to "which port did the agent come in
	// through", which the domain analysis needs.
	RevPort int
}

// Graph is an immutable connected undirected multigraph with port labels.
// Use a Builder or one of the topology constructors (Ring, Grid2D, ...) to
// create one. The zero value is an empty graph and not usable.
type Graph struct {
	adj    [][]Arc
	m      int // number of undirected edges
	name   string
	base   []int // base[v] = sum of degrees of nodes < v, for ArcID
	maxDeg int   // max_v deg(v), frozen with base
}

// Builder accumulates edges and produces a Graph. Ports are assigned in
// edge-insertion order: the first edge added at a node gets its port 0.
type Builder struct {
	adj  [][]Arc
	m    int
	name string
}

// NewBuilder returns a Builder for a graph with n nodes, labeled 0..n-1.
func NewBuilder(n int, name string) *Builder {
	return &Builder{adj: make([][]Arc, n), name: name}
}

// AddEdge adds the undirected edge {u, v}. Self-loops are rejected
// (the rotor-router model of the paper has none); parallel edges are
// permitted, as the model is a multigraph.
func (b *Builder) AddEdge(u, v int) error {
	n := len(b.adj)
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d not supported", u)
	}
	pu, pv := len(b.adj[u]), len(b.adj[v])
	b.adj[u] = append(b.adj[u], Arc{To: v, RevPort: pv})
	b.adj[v] = append(b.adj[v], Arc{To: u, RevPort: pu})
	b.m++
	return nil
}

// Build validates connectivity and returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	g := &Graph{adj: b.adj, m: b.m, name: b.name}
	if g.NumNodes() == 0 {
		return nil, errors.New("graph: no nodes")
	}
	if !g.Connected() {
		return nil, fmt.Errorf("graph: %q is not connected", b.name)
	}
	g.freezeArcIDs()
	return g, nil
}

// freezeArcIDs precomputes the prefix sums of degrees used by ArcID — and
// the degree maximum — so that the Graph is safe for concurrent use after
// construction.
func (g *Graph) freezeArcIDs() {
	base := make([]int, len(g.adj)+1)
	for i, a := range g.adj {
		base[i+1] = base[i] + len(a)
		if len(a) > g.maxDeg {
			g.maxDeg = len(a)
		}
	}
	g.base = base
}

// mustBuild is used by the topology constructors, whose edge sets are
// correct by construction.
func (b *Builder) mustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the human-readable topology name (for example "ring(64)").
func (g *Graph) Name() string { return g.name }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns |E| (undirected edges).
func (g *Graph) NumEdges() int { return g.m }

// NumArcs returns |Ê| = 2|E|, the number of arcs of the directed symmetric
// version.
func (g *Graph) NumArcs() int { return 2 * g.m }

// Degree returns deg(v).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// MaxDegree returns max_v deg(v), precomputed at construction.
func (g *Graph) MaxDegree() int { return g.maxDeg }

// Arc returns the arc leaving v through port p.
func (g *Graph) Arc(v, p int) Arc { return g.adj[v][p] }

// Neighbor returns the head of the arc leaving v through port p.
func (g *Graph) Neighbor(v, p int) int { return g.adj[v][p].To }

// Neighbors returns the heads of all arcs out of v, indexed by port.
// The returned slice is a copy and may be modified by the caller.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	for p, a := range g.adj[v] {
		out[p] = a.To
	}
	return out
}

// PortToward returns the lowest-numbered port of v whose arc heads to u, and
// whether such a port exists.
func (g *Graph) PortToward(v, u int) (int, bool) {
	for p, a := range g.adj[v] {
		if a.To == u {
			return p, true
		}
	}
	return 0, false
}

// ArcID returns a dense identifier in [0, NumArcs) for the arc leaving v
// through port p, usable to index per-arc counters.
func (g *Graph) ArcID(v, p int) int {
	return g.base[v] + p
}

// Connected reports whether the graph is connected (isolated-node graphs of
// one node count as connected).
func (g *Graph) Connected() bool {
	n := g.NumNodes()
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.adj[v] {
			if !seen[a.To] {
				seen[a.To] = true
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == n
}

// BFSDist returns the vector of hop distances from src.
func (g *Graph) BFSDist(src int) []int {
	n := g.NumNodes()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[v] {
			if dist[a.To] < 0 {
				dist[a.To] = dist[v] + 1
				queue = append(queue, a.To)
			}
		}
	}
	return dist
}

// Diameter returns the graph diameter D = max_{u,v} dist(u,v). It runs a BFS
// from every node (O(|V|·|E|)), which is fine at simulation scales.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, x := range g.BFSDist(v) {
			if x > d {
				d = x
			}
		}
	}
	return d
}

// Validate checks the structural invariants of the port labeling:
// every arc's RevPort points back to it, and port numbers are dense.
// Topology constructors are covered by tests; Validate is exported so that
// user-built graphs (Builder) can be sanity-checked too.
func (g *Graph) Validate() error {
	for v := range g.adj {
		for p, a := range g.adj[v] {
			if a.To < 0 || a.To >= len(g.adj) {
				return fmt.Errorf("graph: node %d port %d heads out of range (%d)", v, p, a.To)
			}
			back := g.adj[a.To]
			if a.RevPort < 0 || a.RevPort >= len(back) {
				return fmt.Errorf("graph: node %d port %d has invalid reverse port %d", v, p, a.RevPort)
			}
			rev := back[a.RevPort]
			if rev.To != v || rev.RevPort != p {
				return fmt.Errorf("graph: arcs (%d,%d) and reverse disagree: %+v", v, p, rev)
			}
		}
	}
	return nil
}

// ShufflePorts returns a copy of g with every node's cyclic port order
// independently permuted using rng. The paper's adversary fixes the port
// ordering; shuffling lets tests explore orderings on graphs with degree
// above 2 (on the ring all cyclic orders coincide, as noted in §1.3).
func (g *Graph) ShufflePorts(rng *xrand.Rand) *Graph {
	n := g.NumNodes()
	ng := &Graph{adj: make([][]Arc, n), m: g.m, name: g.name + "+shuffled"}
	perm := make([][]int, n) // perm[v][oldPort] = newPort
	for v := 0; v < n; v++ {
		d := len(g.adj[v])
		p := rng.Perm(d)
		perm[v] = p
		ng.adj[v] = make([]Arc, d)
	}
	for v := 0; v < n; v++ {
		for oldP, a := range g.adj[v] {
			ng.adj[v][perm[v][oldP]] = Arc{To: a.To, RevPort: perm[a.To][a.RevPort]}
		}
	}
	ng.freezeArcIDs()
	return ng
}

package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"rotorring/internal/xrand"
)

// allTopologies returns a representative instance of every constructor, for
// invariant sweeps.
func allTopologies(t *testing.T) []*Graph {
	t.Helper()
	rr, err := RandomRegular(20, 3, xrand.New(1))
	if err != nil {
		t.Fatalf("RandomRegular: %v", err)
	}
	return []*Graph{
		Ring(3), Ring(8), Ring(101),
		Path(2), Path(17),
		Grid2D(1, 5), Grid2D(4, 4), Grid2D(7, 3),
		Torus2D(3, 3), Torus2D(5, 4),
		Complete(2), Complete(6),
		Star(2), Star(9),
		Hypercube(1), Hypercube(4),
		Lollipop(4, 5),
		CompleteBinaryTree(2), CompleteBinaryTree(4),
		rr,
	}
}

func TestTopologyInvariants(t *testing.T) {
	for _, g := range allTopologies(t) {
		g := g
		t.Run(g.Name(), func(t *testing.T) {
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !g.Connected() {
				t.Fatal("not connected")
			}
			// Handshake lemma.
			degSum := 0
			for v := 0; v < g.NumNodes(); v++ {
				degSum += g.Degree(v)
			}
			if degSum != 2*g.NumEdges() {
				t.Fatalf("degree sum %d != 2|E| = %d", degSum, 2*g.NumEdges())
			}
			if g.NumArcs() != 2*g.NumEdges() {
				t.Fatalf("NumArcs %d != 2|E| %d", g.NumArcs(), 2*g.NumEdges())
			}
			// ArcID density: all ids distinct and in range.
			seen := make(map[int]bool, g.NumArcs())
			for v := 0; v < g.NumNodes(); v++ {
				for p := 0; p < g.Degree(v); p++ {
					id := g.ArcID(v, p)
					if id < 0 || id >= g.NumArcs() {
						t.Fatalf("ArcID(%d,%d) = %d out of range", v, p, id)
					}
					if seen[id] {
						t.Fatalf("ArcID(%d,%d) = %d duplicated", v, p, id)
					}
					seen[id] = true
				}
			}
		})
	}
}

func TestRingStructure(t *testing.T) {
	const n = 12
	g := Ring(n)
	if g.NumNodes() != n || g.NumEdges() != n {
		t.Fatalf("ring(%d): nodes=%d edges=%d", n, g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < n; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("ring degree at %d is %d", v, g.Degree(v))
		}
		if got := g.Neighbor(v, RingCW); got != (v+1)%n {
			t.Fatalf("cw neighbor of %d = %d", v, got)
		}
		if got := g.Neighbor(v, RingCCW); got != (v-1+n)%n {
			t.Fatalf("ccw neighbor of %d = %d", v, got)
		}
	}
	if d := g.Diameter(); d != n/2 {
		t.Fatalf("ring diameter = %d, want %d", d, n/2)
	}
}

func TestPathStructure(t *testing.T) {
	g := Path(9)
	if g.Diameter() != 8 {
		t.Fatalf("path(9) diameter = %d", g.Diameter())
	}
	if g.Degree(0) != 1 || g.Degree(8) != 1 {
		t.Fatal("path endpoints must have degree 1")
	}
	for v := 1; v < 8; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("path interior degree at %d is %d", v, g.Degree(v))
		}
	}
}

func TestDiameters(t *testing.T) {
	tests := []struct {
		g    *Graph
		want int
	}{
		{Ring(10), 5},
		{Ring(11), 5},
		{Complete(7), 1},
		{Star(8), 2},
		{Hypercube(5), 5},
		{Grid2D(4, 6), 8},
		{Torus2D(4, 6), 5},
		{CompleteBinaryTree(4), 6},
	}
	for _, tc := range tests {
		if got := tc.g.Diameter(); got != tc.want {
			t.Errorf("%s diameter = %d, want %d", tc.g.Name(), got, tc.want)
		}
	}
}

func TestGridCornerDegrees(t *testing.T) {
	g := Grid2D(5, 4)
	wantDeg := map[int]int{
		0:  2, // corner
		4:  2,
		15: 2,
		19: 2,
		2:  3, // edge mid
		7:  4, // interior (x=2,y=1)
	}
	for v, want := range wantDeg {
		if got := g.Degree(v); got != want {
			t.Errorf("grid degree(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestTorusIsRegular(t *testing.T) {
	g := Torus2D(5, 7)
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("torus degree at %d = %d, want 4", v, g.Degree(v))
		}
	}
}

func TestHypercubeIsRegular(t *testing.T) {
	g := Hypercube(6)
	if g.NumNodes() != 64 {
		t.Fatalf("hypercube(6) nodes = %d", g.NumNodes())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) != 6 {
			t.Fatalf("hypercube degree at %d = %d", v, g.Degree(v))
		}
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3, "bad")
	if err := b.AddEdge(0, 3); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := b.AddEdge(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestBuilderRejectsDisconnected(t *testing.T) {
	b := NewBuilder(4, "disc")
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("disconnected graph accepted")
	} else if !strings.Contains(err.Error(), "not connected") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestBuilderAllowsParallelEdges(t *testing.T) {
	b := NewBuilder(2, "multi")
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.Degree(0) != 2 {
		t.Fatalf("multigraph: edges=%d deg0=%d", g.NumEdges(), g.Degree(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestPortToward(t *testing.T) {
	g := Ring(5)
	p, ok := g.PortToward(2, 3)
	if !ok || p != RingCW {
		t.Fatalf("PortToward(2,3) = %d,%v", p, ok)
	}
	p, ok = g.PortToward(2, 1)
	if !ok || p != RingCCW {
		t.Fatalf("PortToward(2,1) = %d,%v", p, ok)
	}
	if _, ok := g.PortToward(2, 4); ok {
		t.Fatal("PortToward found non-adjacent node")
	}
}

func TestBFSDistOnRing(t *testing.T) {
	g := Ring(8)
	dist := g.BFSDist(0)
	want := []int{0, 1, 2, 3, 4, 3, 2, 1}
	for v, w := range want {
		if dist[v] != w {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], w)
		}
	}
}

func TestNeighborsCopy(t *testing.T) {
	g := Ring(4)
	ns := g.Neighbors(0)
	ns[0] = 99
	if g.Neighbor(0, 0) == 99 {
		t.Fatal("Neighbors leaked internal state")
	}
}

func TestRandomRegularProperties(t *testing.T) {
	rng := xrand.New(7)
	for _, tc := range []struct{ n, d int }{{10, 3}, {24, 4}, {50, 3}} {
		g, err := RandomRegular(tc.n, tc.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tc.n, tc.d, err)
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.Degree(v) != tc.d {
				t.Fatalf("degree at %d = %d, want %d", v, g.Degree(v), tc.d)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
	}
}

func TestRandomRegularRejectsBadParams(t *testing.T) {
	rng := xrand.New(1)
	if _, err := RandomRegular(5, 3, rng); err == nil { // odd n*d
		t.Error("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil { // d >= n
		t.Error("d >= n accepted")
	}
	if _, err := RandomRegular(10, 1, rng); err == nil { // d < 2
		t.Error("d < 2 accepted")
	}
}

func TestShufflePortsPreservesStructure(t *testing.T) {
	rng := xrand.New(3)
	for _, g := range []*Graph{Complete(6), Hypercube(4), Grid2D(4, 4)} {
		sg := g.ShufflePorts(rng)
		if err := sg.Validate(); err != nil {
			t.Fatalf("%s shuffled invalid: %v", g.Name(), err)
		}
		if sg.NumEdges() != g.NumEdges() {
			t.Fatalf("%s shuffled changed edge count", g.Name())
		}
		// Multisets of neighbors must be preserved per node.
		for v := 0; v < g.NumNodes(); v++ {
			a := neighborMultiset(g, v)
			b := neighborMultiset(sg, v)
			for u, c := range a {
				if b[u] != c {
					t.Fatalf("%s node %d neighbor multiset changed", g.Name(), v)
				}
			}
		}
	}
}

func neighborMultiset(g *Graph, v int) map[int]int {
	m := make(map[int]int)
	for p := 0; p < g.Degree(v); p++ {
		m[g.Neighbor(v, p)]++
	}
	return m
}

func TestRingArcReciprocityProperty(t *testing.T) {
	check := func(raw uint8) bool {
		n := int(raw%100) + 3
		g := Ring(n)
		for v := 0; v < n; v++ {
			for p := 0; p < 2; p++ {
				a := g.Arc(v, p)
				back := g.Arc(a.To, a.RevPort)
				if back.To != v || back.RevPort != p {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConstructorPanicsOnBadInput(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Ring(2)", func() { Ring(2) }},
		{"Path(1)", func() { Path(1) }},
		{"Grid2D(0,5)", func() { Grid2D(0, 5) }},
		{"Grid2D(1,1)", func() { Grid2D(1, 1) }},
		{"Torus2D(2,3)", func() { Torus2D(2, 3) }},
		{"Complete(1)", func() { Complete(1) }},
		{"Star(1)", func() { Star(1) }},
		{"Hypercube(0)", func() { Hypercube(0) }},
		{"Lollipop(1,1)", func() { Lollipop(1, 1) }},
		{"CompleteBinaryTree(1)", func() { CompleteBinaryTree(1) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

func TestLollipopStructure(t *testing.T) {
	g := Lollipop(5, 4)
	if g.NumNodes() != 9 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Clique part: nodes 1..4 have degree 4; node 0 also joins the path.
	if g.Degree(0) != 5 {
		t.Fatalf("junction degree = %d", g.Degree(0))
	}
	for v := 1; v < 5; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("clique degree at %d = %d", v, g.Degree(v))
		}
	}
	// Path tail: last node degree 1.
	if g.Degree(8) != 1 {
		t.Fatalf("tail end degree = %d", g.Degree(8))
	}
	if g.Diameter() != 5 {
		t.Fatalf("diameter = %d", g.Diameter())
	}
}

func TestCompleteBinaryTreeStructure(t *testing.T) {
	g := CompleteBinaryTree(3) // 7 nodes
	if g.NumNodes() != 7 || g.NumEdges() != 6 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(0) != 2 {
		t.Fatalf("root degree = %d", g.Degree(0))
	}
	for v := 3; v < 7; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf %d degree = %d", v, g.Degree(v))
		}
	}
}

package deploy

import (
	"errors"
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/stats"
)

func pathSystem(t *testing.T, n, k int) *core.System {
	t.Helper()
	g := graph.Path(n)
	ptr, err := core.PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSystem(g,
		core.WithAgentsAt(core.AllOnNode(0, k)...),
		core.WithPointers(ptr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestControllerFreezeReleaseAccounting(t *testing.T) {
	s := pathSystem(t, 16, 4)
	c := NewController(s)
	if c.FreeAt(0) != 4 {
		t.Fatalf("free at 0 = %d", c.FreeAt(0))
	}
	c.FreezeAll()
	if c.FreeAt(0) != 0 || c.FrozenAt(0) != 4 {
		t.Fatalf("freeze: free=%d frozen=%d", c.FreeAt(0), c.FrozenAt(0))
	}
	if err := c.Release(0, 2); err != nil {
		t.Fatal(err)
	}
	if c.FreeAt(0) != 2 || c.FrozenAt(0) != 2 {
		t.Fatalf("release: free=%d frozen=%d", c.FreeAt(0), c.FrozenAt(0))
	}
	if err := c.Release(0, 3); err == nil {
		t.Fatal("over-release accepted")
	}
	if err := c.Release(99, 1); err == nil {
		t.Fatal("out-of-range release accepted")
	}
	c.ThawAll()
	if c.FreeAt(0) != 4 {
		t.Fatalf("thaw: free=%d", c.FreeAt(0))
	}
}

func TestFrozenAgentsDoNotMove(t *testing.T) {
	s := pathSystem(t, 32, 5)
	c := NewController(s)
	c.FreezeAll()
	if err := c.Release(0, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		c.Step()
		// Four frozen agents must remain at node 0 forever.
		if s.AgentsAt(0) < 4 {
			t.Fatalf("round %d: frozen agents moved (agents at 0: %d)", i+1, s.AgentsAt(0))
		}
	}
	// Exactly one agent wanders.
	free := c.FreePositions()
	if len(free) != 1 {
		t.Fatalf("free positions = %v", free)
	}
}

func TestRunFreeUntilArrival(t *testing.T) {
	s := pathSystem(t, 64, 3)
	c := NewController(s)
	c.FreezeAll()
	rounds, err := c.RunFreeUntilArrival(0, 10, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rounds <= 0 {
		t.Fatalf("rounds = %d", rounds)
	}
	if c.FreeAt(10) != 0 {
		t.Fatal("arrival did not re-freeze")
	}
	if s.AgentsAt(10) != 1 {
		t.Fatalf("agent not parked at 10: %v", s.Positions())
	}
	// The zigzag against reflecting pointers costs about distance².
	if rounds < 10 || rounds > 500 {
		t.Errorf("zigzag to distance 10 took %d rounds", rounds)
	}
}

func TestRunUntilBudget(t *testing.T) {
	s := pathSystem(t, 64, 2)
	c := NewController(s)
	_, err := c.RunUntil(func(*core.System) bool { return false }, 10)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestTheorem1DeploymentValidation(t *testing.T) {
	if _, err := Theorem1Deployment(100, 2, Theorem1Options{}); err == nil {
		t.Error("k=2 accepted (Lemma 13 needs k > 3)")
	}
	if _, err := Theorem1Deployment(10, 6, Theorem1Options{}); err == nil {
		t.Error("path too short accepted")
	}
}

func TestTheorem1DeploymentCoversAndLogs(t *testing.T) {
	const (
		n = 192
		k = 4
	)
	res, err := Theorem1Deployment(n, k, Theorem1Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoverRounds <= 0 {
		t.Fatal("no rounds recorded")
	}
	if res.FullyActiveRounds <= 0 || res.FullyActiveRounds > res.CoverRounds {
		t.Fatalf("τ = %d not in (0, %d]", res.FullyActiveRounds, res.CoverRounds)
	}
	if len(res.Log) < 3 {
		t.Fatalf("log too short: %+v", res.Log)
	}
	if res.Log[0].Kind != PhaseA {
		t.Fatalf("first phase = %s", res.Log[0].Kind)
	}
	// S must be non-decreasing across the log and reach n by coverage.
	prevS := 0.0
	for i, rec := range res.Log {
		if rec.S < prevS {
			t.Fatalf("phase %d: S decreased %v -> %v", i, prevS, rec.S)
		}
		prevS = rec.S
		if rec.Rounds < 0 {
			t.Fatalf("phase %d: negative rounds", i)
		}
	}
	last := res.Log[len(res.Log)-1]
	if last.Covered != n {
		t.Fatalf("final phase covered %d/%d", last.Covered, n)
	}
}

func TestSlowdownLemmaBracketsUndelayedCoverTime(t *testing.T) {
	// Lemma 3 applied to the Theorem 1 deployment: τ <= C(R[k]) <= T.
	const (
		n = 160
		k = 4
	)
	res, err := Theorem1Deployment(n, k, Theorem1Options{})
	if err != nil {
		t.Fatal(err)
	}
	undelayed := pathSystem(t, n, k)
	cover, err := undelayed.RunUntilCovered(64 * int64(n) * int64(n))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.FullyActiveRounds <= cover && cover <= res.CoverRounds) {
		t.Fatalf("slow-down lemma violated: τ=%d, C=%d, T=%d",
			res.FullyActiveRounds, cover, res.CoverRounds)
	}
}

func TestTheorem1B1RoundsDominate(t *testing.T) {
	// In the paper's accounting, Phase B1 (fully active rounds) dominates
	// the deployment's runtime: B1 ∈ Ω(A) and B1 ∈ Ω(B2). At simulation
	// scale we check B1 is at least a third of the total.
	res, err := Theorem1Deployment(256, 5, Theorem1Options{})
	if err != nil {
		t.Fatal(err)
	}
	var byKind = map[PhaseKind]int64{}
	for _, rec := range res.Log {
		byKind[rec.Kind] += rec.Rounds
	}
	total := byKind[PhaseA] + byKind[PhaseB1] + byKind[PhaseB2]
	if total == 0 || byKind[PhaseB1]*3 < total {
		t.Errorf("phase rounds A=%d B1=%d B2=%d: B1 does not dominate",
			byKind[PhaseA], byKind[PhaseB1], byKind[PhaseB2])
	}
}

func TestWorstCaseCoverScalesAsNSquaredOverLogK(t *testing.T) {
	// Theorem 1's headline: C = Θ(n²/log k) for the all-on-one-node start
	// with pointers toward the origin. Check the normalized ratio
	// C·log₂(k)/n² stays within a modest band while n doubles twice.
	const k = 4
	var ratios []float64
	for _, n := range []int{128, 256, 512} {
		s := pathSystem(t, n, k)
		cover, err := s.RunUntilCovered(64 * int64(n) * int64(n))
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, float64(cover)*stats.Harmonic(k)/float64(n*n))
	}
	if spread := stats.RatioSpread(ratios); spread > 1.6 {
		t.Errorf("normalized worst-case cover ratios %v vary by %.2fx", ratios, spread)
	}
}

func TestControllerOnRing(t *testing.T) {
	// The release-one-by-one choreography used by Theorems 2 and 4 runs on
	// the ring: spread clustered agents to equally spaced positions.
	const n, k = 64, 4
	g := graph.Ring(n)
	ptr, err := core.PointersNegative(g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSystem(g,
		core.WithAgentsAt(core.AllOnNode(0, k)...),
		core.WithPointers(ptr))
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(s)
	c.FreezeAll()
	for i := 1; i < k; i++ {
		target := i * n / k
		if _, err := c.RunFreeUntilArrival(0, target, 1<<22); err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		if s.AgentsAt(target) != 1 {
			t.Fatalf("agent %d not parked at %d: %v", i, target, s.Positions())
		}
	}
	// All agents parked; release everything and confirm coverage finishes
	// within the best-case budget Θ((n/k)²) with generous constants.
	c.ThawAll()
	rounds := int64(0)
	for s.Covered() < n {
		c.StepFree()
		rounds++
		if rounds > 64*int64(n/k)*int64(n/k) {
			t.Fatalf("spread configuration did not cover in Θ((n/k)²) time")
		}
	}
}

func TestFreePositionsSorted(t *testing.T) {
	s := pathSystem(t, 32, 6)
	c := NewController(s)
	c.FreezeAll()
	if err := c.Release(0, 3); err != nil {
		t.Fatal(err)
	}
	c.Step()
	c.Step()
	pos := c.FreePositions()
	if len(pos) != 3 {
		t.Fatalf("free positions = %v", pos)
	}
	for i := 1; i < len(pos); i++ {
		if pos[i] < pos[i-1] {
			t.Fatalf("positions not sorted: %v", pos)
		}
	}
}

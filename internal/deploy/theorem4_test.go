package deploy

import (
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/xrand"
)

func TestTheorem4SpreadValidation(t *testing.T) {
	if _, err := Theorem4Spread(100, 2, []int{0}); err == nil {
		t.Error("mismatched starts accepted")
	}
	if _, err := Theorem4Spread(100, 1, []int{0}); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestTheorem4SpreadBuildsLowerBoundConfiguration(t *testing.T) {
	const k = 4
	const n = 160 * k * k // comfortably above the remote-vertex threshold
	rng := xrand.New(2718)
	starts := core.RandomPositions(n, k, rng)
	res, err := Theorem4Spread(n, k, starts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.WindowIntact {
		t.Fatal("protective window around the remote vertex was eroded")
	}
	if res.MinSpacing < n/(20*k) {
		t.Fatalf("agents parked too close: min spacing %d < n/20k = %d", res.MinSpacing, n/(20*k))
	}
	if res.SpreadRounds <= 0 {
		t.Fatal("no spreading rounds recorded")
	}

	// The Theorem 4 argument: releasing everyone from here, covering the
	// window costs Ω((n/k)²) rounds since the bordering domains have size
	// Ω(n/k). Use a conservative constant.
	sys := res.Controller.System()
	res.Controller.ThawAll()
	already := sys.Round()
	cover, err := sys.RunUntilCovered(already + 64*int64(n/k)*int64(n/k))
	if err != nil {
		t.Fatal(err)
	}
	remaining := cover - already
	lower := int64(n/k) * int64(n/k) / 800 // Ω((n/20k)²) with slack
	if remaining < lower {
		t.Fatalf("remaining cover time %d below Ω((n/k)²) expectation %d", remaining, lower)
	}
}

func TestTheorem4SpreadDeterministic(t *testing.T) {
	const k = 3
	const n = 200 * k * k
	starts := core.RandomPositions(n, k, xrand.New(5))
	a, err := Theorem4Spread(n, k, starts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Theorem4Spread(n, k, starts)
	if err != nil {
		t.Fatal(err)
	}
	if a.RemoteVertex != b.RemoteVertex || a.SpreadRounds != b.SpreadRounds {
		t.Fatal("construction not deterministic")
	}
}

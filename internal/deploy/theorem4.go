package deploy

import (
	"fmt"
	"sort"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/remote"
)

// This file implements the delayed deployment from the proof of Theorem 4
// (the Ω((n/k)²) cover-time lower bound): starting from an arbitrary
// placement with negatively initialized pointers, agents are released one
// by one and parked so that
//
//   - every agent ends with a private stretch of at least ~n/(10k) nodes
//     (so every domain has size Ω(n/k) — the Lemma 8 precondition), and
//   - a window of ~n/(10k) nodes around a far remote vertex v stays
//     unexplored.
//
// Releasing all agents afterwards, the window must be consumed by agents
// whose domains already have size Ω(n/k), which takes Ω((n/k)²) rounds —
// the lower bound. Theorem4Spread performs the parking phase and reports
// whether the protective window survived it.

// Theorem4Result reports the outcome of the spreading construction.
type Theorem4Result struct {
	// RemoteVertex is the far remote vertex v the window protects.
	RemoteVertex int
	// WindowIntact reports that no node within distance n/(20k) of v was
	// visited during the construction.
	WindowIntact bool
	// SpreadRounds is the number of (partially delayed) rounds used.
	SpreadRounds int64
	// MinSpacing is the minimum ring distance between parked agents.
	MinSpacing int
	// Controller holds the parked system (all agents frozen), ready for
	// the caller to ThawAll and measure the remaining cover time.
	Controller *Controller
}

// Theorem4Spread builds the lower-bound configuration on the n-ring with k
// agents starting from the given positions. It requires a far remote
// vertex to exist (the paper works with n ≥ 440k²; random placements at
// n ≳ 100k² usually suffice).
func Theorem4Spread(n, k int, starts []int) (*Theorem4Result, error) {
	if len(starts) != k || k < 2 {
		return nil, fmt.Errorf("deploy: need k >= 2 starting positions, got %d", len(starts))
	}
	placement, err := remote.NewPlacement(n, starts)
	if err != nil {
		return nil, err
	}
	v, ok := placement.FarRemoteVertex(n / (9 * k))
	if !ok {
		return nil, fmt.Errorf("deploy: no remote vertex at distance >= n/9k; increase n (paper: n >= 440k²)")
	}

	g := graph.Ring(n)
	ptr, err := core.PointersNegative(g, starts)
	if err != nil {
		return nil, err
	}
	// The adversary knows the placement, hence v, at time 0. Inside the
	// protected window the pointers form the reflecting barrier of the
	// theorem: every window node points toward its nearest window border
	// (where the bordering agents will sit), so whichever agent first
	// enters the window after the release is sent straight back — the
	// "negatively initialized" barrier that makes each captured node cost
	// a full domain traversal.
	window := n / (20 * k)
	for d := -window + 1; d < window; d++ {
		node := ((v+d)%n + n) % n
		if d >= 0 {
			ptr[node] = graph.RingCW
		} else {
			ptr[node] = graph.RingCCW
		}
	}
	sys, err := core.NewSystem(g, core.WithAgentsAt(starts...), core.WithPointers(ptr))
	if err != nil {
		return nil, err
	}
	ctl := NewController(sys)
	ctl.FreezeAll()

	// Split the agents by side of v (clockwise offset 1..n/2 = "right",
	// else "left") and sort each side by distance from v.
	type parked struct{ pos, dist int }
	var left, right []parked
	for _, s := range starts {
		cw := (s - v + n) % n
		if cw == 0 {
			return nil, fmt.Errorf("deploy: agent starts on the remote vertex")
		}
		if cw <= n/2 {
			right = append(right, parked{pos: s, dist: cw})
		} else {
			left = append(left, parked{pos: s, dist: n - cw})
		}
	}
	sort.Slice(right, func(i, j int) bool { return right[i].dist < right[j].dist })
	sort.Slice(left, func(i, j int) bool { return left[i].dist < left[j].dist })

	// Park each side, exactly as in the paper: the closest agent goes to
	// distance n/(20k) from v, and the i-th closest (i >= 2) to distance
	// (i-1)·n/(10k). Definition 2 (v is remote) guarantees the i-th
	// closest agent starts farther out than its target, so every agent
	// moves only toward v and its own target shields the window from that
	// side. A released agent's zigzag also expands AWAY from the target,
	// and can travel around the far side of the ring — the paper blocks
	// such wanderers at the antipode v + n/2 and re-parks them in a second
	// phase at the next free slot of whichever side they drift to.
	spacing := n / (10 * k)
	budget := 64 * int64(n) * int64(n)
	antipode := (v + n/2) % n
	nextDist := map[int]int{+1: window, -1: window} // next slot distance per side
	var deferred int                                // agents blocked at the antipode

	park := func(side []parked, dir int) error {
		for i := range side {
			ag := side[i]
			targetDist := nextDist[dir]
			if ag.dist <= targetDist {
				// Cannot happen for a remote v; park in place defensively
				// rather than move outward (which could erode the window).
				continue
			}
			target := ((v+dir*targetDist)%n + n) % n
			if ctl.FrozenAt(ag.pos) == 0 {
				return fmt.Errorf("deploy: no frozen agent at %d", ag.pos)
			}
			reached, _, err := ctl.RunFreeUntilAny(ag.pos, []int{target, antipode}, budget)
			if err != nil {
				return fmt.Errorf("agent %d (side %+d): %w", i, dir, err)
			}
			if reached == antipode {
				deferred++
				continue
			}
			nextDist[dir] = targetDist + spacing
		}
		return nil
	}
	if err := park(right, +1); err != nil {
		return nil, err
	}
	if err := park(left, -1); err != nil {
		return nil, err
	}

	// Second phase: release the blocked agents one by one; each parks at
	// the first free slot it reaches on either side. Both slots lie
	// between the agent and the window, so the window stays protected.
	for ; deferred > 0; deferred-- {
		slotR := (v + nextDist[+1]) % n
		slotL := ((v-nextDist[-1])%n + n) % n
		reached, _, err := ctl.RunFreeUntilAny(antipode, []int{slotR, slotL}, budget)
		if err != nil {
			return nil, fmt.Errorf("deferred agent: %w", err)
		}
		if reached == slotR {
			nextDist[+1] += spacing
		} else {
			nextDist[-1] += spacing
		}
	}

	res := &Theorem4Result{
		RemoteVertex: v,
		SpreadRounds: sys.Round(),
		Controller:   ctl,
		WindowIntact: true,
		MinSpacing:   n,
	}
	for d := -window + 1; d < window; d++ {
		if sys.Visits(((v+d)%n+n)%n) > 0 {
			res.WindowIntact = false
			break
		}
	}
	positions := sys.Occupied()
	sort.Ints(positions)
	for i, p := range positions {
		q := positions[(i+1)%len(positions)]
		d := (q - p + n) % n
		if i == len(positions)-1 {
			d = (positions[0] + n - p) % n
		}
		if d > 0 && d < res.MinSpacing {
			res.MinSpacing = d
		}
	}
	return res, nil
}

// Package deploy implements delayed deployments of the multi-agent
// rotor-router (paper §2.1) and the constructive deployments used in the
// proofs of Theorems 1–4.
//
// A delayed deployment D : V × N → N stops D(v,t) agents at node v in round
// t. Delays are an analytical device: by Lemma 1 they can only reduce visit
// counts, and by the slow-down lemma (Lemma 3) a deployment that covers at
// time T with τ fully-active rounds brackets the undelayed cover time as
// τ <= C(R[k]) <= T. The Controller here realizes the proofs' "release the
// agents one by one" choreography on top of core.System's per-round holds,
// and Theorem1Deployment reproduces the Phase A / Phase B schedule used to
// show the Θ(n²/log k) worst-case bound (Fig. 2 of the paper).
package deploy

import (
	"errors"
	"fmt"
	"sort"

	"rotorring/internal/continuum"
	"rotorring/internal/core"
	"rotorring/internal/graph"
)

// ErrBudget is returned when a deployment phase exceeds its round budget.
var ErrBudget = errors.New("deploy: round budget exhausted")

// Controller drives a system as a delayed deployment, maintaining a frozen
// sub-multiset of agents that is held in place every round.
type Controller struct {
	sys    *core.System
	frozen []int64
}

// NewController wraps sys with every agent initially free.
func NewController(sys *core.System) *Controller {
	return &Controller{
		sys:    sys,
		frozen: make([]int64, sys.Graph().NumNodes()),
	}
}

// System returns the underlying system.
func (c *Controller) System() *core.System { return c.sys }

// FreezeAll freezes every agent at its current node.
func (c *Controller) FreezeAll() {
	for v := range c.frozen {
		c.frozen[v] = c.sys.AgentsAt(v)
	}
}

// ThawAll releases every agent.
func (c *Controller) ThawAll() {
	for v := range c.frozen {
		c.frozen[v] = 0
	}
}

// Release unfreezes count agents at node v.
func (c *Controller) Release(v int, count int64) error {
	if v < 0 || v >= len(c.frozen) {
		return fmt.Errorf("deploy: node %d out of range", v)
	}
	if c.frozen[v] < count {
		return fmt.Errorf("deploy: only %d frozen agents at node %d, need %d", c.frozen[v], v, count)
	}
	c.frozen[v] -= count
	return nil
}

// FrozenAt returns the number of frozen agents at v.
func (c *Controller) FrozenAt(v int) int64 { return c.frozen[v] }

// FreeAt returns the number of free (moving) agents at v.
func (c *Controller) FreeAt(v int) int64 { return c.sys.AgentsAt(v) - c.frozen[v] }

// FreePositions returns the sorted multiset of free agent positions.
func (c *Controller) FreePositions() []int {
	var out []int
	for _, v := range c.sys.Occupied() {
		for i := int64(0); i < c.FreeAt(v); i++ {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// Step advances one round, holding the frozen agents.
func (c *Controller) Step() { c.sys.StepHeld(c.frozen) }

// StepFree advances one round with every agent active (a fully-active round
// in the sense of Lemma 3).
func (c *Controller) StepFree() { c.sys.StepHeld(nil) }

// RunUntil steps (holding frozen agents) until pred holds, returning the
// number of rounds taken. It fails with ErrBudget after maxRounds.
func (c *Controller) RunUntil(pred func(*core.System) bool, maxRounds int64) (int64, error) {
	for r := int64(0); ; r++ {
		if pred(c.sys) {
			return r, nil
		}
		if r >= maxRounds {
			return r, fmt.Errorf("%w (%d rounds)", ErrBudget, maxRounds)
		}
		c.Step()
	}
}

// RunFreeUntilArrival releases one agent at from, steps until some free
// agent reaches target, then freezes everything again. It returns the
// rounds taken.
func (c *Controller) RunFreeUntilArrival(from, target int, maxRounds int64) (int64, error) {
	_, rounds, err := c.RunFreeUntilAny(from, []int{target}, maxRounds)
	return rounds, err
}

// RunFreeUntilAny releases one agent at from, steps until some free agent
// reaches one of the target nodes, then freezes everything again. It
// returns the target reached and the rounds taken. Multiple stop nodes
// implement the paper's safety stops (Theorem 4 blocks wandering agents at
// the antipode of the protected vertex).
func (c *Controller) RunFreeUntilAny(from int, targets []int, maxRounds int64) (int, int64, error) {
	if len(targets) == 0 {
		return 0, 0, fmt.Errorf("deploy: no stop targets")
	}
	if err := c.Release(from, 1); err != nil {
		return 0, 0, err
	}
	reached := -1
	rounds, err := c.RunUntil(func(s *core.System) bool {
		for _, t := range targets {
			if c.FreeAt(t) > 0 {
				reached = t
				return true
			}
		}
		return false
	}, maxRounds)
	c.FreezeAll()
	return reached, rounds, err
}

// PhaseKind labels entries of a deployment log.
type PhaseKind string

// Phases of the Theorem 1 deployment.
const (
	PhaseA  PhaseKind = "A"  // initial formation of the desirable configuration
	PhaseB1 PhaseKind = "B1" // simultaneous release (fully active rounds)
	PhaseB2 PhaseKind = "B2" // one-by-one position adjustment
)

// PhaseRecord is one logged deployment phase.
type PhaseRecord struct {
	Kind PhaseKind
	// Rounds spent in the phase.
	Rounds int64
	// S is the desirable-configuration length after the phase.
	S float64
	// Covered is the number of covered nodes after the phase.
	Covered int
}

// Theorem1Result reports a full run of the Phase A/B deployment.
type Theorem1Result struct {
	// CoverRounds is the total rounds T until the path was covered.
	CoverRounds int64
	// FullyActiveRounds is τ: rounds in which no agent was held. The
	// slow-down lemma gives τ <= C(R[k]) <= T.
	FullyActiveRounds int64
	// Log holds one record per executed phase.
	Log []PhaseRecord
	// Profile is the Lemma 13 sequence used for agent positioning.
	Profile *continuum.Profile
}

// Theorem1Options tunes the deployment; zero values choose paper-faithful
// scaled-down defaults that terminate at test scale.
type Theorem1Options struct {
	// Kappa scales the length of phase B1 (the paper uses 2·k⁴·a_k·S
	// rounds; Kappa replaces the k⁴ factor to keep simulations tractable).
	// Default: k².
	Kappa float64
	// S0 is the initial desirable-configuration length. Default:
	// max(4k, n/16).
	S0 float64
	// MaxRounds bounds the whole run. Default: 64·n².
	MaxRounds int64
}

// Theorem1Deployment runs the delayed deployment from the proof of
// Theorem 1 on the n-node path with k agents starting at node 0 and all
// pointers initialized toward node 0 (the worst case). It maintains
// desirable configurations of growing length S_j: agent i (counted from the
// frontier) sits at position round(p_i·S_j) with all visited pointers
// facing back toward the origin.
func Theorem1Deployment(n, k int, opts Theorem1Options) (*Theorem1Result, error) {
	if k <= 3 {
		return nil, fmt.Errorf("deploy: Theorem1Deployment needs k > 3 (Lemma 13), got %d", k)
	}
	if n < 8*k {
		return nil, fmt.Errorf("deploy: path of %d nodes too short for k=%d", n, k)
	}
	prof, err := continuum.LimitProfile(k)
	if err != nil {
		return nil, err
	}
	if opts.Kappa == 0 {
		opts.Kappa = float64(k * k * k)
	}
	if opts.S0 == 0 {
		opts.S0 = float64(4 * k)
		if alt := float64(n) / 16; alt > opts.S0 {
			opts.S0 = alt
		}
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 64 * int64(n) * int64(n)
	}

	g := graph.Path(n)
	ptr, err := core.PointersTowardNode(g, 0)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(g,
		core.WithAgentsAt(core.AllOnNode(0, k)...),
		core.WithPointers(ptr))
	if err != nil {
		return nil, err
	}
	ctl := NewController(sys)
	res := &Theorem1Result{Profile: prof}
	prefix := prof.Prefix()

	targets := func(S float64) []int {
		// targets[i] for i = 1..k (agent 1 = farthest from the origin).
		// The paper's path is [1, n] with positions p_i·S; on our
		// 0-indexed path that is node p_i·S − 1.
		ts := make([]int, k+1)
		for i := 1; i <= k; i++ {
			pos := int(prefix[i]*S) - 1
			if pos >= n {
				pos = n - 1
			}
			if pos < 0 {
				pos = 0
			}
			ts[i] = pos
		}
		return ts
	}

	// Phase A: form the first desirable configuration. Agents leave node 0
	// one at a time; agent 1 travels farthest. Later agents stop short of
	// earlier ones, so release order farthest-first keeps the path clear.
	ctl.FreezeAll()
	S := opts.S0
	ts := targets(S)
	startRound := sys.Round()
	for i := 1; i <= k; i++ {
		if _, err := ctl.RunFreeUntilArrival(0, ts[i], opts.MaxRounds); err != nil {
			return nil, fmt.Errorf("phase A agent %d: %w", i, err)
		}
	}
	res.Log = append(res.Log, PhaseRecord{
		Kind: PhaseA, Rounds: sys.Round() - startRound, S: S, Covered: sys.Covered(),
	})

	// Phase B: grow S until the path is covered.
	for sys.Covered() < n {
		if sys.Round() > opts.MaxRounds {
			return nil, fmt.Errorf("%w at S=%.0f (round %d)", ErrBudget, S, sys.Round())
		}

		// B1: release everything for ceil(kappa·a_k·S) rounds. During
		// these rounds the frontier advances naturally by about
		// kappa·a_k/(2a_1) nodes (the √t law of §2.3), carrying every
		// agent close to its next desirable position, so that B2 is only
		// a small correction — the paper's ±24k bound.
		b1 := int64(opts.Kappa*prof.A[k]*S) + 1
		ctl.ThawAll()
		startRound = sys.Round()
		for r := int64(0); r < b1 && sys.Covered() < n; r++ {
			ctl.StepFree()
		}
		// Guard against stagnation at small scale: B1 must make progress
		// for the deployment to terminate.
		for sys.Covered() <= int(S) && sys.Covered() < n {
			ctl.StepFree()
		}
		ctl.FreezeAll()
		res.Log = append(res.Log, PhaseRecord{
			Kind: PhaseB1, Rounds: sys.Round() - startRound, S: S, Covered: sys.Covered(),
		})
		if sys.Covered() >= n {
			break
		}

		// B2: the next desirable length is the territory B1 actually
		// covered (on the path, coverage is the contiguous prefix
		// [0, covered)); agents adjust one by one (frontier-most first)
		// to their positions p_i·S.
		S = float64(sys.Covered())
		ts = targets(S)
		startRound = sys.Round()
		for i := 1; i <= k; i++ {
			// The i-th agent from the frontier is the i-th occupied
			// frozen position from the right.
			from, ok := nthFrozenFromRight(ctl, i)
			if !ok {
				return nil, fmt.Errorf("deploy: cannot locate agent %d", i)
			}
			if from >= ts[i] {
				continue // already at or past its target
			}
			if _, err := ctl.RunFreeUntilArrival(from, ts[i], opts.MaxRounds); err != nil {
				return nil, fmt.Errorf("phase B2 agent %d: %w", i, err)
			}
		}
		res.Log = append(res.Log, PhaseRecord{
			Kind: PhaseB2, Rounds: sys.Round() - startRound, S: S, Covered: sys.Covered(),
		})
	}

	res.CoverRounds = sys.Round()
	res.FullyActiveRounds = sys.FullyActiveRounds()
	return res, nil
}

// nthFrozenFromRight returns the node of the i-th frozen agent counting
// from the highest node index downward (i >= 1).
func nthFrozenFromRight(c *Controller, i int) (int, bool) {
	occ := c.System().Occupied()
	sort.Sort(sort.Reverse(sort.IntSlice(occ)))
	seen := int64(0)
	for _, v := range occ {
		seen += c.FrozenAt(v)
		if seen >= int64(i) {
			return v, true
		}
	}
	return 0, false
}

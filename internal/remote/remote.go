// Package remote implements the remote vertices of Definition 2 (§3.2) and
// the census bound of Lemma 15.
//
// For a placement S = {s_1, ..., s_k} of k agents on the n-ring, a vertex v
// is remote when, for every radius index 1 <= r <= k, each of the two arcs
// [v, v + r·n/(10k)] and [v − r·n/(10k), v] contains at most r starting
// positions. Remote vertices are guaranteed to be slow to cover: they are
// the pivot of the rotor-router lower bound (Theorem 4) and of the
// random-walk lower bound (Lemmas 17 and 18). Lemma 15 shows at least
// 0.8n − o(n) vertices are remote for any placement when k = ω(1).
package remote

import (
	"fmt"
	"sort"
)

// Placement is a precomputed, queryable agent placement on the n-ring.
type Placement struct {
	n      int
	k      int
	sorted []int // starting positions, sorted, possibly with repeats
}

// NewPlacement validates and indexes a placement of agents on an n-ring.
func NewPlacement(n int, starts []int) (*Placement, error) {
	if n < 1 {
		return nil, fmt.Errorf("remote: ring size %d", n)
	}
	if len(starts) == 0 {
		return nil, fmt.Errorf("remote: empty placement")
	}
	sorted := append([]int(nil), starts...)
	sort.Ints(sorted)
	if sorted[0] < 0 || sorted[len(sorted)-1] >= n {
		return nil, fmt.Errorf("remote: position out of range [0,%d)", n)
	}
	return &Placement{n: n, k: len(starts), sorted: sorted}, nil
}

// N returns the ring size.
func (p *Placement) N() int { return p.n }

// K returns the number of agents.
func (p *Placement) K() int { return p.k }

// CountIn returns how many starting positions lie on the clockwise arc from
// a to b inclusive (a, b taken mod n). The arc from a to b is the set
// {a, a+1, ..., b} walking clockwise.
func (p *Placement) CountIn(a, b int) int {
	a = ((a % p.n) + p.n) % p.n
	b = ((b % p.n) + p.n) % p.n
	if a <= b {
		return p.countRange(a, b)
	}
	// Wrapping arc: [a, n-1] plus [0, b].
	return p.countRange(a, p.n-1) + p.countRange(0, b)
}

// countRange counts positions in the plain interval [lo, hi].
func (p *Placement) countRange(lo, hi int) int {
	from := sort.SearchInts(p.sorted, lo)
	to := sort.SearchInts(p.sorted, hi+1)
	return to - from
}

// IsRemote reports whether v satisfies both constraints of Definition 2:
// for all 1 <= r <= k, the arcs [v, v + r·n/(10k)] and [v − r·n/(10k), v]
// each contain at most r starting positions.
func (p *Placement) IsRemote(v int) bool {
	for r := 1; r <= p.k; r++ {
		radius := r * p.n / (10 * p.k)
		if p.CountIn(v, v+radius) > r {
			return false
		}
		if p.CountIn(v-radius, v) > r {
			return false
		}
	}
	return true
}

// RemoteVertices returns all remote vertices in increasing order.
func (p *Placement) RemoteVertices() []int {
	var out []int
	for v := 0; v < p.n; v++ {
		if p.IsRemote(v) {
			out = append(out, v)
		}
	}
	return out
}

// CountRemote returns the number of remote vertices (the quantity Lemma 15
// bounds below by 0.8n − o(n)).
func (p *Placement) CountRemote() int {
	count := 0
	for v := 0; v < p.n; v++ {
		if p.IsRemote(v) {
			count++
		}
	}
	return count
}

// DistanceToNearestAgent returns the ring distance from v to the closest
// starting position; Theorem 4 works with remote vertices at distance at
// least n/(9k) from every agent.
func (p *Placement) DistanceToNearestAgent(v int) int {
	best := p.n
	for _, s := range p.sorted {
		d := s - v
		if d < 0 {
			d = -d
		}
		if p.n-d < d {
			d = p.n - d
		}
		if d < best {
			best = d
		}
	}
	return best
}

// FarRemoteVertex returns a remote vertex at distance at least minDist from
// every starting position, or ok=false if none exists. Theorem 4 uses
// minDist = n/(9k).
func (p *Placement) FarRemoteVertex(minDist int) (int, bool) {
	for v := 0; v < p.n; v++ {
		if p.DistanceToNearestAgent(v) >= minDist && p.IsRemote(v) {
			return v, true
		}
	}
	return 0, false
}

package remote

import (
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/xrand"
)

func TestNewPlacementValidation(t *testing.T) {
	if _, err := NewPlacement(0, []int{0}); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewPlacement(10, nil); err == nil {
		t.Error("empty placement accepted")
	}
	if _, err := NewPlacement(10, []int{10}); err == nil {
		t.Error("out-of-range start accepted")
	}
	if _, err := NewPlacement(10, []int{-1}); err == nil {
		t.Error("negative start accepted")
	}
}

func TestCountIn(t *testing.T) {
	p, err := NewPlacement(20, []int{0, 5, 5, 10, 19})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a, b, want int
	}{
		{0, 4, 1},   // just node 0
		{0, 5, 3},   // 0 and the two 5s
		{5, 10, 3},  // 5,5,10
		{11, 19, 1}, // 19
		{19, 0, 2},  // wrap: 19 and 0
		{15, 5, 4},  // wrap: 19, 0, 5, 5
		{6, 9, 0},
		{-1, 0, 2}, // negative a normalizes to 19
	}
	for _, tc := range cases {
		if got := p.CountIn(tc.a, tc.b); got != tc.want {
			t.Errorf("CountIn(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCountInBruteForce(t *testing.T) {
	rng := xrand.New(17)
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(50)
		k := 1 + rng.Intn(10)
		starts := core.RandomPositions(n, k, rng)
		p, err := NewPlacement(n, starts)
		if err != nil {
			t.Fatal(err)
		}
		a, b := rng.Intn(n), rng.Intn(n)
		want := 0
		for off := 0; ; off++ {
			v := (a + off) % n
			for _, s := range starts {
				if s == v {
					want++
				}
			}
			if v == b {
				break
			}
		}
		if got := p.CountIn(a, b); got != want {
			t.Fatalf("trial %d (n=%d): CountIn(%d,%d) = %d, brute force %d",
				trial, n, a, b, got, want)
		}
	}
}

func TestAntipodeOfSingleClusterIsRemote(t *testing.T) {
	// All agents on node 0 of a large ring: the antipode must be remote,
	// and nodes within the cluster must not be (for r=1 the arc already
	// catches more than 1 start).
	const n, k = 1000, 10
	p, err := NewPlacement(n, core.AllOnNode(0, k))
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsRemote(n / 2) {
		t.Error("antipode not remote")
	}
	if p.IsRemote(0) {
		t.Error("cluster center is remote")
	}
	// Nodes just before the cluster (the arc [v, v+r·n/10k] catches all
	// 10 starts at radius r=1 of width 10): not remote.
	if p.IsRemote(n - 1) {
		t.Error("node adjacent to cluster is remote")
	}
}

func TestEquallySpacedMostVerticesRemote(t *testing.T) {
	// With equal spacing, every arc of length r·n/(10k) contains at most
	// r/10 + 1 starts <= r for r >= 2... in fact all vertices should be
	// remote except possibly none. Check the census is the full ring.
	const n, k = 1200, 12
	p, err := NewPlacement(n, core.EquallySpaced(n, k))
	if err != nil {
		t.Fatal(err)
	}
	if got := p.CountRemote(); got != n {
		t.Errorf("equally spaced: %d/%d vertices remote", got, n)
	}
}

func TestLemma15Census(t *testing.T) {
	// Lemma 15: for k = ω(1), at least 0.8n − o(n) vertices are remote for
	// ANY placement. Try adversarial-ish placements at simulation scale.
	const n = 4000
	const k = 40
	rng := xrand.New(5)
	placements := map[string][]int{
		"all-on-one":      core.AllOnNode(0, k),
		"equally-spaced":  core.EquallySpaced(n, k),
		"uniform-random":  core.RandomPositions(n, k, rng),
		"two-clusters":    append(core.AllOnNode(0, k/2), core.AllOnNode(n/2, k/2)...),
		"geometric-burst": geometricBurst(n, k),
	}
	for name, starts := range placements {
		p, err := NewPlacement(n, starts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := p.CountRemote(); got < int(0.8*float64(n)) {
			t.Errorf("%s: only %d/%d remote vertices (Lemma 15 wants >= %d - o(n))",
				name, got, n, int(0.8*float64(n)))
		}
	}
}

// geometricBurst clusters agents at geometrically spaced positions, a
// placement that stresses multiple radii r simultaneously.
func geometricBurst(n, k int) []int {
	starts := make([]int, 0, k)
	pos := 1
	for len(starts) < k {
		starts = append(starts, pos%n)
		pos *= 2
		if pos >= n {
			pos = pos%n + 1
		}
	}
	return starts
}

func TestDistanceToNearestAgent(t *testing.T) {
	p, err := NewPlacement(100, []int{10, 90})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[int]int{10: 0, 90: 0, 50: 40, 0: 10, 99: 9, 11: 1}
	for v, want := range cases {
		if got := p.DistanceToNearestAgent(v); got != want {
			t.Errorf("dist(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestFarRemoteVertexExists(t *testing.T) {
	// Theorem 4 setup: with n >= 440k² there is a remote vertex at
	// distance >= n/(9k) from every agent.
	const k = 4
	const n = 440 * k * k
	rng := xrand.New(23)
	for trial := 0; trial < 10; trial++ {
		starts := core.RandomPositions(n, k, rng)
		p, err := NewPlacement(n, starts)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := p.FarRemoteVertex(n / (9 * k))
		if !ok {
			t.Fatalf("trial %d: no far remote vertex", trial)
		}
		if p.DistanceToNearestAgent(v) < n/(9*k) || !p.IsRemote(v) {
			t.Fatalf("trial %d: vertex %d does not satisfy requirements", trial, v)
		}
	}
}

func TestRemoteVerticesMatchesCount(t *testing.T) {
	p, err := NewPlacement(500, core.AllOnNode(100, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.RemoteVertices()) != p.CountRemote() {
		t.Fatal("RemoteVertices and CountRemote disagree")
	}
	for _, v := range p.RemoteVertices() {
		if !p.IsRemote(v) {
			t.Fatalf("listed vertex %d not remote", v)
		}
	}
}

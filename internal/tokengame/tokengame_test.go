package tokengame

import (
	"testing"
	"testing/quick"

	"rotorring/internal/xrand"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 10); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := New(3, -1); err == nil {
		t.Error("negative eta accepted")
	}
	g, err := New(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 4 || g.Eta() != 100 || g.Min() != 100 {
		t.Fatalf("fresh game: k=%d eta=%d min=%d", g.K(), g.Eta(), g.Min())
	}
	if g.LowerBound() != 100-5*4+5 {
		t.Fatalf("bound = %d", g.LowerBound())
	}
}

func TestLegalityRules(t *testing.T) {
	g, _ := New(3, 10)
	// Equal stacks: both directions legal.
	if !g.Legal(0, 1) || !g.Legal(1, 0) {
		t.Fatal("equal stacks should allow moves")
	}
	// Self-moves and out-of-range are illegal.
	if g.Legal(0, 0) || g.Legal(-1, 1) || g.Legal(0, 3) {
		t.Fatal("degenerate moves accepted")
	}
	// Each 1->0 move widens the gap by 2; the move from (14,6) is the last
	// legal one (dest 14 <= 6+8), leaving (15,5).
	for i := 0; i < 5; i++ {
		if err := g.Move(1, 0); err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	if g.Height(0) != 15 || g.Height(1) != 5 {
		t.Fatalf("heights %v", g.Stacks())
	}
	if g.Legal(1, 0) {
		t.Fatal("move onto dest 10 above source accepted")
	}
	if err := g.Move(1, 0); err == nil {
		t.Fatal("illegal move silently played")
	}
	// From stack 2 (h=10) onto 0 (h=15): 15 <= 10+8, legal; then again
	// (16 <= 9+8), legal; then 17 <= 8+8 fails.
	if err := g.Move(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Move(2, 0); err != nil {
		t.Fatal(err)
	}
	if g.Legal(2, 0) {
		t.Fatalf("move onto dest 9 above source accepted (heights %v)", g.Stacks())
	}
}

func TestEmptySourceIllegal(t *testing.T) {
	g, _ := New(2, 0)
	if g.Legal(0, 1) {
		t.Fatal("move from empty stack accepted")
	}
}

func TestMovesCounterAndStacksCopy(t *testing.T) {
	g, _ := New(3, 5)
	if err := g.Move(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Moves() != 1 {
		t.Fatalf("moves = %d", g.Moves())
	}
	s := g.Stacks()
	s[0] = 99
	if g.Height(0) == 99 {
		t.Fatal("Stacks leaked internal slice")
	}
}

func TestInvariantUnderRandomPlay(t *testing.T) {
	check := func(seed uint64) bool {
		rng := xrand.New(seed)
		k := 2 + rng.Intn(10)
		eta := 5*k + rng.Intn(100)
		g, err := New(k, eta)
		if err != nil {
			return false
		}
		player := &RandomPlayer{Rng: rng}
		_, err = Play(g, player, 5000)
		return err == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInvariantUnderGreedyAttack(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16, 32} {
		eta := 10 * k
		g, err := New(k, eta)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Play(g, GreedyAttacker{}, 200_000); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestInvariantUnderCascadeAttack(t *testing.T) {
	for _, k := range []int{2, 5, 10, 25} {
		eta := 8 * k
		g, err := New(k, eta)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Play(g, CascadeAttacker{}, 500_000); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestCascadeActuallyDigsDeep(t *testing.T) {
	// The cascade attack should drive the minimum well below η (the bound
	// η - 5k + 5 is nearly tight in k); verify the attack costs the
	// minimum at least 2k tokens for a sizable game, so the invariant test
	// above is not vacuous.
	const k = 20
	eta := 10 * k
	g, _ := New(k, eta)
	if _, err := Play(g, CascadeAttacker{}, 1_000_000); err != nil {
		t.Fatal(err)
	}
	if drop := eta - g.Min(); drop < 2*k {
		t.Errorf("cascade attack only dug %d below eta (k=%d)", drop, k)
	}
}

func TestTokenConservation(t *testing.T) {
	rng := xrand.New(77)
	g, _ := New(6, 50)
	player := &RandomPlayer{Rng: rng}
	if _, err := Play(g, player, 10_000); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, h := range g.Stacks() {
		total += h
	}
	if total != 6*50 {
		t.Fatalf("tokens not conserved: %d", total)
	}
}

func TestPlayStopsWhenPlayerPasses(t *testing.T) {
	// The cascade attacker eventually runs out of legal chain moves.
	g, _ := New(3, 30)
	moves, err := Play(g, CascadeAttacker{}, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if moves == 1<<30 {
		t.Fatal("cascade never passed")
	}
	// After passing, no chain move is legal.
	for i := 0; i+1 < g.K(); i++ {
		if g.Legal(i, i+1) {
			t.Fatalf("pass reported but move %d->%d still legal", i, i+1)
		}
	}
}

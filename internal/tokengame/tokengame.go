// Package tokengame implements the one-player token game from the proof of
// Lemma 8 (appendix of the paper), which abstracts how lazy-domain sizes can
// move between adjacent domains.
//
// The game has k stacks, each starting with η tokens. A move transfers one
// token from one stack to another and is legal only if the receiving stack
// holds at most 8 tokens more than the sending stack before the move. The
// paper's key claim: after any number of legal moves, every stack still
// holds at least η − 5k + 5 tokens. The rotor-router connection: capturing
// a node from lazy domain a into lazy domain b is only possible when
// |V'_b| ≤ |V'_a| + 8 (Lemma 8 part 1), so the evolution of lazy-domain
// sizes is an instance of this game and domain sizes can never degenerate.
package tokengame

import (
	"fmt"

	"rotorring/internal/xrand"
)

// Slack is the legality margin of the game: a move onto a stack is legal
// while the destination holds at most Slack more tokens than the source.
const Slack = 8

// Game is a token game state.
type Game struct {
	stacks []int
	eta    int
	moves  int
}

// New creates a game with k stacks of η tokens each. The paper's claim is
// meaningful for k >= 2.
func New(k, eta int) (*Game, error) {
	if k < 2 {
		return nil, fmt.Errorf("tokengame: need at least 2 stacks, got %d", k)
	}
	if eta < 0 {
		return nil, fmt.Errorf("tokengame: negative initial height %d", eta)
	}
	g := &Game{stacks: make([]int, k), eta: eta}
	for i := range g.stacks {
		g.stacks[i] = eta
	}
	return g, nil
}

// K returns the number of stacks.
func (g *Game) K() int { return len(g.stacks) }

// Eta returns the initial stack height η.
func (g *Game) Eta() int { return g.eta }

// Moves returns how many legal moves have been played.
func (g *Game) Moves() int { return g.moves }

// Stacks returns a copy of the stack heights.
func (g *Game) Stacks() []int { return append([]int(nil), g.stacks...) }

// Height returns the height of stack i.
func (g *Game) Height(i int) int { return g.stacks[i] }

// Min returns the smallest stack height.
func (g *Game) Min() int {
	m := g.stacks[0]
	for _, h := range g.stacks[1:] {
		if h < m {
			m = h
		}
	}
	return m
}

// LowerBound returns the paper's guaranteed minimum height η − 5k + 5.
func (g *Game) LowerBound() int { return g.eta - 5*len(g.stacks) + 5 }

// Legal reports whether moving one token from stack from to stack to is a
// legal move.
func (g *Game) Legal(from, to int) bool {
	if from == to || from < 0 || to < 0 || from >= len(g.stacks) || to >= len(g.stacks) {
		return false
	}
	if g.stacks[from] == 0 {
		return false
	}
	return g.stacks[to] <= g.stacks[from]+Slack
}

// Move transfers one token from stack from to stack to. It returns an error
// if the move is illegal.
func (g *Game) Move(from, to int) error {
	if !g.Legal(from, to) {
		return fmt.Errorf("tokengame: illegal move %d (h=%d) -> %d (h=%d)",
			from, g.heightOr(from), to, g.heightOr(to))
	}
	g.stacks[from]--
	g.stacks[to]++
	g.moves++
	return nil
}

func (g *Game) heightOr(i int) int {
	if i < 0 || i >= len(g.stacks) {
		return -1
	}
	return g.stacks[i]
}

// CheckInvariant verifies the Lemma 8 claim on the current state and
// reports an error naming the offending stack if it fails.
func (g *Game) CheckInvariant() error {
	bound := g.LowerBound()
	for i, h := range g.stacks {
		if h < bound {
			return fmt.Errorf("tokengame: stack %d fell to %d, below the bound %d", i, h, bound)
		}
	}
	return nil
}

// Player is a move-selection strategy; it returns (from, to, ok) where
// ok=false means the player passes (no move it wants is legal).
type Player interface {
	Next(g *Game) (from, to int, ok bool)
}

// RandomPlayer plays uniformly random legal moves.
type RandomPlayer struct {
	Rng *xrand.Rand
}

// Next picks a random legal move by rejection sampling (the game always has
// legal moves when some stack is nonempty, since equal stacks allow moves
// either way).
func (p *RandomPlayer) Next(g *Game) (int, int, bool) {
	k := g.K()
	for attempt := 0; attempt < 64*k; attempt++ {
		from := p.Rng.Intn(k)
		to := p.Rng.Intn(k)
		if g.Legal(from, to) {
			return from, to, true
		}
	}
	return 0, 0, false
}

// GreedyAttacker always tries to drain the currently smallest stack into
// the tallest stack it is still allowed to feed — the most adversarial
// simple strategy against the minimum.
type GreedyAttacker struct{}

// Next drains the minimum stack into the tallest legal destination.
func (GreedyAttacker) Next(g *Game) (int, int, bool) {
	k := g.K()
	from := 0
	for i := 1; i < k; i++ {
		if g.Height(i) < g.Height(from) {
			from = i
		}
	}
	best, found := -1, false
	for to := 0; to < k; to++ {
		if to == from || !g.Legal(from, to) {
			continue
		}
		if !found || g.Height(to) > g.Height(best) {
			best, found = to, true
		}
	}
	if !found {
		return 0, 0, false
	}
	return from, best, true
}

// CascadeAttacker pumps tokens along a fixed chain 0 -> 1 -> ... -> k-1,
// repeatedly taking from the leftmost stack that can legally feed its right
// neighbor. This realizes the worst case of the invariant analysis, where
// height drops accumulate along a chain of stacks.
type CascadeAttacker struct{}

// Next finds the leftmost legal chain move.
func (CascadeAttacker) Next(g *Game) (int, int, bool) {
	for i := 0; i+1 < g.K(); i++ {
		if g.Legal(i, i+1) {
			return i, i + 1, true
		}
	}
	return 0, 0, false
}

// Play runs up to maxMoves moves of the player, checking the invariant
// after every move. It stops early if the player passes. It returns the
// number of moves played and the first invariant violation, if any.
func Play(g *Game, p Player, maxMoves int) (int, error) {
	for i := 0; i < maxMoves; i++ {
		from, to, ok := p.Next(g)
		if !ok {
			return i, nil
		}
		if err := g.Move(from, to); err != nil {
			return i, err
		}
		if err := g.CheckInvariant(); err != nil {
			return i + 1, err
		}
	}
	return maxMoves, nil
}

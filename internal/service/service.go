// Package service is the rotord sweep service: a long-running job server
// that accepts wire-format SweepSpecs over HTTP, expands them into the
// engine's canonical job grids, shards job ranges across one bounded
// worker pool shared by every in-flight sweep, and streams each sweep's
// rows back as JSONL in canonical grid order.
//
// The service adds scheduling, persistence and caching around the engine —
// never computation: every row it emits is byte-identical to what a
// single-process rotorring.RunSweep would produce for the same spec,
// across shard counts, across server restarts mid-sweep, and across row-
// cache hits. That identity rests on three engine properties: job seeds
// derive from configuration coordinates (engine.ExpandedSweep.JobSeed),
// job execution is runner-independent (engine.JobRunner), and the JSONL
// encoding of a row is a pure function of the row (engine.RowBytes).
//
// Spool layout (one directory per server):
//
//	spool/
//	  cache/<aa>/<sha256 of job key>.row   content-addressed rows, index-free
//	  sweeps/<id>/spec.json               canonical wire spec (id's preimage)
//	  sweeps/<id>/meta.json               version, spec hash, job count
//	  sweeps/<id>/rows.jsonl              canonical row stream, append-only
//
// rows.jsonl doubles as the checkpoint: its complete-line count is the
// completed-row watermark, and a restarted server resumes every unfinished
// sweep from exactly there — re-emitting nothing, recomputing only what the
// cache cannot supply.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"rotorring/internal/engine"
)

// metaVersion versions meta.json so a future layout change can migrate or
// reject old spools explicitly.
const metaVersion = 1

// sweepMeta is the sweeps/<id>/meta.json layout.
type sweepMeta struct {
	V        int    `json:"v"`
	ID       string `json:"id"`
	SpecHash string `json:"specHash"`
	Jobs     int    `json:"jobs"`
}

// chunkSize is the job-range shard handed to a pool worker at a time:
// large enough that a worker usually runs a cell's replicas back to back
// (prototype reuse), small enough that many workers share one sweep.
const chunkSize = 32

// task is one sharded unit of work on the global pool: a slice of job
// indices of one sweep, in ascending order.
type task struct {
	sw   *sweepJob
	jobs []int
}

// Server is a rotord instance: a spool directory, a row cache, and a
// bounded worker pool shared by all in-flight sweeps.
type Server struct {
	spool   string
	workers int
	cache   *rowCache

	mu     sync.Mutex
	sweeps map[string]*sweepJob

	queue     chan task
	stop      chan struct{}
	closeOnce sync.Once
	feederWG  sync.WaitGroup
	workerWG  sync.WaitGroup
}

// Option configures a Server.
type Option func(*Server)

// Workers sets the shared pool size; n <= 0 selects GOMAXPROCS. Like the
// engine's worker knob, it can never affect any sweep's bytes, only
// wall-clock time.
func Workers(n int) Option {
	return func(s *Server) { s.workers = n }
}

// Open starts a server over the given spool directory, creating it if
// needed and recovering every sweep a previous server left behind:
// finished sweeps become immediately streamable, unfinished ones resume
// computing from their completed-row watermark.
func Open(spool string, opts ...Option) (*Server, error) {
	s := &Server{
		spool:  spool,
		sweeps: make(map[string]*sweepJob),
		queue:  make(chan task),
		stop:   make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	cache, err := newRowCache(filepath.Join(spool, "cache"))
	if err != nil {
		return nil, err
	}
	s.cache = cache
	if err := os.MkdirAll(s.sweepsDir(), 0o755); err != nil {
		return nil, fmt.Errorf("service: spool: %w", err)
	}
	for i := 0; i < s.workers; i++ {
		s.workerWG.Add(1)
		go s.workerLoop()
	}
	if err := s.recover(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func (s *Server) sweepsDir() string { return filepath.Join(s.spool, "sweeps") }

// NumWorkers returns the shared pool size.
func (s *Server) NumWorkers() int { return s.workers }

// Close stops scheduling and waits for in-flight work to drain. Sweeps
// that have not finished stay resumable: their watermark is on disk, and
// the next Open picks them up. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		s.feederWG.Wait()
		close(s.queue)
		s.workerWG.Wait()
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, sw := range s.sweeps {
			sw.mu.Lock()
			if sw.rows != nil {
				sw.rows.Close()
				sw.rows = nil
			}
			sw.mu.Unlock()
		}
	})
}

// Submit registers a sweep from wire-format spec bytes and starts (or
// finds) it. Submission is idempotent by content: the sweep id is derived
// from the canonical encoding's SHA-256, so re-POSTing an identical spec
// returns the running (or finished) sweep instead of duplicating work.
func (s *Server) Submit(wire []byte) (sw *sweepJob, created bool, err error) {
	spec, err := engine.DecodeWireSpec(wire)
	if err != nil {
		return nil, false, err
	}
	canonical, err := engine.EncodeWireSpec(spec)
	if err != nil {
		return nil, false, err
	}
	sum := sha256.Sum256(canonical)
	hash := hex.EncodeToString(sum[:])
	id := "sw-" + hash[:16]

	s.mu.Lock()
	if existing, ok := s.sweeps[id]; ok {
		s.mu.Unlock()
		return existing, false, nil
	}
	s.mu.Unlock()

	exp, err := engine.Expand(spec)
	if err != nil {
		return nil, false, err
	}
	sw = &sweepJob{
		id:      id,
		dir:     filepath.Join(s.sweepsDir(), id),
		hash:    hash,
		wire:    canonical,
		exp:     exp,
		pending: make(map[int][]byte),
		notify:  make(chan struct{}),
	}
	if err := os.MkdirAll(sw.dir, 0o755); err != nil {
		return nil, false, fmt.Errorf("service: spool: %w", err)
	}
	if err := os.WriteFile(filepath.Join(sw.dir, "spec.json"), canonical, 0o644); err != nil {
		return nil, false, fmt.Errorf("service: spool: %w", err)
	}
	meta, err := json.Marshal(sweepMeta{V: metaVersion, ID: id, SpecHash: hash, Jobs: exp.NumJobs()})
	if err != nil {
		return nil, false, err
	}
	if err := os.WriteFile(filepath.Join(sw.dir, "meta.json"), meta, 0o644); err != nil {
		return nil, false, fmt.Errorf("service: spool: %w", err)
	}
	watermark, err := sw.openRows()
	if err != nil {
		return nil, false, fmt.Errorf("service: spool: %w", err)
	}
	sw.completed = watermark

	s.mu.Lock()
	if racing, ok := s.sweeps[id]; ok {
		// A concurrent identical submission won the registration; the
		// spool files both sides wrote are identical by construction.
		s.mu.Unlock()
		sw.mu.Lock()
		if sw.rows != nil {
			sw.rows.Close()
		}
		sw.mu.Unlock()
		return racing, false, nil
	}
	s.sweeps[id] = sw
	s.mu.Unlock()

	s.startSweep(sw)
	return sw, true, nil
}

// Sweep returns a registered sweep by id.
func (s *Server) Sweep(id string) (*sweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// SweepIDs lists the registered sweep ids, sorted.
func (s *Server) SweepIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sweeps))
	for id := range s.sweeps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// recover reloads every sweep directory in the spool: specs re-expand to
// the same grids (the spec hash in meta.json pins the bytes), rows.jsonl
// yields the watermark, and unfinished sweeps resume scheduling.
func (s *Server) recover() error {
	entries, err := os.ReadDir(s.sweepsDir())
	if err != nil {
		return fmt.Errorf("service: spool: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		dir := filepath.Join(s.sweepsDir(), id)
		wire, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", id, err)
		}
		metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", id, err)
		}
		var meta sweepMeta
		if err := json.Unmarshal(metaBytes, &meta); err != nil {
			return fmt.Errorf("service: recover %s: meta.json: %w", id, err)
		}
		if meta.V != metaVersion {
			return fmt.Errorf("service: recover %s: meta version %d (this server speaks %d)", id, meta.V, metaVersion)
		}
		sum := sha256.Sum256(wire)
		if hash := hex.EncodeToString(sum[:]); hash != meta.SpecHash {
			return fmt.Errorf("service: recover %s: spec.json does not match its recorded hash", id)
		}
		spec, err := engine.DecodeWireSpec(wire)
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", id, err)
		}
		exp, err := engine.Expand(spec)
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", id, err)
		}
		if exp.NumJobs() != meta.Jobs {
			return fmt.Errorf("service: recover %s: spec expands to %d jobs, meta recorded %d", id, exp.NumJobs(), meta.Jobs)
		}
		sw := &sweepJob{
			id:      id,
			dir:     dir,
			hash:    meta.SpecHash,
			wire:    wire,
			exp:     exp,
			pending: make(map[int][]byte),
			notify:  make(chan struct{}),
		}
		watermark, err := sw.openRows()
		if err != nil {
			return fmt.Errorf("service: recover %s: %w", id, err)
		}
		if watermark > exp.NumJobs() {
			return fmt.Errorf("service: recover %s: %d rows on disk for %d jobs", id, watermark, exp.NumJobs())
		}
		sw.completed = watermark
		s.mu.Lock()
		s.sweeps[id] = sw
		s.mu.Unlock()
		s.startSweep(sw)
	}
	return nil
}

// startSweep launches the sweep's feeder, or closes the spool handle of an
// already-complete sweep.
func (s *Server) startSweep(sw *sweepJob) {
	sw.mu.Lock()
	remaining := sw.completed < sw.exp.NumJobs()
	if !remaining && sw.rows != nil {
		sw.rows.Close()
		sw.rows = nil
	}
	sw.mu.Unlock()
	if !remaining {
		return
	}
	s.feederWG.Add(1)
	go s.feed(sw)
}

// feed walks the sweep's unfinished job range once: cache hits deliver
// immediately (re-indexed to this grid), runs of misses shard into chunked
// tasks on the global pool. The walk starts at the watermark — rows below
// it are already on disk and are never recomputed or re-emitted.
func (s *Server) feed(sw *sweepJob) {
	defer s.feederWG.Done()
	var chunk []int
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		t := task{sw: sw, jobs: chunk}
		chunk = nil
		select {
		case s.queue <- t:
			return true
		case <-s.stop:
			return false
		}
	}
	sw.mu.Lock()
	start := sw.completed
	sw.mu.Unlock()
	for job := start; job < sw.exp.NumJobs(); job++ {
		select {
		case <-s.stop:
			return
		default:
		}
		if stored, ok := s.cache.load(sw.exp.JobKey(job)); ok {
			if b, err := reindexRow(stored, sw.exp, job); err == nil {
				if !flush() { // keep delivery order cache-friendly
					return
				}
				sw.deliver(job, b, true)
				continue
			}
			// Undecodable entries degrade to recomputation.
		}
		chunk = append(chunk, job)
		if len(chunk) >= chunkSize {
			if !flush() {
				return
			}
		}
	}
	flush()
}

// workerLoop is one slot of the shared pool. Runners are per-(worker,
// sweep): consecutive tasks of the same sweep reuse the runner — and with
// it the engine's prototype processes and the sweep's shared graph cache.
func (s *Server) workerLoop() {
	defer s.workerWG.Done()
	var cur *sweepJob
	var runner *engine.JobRunner
	for t := range s.queue {
		if t.sw != cur {
			cur, runner = t.sw, t.sw.exp.NewRunner()
		}
		for _, job := range t.jobs {
			row := runner.Run(job)
			b, err := engine.RowBytes(row)
			if err != nil {
				// A row the canonical codec cannot encode would also have
				// failed library-mode WriteJSONL; surface it as a sweep
				// failure rather than dropping the job silently.
				t.sw.mu.Lock()
				if t.sw.failed == "" {
					t.sw.failed = fmt.Sprintf("encode row %d: %v", job, err)
				}
				t.sw.broadcast()
				t.sw.mu.Unlock()
				continue
			}
			// Populate the content-addressed cache with the index-free
			// form before delivery; a failed store only costs a future
			// recomputation.
			indexFree := row
			indexFree.Index = 0
			if ib, err := engine.RowBytes(indexFree); err == nil {
				_ = s.cache.store(t.sw.exp.JobKey(job), ib)
			}
			t.sw.deliver(job, b, false)
		}
		select {
		case <-s.stop:
			return
		default:
		}
	}
}

// reindexRow rematerializes a cached index-free row under the current
// grid: decode, restore the job's cell index, re-encode. Byte-stability of
// the round trip (pinned in the engine's tests) makes the result identical
// to a fresh computation's bytes.
func reindexRow(stored []byte, exp *engine.ExpandedSweep, job int) ([]byte, error) {
	row, err := engine.DecodeRow(stored)
	if err != nil {
		return nil, err
	}
	cell, _ := exp.Job(job)
	row.Index = cell.Index
	return engine.RowBytes(row)
}

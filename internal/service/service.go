// Package service is the rotord sweep service: a long-running job server
// that accepts wire-format SweepSpecs over HTTP, expands them into the
// engine's canonical job grids, shards job ranges across one bounded
// worker pool shared by every in-flight sweep, and streams each sweep's
// rows back as JSONL in canonical grid order.
//
// The service adds scheduling, persistence and caching around the engine —
// never computation: every row it emits is byte-identical to what a
// single-process rotorring.RunSweep would produce for the same spec,
// across shard counts, across server restarts mid-sweep, and across row-
// cache hits. That identity rests on three engine properties: job seeds
// derive from configuration coordinates (engine.ExpandedSweep.JobSeed),
// job execution is runner-independent (engine.JobRunner), and the JSONL
// encoding of a row is a pure function of the row (engine.RowBytes).
//
// Spool layout (one directory per server):
//
//	spool/
//	  cache/<aa>/<sha256 of job key>.row   content-addressed rows, index-free
//	  sweeps/<id>/spec.json               canonical wire spec (id's preimage)
//	  sweeps/<id>/meta.json               version, spec hash, job count
//	  sweeps/<id>/rows.jsonl              canonical row stream, append-only
//	  quarantine/<id>/                    sweep dirs recovery refused to trust
//
// rows.jsonl doubles as the checkpoint: its complete-line count is the
// completed-row watermark, and a restarted server resumes every unfinished
// sweep from exactly there — re-emitting nothing, recomputing only what the
// cache cannot supply.
//
// # Failure model
//
// The server is built to survive the faults a real deployment sees (see
// DESIGN.md §5, "Failure model", for the full taxonomy → guarantee table):
//
//   - All spool I/O goes through the spoolFS seam, so disk faults (ENOSPC,
//     torn writes) are injectable deterministically in tests. A spool write
//     fault fails only the sweep it struck — status "failed" with the cause
//     — and the on-disk watermark stays exact, so a restart resumes it.
//   - Worker job execution runs under a recover barrier: a panicking
//     process, metric or topology fails its own sweep (panic value and job
//     key in the status) and never takes down other in-flight sweeps.
//   - spec.json and meta.json write crash-atomically (temp file + sync +
//     rename); recovery quarantines any sweep directory it cannot trust
//     into spool/quarantine/ and boots anyway.
//   - Submit enforces admission limits (request body, expanded job count,
//     concurrent active sweeps); Close drains under a bounded deadline.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rotorring/internal/cluster"
	"rotorring/internal/engine"
)

// metaVersion versions meta.json so a future layout change can migrate or
// reject old spools explicitly.
const metaVersion = 1

// sweepMeta is the sweeps/<id>/meta.json layout.
type sweepMeta struct {
	V        int    `json:"v"`
	ID       string `json:"id"`
	SpecHash string `json:"specHash"`
	Jobs     int    `json:"jobs"`
}

// chunkSize is the job-range shard handed to a pool worker at a time:
// large enough that a worker usually runs a cell's replicas back to back
// (prototype reuse), small enough that many workers share one sweep.
const chunkSize = 32

// defaultDrainTimeout bounds how long Close waits for in-flight jobs. A
// job that outlives the deadline is abandoned, not interrupted: its late
// delivery is dropped (the sweep's append handle is already closed) and
// the on-disk watermark — always a complete-row prefix — recomputes it on
// the next Open.
const defaultDrainTimeout = 30 * time.Second

// defaultMaxBodyBytes bounds a POSTed spec; wire specs are small, and the
// limit keeps a stray upload from ballooning memory.
const defaultMaxBodyBytes = 1 << 20

// task is one sharded unit of work on the global pool: a slice of job
// indices of one sweep, in ascending order.
type task struct {
	sw   *sweepJob
	jobs []int
}

// admissionError is a Submit rejection with HTTP semantics attached: the
// handler maps it straight to its status code (413 for size limits, 429
// with Retry-After for concurrency limits).
type admissionError struct {
	status     int
	retryAfter int // seconds; 0 omits the header
	msg        string
}

func (e *admissionError) Error() string { return e.msg }

// spoolError marks a Submit failure caused by spool storage rather than
// by the client's spec; the handler answers 500, not 400.
type spoolError struct{ err error }

func (e *spoolError) Error() string { return "service: spool: " + e.err.Error() }
func (e *spoolError) Unwrap() error { return e.err }

// Server is a rotord coordinator instance: a spool directory, a row
// cache, a bounded local worker pool shared by all in-flight sweeps, and
// the cluster coordinator that shards job chunks across registered worker
// nodes (internal/cluster). With zero workers registered the cluster path
// is never taken, so a single-node server behaves exactly as before.
type Server struct {
	spool   string
	workers int
	fs      spoolFS
	cache   *rowCache
	drain   time.Duration

	cluster  *cluster.Coordinator
	leaseTTL time.Duration
	stats    serverStats

	maxBody   int64
	maxJobs   int
	maxActive int

	// ready flips true once recovery finished and the pool is live, and
	// back to false when Close begins; GET /readyz reports it.
	ready atomic.Bool

	mu          sync.Mutex
	sweeps      map[string]*sweepJob
	quarantined []string // sweep ids recovery moved to spool/quarantine/

	queue     chan task
	stop      chan struct{}
	closeOnce sync.Once
	feederWG  sync.WaitGroup
	workerWG  sync.WaitGroup
}

// Option configures a Server.
type Option func(*Server)

// Workers sets the shared pool size; n <= 0 selects GOMAXPROCS. Like the
// engine's worker knob, it can never affect any sweep's bytes, only
// wall-clock time.
func Workers(n int) Option {
	return func(s *Server) { s.workers = n }
}

// MaxBodyBytes caps the size of a POSTed spec; over-limit submissions are
// rejected with 413. n <= 0 keeps the default (1 MiB).
func MaxBodyBytes(n int64) Option {
	return func(s *Server) { s.maxBody = n }
}

// MaxExpandedJobs caps how many jobs one sweep's grid may expand to;
// larger sweeps are rejected with 413 before any job runs. n <= 0 means
// unlimited.
func MaxExpandedJobs(n int) Option {
	return func(s *Server) { s.maxJobs = n }
}

// MaxActiveSweeps caps concurrently running sweeps; submissions beyond it
// are rejected with 429 and a Retry-After header. Re-submitting a spec
// that is already running is never rejected — idempotent submission wins
// over admission control. n <= 0 means unlimited.
func MaxActiveSweeps(n int) Option {
	return func(s *Server) { s.maxActive = n }
}

// DrainTimeout bounds how long Close waits for in-flight jobs before
// abandoning them (their partial work is dropped; the spool watermark
// stays exact). d <= 0 keeps the default (30s).
func DrainTimeout(d time.Duration) Option {
	return func(s *Server) { s.drain = d }
}

// LeaseTTL sets the cluster lease deadline and worker-liveness window: a
// worker silent (or sitting on a lease) for longer has its jobs
// reassigned. Like every scheduling knob it can never affect result
// bytes, only who computes them when. d <= 0 keeps the default
// (cluster.DefaultTTL).
func LeaseTTL(d time.Duration) Option {
	return func(s *Server) { s.leaseTTL = d }
}

// withFS swaps the spool storage implementation; the chaos suite uses it
// to inject deterministic disk faults.
func withFS(fs spoolFS) Option {
	return func(s *Server) { s.fs = fs }
}

// Open starts a server over the given spool directory, creating it if
// needed and recovering every sweep a previous server left behind:
// finished sweeps become immediately streamable, unfinished ones resume
// computing from their completed-row watermark, and directories recovery
// cannot decode are quarantined (moved aside, logged, boot continues).
func Open(spool string, opts ...Option) (*Server, error) {
	s := &Server{
		spool:   spool,
		fs:      osFS{},
		drain:   defaultDrainTimeout,
		maxBody: defaultMaxBodyBytes,
		sweeps:  make(map[string]*sweepJob),
		queue:   make(chan task),
		stop:    make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	if s.workers <= 0 {
		s.workers = runtime.GOMAXPROCS(0)
	}
	if s.drain <= 0 {
		s.drain = defaultDrainTimeout
	}
	if s.maxBody <= 0 {
		s.maxBody = defaultMaxBodyBytes
	}
	s.stats.start = time.Now()
	cache, err := newRowCache(filepath.Join(spool, "cache"), s.fs)
	if err != nil {
		return nil, err
	}
	s.cache = cache
	if err := s.fs.MkdirAll(s.sweepsDir()); err != nil {
		return nil, fmt.Errorf("service: spool: %w", err)
	}
	// The cluster coordinator exists on every server — a worker-less
	// cluster dispatches nothing, so plain single-node deployments pay one
	// idle expiry ticker and nothing else. It must be live before recovery:
	// recovered sweeps start feeding (and therefore dispatching) immediately.
	s.cluster = cluster.NewCoordinator(cluster.Config{
		TTL:      s.leaseTTL,
		Commit:   s.commitRemote,
		Fail:     s.failRemote,
		Runnable: s.sweepRunnable,
		SpecOf:   s.sweepSpec,
		Fallback: s.runLocal,
		Logf:     log.Printf,
	})
	for i := 0; i < s.workers; i++ {
		s.workerWG.Add(1)
		go s.workerLoop()
	}
	if err := s.recoverSpool(); err != nil {
		s.Close()
		return nil, err
	}
	s.ready.Store(true)
	return s, nil
}

func (s *Server) sweepsDir() string     { return filepath.Join(s.spool, "sweeps") }
func (s *Server) quarantineDir() string { return filepath.Join(s.spool, "quarantine") }

// NumWorkers returns the shared pool size.
func (s *Server) NumWorkers() int { return s.workers }

// Quarantined returns the sweep ids recovery moved to spool/quarantine/.
func (s *Server) Quarantined() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.quarantined))
	copy(out, s.quarantined)
	return out
}

// Close stops scheduling and waits — up to the drain deadline — for
// in-flight work to finish. Sweeps that have not finished stay resumable:
// their watermark is on disk, and the next Open picks them up. A job still
// running at the deadline is abandoned: its append handle is closed out
// from under it, and deliver drops rows once the handle is gone, so the
// late delivery is harmless. Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.ready.Store(false)
		s.cluster.Close()
		close(s.stop)
		s.feederWG.Wait()
		close(s.queue)
		drained := make(chan struct{})
		go func() {
			s.workerWG.Wait()
			close(drained)
		}()
		select {
		case <-drained:
		case <-time.After(s.drain):
			log.Printf("service: close: drain deadline (%s) passed with jobs in flight; abandoning them (spool watermark stays exact)", s.drain)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		for _, sw := range s.sweeps {
			sw.mu.Lock()
			if sw.rows != nil {
				sw.rows.Close()
				sw.rows = nil
			}
			sw.mu.Unlock()
		}
	})
}

// writeFileAtomic makes a crash-atomic file write through the spool seam:
// temp file in the same directory, write, sync, close, rename. A kill at
// any point leaves either the old content (or nothing) or the complete new
// content — never a zero-byte or half-written file.
func writeFileAtomic(fs spoolFS, path string, data []byte) error {
	tmp, err := fs.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func() { fs.Remove(tmp.Name()) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := fs.Rename(tmp.Name(), path); err != nil {
		cleanup()
		return err
	}
	return nil
}

// activeSweepsLocked counts running sweeps; callers hold s.mu.
func (s *Server) activeSweepsLocked() int {
	n := 0
	for _, sw := range s.sweeps {
		if sw.state() == "running" {
			n++
		}
	}
	return n
}

// Submit registers a sweep from wire-format spec bytes and starts (or
// finds) it. Submission is idempotent by content: the sweep id is derived
// from the canonical encoding's SHA-256, so re-POSTing an identical spec
// returns the running (or finished) sweep instead of duplicating work.
// Re-submitting a canceled spec starts it over from scratch.
func (s *Server) Submit(wire []byte) (sw *sweepJob, created bool, err error) {
	if s.maxBody > 0 && int64(len(wire)) > s.maxBody {
		return nil, false, &admissionError{
			status: 413,
			msg:    fmt.Sprintf("spec exceeds the %d-byte request limit", s.maxBody),
		}
	}
	spec, err := engine.DecodeWireSpec(wire)
	if err != nil {
		return nil, false, err
	}
	canonical, err := engine.EncodeWireSpec(spec)
	if err != nil {
		return nil, false, err
	}
	sum := sha256.Sum256(canonical)
	hash := hex.EncodeToString(sum[:])
	id := "sw-" + hash[:16]

	s.mu.Lock()
	if existing, ok := s.sweeps[id]; ok {
		if existing.state() != "canceled" {
			s.mu.Unlock()
			return existing, false, nil
		}
		// A canceled tombstone: forget it so the resubmission starts the
		// sweep over (its spool directory is already gone).
		delete(s.sweeps, id)
	}
	if s.maxActive > 0 && s.activeSweepsLocked() >= s.maxActive {
		s.mu.Unlock()
		return nil, false, &admissionError{
			status:     429,
			retryAfter: 5,
			msg:        fmt.Sprintf("at the limit of %d active sweeps; retry when one finishes", s.maxActive),
		}
	}
	s.mu.Unlock()

	exp, err := engine.Expand(spec)
	if err != nil {
		return nil, false, err
	}
	if s.maxJobs > 0 && exp.NumJobs() > s.maxJobs {
		return nil, false, &admissionError{
			status: 413,
			msg:    fmt.Sprintf("spec expands to %d jobs, over the limit of %d", exp.NumJobs(), s.maxJobs),
		}
	}
	sw = &sweepJob{
		id:      id,
		dir:     filepath.Join(s.sweepsDir(), id),
		hash:    hash,
		wire:    canonical,
		exp:     exp,
		fs:      s.fs,
		pending: make(map[int][]byte),
		notify:  make(chan struct{}),
		stats:   &s.stats,
	}
	if err := s.fs.MkdirAll(sw.dir); err != nil {
		return nil, false, &spoolError{err}
	}
	// Crash-atomic spec and meta writes: a kill between directory creation
	// and these renames leaves a dir without a complete meta.json, which
	// recovery quarantines — never a zero-byte file that poisons boots.
	if err := writeFileAtomic(s.fs, filepath.Join(sw.dir, "spec.json"), canonical); err != nil {
		return nil, false, &spoolError{err}
	}
	meta, err := json.Marshal(sweepMeta{V: metaVersion, ID: id, SpecHash: hash, Jobs: exp.NumJobs()})
	if err != nil {
		return nil, false, err
	}
	if err := writeFileAtomic(s.fs, filepath.Join(sw.dir, "meta.json"), meta); err != nil {
		return nil, false, &spoolError{err}
	}
	watermark, err := sw.openRows()
	if err != nil {
		return nil, false, &spoolError{err}
	}
	sw.completed = watermark

	s.mu.Lock()
	if racing, ok := s.sweeps[id]; ok {
		// A concurrent identical submission won the registration; the
		// spool files both sides wrote are identical by construction.
		s.mu.Unlock()
		sw.mu.Lock()
		if sw.rows != nil {
			sw.rows.Close()
		}
		sw.mu.Unlock()
		return racing, false, nil
	}
	s.sweeps[id] = sw
	s.mu.Unlock()

	s.startSweep(sw)
	return sw, true, nil
}

// Sweep returns a registered sweep by id.
func (s *Server) Sweep(id string) (*sweepJob, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw, ok := s.sweeps[id]
	return sw, ok
}

// SweepIDs lists the registered sweep ids, sorted.
func (s *Server) SweepIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.sweeps))
	for id := range s.sweeps {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Cancel cancels a sweep: scheduling stops, parked rows drop, streams end
// with a cancellation error, and the spool directory is removed. The id
// stays registered as a "canceled" tombstone so status queries keep
// answering; re-submitting the same spec starts it over. Canceling a
// finished sweep deletes its results; canceling twice is a no-op.
func (s *Server) Cancel(sw *sweepJob) error {
	if sw.cancel() {
		return nil
	}
	if err := s.fs.RemoveAll(sw.dir); err != nil {
		return &spoolError{err}
	}
	return nil
}

// recoverSpool reloads every sweep directory in the spool: specs re-expand
// to the same grids (the spec hash in meta.json pins the bytes),
// rows.jsonl yields the watermark, and unfinished sweeps resume
// scheduling. A directory that fails any of those checks — undecodable or
// missing spec/meta (the residue of a kill during submission or
// cancellation), a hash mismatch, an impossible watermark — is moved to
// spool/quarantine/<id> for operator inspection and the boot continues:
// one bad directory never bricks the server.
func (s *Server) recoverSpool() error {
	entries, err := s.fs.ReadDir(s.sweepsDir())
	if err != nil {
		return fmt.Errorf("service: spool: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		id := e.Name()
		dir := filepath.Join(s.sweepsDir(), id)
		sw, err := s.loadSweep(id, dir)
		if err != nil {
			if qerr := s.quarantine(id, dir, err); qerr != nil {
				return qerr
			}
			continue
		}
		s.mu.Lock()
		s.sweeps[id] = sw
		s.mu.Unlock()
		s.startSweep(sw)
	}
	return nil
}

// loadSweep validates one spool directory back into a sweepJob.
func (s *Server) loadSweep(id, dir string) (*sweepJob, error) {
	wire, err := s.fs.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, fmt.Errorf("service: recover %s: %w", id, err)
	}
	metaBytes, err := s.fs.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, fmt.Errorf("service: recover %s: %w", id, err)
	}
	var meta sweepMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("service: recover %s: meta.json: %w", id, err)
	}
	if meta.V != metaVersion {
		return nil, fmt.Errorf("service: recover %s: meta version %d (this server speaks %d)", id, meta.V, metaVersion)
	}
	sum := sha256.Sum256(wire)
	if hash := hex.EncodeToString(sum[:]); hash != meta.SpecHash {
		return nil, fmt.Errorf("service: recover %s: spec.json does not match its recorded hash", id)
	}
	spec, err := engine.DecodeWireSpec(wire)
	if err != nil {
		return nil, fmt.Errorf("service: recover %s: %w", id, err)
	}
	exp, err := engine.Expand(spec)
	if err != nil {
		return nil, fmt.Errorf("service: recover %s: %w", id, err)
	}
	if exp.NumJobs() != meta.Jobs {
		return nil, fmt.Errorf("service: recover %s: spec expands to %d jobs, meta recorded %d", id, exp.NumJobs(), meta.Jobs)
	}
	sw := &sweepJob{
		id:      id,
		dir:     dir,
		hash:    meta.SpecHash,
		wire:    wire,
		exp:     exp,
		fs:      s.fs,
		pending: make(map[int][]byte),
		notify:  make(chan struct{}),
		stats:   &s.stats,
	}
	watermark, err := sw.openRows()
	if err != nil {
		return nil, fmt.Errorf("service: recover %s: %w", id, err)
	}
	if watermark > exp.NumJobs() {
		sw.mu.Lock()
		if sw.rows != nil {
			sw.rows.Close()
			sw.rows = nil
		}
		sw.mu.Unlock()
		return nil, fmt.Errorf("service: recover %s: %d rows on disk for %d jobs", id, watermark, exp.NumJobs())
	}
	sw.completed = watermark
	return sw, nil
}

// quarantine moves an untrustworthy sweep directory to spool/quarantine/
// so the server can boot without it; the directory is preserved verbatim
// for offline inspection. A stale quarantine of the same id is replaced.
func (s *Server) quarantine(id, dir string, cause error) error {
	if err := s.fs.MkdirAll(s.quarantineDir()); err != nil {
		return fmt.Errorf("service: quarantine: %w", err)
	}
	dst := filepath.Join(s.quarantineDir(), id)
	if _, err := s.fs.ReadDir(dst); err == nil {
		if err := s.fs.RemoveAll(dst); err != nil {
			return fmt.Errorf("service: quarantine %s: %w", id, err)
		}
	}
	if err := s.fs.Rename(dir, dst); err != nil {
		return fmt.Errorf("service: quarantine %s: %w", id, err)
	}
	log.Printf("service: quarantined sweep %s (%v); inspect %s", id, cause, dst)
	s.mu.Lock()
	s.quarantined = append(s.quarantined, id)
	sort.Strings(s.quarantined)
	s.mu.Unlock()
	return nil
}

// startSweep launches the sweep's feeder, or closes the spool handle of an
// already-complete sweep.
func (s *Server) startSweep(sw *sweepJob) {
	sw.mu.Lock()
	remaining := sw.completed < sw.exp.NumJobs()
	if !remaining && sw.rows != nil {
		sw.rows.Close()
		sw.rows = nil
	}
	sw.mu.Unlock()
	if !remaining {
		return
	}
	s.feederWG.Add(1)
	go s.feed(sw)
}

// feed walks the sweep's unfinished job range once: cache hits deliver
// immediately (re-indexed to this grid), runs of misses shard into chunked
// tasks on the global pool. The walk starts at the watermark — rows below
// it are already on disk and are never recomputed or re-emitted — and
// stops early when the sweep fails or is canceled. A panic anywhere in
// scheduling (a poisoned cache entry decoding, a registry bug) fails this
// sweep only, never the server.
func (s *Server) feed(sw *sweepJob) {
	defer s.feederWG.Done()
	defer func() {
		if r := recover(); r != nil {
			sw.fail(fmt.Sprintf("panic scheduling sweep: %v", r), "")
		}
	}()
	var chunk []int
	flush := func() bool {
		if len(chunk) == 0 {
			return true
		}
		jobs := chunk
		chunk = nil
		// The scheduler seam: chunks go to registered cluster workers when
		// any are live, and to the local pool otherwise. Which side runs a
		// chunk can never affect its bytes — job seeds and rows are pure
		// functions of the spec — so this is a latency decision only.
		if s.cluster.Dispatch(sw.id, jobs) {
			return true
		}
		select {
		case s.queue <- task{sw: sw, jobs: jobs}:
			return true
		case <-s.stop:
			return false
		}
	}
	sw.mu.Lock()
	start := sw.completed
	sw.mu.Unlock()
	for job := start; job < sw.exp.NumJobs(); job++ {
		select {
		case <-s.stop:
			return
		default:
		}
		if !sw.runnable() {
			return
		}
		key := sw.exp.JobKey(job)
		if stored, ok := s.cache.load(key); ok {
			if b, err := reindexRow(stored, sw.exp, job); err == nil {
				if !flush() { // keep delivery order cache-friendly
					return
				}
				s.stats.cacheHits.Add(1)
				sw.deliver(job, b, true)
				continue
			}
			// An entry that decodes to garbage is corrupt, not stale:
			// delete it so the recomputed row replaces it for good.
			s.cache.remove(key)
		}
		s.stats.cacheMisses.Add(1)
		chunk = append(chunk, job)
		if len(chunk) >= chunkSize {
			if !flush() {
				return
			}
		}
	}
	flush()
}

// workerLoop is one slot of the shared pool. Runners are per-(worker,
// sweep): consecutive tasks of the same sweep reuse the runner — and with
// it the engine's prototype processes and the sweep's shared graph cache.
// Each job runs under a recover barrier (runJob), so a panicking registry
// entry fails its own sweep and the worker moves on.
func (s *Server) workerLoop() {
	defer s.workerWG.Done()
	var cur *sweepJob
	var runner *engine.JobRunner
	for t := range s.queue {
		if t.sw != cur {
			cur, runner = t.sw, t.sw.exp.NewRunner()
		}
		for _, job := range t.jobs {
			select {
			case <-s.stop:
				return
			default:
			}
			if !t.sw.runnable() {
				break // failed or canceled mid-task: stop burning the pool
			}
			if !s.runJob(t.sw, runner, job) {
				// The panic may have left the runner's prototype state
				// corrupt; drop it so the next task builds a fresh one.
				cur, runner = nil, nil
				break
			}
		}
	}
}

// runJob executes one job under a recover barrier and reports false if it
// panicked. A panic — from a registered process, metric, topology builder
// or schedule — converts into a per-sweep failure carrying the panic value
// and the job's content-address key; other sweeps and the server itself
// never notice.
func (s *Server) runJob(sw *sweepJob, runner *engine.JobRunner, job int) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			sw.fail(fmt.Sprintf("panic in job %d: %v", job, r), sw.exp.JobKey(job))
			ok = false
		}
	}()
	s.stats.localJobs.Add(1)
	row := runner.Run(job)
	b, err := engine.RowBytes(row)
	if err != nil {
		// A row the canonical codec cannot encode would also have failed
		// library-mode WriteJSONL; surface it as a sweep failure rather
		// than dropping the job silently.
		sw.fail(fmt.Sprintf("encode row %d: %v", job, err), sw.exp.JobKey(job))
		return true
	}
	// Populate the content-addressed cache with the index-free form before
	// delivery; a failed store only costs a future recomputation, but it
	// is logged and counted, never silent.
	indexFree := row
	indexFree.Index = 0
	if ib, err := engine.RowBytes(indexFree); err == nil {
		if err := s.cache.store(sw.exp.JobKey(job), ib); err != nil {
			sw.noteCacheWriteErr(err)
		}
	}
	sw.deliver(job, b, false)
	return true
}

// reindexRow rematerializes a cached index-free row under the current
// grid: decode, restore the job's cell index, re-encode. Byte-stability of
// the round trip (pinned in the engine's tests) makes the result identical
// to a fresh computation's bytes.
func reindexRow(stored []byte, exp *engine.ExpandedSweep, job int) ([]byte, error) {
	row, err := engine.DecodeRow(stored)
	if err != nil {
		return nil, err
	}
	cell, _ := exp.Job(job)
	row.Index = cell.Index
	return engine.RowBytes(row)
}

// The four methods below are the cluster coordinator's view of the sweep
// service (cluster.Config callbacks). They must not call back into
// s.cluster — the coordinator may hold its own lock when invoking them.

// commitRemote lands one worker-computed job: the index-free bytes go to
// the content-addressed cache (exactly what a local computation would
// store) and, re-indexed under this grid, to the sweep's re-sequencer.
// deliver deduplicates by job index, so a reassigned-then-completed-twice
// job commits identical bytes twice and persists once. An error means the
// bytes do not decode as a canonical row — the coordinator reassigns the
// job rather than trusting them.
func (s *Server) commitRemote(sweepID string, job int, indexFree []byte) error {
	sw, ok := s.Sweep(sweepID)
	if !ok {
		return nil // sweep is gone (canceled and forgotten); drop silently
	}
	if job < 0 || job >= sw.exp.NumJobs() {
		return fmt.Errorf("service: remote job %d out of range (grid has %d)", job, sw.exp.NumJobs())
	}
	b, err := reindexRow(indexFree, sw.exp, job)
	if err != nil {
		return fmt.Errorf("service: remote row for job %d: %w", job, err)
	}
	if err := s.cache.store(sw.exp.JobKey(job), indexFree); err != nil {
		sw.noteCacheWriteErr(err)
	}
	sw.deliver(job, b, false)
	return nil
}

// failRemote converts a worker-side job panic into the same per-sweep
// failure a local panic produces: cause and content-address key in the
// status, watermark untouched, other sweeps unaffected.
func (s *Server) failRemote(sweepID string, job int, cause string) {
	sw, ok := s.Sweep(sweepID)
	if !ok {
		return
	}
	key := ""
	if job >= 0 && job < sw.exp.NumJobs() {
		key = sw.exp.JobKey(job)
	}
	sw.fail(fmt.Sprintf("worker panic in job %d: %s", job, cause), key)
}

// sweepRunnable reports whether a sweep still wants jobs executed.
func (s *Server) sweepRunnable(sweepID string) bool {
	sw, ok := s.Sweep(sweepID)
	return ok && sw.runnable()
}

// sweepSpec returns the canonical wire spec bytes leases embed.
func (s *Server) sweepSpec(sweepID string) ([]byte, bool) {
	sw, ok := s.Sweep(sweepID)
	if !ok {
		return nil, false
	}
	return sw.wire, true
}

// runLocal is the cluster's fallback: when the last live worker
// disappears with chunks still queued, they drain onto the local pool so
// the sweep finishes regardless of what happened to the fleet. The hand-
// off happens on its own goroutine because the local queue is unbuffered
// and this is called from the coordinator's expiry loop.
func (s *Server) runLocal(sweepID string, jobs []int) {
	sw, ok := s.Sweep(sweepID)
	if !ok {
		return
	}
	// Tracked on feederWG so Close cannot close the queue under a pending
	// hand-off: cluster.Close (which joins the expiry loop, the only
	// caller) returns before Close waits on feederWG, so the Add below
	// never races the Wait.
	s.feederWG.Add(1)
	go func() {
		defer s.feederWG.Done()
		select {
		case s.queue <- task{sw: sw, jobs: jobs}:
		case <-s.stop:
		}
	}()
}

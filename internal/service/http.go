package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"rotorring/internal/engine"
	"rotorring/internal/version"
	"rotorring/probe"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/sweeps            submit a wire-format SweepSpec, get a sweep id
//	GET    /v1/sweeps            list known sweeps with status + watermark
//	                             (?state=running|done|failed|canceled filters)
//	GET    /v1/sweeps/{id}       status: jobs, completed watermark, cache hits
//	GET    /v1/sweeps/{id}/rows  stream rows in canonical order (JSONL;
//	                             ?from=N resumes at row N, ?format= selects a
//	                             registered sink format)
//	DELETE /v1/sweeps/{id}       cancel the sweep: scheduling stops, streams
//	                             end, the spool directory is removed
//	GET    /v1/registries        registered process/metric/topology/schedule/
//	                             sink/probe names for client introspection
//	POST   /v1/cluster/*         the worker wire protocol: register,
//	                             heartbeat, lease, complete (internal/cluster)
//	GET    /v1/cluster/workers   registered workers with lease stats
//	GET    /metrics              Prometheus text format: sweeps, pool/lease
//	                             depth, cache hit rate, rows/sec, per-worker
//	                             lease stats
//	GET    /healthz              liveness: 200 while the process serves;
//	                             reports role, version, registered workers
//	GET    /readyz               readiness: 200 once recovery finished and
//	                             the pool is live; includes quarantined ids
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/rows", s.handleRows)
	mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/registries", s.handleRegistries)
	mux.Handle("/v1/cluster/", s.cluster.Handler())
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// httpError writes a JSON error body; the service never answers with bare
// text, so clients can always decode.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// submitError maps a Submit failure to its HTTP status: admission limits
// carry their own code (413/429 + Retry-After), spool trouble is a server
// fault (500), anything else is the client's spec (400).
func submitError(w http.ResponseWriter, err error) {
	var adm *admissionError
	if errors.As(err, &adm) {
		if adm.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(adm.retryAfter))
		}
		httpError(w, adm.status, "%s", adm.msg)
		return
	}
	var sp *spoolError
	if errors.As(err, &sp) {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	httpError(w, http.StatusBadRequest, "%v", err)
}

// sweepStatus is the status document of one sweep.
type sweepStatus struct {
	ID string `json:"id"`
	// State is "running", "done", "failed" or "canceled".
	State string `json:"state"`
	// Jobs is the expanded job count (cells x replicas); Cells and
	// Replicas break it down.
	Jobs     int `json:"jobs"`
	Cells    int `json:"cells"`
	Replicas int `json:"replicas"`
	// Completed is the completed-row watermark: rows [0, Completed) are
	// final, on disk, and streamable.
	Completed int `json:"completed"`
	// CacheHits counts jobs this server run served from the row cache.
	CacheHits int `json:"cacheHits"`
	// CacheWriteErrors counts row-cache stores that failed this server
	// run; the sweep's own rows are unaffected, but the failed entries
	// will recompute instead of replaying on the next overlapping sweep.
	CacheWriteErrors int `json:"cacheWriteErrors,omitempty"`
	// SpecHash is the SHA-256 of the canonical wire spec (the id's
	// preimage).
	SpecHash string `json:"specHash"`
	Error    string `json:"error,omitempty"`
	// FailedJob is the content-address key of the job whose panic or
	// encode failure failed the sweep, when the fault is job-tied.
	FailedJob string `json:"failedJob,omitempty"`
}

func (s *Server) status(sw *sweepJob) sweepStatus {
	c := sw.snapshot()
	return sweepStatus{
		ID:               sw.id,
		State:            sw.state(),
		Jobs:             sw.exp.NumJobs(),
		Cells:            sw.exp.NumCells(),
		Replicas:         sw.exp.Replicas(),
		Completed:        c.completed,
		CacheHits:        c.cacheHits,
		CacheWriteErrors: c.cacheWriteErrs,
		SpecHash:         sw.hash,
		Error:            c.failed,
		FailedJob:        c.failedJob,
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	sw, created, err := s.Submit(body)
	if err != nil {
		submitError(w, err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.id)
	writeJSON(w, code, struct {
		sweepStatus
		Created bool `json:"created"`
	}{s.status(sw), created})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	filter := strings.ToLower(r.URL.Query().Get("state"))
	switch filter {
	case "", "running", "done", "failed", "canceled":
	default:
		httpError(w, http.StatusBadRequest, "bad state filter %q (running|done|failed|canceled)", filter)
		return
	}
	ids := s.SweepIDs()
	out := make([]sweepStatus, 0, len(ids))
	for _, id := range ids {
		if sw, ok := s.Sweep(id); ok {
			st := s.status(sw)
			if filter != "" && st.State != filter {
				continue
			}
			out = append(out, st)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(sw))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if err := s.Cancel(sw); err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.status(sw))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"role":    "coordinator",
		"version": version.Version,
		// workers is the registered cluster worker count, so smoke tests
		// and operators can watch the fleet form before submitting.
		"workers": s.cluster.LiveWorkers(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"ready":       s.ready.Load(),
		"workers":     s.NumWorkers(),
		"quarantined": s.Quarantined(),
	}
	code := http.StatusOK
	if !s.ready.Load() {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	if sw.state() == "canceled" {
		httpError(w, http.StatusGone, "sweep %s was canceled; its rows are gone", sw.id)
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 || v > sw.exp.NumJobs() {
			httpError(w, http.StatusBadRequest, "bad row cursor %q (want 0..%d)", q, sw.exp.NumJobs())
			return
		}
		from = v
	}
	format := strings.ToLower(r.URL.Query().Get("format"))
	if format == "" {
		format = "jsonl"
	}

	// The stream aborts when the client goes away (request context) or the
	// server shuts down; the cursor model makes reconnecting with
	// ?from=<received> lossless either way. A cancel mid-stream ends the
	// stream via streamRows' canceled check.
	stop := make(chan struct{})
	go func() {
		select {
		case <-r.Context().Done():
		case <-s.stop:
		}
		close(stop)
	}()
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	if format == "jsonl" {
		// The identity path: raw stored bytes, no re-encoding anywhere
		// between the spool and the socket.
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = sw.streamRows(from, func(line []byte) error {
			if _, err := w.Write(line); err != nil {
				return err
			}
			flush()
			return nil
		}, stop)
		return
	}

	// Other formats resolve through the sink registry and replay decoded
	// rows through the chosen sink — the same code path rotorsim -format
	// uses, so a format registered once works everywhere.
	sink, err := engine.NewSink(format, w)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := sink.Begin(sw.exp.Spec(), sw.exp.NumJobs()); err != nil {
		httpError(w, http.StatusInternalServerError, "sink begin: %v", err)
		return
	}
	err = sw.streamRows(from, func(line []byte) error {
		row, err := engine.DecodeRow(line)
		if err != nil {
			return err
		}
		if err := sink.Emit(row); err != nil {
			return err
		}
		flush()
		return nil
	}, stop)
	if err == nil {
		_ = sink.End()
		flush()
	}
}

func (s *Server) handleRegistries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"v":          engine.WireVersion,
		"processes":  engine.ProcessNames(),
		"metrics":    engine.MetricNames(),
		"topologies": engine.TopologyNames(),
		"schedules":  engine.ScheduleNames(),
		"sinks":      engine.SinkNames(),
		"probes":     probe.Names(),
		"placements": []string{"single", "equal", "random"},
		"pointers":   []string{"zero", "negative", "toward", "random"},
		"kernels":    []string{"auto", "generic", "fast"},
	})
}

package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"rotorring/internal/engine"
	"rotorring/probe"
)

// maxSpecBytes bounds a POSTed spec; wire specs are small, and the limit
// keeps a stray upload from ballooning memory.
const maxSpecBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/sweeps            submit a wire-format SweepSpec, get a sweep id
//	GET  /v1/sweeps            list known sweeps
//	GET  /v1/sweeps/{id}       status: jobs, completed watermark, cache hits
//	GET  /v1/sweeps/{id}/rows  stream rows in canonical order (JSONL;
//	                           ?from=N resumes at row N, ?format= selects a
//	                           registered sink format)
//	GET  /v1/registries        registered process/metric/topology/schedule/
//	                           sink/probe names for client introspection
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/rows", s.handleRows)
	mux.HandleFunc("GET /v1/registries", s.handleRegistries)
	return mux
}

// httpError writes a JSON error body; the service never answers with bare
// text, so clients can always decode.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// sweepStatus is the status document of one sweep.
type sweepStatus struct {
	ID string `json:"id"`
	// State is "running", "done" or "failed".
	State string `json:"state"`
	// Jobs is the expanded job count (cells x replicas); Cells and
	// Replicas break it down.
	Jobs     int `json:"jobs"`
	Cells    int `json:"cells"`
	Replicas int `json:"replicas"`
	// Completed is the completed-row watermark: rows [0, Completed) are
	// final, on disk, and streamable.
	Completed int `json:"completed"`
	// CacheHits counts jobs this server run served from the row cache.
	CacheHits int `json:"cacheHits"`
	// SpecHash is the SHA-256 of the canonical wire spec (the id's
	// preimage).
	SpecHash string `json:"specHash"`
	Error    string `json:"error,omitempty"`
}

func (s *Server) status(sw *sweepJob) sweepStatus {
	completed, hits, failed := sw.snapshot()
	return sweepStatus{
		ID:        sw.id,
		State:     sw.state(),
		Jobs:      sw.exp.NumJobs(),
		Cells:     sw.exp.NumCells(),
		Replicas:  sw.exp.Replicas(),
		Completed: completed,
		CacheHits: hits,
		SpecHash:  sw.hash,
		Error:     failed,
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	sw, created, err := s.Submit(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	w.Header().Set("Location", "/v1/sweeps/"+sw.id)
	writeJSON(w, code, struct {
		sweepStatus
		Created bool `json:"created"`
	}{s.status(sw), created})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	ids := s.SweepIDs()
	out := make([]sweepStatus, 0, len(ids))
	for _, id := range ids {
		if sw, ok := s.Sweep(id); ok {
			out = append(out, s.status(sw))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.status(sw))
}

func (s *Server) handleRows(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.Sweep(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "unknown sweep %q", r.PathValue("id"))
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 || v > sw.exp.NumJobs() {
			httpError(w, http.StatusBadRequest, "bad row cursor %q (want 0..%d)", q, sw.exp.NumJobs())
			return
		}
		from = v
	}
	format := strings.ToLower(r.URL.Query().Get("format"))
	if format == "" {
		format = "jsonl"
	}

	// The stream aborts when the client goes away or the server shuts
	// down; the cursor model makes reconnecting with ?from=<received>
	// lossless either way.
	stop := make(chan struct{})
	go func() {
		select {
		case <-r.Context().Done():
		case <-s.stop:
		}
		close(stop)
	}()
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}

	if format == "jsonl" {
		// The identity path: raw stored bytes, no re-encoding anywhere
		// between the spool and the socket.
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = sw.streamRows(from, func(line []byte) error {
			if _, err := w.Write(line); err != nil {
				return err
			}
			flush()
			return nil
		}, stop)
		return
	}

	// Other formats resolve through the sink registry and replay decoded
	// rows through the chosen sink — the same code path rotorsim -format
	// uses, so a format registered once works everywhere.
	sink, err := engine.NewSink(format, w)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := sink.Begin(sw.exp.Spec(), sw.exp.NumJobs()); err != nil {
		httpError(w, http.StatusInternalServerError, "sink begin: %v", err)
		return
	}
	err = sw.streamRows(from, func(line []byte) error {
		row, err := engine.DecodeRow(line)
		if err != nil {
			return err
		}
		if err := sink.Emit(row); err != nil {
			return err
		}
		flush()
		return nil
	}, stop)
	if err == nil {
		_ = sink.End()
		flush()
	}
}

func (s *Server) handleRegistries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"v":          engine.WireVersion,
		"processes":  engine.ProcessNames(),
		"metrics":    engine.MetricNames(),
		"topologies": engine.TopologyNames(),
		"schedules":  engine.ScheduleNames(),
		"sinks":      engine.SinkNames(),
		"probes":     probe.Names(),
		"placements": []string{"single", "equal", "random"},
		"pointers":   []string{"zero", "negative", "toward", "random"},
		"kernels":    []string{"auto", "generic", "fast"},
	})
}

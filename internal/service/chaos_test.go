package service

// Deterministic fault-injection suite ("make chaos-smoke"). Every fault
// injected here must land in exactly one of three buckets:
//
//   - failed with cause: the sweep's status says what broke (and, for
//     job-tied faults, which job), the watermark stays exact;
//   - quarantined: recovery moves the undecodable directory aside and the
//     server boots without it;
//   - transparently recovered: truncate-and-resume or delete-and-recompute
//     paths absorb the fault entirely.
//
// And in every bucket, the post-fault resumed stream must be byte-identical
// to library-mode rotorring.RunSweep output for the same spec — asserted by
// a bytes.Equal diff against engine output in each test.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rotorring/internal/engine"
)

// kaboomProc never comes to life: its factory panics, modeling a buggy
// registered process. Registered at test init — the engine accepts it with
// zero edits, and the service must survive it with zero casualties beyond
// the sweep that asked for it.
func init() {
	engine.RegisterProcess(&engine.ProcessDef{
		Name: "kaboom",
		New: func(env *engine.JobEnv) (engine.Proc, error) {
			panic("kaboom: poisoned process factory")
		},
	})
	engine.RegisterProcess(&engine.ProcessDef{Name: "stall", New: newStall})
}

// stallProc blocks its first Step until the test releases it: the shape of
// a job that outlives the Close drain deadline.
var (
	stallStarted = make(chan struct{}, 16)
	stallRelease = make(chan struct{})
)

type stallProc struct {
	n        int
	released bool
}

func newStall(env *engine.JobEnv) (engine.Proc, error) {
	return &stallProc{n: env.Graph.NumNodes()}, nil
}

func (p *stallProc) Step() {}

func (p *stallProc) RunUntilCovered(maxRounds int64) (int64, error) {
	if !p.released {
		stallStarted <- struct{}{}
		<-stallRelease
		p.released = true
	}
	return 0, nil
}

func (p *stallProc) Round() int64 { return 0 }
func (p *stallProc) Reset()       { p.released = false }
func (p *stallProc) Covered() int {
	if p.released {
		return p.n
	}
	return 1
}

// startChaosServer is startServer with arbitrary options (fault-injecting
// filesystems, admission limits, drain deadlines).
func startChaosServer(t *testing.T, spool string, opts ...Option) *testServer {
	t.Helper()
	srv, err := Open(spool, opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &testServer{srv: srv, http: ts}
}

// waitState polls a sweep until its status reaches want.
func waitState(t *testing.T, ts *testServer, id, want string) sweepStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := ts.statusOf(t, id)
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in state %s (want %s): %+v", id, st.State, want, st)
		}
		time.Sleep(time.Millisecond)
	}
}

// completeLines counts newline-terminated rows in a spool file.
func completeLines(t *testing.T, path string) (complete int, partialTail bool) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if line[len(line)-1] != '\n' {
			return complete, true
		}
		complete++
	}
	return complete, false
}

// chaosSpec is a small sweep with enough rows that disk faults land
// mid-stream.
func chaosSpec() engine.SweepSpec {
	return engine.SweepSpec{
		Topologies: []engine.Topo{"ring"},
		Sizes:      []int{64},
		Agents:     []int{2},
		Replicas:   16,
		Seed:       7,
	}
}

// slowSpec is a one-cell, many-replica sweep with steady per-job progress.
// Tests that must land an action mid-sweep deterministically switch it to
// the gated "creep" process (service_test.go) — raw job cost alone cannot
// outrun a fast machine.
func slowSpec() engine.SweepSpec {
	return engine.SweepSpec{
		Topologies: []engine.Topo{"ring"},
		Sizes:      []int{1024},
		Agents:     []int{2},
		Replicas:   80,
		Seed:       7,
	}
}

// TestChaosENOSPCMidAppend fills the disk (deterministically) under the
// row spool mid-sweep: the sweep must land in "failed" with the ENOSPC
// cause and an exact watermark — completed equals the complete lines on
// disk — and a restart on a healthy disk must resume to byte-identity.
func TestChaosENOSPCMidAppend(t *testing.T) {
	spec := chaosSpec()
	want := libraryJSONL(t, spec)
	spool := t.TempDir()

	chaos := newChaosFS(osFS{}, 7)
	chaos.arm(faultRule{Op: opAppend, Path: "rows.jsonl", Kind: faultENOSPC, After: 600})
	ts := startChaosServer(t, spool, Workers(2), withFS(chaos))
	st := ts.submit(t, wireSpec(t, spec))

	failed := waitState(t, ts, st.ID, "failed")
	if !strings.Contains(failed.Error, "no space left on device") {
		t.Errorf("failure cause %q does not name ENOSPC", failed.Error)
	}
	if failed.Completed >= failed.Jobs {
		t.Errorf("failed sweep claims %d of %d rows: fault did not land mid-sweep", failed.Completed, failed.Jobs)
	}
	onDisk, _ := completeLines(t, filepath.Join(spool, "sweeps", st.ID, "rows.jsonl"))
	if onDisk != failed.Completed {
		t.Errorf("watermark %d but %d complete rows on disk: not exact", failed.Completed, onDisk)
	}
	ts.http.Close()
	ts.srv.Close()

	// The disk "empties": a healthy restart resumes from the watermark.
	ts2 := startServer(t, spool, 4)
	if got := ts2.get(t, "/v1/sweeps/"+st.ID+"/rows"); !bytes.Equal(got, want) {
		t.Errorf("post-ENOSPC resumed stream differs from library bytes (%d vs %d)", len(got), len(want))
	}
}

// TestChaosTornWrite tears one row append mid-byte (seeded cut point): the
// sweep fails, the spool ends in a partial line, and recovery's truncate-
// and-resume restores byte identity exactly.
func TestChaosTornWrite(t *testing.T) {
	spec := chaosSpec()
	want := libraryJSONL(t, spec)
	spool := t.TempDir()

	chaos := newChaosFS(osFS{}, 11)
	chaos.arm(faultRule{Op: opAppend, Path: "rows.jsonl", Kind: faultTorn, Skip: 2})
	ts := startChaosServer(t, spool, Workers(2), withFS(chaos))
	st := ts.submit(t, wireSpec(t, spec))

	failed := waitState(t, ts, st.ID, "failed")
	onDisk, partial := completeLines(t, filepath.Join(spool, "sweeps", st.ID, "rows.jsonl"))
	if !partial {
		t.Error("torn write left no partial tail on disk; the fault did not tear")
	}
	if onDisk != failed.Completed {
		t.Errorf("watermark %d but %d complete rows on disk", failed.Completed, onDisk)
	}
	ts.http.Close()
	ts.srv.Close()

	ts2 := startServer(t, spool, 4)
	st2 := ts2.statusOf(t, st.ID)
	if st2.Completed < onDisk {
		t.Errorf("recovery lost complete rows: %d < %d", st2.Completed, onDisk)
	}
	if got := ts2.get(t, "/v1/sweeps/"+st.ID+"/rows"); !bytes.Equal(got, want) {
		t.Errorf("post-torn-write resumed stream differs from library bytes")
	}
}

// TestChaosPanicIsolation submits a sweep over a process whose factory
// panics, concurrently with a healthy sweep: the poisoned sweep must fail
// with the panic value and job key in its status, the healthy sweep must
// complete byte-identical, and the server must keep serving.
func TestChaosPanicIsolation(t *testing.T) {
	healthy := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"},
		Sizes:      []int{512},
		Agents:     []int{2},
		Replicas:   20,
		Seed:       7,
	}
	want := libraryJSONL(t, healthy)
	poisoned := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"},
		Sizes:      []int{16},
		Agents:     []int{1},
		Process:    "kaboom",
		Replicas:   2,
		Seed:       7,
	}

	ts := startChaosServer(t, t.TempDir(), Workers(2))
	stHealthy := ts.submit(t, wireSpec(t, healthy))
	stBad := ts.submit(t, wireSpec(t, poisoned))

	failed := waitState(t, ts, stBad.ID, "failed")
	if !strings.Contains(failed.Error, "panic") || !strings.Contains(failed.Error, "poisoned process factory") {
		t.Errorf("poisoned sweep error %q does not carry the panic value", failed.Error)
	}
	if !strings.Contains(failed.FailedJob, "proc=kaboom") {
		t.Errorf("failedJob %q does not name the job key", failed.FailedJob)
	}

	if got := ts.get(t, "/v1/sweeps/"+stHealthy.ID+"/rows"); !bytes.Equal(got, want) {
		t.Errorf("healthy sweep's bytes differ from library output after a neighbor panicked")
	}
	if st := ts.statusOf(t, stHealthy.ID); st.State != "done" {
		t.Errorf("healthy sweep state %s, want done", st.State)
	}
	// The server keeps serving: liveness and a fresh submission both work.
	ts.get(t, "/healthz")
	third := ts.submit(t, []byte(`{"v":1,"topologies":["ring"],"sizes":[32],"agents":[2],"seed":9}`))
	waitState(t, ts, third.ID, "done")
}

// TestChaosCancelMidSweep cancels a running sweep: status flips to
// canceled, the spool directory is removed, in-flight streams terminate,
// row requests answer 410, and re-submitting the same spec starts it over
// to full byte identity.
func TestChaosCancelMidSweep(t *testing.T) {
	// The creep gate pins the cancel mid-sweep: three jobs complete (the
	// stream has bytes to hand the client), the fourth blocks until the
	// gate is released for the post-cancel recompute.
	spec := slowSpec()
	spec.Process = "creep"
	want := libraryJSONL(t, spec) // gate disarmed: runs straight through
	spool := t.TempDir()
	ts := startChaosServer(t, spool, Workers(1))
	armCreepGate(3)
	defer releaseCreepGate()
	st := ts.submit(t, wireSpec(t, spec))

	// A client streaming during the cancel must see its stream end.
	streamDone := make(chan []byte, 1)
	go func() {
		resp, err := http.Get(ts.http.URL + "/v1/sweeps/" + st.ID + "/rows")
		if err != nil {
			streamDone <- nil
			return
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		streamDone <- b
	}()

	deadline := time.Now().Add(30 * time.Second)
	for ts.statusOf(t, st.ID).Completed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no progress before cancel")
		}
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.http.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var canceled sweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&canceled); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || canceled.State != "canceled" {
		t.Fatalf("DELETE: status %d state %s, want 200 canceled", resp.StatusCode, canceled.State)
	}

	select {
	case <-streamDone:
		// The mid-stream client was released.
	case <-time.After(30 * time.Second):
		t.Fatal("mid-stream client still blocked 30s after cancel")
	}
	if _, err := os.Stat(filepath.Join(spool, "sweeps", st.ID)); !os.IsNotExist(err) {
		t.Errorf("canceled sweep's spool directory still exists (stat err %v)", err)
	}
	resp, err = http.Get(ts.http.URL + "/v1/sweeps/" + st.ID + "/rows")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("rows of canceled sweep: status %d, want 410", resp.StatusCode)
	}

	// Resubmission starts over (created=true) and reaches byte identity.
	// Release the gate first: the recompute (and the abandoned in-flight
	// job, whose late delivery is dropped) must run free.
	releaseCreepGate()
	resub := ts.submit(t, wireSpec(t, spec))
	if resub.ID != st.ID {
		t.Fatalf("resubmitted spec got id %s, want %s", resub.ID, st.ID)
	}
	if got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows"); !bytes.Equal(got, want) {
		t.Errorf("post-cancel resubmitted stream differs from library bytes")
	}
}

// TestChaosQuarantineOnRecovery boots a server over a spool holding the
// residue of two crashes — a zero-byte meta.json (kill between create and
// write, pre-atomic-rename style) and a missing spec.json (kill during
// cancel's directory removal). Both directories must move to
// spool/quarantine/, the server must boot and report them via /readyz, and
// resubmitting the damaged spec must reach byte identity again.
func TestChaosQuarantineOnRecovery(t *testing.T) {
	specA := chaosSpec()
	specB := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"}, Sizes: []int{32}, Agents: []int{4}, Replicas: 2, Seed: 3,
	}
	wantA := libraryJSONL(t, specA)
	spool := t.TempDir()

	ts := startChaosServer(t, spool, Workers(2))
	stA := ts.submit(t, wireSpec(t, specA))
	stB := ts.submit(t, wireSpec(t, specB))
	ts.get(t, "/v1/sweeps/"+stA.ID+"/rows")
	ts.get(t, "/v1/sweeps/"+stB.ID+"/rows")
	ts.http.Close()
	ts.srv.Close()

	// Crash residue: zero-byte meta poisons A, missing spec poisons B.
	if err := os.WriteFile(filepath.Join(spool, "sweeps", stA.ID, "meta.json"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(spool, "sweeps", stB.ID, "spec.json")); err != nil {
		t.Fatal(err)
	}

	ts2 := startServer(t, spool, 2)
	for _, id := range []string{stA.ID, stB.ID} {
		if _, ok := ts2.srv.Sweep(id); ok {
			t.Errorf("damaged sweep %s was recovered instead of quarantined", id)
		}
		if _, err := os.Stat(filepath.Join(spool, "quarantine", id)); err != nil {
			t.Errorf("quarantine dir for %s: %v", id, err)
		}
	}
	var ready struct {
		Ready       bool     `json:"ready"`
		Quarantined []string `json:"quarantined"`
	}
	if err := json.Unmarshal(ts2.get(t, "/readyz"), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || len(ready.Quarantined) != 2 {
		t.Errorf("readyz = %+v, want ready with 2 quarantined ids", ready)
	}

	// The damaged experiment resubmits cleanly (warm row cache and all).
	st := ts2.submit(t, wireSpec(t, specA))
	if got := ts2.get(t, "/v1/sweeps/"+st.ID+"/rows"); !bytes.Equal(got, wantA) {
		t.Errorf("post-quarantine resubmitted stream differs from library bytes")
	}
}

// TestChaosCorruptCacheEntry corrupts row-cache entries both ways a real
// disk does — a truncated entry (no trailing newline) and a complete-
// looking but undecodable one — and proves both are deleted and recomputed
// with the stream still byte-identical: cache corruption is never fatal
// and never shadows correct bytes.
func TestChaosCorruptCacheEntry(t *testing.T) {
	spec := chaosSpec()
	want := libraryJSONL(t, spec)
	spool := t.TempDir()

	ts := startChaosServer(t, spool, Workers(2))
	st := ts.submit(t, wireSpec(t, spec))
	ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
	ts.http.Close()
	ts.srv.Close()

	var entries []string
	filepath.Walk(filepath.Join(spool, "cache"), func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.HasSuffix(path, ".row") {
			entries = append(entries, path)
		}
		return nil
	})
	if len(entries) < 2 {
		t.Fatalf("want >= 2 cache entries to corrupt, have %d", len(entries))
	}
	// Entry 0: truncated store (no newline) — load() deletes it.
	if err := os.WriteFile(entries[0], []byte(`{"truncated`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Entry 1: complete-looking but undecodable — reindexRow fails, the
	// feeder deletes it.
	if err := os.WriteFile(entries[1], []byte("{\"garbage\"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Fresh sweeps dir, same cache: the resubmission replays what it can.
	if err := os.RemoveAll(filepath.Join(spool, "sweeps")); err != nil {
		t.Fatal(err)
	}

	ts2 := startServer(t, spool, 2)
	st2 := ts2.submit(t, wireSpec(t, spec))
	if got := ts2.get(t, "/v1/sweeps/"+st2.ID+"/rows"); !bytes.Equal(got, want) {
		t.Errorf("stream over corrupt cache differs from library bytes")
	}
	final := ts2.statusOf(t, st2.ID)
	if final.CacheHits >= final.Jobs {
		t.Errorf("cacheHits %d of %d jobs: corrupt entries were served as hits", final.CacheHits, final.Jobs)
	}
	for i, path := range entries[:2] {
		b, err := os.ReadFile(path)
		if err == nil && (bytes.Contains(b, []byte("truncated")) || bytes.Contains(b, []byte("garbage"))) {
			t.Errorf("corrupt cache entry %d survived: %q", i, b)
		}
	}
}

// TestChaosCacheWriteErrors makes a cache store fail: the sweep must still
// complete byte-identical (the cache is best-effort), but the loss must be
// counted in the status instead of vanishing silently.
func TestChaosCacheWriteErrors(t *testing.T) {
	spec := chaosSpec()
	want := libraryJSONL(t, spec)

	chaos := newChaosFS(osFS{}, 13)
	chaos.arm(faultRule{Op: opCreate, Path: "cache/", Kind: faultErr})
	ts := startChaosServer(t, t.TempDir(), Workers(2), withFS(chaos))
	st := ts.submit(t, wireSpec(t, spec))
	if got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows"); !bytes.Equal(got, want) {
		t.Errorf("stream differs from library bytes under cache-write faults")
	}
	final := ts.statusOf(t, st.ID)
	if final.State != "done" {
		t.Errorf("state %s, want done: cache-write faults must not fail the sweep", final.State)
	}
	if final.CacheWriteErrors < 1 {
		t.Errorf("cacheWriteErrors = %d, want >= 1: the lost store went uncounted", final.CacheWriteErrors)
	}
}

// TestChaosAdmission pins the admission-control surface: body and job
// limits answer 413, the active-sweep limit answers 429 with Retry-After —
// and idempotent resubmission of a running sweep is never rejected.
func TestChaosAdmission(t *testing.T) {
	post := func(ts *testServer, body []byte) (*http.Response, string) {
		t.Helper()
		resp, err := http.Post(ts.http.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}

	t.Run("max-jobs", func(t *testing.T) {
		ts := startChaosServer(t, t.TempDir(), Workers(1), MaxExpandedJobs(4))
		spec := chaosSpec() // 16 jobs
		resp, body := post(ts, wireSpec(t, spec))
		if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(body, "jobs") {
			t.Errorf("oversized grid: status %d body %s, want 413 naming the job limit", resp.StatusCode, body)
		}
	})

	t.Run("max-body", func(t *testing.T) {
		ts := startChaosServer(t, t.TempDir(), Workers(1), MaxBodyBytes(64))
		big := append(wireSpec(t, chaosSpec()), bytes.Repeat([]byte(" "), 128)...)
		resp, body := post(ts, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge || !strings.Contains(body, "request limit") {
			t.Errorf("oversized body: status %d body %s, want 413 naming the byte limit", resp.StatusCode, body)
		}
	})

	t.Run("max-active", func(t *testing.T) {
		ts := startChaosServer(t, t.TempDir(), Workers(1), MaxActiveSweeps(1))
		// Gate every job of the busy sweep: it provably stays active while
		// admission is probed, however fast the machine.
		armCreepGate(0)
		defer releaseCreepGate()
		busy := slowSpec()
		busy.Process = "creep"
		slow := ts.submit(t, wireSpec(t, busy))
		other := engine.SweepSpec{
			Topologies: []engine.Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Replicas: 2, Seed: 5,
		}
		resp, _ := post(ts, wireSpec(t, other))
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("over active limit: status %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without a Retry-After header")
		}
		// Idempotent resubmission of the running sweep still answers 200.
		resp, _ = post(ts, wireSpec(t, busy))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("idempotent resubmit under load: status %d, want 200", resp.StatusCode)
		}
		// Once the running sweep is gone, admission reopens.
		req, _ := http.NewRequest(http.MethodDelete, ts.http.URL+"/v1/sweeps/"+slow.ID, nil)
		if resp, err := http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
		}
		resp, _ = post(ts, wireSpec(t, other))
		if resp.StatusCode != http.StatusCreated {
			t.Errorf("post-cancel submit: status %d, want 201", resp.StatusCode)
		}
	})
}

// TestChaosProbes pins the health endpoints: healthz is plain liveness,
// readyz reports recovery state, pool size and quarantined ids.
func TestChaosProbes(t *testing.T) {
	ts := startChaosServer(t, t.TempDir(), Workers(2))
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(ts.get(t, "/healthz"), &health); err != nil || health.Status != "ok" {
		t.Errorf("healthz = %+v, err %v", health, err)
	}
	var ready struct {
		Ready       bool     `json:"ready"`
		Workers     int      `json:"workers"`
		Quarantined []string `json:"quarantined"`
	}
	if err := json.Unmarshal(ts.get(t, "/readyz"), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready || ready.Workers != 2 || len(ready.Quarantined) != 0 {
		t.Errorf("readyz = %+v, want ready, 2 workers, no quarantine", ready)
	}
}

// TestChaosClientDisconnect drops a streaming client mid-sweep: the
// server-side stream must end via the request context while the sweep
// itself computes on to completion, unharmed.
func TestChaosClientDisconnect(t *testing.T) {
	spec := slowSpec()
	want := libraryJSONL(t, spec)
	ts := startChaosServer(t, t.TempDir(), Workers(1))
	st := ts.submit(t, wireSpec(t, spec))

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.http.URL+"/v1/sweeps/"+st.ID+"/rows", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := io.ReadFull(resp.Body, buf); err != nil {
		t.Fatalf("first streamed byte: %v", err)
	}
	cancel() // the client vanishes mid-stream
	resp.Body.Close()

	final := waitState(t, ts, st.ID, "done")
	if final.Completed != final.Jobs {
		t.Errorf("sweep finished at %d of %d rows", final.Completed, final.Jobs)
	}
	if got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows"); !bytes.Equal(got, want) {
		t.Errorf("stream after client disconnect differs from library bytes")
	}
}

// TestChaosDrainDeadline closes a server while a job blocks forever: Close
// must return at the drain deadline instead of hanging, and the abandoned
// job's late delivery must be dropped harmlessly.
func TestChaosDrainDeadline(t *testing.T) {
	srv, err := Open(t.TempDir(), Workers(1), DrainTimeout(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	wire, err := engine.EncodeWireSpec(engine.SweepSpec{
		Topologies: []engine.Topo{"ring"}, Sizes: []int{16}, Agents: []int{1},
		Process: "stall", Replicas: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := srv.Submit(wire); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stallStarted:
	case <-time.After(30 * time.Second):
		t.Fatal("stalled job never started")
	}
	start := time.Now()
	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("Close took %s despite the 100ms drain deadline", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close hung past the drain deadline on a stalled job")
	}
	select { // free the abandoned worker; its delivery is dropped
	case <-stallRelease: // already released by an earlier -count run
	default:
		close(stallRelease)
	}
	time.Sleep(10 * time.Millisecond)
}

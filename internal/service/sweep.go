package service

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"rotorring/internal/engine"
)

// sweepJob is one submitted sweep: its expanded job grid, its spool
// directory, and the re-sequencer that turns out-of-order job completions
// back into the canonical row stream.
//
// The completed-row watermark IS the checkpoint: rows.jsonl is append-only
// in canonical order, so its complete-line count says exactly which prefix
// of the job range is done, and a restarted server resumes scheduling at
// that index. No other recovery state exists — the spec (hash-pinned in
// meta.json) re-expands to the same grid, seeds and keys on any machine.
type sweepJob struct {
	id   string
	dir  string
	hash string // full hex SHA-256 of the canonical wire spec
	wire []byte // canonical wire spec bytes (the hash preimage)
	exp  *engine.ExpandedSweep

	mu        sync.Mutex
	completed int            // rows persisted to rows.jsonl, in order
	cacheHits int            // jobs served from the row cache this run
	pending   map[int][]byte // finished rows waiting for their turn
	failed    string         // persistent failure (spool write error)
	notify    chan struct{}  // closed and replaced on every state change
	rows      *os.File       // append handle, nil once done or failed
}

func (sw *sweepJob) rowsPath() string { return filepath.Join(sw.dir, "rows.jsonl") }

// state reports the sweep's lifecycle phase for the status endpoint.
func (sw *sweepJob) state() string {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	switch {
	case sw.failed != "":
		return "failed"
	case sw.completed == sw.exp.NumJobs():
		return "done"
	default:
		return "running"
	}
}

// wait returns a channel closed at the sweep's next state change; callers
// re-check their condition and call wait again (the channel is replaced
// after every broadcast).
func (sw *sweepJob) wait() <-chan struct{} {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.notify
}

func (sw *sweepJob) broadcast() {
	close(sw.notify)
	sw.notify = make(chan struct{})
}

// deliver hands the sequencer one finished job's canonical row bytes
// (grid index already in place). Rows persist to rows.jsonl strictly in
// job order: out-of-order completions park in pending until every earlier
// row has been appended. Jobs below the watermark — possible when a
// restart re-enqueues work a dying worker had in flight — are dropped:
// their bytes are already on disk.
func (sw *sweepJob) deliver(job int, rowBytes []byte, cacheHit bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.failed != "" || job < sw.completed {
		return
	}
	if cacheHit {
		sw.cacheHits++
	}
	sw.pending[job] = rowBytes
	for {
		b, ok := sw.pending[sw.completed]
		if !ok {
			break
		}
		if _, err := sw.rows.Write(b); err != nil {
			sw.failed = fmt.Sprintf("spool write: %v", err)
			break
		}
		delete(sw.pending, sw.completed)
		sw.completed++
	}
	if sw.completed == sw.exp.NumJobs() || sw.failed != "" {
		sw.rows.Close()
		sw.rows = nil
	}
	sw.broadcast()
}

// snapshot returns the counters the status endpoint reports.
func (sw *sweepJob) snapshot() (completed, cacheHits int, failed string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.completed, sw.cacheHits, sw.failed
}

// openRows opens (creating if absent) the sweep's row spool for appending
// and returns the number of complete rows already persisted. A partial
// trailing line — the signature of a server killed mid-write — is
// truncated away so the row is recomputed rather than emitted corrupt;
// byte-reproducibility makes the recomputation indistinguishable from the
// interrupted write having succeeded.
func (sw *sweepJob) openRows() (int, error) {
	path := sw.rowsPath()
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return 0, err
	}
	complete := 0
	offset := int64(0)
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if line[len(line)-1] != '\n' {
			break // partial tail: truncate below
		}
		complete++
		offset += int64(len(line))
	}
	if offset < int64(len(data)) {
		if err := os.Truncate(path, offset); err != nil {
			return 0, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	sw.rows = f
	return complete, nil
}

// streamRows copies rows [from, NumJobs) to emit as they become available,
// blocking on the sweep's notifier between appends. emit receives one
// canonical row line at a time (newline included). stop aborts the stream
// (client disconnect, server shutdown). Returns after the last row of a
// finished sweep, or with an error if the sweep failed.
func (sw *sweepJob) streamRows(from int, emit func([]byte) error, stop <-chan struct{}) error {
	f, err := os.Open(sw.rowsPath())
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	skipped, emitted := 0, 0
	for {
		sw.mu.Lock()
		avail, failed, total := sw.completed, sw.failed, sw.exp.NumJobs()
		ch := sw.notify
		sw.mu.Unlock()
		for skipped+emitted < avail {
			line, err := r.ReadBytes('\n')
			if err != nil {
				return fmt.Errorf("service: row spool read: %w", err)
			}
			if skipped < from {
				skipped++
				continue
			}
			if err := emit(line); err != nil {
				return err
			}
			emitted++
		}
		if failed != "" {
			return fmt.Errorf("service: sweep failed: %s", failed)
		}
		if from+emitted >= total {
			return nil
		}
		select {
		case <-ch:
		case <-stop:
			return nil
		}
	}
}

package service

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	iofs "io/fs"
	"log"
	"path/filepath"
	"sync"

	"rotorring/internal/engine"
)

// errCanceled terminates streams of a canceled sweep.
var errCanceled = errors.New("service: sweep canceled")

// sweepJob is one submitted sweep: its expanded job grid, its spool
// directory, and the re-sequencer that turns out-of-order job completions
// back into the canonical row stream.
//
// The completed-row watermark IS the checkpoint: rows.jsonl is append-only
// in canonical order, so its complete-line count says exactly which prefix
// of the job range is done, and a restarted server resumes scheduling at
// that index. No other recovery state exists — the spec (hash-pinned in
// meta.json) re-expands to the same grid, seeds and keys on any machine.
//
// Failure state is deliberately softer than the checkpoint: failed records
// why *this server run* stopped working on the sweep (spool write error,
// panicking job), but the on-disk watermark stays valid, so a restart
// retries the sweep from exactly where the fault struck. canceled is the
// one terminal state: the spool directory is gone and only the in-memory
// tombstone remains.
type sweepJob struct {
	id   string
	dir  string
	hash string // full hex SHA-256 of the canonical wire spec
	wire []byte // canonical wire spec bytes (the hash preimage)
	exp  *engine.ExpandedSweep
	fs   spoolFS

	mu             sync.Mutex
	completed      int            // rows persisted to rows.jsonl, in order
	cacheHits      int            // jobs served from the row cache this run
	cacheWriteErrs int            // failed row-cache stores this run
	cacheWriteLog  bool           // first cache-write failure already logged
	pending        map[int][]byte // finished rows waiting for their turn
	failed         string         // persistent failure (spool write, panic)
	failedJob      string         // JobKey of the job that failed the sweep
	canceled       bool           // DELETE'd: spool removed, tombstone only
	notify         chan struct{}  // closed and replaced on every state change
	rows           spoolFile      // append handle, nil once done/failed/canceled
	stats          *serverStats   // server-level counters (nil-safe: tests may omit)
}

func (sw *sweepJob) rowsPath() string { return filepath.Join(sw.dir, "rows.jsonl") }

// state reports the sweep's lifecycle phase for the status endpoint.
func (sw *sweepJob) state() string {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	switch {
	case sw.canceled:
		return "canceled"
	case sw.failed != "":
		return "failed"
	case sw.completed == sw.exp.NumJobs():
		return "done"
	default:
		return "running"
	}
}

// runnable reports whether the sweep still wants jobs executed: feeders
// and workers check it so a failed or canceled sweep stops consuming the
// shared pool immediately instead of after its whole job range.
func (sw *sweepJob) runnable() bool {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return !sw.canceled && sw.failed == "" && sw.completed < sw.exp.NumJobs()
}

// wait returns a channel closed at the sweep's next state change; callers
// re-check their condition and call wait again (the channel is replaced
// after every broadcast).
func (sw *sweepJob) wait() <-chan struct{} {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.notify
}

func (sw *sweepJob) broadcast() {
	close(sw.notify)
	sw.notify = make(chan struct{})
}

// fail marks the sweep failed with a cause (and, when the fault is tied to
// one job, that job's content-address key). The first fault wins; a sweep
// already canceled stays canceled. The watermark on disk is untouched, so
// a restart retries from it.
func (sw *sweepJob) fail(cause, jobKey string) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.canceled || sw.failed != "" {
		return
	}
	sw.failed = cause
	sw.failedJob = jobKey
	if sw.rows != nil {
		sw.rows.Close()
		sw.rows = nil
	}
	sw.broadcast()
}

// cancel flips the sweep into its terminal canceled state: the append
// handle closes, parked rows drop, streams wake up and end. Removing the
// spool directory is the caller's (the Server's) job. Idempotent.
func (sw *sweepJob) cancel() (already bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.canceled {
		return true
	}
	sw.canceled = true
	sw.pending = make(map[int][]byte)
	if sw.rows != nil {
		sw.rows.Close()
		sw.rows = nil
	}
	sw.broadcast()
	return false
}

// noteCacheWriteErr counts a failed row-cache store. The first failure of
// a sweep logs (later ones are almost always the same full disk); the
// count surfaces in the status document so a silent cache degradation is
// visible to operators.
func (sw *sweepJob) noteCacheWriteErr(err error) {
	sw.mu.Lock()
	sw.cacheWriteErrs++
	first := !sw.cacheWriteLog
	sw.cacheWriteLog = true
	sw.mu.Unlock()
	if first {
		log.Printf("service: sweep %s: row cache store failed (counting further failures silently): %v", sw.id, err)
	}
}

// deliver hands the sequencer one finished job's canonical row bytes
// (grid index already in place). Rows persist to rows.jsonl strictly in
// job order: out-of-order completions park in pending until every earlier
// row has been appended. Jobs below the watermark — possible when a
// restart re-enqueues work a dying worker had in flight — are dropped:
// their bytes are already on disk. Deliveries racing a failure, a cancel
// or a server drain (rows == nil) are dropped too; nothing about them is
// lost, the watermark simply stops before them.
func (sw *sweepJob) deliver(job int, rowBytes []byte, cacheHit bool) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if sw.failed != "" || sw.canceled || sw.rows == nil || job < sw.completed {
		return
	}
	if cacheHit {
		sw.cacheHits++
	}
	sw.pending[job] = rowBytes
	appended := int64(0)
	for {
		b, ok := sw.pending[sw.completed]
		if !ok {
			break
		}
		if _, err := sw.rows.Write(b); err != nil {
			sw.failed = fmt.Sprintf("spool write: %v", err)
			break
		}
		delete(sw.pending, sw.completed)
		sw.completed++
		appended++
	}
	if sw.stats != nil && appended > 0 {
		sw.stats.rowsCommitted.Add(appended)
	}
	if sw.completed == sw.exp.NumJobs() || sw.failed != "" {
		if sw.rows != nil {
			sw.rows.Close()
			sw.rows = nil
		}
	}
	sw.broadcast()
}

// sweepCounters is the mutable state the status endpoint reports.
type sweepCounters struct {
	completed      int
	cacheHits      int
	cacheWriteErrs int
	failed         string
	failedJob      string
	canceled       bool
}

// snapshot returns the counters the status endpoint reports.
func (sw *sweepJob) snapshot() sweepCounters {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sweepCounters{
		completed:      sw.completed,
		cacheHits:      sw.cacheHits,
		cacheWriteErrs: sw.cacheWriteErrs,
		failed:         sw.failed,
		failedJob:      sw.failedJob,
		canceled:       sw.canceled,
	}
}

// openRows opens (creating if absent) the sweep's row spool for appending
// and returns the number of complete rows already persisted. A partial
// trailing line — the signature of a server killed (or a disk filled) mid-
// write — is truncated away so the row is recomputed rather than emitted
// corrupt; byte-reproducibility makes the recomputation indistinguishable
// from the interrupted write having succeeded.
func (sw *sweepJob) openRows() (int, error) {
	path := sw.rowsPath()
	data, err := sw.fs.ReadFile(path)
	if err != nil && !errors.Is(err, iofs.ErrNotExist) {
		return 0, err
	}
	complete := 0
	offset := int64(0)
	for _, line := range bytes.SplitAfter(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if line[len(line)-1] != '\n' {
			break // partial tail: truncate below
		}
		complete++
		offset += int64(len(line))
	}
	if offset < int64(len(data)) {
		if err := sw.fs.Truncate(path, offset); err != nil {
			return 0, err
		}
	}
	f, err := sw.fs.OpenAppend(path)
	if err != nil {
		return 0, err
	}
	sw.rows = f
	return complete, nil
}

// streamRows copies rows [from, NumJobs) to emit as they become available,
// blocking on the sweep's notifier between appends. emit receives one
// canonical row line at a time (newline included). stop aborts the stream
// (client disconnect, server shutdown). Returns after the last row of a
// finished sweep, or with an error if the sweep failed or was canceled
// mid-stream.
func (sw *sweepJob) streamRows(from int, emit func([]byte) error, stop <-chan struct{}) error {
	f, err := sw.fs.Open(sw.rowsPath())
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	skipped, emitted := 0, 0
	for {
		sw.mu.Lock()
		avail, failed, canceled, total := sw.completed, sw.failed, sw.canceled, sw.exp.NumJobs()
		ch := sw.notify
		sw.mu.Unlock()
		for skipped+emitted < avail {
			line, err := r.ReadBytes('\n')
			if err != nil {
				return fmt.Errorf("service: row spool read: %w", err)
			}
			if skipped < from {
				skipped++
				continue
			}
			if err := emit(line); err != nil {
				return err
			}
			emitted++
		}
		if canceled {
			return errCanceled
		}
		if failed != "" {
			return fmt.Errorf("service: sweep failed: %s", failed)
		}
		if from+emitted >= total {
			return nil
		}
		select {
		case <-ch:
		case <-stop:
			return nil
		}
	}
}

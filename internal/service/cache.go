package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// rowCache is the content-addressed row store shared by every sweep a
// server runs: one file per computed job, addressed by the SHA-256 digest
// of the job's engine.JobKey — the canonical string spelling out every
// input that can influence the row's bytes except its grid position. Two
// jobs with equal keys are the same computation, whatever sweep, grid
// shape or server run they belong to, so re-running an enlarged grid only
// computes the genuinely new cells.
//
// Entries hold the row's canonical RowBytes with the positional "cell"
// field zeroed; the reader patches the current grid's cell index back in
// (engine.DecodeRow / RowBytes round trips are byte-stable, pinned by
// TestRowBytesRoundTrip), so a cache hit is byte-identical to a fresh
// computation under any grid shape.
//
// The cache is crash-safe by construction: entries are written to a temp
// file and renamed into place, so a killed server leaves either a complete
// entry or none. Lookups and stores race benignly — both sides of a race
// write identical bytes.
type rowCache struct {
	dir string
}

func newRowCache(dir string) (*rowCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: row cache: %w", err)
	}
	return &rowCache{dir: dir}, nil
}

// addr maps a job key to its entry path, sharded by the digest's first
// byte so one flat directory never accumulates every row.
func (c *rowCache) addr(jobKey string) string {
	sum := sha256.Sum256([]byte(jobKey))
	digest := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, digest[:2], digest+".row")
}

// load returns the stored index-free row bytes for jobKey, if present.
func (c *rowCache) load(jobKey string) ([]byte, bool) {
	b, err := os.ReadFile(c.addr(jobKey))
	if err != nil || len(b) == 0 || b[len(b)-1] != '\n' {
		// Unreadable or truncated entries read as misses: the job just
		// recomputes and overwrites them.
		return nil, false
	}
	return b, true
}

// store writes the index-free row bytes for jobKey atomically.
func (c *rowCache) store(jobKey string, rowBytes []byte) error {
	path := c.addr(jobKey)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".row-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(rowBytes); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path/filepath"
)

// rowCache is the content-addressed row store shared by every sweep a
// server runs: one file per computed job, addressed by the SHA-256 digest
// of the job's engine.JobKey — the canonical string spelling out every
// input that can influence the row's bytes except its grid position. Two
// jobs with equal keys are the same computation, whatever sweep, grid
// shape or server run they belong to, so re-running an enlarged grid only
// computes the genuinely new cells.
//
// Entries hold the row's canonical RowBytes with the positional "cell"
// field zeroed; the reader patches the current grid's cell index back in
// (engine.DecodeRow / RowBytes round trips are byte-stable, pinned by
// TestRowBytesRoundTrip), so a cache hit is byte-identical to a fresh
// computation under any grid shape.
//
// The cache is crash-safe by construction: entries are written to a temp
// file and renamed into place, so a killed server leaves either a complete
// entry or none. Lookups and stores race benignly — both sides of a race
// write identical bytes. The cache is also strictly best-effort in both
// directions: a corrupt entry is deleted and recomputed (never fatal), and
// a failed store only costs a future recomputation — but never silently:
// callers route store errors through sweepJob.noteCacheWriteErr, so the
// loss is logged and counted in the sweep's status.
type rowCache struct {
	dir string
	fs  spoolFS
}

func newRowCache(dir string, fs spoolFS) (*rowCache, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("service: row cache: %w", err)
	}
	return &rowCache{dir: dir, fs: fs}, nil
}

// addr maps a job key to its entry path, sharded by the digest's first
// byte so one flat directory never accumulates every row.
func (c *rowCache) addr(jobKey string) string {
	sum := sha256.Sum256([]byte(jobKey))
	digest := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, digest[:2], digest+".row")
}

// load returns the stored index-free row bytes for jobKey, if present.
// Entries that are visibly corrupt (empty, missing the trailing newline)
// are deleted on sight so the recomputed row can take their place.
func (c *rowCache) load(jobKey string) ([]byte, bool) {
	path := c.addr(jobKey)
	b, err := c.fs.ReadFile(path)
	if err != nil {
		return nil, false
	}
	if len(b) == 0 || b[len(b)-1] != '\n' {
		_ = c.fs.Remove(path)
		return nil, false
	}
	return b, true
}

// remove deletes the entry for jobKey; callers use it when an entry that
// looked complete turns out undecodable, so the corruption cannot shadow
// the recomputed row forever.
func (c *rowCache) remove(jobKey string) {
	_ = c.fs.Remove(c.addr(jobKey))
}

// store writes the index-free row bytes for jobKey atomically.
func (c *rowCache) store(jobKey string, rowBytes []byte) error {
	path := c.addr(jobKey)
	if err := c.fs.MkdirAll(filepath.Dir(path)); err != nil {
		return err
	}
	tmp, err := c.fs.CreateTemp(filepath.Dir(path), ".row-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(rowBytes); err != nil {
		tmp.Close()
		c.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(tmp.Name())
		return err
	}
	return c.fs.Rename(tmp.Name(), path)
}

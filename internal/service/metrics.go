package service

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rotorring/internal/version"
)

// serverStats aggregates the coordinator-role counters /metrics reports.
// Everything here is observability only: no counter feeds back into
// scheduling, so the metrics surface can never perturb result bytes.
type serverStats struct {
	start time.Time

	rowsCommitted atomic.Int64 // rows appended to any sweep's spool
	localJobs     atomic.Int64 // jobs executed on the local pool
	cacheHits     atomic.Int64 // jobs served from the row cache
	cacheMisses   atomic.Int64 // jobs that had to be computed

	// rate window: the previous /metrics scrape's (time, rows) snapshot,
	// so rows/sec is measured over the scrape interval rather than over
	// all of uptime.
	rateMu   sync.Mutex
	lastTime time.Time
	lastRows int64
}

// rowsPerSecond returns the commit rate since the previous call (the
// previous scrape), falling back to the uptime average on the first one.
func (st *serverStats) rowsPerSecond(now time.Time) float64 {
	total := st.rowsCommitted.Load()
	st.rateMu.Lock()
	defer st.rateMu.Unlock()
	since, base := st.start, int64(0)
	if !st.lastTime.IsZero() {
		since, base = st.lastTime, st.lastRows
	}
	st.lastTime, st.lastRows = now, total
	dt := now.Sub(since).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(total-base) / dt
}

// promEscape escapes a Prometheus label value.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// handleMetrics serves the coordinator role's Prometheus text-format
// metrics: sweep states, pool and lease depth, cache hit rate, row
// throughput, and per-worker lease stats from the cluster registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()

	// Sweep states, snapshotted without holding s.mu across sweep locks.
	states := make(map[string]int, 4)
	for _, id := range s.SweepIDs() {
		if sw, ok := s.Sweep(id); ok {
			states[sw.state()]++
		}
	}

	var b strings.Builder
	emit := func(typ, name, help string, write func()) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		write()
	}

	emit("gauge", "rotord_info", "Build and role identity (always 1).", func() {
		fmt.Fprintf(&b, "rotord_info{role=\"coordinator\",version=%q} 1\n", version.Version)
	})
	emit("gauge", "rotord_uptime_seconds", "Seconds since this server opened its spool.", func() {
		fmt.Fprintf(&b, "rotord_uptime_seconds %.3f\n", now.Sub(s.stats.start).Seconds())
	})
	emit("gauge", "rotord_pool_workers", "Local worker pool size.", func() {
		fmt.Fprintf(&b, "rotord_pool_workers %d\n", s.NumWorkers())
	})
	emit("gauge", "rotord_sweeps", "Registered sweeps by state.", func() {
		for _, state := range []string{"running", "done", "failed", "canceled"} {
			fmt.Fprintf(&b, "rotord_sweeps{state=%q} %d\n", state, states[state])
		}
	})
	emit("counter", "rotord_rows_committed_total", "Rows appended to sweep spools this server run.", func() {
		fmt.Fprintf(&b, "rotord_rows_committed_total %d\n", s.stats.rowsCommitted.Load())
	})
	emit("gauge", "rotord_rows_per_second", "Row commit rate since the previous scrape.", func() {
		fmt.Fprintf(&b, "rotord_rows_per_second %.3f\n", s.stats.rowsPerSecond(now))
	})
	emit("counter", "rotord_jobs_local_total", "Jobs executed on the local pool this server run.", func() {
		fmt.Fprintf(&b, "rotord_jobs_local_total %d\n", s.stats.localJobs.Load())
	})
	hits, misses := s.stats.cacheHits.Load(), s.stats.cacheMisses.Load()
	emit("counter", "rotord_cache_hits_total", "Jobs served from the content-addressed row cache.", func() {
		fmt.Fprintf(&b, "rotord_cache_hits_total %d\n", hits)
	})
	emit("counter", "rotord_cache_misses_total", "Jobs that had to be computed.", func() {
		fmt.Fprintf(&b, "rotord_cache_misses_total %d\n", misses)
	})
	emit("gauge", "rotord_cache_hit_ratio", "Cache hits over scheduled jobs (0 when none scheduled).", func() {
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(&b, "rotord_cache_hit_ratio %.4f\n", ratio)
	})

	snap := s.cluster.Snapshot()
	emit("gauge", "rotord_cluster_workers", "Registered (live) cluster workers.", func() {
		fmt.Fprintf(&b, "rotord_cluster_workers %d\n", snap.Workers)
	})
	emit("gauge", "rotord_cluster_pending_chunks", "Chunks queued for remote execution.", func() {
		fmt.Fprintf(&b, "rotord_cluster_pending_chunks %d\n", snap.PendingChunks)
	})
	emit("gauge", "rotord_cluster_pending_jobs", "Jobs inside queued chunks.", func() {
		fmt.Fprintf(&b, "rotord_cluster_pending_jobs %d\n", snap.PendingJobs)
	})
	emit("gauge", "rotord_cluster_leases_active", "Leases currently held by workers.", func() {
		fmt.Fprintf(&b, "rotord_cluster_leases_active %d\n", snap.ActiveLeases)
	})
	emit("counter", "rotord_cluster_leases_granted_total", "Leases granted this server run.", func() {
		fmt.Fprintf(&b, "rotord_cluster_leases_granted_total %d\n", snap.LeasesGranted)
	})
	emit("counter", "rotord_cluster_leases_expired_total", "Leases that blew their deadline.", func() {
		fmt.Fprintf(&b, "rotord_cluster_leases_expired_total %d\n", snap.LeasesExpired)
	})
	emit("counter", "rotord_cluster_leases_reassigned_total", "Lease reassignments (deadline, worker death, rejected rows).", func() {
		fmt.Fprintf(&b, "rotord_cluster_leases_reassigned_total %d\n", snap.LeasesReassigned)
	})
	emit("counter", "rotord_cluster_workers_expired_total", "Workers dropped for silence or blown leases.", func() {
		fmt.Fprintf(&b, "rotord_cluster_workers_expired_total %d\n", snap.WorkersExpired)
	})
	emit("counter", "rotord_cluster_rows_remote_total", "Rows committed from cluster workers.", func() {
		fmt.Fprintf(&b, "rotord_cluster_rows_remote_total %d\n", snap.RemoteRows)
	})
	emit("counter", "rotord_cluster_rows_late_total", "Rows accepted after their lease was already reassigned (harmless duplicates).", func() {
		fmt.Fprintf(&b, "rotord_cluster_rows_late_total %d\n", snap.LateRows)
	})
	if len(snap.PerWorker) > 0 {
		emit("gauge", "rotord_cluster_worker_active_leases", "Active leases per worker.", func() {
			for _, ws := range snap.PerWorker {
				fmt.Fprintf(&b, "rotord_cluster_worker_active_leases{worker=%q,id=%q} %d\n",
					promEscape(ws.Name), promEscape(ws.ID), ws.ActiveLeases)
			}
		})
		emit("counter", "rotord_cluster_worker_leases_total", "Leases granted per worker.", func() {
			for _, ws := range snap.PerWorker {
				fmt.Fprintf(&b, "rotord_cluster_worker_leases_total{worker=%q,id=%q} %d\n",
					promEscape(ws.Name), promEscape(ws.ID), ws.LeasesTotal)
			}
		})
		emit("counter", "rotord_cluster_worker_rows_total", "Rows committed per worker.", func() {
			for _, ws := range snap.PerWorker {
				fmt.Fprintf(&b, "rotord_cluster_worker_rows_total{worker=%q,id=%q} %d\n",
					promEscape(ws.Name), promEscape(ws.ID), ws.RowsTotal)
			}
		})
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

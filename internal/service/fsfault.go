package service

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"rotorring/internal/engine"
)

// spoolFS is the seam between the service and its spool storage. Every
// byte the server persists — sweep specs, meta documents, row spools, the
// content-addressed cache, quarantine moves — goes through this interface,
// so the chaos suite can inject ENOSPC, torn writes and fail-after-N-bytes
// faults deterministically without touching a real disk's failure modes.
//
// The production implementation (osFS) is a thin veneer over the os
// package; the fault-injecting implementation (chaosFS) wraps any spoolFS
// and applies a rule table whose nondeterministic choices (torn-write cut
// points) are derived from a seed in the repo's configuration-derived-seed
// style, so a failing chaos test replays byte-for-byte.
type spoolFS interface {
	MkdirAll(path string) error
	ReadDir(path string) ([]os.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	// Open opens a file for reading (row streaming).
	Open(path string) (io.ReadCloser, error)
	// OpenAppend opens path for appending, creating it if absent.
	OpenAppend(path string) (spoolFile, error)
	// CreateTemp creates a new temp file in dir (crash-atomic writes:
	// write to the temp file, Sync, Close, Rename into place).
	CreateTemp(dir, pattern string) (spoolFile, error)
	Rename(oldpath, newpath string) error
	Truncate(path string, size int64) error
	Remove(path string) error
	RemoveAll(path string) error
}

// spoolFile is a writable spool file handle.
type spoolFile interface {
	io.WriteCloser
	Name() string
	Sync() error
}

// osFS is the real spool storage.
type osFS struct{}

func (osFS) MkdirAll(path string) error                 { return os.MkdirAll(path, 0o755) }
func (osFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
func (osFS) ReadFile(path string) ([]byte, error)       { return os.ReadFile(path) }
func (osFS) Open(path string) (io.ReadCloser, error)    { return os.Open(path) }
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Truncate(path string, size int64) error     { return os.Truncate(path, size) }
func (osFS) Remove(path string) error                   { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                { return os.RemoveAll(path) }

func (osFS) OpenAppend(path string) (spoolFile, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) CreateTemp(dir, pattern string) (spoolFile, error) {
	return os.CreateTemp(dir, pattern)
}

// Fault-injection ops, as named in faultRule.Op.
const (
	opAppend   = "append" // writes through an OpenAppend handle
	opCreate   = "create" // CreateTemp (and writes through its handle)
	opRename   = "rename"
	opTruncate = "truncate"
	opRemove   = "remove"
	opSync     = "sync"
)

// faultKind selects what a fired rule does to the intercepted operation.
type faultKind int

const (
	// faultENOSPC lets the rule's byte allowance through, then fails with
	// ENOSPC — the fail-after-N-bytes model of a filling disk.
	faultENOSPC faultKind = iota
	// faultTorn writes a strict non-empty prefix of the buffer — its
	// length derived from the injector seed — then fails: the signature
	// of a kill or media error mid-write.
	faultTorn
	// faultErr fails the operation outright with a generic injected error.
	faultErr
)

// faultRule arms one deterministic fault. Zero values mean "any": an empty
// Path matches every file, Skip 0 fires on the first matching op.
type faultRule struct {
	Op    string // which operation to intercept (op* constants)
	Path  string // substring the file path must contain
	Kind  faultKind
	Skip  int   // matching ops to let through untouched first
	After int64 // faultENOSPC on appends: bytes to let through per file
	seen  int   // matching ops observed so far
	fired bool
}

// chaosFS wraps a spoolFS and injects the armed faults. All choices are
// deterministic: rules fire on exact op counts, and torn-write cut points
// come from engine.DeriveSeed over (seed, op index) — the same derivation
// discipline the sweep engine uses for job seeds.
type chaosFS struct {
	inner spoolFS
	seed  uint64

	mu      sync.Mutex
	rules   []*faultRule
	nops    uint64           // intercepted write-path ops, drives seeded cuts
	written map[string]int64 // appended bytes per path, drives After
}

func newChaosFS(inner spoolFS, seed uint64) *chaosFS {
	return &chaosFS{inner: inner, seed: seed, written: make(map[string]int64)}
}

// arm adds a fault rule. Rules fire at most once each.
func (c *chaosFS) arm(r faultRule) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = append(c.rules, &r)
}

// heal disarms every rule: subsequent ops pass through untouched.
func (c *chaosFS) heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules = nil
}

func injectedENOSPC(op, path string) error {
	return &fs.PathError{Op: op, Path: path, Err: syscall.ENOSPC}
}

// match finds the armed rule for (op, path), honoring Skip, or nil.
// Callers hold c.mu.
func (c *chaosFS) match(op, path string) *faultRule {
	for _, r := range c.rules {
		if r.fired || r.Op != op || !strings.Contains(path, r.Path) {
			continue
		}
		if r.seen++; r.seen <= r.Skip {
			continue
		}
		return r
	}
	return nil
}

// checkOp applies rules to a non-write operation.
func (c *chaosFS) checkOp(op, path string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nops++
	r := c.match(op, path)
	if r == nil {
		return nil
	}
	r.fired = true
	if r.Kind == faultENOSPC {
		return injectedENOSPC(op, path)
	}
	return &fs.PathError{Op: op, Path: path, Err: fmt.Errorf("injected %s fault", op)}
}

// checkWrite applies rules to one write of len(p) bytes against path,
// returning how many bytes to pass through to the real file and the error
// to report after them (nil = the whole write goes through cleanly).
func (c *chaosFS) checkWrite(op, path string, p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nops++
	r := c.match(op, path)
	if r == nil {
		c.written[path] += int64(len(p))
		return len(p), nil
	}
	switch r.Kind {
	case faultTorn:
		// A strict non-empty prefix whenever possible, so the tear is
		// observable on disk; the cut point replays from the seed.
		cut := 0
		if len(p) > 1 {
			cut = 1 + int(engine.DeriveSeed(c.seed, c.nops)%uint64(len(p)-1))
		}
		r.fired = true
		c.written[path] += int64(cut)
		return cut, injectedENOSPC(op, path)
	case faultENOSPC:
		allow := r.After - c.written[path]
		if allow < 0 {
			allow = 0
		}
		if allow >= int64(len(p)) {
			// Still under the allowance: let it through, keep the rule
			// armed for the write that crosses the boundary.
			r.seen-- // not consumed
			c.written[path] += int64(len(p))
			return len(p), nil
		}
		r.fired = true
		c.written[path] += allow
		return int(allow), injectedENOSPC(op, path)
	default:
		r.fired = true
		return 0, &fs.PathError{Op: op, Path: path, Err: fmt.Errorf("injected %s fault", op)}
	}
}

func (c *chaosFS) MkdirAll(path string) error                 { return c.inner.MkdirAll(path) }
func (c *chaosFS) ReadDir(path string) ([]os.DirEntry, error) { return c.inner.ReadDir(path) }
func (c *chaosFS) ReadFile(path string) ([]byte, error)       { return c.inner.ReadFile(path) }
func (c *chaosFS) Open(path string) (io.ReadCloser, error)    { return c.inner.Open(path) }

func (c *chaosFS) Rename(oldpath, newpath string) error {
	if err := c.checkOp(opRename, newpath); err != nil {
		return err
	}
	return c.inner.Rename(oldpath, newpath)
}

func (c *chaosFS) Truncate(path string, size int64) error {
	if err := c.checkOp(opTruncate, path); err != nil {
		return err
	}
	return c.inner.Truncate(path, size)
}

func (c *chaosFS) Remove(path string) error {
	if err := c.checkOp(opRemove, path); err != nil {
		return err
	}
	return c.inner.Remove(path)
}

func (c *chaosFS) RemoveAll(path string) error {
	if err := c.checkOp(opRemove, path); err != nil {
		return err
	}
	return c.inner.RemoveAll(path)
}

func (c *chaosFS) OpenAppend(path string) (spoolFile, error) {
	f, err := c.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &chaosFile{c: c, op: opAppend, f: f}, nil
}

func (c *chaosFS) CreateTemp(dir, pattern string) (spoolFile, error) {
	if err := c.checkOp(opCreate, filepath.Join(dir, pattern)); err != nil {
		return nil, err
	}
	f, err := c.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &chaosFile{c: c, op: opCreate, f: f}, nil
}

// chaosFile intercepts writes and syncs on one open handle.
type chaosFile struct {
	c  *chaosFS
	op string
	f  spoolFile
}

func (cf *chaosFile) Name() string { return cf.f.Name() }
func (cf *chaosFile) Close() error { return cf.f.Close() }

func (cf *chaosFile) Sync() error {
	if err := cf.c.checkOp(opSync, cf.f.Name()); err != nil {
		return err
	}
	return cf.f.Sync()
}

func (cf *chaosFile) Write(p []byte) (int, error) {
	allow, injected := cf.c.checkWrite(cf.op, cf.f.Name(), p)
	n := 0
	if allow > 0 {
		var err error
		n, err = cf.f.Write(p[:allow])
		if err != nil {
			return n, err
		}
	}
	if injected != nil {
		return n, injected
	}
	return n, nil
}

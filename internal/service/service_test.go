package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rotorring/internal/engine"
)

// wireSpec renders a wire-format spec body for tests.
func wireSpec(t *testing.T, spec engine.SweepSpec) []byte {
	t.Helper()
	b, err := engine.EncodeWireSpec(spec)
	if err != nil {
		t.Fatalf("EncodeWireSpec: %v", err)
	}
	return b
}

// libraryJSONL runs the spec in library mode — the byte-identity reference.
func libraryJSONL(t *testing.T, spec engine.SweepSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := engine.New(engine.Workers(4)).Run(spec, engine.NewJSONLSink(&buf)); err != nil {
		t.Fatalf("library run: %v", err)
	}
	return buf.Bytes()
}

type testServer struct {
	srv  *Server
	http *httptest.Server
}

func startServer(t *testing.T, spool string, workers int) *testServer {
	t.Helper()
	srv, err := Open(spool, Workers(workers))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &testServer{srv: srv, http: ts}
}

func (ts *testServer) submit(t *testing.T, body []byte) sweepStatus {
	t.Helper()
	resp, err := http.Post(ts.http.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sweeps: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/sweeps: status %d: %s", resp.StatusCode, b)
	}
	var st sweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return st
}

func (ts *testServer) get(t *testing.T, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.http.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b)
	}
	return b
}

func (ts *testServer) statusOf(t *testing.T, id string) sweepStatus {
	t.Helper()
	var st sweepStatus
	if err := json.Unmarshal(ts.get(t, "/v1/sweeps/"+id), &st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// identitySpec is a small heterogeneous grid covering mixed topologies
// (one seeded), random placement, schedules, probes and replicas — every
// row shape the byte-identity contract must hold for.
func identitySpec() engine.SweepSpec {
	return engine.SweepSpec{
		Topologies: []engine.Topo{"ring", "grid:8x8", "rr:3"},
		Sizes:      []int{32},
		Agents:     []int{2, 4},
		Placements: []engine.Placement{engine.PlaceSingle, engine.PlaceRandom},
		Probes:     []engine.ProbeSpec{{Name: "coverage", Stride: 128}},
		Schedules:  []engine.Schedule{"none", "delay:p=0.25"},
		Replicas:   2,
		Seed:       7,
	}
}

// TestStreamByteIdentity is the tentpole contract: rows streamed by the
// service equal library-mode RunSweep bytes, at 1 worker and at 8.
func TestStreamByteIdentity(t *testing.T) {
	spec := identitySpec()
	want := libraryJSONL(t, spec)
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ts := startServer(t, t.TempDir(), workers)
			st := ts.submit(t, wireSpec(t, spec))
			got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
			if !bytes.Equal(got, want) {
				t.Errorf("streamed rows differ from library bytes\n got %d bytes\nwant %d bytes", len(got), len(want))
			}
			final := ts.statusOf(t, st.ID)
			if final.State != "done" || final.Completed != final.Jobs {
				t.Errorf("after full stream: state=%s completed=%d/%d", final.State, final.Completed, final.Jobs)
			}
		})
	}
}

// TestResumeCursor proves ?from= is an exact row cursor: the tail stream
// is the byte tail of the full stream, and from=jobs yields nothing.
func TestResumeCursor(t *testing.T) {
	spec := identitySpec()
	want := libraryJSONL(t, spec)
	ts := startServer(t, t.TempDir(), 4)
	st := ts.submit(t, wireSpec(t, spec))
	full := ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
	if !bytes.Equal(full, want) {
		t.Fatal("full stream differs from library bytes")
	}
	lines := bytes.SplitAfter(full, []byte("\n"))
	for _, from := range []int{1, st.Jobs / 2, st.Jobs - 1, st.Jobs} {
		var wantTail []byte
		for _, l := range lines[from:] {
			wantTail = append(wantTail, l...)
		}
		got := ts.get(t, fmt.Sprintf("/v1/sweeps/%s/rows?from=%d", st.ID, from))
		if !bytes.Equal(got, wantTail) {
			t.Errorf("from=%d: tail differs (%d bytes, want %d)", from, len(got), len(wantTail))
		}
	}
}

// TestWarmCacheEnlargedGrid re-runs an enlarged grid: the overlapping
// cells must come from the row cache (hits > 0, under new cell indices)
// and the full stream must still be byte-identical to a fresh library run
// of the enlarged spec.
func TestWarmCacheEnlargedGrid(t *testing.T) {
	small := engine.SweepSpec{
		Topologies: []engine.Topo{"ring", "rr:3"},
		Sizes:      []int{32},
		Agents:     []int{2},
		Replicas:   2,
		Seed:       7,
	}
	big := small
	big.Topologies = []engine.Topo{"grid:8x8", "ring", "rr:3"} // reshuffles cell order too
	big.Sizes = []int{32, 64}
	big.Agents = []int{2, 4}

	ts := startServer(t, t.TempDir(), 4)
	stSmall := ts.submit(t, wireSpec(t, small))
	ts.get(t, "/v1/sweeps/"+stSmall.ID+"/rows") // drain to completion

	stBig := ts.submit(t, wireSpec(t, big))
	if stBig.ID == stSmall.ID {
		t.Fatal("distinct specs mapped to one sweep id")
	}
	got := ts.get(t, "/v1/sweeps/"+stBig.ID+"/rows")
	if want := libraryJSONL(t, big); !bytes.Equal(got, want) {
		t.Errorf("warm-cache stream differs from library bytes")
	}
	final := ts.statusOf(t, stBig.ID)
	if final.CacheHits < stSmall.Jobs {
		t.Errorf("cacheHits = %d, want at least the %d overlapping jobs", final.CacheHits, stSmall.Jobs)
	}
	if final.CacheHits >= final.Jobs {
		t.Errorf("cacheHits = %d of %d jobs: the new cells were not computed", final.CacheHits, final.Jobs)
	}
}

// TestIdempotentSubmit pins content-addressed submission: identical specs
// (even spelled non-canonically) return the same sweep; different seeds do
// not.
func TestIdempotentSubmit(t *testing.T) {
	ts := startServer(t, t.TempDir(), 2)
	a := ts.submit(t, []byte(`{"v":1,"topologies":["ring"],"sizes":[32],"agents":[2],"seed":7}`))
	b := ts.submit(t, []byte(`{"v":1,"topologies":["RING"],"sizes":[32],"agents":[2],"seed":7}`))
	if a.ID != b.ID {
		t.Errorf("canonically equal specs got distinct ids %s, %s", a.ID, b.ID)
	}
	c := ts.submit(t, []byte(`{"v":1,"topologies":["ring"],"sizes":[32],"agents":[2],"seed":8}`))
	if c.ID == a.ID {
		t.Error("distinct specs share a sweep id")
	}
}

// creepProc computes its row instantly, but while the gate is armed every
// job past the allowance blocks until the gate is released. TestKillAndResume
// uses it to land a server shutdown deterministically mid-sweep no matter how
// fast the machine is: at most `allow` jobs can complete before the kill.
// Rows are a pure function of the job (cover = ring size), so library mode,
// the killed run and the resumed run all agree byte-for-byte.
var creepGate struct {
	mu      sync.Mutex
	armed   bool
	allowed int
	release chan struct{}
}

func init() {
	engine.RegisterProcess(&engine.ProcessDef{Name: "creep", New: newCreep})
}

func armCreepGate(allow int) {
	creepGate.mu.Lock()
	defer creepGate.mu.Unlock()
	creepGate.armed = true
	creepGate.allowed = allow
	creepGate.release = make(chan struct{})
}

func releaseCreepGate() {
	creepGate.mu.Lock()
	defer creepGate.mu.Unlock()
	if creepGate.armed {
		creepGate.armed = false
		close(creepGate.release)
	}
}

type creepProc struct {
	n       int
	covered bool
}

func newCreep(env *engine.JobEnv) (engine.Proc, error) {
	return &creepProc{n: env.Graph.NumNodes()}, nil
}

func (p *creepProc) Step()        {}
func (p *creepProc) Round() int64 { return 0 }
func (p *creepProc) Reset()       { p.covered = false }
func (p *creepProc) Covered() int {
	if p.covered {
		return p.n
	}
	return 1
}

func (p *creepProc) RunUntilCovered(maxRounds int64) (int64, error) {
	creepGate.mu.Lock()
	blocked := creepGate.armed && creepGate.allowed == 0
	if creepGate.armed && creepGate.allowed > 0 {
		creepGate.allowed--
	}
	release := creepGate.release
	creepGate.mu.Unlock()
	if blocked {
		<-release
	}
	p.covered = true
	return int64(p.n), nil
}

// killServer shuts a server down mid-sweep and returns the watermark it
// left on disk.
func killServer(t *testing.T, ts *testServer, id string) int {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		c := mustSweep(t, ts.srv, id).snapshot()
		if c.failed != "" {
			t.Fatalf("sweep failed before kill: %s", c.failed)
		}
		if c.completed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep made no progress before kill deadline")
		}
		time.Sleep(time.Millisecond)
	}
	ts.http.Close()
	ts.srv.Close()
	return mustSweep(t, ts.srv, id).snapshot().completed
}

func mustSweep(t *testing.T, srv *Server, id string) *sweepJob {
	t.Helper()
	sw, ok := srv.Sweep(id)
	if !ok {
		t.Fatalf("sweep %s not registered", id)
	}
	return sw
}

// TestKillAndResume is the restart half of the byte-identity contract: a
// server killed mid-sweep, restarted on the same spool — with the row
// cache wiped, so resumed rows are genuinely recomputed — re-emits the
// exact remaining bytes: the full stream equals library-mode output, with
// no duplicated and no recomputed-differently rows.
func TestKillAndResume(t *testing.T) {
	// The creep gate makes the kill timing-independent: at most 5 of the 80
	// jobs can complete before the shutdown, however fast the hardware, so
	// the close always lands mid-sweep. The kill server gets a ~zero drain
	// deadline so Close abandons the gate-blocked job instead of waiting
	// out the default 30s — the closest a graceful Close comes to the
	// SIGKILL this test models (the real-SIGKILL variant is cmd/rotord's
	// TestServiceSmoke).
	spec := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"},
		Sizes:      []int{64},
		Agents:     []int{2},
		Process:    "creep",
		Replicas:   80,
		Seed:       7,
	}
	want := libraryJSONL(t, spec) // gate disarmed: runs straight through
	spool := t.TempDir()

	armCreepGate(5)
	defer releaseCreepGate()
	srv, err := Open(spool, Workers(1), DrainTimeout(time.Millisecond))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hts.Close(); srv.Close() })
	ts := &testServer{srv: srv, http: hts}
	st := ts.submit(t, wireSpec(t, spec))
	watermark := killServer(t, ts, st.ID)
	if watermark == 0 || watermark >= st.Jobs {
		t.Fatalf("kill watermark %d of %d jobs: not mid-sweep", watermark, st.Jobs)
	}

	// Free the abandoned worker (its late delivery is dropped — the row
	// handles closed with the server) and give it a beat to exit before the
	// cache wipe below, so it cannot repopulate the cache behind our back.
	releaseCreepGate()
	time.Sleep(10 * time.Millisecond)

	// Wipe the cache: the resumed rows must be recomputed, proving resume
	// correctness does not lean on the cache.
	if err := os.RemoveAll(filepath.Join(spool, "cache")); err != nil {
		t.Fatal(err)
	}

	ts2 := startServer(t, spool, 4)
	st2 := ts2.statusOf(t, st.ID)
	if st2.Completed < watermark {
		t.Errorf("restart lost the watermark: completed %d < %d", st2.Completed, watermark)
	}
	got := ts2.get(t, "/v1/sweeps/"+st.ID+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("post-restart stream differs from library bytes (%d vs %d bytes)", len(got), len(want))
	}
	if gotLines, wantLines := bytes.Count(got, []byte("\n")), st.Jobs; gotLines != wantLines {
		t.Errorf("stream has %d rows, want %d (duplicate or dropped rows)", gotLines, wantLines)
	}
	// The remaining-rows view a reconnecting client would use.
	tail := ts2.get(t, fmt.Sprintf("/v1/sweeps/%s/rows?from=%d", st.ID, watermark))
	var wantTail []byte
	for _, l := range bytes.SplitAfter(want, []byte("\n"))[watermark:] {
		wantTail = append(wantTail, l...)
	}
	if !bytes.Equal(tail, wantTail) {
		t.Errorf("resumed tail differs from library tail")
	}
}

// TestPartialLineTruncation simulates a SIGKILL mid-append: a dangling
// half-row in rows.jsonl is truncated on recovery and recomputed, leaving
// the stream byte-identical.
func TestPartialLineTruncation(t *testing.T) {
	spec := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"}, Sizes: []int{32}, Agents: []int{2}, Replicas: 4, Seed: 7,
	}
	want := libraryJSONL(t, spec)
	spool := t.TempDir()
	ts := startServer(t, spool, 2)
	st := ts.submit(t, wireSpec(t, spec))
	ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
	ts.http.Close()
	ts.srv.Close()

	rows := filepath.Join(spool, "sweeps", st.ID, "rows.jsonl")
	data, err := os.ReadFile(rows)
	if err != nil {
		t.Fatal(err)
	}
	// Chop the last row in half: exactly what a kill mid-write leaves.
	cut := bytes.LastIndexByte(data[:len(data)-1], '\n') + 1
	partial := data[:cut+(len(data)-cut)/2]
	if err := os.WriteFile(rows, partial, 0o644); err != nil {
		t.Fatal(err)
	}

	ts2 := startServer(t, spool, 2)
	got := ts2.get(t, "/v1/sweeps/"+st.ID+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("stream after partial-line recovery differs from library bytes")
	}
}

// TestFormatSelection exercises the sink-registry path: format=csv matches
// the engine's CSV sink byte for byte; unknown formats fail listing the
// registered names.
func TestFormatSelection(t *testing.T) {
	spec := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"}, Sizes: []int{32}, Agents: []int{2, 4}, Replicas: 2, Seed: 7,
	}
	var want bytes.Buffer
	if _, err := engine.New(engine.Workers(2)).Run(spec, engine.NewCSVSink(&want)); err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, t.TempDir(), 2)
	st := ts.submit(t, wireSpec(t, spec))
	got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows?format=csv")
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("format=csv differs from engine CSV sink:\n got %q\nwant %q", got, want.Bytes())
	}

	resp, err := http.Get(ts.http.URL + "/v1/sweeps/" + st.ID + "/rows?format=parquet")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "registered:") {
		t.Errorf("unknown format: status %d body %s, want 400 listing registered sinks", resp.StatusCode, body)
	}
}

// TestHTTPErrors pins the API's failure surface.
func TestHTTPErrors(t *testing.T) {
	ts := startServer(t, t.TempDir(), 2)
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.http.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := post(`{"agents":[2],"sizes":[32]}`); code != http.StatusBadRequest || !strings.Contains(body, "version") {
		t.Errorf("unversioned spec: %d %s", code, body)
	}
	if code, body := post(`{"v":1,"topology":"ring","agents":[2],"sizes":[32]}`); code != http.StatusBadRequest || !strings.Contains(body, "deprecated") {
		t.Errorf("deprecated spelling: %d %s", code, body)
	}
	if code, body := post(`{"v":1,"agents":[2],"sizes":[32],"process":"psychic"}`); code != http.StatusBadRequest || !strings.Contains(body, "unknown process") {
		t.Errorf("unknown process: %d %s", code, body)
	}

	resp, err := http.Get(ts.http.URL + "/v1/sweeps/sw-nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: status %d, want 404", resp.StatusCode)
	}

	st := ts.submit(t, []byte(`{"v":1,"topologies":["ring"],"sizes":[32],"agents":[2]}`))
	resp, err = http.Get(ts.http.URL + "/v1/sweeps/" + st.ID + "/rows?from=-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative cursor: status %d, want 400", resp.StatusCode)
	}
}

// TestRegistriesEndpoint proves clients can introspect every registry the
// wire format draws names from.
func TestRegistriesEndpoint(t *testing.T) {
	ts := startServer(t, t.TempDir(), 1)
	var reg struct {
		V          int      `json:"v"`
		Processes  []string `json:"processes"`
		Metrics    []string `json:"metrics"`
		Topologies []string `json:"topologies"`
		Schedules  []string `json:"schedules"`
		Sinks      []string `json:"sinks"`
		Probes     []string `json:"probes"`
	}
	if err := json.Unmarshal(ts.get(t, "/v1/registries"), &reg); err != nil {
		t.Fatal(err)
	}
	if reg.V != engine.WireVersion {
		t.Errorf("registries v = %d, want %d", reg.V, engine.WireVersion)
	}
	contains := func(list []string, s string) bool {
		for _, x := range list {
			if x == s {
				return true
			}
		}
		return false
	}
	if !contains(reg.Processes, "rotor") || !contains(reg.Processes, "walk") {
		t.Errorf("processes %v missing built-ins", reg.Processes)
	}
	if !contains(reg.Metrics, "cover") || !contains(reg.Topologies, "ring") ||
		!contains(reg.Schedules, "delay") || !contains(reg.Sinks, "jsonl") {
		t.Errorf("registries missing built-ins: %+v", reg)
	}
}

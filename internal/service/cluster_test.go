package service

// Cluster-mode integration suite: in-process cluster.Workers joined to a
// httptest coordinator, proving the distributed path preserves the byte-
// identity contract — including through forced lease reassignment after a
// worker "dies" (goes silent holding a lease) and through total fleet
// loss (fallback to the local pool).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rotorring/internal/cluster"
	"rotorring/internal/engine"
)

// startClusterServer is startServer with extra service options (LeaseTTL).
func startClusterServer(t *testing.T, workers int, opts ...Option) *testServer {
	t.Helper()
	srv, err := Open(t.TempDir(), append([]Option{Workers(workers)}, opts...)...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return &testServer{srv: srv, http: ts}
}

// startWorkers runs n in-process cluster workers against the coordinator
// and blocks until all are registered (visible in /healthz).
func startWorkers(t *testing.T, ts *testServer, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for i := 0; i < n; i++ {
		w := cluster.NewWorker(cluster.WorkerOptions{
			Coordinator: ts.http.URL,
			Name:        fmt.Sprintf("w%d", i+1),
			Parallel:    2,
			Version:     "test",
		})
		go w.Run(ctx)
	}
	waitLiveWorkers(t, ts, n)
}

// waitLiveWorkers polls /healthz until the coordinator reports n
// registered workers.
func waitLiveWorkers(t *testing.T, ts *testServer, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var health struct {
			Workers int `json:"workers"`
		}
		if err := json.Unmarshal(ts.get(t, "/healthz"), &health); err != nil {
			t.Fatalf("decode healthz: %v", err)
		}
		if health.Workers >= n {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("coordinator never saw %d registered workers", n)
}

// postClusterJSON speaks the raw worker wire protocol, for tests that
// need a misbehaving (zombie) worker no real Worker would implement.
func postClusterJSON(t *testing.T, url string, body, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal %T: %v", body, err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestClusterByteIdentity is the tentpole contract in cluster mode: a
// sweep sharded across three worker nodes streams bytes identical to a
// single-node library run, and the rows demonstrably came from workers.
func TestClusterByteIdentity(t *testing.T) {
	spec := identitySpec()
	spec.Replicas = 4 // widen the grid so it chunks across the fleet
	want := libraryJSONL(t, spec)

	ts := startClusterServer(t, 2)
	startWorkers(t, ts, 3)

	st := ts.submit(t, wireSpec(t, spec))
	got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("cluster-streamed rows differ from library bytes\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	final := ts.statusOf(t, st.ID)
	if final.State != "done" || final.Completed != final.Jobs {
		t.Errorf("after full stream: state=%s completed=%d/%d", final.State, final.Completed, final.Jobs)
	}
	snap := ts.srv.cluster.Snapshot()
	if snap.RemoteRows == 0 {
		t.Error("no rows came from cluster workers; the sweep ran locally")
	}
	if snap.RemoteRows < int64(final.Jobs) {
		t.Logf("note: %d of %d rows remote (rest local or cached)", snap.RemoteRows, final.Jobs)
	}
}

// TestClusterReassignment kills a worker mid-sweep: a zombie speaking the
// raw wire protocol grabs a lease and goes silent, real workers join, and
// the sweep must still finish byte-identically — through at least one
// forced lease reassignment.
func TestClusterReassignment(t *testing.T) {
	spec := identitySpec()
	spec.Replicas = 4
	want := libraryJSONL(t, spec)

	ts := startClusterServer(t, 2, LeaseTTL(250*time.Millisecond))

	// The zombie registers first so submission dispatches every chunk to
	// the cluster, then captures a lease it will never complete.
	var reg cluster.RegisterResponse
	if code := postClusterJSON(t, ts.http.URL+"/v1/cluster/register",
		cluster.RegisterRequest{Name: "zombie", Parallel: 1}, &reg); code != http.StatusOK {
		t.Fatalf("zombie register: status %d", code)
	}
	st := ts.submit(t, wireSpec(t, spec))
	var lease cluster.LeaseResponse
	if code := postClusterJSON(t, ts.http.URL+"/v1/cluster/lease",
		cluster.LeaseRequest{WorkerID: reg.WorkerID, WaitMillis: 5000}, &lease); code != http.StatusOK {
		t.Fatalf("zombie lease: status %d", code)
	}
	if len(lease.Jobs) == 0 {
		t.Fatal("zombie lease carries no jobs")
	}

	startWorkers(t, ts, 2)

	got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("rows after reassignment differ from library bytes\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	snap := ts.srv.cluster.Snapshot()
	if snap.LeasesReassigned < 1 {
		t.Errorf("LeasesReassigned = %d, want >= 1 (the zombie's lease)", snap.LeasesReassigned)
	}
	if snap.WorkersExpired < 1 {
		t.Errorf("WorkersExpired = %d, want >= 1 (the zombie)", snap.WorkersExpired)
	}
}

// TestClusterFallbackToLocal: the whole fleet (one zombie) dies with
// chunks queued for remote execution; they must drain to the local pool
// and the sweep must finish byte-identically anyway.
func TestClusterFallbackToLocal(t *testing.T) {
	spec := identitySpec()
	want := libraryJSONL(t, spec)

	ts := startClusterServer(t, 2, LeaseTTL(200*time.Millisecond))
	var reg cluster.RegisterResponse
	if code := postClusterJSON(t, ts.http.URL+"/v1/cluster/register",
		cluster.RegisterRequest{Name: "zombie"}, &reg); code != http.StatusOK {
		t.Fatalf("zombie register: status %d", code)
	}

	st := ts.submit(t, wireSpec(t, spec))
	got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("fallback rows differ from library bytes\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if final := ts.statusOf(t, st.ID); final.State != "done" {
		t.Errorf("state = %s, want done", final.State)
	}
	if snap := ts.srv.cluster.Snapshot(); snap.WorkersExpired < 1 {
		t.Errorf("WorkersExpired = %d, want >= 1", snap.WorkersExpired)
	}
}

// TestClusterWorkerPanicFailsSweep: a job that panics on a worker fails
// the sweep the same way a local panic would, naming the worker origin.
func TestClusterWorkerPanicFailsSweep(t *testing.T) {
	ts := startClusterServer(t, 1)
	startWorkers(t, ts, 1)

	poisoned := engine.SweepSpec{
		Topologies: []engine.Topo{"ring"},
		Sizes:      []int{16},
		Agents:     []int{1},
		Process:    "kaboom",
		Replicas:   2,
		Seed:       7,
	}
	st := ts.submit(t, wireSpec(t, poisoned))
	failed := waitState(t, ts, st.ID, "failed")
	if !strings.Contains(failed.Error, "worker panic") || !strings.Contains(failed.Error, "poisoned process factory") {
		t.Errorf("error %q does not carry the worker panic", failed.Error)
	}
	if !strings.Contains(failed.FailedJob, "proc=kaboom") {
		t.Errorf("failedJob %q does not name the job key", failed.FailedJob)
	}
}

// TestMetricsEndpoint pins the Prometheus surface: the coordinator role
// exposes sweep, cache, throughput and cluster series in text format.
func TestMetricsEndpoint(t *testing.T) {
	ts := startClusterServer(t, 2)
	st := ts.submit(t, wireSpec(t, identitySpec()))
	ts.get(t, "/v1/sweeps/"+st.ID+"/rows") // drain to done

	body := string(ts.get(t, "/metrics"))
	for _, want := range []string{
		`rotord_info{role="coordinator"`,
		"rotord_uptime_seconds",
		"rotord_pool_workers 2",
		`rotord_sweeps{state="done"} 1`,
		`rotord_sweeps{state="running"} 0`,
		"rotord_rows_committed_total",
		"rotord_rows_per_second",
		"rotord_jobs_local_total",
		"rotord_cache_hits_total",
		"rotord_cache_misses_total",
		"rotord_cache_hit_ratio",
		"rotord_cluster_workers 0",
		"rotord_cluster_pending_jobs 0",
		"rotord_cluster_leases_active 0",
		"rotord_cluster_leases_reassigned_total 0",
		"rotord_cluster_rows_remote_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
	var committed int
	for _, line := range strings.Split(body, "\n") {
		if n, _ := fmt.Sscanf(line, "rotord_rows_committed_total %d", &committed); n == 1 {
			break
		}
	}
	if st := ts.statusOf(t, st.ID); committed < st.Jobs {
		t.Errorf("rotord_rows_committed_total = %d, want >= %d", committed, st.Jobs)
	}
}

// TestHealthzReportsRole: the coordinator's liveness document names its
// role, version and registered worker count.
func TestHealthzReportsRole(t *testing.T) {
	ts := startClusterServer(t, 1)
	var health struct {
		Status  string `json:"status"`
		Role    string `json:"role"`
		Version string `json:"version"`
		Workers int    `json:"workers"`
	}
	if err := json.Unmarshal(ts.get(t, "/healthz"), &health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if health.Status != "ok" || health.Role != "coordinator" || health.Version == "" || health.Workers != 0 {
		t.Errorf("healthz = %+v", health)
	}
}

// TestListStateFilter pins GET /v1/sweeps?state=: done sweeps show under
// ?state=done, not under ?state=running, and a bogus filter is a 400.
func TestListStateFilter(t *testing.T) {
	ts := startClusterServer(t, 2)
	st := ts.submit(t, wireSpec(t, identitySpec()))
	ts.get(t, "/v1/sweeps/"+st.ID+"/rows") // drain to done

	count := func(filter string) int {
		t.Helper()
		var list struct {
			Sweeps []sweepStatus `json:"sweeps"`
		}
		if err := json.Unmarshal(ts.get(t, "/v1/sweeps"+filter), &list); err != nil {
			t.Fatalf("decode list%s: %v", filter, err)
		}
		return len(list.Sweeps)
	}
	if n := count(""); n != 1 {
		t.Errorf("unfiltered list has %d sweeps, want 1", n)
	}
	if n := count("?state=done"); n != 1 {
		t.Errorf("?state=done has %d sweeps, want 1", n)
	}
	if n := count("?state=running"); n != 0 {
		t.Errorf("?state=running has %d sweeps, want 0", n)
	}
	resp, err := http.Get(ts.http.URL + "/v1/sweeps?state=bogus")
	if err != nil {
		t.Fatalf("GET ?state=bogus: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("?state=bogus: status %d, want 400", resp.StatusCode)
	}
}

// TestClusterWorkersEndpoint: GET /v1/cluster/workers lists the fleet.
func TestClusterWorkersEndpoint(t *testing.T) {
	ts := startClusterServer(t, 1)
	startWorkers(t, ts, 2)
	var resp cluster.WorkersResponse
	if err := json.Unmarshal(ts.get(t, "/v1/cluster/workers"), &resp); err != nil {
		t.Fatalf("decode workers: %v", err)
	}
	if len(resp.Workers) != 2 {
		t.Fatalf("workers = %+v, want 2", resp.Workers)
	}
	names := map[string]bool{}
	for _, w := range resp.Workers {
		names[w.Name] = true
		if w.Parallel != 2 || w.Version != "test" {
			t.Errorf("worker %s: parallel=%d version=%q", w.Name, w.Parallel, w.Version)
		}
	}
	if !names["w1"] || !names["w2"] {
		t.Errorf("worker names = %v, want w1 and w2", names)
	}
}

// TestClusterMissionByteIdentity: mission cells shard across worker nodes
// unchanged — a mission-bearing sweep streamed through a live coordinator
// plus worker fleet is byte-identical to a single-node library run, and the
// mission rows demonstrably came from workers.
func TestClusterMissionByteIdentity(t *testing.T) {
	spec := engine.SweepSpec{
		Topologies: []engine.Topo{"ring", "grid:6x6"},
		Sizes:      []int{24},
		Agents:     []int{2, 4},
		Placements: []engine.Placement{engine.PlaceEqual, engine.PlaceRandom},
		Schedules:  []engine.Schedule{"none", "delay:p=0.25,until=64"},
		Missions:   []engine.Mission{"explore", "patrol:horizon=512", "quiesce:window=256"},
		Replicas:   2,
		Seed:       13,
	}
	want := libraryJSONL(t, spec)
	if !bytes.Contains(want, []byte(`"mission":"patrol:horizon=512"`)) ||
		!bytes.Contains(want, []byte(`"staleness_max"`)) {
		t.Fatal("reference rows carry no mission columns; the spec lost its missions")
	}

	ts := startClusterServer(t, 2)
	startWorkers(t, ts, 3)

	st := ts.submit(t, wireSpec(t, spec))
	got := ts.get(t, "/v1/sweeps/"+st.ID+"/rows")
	if !bytes.Equal(got, want) {
		t.Errorf("cluster-streamed mission rows differ from library bytes\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
	if snap := ts.srv.cluster.Snapshot(); snap.RemoteRows == 0 {
		t.Error("no rows came from cluster workers; the sweep ran locally")
	}
}

package xrand

import (
	"fmt"
	"math"
	"math/bits"
)

// Binomial sampling for the counts-based random-walk kernel (tier 3): a
// node holding c walkers scatters them over its ports with a multinomial
// draw, whose chain-rule factors are binomials. Three regimes:
//
//   - p = 1/2, small n: the sum of n fair bits, i.e. the population count
//     of n random bits — exact and essentially one generator call per 64
//     trials. This is the hot path of the ring walk kernel, where per-node
//     occupancies are around k/n.
//   - small n·p: exact chop-down inversion sampling (BINV), walking the
//     CDF with the multiplicative pmf recurrence.
//   - large n·p: Hörmann's transformed rejection with squeeze (BTRS,
//     "The generation of binomial random variates", 1993), the standard
//     large-count sampler (also used by NumPy and TensorFlow). Rejection
//     against the exact pmf via Stirling tail corrections, ~1.15 uniform
//     pairs per variate.
//
// RNG consumption differs per regime, so counts-based processes are not
// stream-compatible with per-agent ones; they are validated statistically
// instead (see randwalk's distribution tests).

// binomialHalfMax bounds the popcount path: above it BTRS is cheaper than
// scanning n/64 words (n = 4096 is 64 words ≈ 64 generator calls versus
// BTRS's ~2.3).
const binomialHalfMax = 4096

// btrsMinNP is the validity floor of the BTRS sampler; below it inversion
// is used (and is fast, needing O(n·p) pmf steps).
const btrsMinNP = 10

// Binomial returns a sample from the binomial distribution Bin(n, p): the
// number of successes in n independent trials of probability p. It panics
// if n < 0 or p is not a probability, mirroring Intn's contract.
func (r *Rand) Binomial(n int64, p float64) int64 {
	if n < 0 || math.IsNaN(p) || p < 0 || p > 1 {
		panic(fmt.Sprintf("xrand: Binomial(%d, %v) out of domain", n, p))
	}
	switch {
	case n == 0 || p == 0:
		return 0
	case p == 1:
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	if p == 0.5 && n <= binomialHalfMax {
		return r.binomialHalf(n)
	}
	if float64(n)*p < btrsMinNP {
		return r.binomialInv(n, p)
	}
	return r.binomialBTRS(n, p)
}

// binomialHalf samples Bin(n, 1/2) as the popcount of n random bits.
func (r *Rand) binomialHalf(n int64) int64 {
	var s int64
	for ; n >= 64; n -= 64 {
		s += int64(bits.OnesCount64(r.Uint64()))
	}
	if n > 0 {
		s += int64(bits.OnesCount64(r.Uint64() & (1<<uint(n) - 1)))
	}
	return s
}

// BinomialHalf returns a sample from Bin(n, 1/2), n ≥ 0. It is the
// fair-coin special case of Binomial on the counts-walk hot path: for n up
// to 64 it is a single generator call plus a popcount (a shift count of 64
// yields an all-ones mask, so the n = 64 case needs no branch), and it
// skips the general entry point's domain checks and regime dispatch.
func (r *Rand) BinomialHalf(n int64) int64 {
	if uint64(n) <= 64 {
		return int64(bits.OnesCount64(r.Uint64() & (1<<uint(n) - 1)))
	}
	if n <= binomialHalfMax {
		return r.binomialHalf(n)
	}
	return r.binomialBTRS(n, 0.5)
}

// binomialInv is exact chop-down inversion (BINV) for n·p < btrsMinNP and
// 0 < p ≤ 1/2: subtract pmf(0), pmf(1), ... from a uniform until it goes
// negative. The pmf follows the recurrence f(x+1) = f(x)·(a/(x+1) - s).
func (r *Rand) binomialInv(n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	a := float64(n+1) * s
	f0 := math.Pow(q, float64(n)) // ≥ exp(-2·n·p) > 0; no underflow here
	for {
		u := r.Float64()
		f := f0
		for x := int64(0); ; x++ {
			if u < f {
				return x
			}
			if x == n {
				// Accumulated rounding pushed u past the total mass
				// (probability ~ulp); the mass beyond n is zero.
				return n
			}
			u -= f
			f *= a/float64(x+1) - s
		}
	}
}

// stirlingTail returns the Stirling series remainder
// log(k!) - (k + 1/2)·log(k+1) + (k+1) - log(2π)/2, tabulated for small k.
func stirlingTail(k float64) float64 {
	if k < 10 {
		return stirlingTailTable[int(k)]
	}
	kp1sq := (k + 1) * (k + 1)
	return (1.0/12 - (1.0/360-1.0/1260/kp1sq)/kp1sq) / (k + 1)
}

var stirlingTailTable = [10]float64{
	0.0810614667953272,
	0.0413406959554092,
	0.0276779256849983,
	0.0207906721037650,
	0.0166446911898211,
	0.0138761288230707,
	0.0118967099458917,
	0.0104112652619720,
	0.0092554621827127,
	0.0083305634333594,
}

// binomialBTRS is Hörmann's transformed-rejection sampler for n·p ≥
// btrsMinNP and 0 < p ≤ 1/2.
func (r *Rand) binomialBTRS(n int64, p float64) int64 {
	fn := float64(n)
	q := 1 - p
	spq := math.Sqrt(fn * p * q)
	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := fn*p + 0.5
	vr := 0.92 - 4.2/b
	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor((fn + 1) * p) // the mode
	hm := stirlingTail(m) + stirlingTail(fn-m)

	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + c)
		// Squeeze: inside the box the transformed density dominates
		// uniformly and k is guaranteed in range.
		if us >= 0.07 && v <= vr {
			return int64(k)
		}
		if k < 0 || k > fn {
			continue
		}
		// Exact acceptance test: log of the pmf ratio to the mode,
		// log(pmf(k)/pmf(m)), via Stirling tail corrections.
		v = math.Log(v * alpha / (a/(us*us) + b))
		h := (m+0.5)*math.Log((m+1)/(fn-m+1)) +
			(fn+1)*math.Log((fn-m+1)/(fn-k+1)) +
			(k+0.5)*math.Log((fn-k+1)/(k+1)) +
			(k-m)*lpq +
			hm - stirlingTail(k) - stirlingTail(fn-k)
		if v <= h {
			return int64(k)
		}
	}
}

// Multinomial distributes n trials over len(dst) equally likely categories,
// writing the per-category counts into dst (the general-graph port split of
// the counts-based walk kernel). It is the exact chain-rule factorization:
// category j receives Bin(remaining, 1/(d-j)). len(dst) must be positive.
func (r *Rand) Multinomial(n int64, dst []int64) {
	d := len(dst)
	for j := 0; j < d-1; j++ {
		var x int64
		if n > 0 {
			x = r.Binomial(n, 1/float64(d-j))
		}
		dst[j] = x
		n -= x
	}
	dst[d-1] = n
}

package xrand

import (
	"math"
	"testing"
)

// logChoose returns log C(n, k) via log-gamma.
func logChoose(n, k float64) float64 {
	ln, _ := math.Lgamma(n + 1)
	lk, _ := math.Lgamma(k + 1)
	lnk, _ := math.Lgamma(n - k + 1)
	return ln - lk - lnk
}

// binPMF returns the exact Bin(n, p) probability of k.
func binPMF(n int64, p float64, k int64) float64 {
	fn, fk := float64(n), float64(k)
	return math.Exp(logChoose(fn, fk) + fk*math.Log(p) + (fn-fk)*math.Log(1-p))
}

// chiSquareBinomial draws samples of Bin(n, p) and computes the chi-square
// statistic against the exact pmf, pooling bins with expectation < 5 into
// their neighbors. It returns the statistic and the degrees of freedom.
func chiSquareBinomial(t *testing.T, rng *Rand, n int64, p float64, samples int) (float64, int) {
	t.Helper()
	counts := make([]int64, n+1)
	for i := 0; i < samples; i++ {
		k := rng.Binomial(n, p)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%d, %g) = %d out of range", n, p, k)
		}
		counts[k]++
	}
	var chi float64
	df := -1 // one constraint: totals match
	var pooledObs, pooledExp float64
	for k := int64(0); k <= n; k++ {
		pooledObs += float64(counts[k])
		pooledExp += float64(samples) * binPMF(n, p, k)
		if pooledExp >= 5 {
			d := pooledObs - pooledExp
			chi += d * d / pooledExp
			df++
			pooledObs, pooledExp = 0, 0
		}
	}
	if pooledExp > 0 {
		d := pooledObs - pooledExp
		chi += d * d / pooledExp
		df++
	}
	return chi, df
}

// TestBinomialChiSquare validates every sampler regime against the exact
// pmf: popcount (p = 1/2, small n), inversion (small n·p) and BTRS (large
// n·p), including the reflection p > 1/2. The acceptance threshold is the
// 99.9%-quantile of the chi-square distribution, approximated by the
// Wilson–Hilferty transform; seeds are fixed, so the test is deterministic.
func TestBinomialChiSquare(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{1, 0.5}, {7, 0.5}, {64, 0.5}, {100, 0.5}, // popcount
		{20, 0.1}, {50, 0.07}, {200, 0.02}, {9, 0.3}, // inversion
		{40, 0.45}, {1000, 0.3}, {5000, 0.5}, {10000, 0.013}, // BTRS
		{30, 0.8}, {1000, 0.9}, // reflection
	}
	rng := New(0xb10)
	for _, tc := range cases {
		chi, df := chiSquareBinomial(t, rng, tc.n, tc.p, 40000)
		// Wilson–Hilferty: chi2_q ≈ df·(1 - 2/(9df) + z_q·sqrt(2/(9df)))³,
		// z_0.999 ≈ 3.09.
		fdf := float64(df)
		limit := fdf * math.Pow(1-2/(9*fdf)+3.09*math.Sqrt(2/(9*fdf)), 3)
		if chi > limit {
			t.Errorf("Binomial(%d, %g): chi-square %.1f exceeds %.1f at df=%d",
				tc.n, tc.p, chi, limit, df)
		}
	}
}

// TestBinomialMoments checks mean and variance at scales where the full
// chi-square would need too many bins.
func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		n int64
		p float64
	}{
		{1 << 20, 0.5}, {1 << 16, 0.25}, {1 << 14, 0.003},
	}
	rng := New(0xb11)
	const samples = 20000
	for _, tc := range cases {
		var sum, sumsq float64
		for i := 0; i < samples; i++ {
			x := float64(rng.Binomial(tc.n, tc.p))
			sum += x
			sumsq += x * x
		}
		mean := sum / samples
		variance := sumsq/samples - mean*mean
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		// Mean of the sample mean has stddev sqrt(var/samples); allow 5σ.
		if tol := 5 * math.Sqrt(wantVar/samples); math.Abs(mean-wantMean) > tol {
			t.Errorf("Binomial(%d, %g): mean %.1f, want %.1f ± %.1f", tc.n, tc.p, mean, wantMean, tol)
		}
		if math.Abs(variance-wantVar)/wantVar > 0.10 {
			t.Errorf("Binomial(%d, %g): variance %.1f, want %.1f ± 10%%", tc.n, tc.p, variance, wantVar)
		}
	}
}

// TestBinomialEdgeCases pins the degenerate parameters and determinism.
func TestBinomialEdgeCases(t *testing.T) {
	rng := New(1)
	if got := rng.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, 0.5) = %d", got)
	}
	if got := rng.Binomial(100, 0); got != 0 {
		t.Errorf("Binomial(100, 0) = %d", got)
	}
	if got := rng.Binomial(100, 1); got != 100 {
		t.Errorf("Binomial(100, 1) = %d", got)
	}
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Binomial(10, %v) did not panic", bad)
				}
			}()
			rng.Binomial(10, bad)
		}()
	}

	a, b := New(42), New(42)
	params := New(7)
	for i := 0; i < 200; i++ {
		n := int64(1 + params.Intn(10000))
		p := 0.01 + 0.98*params.Float64()
		if x, y := a.Binomial(n, p), b.Binomial(n, p); x != y {
			t.Fatalf("same seed diverged: Binomial(%d, %g) = %d vs %d", n, p, x, y)
		}
	}
}

// TestMultinomial checks the equally-likely multinomial split: totals are
// conserved and each category's marginal matches Bin(n, 1/d) moments.
func TestMultinomial(t *testing.T) {
	rng := New(0x31)
	const n, d, samples = 600, 5, 20000
	sums := make([]float64, d)
	dst := make([]int64, d)
	for i := 0; i < samples; i++ {
		rng.Multinomial(n, dst)
		var total int64
		for j, x := range dst {
			if x < 0 {
				t.Fatalf("negative category count %d", x)
			}
			total += x
			sums[j] += float64(x)
		}
		if total != n {
			t.Fatalf("multinomial total %d, want %d", total, n)
		}
	}
	want := float64(n) / d
	// Marginal is Bin(n, 1/d): stddev of the sample mean over `samples`.
	tol := 5 * math.Sqrt(want*(1-1.0/d)/samples)
	for j, s := range sums {
		if mean := s / samples; math.Abs(mean-want) > tol {
			t.Errorf("category %d mean %.2f, want %.2f ± %.2f", j, mean, want, tol)
		}
	}
}

// TestReseedClone pins the Reseed and Clone contracts.
func TestReseedClone(t *testing.T) {
	r := New(7)
	r.Uint64()
	r.Reseed(7)
	fresh := New(7)
	for i := 0; i < 32; i++ {
		if r.Uint64() != fresh.Uint64() {
			t.Fatal("Reseed did not restore the New(seed) stream")
		}
	}
	c := r.Clone()
	for i := 0; i < 32; i++ {
		if r.Uint64() != c.Uint64() {
			t.Fatal("Clone diverged from original")
		}
	}
}

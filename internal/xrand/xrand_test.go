package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c
	// reference implementation (Vigna).
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds coincide on %d/100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared style sanity check over 10 buckets.
	const (
		buckets = 10
		draws   = 100000
	)
	r := New(99)
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; 99.9th percentile is about 27.9.
	if chi2 > 27.9 {
		t.Fatalf("chi-squared = %.2f, distribution looks non-uniform: %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	mean := sum / draws
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 draws = %v, want about 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(11)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams coincide on %d/100 draws", same)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(13)
	trues := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < draws/2-300 || trues > draws/2+300 {
		t.Fatalf("Bool() returned true %d/%d times", trues, draws)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

func TestMix64(t *testing.T) {
	// Mix64 is the SplitMix64 finalizer: Mix64 applied to the raw
	// increment sequence must reproduce the generator's outputs.
	s := NewSplitMix64(0)
	state := uint64(0)
	for i := 0; i < 10; i++ {
		state += 0x9e3779b97f4a7c15
		if got, want := Mix64(state), s.Uint64(); got != want {
			t.Fatalf("step %d: Mix64 = %#x, SplitMix64 = %#x", i, got, want)
		}
	}
	if Mix64(1) == Mix64(2) {
		t.Fatal("Mix64 collides on adjacent inputs")
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(77)
	for i := 0; i < 10000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63 returned negative %d", v)
		}
	}
}

func TestBoundedRejectionPath(t *testing.T) {
	// Large non-power-of-two bounds exercise the Lemire rejection branch.
	r := New(123)
	bound := uint64(1)<<63 + 3
	for i := 0; i < 1000; i++ {
		if v := r.boundedUint64(bound); v >= bound {
			t.Fatalf("bounded value %d >= bound %d", v, bound)
		}
	}
}

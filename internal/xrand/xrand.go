// Package xrand provides small, deterministic pseudo-random number
// generators used by the random-walk baseline and the randomized test
// workloads.
//
// The experiments in this repository compare a deterministic process (the
// rotor-router) against the expectation of a randomized one (parallel random
// walks). To make the randomized side reproducible across Go releases and
// architectures, the generators here are self-contained implementations of
// SplitMix64 (Steele, Lea, Flood: "Fast splittable pseudorandom number
// generators", OOPSLA 2014) and xoshiro256** (Blackman, Vigna 2018), rather
// than math/rand whose stream is not guaranteed stable between versions.
package xrand

import "math/bits"

// Mix64 applies the SplitMix64 finalizer to x: a fast, high-quality 64-bit
// mixing function. It is used as a stateless hash for incremental
// configuration hashing in the rotor-router engine.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitMix64 is a 64-bit PRNG with a single word of state. It is used both
// directly (seeding workloads) and to seed Xoshiro256 generators.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is the generator used throughout the repository: xoshiro256** seeded
// via SplitMix64, as recommended by its authors.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded deterministically from seed.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator in place to the state New(seed) would
// produce, letting long-lived simulation objects restart their stream
// without reallocating.
func (r *Rand) Reseed(seed uint64) {
	sm := NewSplitMix64(seed)
	for i := range r.s {
		r.s[i] = sm.Uint64()
	}
	// An all-zero state is a fixed point of xoshiro; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for robustness.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// Clone returns an independent copy of the generator at its current state:
// the copy and the original produce the same stream from here on.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// Uint64 returns the next value of the xoshiro256** stream.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s[1]*5, 7) * 9

	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = bits.RotateLeft64(r.s[3], 45)

	return result
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0, mirroring math/rand's contract; callers control n and a
// non-positive bound is always a programming error.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// Int63 returns a non-negative 63-bit integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high-quality bits, the standard conversion.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns an unbiased random boolean.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n) using the
// Fisher-Yates shuffle.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, mirroring
// math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// multiply-shift rejection method, which avoids modulo bias.
func (r *Rand) boundedUint64(bound uint64) uint64 {
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), bound)
		}
	}
	return hi
}

// Split returns a new generator seeded from r's stream. Independent
// goroutines each take a Split() so that parallel experiments never share
// generator state.
func (r *Rand) Split() *Rand {
	return New(r.Uint64())
}

// Package viz renders ring-domain structures as ASCII strips, reproducing
// the content of the paper's illustrations (Fig. 1: vertex- and edge-type
// borders between lazy domains; Fig. 2: the desirable configurations of the
// Theorem 1 deployment) from live simulation state.
package viz

import (
	"fmt"
	"strings"

	"rotorring/internal/core"
	"rotorring/internal/ringdom"
)

// Strip renders one character per ring node:
//
//	letters a, b, c, ...  nodes of the i-th lazy domain (cycling after z)
//	'*'                   node currently holding at least one agent
//	'.'                   visited node outside every lazy domain
//	'#'                   unvisited node
//
// The second returned line marks lazy-domain borders under their gap nodes:
// '|' under a vertex-type border's middle node, '^' under the two endpoints
// of an edge-type border, and '~' under wide gaps.
func Strip(tr *ringdom.Tracker) (nodes, borders string, err error) {
	sys := tr.System()
	n := sys.Graph().NumNodes()
	lazy, err := tr.LazyDomains()
	if err != nil {
		return "", "", err
	}

	row := make([]byte, n)
	for v := 0; v < n; v++ {
		if sys.Visits(v) == 0 {
			row[v] = '#'
		} else {
			row[v] = '.'
		}
	}
	for i, d := range lazy.Domains {
		ch := byte('a' + i%26)
		for off := 0; off < d.Size; off++ {
			row[(d.Start+off)%n] = ch
		}
	}
	for v := 0; v < n; v++ {
		if sys.AgentsAt(v) > 0 {
			row[v] = '*'
		}
	}

	marks := make([]byte, n)
	for i := range marks {
		marks[i] = ' '
	}
	bs, err := tr.Borders()
	if err != nil {
		return "", "", err
	}
	for _, b := range bs {
		switch b.Kind {
		case ringdom.BorderVertex:
			marks[(b.LeftEnd+1)%n] = '|'
		case ringdom.BorderEdge:
			marks[b.LeftEnd] = '^'
			marks[(b.LeftEnd+1)%n] = '^'
		default:
			for off := 1; off <= b.Gap; off++ {
				marks[(b.LeftEnd+off)%n] = '~'
			}
		}
	}
	return string(row), string(marks), nil
}

// DomainBar renders domain sizes as a proportional horizontal bar chart,
// one line per domain, used for the Fig. 2 style phase snapshots.
func DomainBar(p *ringdom.Partition, width int) string {
	if width < 8 {
		width = 8
	}
	var sb strings.Builder
	maxSize := 1
	for _, d := range p.Domains {
		if d.Size > maxSize {
			maxSize = d.Size
		}
	}
	for i, d := range p.Domains {
		bar := d.Size * width / maxSize
		fmt.Fprintf(&sb, "domain %2d (anchor %4d) %5d %s\n",
			i, d.Anchor, d.Size, strings.Repeat("█", bar))
	}
	if p.Unvisited > 0 {
		fmt.Fprintf(&sb, "unvisited              %5d\n", p.Unvisited)
	}
	return sb.String()
}

// PathProfile renders the covered prefix of a path system with agent
// positions marked, one character per node ('A' agent, '=' covered, '#'
// unvisited), clipped to width characters with proportional downsampling.
func PathProfile(sys *core.System, width int) string {
	n := sys.Graph().NumNodes()
	if width <= 0 || width > n {
		width = n
	}
	row := make([]byte, width)
	for c := 0; c < width; c++ {
		lo := c * n / width
		hi := (c + 1) * n / width
		if hi == lo {
			hi = lo + 1
		}
		row[c] = '#'
		visited := false
		agent := false
		for v := lo; v < hi; v++ {
			if sys.Visits(v) > 0 {
				visited = true
			}
			if sys.AgentsAt(v) > 0 {
				agent = true
			}
		}
		if agent {
			row[c] = 'A'
		} else if visited {
			row[c] = '='
		}
	}
	return string(row)
}

package viz

import (
	"strings"
	"testing"

	"rotorring/internal/core"
	"rotorring/internal/graph"
	"rotorring/internal/ringdom"
)

func stabilizedTracker(t *testing.T, n, k int) *ringdom.Tracker {
	t.Helper()
	g := graph.Ring(n)
	positions := core.EquallySpaced(n, k)
	ptr, err := core.PointersNegative(g, positions)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g,
		core.WithAgentsAt(positions...),
		core.WithPointers(ptr),
		core.WithFlowRecording())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ringdom.NewTracker(sys)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(int64(8 * n))
	return tr
}

func TestStripShape(t *testing.T) {
	const n, k = 90, 3
	tr := stabilizedTracker(t, n, k)
	nodes, borders, err := Strip(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != n || len(borders) != n {
		t.Fatalf("lengths %d, %d", len(nodes), len(borders))
	}
	// Exactly k agents visible (no two agents share a node after
	// stabilization from equal spacing).
	if got := strings.Count(nodes, "*"); got != k {
		t.Errorf("agent marks = %d, strip %q", got, nodes)
	}
	// All three lazy domains present.
	for _, ch := range []string{"a", "b", "c"} {
		if !strings.Contains(nodes, ch) {
			t.Errorf("domain letter %q missing in %q", ch, nodes)
		}
	}
	// No unvisited nodes remain.
	if strings.Contains(nodes, "#") {
		t.Errorf("unvisited marks remain: %q", nodes)
	}
	// Some border marks exist.
	if strings.TrimSpace(borders) == "" {
		t.Error("no border marks")
	}
}

func TestStripEarlyShowsUnvisited(t *testing.T) {
	g := graph.Ring(40)
	sys, err := core.NewSystem(g,
		core.WithAgentsAt(0),
		core.WithPointers(core.PointersUniform(g, graph.RingCW)),
		core.WithFlowRecording())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ringdom.NewTracker(sys)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(5)
	nodes, _, err := Strip(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nodes, "#") {
		t.Errorf("expected unvisited marks in %q", nodes)
	}
	if !strings.Contains(nodes, "*") {
		t.Errorf("expected an agent mark in %q", nodes)
	}
}

func TestDomainBar(t *testing.T) {
	tr := stabilizedTracker(t, 60, 3)
	p, err := ringdom.Domains(tr.System())
	if err != nil {
		t.Fatal(err)
	}
	out := DomainBar(p, 30)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("bar lines: %q", out)
	}
	for _, line := range lines {
		if !strings.Contains(line, "█") {
			t.Errorf("bar missing in %q", line)
		}
	}
}

func TestPathProfile(t *testing.T) {
	g := graph.Path(64)
	ptr, err := core.PointersTowardNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g,
		core.WithAgentsAt(core.AllOnNode(0, 3)...),
		core.WithPointers(ptr))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200)
	out := PathProfile(sys, 32)
	if len(out) != 32 {
		t.Fatalf("width = %d", len(out))
	}
	if !strings.Contains(out, "A") {
		t.Errorf("no agent in %q", out)
	}
	if !strings.Contains(out, "#") {
		t.Errorf("no frontier in %q", out)
	}
	// Full width when width exceeds n.
	if got := PathProfile(sys, 1000); len(got) != 64 {
		t.Fatalf("clip failed: %d", len(got))
	}
}

func TestStripShowsEdgeTypeBorder(t *testing.T) {
	// An asymmetric placement on an odd ring phase-locks the two agents
	// into edge swaps (Fig. 1b): the '^^' mark must appear.
	const n = 37
	g := graph.Ring(n)
	sys, err := core.NewSystem(g,
		core.WithAgentsAt(7, 35),
		core.WithFlowRecording())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ringdom.NewTracker(sys)
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(int64(10 * n))
	sawEdge := false
	for sample := 0; sample < 6*n && !sawEdge; sample++ {
		tr.Run(1)
		_, marks, err := Strip(tr)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(marks, "^^") {
			sawEdge = true
		}
	}
	if !sawEdge {
		t.Error("no edge-type border rendered")
	}
}

func TestDomainBarShowsUnvisited(t *testing.T) {
	g := graph.Ring(60)
	ptr, err := core.PointersNegative(g, []int{0, 30})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(g,
		core.WithAgentsAt(0, 30),
		core.WithPointers(ptr))
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(10) // far from covered
	p, err := ringdom.Domains(sys)
	if err != nil {
		t.Fatal(err)
	}
	out := DomainBar(p, 20)
	if !strings.Contains(out, "unvisited") {
		t.Errorf("unvisited line missing:\n%s", out)
	}
}
